// Deterministic counter registry: dotted-name monotonic counters and
// power-of-two histograms, snapshotted per replication and merged in seed
// order so `--counters=FILE` JSONL output is byte-identical for any --jobs.
//
// Determinism contract: counter values derive only from simulated work
// (events fired, moves accepted, demands rerouted, ...), never from wall
// time — so totals are a pure function of the scenario and seed. Sums
// commute, so it does not matter which thread contributed which share: the
// registry is mutex-protected and safe to share across ParallelRunner
// workers (the nested-portfolio fan-out counts into its cell's registry
// from several threads when the cell list is shorter than the pool).
//
// Emission order is canonical: counters sorted by name, then histograms
// sorted by name, experiments in manifest order — no merge-order dependence
// survives into the output.
//
// With `EEND_OBS_ENABLED == 0` the types keep their shape (engine plumbing
// still compiles) but `add`/`observe` are no-ops and snapshots stay empty.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace eend::obs {

/// Histogram bucket i counts values v with bit_width(v) == i, i.e. bucket 0
/// holds v == 0, bucket 1 holds v == 1, bucket 2 holds 2..3, and so on;
/// the last bucket absorbs everything past 2^(kHistBuckets-1).
inline constexpr std::size_t kHistBuckets = 20;

std::size_t hist_bucket(std::uint64_t value);

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  void observe(std::uint64_t value);
  void merge_from(const HistogramData& other);
};

/// Order-independent aggregate of one registry (or a merge of several).
/// std::map keys give the canonical sorted-by-name emission order.
struct CounterSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }
  void clear();
  void merge_from(const CounterSnapshot& other);

  /// One JSONL line per counter then per histogram:
  ///   {"experiment":"id","counter":"name","value":N}
  ///   {"experiment":"id","histogram":"name","count":N,"sum":S,"buckets":[..]}
  void write_jsonl(std::ostream& os, std::string_view experiment) const;
};

/// Thread-safe sink for live counts. Cool paths pay one lock + map lookup
/// per call; hot paths batch through HotCounter and publish once.
class CounterRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);
  void observe(std::string_view name, std::uint64_t value);

  CounterSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
};

/// The calling thread's current registry (nullptr when none installed).
CounterRegistry* current();

/// RAII install of a registry as the calling thread's current one.
/// Installing nullptr is valid and masks any outer registry.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(CounterRegistry* reg);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  CounterRegistry* prev_;
};

/// Count into the calling thread's current registry; no-op without one
/// (or with the telemetry gate compiled off).
void count(std::string_view name, std::uint64_t delta = 1);
void observe(std::string_view name, std::uint64_t value);

}  // namespace eend::obs
