// Phase timers and Chrome trace_event emission.
//
// `PhaseTimer` is the tree's one sanctioned wall-clock: an RAII span that
// always measures elapsed time (so `wall_time_s`-style metrics keep working
// with telemetry compiled off) and, when a `TraceCollector` is installed,
// emits a complete ("ph":"X") Chrome trace_event on stop. The resulting
// file loads directly in chrome://tracing or https://ui.perfetto.dev.
//
// pids/tids are LOGICAL lane ids, never OS thread ids, so identical runs
// produce identical lane layouts: pid 0 is the engine/worker process row
// (tid 0 = the phase lane, tid k = pool worker lane k), pid 1 is the
// sampled sim-core row (tid = replication lane + 1), pid 2 is the per-cell
// engine-phase row (tid = cell index + 1). Cell phases get their own pid
// because a cell's lane is its *index* while a worker's lane is its
// *thread* — on one pid the two would overlap mid-span. Timestamps are
// wall-clock and vary run to run; everything else is deterministic.
//
// The collector install point is process-global (`set_trace`): spans are
// coarse (phases, cells, event batches), so a mutex-protected vector is
// plenty. Events are sorted on write so emission order is stable.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace eend::obs {

/// Logical trace process rows (see the header comment).
inline constexpr std::uint32_t kPidEngine = 0;
inline constexpr std::uint32_t kPidSim = 1;
inline constexpr std::uint32_t kPidCell = 2;

struct TraceEvent {
  std::string name;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0.0;   // microseconds since collector epoch
  double dur_us = 0.0;  // span duration in microseconds
};

class TraceCollector {
 public:
  TraceCollector();

  void add(TraceEvent event);

  /// Microseconds elapsed since this collector was constructed.
  double now_us() const;
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Copy of the events, sorted by (pid, tid, ts, name).
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void write_json(std::ostream& os) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Install (or clear, with nullptr) the process-global collector. The
/// caller owns the collector and must clear it before destruction.
void set_trace(TraceCollector* collector);
TraceCollector* trace();
bool tracing();

/// Emit a complete span directly (used by the sampled sim-core batches,
/// which cannot afford a PhaseTimer per event). No-op unless tracing.
void emit_span(const char* name, double ts_us, double dur_us,
               std::uint32_t pid, std::uint32_t tid);

/// Microseconds since the installed collector's epoch; 0.0 when not tracing.
double trace_now_us();

/// RAII phase span. Always times (elapsed_s() is valid with the telemetry
/// gate off); emits to the global collector only when one is installed at
/// stop time and EEND_OBS_ENABLED is on.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string name, std::uint32_t pid = 0,
                      std::uint32_t tid = 0);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Elapsed seconds so far, without stopping the span.
  double elapsed_s() const;

  /// Emit now (idempotent) and return elapsed seconds at the stop point.
  double stop();

 private:
  std::string name_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  double stopped_elapsed_s_ = 0.0;
};

}  // namespace eend::obs
