// Telemetry compile gate and hot-path counter primitives.
//
// This header is intentionally dependency-free so the simulation core can
// include it without pulling strings, maps, or mutexes into hot headers.
// `EEND_OBS_ENABLED` (CMake option `EEND_OBS`, default ON) selects between
// the real primitives and empty no-op twins: with the gate off, `HotCounter`
// and `HotGauge` are empty types whose member functions compile to nothing,
// so instrumented inner loops carry zero state and zero instructions.
//
// Two tiers of instrumentation share this gate:
//   - Hot paths (event fire, pool allocate, ladder restructures) bump plain
//     `HotCounter`/`HotGauge` members — no atomics, no TLS, no name lookup —
//     and publish totals once per replication into a `CounterRegistry`
//     (see counters.hpp).
//   - Cool paths (search operators, churn epochs, MAC totals) call
//     `obs::count()`/`obs::observe()` directly; one registry lookup per call.
#pragma once

#include <cstdint>

#ifndef EEND_OBS_ENABLED
#define EEND_OBS_ENABLED 1
#endif

namespace eend::obs {

inline constexpr bool kEnabled = EEND_OBS_ENABLED != 0;

#if EEND_OBS_ENABLED

/// Monotonic counter for hot paths: a bare uint64, incremented inline.
/// Single-threaded by construction — owned by one Simulator/pool/queue,
/// which ParallelRunner never shares across replications.
class HotCounter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// High-water-mark gauge for hot paths (e.g. ladder rung depth).
class HotGauge {
 public:
  void observe_max(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

#else  // EEND_OBS_ENABLED == 0: empty twins, members compile out entirely.

class HotCounter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class HotGauge {
 public:
  void observe_max(std::uint64_t) {}
  std::uint64_t value() const { return 0; }
};

#endif

static_assert(kEnabled ? sizeof(HotCounter) == sizeof(std::uint64_t)
                       : sizeof(HotCounter) == 1,
              "disabled telemetry must compile hot counters down to nothing");

}  // namespace eend::obs
