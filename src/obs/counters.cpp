#include "obs/counters.hpp"

#include <bit>
#include <ostream>

#include "util/json.hpp"

namespace eend::obs {

std::size_t hist_bucket(std::uint64_t value) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistBuckets ? width : kHistBuckets - 1;
}

void HistogramData::observe(std::uint64_t value) {
  ++count;
  sum += value;
  ++buckets[hist_bucket(value)];
}

void HistogramData::merge_from(const HistogramData& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kHistBuckets; ++i) buckets[i] += other.buckets[i];
}

void CounterSnapshot::clear() {
  counters.clear();
  histograms.clear();
}

void CounterSnapshot::merge_from(const CounterSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, hist] : other.histograms)
    histograms[name].merge_from(hist);
}

void CounterSnapshot::write_jsonl(std::ostream& os,
                                  std::string_view experiment) const {
  const std::string exp = json::dump(json::Value(std::string(experiment)));
  for (const auto& [name, value] : counters) {
    os << "{\"experiment\":" << exp << ",\"counter\":"
       << json::dump(json::Value(name)) << ",\"value\":" << value << "}\n";
  }
  for (const auto& [name, hist] : histograms) {
    os << "{\"experiment\":" << exp << ",\"histogram\":"
       << json::dump(json::Value(name)) << ",\"count\":" << hist.count
       << ",\"sum\":" << hist.sum << ",\"buckets\":[";
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (i != 0) os << ',';
      os << hist.buckets[i];
    }
    os << "]}\n";
  }
}

#if EEND_OBS_ENABLED

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void CounterRegistry::observe(std::string_view name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    it->second.observe(value);
  } else {
    histograms_.emplace(std::string(name), HistogramData{}).first->second
        .observe(value);
  }
}

CounterSnapshot CounterRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CounterSnapshot snap;
  for (const auto& [name, value] : counters_) snap.counters[name] = value;
  for (const auto& [name, hist] : histograms_) snap.histograms[name] = hist;
  return snap;
}

namespace {
thread_local CounterRegistry* tls_current = nullptr;
}  // namespace

CounterRegistry* current() { return tls_current; }

ScopedRegistry::ScopedRegistry(CounterRegistry* reg) : prev_(tls_current) {
  tls_current = reg;
}

ScopedRegistry::~ScopedRegistry() { tls_current = prev_; }

void count(std::string_view name, std::uint64_t delta) {
  if (CounterRegistry* reg = tls_current) reg->add(name, delta);
}

void observe(std::string_view name, std::uint64_t value) {
  if (CounterRegistry* reg = tls_current) reg->observe(name, value);
}

#else  // EEND_OBS_ENABLED == 0

void CounterRegistry::add(std::string_view, std::uint64_t) {}
void CounterRegistry::observe(std::string_view, std::uint64_t) {}
CounterSnapshot CounterRegistry::snapshot() const { return {}; }

CounterRegistry* current() { return nullptr; }
ScopedRegistry::ScopedRegistry(CounterRegistry*) : prev_(nullptr) {}
ScopedRegistry::~ScopedRegistry() = default;
void count(std::string_view, std::uint64_t) {}
void observe(std::string_view, std::uint64_t) {}

#endif

}  // namespace eend::obs
