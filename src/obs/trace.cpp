#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <tuple>

#include "util/json.hpp"

namespace eend::obs {

namespace {

std::atomic<TraceCollector*> g_trace{nullptr};

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::add(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

double TraceCollector::now_us() const {
  return to_us(std::chrono::steady_clock::now() - epoch_);
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.pid, a.tid, a.ts_us, a.name) <
                     std::tie(b.pid, b.tid, b.ts_us, b.name);
            });
  return out;
}

void TraceCollector::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> sorted = events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : sorted) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":" << json::dump(json::Value(e.name))
       << ",\"ph\":\"X\",\"ts\":" << json::dump(json::Value(e.ts_us))
       << ",\"dur\":" << json::dump(json::Value(e.dur_us))
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void set_trace(TraceCollector* collector) {
  g_trace.store(collector, std::memory_order_release);
}

TraceCollector* trace() { return g_trace.load(std::memory_order_acquire); }

bool tracing() { return kEnabled && trace() != nullptr; }

void emit_span(const char* name, double ts_us, double dur_us,
               std::uint32_t pid, std::uint32_t tid) {
  if (!kEnabled) return;
  if (TraceCollector* tc = trace()) {
    TraceEvent e;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    tc->add(std::move(e));
  }
}

double trace_now_us() {
  if (!kEnabled) return 0.0;
  TraceCollector* tc = trace();
  return tc != nullptr ? tc->now_us() : 0.0;
}

PhaseTimer::PhaseTimer(std::string name, std::uint32_t pid, std::uint32_t tid)
    : name_(std::move(name)),
      pid_(pid),
      tid_(tid),
      start_(std::chrono::steady_clock::now()) {}

PhaseTimer::~PhaseTimer() { stop(); }

double PhaseTimer::elapsed_s() const {
  if (stopped_) return stopped_elapsed_s_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double PhaseTimer::stop() {
  if (stopped_) return stopped_elapsed_s_;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  stopped_elapsed_s_ = std::chrono::duration<double>(end - start_).count();
  if (kEnabled) {
    if (TraceCollector* tc = trace()) {
      TraceEvent e;
      e.name = name_;
      e.pid = pid_;
      e.tid = tid_;
      e.ts_us = to_us(start_ - tc->epoch());
      e.dur_us = to_us(end - start_);
      if (e.ts_us < 0.0) e.ts_us = 0.0;
      tc->add(std::move(e));
    }
  }
  return stopped_elapsed_s_;
}

}  // namespace eend::obs
