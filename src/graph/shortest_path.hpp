// Shortest-path algorithms over Graph: Dijkstra (primary) and Bellman-Ford
// (used as a test oracle). Both operate on edge weights; an optional
// node-cost hook lets callers fold node weights into path costs, which the
// joint-optimization routing metric h(u,v,r) requires.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace eend::graph {

/// Result of a single-source shortest-path computation.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<double> distance;   ///< kInfCost when unreachable
  std::vector<NodeId> parent;     ///< kInvalidNode for source/unreachable

  bool reachable(NodeId v) const { return distance[v] < kInfCost; }

  /// Reconstruct source -> v as a node sequence (empty if unreachable).
  std::vector<NodeId> path_to(NodeId v) const;
};

/// Additional per-node cost charged when a path *enters* node v (not charged
/// for source or destination). Used to express node-weighted problems on an
/// edge-weighted solver; pass nullptr for pure edge-weighted paths.
using NodeCostFn = std::function<double(NodeId)>;

/// Dijkstra from `source`. Edge weights must be non-negative; throws
/// CheckError otherwise (checked lazily as edges are relaxed).
ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const NodeCostFn& node_cost = nullptr);

/// Bellman-Ford oracle; O(VE), tolerant of zero weights, used in tests to
/// validate Dijkstra on random graphs.
ShortestPathTree bellman_ford(const Graph& g, NodeId source,
                              const NodeCostFn& node_cost = nullptr);

/// Total edge weight of a node path (kInfCost if any hop is missing).
double path_cost(const Graph& g, std::span<const NodeId> path);

/// Hop count convenience: number of edges in the path.
inline std::size_t path_hops(std::span<const NodeId> path) {
  return path.empty() ? 0 : path.size() - 1;
}

}  // namespace eend::graph
