#include "graph/graph.hpp"

#include <algorithm>

namespace eend::graph {

NodeId Graph::add_node(double weight) {
  adjacency_.emplace_back();
  node_weight_.push_back(weight);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v, double weight) {
  EEND_REQUIRE(valid_node(u) && valid_node(v));
  EEND_REQUIRE_MSG(weight >= 0.0, "edge weight must be non-negative");
  EEND_REQUIRE_MSG(u != v, "self-loops are not allowed");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  adjacency_[u].push_back(Adjacency{v, id});
  adjacency_[v].push_back(Adjacency{u, id});
  return id;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  EEND_REQUIRE(valid_node(u) && valid_node(v));
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::any_of(smaller.begin(), smaller.end(),
                     [&](const Adjacency& a) { return a.neighbor == target; });
}

double Graph::edge_weight_between(NodeId u, NodeId v) const {
  EEND_REQUIRE(valid_node(u) && valid_node(v));
  double best = kInfCost;
  for (const auto& a : adjacency_[u])
    if (a.neighbor == v) best = std::min(best, edges_[a.edge].weight);
  return best;
}

}  // namespace eend::graph
