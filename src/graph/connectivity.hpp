// Connectivity queries used by scenario builders (reject disconnected
// placements) and by the design-problem solvers (feasibility checks).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eend::graph {

/// Component label per node; labels are dense in [0, #components).
struct Components {
  std::vector<NodeId> label;
  std::size_t count = 0;

  bool same(NodeId u, NodeId v) const { return label[u] == label[v]; }
};

/// BFS-based connected components of the whole graph.
Components connected_components(const Graph& g);

/// Is the whole graph one component? (Empty graphs count as connected.)
bool is_connected(const Graph& g);

/// Are all demand endpoints pairwise connected within the subgraph induced
/// by `active` nodes? Edges incident to inactive nodes are ignored.
bool demands_satisfiable(const Graph& g, std::span<const Demand> demands,
                         const std::vector<bool>& active);

/// BFS hop distance (unweighted) from source; kInvalidNode-distance encoded
/// as std::numeric_limits<std::uint32_t>::max() for unreachable nodes.
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

}  // namespace eend::graph
