// Steiner tree approximations.
//
// Section 3 of the paper frames energy-efficient network design as a
// node-weighted buy-at-bulk problem whose special cases are node-weighted
// Steiner tree/forest. The centralized solvers here are the analysis-side
// counterparts of the distributed heuristics:
//
//  * kmb_steiner_tree      — Kou–Markowsky–Berman 2(1-1/t) approximation for
//                            the *edge-weighted* Steiner tree; this is the
//                            "MPC-style" building block (reduce node weights
//                            into edge weights, then solve edge-weighted).
//  * klein_ravi_steiner    — Klein–Ravi greedy spider 2·ln(t) approximation
//                            for the *node-weighted* Steiner tree.
#pragma once

#include <set>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace eend::graph {

/// A Steiner tree: the set of selected nodes and edges plus cost breakdown.
struct SteinerTree {
  std::vector<NodeId> nodes;   ///< all nodes in the tree (incl. terminals)
  std::vector<EdgeId> edges;   ///< tree edges
  double edge_cost = 0.0;      ///< sum of edge weights
  double node_cost = 0.0;      ///< sum of node weights of non-terminal nodes
  bool feasible = false;       ///< all terminals connected
};

/// Edge-weighted Steiner tree via KMB: metric closure over the terminals,
/// MST of the closure, expansion to shortest paths, MST again, leaf pruning.
/// Approximation factor 2(1 - 1/t) on the edge-weighted optimum.
SteinerTree kmb_steiner_tree(const Graph& g,
                             std::span<const NodeId> terminals);

/// Node-weighted Steiner tree via the Klein–Ravi greedy spider algorithm.
/// Terminal node weights are treated as 0 (the paper's c(si)=c(di)=0
/// simplification). Approximation factor 2·ln(t) on the node-weighted
/// optimum.
SteinerTree klein_ravi_steiner(const Graph& g,
                               std::span<const NodeId> terminals);

/// Exact node-weighted Steiner tree by exhaustive search over subsets of
/// optional nodes. Exponential; only valid for small instances (< ~20
/// optional nodes). Used as a test oracle for the approximations.
SteinerTree exact_node_weighted_steiner(const Graph& g,
                                        std::span<const NodeId> terminals);

/// Remove non-terminal leaves from `edges` until none remain (the final
/// KMB cleanup step). The fixed point is unique whatever the removal
/// order. Exposed for tests pinning the worklist implementation against
/// the reference sweep.
void prune_leaves(const Graph& g, std::span<const NodeId> terminals,
                  std::set<EdgeId>& edges);

}  // namespace eend::graph
