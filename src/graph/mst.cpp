#include "graph/mst.hpp"

#include <queue>

namespace eend::graph {

MstResult prim_mst(const Graph& g, NodeId root) {
  MstResult r;
  if (g.node_count() == 0) {
    r.connected = true;
    return r;
  }
  EEND_REQUIRE(g.valid_node(root));
  std::vector<bool> in_tree(g.node_count(), false);
  using Item = std::pair<double, EdgeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;

  auto add_node = [&](NodeId v) {
    in_tree[v] = true;
    for (const auto& [nbr, e] : g.neighbors(v))
      if (!in_tree[nbr]) pq.emplace(g.edge(e).weight, e);
  };
  add_node(root);

  std::size_t reached = 1;
  while (!pq.empty() && reached < g.node_count()) {
    const auto [w, e] = pq.top();
    pq.pop();
    const Edge& edge = g.edge(e);
    const NodeId next = in_tree[edge.u] ? edge.v : edge.u;
    if (in_tree[next]) continue;
    r.edges.push_back(e);
    r.total_weight += w;
    ++reached;
    add_node(next);
  }
  r.connected = reached == g.node_count();
  return r;
}

}  // namespace eend::graph
