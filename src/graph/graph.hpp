// Undirected weighted graph with optional node weights.
//
// This is the substrate for the design-problem formulation of Section 3:
// edge weights model communication cost (w(e) from Ptx + Prx) and node
// weights model idling cost (c(v) = Pidle or Psleep). The same structure
// backs connectivity graphs derived from radio range in the simulator.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace eend::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// One endpoint record in an adjacency list.
struct Adjacency {
  NodeId neighbor;
  EdgeId edge;
};

/// Undirected edge with a non-negative weight.
struct Edge {
  NodeId u;
  NodeId v;
  double weight;

  NodeId other(NodeId x) const {
    EEND_REQUIRE(x == u || x == v);
    return x == u ? v : u;
  }
};

/// Undirected graph. Nodes are dense ids [0, node_count). Parallel edges are
/// permitted (the design problem never needs them, but nothing breaks).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count)
      : adjacency_(node_count), node_weight_(node_count, 0.0) {}

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Append a new node, returning its id.
  NodeId add_node(double weight = 0.0);

  /// Add an undirected edge; returns its id. Weight must be >= 0.
  EdgeId add_edge(NodeId u, NodeId v, double weight = 1.0);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  Edge& edge(EdgeId e) { return edges_[e]; }

  double node_weight(NodeId v) const { return node_weight_[v]; }
  void set_node_weight(NodeId v, double w) { node_weight_[v] = w; }

  std::span<const Adjacency> neighbors(NodeId v) const {
    return adjacency_[v];
  }

  std::size_t degree(NodeId v) const { return adjacency_[v].size(); }

  const std::vector<Edge>& edges() const { return edges_; }

  bool valid_node(NodeId v) const { return v < adjacency_.size(); }

  /// Does an edge (u,v) exist (in either direction)?
  bool has_edge(NodeId u, NodeId v) const;

  /// Find the minimum-weight edge between u and v, or kInfCost if none.
  double edge_weight_between(NodeId u, NodeId v) const;

 private:
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<Edge> edges_;
  std::vector<double> node_weight_;
};

/// A source-destination traffic demand (si, di, ri) from the Section 3
/// problem definition.
struct Demand {
  NodeId source;
  NodeId destination;
  double rate = 1.0;  ///< non-negative demand r_i
};

}  // namespace eend::graph
