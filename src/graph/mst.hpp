// Minimum spanning tree (Prim) — building block for the KMB Steiner-tree
// approximation used by the centralized design-problem solvers.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eend::graph {

/// Result of an MST computation: selected edge ids and total weight.
struct MstResult {
  std::vector<EdgeId> edges;
  double total_weight = 0.0;
  bool connected = false;  ///< true iff all nodes were reached
};

/// Prim's algorithm from node 0 (or `root`). Isolated graphs yield
/// connected == false and a spanning forest of the root's component.
MstResult prim_mst(const Graph& g, NodeId root = 0);

}  // namespace eend::graph
