#include "graph/connectivity.hpp"

#include <queue>

namespace eend::graph {

Components connected_components(const Graph& g) {
  Components c;
  c.label.assign(g.node_count(), kInvalidNode);
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (c.label[start] != kInvalidNode) continue;
    const auto id = static_cast<NodeId>(c.count++);
    std::queue<NodeId> q;
    q.push(start);
    c.label[start] = id;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const auto& [v, e] : g.neighbors(u)) {
        (void)e;
        if (c.label[v] == kInvalidNode) {
          c.label[v] = id;
          q.push(v);
        }
      }
    }
  }
  return c;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  return connected_components(g).count == 1;
}

bool demands_satisfiable(const Graph& g, std::span<const Demand> demands,
                         const std::vector<bool>& active) {
  EEND_REQUIRE(active.size() == g.node_count());
  // BFS in the induced subgraph from each unique source.
  for (const Demand& d : demands) {
    if (!active[d.source] || !active[d.destination]) return false;
    std::vector<bool> seen(g.node_count(), false);
    std::queue<NodeId> q;
    q.push(d.source);
    seen[d.source] = true;
    bool found = d.source == d.destination;
    while (!q.empty() && !found) {
      const NodeId u = q.front();
      q.pop();
      for (const auto& [v, e] : g.neighbors(u)) {
        (void)e;
        if (!active[v] || seen[v]) continue;
        seen[v] = true;
        if (v == d.destination) {
          found = true;
          break;
        }
        q.push(v);
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  EEND_REQUIRE(g.valid_node(source));
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.node_count(), kUnreached);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const auto& [v, e] : g.neighbors(u)) {
      (void)e;
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

}  // namespace eend::graph
