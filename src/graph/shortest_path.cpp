#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

namespace eend::graph {

std::vector<NodeId> ShortestPathTree::path_to(NodeId v) const {
  if (!reachable(v)) return {};
  std::vector<NodeId> rev;
  for (NodeId cur = v; cur != kInvalidNode; cur = parent[cur]) {
    rev.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(rev.begin(), rev.end());
  EEND_CHECK(!rev.empty() && rev.front() == source);
  return rev;
}

namespace {
ShortestPathTree make_tree(const Graph& g, NodeId source) {
  EEND_REQUIRE(g.valid_node(source));
  ShortestPathTree t;
  t.source = source;
  t.distance.assign(g.node_count(), kInfCost);
  t.parent.assign(g.node_count(), kInvalidNode);
  t.distance[source] = 0.0;
  return t;
}

double enter_cost(const NodeCostFn& node_cost, NodeId v) {
  return node_cost ? node_cost(v) : 0.0;
}
}  // namespace

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const NodeCostFn& node_cost) {
  ShortestPathTree t = make_tree(g, source);
  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.distance[u]) continue;  // stale entry
    for (const auto& [v, e] : g.neighbors(u)) {
      const double w = g.edge(e).weight;
      EEND_CHECK_MSG(w >= 0.0, "Dijkstra requires non-negative weights");
      const double nd = d + w + enter_cost(node_cost, v);
      if (nd < t.distance[v]) {
        t.distance[v] = nd;
        t.parent[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return t;
}

ShortestPathTree bellman_ford(const Graph& g, NodeId source,
                              const NodeCostFn& node_cost) {
  ShortestPathTree t = make_tree(g, source);
  const std::size_t n = g.node_count();
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      auto relax = [&](NodeId from, NodeId to) {
        if (t.distance[from] == kInfCost) return;
        const double nd =
            t.distance[from] + e.weight + enter_cost(node_cost, to);
        if (nd < t.distance[to]) {
          t.distance[to] = nd;
          t.parent[to] = from;
          changed = true;
        }
      };
      relax(e.u, e.v);
      relax(e.v, e.u);
    }
    if (!changed) break;
  }
  return t;
}

double path_cost(const Graph& g, std::span<const NodeId> path) {
  if (path.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double w = g.edge_weight_between(path[i], path[i + 1]);
    if (w == kInfCost) return kInfCost;
    total += w;
  }
  return total;
}

}  // namespace eend::graph
