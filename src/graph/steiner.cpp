#include "graph/steiner.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "graph/connectivity.hpp"
#include "graph/mst.hpp"
#include "graph/shortest_path.hpp"

namespace eend::graph {

namespace {

bool is_terminal(std::span<const NodeId> terminals, NodeId v) {
  return std::find(terminals.begin(), terminals.end(), v) != terminals.end();
}

/// Build the result record from a set of tree edges in g.
SteinerTree assemble(const Graph& g, std::span<const NodeId> terminals,
                     const std::set<EdgeId>& edges) {
  SteinerTree t;
  std::set<NodeId> nodes(terminals.begin(), terminals.end());
  for (EdgeId e : edges) {
    nodes.insert(g.edge(e).u);
    nodes.insert(g.edge(e).v);
    t.edge_cost += g.edge(e).weight;
  }
  t.edges.assign(edges.begin(), edges.end());
  t.nodes.assign(nodes.begin(), nodes.end());
  for (NodeId v : t.nodes)
    if (!is_terminal(terminals, v)) t.node_cost += g.node_weight(v);

  // Feasibility: all terminals in one component of the tree subgraph.
  std::map<NodeId, std::vector<std::pair<NodeId, EdgeId>>> adj;
  for (EdgeId e : edges) {
    adj[g.edge(e).u].push_back({g.edge(e).v, e});
    adj[g.edge(e).v].push_back({g.edge(e).u, e});
  }
  if (terminals.empty()) {
    t.feasible = true;
    return t;
  }
  std::set<NodeId> seen;
  std::queue<NodeId> q;
  q.push(terminals[0]);
  seen.insert(terminals[0]);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const auto& [v, e] : adj[u]) {
      (void)e;
      if (seen.insert(v).second) q.push(v);
    }
  }
  t.feasible = std::all_of(terminals.begin(), terminals.end(),
                           [&](NodeId v) { return seen.count(v) > 0; });
  return t;
}

}  // namespace

/// Remove non-terminal leaves repeatedly (final KMB step). The leaf-removal
/// fixed point is unique whatever the removal order, so a worklist over
/// incremental degree counts visits each edge O(1) times instead of
/// rebuilding the full incident map every sweep.
void prune_leaves(const Graph& g, std::span<const NodeId> terminals,
                  std::set<EdgeId>& edges) {
  std::map<NodeId, std::vector<EdgeId>> incident;
  for (EdgeId e : edges) {
    incident[g.edge(e).u].push_back(e);
    incident[g.edge(e).v].push_back(e);
  }
  std::map<NodeId, std::size_t> degree;
  std::vector<NodeId> work;
  for (const auto& [v, inc] : incident) {
    degree[v] = inc.size();
    if (inc.size() == 1 && !is_terminal(terminals, v)) work.push_back(v);
  }
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    if (degree[v] != 1) continue;  // re-queued stale entry or already pruned
    for (EdgeId e : incident[v]) {
      if (!edges.erase(e)) continue;  // edge already pruned from the far side
      const Edge& ed = g.edge(e);
      const NodeId other = ed.u == v ? ed.v : ed.u;
      --degree[v];
      if (--degree[other] == 1 && !is_terminal(terminals, other))
        work.push_back(other);
      break;  // degree was 1: exactly one live incident edge existed
    }
  }
}

SteinerTree kmb_steiner_tree(const Graph& g,
                             std::span<const NodeId> terminals) {
  EEND_REQUIRE(!terminals.empty());
  for (NodeId t : terminals) EEND_REQUIRE(g.valid_node(t));
  if (terminals.size() == 1) {
    SteinerTree t;
    t.nodes.assign(terminals.begin(), terminals.end());
    t.feasible = true;
    return t;
  }

  // 1. Shortest paths from every terminal.
  std::vector<ShortestPathTree> spt;
  spt.reserve(terminals.size());
  for (NodeId t : terminals) spt.push_back(dijkstra(g, t));

  // 2. Metric closure over terminals + 3. MST of the closure (Prim inline).
  const std::size_t k = terminals.size();
  std::vector<bool> in_tree(k, false);
  std::vector<double> best(k, kInfCost);
  std::vector<std::size_t> best_from(k, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < k; ++j) {
    best[j] = spt[0].distance[terminals[j]];
    best_from[j] = 0;
  }
  std::set<EdgeId> chosen;
  for (std::size_t round = 1; round < k; ++round) {
    std::size_t next = k;
    for (std::size_t j = 0; j < k; ++j)
      if (!in_tree[j] && (next == k || best[j] < best[next])) next = j;
    if (next == k || best[next] == kInfCost) {
      // Disconnected terminals: return infeasible result.
      return assemble(g, terminals, chosen);
    }
    // 4. Expand the closure edge into its underlying graph path.
    const auto path = spt[best_from[next]].path_to(terminals[next]);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      // Pick the cheapest edge between consecutive path nodes.
      EdgeId cheapest = kInvalidNode;
      double w = kInfCost;
      for (const auto& [nbr, e] : g.neighbors(path[i]))
        if (nbr == path[i + 1] && g.edge(e).weight < w) {
          w = g.edge(e).weight;
          cheapest = e;
        }
      EEND_CHECK(cheapest != kInvalidNode);
      chosen.insert(cheapest);
    }
    in_tree[next] = true;
    for (std::size_t j = 0; j < k; ++j)
      if (!in_tree[j] && spt[next].distance[terminals[j]] < best[j]) {
        best[j] = spt[next].distance[terminals[j]];
        best_from[j] = next;
      }
  }

  // 5. MST over the union subgraph, then prune non-terminal leaves.
  // Build an induced subgraph on `chosen`, run Prim, map edges back.
  {
    std::map<NodeId, NodeId> remap;
    Graph sub;
    std::vector<EdgeId> back;
    for (EdgeId e : chosen) {
      for (NodeId endpoint : {g.edge(e).u, g.edge(e).v})
        if (!remap.count(endpoint)) {
          remap[endpoint] = sub.add_node();
        }
      sub.add_edge(remap[g.edge(e).u], remap[g.edge(e).v], g.edge(e).weight);
      back.push_back(e);
    }
    if (sub.node_count() > 0) {
      const MstResult mst = prim_mst(sub, 0);
      std::set<EdgeId> kept;
      for (EdgeId se : mst.edges) kept.insert(back[se]);
      chosen = std::move(kept);
    }
  }
  prune_leaves(g, terminals, chosen);
  return assemble(g, terminals, chosen);
}

SteinerTree klein_ravi_steiner(const Graph& g,
                               std::span<const NodeId> terminals) {
  EEND_REQUIRE(!terminals.empty());
  for (NodeId t : terminals) EEND_REQUIRE(g.valid_node(t));

  // Node cost: terminals are free (c(si) = c(di) = 0 per the paper).
  auto cost_of = [&](NodeId v) {
    return is_terminal(terminals, v) ? 0.0 : g.node_weight(v);
  };

  // Components: start with each terminal alone. We track, per node, which
  // component it belongs to (kInvalidNode = none yet). Selected nodes form
  // the growing solution.
  std::vector<NodeId> comp(g.node_count(), kInvalidNode);
  std::set<NodeId> selected(terminals.begin(), terminals.end());
  NodeId next_comp = 0;
  for (NodeId t : terminals)
    if (comp[t] == kInvalidNode) comp[t] = next_comp++;
  std::size_t active_components = next_comp;

  // Node-weighted shortest path FROM a candidate spider center v to each
  // component: weight of a path = sum of costs of intermediate nodes (both
  // endpoints excluded; the center is charged separately).
  auto spider_paths = [&](NodeId center) {
    // Dijkstra where entering node u costs cost_of(u), except entering a
    // node already in `selected` costs 0 (it is already paid for).
    std::vector<double> dist(g.node_count(), kInfCost);
    std::vector<NodeId> par(g.node_count(), kInvalidNode);
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[center] = 0.0;
    pq.emplace(0.0, center);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, e] : g.neighbors(u)) {
        (void)e;
        const double step = selected.count(v) ? 0.0 : cost_of(v);
        const double nd = d + step;
        if (nd < dist[v]) {
          dist[v] = nd;
          par[v] = u;
          pq.emplace(nd, v);
        }
      }
    }
    return std::make_pair(std::move(dist), std::move(par));
  };

  while (active_components > 1) {
    double best_ratio = kInfCost;
    NodeId best_center = kInvalidNode;
    std::vector<NodeId> best_targets;  // one representative node per comp

    for (NodeId center = 0; center < g.node_count(); ++center) {
      auto [dist, par] = spider_paths(center);
      (void)par;  // only the winning center's parents are needed (below)
      // Cheapest touch-point per component.
      std::map<NodeId, std::pair<double, NodeId>> comp_best;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (comp[v] == kInvalidNode || dist[v] == kInfCost) continue;
        auto it = comp_best.find(comp[v]);
        if (it == comp_best.end() || dist[v] < it->second.first)
          comp_best[comp[v]] = {dist[v], v};
      }
      if (comp_best.size() < 2) continue;
      std::vector<std::pair<double, NodeId>> legs;
      legs.reserve(comp_best.size());
      for (const auto& [c, leg] : comp_best) {
        (void)c;
        legs.push_back(leg);
      }
      std::sort(legs.begin(), legs.end());
      // Try spider degrees 2..all, pick the best cost/#components ratio.
      const double center_cost = selected.count(center) ? 0.0 : cost_of(center);
      double acc = center_cost;
      for (std::size_t i = 0; i < legs.size(); ++i) {
        acc += legs[i].first;
        const std::size_t deg = i + 1;
        if (deg < 2) continue;
        const double ratio = acc / static_cast<double>(deg);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_center = center;
          best_targets.clear();
          for (std::size_t j = 0; j <= i; ++j)
            best_targets.push_back(legs[j].second);
        }
      }
    }

    if (best_center == kInvalidNode) {
      // Cannot merge further — terminals are disconnected.
      break;
    }

    // Re-derive the winning spider's parent links with one extra Dijkstra
    // (`selected` is unchanged since the argmin scan, so the run is
    // identical) instead of copying the N-sized parent vector on every
    // ratio improvement inside the O(centers × merges) loop.
    const std::vector<NodeId> best_parent = spider_paths(best_center).second;

    // Apply the spider: select center and all path nodes; merge components.
    const NodeId merged = comp[best_targets[0]];
    auto select_node = [&](NodeId v) {
      selected.insert(v);
      if (comp[v] == kInvalidNode) comp[v] = merged;
    };
    select_node(best_center);
    for (NodeId target : best_targets) {
      for (NodeId cur = target; cur != kInvalidNode && cur != best_center;
           cur = best_parent[cur])
        select_node(cur);
    }
    // Relabel all nodes of merged components.
    std::set<NodeId> merged_comps;
    for (NodeId target : best_targets) merged_comps.insert(comp[target]);
    for (NodeId v = 0; v < g.node_count(); ++v)
      if (comp[v] != kInvalidNode && merged_comps.count(comp[v]))
        comp[v] = merged;
    active_components -= merged_comps.size() - 1;
  }

  // Materialize tree edges: run an MST restricted to selected nodes (any
  // spanning structure works; MST keeps edge cost tidy), then prune.
  std::set<EdgeId> edges;
  {
    std::map<NodeId, NodeId> remap;
    Graph sub;
    std::vector<EdgeId> back;
    for (NodeId v : selected) remap[v] = sub.add_node();
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(static_cast<EdgeId>(e));
      if (remap.count(ed.u) && remap.count(ed.v)) {
        sub.add_edge(remap[ed.u], remap[ed.v], ed.weight);
        back.push_back(static_cast<EdgeId>(e));
      }
    }
    if (sub.node_count() > 0) {
      const MstResult mst = prim_mst(sub, 0);
      for (EdgeId se : mst.edges) edges.insert(back[se]);
    }
  }
  prune_leaves(g, terminals, edges);
  return assemble(g, terminals, edges);
}

SteinerTree exact_node_weighted_steiner(const Graph& g,
                                        std::span<const NodeId> terminals) {
  EEND_REQUIRE(!terminals.empty());
  std::vector<NodeId> optional;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (!is_terminal(terminals, v)) optional.push_back(v);
  EEND_REQUIRE_MSG(optional.size() <= 20,
                   "exact solver limited to 20 optional nodes");

  SteinerTree best;
  double best_cost = kInfCost;
  const std::size_t subsets = std::size_t{1} << optional.size();
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    std::vector<bool> active(g.node_count(), false);
    for (NodeId t : terminals) active[t] = true;
    double node_cost = 0.0;
    for (std::size_t i = 0; i < optional.size(); ++i)
      if (mask & (std::size_t{1} << i)) {
        active[optional[i]] = true;
        node_cost += g.node_weight(optional[i]);
      }
    if (node_cost >= best_cost) continue;
    std::vector<Demand> pairwise;
    for (std::size_t i = 1; i < terminals.size(); ++i)
      pairwise.push_back({terminals[0], terminals[i], 1.0});
    if (!demands_satisfiable(g, pairwise, active)) continue;
    // Tree edges: MST over the active induced subgraph.
    std::map<NodeId, NodeId> remap;
    Graph sub;
    std::vector<EdgeId> back;
    for (NodeId v = 0; v < g.node_count(); ++v)
      if (active[v]) remap[v] = sub.add_node();
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      if (remap.count(ed.u) && remap.count(ed.v)) {
        sub.add_edge(remap[ed.u], remap[ed.v], ed.weight);
        back.push_back(e);
      }
    }
    // Root Prim at terminals[0]'s remapped id: rooting at remapped id 0
    // (the lowest active id) spans the wrong component — and silently
    // rejects a feasible candidate — whenever the mask activates an
    // optional node below terminals[0] that is disconnected from them.
    const MstResult mst = prim_mst(sub, remap.at(terminals[0]));
    std::set<EdgeId> edges;
    for (EdgeId se : mst.edges) edges.insert(back[se]);
    prune_leaves(g, terminals, edges);
    SteinerTree cand = assemble(g, terminals, edges);
    if (cand.feasible && cand.node_cost < best_cost) {
      best_cost = cand.node_cost;
      best = std::move(cand);
    }
  }
  return best;
}

}  // namespace eend::graph
