#include "traffic/cbr.hpp"

namespace eend::traffic {

CbrSource::CbrSource(sim::Simulator& sim, routing::RoutingProtocol& routing,
                     FlowSpec spec, std::function<void(const FlowSpec&)> on_sent)
    : sim_(sim), routing_(routing), spec_(spec), on_sent_(std::move(on_sent)) {
  EEND_REQUIRE(spec_.packets_per_s > 0.0);
  EEND_REQUIRE(spec_.payload_bits > 0);
}

void CbrSource::start() {
  const double at = std::max(spec_.start_s, sim_.now());
  sim_.schedule_at(at, [this] { tick(); });
}

void CbrSource::tick() {
  if (sim_.now() >= spec_.stop_s) return;
  mac::Packet p;
  p.uid = (static_cast<std::uint64_t>(spec_.flow_id + 1) << 40) | next_uid_++;
  p.category = energy::Category::Data;
  p.flow_id = spec_.flow_id;
  p.origin = spec_.source;
  p.final_dest = spec_.destination;
  p.size_bits = spec_.payload_bits;
  p.created_at = sim_.now();
  ++sent_;
  if (on_sent_) on_sent_(spec_);
  routing_.send_data(std::move(p));
  sim_.schedule_in(1.0 / spec_.packets_per_s, [this] { tick(); });
}

}  // namespace eend::traffic
