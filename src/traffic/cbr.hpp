// Constant-bit-rate traffic sources — the workload of every experiment in
// the paper (§5.2: CBR flows, 128-byte packets, "2-6 Kbit/s (i.e., 2-6
// packets/s)", start times uniform in [20 s, 25 s]).
#pragma once

#include <cstdint>
#include <functional>

#include "routing/protocol.hpp"

namespace eend::traffic {

/// Specification of one CBR flow.
struct FlowSpec {
  int flow_id = 0;
  mac::NodeId source = 0;
  mac::NodeId destination = 0;
  double packets_per_s = 2.0;
  std::uint32_t payload_bits = 1024;  ///< 128-byte packets
  double start_s = 20.0;
  double stop_s = 1e18;  ///< defaults to "until simulation end"
};

/// CBR generator living at the flow's source node.
class CbrSource {
 public:
  /// `on_sent` fires for every generated packet (metrics hook).
  CbrSource(sim::Simulator& sim, routing::RoutingProtocol& routing,
            FlowSpec spec, std::function<void(const FlowSpec&)> on_sent);

  /// Arm the first packet at spec.start_s.
  void start();

  const FlowSpec& spec() const { return spec_; }
  std::uint64_t packets_sent() const { return sent_; }

 private:
  void tick();

  sim::Simulator& sim_;
  routing::RoutingProtocol& routing_;
  FlowSpec spec_;
  std::function<void(const FlowSpec&)> on_sent_;
  std::uint64_t sent_ = 0;
  std::uint64_t next_uid_ = 1;
};

}  // namespace eend::traffic
