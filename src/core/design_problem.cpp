#include "core/design_problem.hpp"

#include <algorithm>
#include <set>

#include "graph/shortest_path.hpp"
#include "obs/counters.hpp"
#include "spatial/grid_index.hpp"

namespace eend::core {

NetworkDesignProblem NetworkDesignProblem::from_positions(
    const std::vector<phy::Position>& positions,
    const energy::RadioCard& card) {
  EEND_REQUIRE_MSG(card.max_range_m > 0.0, "card range must be positive");
  graph::Graph g(positions.size());
  for (graph::NodeId v = 0; v < positions.size(); ++v)
    g.set_node_weight(v, card.p_idle);

  // Spatial index instead of the O(N²) all-pairs scan. The index's exact
  // boundary predicate computes the same distance expression as
  // phy::distance, so edge sets AND weights match the brute scan bitwise;
  // sorting each node's candidates by id restores the (i, j-ascending)
  // edge order the scan produced, keeping EdgeIds stable.
  spatial::GridIndex idx;
  idx.build(positions, card.max_range_m / 2.0);
  std::vector<std::pair<graph::NodeId, double>> above;  // neighbors j > i
  for (std::size_t i = 0; i < positions.size(); ++i) {
    above.clear();
    idx.for_each_within(i, card.max_range_m, [&](std::size_t j, double d) {
      if (j > i) above.emplace_back(static_cast<graph::NodeId>(j), d);
    });
    std::sort(above.begin(), above.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [j, d] : above)
      g.add_edge(static_cast<graph::NodeId>(i), j,
                 card.transmit_power(d) + card.p_rx);
  }
  return NetworkDesignProblem(std::move(g));
}

std::vector<graph::NodeId> NetworkDesignProblem::terminals() const {
  std::set<graph::NodeId> t;
  for (const auto& d : demands_) {
    t.insert(d.source);
    t.insert(d.destination);
  }
  return {t.begin(), t.end()};
}

graph::SteinerTree NetworkDesignProblem::solve_node_weighted() const {
  return graph::klein_ravi_steiner(graph_, terminals());
}

graph::SteinerTree NetworkDesignProblem::solve_mpc_reduction() const {
  // Re-weight every edge with the idle cost of its (max-weight) endpoint:
  // the MPC trick of folding node weights into edges, valid when link
  // weights are bounded by node weights.
  graph::Graph g2(graph_.node_count());
  for (const auto& e : graph_.edges())
    g2.add_edge(e.u, e.v, std::max(graph_.node_weight(e.u),
                                   graph_.node_weight(e.v)));
  graph::SteinerTree t = graph::kmb_steiner_tree(g2, terminals());
  // Report costs against the *original* instance.
  graph::SteinerTree out = t;
  out.edge_cost = 0.0;
  out.node_cost = 0.0;
  const auto terms = terminals();
  for (graph::EdgeId e : t.edges) out.edge_cost += graph_.edge(e).weight;
  for (graph::NodeId v : t.nodes)
    if (std::find(terms.begin(), terms.end(), v) == terms.end())
      out.node_cost += graph_.node_weight(v);
  return out;
}

graph::SteinerTree NetworkDesignProblem::solve_edge_weighted() const {
  return graph::kmb_steiner_tree(graph_, terminals());
}

std::optional<std::vector<analytical::RoutedDemand>>
NetworkDesignProblem::try_route_in_subgraph(
    const std::vector<graph::NodeId>& allowed_nodes,
    std::size_t* failed_demand) const {
  std::vector<bool> allowed(graph_.node_count(), allowed_nodes.empty());
  for (graph::NodeId v : allowed_nodes) allowed[v] = true;

  // Shortest paths restricted to allowed nodes: block forbidden nodes with
  // an infinite entry cost (Dijkstra never expands them, so the search is
  // O(allowed subgraph), not O(full graph)).
  const auto node_cost = [&](graph::NodeId v) {
    return allowed[v] ? 0.0 : graph::kInfCost;
  };

  std::vector<analytical::RoutedDemand> routes;
  for (std::size_t i = 0; i < demands_.size(); ++i) {
    const auto& d = demands_[i];
    if (!allowed[d.source] || !allowed[d.destination]) {
      if (failed_demand) *failed_demand = i;
      return std::nullopt;
    }
    const auto spt = graph::dijkstra(graph_, d.source, node_cost);
    analytical::RoutedDemand rd;
    rd.demand = d;
    rd.packets = d.rate;
    rd.path = spt.path_to(d.destination);
    if (rd.path.empty()) {
      if (failed_demand) *failed_demand = i;
      return std::nullopt;
    }
    routes.push_back(std::move(rd));
  }
  return routes;
}

std::optional<std::vector<analytical::RoutedDemand>>
NetworkDesignProblem::try_route_in_subgraph_cached(
    const std::vector<graph::NodeId>& allowed_nodes,
    const std::vector<graph::NodeId>& cached_allowed,
    const std::vector<analytical::RoutedDemand>& cached_routes,
    std::size_t* failed_demand) const {
  // Subset precondition: every node allowed now must have been allowed when
  // the cache was built (an empty list means "all nodes"). Otherwise the
  // cache could hide a newly-created shorter path — fall back to the full
  // routine rather than risk a stale reuse.
  const bool usable = [&] {
    if (cached_routes.size() != demands_.size()) return false;
    if (cached_allowed.empty()) return true;
    if (allowed_nodes.empty()) return false;
    std::vector<bool> in_cache(graph_.node_count(), false);
    for (graph::NodeId v : cached_allowed) in_cache[v] = true;
    for (graph::NodeId v : allowed_nodes)
      if (!in_cache[v]) return false;
    return true;
  }();
  if (!usable) return try_route_in_subgraph(allowed_nodes, failed_demand);

  std::vector<bool> allowed(graph_.node_count(), allowed_nodes.empty());
  for (graph::NodeId v : allowed_nodes) allowed[v] = true;
  const auto node_cost = [&](graph::NodeId v) {
    return allowed[v] ? 0.0 : graph::kInfCost;
  };

  std::vector<analytical::RoutedDemand> routes;
  for (std::size_t i = 0; i < demands_.size(); ++i) {
    const auto& d = demands_[i];
    if (!allowed[d.source] || !allowed[d.destination]) {
      if (failed_demand) *failed_demand = i;
      return std::nullopt;
    }
    const analytical::RoutedDemand& c = cached_routes[i];
    const bool reuse =
        c.demand.source == d.source &&
        c.demand.destination == d.destination && !c.path.empty() &&
        std::all_of(c.path.begin(), c.path.end(),
                    [&](graph::NodeId v) { return bool(allowed[v]); });
    analytical::RoutedDemand rd;
    rd.demand = d;
    rd.packets = d.rate;
    if (reuse) {
      obs::count("opt.cache.route_hits");
      rd.path = c.path;
    } else {
      obs::count("opt.cache.route_misses");
      const auto spt = graph::dijkstra(graph_, d.source, node_cost);
      rd.path = spt.path_to(d.destination);
      if (rd.path.empty()) {
        if (failed_demand) *failed_demand = i;
        return std::nullopt;
      }
    }
    routes.push_back(std::move(rd));
  }
  return routes;
}

std::vector<analytical::RoutedDemand>
NetworkDesignProblem::route_in_subgraph(
    const std::vector<graph::NodeId>& allowed_nodes) const {
  std::size_t failed = 0;
  auto routes = try_route_in_subgraph(allowed_nodes, &failed);
  EEND_REQUIRE_MSG(routes.has_value(),
                   "demand " << demands_[failed].source << "->"
                             << demands_[failed].destination
                             << " unroutable within the allowed node set");
  return std::move(*routes);
}

analytical::Eq5Breakdown NetworkDesignProblem::evaluate_tree(
    const graph::SteinerTree& tree, const analytical::Eq5Params& p) const {
  EEND_REQUIRE_MSG(tree.feasible, "cannot evaluate an infeasible tree");
  return analytical::evaluate_eq5(graph_, route_in_subgraph(tree.nodes), p);
}

analytical::Eq5Breakdown NetworkDesignProblem::evaluate_shortest_paths(
    const analytical::Eq5Params& p) const {
  return analytical::evaluate_eq5(graph_, route_in_subgraph({}), p);
}

}  // namespace eend::core
