#include "core/design_problem.hpp"

#include <algorithm>
#include <set>

#include "graph/shortest_path.hpp"

namespace eend::core {

NetworkDesignProblem NetworkDesignProblem::from_positions(
    const std::vector<phy::Position>& positions,
    const energy::RadioCard& card) {
  graph::Graph g(positions.size());
  for (graph::NodeId v = 0; v < positions.size(); ++v)
    g.set_node_weight(v, card.p_idle);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const double d = phy::distance(positions[i], positions[j]);
      if (d <= card.max_range_m)
        g.add_edge(static_cast<graph::NodeId>(i),
                   static_cast<graph::NodeId>(j),
                   card.transmit_power(d) + card.p_rx);
    }
  }
  return NetworkDesignProblem(std::move(g));
}

std::vector<graph::NodeId> NetworkDesignProblem::terminals() const {
  std::set<graph::NodeId> t;
  for (const auto& d : demands_) {
    t.insert(d.source);
    t.insert(d.destination);
  }
  return {t.begin(), t.end()};
}

graph::SteinerTree NetworkDesignProblem::solve_node_weighted() const {
  return graph::klein_ravi_steiner(graph_, terminals());
}

graph::SteinerTree NetworkDesignProblem::solve_mpc_reduction() const {
  // Re-weight every edge with the idle cost of its (max-weight) endpoint:
  // the MPC trick of folding node weights into edges, valid when link
  // weights are bounded by node weights.
  graph::Graph g2(graph_.node_count());
  for (const auto& e : graph_.edges())
    g2.add_edge(e.u, e.v, std::max(graph_.node_weight(e.u),
                                   graph_.node_weight(e.v)));
  graph::SteinerTree t = graph::kmb_steiner_tree(g2, terminals());
  // Report costs against the *original* instance.
  graph::SteinerTree out = t;
  out.edge_cost = 0.0;
  out.node_cost = 0.0;
  const auto terms = terminals();
  for (graph::EdgeId e : t.edges) out.edge_cost += graph_.edge(e).weight;
  for (graph::NodeId v : t.nodes)
    if (std::find(terms.begin(), terms.end(), v) == terms.end())
      out.node_cost += graph_.node_weight(v);
  return out;
}

graph::SteinerTree NetworkDesignProblem::solve_edge_weighted() const {
  return graph::kmb_steiner_tree(graph_, terminals());
}

std::vector<analytical::RoutedDemand>
NetworkDesignProblem::route_in_subgraph(
    const std::vector<graph::NodeId>& allowed_nodes) const {
  std::vector<bool> allowed(graph_.node_count(), allowed_nodes.empty());
  for (graph::NodeId v : allowed_nodes) allowed[v] = true;

  // Shortest paths restricted to allowed nodes: block forbidden nodes with
  // an infinite entry cost.
  const auto node_cost = [&](graph::NodeId v) {
    return allowed[v] ? 0.0 : graph::kInfCost;
  };

  std::vector<analytical::RoutedDemand> routes;
  for (const auto& d : demands_) {
    const auto spt = graph::dijkstra(graph_, d.source, node_cost);
    analytical::RoutedDemand rd;
    rd.demand = d;
    rd.packets = d.rate;
    rd.path = spt.path_to(d.destination);
    EEND_REQUIRE_MSG(!rd.path.empty(), "demand " << d.source << "->"
                                                 << d.destination
                                                 << " unroutable");
    routes.push_back(std::move(rd));
  }
  return routes;
}

analytical::Eq5Breakdown NetworkDesignProblem::evaluate_tree(
    const graph::SteinerTree& tree, const analytical::Eq5Params& p) const {
  EEND_REQUIRE_MSG(tree.feasible, "cannot evaluate an infeasible tree");
  return analytical::evaluate_eq5(graph_, route_in_subgraph(tree.nodes), p);
}

analytical::Eq5Breakdown NetworkDesignProblem::evaluate_shortest_paths(
    const analytical::Eq5Params& p) const {
  return analytical::evaluate_eq5(graph_, route_in_subgraph({}), p);
}

}  // namespace eend::core
