#include "core/result_sink.hpp"

#include <map>
#include <ostream>
#include <utility>

#include "util/check.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace eend::core {

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void CsvSink::row(const ResultRow& r) {
  if (!header_written_) {
    os_ << "experiment,kind,series,x_name,x,runs,seed,metric,mean,ci95,n\n";
    header_written_ = true;
  }
  // Every field goes through the locale-independent formatters — raw
  // operator<< on integers would honor a grouping locale ("10.000").
  for (const MetricValue& m : r.metrics) {
    os_ << csv_quote(r.experiment) << ',' << csv_quote(r.kind) << ','
        << csv_quote(r.series) << ',' << csv_quote(r.x_name) << ','
        << format_double(r.x) << ',' << format_u64(r.runs) << ','
        << format_u64(r.seed) << ',' << csv_quote(m.name) << ','
        << format_double(m.mean) << ',' << format_double(m.ci95) << ','
        << format_u64(m.n) << '\n';
  }
}

void JsonlSink::row(const ResultRow& r) {
  // JSON numbers are doubles; a seed past 2^53 would round silently and
  // disagree with the CSV stream's exact value. Both entry points (manifest
  // parsing, eend_run --seed) enforce this cap — fail loudly if a
  // programmatic caller does not.
  EEND_CHECK_MSG(r.seed <= (1ull << 53),
                 "seed " << r.seed << " does not survive the JSON double "
                            "round-trip (cap: 2^53)");
  json::Object metrics;
  for (const MetricValue& m : r.metrics)
    metrics.emplace_back(
        m.name, json::Object{{"mean", json::Value(m.mean)},
                             {"ci95", json::Value(m.ci95)},
                             {"n", json::Value(static_cast<double>(m.n))}});
  const json::Object obj{
      {"experiment", json::Value(r.experiment)},
      {"kind", json::Value(r.kind)},
      {"series", json::Value(r.series)},
      {"x_name", json::Value(r.x_name)},
      {"x", json::Value(r.x)},
      {"runs", json::Value(static_cast<double>(r.runs))},
      {"seed", json::Value(static_cast<double>(r.seed))},
      {"metrics", json::Value(std::move(metrics))}};
  os_ << json::dump(json::Value(obj)) << '\n';
}

void TableSink::begin_experiment(const Experiment& e) {
  (void)e;
  rows_.clear();
}

void TableSink::row(const ResultRow& r) { rows_.push_back(r); }

void TableSink::end_experiment(const Experiment& e) {
  if (rows_.empty()) return;

  // Axes in first-seen order — the engine emits x-major, series-minor —
  // plus a (series, x) -> row index so the pivot below is O(cells log n)
  // instead of rescanning every row per cell.
  std::vector<double> xs;
  std::vector<std::string> series;
  std::map<std::pair<std::string, double>, const ResultRow*> cell_index;
  for (const ResultRow& r : rows_) {
    bool have_x = false;
    for (const double x : xs) have_x = have_x || x == r.x;
    if (!have_x) xs.push_back(r.x);
    bool have_s = false;
    for (const auto& s : series) have_s = have_s || s == r.series;
    if (!have_s) series.push_back(r.series);
    // Manifest parsing rejects duplicate cells, but programmatic callers
    // (stack_specs / cards built in bench code) can emit two series whose
    // labels render identically; collapsing them would silently drop one
    // series from the table while CSV/JSONL keep both.
    const bool inserted = cell_index.emplace(std::pair{r.series, r.x}, &r)
                              .second;
    EEND_CHECK_MSG(inserted, "duplicate cell (" << r.series << ", x=" << r.x
                             << ") in experiment " << r.experiment);
  }

  const auto x_header = [&]() -> std::string {
    switch (e.kind) {
      case ExperimentKind::Sweep:
      case ExperimentKind::Grid: return "rate (pkt/s)";
      case ExperimentKind::Density:
      case ExperimentKind::Design:
      case ExperimentKind::Replay: return "# of nodes";
      case ExperimentKind::Churn: return "epoch";
      case ExperimentKind::Mopt: return "R/B";
    }
    return "x";
  }();
  const auto x_cell = [&](double x) {
    switch (e.kind) {
      case ExperimentKind::Density:
      case ExperimentKind::Design:
      case ExperimentKind::Replay:
      case ExperimentKind::Churn:
        return std::to_string(static_cast<long long>(x));
      case ExperimentKind::Mopt: return Table::num(x, 2);
      default: return Table::num(x, 1);
    }
  };
  // Analytic kinds have no replication spread; "x +- 0" would be noise.
  const bool with_ci = e.kind == ExperimentKind::Sweep ||
                       e.kind == ExperimentKind::Density ||
                       e.kind == ExperimentKind::Design ||
                       e.kind == ExperimentKind::Replay ||
                       e.kind == ExperimentKind::Churn;

  for (const MetricSpec& metric : e.metrics) {
    std::vector<std::string> header{x_header};
    for (const auto& s : series) header.push_back(s);
    Table t(std::move(header));
    for (const double x : xs) {
      std::vector<std::string> cells{x_cell(x)};
      for (const auto& s : series) {
        const MetricValue* found = nullptr;
        const auto it = cell_index.find({s, x});
        if (it != cell_index.end())
          for (const MetricValue& m : it->second->metrics)
            if (m.name == metric.name) found = &m;
        EEND_CHECK_MSG(found, "metric " << metric.name << " missing for ("
                                        << s << ", x=" << x << ")");
        cells.push_back(with_ci
                            ? Table::num_ci(found->mean, found->ci95,
                                            metric.precision)
                            : Table::num(found->mean, metric.precision));
      }
      t.add_row(std::move(cells));
    }
    print_table(os_, e.title + " — " + metric_display_name(metric.name), t);
  }
  rows_.clear();
}

}  // namespace eend::core
