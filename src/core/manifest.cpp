#include "core/manifest.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "energy/radio_card.hpp"
#include "opt/design_heuristic.hpp"
#include "util/check.hpp"

namespace eend::core {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw CheckError("manifest: " + msg);
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

// ---------------------------------------------------------------- readers ---

/// Wraps one JSON object; every field access marks its key as consumed so
/// finish() can reject leftovers ("unknown key") with the allowed set —
/// typo-proofing for hand-written manifests.
class ObjectReader {
 public:
  ObjectReader(const json::Value& v, std::string ctx) : ctx_(std::move(ctx)) {
    if (!v.is_object()) fail(ctx_ + " must be a JSON object");
    obj_ = &v.as_object();
    consumed_.assign(obj_->size(), false);
  }

  const json::Value* optional(const std::string& key) {
    for (std::size_t i = 0; i < obj_->size(); ++i) {
      if ((*obj_)[i].first == key) {
        consumed_[i] = true;
        return &(*obj_)[i].second;
      }
    }
    known_.push_back(key);
    return nullptr;
  }

  const json::Value& required(const std::string& key) {
    const json::Value* v = optional(key);
    if (!v) fail("missing required key \"" + key + "\" in " + ctx_);
    return *v;
  }

  /// Declare a key as recognized (for the unknown-key message) without
  /// reading it — used for keys that are invalid for the current kind.
  void forbid(const std::string& key, const std::string& why) {
    for (std::size_t i = 0; i < obj_->size(); ++i)
      if ((*obj_)[i].first == key)
        fail("key \"" + key + "\" in " + ctx_ + " " + why);
  }

  void finish() {
    std::vector<std::string> allowed;
    for (std::size_t i = 0; i < obj_->size(); ++i)
      if (consumed_[i]) allowed.push_back((*obj_)[i].first);
    for (std::size_t i = 0; i < obj_->size(); ++i) {
      if (consumed_[i]) continue;
      std::vector<std::string> names = known_;
      for (const auto& a : allowed) names.push_back(a);
      std::sort(names.begin(), names.end());
      names.erase(std::unique(names.begin(), names.end()), names.end());
      fail("unknown key \"" + (*obj_)[i].first + "\" in " + ctx_ +
           " (allowed: " + join(names) + ")");
    }
  }

  const std::string& ctx() const { return ctx_; }

 private:
  const json::Object* obj_ = nullptr;
  std::vector<bool> consumed_;
  std::vector<std::string> known_;  // keys probed but absent
  std::string ctx_;
};

std::string as_string(const json::Value& v, const std::string& ctx) {
  if (!v.is_string()) fail(ctx + " must be a string");
  return v.as_string();
}

double as_finite(const json::Value& v, const std::string& ctx) {
  if (!v.is_number()) fail(ctx + " must be a number");
  return v.as_number();
}

std::uint64_t as_uint(const json::Value& v, const std::string& ctx) {
  const double d = as_finite(v, ctx);
  if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
    fail(ctx + " must be a non-negative integer, got " + json::dump(v));
  return static_cast<std::uint64_t>(d);
}

std::vector<double> as_rate_list(const json::Value& v, const std::string& ctx) {
  if (!v.is_array() || v.as_array().empty())
    fail(ctx + " must be a non-empty array of rates");
  std::vector<double> out;
  for (const auto& e : v.as_array()) {
    const double r = as_finite(e, ctx + " entry");
    if (!(r > 0.0) || !std::isfinite(r) || r > 1e6)
      fail(ctx + " entries must be in (0, 1e6] pkt/s, got " + json::dump(e));
    out.push_back(r);
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    for (std::size_t j = i + 1; j < out.size(); ++j)
      if (out[i] == out[j])
        fail("duplicate rate " + json::dump(json::Value(out[i])) + " in " +
             ctx + " — each rate defines one cell");
  return out;
}

std::vector<std::size_t> as_node_list(const json::Value& v,
                                      const std::string& ctx) {
  if (!v.is_array() || v.as_array().empty())
    fail(ctx + " must be a non-empty array of node counts");
  std::vector<std::size_t> out;
  for (const auto& e : v.as_array()) {
    const auto n = as_uint(e, ctx + " entry");
    if (n < 2) fail(ctx + " entries must be >= 2 nodes, got " + json::dump(e));
    out.push_back(static_cast<std::size_t>(n));
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    for (std::size_t j = i + 1; j < out.size(); ++j)
      if (out[i] == out[j])
        fail("duplicate node count " + std::to_string(out[i]) + " in " + ctx +
             " — each count defines one cell");
  return out;
}

// ----------------------------------------------------------------- metrics ---

// Single registry of metric names and their table-banner labels: valid
// names per kind and display lookup both derive from these, so a metric
// added here is complete (the engine's extractors are the remaining
// counterpart, and they fail loudly on unknown names).
struct MetricInfo {
  const char* name;
  const char* display;
};

constexpr MetricInfo kSimMetricInfo[] = {
    {"delivery_ratio", "delivery ratio"},
    {"goodput_bit_per_j", "energy goodput (bit/J)"},
    {"transmit_energy_j", "transmit energy (J)"},
    {"total_energy_j", "total energy (J)"},
    {"control_energy_j", "control energy (J)"},
    {"passive_energy_j", "passive energy (J)"},
    {"nodes_carrying_data", "nodes carrying data"},
    {"rreq_transmissions", "RREQ transmissions"},
    {"mac_collisions", "MAC collisions"},
    {"mac_cs_drops", "carrier-sense drops"},
    {"mac_defers_exhausted", "MAC defers exhausted"},
    {"mac_stale_bcast_drops", "stale broadcast drops"},
    {"mac_unicast_failures", "unicast failures"},
    {"average_delay_s", "average delay (s)"},
};
constexpr MetricInfo kGridMetricInfo[] = {
    {"goodput_kbit_per_j", "energy goodput (Kbit/J)"},
    {"network_power_w", "network power (W)"},
    {"data_power_w", "data power (W)"},
    {"passive_power_w", "passive power (W)"},
    {"active_nodes", "active nodes"},
};
constexpr MetricInfo kMoptMetricInfo[] = {
    {"mopt", "m_opt"},
};
constexpr MetricInfo kDesignMetricInfo[] = {
    {"eq5_total", "Eq. 5 total cost"},
    {"eq5_data", "Eq. 5 data cost"},
    {"eq5_idle", "Eq. 5 passive (idle) cost"},
    {"gap_vs_klein_ravi", "gap vs Klein-Ravi (%)"},
    {"relay_nodes", "relay nodes"},
    // Wall time is real elapsed time and therefore NOT covered by the
    // determinism contract — keep it out of golden-pinned manifests.
    {"wall_time_s", "wall time (s)"},
    // The next four require `presolve: true` on the experiment (validated
    // after parsing); they surface the certified bound and instance shrink.
    {"lb", "certified Eq. 5 lower bound"},
    {"certified_gap_pct", "certified gap vs lower bound (%)"},
    {"reduced_nodes", "presolve-removed nodes"},
    {"reduced_edges", "presolve-removed edges"},
};
constexpr MetricInfo kChurnMetricInfo[] = {
    {"warm_score", "warm-start Eq. 5 score"},
    {"cold_score", "from-scratch Eq. 5 score"},
    {"gap_vs_cold_pct", "warm vs from-scratch gap (%)"},
    {"events_applied", "churn events applied"},
    {"rerouted_demands", "demands re-routed"},
    {"fallbacks", "portfolio fallbacks"},
    {"active_nodes", "active nodes (warm design)"},
    {"live_demands", "live demands"},
    // Wall times are real elapsed time and therefore NOT covered by the
    // determinism contract — keep them out of golden-pinned manifests.
    {"warm_wall_s", "warm re-design latency (s)"},
    {"cold_wall_s", "from-scratch latency (s)"},
    // Requires `replay_every` > 0 on the experiment (validated after
    // parsing); zero on epochs that skip the replay validation.
    {"replay_gap_pct", "replayed sim vs Eq. 5 gap (%)"},
};
constexpr MetricInfo kReplayMetricInfo[] = {
    {"analytic_eq5_j", "Eq. 5 analytic energy (J)"},
    {"sim_energy_j", "simulated energy (J)"},
    {"analytic_gap_pct", "simulated vs Eq. 5 gap (%)"},
    {"sim_j_per_kbit", "simulated J per delivered Kbit"},
    {"delivery_ratio", "delivery ratio"},
    {"first_death_s", "first battery death (s; horizon = none)"},
    {"depleted_nodes", "battery-depleted nodes"},
    {"active_nodes", "active nodes"},
    {"max_node_load_j", "max per-node analytic load (J)"},
};

template <std::size_t N>
std::vector<std::string> names_of(const MetricInfo (&infos)[N]) {
  std::vector<std::string> out;
  out.reserve(N);
  for (const MetricInfo& m : infos) out.emplace_back(m.name);
  return out;
}

const std::vector<std::string> kSimMetrics = names_of(kSimMetricInfo);
const std::vector<std::string> kGridMetrics = names_of(kGridMetricInfo);
const std::vector<std::string> kMoptMetrics = names_of(kMoptMetricInfo);
const std::vector<std::string> kDesignMetrics = names_of(kDesignMetricInfo);
const std::vector<std::string> kReplayMetrics = names_of(kReplayMetricInfo);
const std::vector<std::string> kChurnMetrics = names_of(kChurnMetricInfo);

std::vector<MetricSpec> default_metrics(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::Sweep:
    case ExperimentKind::Density:
      return {{"delivery_ratio", 3}, {"goodput_bit_per_j", 1}};
    case ExperimentKind::Grid: return {{"goodput_kbit_per_j", 3}};
    case ExperimentKind::Mopt: return {{"mopt", 3}};
    case ExperimentKind::Design:
      return {{"eq5_total", 1}, {"gap_vs_klein_ravi", 2}};
    case ExperimentKind::Replay:
      return {{"analytic_eq5_j", 1},
              {"sim_energy_j", 1},
              {"analytic_gap_pct", 1},
              {"delivery_ratio", 3},
              {"first_death_s", 1}};
    case ExperimentKind::Churn:
      return {{"warm_score", 1},
              {"gap_vs_cold_pct", 2},
              {"events_applied", 1}};
  }
  return {};
}

std::vector<MetricSpec> parse_metrics(const json::Value& v,
                                      ExperimentKind kind,
                                      const std::string& ctx) {
  if (!v.is_array() || v.as_array().empty())
    fail(ctx + " must be a non-empty array");
  const auto& valid = metric_names(kind);
  std::vector<MetricSpec> out;
  for (const auto& e : v.as_array()) {
    MetricSpec m;
    if (e.is_string()) {
      m.name = e.as_string();
    } else {
      ObjectReader r(e, ctx + " entry");
      m.name = as_string(r.required("name"), ctx + " name");
      if (const auto* p = r.optional("precision")) {
        const auto prec = as_uint(*p, ctx + " precision");
        if (prec > 12) fail(ctx + " precision must be <= 12");
        m.precision = static_cast<int>(prec);
      }
      r.finish();
    }
    if (std::find(valid.begin(), valid.end(), m.name) == valid.end())
      fail("metric \"" + m.name + "\" is not valid for kind \"" +
           kind_name(kind) + "\" (valid: " + join(valid) + ")");
    for (const auto& prev : out)
      if (prev.name == m.name) fail("duplicate metric \"" + m.name + "\"");
    out.push_back(std::move(m));
  }
  return out;
}

// ---------------------------------------------------------------- scenario ---

// Single registry of scenario presets: name list (validation) and factory
// dispatch (ScenarioSpec::resolve) derive from the same table, so a preset
// added here is complete.
struct ScenarioPreset {
  const char* name;
  net::ScenarioConfig (*make)(const ScenarioSpec&);
};

const ScenarioPreset kScenarioPresetTable[] = {
    {"small_network",
     [](const ScenarioSpec&) { return net::ScenarioConfig::small_network(); }},
    {"large_network",
     [](const ScenarioSpec&) { return net::ScenarioConfig::large_network(); }},
    {"density_network",
     [](const ScenarioSpec& s) {
       return net::ScenarioConfig::density_network(s.node_count.value_or(200));
     }},
    {"hypothetical_grid",
     [](const ScenarioSpec&) {
       return net::ScenarioConfig::hypothetical_grid();
     }},
    {"huge_field",
     [](const ScenarioSpec& s) {
       return net::ScenarioConfig::huge_field(s.node_count.value_or(2000));
     }},
    {"custom", [](const ScenarioSpec&) { return net::ScenarioConfig(); }},
};

std::vector<std::string> scenario_preset_names() {
  std::vector<std::string> out;
  for (const ScenarioPreset& p : kScenarioPresetTable) out.emplace_back(p.name);
  return out;
}

const std::vector<std::string> kScenarioPresets = scenario_preset_names();

ScenarioSpec parse_scenario(const json::Value& v, const std::string& ctx) {
  ScenarioSpec s;
  ObjectReader r(v, ctx);
  s.preset = as_string(r.required("preset"), ctx + " preset");
  if (std::find(kScenarioPresets.begin(), kScenarioPresets.end(), s.preset) ==
      kScenarioPresets.end())
    fail("unknown scenario preset \"" + s.preset +
         "\" (valid: " + join(kScenarioPresets) + ")");
  if (const auto* p = r.optional("node_count"))
    s.node_count = static_cast<std::size_t>(as_uint(*p, ctx + " node_count"));
  if (const auto* p = r.optional("field_w")) {
    s.field_w = as_finite(*p, ctx + " field_w");
    if (!(*s.field_w > 0.0)) fail(ctx + " field_w must be positive");
  }
  if (const auto* p = r.optional("field_h")) {
    s.field_h = as_finite(*p, ctx + " field_h");
    if (!(*s.field_h > 0.0)) fail(ctx + " field_h must be positive");
  }
  if (const auto* p = r.optional("flow_count"))
    s.flow_count = static_cast<std::size_t>(as_uint(*p, ctx + " flow_count"));
  if (const auto* p = r.optional("rate_pps")) {
    s.rate_pps = as_finite(*p, ctx + " rate_pps");
    if (!(*s.rate_pps > 0.0) || *s.rate_pps > 1e6)
      fail(ctx + " rate_pps must be in (0, 1e6]");
  }
  if (const auto* p = r.optional("payload_bits")) {
    const auto bits = as_uint(*p, ctx + " payload_bits");
    if (bits == 0 || bits > 1u << 24)
      fail(ctx + " payload_bits must be in [1, 2^24]");
    s.payload_bits = static_cast<std::uint32_t>(bits);
  }
  if (const auto* p = r.optional("duration_s")) {
    s.duration_s = as_finite(*p, ctx + " duration_s");
    if (!(*s.duration_s > 0.0)) fail(ctx + " duration_s must be positive");
  }
  if (const auto* p = r.optional("flow_endpoint_pool"))
    s.flow_endpoint_pool =
        static_cast<std::size_t>(as_uint(*p, ctx + " flow_endpoint_pool"));
  if (const auto* p = r.optional("rate_multipliers")) {
    if (!p->is_array() || p->as_array().empty())
      fail(ctx + " rate_multipliers must be a non-empty array");
    std::vector<double> mult;
    for (const auto& e : p->as_array()) {
      const double m = as_finite(e, ctx + " rate_multipliers entry");
      if (!(m > 0.0) || !std::isfinite(m) || m > 1e3)
        fail(ctx + " rate_multipliers entries must be in (0, 1e3]");
      mult.push_back(m);
    }
    s.rate_multipliers = std::move(mult);
  }
  r.finish();
  return s;
}

json::Object scenario_to_json(const ScenarioSpec& s) {
  json::Object o;
  o.emplace_back("preset", s.preset);
  if (s.node_count)
    o.emplace_back("node_count", static_cast<double>(*s.node_count));
  if (s.field_w) o.emplace_back("field_w", *s.field_w);
  if (s.field_h) o.emplace_back("field_h", *s.field_h);
  if (s.flow_count)
    o.emplace_back("flow_count", static_cast<double>(*s.flow_count));
  if (s.rate_pps) o.emplace_back("rate_pps", *s.rate_pps);
  if (s.payload_bits)
    o.emplace_back("payload_bits", static_cast<double>(*s.payload_bits));
  if (s.duration_s) o.emplace_back("duration_s", *s.duration_s);
  if (s.flow_endpoint_pool)
    o.emplace_back("flow_endpoint_pool",
                   static_cast<double>(*s.flow_endpoint_pool));
  if (s.rate_multipliers) {
    json::Array a;
    for (double m : *s.rate_multipliers) a.emplace_back(m);
    o.emplace_back("rate_multipliers", std::move(a));
  }
  return o;
}

// -------------------------------------------------------------- experiment ---

QuickSpec parse_quick(const json::Value& v, ExperimentKind kind,
                      const std::string& ctx) {
  QuickSpec q;
  ObjectReader r(v, ctx);
  // Design experiments have no simulated duration, so a quick
  // "duration_s" there would be silently ignored — reject it like the
  // kind-mismatched top-level keys. (Replay experiments DO simulate; churn
  // replay-validation epochs clamp their own quick duration.)
  if (kind == ExperimentKind::Design || kind == ExperimentKind::Churn) {
    r.forbid("duration_s",
             kind == ExperimentKind::Design
                 ? "is only valid for simulation kinds (design instances "
                   "are solved, not simulated)"
                 : "is not valid for kind \"churn\" (quick mode clamps the "
                   "replay-validation horizon itself)");
  } else if (const auto* p = r.optional("duration_s")) {
    q.duration_s = as_finite(*p, ctx + " duration_s");
    if (!(*q.duration_s > 0.0)) fail(ctx + " duration_s must be positive");
  }
  // Grid experiments have no replication count, so a quick "runs" there
  // would be silently ignored — reject it like the top-level key.
  if (kind == ExperimentKind::Sweep || kind == ExperimentKind::Density ||
      kind == ExperimentKind::Design || kind == ExperimentKind::Replay ||
      kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("runs")) {
      const auto n = as_uint(*p, ctx + " runs");
      if (n == 0) fail(ctx + " runs must be >= 1");
      q.runs = static_cast<std::size_t>(n);
    }
  } else {
    r.forbid("runs",
             "is only valid for kinds \"sweep\", \"density\", \"design\", "
             "\"replay\" and \"churn\"");
  }
  if (kind == ExperimentKind::Sweep || kind == ExperimentKind::Grid) {
    if (const auto* p = r.optional("rates_pps"))
      q.rates_pps = as_rate_list(*p, ctx + " rates_pps");
  }
  if (kind == ExperimentKind::Density || kind == ExperimentKind::Design ||
      kind == ExperimentKind::Replay || kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("node_counts"))
      q.node_counts = as_node_list(*p, ctx + " node_counts");
  }
  if (kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("epochs")) {
      const auto n = as_uint(*p, ctx + " epochs");
      if (n < 2) fail(ctx + " epochs must be >= 2 (epoch 0 is the cold "
                            "design; churn needs at least one more)");
      q.epochs = static_cast<std::size_t>(n);
    }
  } else {
    r.forbid("epochs", "is only valid for kind \"churn\"");
  }
  r.finish();
  return q;
}

// ------------------------------------------------------------------- churn ---

churn::Event parse_churn_event(const json::Value& v, const std::string& ctx) {
  ObjectReader r(v, ctx);
  churn::Event ev;
  const std::string op = as_string(r.required("op"), ctx + " op");
  if (op != "arrive" && op != "depart" && op != "rate" && op != "fail" &&
      op != "move")
    fail(ctx + " op \"" + op +
         "\" is unknown (valid: arrive, depart, rate, fail, move)");
  ev.op = churn::event_op_from_name(op);
  switch (ev.op) {
    case churn::EventOp::Arrive:
      ev.source = static_cast<graph::NodeId>(
          as_uint(r.required("source"), ctx + " source"));
      ev.destination = static_cast<graph::NodeId>(
          as_uint(r.required("destination"), ctx + " destination"));
      if (ev.source == ev.destination)
        fail(ctx + " arrive demand (" + std::to_string(ev.source) + ", " +
             std::to_string(ev.destination) + ") is a self-loop");
      if (const auto* p = r.optional("weight")) {
        ev.weight = as_finite(*p, ctx + " weight");
        if (!(ev.weight > 0.0) || ev.weight > 1e3)
          fail(ctx + " weight must be in (0, 1e3]");
      }
      break;
    case churn::EventOp::Depart:
      ev.demand = static_cast<std::size_t>(
          as_uint(r.required("demand"), ctx + " demand"));
      break;
    case churn::EventOp::RateSwing:
      ev.demand = static_cast<std::size_t>(
          as_uint(r.required("demand"), ctx + " demand"));
      ev.factor = as_finite(r.required("factor"), ctx + " factor");
      if (!(ev.factor > 0.0) || ev.factor > 1e3)
        fail(ctx + " factor must be in (0, 1e3]");
      break;
    case churn::EventOp::Fail:
      ev.node = static_cast<graph::NodeId>(
          as_uint(r.required("node"), ctx + " node"));
      break;
    case churn::EventOp::Move:
      ev.node = static_cast<graph::NodeId>(
          as_uint(r.required("node"), ctx + " node"));
      ev.x = as_finite(r.required("x"), ctx + " x");
      ev.y = as_finite(r.required("y"), ctx + " y");
      if (!(ev.x >= 0.0) || ev.x > 1e6 || !(ev.y >= 0.0) || ev.y > 1e6)
        fail(ctx + " move target must be in [0, 1e6] meters per axis");
      break;
  }
  r.finish();
  return ev;
}

/// Parse + statically validate an explicit churn schedule. The validator
/// replays the live demand list as the events would mutate it: the
/// instance's initial demands have instance-dependent endpoints (unknown
/// here — nullopt), arrivals are fully known. That catches out-of-range
/// indices, departures below one demand, duplicate failures and failures
/// of a known flow endpoint at parse time; graph-dependent breakage (a
/// failure stranding an *initial* demand, an unroutable arrival) is caught
/// at run time by ChurnState::apply.
std::vector<churn::EpochEvents> parse_churn_schedule(
    const json::Value& v, std::size_t epochs, std::size_t initial_demands,
    const std::string& ctx) {
  if (!v.is_array() || v.as_array().empty())
    fail(ctx + " schedule must be a non-empty array of epoch entries");
  using MaybePair = std::optional<std::pair<graph::NodeId, graph::NodeId>>;
  std::vector<MaybePair> live(initial_demands);
  std::set<graph::NodeId> failed;
  std::vector<churn::EpochEvents> out;
  std::size_t prev_at = 0;
  for (const auto& entry : v.as_array()) {
    ObjectReader er(entry, ctx + " schedule entry");
    churn::EpochEvents ee;
    ee.at = static_cast<std::size_t>(
        as_uint(er.required("at"), ctx + " schedule at"));
    if (ee.at < 1 || ee.at >= epochs)
      fail(ctx + " schedule entry at=" + std::to_string(ee.at) +
           " outside [1, " + std::to_string(epochs) +
           ") — epoch 0 is the untouched instance");
    if (ee.at <= prev_at)
      fail(ctx + " schedule entries must be strictly increasing in \"at\" "
           "(saw " + std::to_string(ee.at) + " after " +
           std::to_string(prev_at) + ")");
    prev_at = ee.at;
    const json::Value& evs = er.required("events");
    if (!evs.is_array() || evs.as_array().empty())
      fail(ctx + " schedule entry at=" + std::to_string(ee.at) +
           " must list at least one event");
    for (const auto& evv : evs.as_array()) {
      const std::string ectx =
          ctx + " schedule (at=" + std::to_string(ee.at) + ") event";
      churn::Event ev = parse_churn_event(evv, ectx);
      switch (ev.op) {
        case churn::EventOp::Arrive: {
          for (const MaybePair& p : live)
            if (p && p->first == ev.source && p->second == ev.destination)
              fail(ectx + ": demand (" + std::to_string(ev.source) + ", " +
                   std::to_string(ev.destination) + ") is already live");
          if (failed.count(ev.source) || failed.count(ev.destination))
            fail(ectx + ": arrive endpoint is a failed node");
          live.emplace_back(std::in_place, ev.source, ev.destination);
          break;
        }
        case churn::EventOp::Depart:
          if (ev.demand >= live.size())
            fail(ectx + ": depart index " + std::to_string(ev.demand) +
                 " out of range (" + std::to_string(live.size()) +
                 " demands live at that point)");
          if (live.size() <= 1)
            fail(ectx + ": cannot depart the last live demand");
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(ev.demand));
          break;
        case churn::EventOp::RateSwing:
          if (ev.demand >= live.size())
            fail(ectx + ": rate index " + std::to_string(ev.demand) +
                 " out of range (" + std::to_string(live.size()) +
                 " demands live at that point)");
          break;
        case churn::EventOp::Fail: {
          if (failed.count(ev.node))
            fail(ectx + ": node " + std::to_string(ev.node) +
                 " is already failed");
          for (const MaybePair& p : live)
            if (p && (p->first == ev.node || p->second == ev.node))
              fail(ectx + ": node " + std::to_string(ev.node) +
                   " is a live flow endpoint — failing it would strand "
                   "the demand");
          failed.insert(ev.node);
          break;
        }
        case churn::EventOp::Move:
          if (failed.count(ev.node))
            fail(ectx + ": cannot move failed node " +
                 std::to_string(ev.node));
          break;
      }
      ee.events.push_back(ev);
    }
    out.push_back(std::move(ee));
  }
  return out;
}

Experiment parse_experiment(const json::Value& v, std::size_t index) {
  const std::string base = "experiment #" + std::to_string(index + 1);
  ObjectReader r(v, base);

  Experiment e;
  e.id = as_string(r.required("id"), base + " id");
  if (e.id.empty()) fail(base + " id must be non-empty");
  for (const char c : e.id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok)
      fail(base + " id \"" + e.id +
           "\" may only contain letters, digits, '_' and '-'");
  }
  const std::string ctx = "experiment \"" + e.id + "\"";

  e.kind = kind_from_name(as_string(r.required("kind"), ctx + " kind"));
  if (const auto* p = r.optional("title"))
    e.title = as_string(*p, ctx + " title");
  if (e.title.empty()) e.title = e.id;

  const bool sim = e.kind != ExperimentKind::Mopt &&
                   e.kind != ExperimentKind::Design &&
                   e.kind != ExperimentKind::Replay &&
                   e.kind != ExperimentKind::Churn;
  if (sim) {
    if (const auto* p = r.optional("scenario"))
      e.scenario = parse_scenario(*p, ctx + " scenario");
    else if (e.kind == ExperimentKind::Density)
      e.scenario.preset = "density_network";
    else if (e.kind == ExperimentKind::Grid)
      e.scenario.preset = "hypothetical_grid";

    const json::Value& stacks = r.required("stacks");
    if (!stacks.is_array() || stacks.as_array().empty())
      fail(ctx + " stacks must be a non-empty array");
    for (const auto& s : stacks.as_array()) {
      const std::string name = as_string(s, ctx + " stacks entry");
      net::stack_preset(name);  // throws listing valid presets
      if (std::find(e.stacks.begin(), e.stacks.end(), name) != e.stacks.end())
        fail("duplicate stack \"" + name + "\" in " + ctx +
             " — each stack defines one cell row");
      e.stacks.push_back(name);
    }

    if (const auto* p = r.optional("seed"))
      e.seed = as_uint(*p, ctx + " seed");
  } else if (e.kind == ExperimentKind::Design ||
             e.kind == ExperimentKind::Replay ||
             e.kind == ExperimentKind::Churn) {
    const std::string kname = kind_name(e.kind);
    r.forbid("scenario",
             "is not valid for kind \"" + kname +
                 "\" (instances derive from the node counts via the fixed "
                 "density law)");
    r.forbid("stacks",
             e.kind == ExperimentKind::Design
                 ? "is not valid for kind \"design\" (use \"heuristics\")"
             : e.kind == ExperimentKind::Replay
                 ? "is not valid for kind \"replay\" (use \"heuristics\" "
                   "for the series and the singular \"stack\" for the "
                   "simulated protocol stack)"
                 : "is not valid for kind \"churn\" (the serving loop runs "
                   "the fixed warm-start vs portfolio pipeline; the "
                   "singular \"stack\" selects the replay-validation "
                   "protocol stack)");
    if (const auto* p = r.optional("seed"))
      e.seed = as_uint(*p, ctx + " seed");
  } else {
    r.forbid("scenario", "is not valid for kind \"mopt\" (analytic model)");
    r.forbid("stacks", "is not valid for kind \"mopt\" (use \"cards\")");
    r.forbid("seed", "is not valid for kind \"mopt\" (deterministic model)");
  }

  switch (e.kind) {
    case ExperimentKind::Sweep:
    case ExperimentKind::Grid:
      e.rates_pps = as_rate_list(r.required("rates_pps"), ctx + " rates_pps");
      r.forbid("node_counts",
               "is only valid for kinds \"density\", \"design\", "
               "\"replay\" and \"churn\"");
      break;
    case ExperimentKind::Density:
    case ExperimentKind::Design:
    case ExperimentKind::Replay:
    case ExperimentKind::Churn:
      e.node_counts =
          as_node_list(r.required("node_counts"), ctx + " node_counts");
      r.forbid("rates_pps",
               "is only valid for kinds \"sweep\" and \"grid\" (set the "
               "density rate via scenario.rate_pps" +
                   std::string(e.kind == ExperimentKind::Replay ||
                                       e.kind == ExperimentKind::Churn
                                   ? ", the replay rate via \"rate_pps\""
                                   : "") +
                   ")");
      break;
    case ExperimentKind::Mopt: break;
  }

  if (e.kind == ExperimentKind::Design || e.kind == ExperimentKind::Replay) {
    const json::Value& heur = r.required("heuristics");
    if (!heur.is_array() || heur.as_array().empty())
      fail(ctx + " heuristics must be a non-empty array");
    for (const auto& h : heur.as_array()) {
      const std::string name = as_string(h, ctx + " heuristics entry");
      opt::heuristic_by_name(name);  // throws listing valid names
      if (e.kind == ExperimentKind::Design &&
          opt::heuristic_uses_battery_budget(name))
        fail("heuristic \"" + name + "\" in " + ctx +
             " needs a battery budget and is only valid for kind "
             "\"replay\" (its \"battery_j\" defines the per-node budget)");
      if (std::find(e.heuristics.begin(), e.heuristics.end(), name) !=
          e.heuristics.end())
        fail("duplicate heuristic \"" + name + "\" in " + ctx +
             " — each heuristic defines one series");
      e.heuristics.push_back(name);
    }
  } else if (e.kind == ExperimentKind::Churn) {
    r.forbid("heuristics",
             "is not valid for kind \"churn\" (the serving loop always "
             "compares warm-start repair against the from-scratch "
             "portfolio; series are node counts)");
  }

  if (e.kind == ExperimentKind::Design || e.kind == ExperimentKind::Replay ||
      e.kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("demands")) {
      const auto n = as_uint(*p, ctx + " demands");
      if (n == 0 || n > 1000) fail(ctx + " demands must be in [1, 1000]");
      e.demands = static_cast<std::size_t>(n);
    }
    if (const auto* p = r.optional("starts")) {
      const auto n = as_uint(*p, ctx + " starts");
      if (n == 0 || n > 1000) fail(ctx + " starts must be in [1, 1000]");
      e.starts = static_cast<std::size_t>(n);
    }
    if (const auto* p = r.optional("anneal_iters")) {
      const auto n = as_uint(*p, ctx + " anneal_iters");
      if (n > 1000000) fail(ctx + " anneal_iters must be <= 1e6");
      e.anneal_iters = static_cast<std::size_t>(n);
    }
    if (const auto* p = r.optional("presolve")) {
      if (!p->is_bool()) fail(ctx + " presolve must be a boolean");
      e.presolve = p->as_bool();
    }
    if (const auto* p = r.optional("field_scale")) {
      e.field_scale = as_finite(*p, ctx + " field_scale");
      if (!(e.field_scale > 0.0) || e.field_scale > 10.0)
        fail(ctx + " field_scale must be in (0, 10] "
                   "(multiplier on the density-law field side)");
    }
    // Cross-check: every instance must be able to host the demand count,
    // or make_design_instance would abort mid-run after earlier
    // experiments already burned their wall time.
    const auto check_capacity = [&](std::size_t n) {
      if (e.demands > n * (n - 1))
        fail(ctx + " requests " + std::to_string(e.demands) +
             " demands but node count " + std::to_string(n) + " has only " +
             std::to_string(n * (n - 1)) +
             " distinct (source, destination) pairs");
    };
    for (const std::size_t n : e.node_counts) check_capacity(n);
  } else {
    r.forbid("heuristics",
             "is only valid for kinds \"design\" and \"replay\"");
    r.forbid("demands",
             "is only valid for kinds \"design\", \"replay\" and \"churn\"");
    r.forbid("starts",
             "is only valid for kinds \"design\", \"replay\" and \"churn\"");
    r.forbid("anneal_iters",
             "is only valid for kinds \"design\", \"replay\" and \"churn\"");
    r.forbid("presolve",
             "is only valid for kinds \"design\", \"replay\" and \"churn\"");
    r.forbid("field_scale",
             "is only valid for kinds \"design\", \"replay\" and \"churn\"");
  }

  if (e.kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("epochs")) {
      const auto n = as_uint(*p, ctx + " epochs");
      if (n < 2 || n > 10000)
        fail(ctx + " epochs must be in [2, 10000] (epoch 0 is the cold "
             "design; churn needs at least one more)");
      e.epochs = static_cast<std::size_t>(n);
    }
    if (const auto* p = r.optional("fallback_pct")) {
      e.fallback_pct = as_finite(*p, ctx + " fallback_pct");
      if (!(e.fallback_pct > 0.0) || e.fallback_pct > 100.0)
        fail(ctx + " fallback_pct must be in (0, 100]");
    }
    if (const auto* p = r.optional("replay_every")) {
      const auto n = as_uint(*p, ctx + " replay_every");
      if (n > 10000) fail(ctx + " replay_every must be <= 10000");
      e.replay_every = static_cast<std::size_t>(n);
    }
    if (const auto* sched = r.optional("schedule")) {
      // An explicit schedule replaces the generator wholesale; a generator
      // knob alongside it would be silently inert — reject the mix.
      for (const char* k :
           {"arrivals_per_epoch", "departures_per_epoch", "swings_per_epoch",
            "failures_per_epoch", "rate_swing", "move_fraction",
            "move_sigma_m"})
        r.forbid(k, "is not valid alongside an explicit \"schedule\" (the "
                    "schedule replaces the trace generator)");
      e.churn_schedule =
          parse_churn_schedule(*sched, e.epochs, e.demands, ctx);
    } else {
      const auto uint_knob = [&](const char* key, std::size_t& dst) {
        if (const auto* p = r.optional(key)) {
          const auto n = as_uint(*p, ctx + " " + key);
          if (n > 100) fail(ctx + " " + std::string(key) +
                            " must be <= 100");
          dst = static_cast<std::size_t>(n);
        }
      };
      uint_knob("arrivals_per_epoch", e.arrivals_per_epoch);
      uint_knob("departures_per_epoch", e.departures_per_epoch);
      uint_knob("swings_per_epoch", e.swings_per_epoch);
      uint_knob("failures_per_epoch", e.failures_per_epoch);
      if (const auto* p = r.optional("rate_swing")) {
        e.rate_swing = as_finite(*p, ctx + " rate_swing");
        if (e.rate_swing < 0.0 || e.rate_swing > 0.9)
          fail(ctx + " rate_swing must be in [0, 0.9] (a factor of zero "
               "would silence the demand)");
      }
      if (const auto* p = r.optional("move_fraction")) {
        e.move_fraction = as_finite(*p, ctx + " move_fraction");
        if (e.move_fraction < 0.0 || e.move_fraction > 1.0)
          fail(ctx + " move_fraction must be in [0, 1]");
      }
      if (const auto* p = r.optional("move_sigma_m")) {
        e.move_sigma_m = as_finite(*p, ctx + " move_sigma_m");
        if (!(e.move_sigma_m > 0.0) || e.move_sigma_m > 1e4)
          fail(ctx + " move_sigma_m must be in (0, 1e4] meters");
      }
    }
  } else {
    for (const char* k :
         {"epochs", "arrivals_per_epoch", "departures_per_epoch",
          "swings_per_epoch", "failures_per_epoch", "rate_swing",
          "move_fraction", "move_sigma_m", "fallback_pct", "replay_every",
          "schedule"})
      r.forbid(k, "is only valid for kind \"churn\"");
  }

  const bool churn_replays =
      e.kind == ExperimentKind::Churn && e.replay_every > 0;
  if (e.kind == ExperimentKind::Replay || churn_replays) {
    if (const auto* p = r.optional("stack")) {
      e.replay_stack = as_string(*p, ctx + " stack");
      net::stack_preset(e.replay_stack);  // throws listing valid presets
    }
    if (const auto* p = r.optional("duration_s")) {
      e.replay_duration_s = as_finite(*p, ctx + " duration_s");
      if (!(e.replay_duration_s > 0.0) || e.replay_duration_s > 1e6)
        fail(ctx + " duration_s must be in (0, 1e6] seconds");
    }
    if (const auto* p = r.optional("rate_pps")) {
      e.replay_rate_pps = as_finite(*p, ctx + " rate_pps");
      if (!(e.replay_rate_pps > 0.0) || e.replay_rate_pps > 1e6)
        fail(ctx + " rate_pps must be in (0, 1e6]");
    }
  }
  if (e.kind == ExperimentKind::Replay) {
    if (const auto* p = r.optional("battery_j")) {
      e.battery_j = as_finite(*p, ctx + " battery_j");
      if (e.battery_j < 0.0 || e.battery_j > 1e9)
        fail(ctx + " battery_j must be in [0, 1e9] joules (0 = infinite)");
    }
    // A lifetime heuristic without a battery would silently degenerate to
    // its base variant and mislabel the series — demand the budget.
    for (const auto& name : e.heuristics)
      if (opt::heuristic_uses_battery_budget(name) && !(e.battery_j > 0.0))
        fail(ctx + " lists heuristic \"" + name +
             "\" but battery_j is 0 — lifetime-constrained search needs a "
             "positive per-node battery budget");
  } else if (e.kind == ExperimentKind::Churn) {
    if (!churn_replays) {
      r.forbid("stack", "requires \"replay_every\" > 0 (no replay-"
                        "validation epochs to run a stack on)");
      r.forbid("rate_pps", "requires \"replay_every\" > 0");
      r.forbid("duration_s", "requires \"replay_every\" > 0");
    }
    r.forbid("battery_j",
             "is not valid for kind \"churn\" (replay-validation epochs "
             "run with infinite batteries)");
  } else {
    r.forbid("stack",
             "is only valid for kind \"replay\" (simulation kinds take a "
             "\"stacks\" array)");
    r.forbid("rate_pps", "is only valid for kind \"replay\"");
    r.forbid("battery_j", "is only valid for kind \"replay\"");
    if (e.kind == ExperimentKind::Design || e.kind == ExperimentKind::Mopt)
      r.forbid("duration_s",
               "is only valid for kinds with a simulated horizon (the "
               "\"replay\" kind, or scenario.duration_s on sim kinds)");
  }
  if (e.kind == ExperimentKind::Replay || e.kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("demand_weights")) {
      if (!p->is_array() || p->as_array().empty())
        fail(ctx + " demand_weights must be a non-empty array");
      for (const auto& w : p->as_array()) {
        const double m = as_finite(w, ctx + " demand_weights entry");
        if (!(m > 0.0) || m > 1e3)
          fail(ctx + " demand_weights entries must be in (0, 1e3], got " +
               json::dump(w));
        e.demand_weights.push_back(m);
      }
    }
  } else {
    r.forbid("demand_weights",
             "is only valid for kinds \"replay\" and \"churn\"");
  }

  if (e.kind == ExperimentKind::Sweep || e.kind == ExperimentKind::Density ||
      e.kind == ExperimentKind::Design || e.kind == ExperimentKind::Replay ||
      e.kind == ExperimentKind::Churn) {
    if (const auto* p = r.optional("runs")) {
      const auto n = as_uint(*p, ctx + " runs");
      if (n == 0 || n > 10000) fail(ctx + " runs must be in [1, 10000]");
      e.runs = static_cast<std::size_t>(n);
    }
  } else {
    r.forbid("runs",
             "is only valid for kinds \"sweep\", \"density\", \"design\", "
             "\"replay\" and \"churn\"");
  }

  if (e.kind == ExperimentKind::Grid) {
    if (const auto* p = r.optional("base_rate_pps")) {
      e.base_rate_pps = as_finite(*p, ctx + " base_rate_pps");
      if (!(e.base_rate_pps > 0.0) || e.base_rate_pps > 1e6)
        fail(ctx + " base_rate_pps must be in (0, 1e6]");
    }
  } else {
    r.forbid("base_rate_pps", "is only valid for kind \"grid\"");
  }

  if (e.kind == ExperimentKind::Mopt) {
    const json::Value& cards = r.required("cards");
    if (!cards.is_array() || cards.as_array().empty())
      fail(ctx + " cards must be a non-empty array");
    for (const auto& cv : cards.as_array()) {
      ObjectReader cr(cv, ctx + " cards entry");
      CardSpec c;
      c.card = as_string(cr.required("card"), ctx + " card");
      // Canonicalize case (lookup is case-insensitive, legends are not)
      // and reject unknown names in one step.
      c.card = energy::card_by_name(c.card).name;
      c.distance_m = as_finite(cr.required("distance_m"), ctx + " distance_m");
      if (!(c.distance_m > 0.0)) fail(ctx + " distance_m must be positive");
      cr.finish();
      // Series legends render the distance rounded to whole meters, so two
      // cards that only differ past that would silently merge into one
      // table column — treat them as duplicates.
      for (const auto& prev : e.cards)
        if (prev.card == c.card &&
            std::llround(prev.distance_m) == std::llround(c.distance_m))
          fail("duplicate card \"" + c.card + "\" in " + ctx +
               " — distances render identically in the legend (D=" +
               std::to_string(std::llround(c.distance_m)) + "m)");
      e.cards.push_back(std::move(c));
    }
    const json::Value& rb = r.required("rb");
    if (!rb.is_array() || rb.as_array().empty())
      fail(ctx + " rb must be a non-empty array");
    for (const auto& x : rb.as_array()) {
      const double v2 = as_finite(x, ctx + " rb entry");
      if (!(v2 > 0.0) || v2 > 0.5)
        fail(ctx + " rb entries must be in (0, 0.5] — a relay both sends "
             "and receives each packet, so utilization beyond 1/2 is "
             "infeasible; got " + json::dump(x));
      for (const double prev : e.rb)
        if (prev == v2) fail("duplicate rb value in " + ctx);
      e.rb.push_back(v2);
    }
  } else {
    r.forbid("cards", "is only valid for kind \"mopt\"");
    r.forbid("rb", "is only valid for kind \"mopt\"");
  }

  if (const auto* p = r.optional("metrics"))
    e.metrics = parse_metrics(*p, e.kind, ctx + " metrics");
  else
    e.metrics = default_metrics(e.kind);

  // The certified-bound metrics only exist when the presolve pass ran.
  if (e.kind == ExperimentKind::Design && !e.presolve)
    for (const auto& m : e.metrics)
      if (m.name == "lb" || m.name == "certified_gap_pct" ||
          m.name == "reduced_nodes" || m.name == "reduced_edges")
        fail(ctx + " metric \"" + m.name +
             "\" requires \"presolve\": true on the experiment");

  // The replay-validation metric only exists when replay epochs run.
  if (e.kind == ExperimentKind::Churn && e.replay_every == 0)
    for (const auto& m : e.metrics)
      if (m.name == "replay_gap_pct")
        fail(ctx + " metric \"replay_gap_pct\" requires \"replay_every\" "
             "> 0 on the experiment");

  if (e.kind != ExperimentKind::Mopt) {
    if (const auto* p = r.optional("quick"))
      e.quick = parse_quick(*p, e.kind, ctx + " quick");
    if ((e.kind == ExperimentKind::Design ||
         e.kind == ExperimentKind::Replay ||
         e.kind == ExperimentKind::Churn) &&
        e.quick.node_counts)
      for (const std::size_t n : *e.quick.node_counts)
        if (e.demands > n * (n - 1))
          fail(ctx + " quick node count " + std::to_string(n) +
               " cannot host " + std::to_string(e.demands) + " demands");
  } else {
    r.forbid("quick", "is not valid for kind \"mopt\" (already instant)");
  }

  // Every explicit-schedule node reference must exist in every cell's
  // instance — quick node counts included, or --quick would abort mid-run.
  if (!e.churn_schedule.empty()) {
    std::size_t min_n = *std::min_element(e.node_counts.begin(),
                                          e.node_counts.end());
    if (e.quick.node_counts)
      for (const std::size_t n : *e.quick.node_counts)
        min_n = std::min(min_n, n);
    const std::size_t min_epochs =
        e.quick.epochs ? std::min(e.epochs, *e.quick.epochs) : e.epochs;
    for (const churn::EpochEvents& ee : e.churn_schedule) {
      if (ee.at >= min_epochs)
        fail(ctx + " schedule entry at=" + std::to_string(ee.at) +
             " is unreachable under quick epochs " +
             std::to_string(min_epochs));
      for (const churn::Event& ev : ee.events) {
        const auto check_node = [&](graph::NodeId v2) {
          if (static_cast<std::size_t>(v2) >= min_n)
            fail(ctx + " schedule (at=" + std::to_string(ee.at) +
                 ") references node " + std::to_string(v2) +
                 " but the smallest instance (full or quick) has only " +
                 std::to_string(min_n) + " nodes");
        };
        switch (ev.op) {
          case churn::EventOp::Arrive:
            check_node(ev.source);
            check_node(ev.destination);
            break;
          case churn::EventOp::Fail:
          case churn::EventOp::Move:
            check_node(ev.node);
            break;
          case churn::EventOp::Depart:
          case churn::EventOp::RateSwing:
            break;
        }
      }
    }
  }

  r.finish();
  return e;
}

json::Object experiment_to_json(const Experiment& e) {
  json::Object o;
  o.emplace_back("id", e.id);
  if (e.title != e.id) o.emplace_back("title", e.title);
  o.emplace_back("kind", std::string(kind_name(e.kind)));

  const bool sim = e.kind != ExperimentKind::Mopt &&
                   e.kind != ExperimentKind::Design &&
                   e.kind != ExperimentKind::Replay &&
                   e.kind != ExperimentKind::Churn;
  if (sim) {
    o.emplace_back("scenario", scenario_to_json(e.scenario));
    json::Array stacks;
    for (const auto& s : e.stacks) stacks.emplace_back(s);
    o.emplace_back("stacks", std::move(stacks));
  }
  if (e.kind == ExperimentKind::Sweep || e.kind == ExperimentKind::Grid) {
    json::Array rates;
    for (double r : e.rates_pps) rates.emplace_back(r);
    o.emplace_back("rates_pps", std::move(rates));
  }
  if (e.kind == ExperimentKind::Density || e.kind == ExperimentKind::Design ||
      e.kind == ExperimentKind::Replay || e.kind == ExperimentKind::Churn) {
    json::Array nodes;
    for (std::size_t n : e.node_counts)
      nodes.emplace_back(static_cast<double>(n));
    o.emplace_back("node_counts", std::move(nodes));
  }
  if (e.kind == ExperimentKind::Design || e.kind == ExperimentKind::Replay ||
      e.kind == ExperimentKind::Churn) {
    if (e.kind != ExperimentKind::Churn) {
      json::Array heur;
      for (const auto& h : e.heuristics) heur.emplace_back(h);
      o.emplace_back("heuristics", std::move(heur));
    }
    o.emplace_back("demands", static_cast<double>(e.demands));
    o.emplace_back("starts", static_cast<double>(e.starts));
    o.emplace_back("anneal_iters", static_cast<double>(e.anneal_iters));
    o.emplace_back("presolve", e.presolve);
    o.emplace_back("field_scale", e.field_scale);
  }
  if (e.kind == ExperimentKind::Churn) {
    o.emplace_back("epochs", static_cast<double>(e.epochs));
    o.emplace_back("fallback_pct", e.fallback_pct);
    o.emplace_back("replay_every", static_cast<double>(e.replay_every));
    if (e.churn_schedule.empty()) {
      o.emplace_back("arrivals_per_epoch",
                     static_cast<double>(e.arrivals_per_epoch));
      o.emplace_back("departures_per_epoch",
                     static_cast<double>(e.departures_per_epoch));
      o.emplace_back("swings_per_epoch",
                     static_cast<double>(e.swings_per_epoch));
      o.emplace_back("failures_per_epoch",
                     static_cast<double>(e.failures_per_epoch));
      o.emplace_back("rate_swing", e.rate_swing);
      o.emplace_back("move_fraction", e.move_fraction);
      o.emplace_back("move_sigma_m", e.move_sigma_m);
    } else {
      json::Array sched;
      for (const churn::EpochEvents& ee : e.churn_schedule) {
        json::Array evs;
        for (const churn::Event& ev : ee.events) {
          json::Object eo;
          eo.emplace_back("op", std::string(churn::event_op_name(ev.op)));
          switch (ev.op) {
            case churn::EventOp::Arrive:
              eo.emplace_back("source", static_cast<double>(ev.source));
              eo.emplace_back("destination",
                              static_cast<double>(ev.destination));
              eo.emplace_back("weight", ev.weight);
              break;
            case churn::EventOp::Depart:
              eo.emplace_back("demand", static_cast<double>(ev.demand));
              break;
            case churn::EventOp::RateSwing:
              eo.emplace_back("demand", static_cast<double>(ev.demand));
              eo.emplace_back("factor", ev.factor);
              break;
            case churn::EventOp::Fail:
              eo.emplace_back("node", static_cast<double>(ev.node));
              break;
            case churn::EventOp::Move:
              eo.emplace_back("node", static_cast<double>(ev.node));
              eo.emplace_back("x", ev.x);
              eo.emplace_back("y", ev.y);
              break;
          }
          evs.push_back(std::move(eo));
        }
        sched.push_back(
            json::Object{{"at", json::Value(static_cast<double>(ee.at))},
                         {"events", json::Value(std::move(evs))}});
      }
      o.emplace_back("schedule", std::move(sched));
    }
  }
  if (e.kind == ExperimentKind::Replay ||
      (e.kind == ExperimentKind::Churn && e.replay_every > 0)) {
    o.emplace_back("stack", e.replay_stack);
    o.emplace_back("duration_s", e.replay_duration_s);
    o.emplace_back("rate_pps", e.replay_rate_pps);
  }
  if (e.kind == ExperimentKind::Replay)
    o.emplace_back("battery_j", e.battery_j);
  if ((e.kind == ExperimentKind::Replay ||
       e.kind == ExperimentKind::Churn) &&
      !e.demand_weights.empty()) {
    json::Array weights;
    for (double w : e.demand_weights) weights.emplace_back(w);
    o.emplace_back("demand_weights", std::move(weights));
  }
  if (e.kind == ExperimentKind::Mopt) {
    json::Array cards;
    for (const auto& c : e.cards)
      cards.push_back(json::Object{{"card", json::Value(c.card)},
                                   {"distance_m", json::Value(c.distance_m)}});
    o.emplace_back("cards", std::move(cards));
    json::Array rb;
    for (double x : e.rb) rb.emplace_back(x);
    o.emplace_back("rb", std::move(rb));
  }
  if (e.kind == ExperimentKind::Sweep || e.kind == ExperimentKind::Density ||
      e.kind == ExperimentKind::Design || e.kind == ExperimentKind::Replay ||
      e.kind == ExperimentKind::Churn)
    o.emplace_back("runs", static_cast<double>(e.runs));
  if (e.kind != ExperimentKind::Mopt)
    o.emplace_back("seed", static_cast<double>(e.seed));
  if (e.kind == ExperimentKind::Grid)
    o.emplace_back("base_rate_pps", e.base_rate_pps);

  json::Array metrics;
  for (const auto& m : e.metrics)
    metrics.push_back(
        json::Object{{"name", json::Value(m.name)},
                     {"precision", json::Value(static_cast<double>(
                                       m.precision))}});
  o.emplace_back("metrics", std::move(metrics));

  json::Object quick;
  if (e.quick.duration_s) quick.emplace_back("duration_s", *e.quick.duration_s);
  if (e.quick.runs)
    quick.emplace_back("runs", static_cast<double>(*e.quick.runs));
  if (e.quick.rates_pps) {
    json::Array rates;
    for (double r : *e.quick.rates_pps) rates.emplace_back(r);
    quick.emplace_back("rates_pps", std::move(rates));
  }
  if (e.quick.node_counts) {
    json::Array nodes;
    for (std::size_t n : *e.quick.node_counts)
      nodes.emplace_back(static_cast<double>(n));
    quick.emplace_back("node_counts", std::move(nodes));
  }
  if (e.quick.epochs)
    quick.emplace_back("epochs", static_cast<double>(*e.quick.epochs));
  if (!quick.empty()) o.emplace_back("quick", std::move(quick));
  return o;
}

}  // namespace

// ------------------------------------------------------------------- kinds ---

const char* kind_name(ExperimentKind k) {
  switch (k) {
    case ExperimentKind::Sweep: return "sweep";
    case ExperimentKind::Density: return "density";
    case ExperimentKind::Grid: return "grid";
    case ExperimentKind::Mopt: return "mopt";
    case ExperimentKind::Design: return "design";
    case ExperimentKind::Replay: return "replay";
    case ExperimentKind::Churn: return "churn";
  }
  return "?";
}

ExperimentKind kind_from_name(const std::string& name) {
  if (name == "sweep") return ExperimentKind::Sweep;
  if (name == "density") return ExperimentKind::Density;
  if (name == "grid") return ExperimentKind::Grid;
  if (name == "mopt") return ExperimentKind::Mopt;
  if (name == "design") return ExperimentKind::Design;
  if (name == "replay") return ExperimentKind::Replay;
  if (name == "churn") return ExperimentKind::Churn;
  fail("unknown experiment kind \"" + name +
       "\" (valid: sweep, density, grid, mopt, design, replay, churn)");
}

const std::vector<std::string>& metric_names(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::Sweep:
    case ExperimentKind::Density: return kSimMetrics;
    case ExperimentKind::Grid: return kGridMetrics;
    case ExperimentKind::Mopt: return kMoptMetrics;
    case ExperimentKind::Design: return kDesignMetrics;
    case ExperimentKind::Replay: return kReplayMetrics;
    case ExperimentKind::Churn: return kChurnMetrics;
  }
  return kSimMetrics;
}

std::string metric_display_name(const std::string& name) {
  for (const MetricInfo& m : kSimMetricInfo)
    if (name == m.name) return m.display;
  for (const MetricInfo& m : kGridMetricInfo)
    if (name == m.name) return m.display;
  for (const MetricInfo& m : kMoptMetricInfo)
    if (name == m.name) return m.display;
  for (const MetricInfo& m : kDesignMetricInfo)
    if (name == m.name) return m.display;
  for (const MetricInfo& m : kReplayMetricInfo)
    if (name == m.name) return m.display;
  for (const MetricInfo& m : kChurnMetricInfo)
    if (name == m.name) return m.display;
  fail("no display name for metric \"" + name + "\"");
}

// ---------------------------------------------------------------- scenario ---

net::ScenarioConfig ScenarioSpec::resolve() const {
  const ScenarioPreset* entry = nullptr;
  for (const ScenarioPreset& p : kScenarioPresetTable)
    if (preset == p.name) entry = &p;
  if (!entry)
    fail("unknown scenario preset \"" + preset +
         "\" (valid: " + join(kScenarioPresets) + ")");
  net::ScenarioConfig c = entry->make(*this);
  if (node_count) c.node_count = *node_count;
  if (field_w) c.field_w = *field_w;
  if (field_h) c.field_h = *field_h;
  if (flow_count) c.flow_count = *flow_count;
  if (rate_pps) c.rate_pps = *rate_pps;
  if (payload_bits) c.payload_bits = *payload_bits;
  if (duration_s) c.duration_s = *duration_s;
  if (flow_endpoint_pool) c.flow_endpoint_pool = *flow_endpoint_pool;
  if (rate_multipliers) c.rate_multipliers = *rate_multipliers;
  c.validate();
  return c;
}

// ---------------------------------------------------------------- manifest ---

Manifest Manifest::from_json(const json::Value& v) {
  Manifest m;
  ObjectReader r(v, "manifest");
  m.name = as_string(r.required("name"), "manifest name");
  if (m.name.empty()) fail("manifest name must be non-empty");
  // The name becomes the default output filename stem (eend_run writes
  // <name>.csv / <name>.jsonl in the working directory); path separators
  // or other special characters would escape it.
  for (const char c : m.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok)
      fail("manifest name \"" + m.name +
           "\" may only contain letters, digits, '_' and '-' (it is used "
           "as an output filename stem)");
  }
  if (const auto* p = r.optional("title"))
    m.title = as_string(*p, "manifest title");

  const json::Value& exps = r.required("experiments");
  if (!exps.is_array() || exps.as_array().empty())
    fail("manifest experiments must be a non-empty array");
  for (std::size_t i = 0; i < exps.as_array().size(); ++i) {
    Experiment e = parse_experiment(exps.as_array()[i], i);
    for (const auto& prev : m.experiments)
      if (prev.id == e.id)
        fail("duplicate experiment id \"" + e.id +
             "\" — ids must be unique within a manifest");
    m.experiments.push_back(std::move(e));
  }
  r.finish();
  return m;
}

Manifest Manifest::parse(const std::string& text) {
  return from_json(json::parse(text));
}

Manifest Manifest::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open manifest file \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const CheckError& e) {
    throw CheckError(std::string(e.what()) + " [file: " + path + "]");
  }
}

// GCC 12's -Warray-bounds misfires on the grow-from-empty reallocation
// path of vector<pair<string, Value>> at -O2 (stl_pair.h, inlined from the
// emplace_back below); the function is a plain append sequence.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
json::Value Manifest::to_json() const {
  json::Object o;
  o.emplace_back("name", name);
  if (!title.empty()) o.emplace_back("title", title);
  json::Array exps;
  for (const auto& e : experiments) exps.push_back(experiment_to_json(e));
  o.emplace_back("experiments", std::move(exps));
  return json::Value(std::move(o));
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::string Manifest::serialize() const { return json::dump(to_json(), 2); }

std::vector<std::string> Manifest::experiment_summaries() const {
  std::vector<std::string> out;
  for (const Experiment& e : experiments) {
    std::size_t series = 0, xs = 0;
    switch (e.kind) {
      case ExperimentKind::Sweep:
      case ExperimentKind::Grid:
        series = e.stack_specs ? e.stack_specs->size() : e.stacks.size();
        xs = e.rates_pps.size();
        break;
      case ExperimentKind::Density:
        series = e.stack_specs ? e.stack_specs->size() : e.stacks.size();
        xs = e.node_counts.size();
        break;
      case ExperimentKind::Mopt:
        series = e.cards.size();
        xs = e.rb.size();
        break;
      case ExperimentKind::Design:
      case ExperimentKind::Replay:
        series = e.heuristics.size();
        xs = e.node_counts.size();
        break;
      case ExperimentKind::Churn:
        series = e.node_counts.size();
        xs = e.epochs;
        break;
    }
    out.push_back(e.id + "  [" + kind_name(e.kind) + "]  " +
                  std::to_string(series) + " series x " +
                  std::to_string(xs) + " x-values  " + e.title);
  }
  return out;
}

}  // namespace eend::core
