#include "core/experiment.hpp"

namespace eend::core {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  EEND_REQUIRE(cfg.runs >= 1);
  ExperimentResult out;
  out.stack_label = cfg.stack.label;
  out.rate_pps = cfg.scenario.rate_pps;

  std::vector<double> delivery, goodput, tx, total, control, passive, active;
  for (std::size_t i = 0; i < cfg.runs; ++i) {
    net::ScenarioConfig sc = cfg.scenario;
    sc.seed = cfg.base_seed + i;
    net::Network network(sc, cfg.stack);
    metrics::RunResult r = network.run();
    delivery.push_back(r.delivery_ratio);
    goodput.push_back(r.goodput_bit_per_j);
    tx.push_back(r.transmit_energy_j);
    total.push_back(r.total_energy_j);
    control.push_back(r.control_energy_j);
    passive.push_back(r.passive_energy_j);
    active.push_back(static_cast<double>(r.nodes_carrying_data));
    out.raw.push_back(std::move(r));
  }
  out.delivery_ratio = summarize(delivery);
  out.goodput_bit_per_j = summarize(goodput);
  out.transmit_energy_j = summarize(tx);
  out.total_energy_j = summarize(total);
  out.control_energy_j = summarize(control);
  out.passive_energy_j = summarize(passive);
  out.nodes_carrying_data = summarize(active);
  return out;
}

std::vector<ExperimentResult> sweep_rates(ExperimentConfig cfg,
                                          const std::vector<double>& rates) {
  std::vector<ExperimentResult> out;
  out.reserve(rates.size());
  for (double r : rates) {
    cfg.scenario.rate_pps = r;
    out.push_back(run_experiment(cfg));
  }
  return out;
}

}  // namespace eend::core
