#include "core/experiment.hpp"

#include <mutex>

#include "core/parallel_runner.hpp"
#include "obs/trace.hpp"

namespace eend::core {
namespace {

// One replication: private Network (and thus private Simulator/Rng), seed
// derived from the replication index — identical whichever worker runs it.
// Telemetry counters land in a replication-private registry (snapshotted
// into `counters`), so per-replication totals are scheduling-independent.
// `lane` is the replication's stable logical trace lane across the batch.
metrics::RunResult run_replication(const ExperimentConfig& cfg,
                                   std::size_t rep, std::size_t lane,
                                   obs::CounterSnapshot& counters) {
  net::ScenarioConfig sc = cfg.scenario;
  sc.seed = cfg.base_seed + rep;
  net::Network network(sc, cfg.stack);
  obs::CounterRegistry reg;
  const obs::ScopedRegistry scope(&reg);
  if (obs::tracing())  // sampled sim-core spans: pid 1 = sim row
    network.simulator().set_trace_sampling(
        4096, 1, static_cast<std::uint32_t>(lane) + 1);
  metrics::RunResult out = network.run();
  counters = reg.snapshot();
  return out;
}

ExperimentResult aggregate(const ExperimentConfig& cfg,
                           std::vector<metrics::RunResult> raw) {
  ExperimentResult out;
  out.stack_label = cfg.stack.label;
  out.rate_pps = cfg.scenario.rate_pps;

  std::vector<double> delivery, goodput, tx, total, control, passive, active;
  for (const metrics::RunResult& r : raw) {
    delivery.push_back(r.delivery_ratio);
    goodput.push_back(r.goodput_bit_per_j);
    tx.push_back(r.transmit_energy_j);
    total.push_back(r.total_energy_j);
    control.push_back(r.control_energy_j);
    passive.push_back(r.passive_energy_j);
    active.push_back(static_cast<double>(r.nodes_carrying_data));
  }
  out.raw = std::move(raw);
  out.delivery_ratio = summarize(delivery);
  out.goodput_bit_per_j = summarize(goodput);
  out.transmit_energy_j = summarize(tx);
  out.total_energy_j = summarize(total);
  out.control_energy_j = summarize(control);
  out.passive_energy_j = summarize(passive);
  out.nodes_carrying_data = summarize(active);
  return out;
}

// Shared engine: evaluate `cells` (each `runs` replications) on one pool;
// results in cell-major, then seed, order — independent of scheduling.
std::vector<ExperimentResult> run_cells(
    const std::vector<ExperimentConfig>& cells, std::size_t jobs,
    const std::function<void(std::size_t)>& on_cell_done = {}) {
  if (cells.empty()) return {};
  const std::size_t runs = cells.front().runs;
  std::vector<metrics::RunResult> raw(cells.size() * runs);
  std::vector<obs::CounterSnapshot> snaps(raw.size());

  std::mutex progress_m;
  std::vector<std::size_t> remaining(cells.size(), runs);

  ParallelRunner pool(jobs);
  pool.set_span_label("replication");
  pool.for_each_index(raw.size(), [&](std::size_t k) {
    const std::size_t cell = k / runs;
    raw[k] = run_replication(cells[cell], k % runs, k, snaps[k]);
    if (on_cell_done) {
      std::lock_guard<std::mutex> lk(progress_m);
      if (--remaining[cell] == 0) on_cell_done(cell);
    }
  });

  std::vector<ExperimentResult> out;
  out.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<metrics::RunResult> slice(
        std::make_move_iterator(raw.begin() + c * runs),
        std::make_move_iterator(raw.begin() + (c + 1) * runs));
    out.push_back(aggregate(cells[c], std::move(slice)));
    for (std::size_t r = 0; r < runs; ++r)  // seed-order merge
      out.back().counters.merge_from(snaps[c * runs + r]);
  }
  return out;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  EEND_REQUIRE(cfg.runs >= 1);
  return std::move(run_cells({cfg}, cfg.jobs).front());
}

std::vector<ExperimentResult> run_experiment_cells(
    const std::vector<ExperimentConfig>& cells, std::size_t jobs,
    const std::function<void(std::size_t)>& on_cell_done) {
  for (const ExperimentConfig& c : cells) {
    EEND_REQUIRE(c.runs >= 1);
    // run_cells slices the flat result array as cell * runs, so a ragged
    // runs count would misattribute replications.
    EEND_REQUIRE_MSG(c.runs == cells.front().runs,
                     "all cells in one batch must share the runs count");
  }
  return run_cells(cells, jobs, on_cell_done);
}

std::vector<ExperimentResult> sweep_rates(ExperimentConfig cfg,
                                          const std::vector<double>& rates) {
  EEND_REQUIRE(cfg.runs >= 1);
  std::vector<ExperimentConfig> cells;
  cells.reserve(rates.size());
  for (double r : rates) {
    cfg.scenario.rate_pps = r;
    cells.push_back(cfg);
  }
  return run_cells(cells, cfg.jobs);
}

std::vector<std::vector<ExperimentResult>> sweep_grid(
    const ExperimentConfig& cfg, const std::vector<net::StackSpec>& stacks,
    const std::vector<double>& rates, const StackProgressFn& on_stack_done) {
  EEND_REQUIRE(cfg.runs >= 1);
  std::vector<ExperimentConfig> cells;  // stack-major
  cells.reserve(stacks.size() * rates.size());
  for (const auto& stack : stacks) {
    ExperimentConfig c = cfg;
    c.stack = stack;
    for (double r : rates) {
      c.scenario.rate_pps = r;
      cells.push_back(c);
    }
  }

  // A stack's row is done when all of its rate cells are done.
  std::vector<std::size_t> cells_left(stacks.size(), rates.size());
  auto on_cell = [&](std::size_t cell) {
    const std::size_t si = cell / rates.size();
    if (--cells_left[si] == 0 && on_stack_done) on_stack_done(stacks[si]);
  };

  auto flat = run_cells(cells, cfg.jobs, on_cell);

  std::vector<std::vector<ExperimentResult>> out(stacks.size());
  for (std::size_t si = 0; si < stacks.size(); ++si)
    out[si].assign(std::make_move_iterator(flat.begin() + si * rates.size()),
                   std::make_move_iterator(flat.begin() +
                                           (si + 1) * rates.size()));
  return out;
}

}  // namespace eend::core
