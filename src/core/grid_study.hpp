// The §5.2.3 hypothetical-card study (Figs. 13-16).
//
// Paper methodology: simulate the 7x7 grid at a low base rate until routes
// stabilize, then freeze those routes and compute E_network analytically
// for higher rates ("we find the time when the routes stabilize for the
// 2 Kbit/s and use these routes to calculate E_network for higher rates"),
// under two sleep-scheduling models:
//   * perfect sleep — every node pays sleep power whenever it is not
//     transmitting or receiving;
//   * ODPM          — nodes on routes idle (in expectation of traffic);
//     all other nodes follow the PSM beacon/ATIM duty cycle;
//   * always-active — the DSR-Active baseline: everyone idles.
//
// The base-rate simulation is the expensive half, and it depends only on
// (scenario, stack) — never on the rate axis. freeze_routes() runs it once
// and grid_series() memoizes the result process-wide, so the four Fig 13-16
// figures (which pair the same stacks with low- and high-rate axes), a
// multi-experiment manifest, and repeated test fixtures all share one
// simulation per (scenario, stack). The analytic re-costing
// (grid_series_from_freeze) is pure and byte-stable, so cached and uncached
// paths produce identical GridSeries — grid_study_test pins that.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace eend::core {

struct GridPoint {
  double rate_pps = 0.0;
  double goodput_bit_per_j = 0.0;
  double network_power_w = 0.0;  ///< E_network per second at this rate
  double data_power_w = 0.0;
  double passive_power_w = 0.0;
};

struct GridSeries {
  std::string label;
  std::vector<mac::NodeId> active_nodes;  ///< nodes on frozen routes
  std::vector<GridPoint> points;
};

/// One frozen hop with the data transmit power in use on it.
struct FrozenHop {
  mac::NodeId from;
  mac::NodeId to;
  double tx_power_w;
};

/// The frozen outcome of one base-rate simulation.
struct RouteFreeze {
  std::string label;                      ///< stack label
  std::vector<mac::NodeId> active_nodes;  ///< nodes on frozen routes
  std::vector<FrozenHop> hops;
  std::size_t routed_flows = 0;
};

/// Run the base-rate simulation for `stack` and freeze its routes.
/// Uncached — each call simulates; tests use this as the reference path.
RouteFreeze freeze_routes(const net::ScenarioConfig& scenario,
                          const net::StackSpec& stack);

/// Analytic goodput series over `rates_pps` for an existing freeze. Pure
/// (no simulation); the sleep-scheduling model derives from stack.power.
GridSeries grid_series_from_freeze(const RouteFreeze& freeze,
                                   const net::ScenarioConfig& scenario,
                                   const net::StackSpec& stack,
                                   const std::vector<double>& rates_pps);

/// freeze_routes + grid_series_from_freeze, with the freeze memoized per
/// (scenario, stack) for the process lifetime. Thread-safe: concurrent
/// calls under ParallelRunner may race to compute the same key once, but
/// every caller observes the same deterministic freeze.
GridSeries grid_series(const net::ScenarioConfig& scenario,
                       const net::StackSpec& stack,
                       const std::vector<double>& rates_pps);

/// Cache introspection (tests): number of distinct freezes held / drop all.
std::size_t grid_freeze_cache_size();
void clear_grid_freeze_cache();

}  // namespace eend::core
