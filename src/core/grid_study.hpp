// The §5.2.3 hypothetical-card study (Figs. 13-16).
//
// Paper methodology: simulate the 7x7 grid at a low base rate until routes
// stabilize, then freeze those routes and compute E_network analytically
// for higher rates ("we find the time when the routes stabilize for the
// 2 Kbit/s and use these routes to calculate E_network for higher rates"),
// under two sleep-scheduling models:
//   * perfect sleep — every node pays sleep power whenever it is not
//     transmitting or receiving;
//   * ODPM          — nodes on routes idle (in expectation of traffic);
//     all other nodes follow the PSM beacon/ATIM duty cycle;
//   * always-active — the DSR-Active baseline: everyone idles.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace eend::core {

struct GridPoint {
  double rate_pps = 0.0;
  double goodput_bit_per_j = 0.0;
  double network_power_w = 0.0;  ///< E_network per second at this rate
  double data_power_w = 0.0;
  double passive_power_w = 0.0;
};

struct GridSeries {
  std::string label;
  std::vector<mac::NodeId> active_nodes;  ///< nodes on frozen routes
  std::vector<GridPoint> points;
};

/// Run the base-rate simulation for `stack`, freeze its routes, and produce
/// the goodput series over `rates_pps`. The sleep-scheduling model is
/// derived from stack.power (PerfectSleep / Odpm / AlwaysActive).
GridSeries grid_series(const net::ScenarioConfig& scenario,
                       const net::StackSpec& stack,
                       const std::vector<double>& rates_pps);

}  // namespace eend::core
