// Thread-pool-backed dispatcher for the replication engine.
//
// The paper's §5.2 methodology evaluates every figure cell as an average of
// N seeded replications; those replications (and the (stack × rate) cells
// around them) are embarrassingly parallel because each one owns a private
// sim::Simulator. ParallelRunner fans an index space [0, n) out across a
// fixed set of worker threads; callers write results into pre-sized slots
// keyed by index, so merged output is deterministic regardless of which
// worker ran which index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eend::obs {
class CounterRegistry;
}  // namespace eend::obs

namespace eend::core {

/// Worker count used for jobs = 0 ("auto"): one per hardware thread, or 1
/// when the runtime cannot report the hardware concurrency.
std::size_t default_jobs();

/// A small fixed-size thread pool exposing one operation: run a closure
/// over every index in [0, n), blocking until all complete.
///
/// * jobs == 1 (the default everywhere) executes inline on the calling
///   thread — byte-for-byte the old serial path, no threads created.
/// * jobs == 0 means default_jobs(); requests above kMaxJobs are clamped
///   (more workers than that is never useful and a negative flag value
///   cast through size_t must not try to spawn 2^64 threads).
/// * The calling thread participates as a worker, so `jobs` is the total
///   parallelism, not the number of helper threads.
/// * If closures throw, the batch still drains and the exception raised by
///   the smallest index is rethrown (deterministic error reporting).
///
/// Not thread-safe: one batch at a time, driven from one thread.
class ParallelRunner {
 public:
  static constexpr std::size_t kMaxJobs = 256;

  explicit ParallelRunner(std::size_t jobs = 1);
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Invoke fn(i) once for every i in [0, n); returns when all are done.
  ///
  /// Telemetry: the calling thread's current obs::CounterRegistry (if any)
  /// is installed in every worker for the batch duration, so counts made
  /// inside fn land in the caller's registry no matter which thread runs
  /// which index — totals stay identical for any `jobs` because sums
  /// commute. Closures that install their own ScopedRegistry (the
  /// per-replication/per-cell pattern) override it naturally.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  /// Label for per-index trace spans (emitted on logical lane `pid 0,
  /// tid = worker slot` while a TraceCollector is installed). Must point
  /// at storage outliving the runner; nullptr (default) disables spans.
  void set_span_label(const char* label) { span_label_ = label; }

 private:
  void worker_loop(std::size_t lane);
  void drain(std::unique_lock<std::mutex>& lk, std::uint32_t lane);

  std::size_t jobs_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  // bumped per batch to wake workers

  // Current batch (guarded by m_; indices are claimed under the lock, the
  // closure itself runs unlocked).
  std::size_t n_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  std::size_t err_index_ = 0;
  std::exception_ptr err_;

  // Telemetry: the batch's inherited counter registry (the caller's
  // thread-local current() at for_each_index time) and the span label.
  obs::CounterRegistry* batch_reg_ = nullptr;
  const char* span_label_ = nullptr;
};

}  // namespace eend::core
