#include "core/parallel_runner.hpp"

#include <algorithm>
#include <optional>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace eend::core {

namespace {
/// Trace lane of the pool worker currently executing on this thread (0 on
/// the calling thread and outside any pool). A nested serial
/// for_each_index on a worker thread emits its spans on the worker's lane
/// rather than colliding with every other worker on lane 0.
thread_local std::uint32_t t_lane = 0;
}  // namespace

std::size_t default_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

ParallelRunner::ParallelRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : std::min(jobs, kMaxJobs)) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelRunner::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    drain(lk, static_cast<std::uint32_t>(lane));
  }
}

void ParallelRunner::drain(std::unique_lock<std::mutex>& lk,
                           std::uint32_t lane) {
  while (next_ < n_) {
    const std::size_t i = next_++;
    const auto* fn = fn_;
    obs::CounterRegistry* const reg = batch_reg_;
    const char* const label = span_label_;
    lk.unlock();
    std::exception_ptr caught;
    try {
      // Route counts into the caller's registry; the span (if labeled and
      // a collector is installed) shows this index on the worker's lane.
      const obs::ScopedRegistry scope(reg);
      t_lane = lane;
      std::optional<obs::PhaseTimer> span;
      if (label != nullptr && obs::tracing()) span.emplace(label, 0, lane);
      (*fn)(i);
    } catch (...) {
      caught = std::current_exception();
    }
    lk.lock();
    if (caught && (!err_ || i < err_index_)) {
      err_ = caught;
      err_index_ = i;
    }
    if (++completed_ == n_) cv_done_.notify_all();
  }
}

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial fast path: the caller's registry is already this thread's
    // current one; only the per-index spans need emitting.
    for (std::size_t i = 0; i < n; ++i) {
      std::optional<obs::PhaseTimer> span;
      if (span_label_ != nullptr && obs::tracing())
        span.emplace(span_label_, 0, t_lane);
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lk(m_);
  n_ = n;
  fn_ = &fn;
  next_ = 0;
  completed_ = 0;
  err_ = nullptr;
  batch_reg_ = obs::current();
  ++generation_;
  cv_start_.notify_all();
  drain(lk, 0);  // the calling thread works too
  cv_done_.wait(lk, [&] { return completed_ == n_; });
  n_ = 0;
  fn_ = nullptr;
  batch_reg_ = nullptr;
  if (err_) {
    auto err = err_;
    err_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace eend::core
