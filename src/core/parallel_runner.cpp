#include "core/parallel_runner.hpp"

#include <algorithm>

namespace eend::core {

std::size_t default_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

ParallelRunner::ParallelRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : std::min(jobs, kMaxJobs)) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelRunner::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    drain(lk);
  }
}

void ParallelRunner::drain(std::unique_lock<std::mutex>& lk) {
  while (next_ < n_) {
    const std::size_t i = next_++;
    const auto* fn = fn_;
    lk.unlock();
    std::exception_ptr caught;
    try {
      (*fn)(i);
    } catch (...) {
      caught = std::current_exception();
    }
    lk.lock();
    if (caught && (!err_ || i < err_index_)) {
      err_ = caught;
      err_index_ = i;
    }
    if (++completed_ == n_) cv_done_.notify_all();
  }
}

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);  // serial fast path
    return;
  }
  std::unique_lock<std::mutex> lk(m_);
  n_ = n;
  fn_ = &fn;
  next_ = 0;
  completed_ = 0;
  err_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  drain(lk);  // the calling thread works too
  cv_done_.wait(lk, [&] { return completed_ == n_; });
  n_ = 0;
  fn_ = nullptr;
  if (err_) {
    auto err = err_;
    err_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace eend::core
