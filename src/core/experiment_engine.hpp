// ExperimentEngine: executes a Manifest, streaming every cell's aggregated
// results through the registered ResultSinks.
//
// Determinism contract: for a given manifest and options, the byte stream
// each sink receives is identical for every jobs value — replication and
// per-stack parallelism reuse ParallelRunner's index-slot merging, and rows
// are emitted x-major / series-minor in manifest order after each
// experiment's cells complete. --jobs only changes wall-clock time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "obs/counters.hpp"

namespace eend::core {

struct EngineOptions {
  /// Worker threads: 1 = serial, 0 = one per hardware thread.
  std::size_t jobs = 1;
  /// Apply each experiment's QuickSpec (reduced duration / runs / axes).
  bool quick = false;
  /// When set, override every experiment's replication count / seed
  /// (seed 0 is a valid override, hence optionals rather than sentinels).
  std::optional<std::size_t> runs_override;
  std::optional<std::uint64_t> seed_override;
  /// Progress lines ("  [title] STACK done") go here; nullptr = silent.
  std::ostream* progress = nullptr;
  /// Per-experiment telemetry counters as JSONL (one line per counter /
  /// histogram, merged in seed order so the bytes are --jobs-invariant);
  /// nullptr = counters are still collected but not written.
  std::ostream* counters = nullptr;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions opts = {}) : opts_(opts) {}

  /// Sinks are not owned and must outlive run() calls.
  void add_sink(ResultSink& sink) { sinks_.push_back(&sink); }

  /// Execute every experiment in manifest order.
  void run(const Manifest& m);

  /// Execute one experiment (benches drive single figures this way).
  void run(const Experiment& e);

 private:
  void run_sweep(const Experiment& e);
  void run_density(const Experiment& e);
  void run_grid(const Experiment& e);
  void run_mopt(const Experiment& e);
  void run_design(const Experiment& e);
  void run_replay(const Experiment& e);
  void run_churn(const Experiment& e);

  void emit(const ResultRow& r);
  /// Resolve the experiment's scenario; density cells pass their node
  /// count so presets that derive other parameters from it (huge_field
  /// scales the field to hold density constant) resolve per cell.
  net::ScenarioConfig resolve_scenario(
      const Experiment& e,
      std::optional<std::size_t> node_count = std::nullopt) const;
  static std::vector<net::StackSpec> resolve_stacks(const Experiment& e);
  std::size_t effective_runs(const Experiment& e) const;
  std::uint64_t effective_seed(const Experiment& e) const;
  void note(const std::string& line);

  EngineOptions opts_;
  std::vector<ResultSink*> sinks_;
  /// Counters accumulated by the experiment currently inside run(); each
  /// run_* kind merges its per-cell snapshots here in cell order.
  obs::CounterSnapshot exp_counters_;
};

}  // namespace eend::core
