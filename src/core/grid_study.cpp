#include "core/grid_study.hpp"

#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "routing/messages.hpp"
#include "util/format.hpp"

namespace eend::core {

namespace {

// ---------------------------------------------------------- cache keying ---

/// Exact fingerprint of every (scenario, stack) field the base-rate
/// simulation can observe. Doubles are rendered with the shortest
/// round-trip formatter, so distinct IEEE-754 values never collide and a
/// field nudged by 1 ulp is a different key (correct: the simulation is
/// bit-sensitive). A missed field here would alias two different
/// simulations — keep this list in lockstep with ScenarioConfig/StackSpec.
void fp(std::ostringstream& os, double v) { os << format_double(v) << '|'; }
void fp(std::ostringstream& os, std::uint64_t v) {
  os << format_u64(v) << '|';
}
void fp(std::ostringstream& os, const std::string& v) {
  os << v.size() << ':' << v << '|';
}

// Trip-wire: freeze_key below must enumerate every field the simulation
// can observe, or two different configurations would alias one cache entry
// and silently reuse stale frozen routes. A new field changes the struct
// size; this assert turns the silent aliasing into a compile error that
// points here. (Sizes are libstdc++/x86-64-specific — the layout CI pins —
// so the guard is scoped to that ABI.)
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(net::ScenarioConfig) == 456 &&
                  sizeof(net::StackSpec) == 128 &&
                  sizeof(energy::RadioCard) == 112,
              "ScenarioConfig/StackSpec/RadioCard changed — update "
              "freeze_key() to fingerprint any new field, then refresh "
              "these sizes");
#endif

std::string freeze_key(const net::ScenarioConfig& sc,
                       const net::StackSpec& st) {
  std::ostringstream os;
  // scenario: topology
  fp(os, static_cast<std::uint64_t>(sc.node_count));
  fp(os, sc.field_w);
  fp(os, sc.field_h);
  fp(os, static_cast<std::uint64_t>(sc.placement));
  fp(os, static_cast<std::uint64_t>(sc.grid_cols));
  fp(os, static_cast<std::uint64_t>(sc.grid_rows));
  fp(os, static_cast<std::uint64_t>(sc.explicit_positions.size()));
  for (const phy::Position& p : sc.explicit_positions) {
    fp(os, p.x);
    fp(os, p.y);
  }
  // scenario: card
  fp(os, sc.card.name);
  fp(os, sc.card.p_idle);
  fp(os, sc.card.p_rx);
  fp(os, sc.card.p_sleep);
  fp(os, sc.card.p_base);
  fp(os, sc.card.alpha2);
  fp(os, sc.card.path_loss_n);
  fp(os, sc.card.max_range_m);
  fp(os, sc.card.bandwidth_bps);
  fp(os, sc.card.switch_energy_j);
  fp(os, sc.card.switch_latency_s);
  // scenario: propagation
  fp(os, sc.prop.cs_range_factor);
  fp(os, sc.prop.interference_range_factor);
  fp(os, static_cast<std::uint64_t>(sc.prop.scale_footprint_with_power));
  // scenario: traffic
  fp(os, static_cast<std::uint64_t>(sc.flow_count));
  fp(os, sc.rate_pps);
  fp(os, static_cast<std::uint64_t>(sc.payload_bits));
  fp(os, sc.flow_start_min_s);
  fp(os, sc.flow_start_max_s);
  fp(os, static_cast<std::uint64_t>(sc.flow_endpoint_pool));
  fp(os, static_cast<std::uint64_t>(sc.rate_multipliers.size()));
  for (const double m : sc.rate_multipliers) fp(os, m);
  fp(os, static_cast<std::uint64_t>(sc.flows_left_right));
  fp(os, static_cast<std::uint64_t>(sc.flow_endpoints.size()));
  for (const auto& [s, d] : sc.flow_endpoints) {
    fp(os, static_cast<std::uint64_t>(s));
    fp(os, static_cast<std::uint64_t>(d));
  }
  fp(os, static_cast<std::uint64_t>(sc.powered_off_nodes.size()));
  for (const std::size_t id : sc.powered_off_nodes)
    fp(os, static_cast<std::uint64_t>(id));
  // scenario: execution
  fp(os, sc.duration_s);
  fp(os, sc.seed);
  fp(os, sc.mac.slot_s);
  fp(os, static_cast<std::uint64_t>(sc.mac.cw_min_slots));
  fp(os, static_cast<std::uint64_t>(sc.mac.cw_max_slots));
  fp(os, static_cast<std::uint64_t>(sc.mac.retry_limit));
  fp(os, static_cast<std::uint64_t>(sc.mac.max_defer_rounds));
  fp(os, static_cast<std::uint64_t>(sc.mac.max_cs_defers));
  fp(os, sc.mac.frame_overhead_s);
  fp(os, static_cast<std::uint64_t>(sc.mac.mac_header_bits));
  fp(os, static_cast<std::uint64_t>(sc.mac.queue_limit));
  fp(os, sc.mac.bcast_jitter_s);
  fp(os, sc.mac.window_jitter_s);
  fp(os, sc.mac.bcast_window_fraction);
  fp(os, sc.mac.bcast_max_age_s);
  fp(os, sc.battery_capacity_j);
  fp(os, sc.battery_check_interval_s);
  // stack
  fp(os, st.label);
  fp(os, static_cast<std::uint64_t>(st.routing));
  fp(os, static_cast<std::uint64_t>(st.power));
  fp(os, static_cast<std::uint64_t>(st.tpc));
  fp(os, static_cast<std::uint64_t>(st.rate_info));
  fp(os, st.odpm.keepalive_data_s);
  fp(os, st.odpm.keepalive_rrep_s);
  fp(os, st.psm.beacon_interval_s);
  fp(os, st.psm.atim_window_s);
  fp(os, static_cast<std::uint64_t>(st.psm.span_improvements));
  fp(os, st.psm.atim_frame_s);
  fp(os, st.psm.atim_utilization);
  fp(os, st.dsdv_quality_interval_s);
  fp(os, st.dsdv_quality_noise);
  fp(os, st.titan_alpha);
  return os.str();
}

std::mutex g_cache_mutex;
std::map<std::string, std::shared_ptr<const RouteFreeze>>& freeze_cache() {
  static std::map<std::string, std::shared_ptr<const RouteFreeze>> cache;
  return cache;
}

std::shared_ptr<const RouteFreeze> freeze_routes_cached(
    const net::ScenarioConfig& scenario, const net::StackSpec& stack) {
  const std::string key = freeze_key(scenario, stack);
  {
    std::lock_guard<std::mutex> lk(g_cache_mutex);
    const auto it = freeze_cache().find(key);
    if (it != freeze_cache().end()) return it->second;
  }
  // Simulate outside the lock so distinct stacks freeze in parallel under
  // ParallelRunner; a same-key race wastes one duplicate simulation but
  // both compute identical data and the first insert wins.
  auto fresh =
      std::make_shared<const RouteFreeze>(freeze_routes(scenario, stack));
  std::lock_guard<std::mutex> lk(g_cache_mutex);
  const auto [it, inserted] = freeze_cache().emplace(key, std::move(fresh));
  (void)inserted;
  return it->second;
}

}  // namespace

RouteFreeze freeze_routes(const net::ScenarioConfig& scenario,
                          const net::StackSpec& stack) {
  // Base-rate simulation to let routes stabilize.
  net::Network network(scenario, stack);
  const metrics::RunResult base = network.run();

  RouteFreeze out;
  out.label = stack.label;

  const auto positions = net::place_nodes(scenario);
  const auto& card = scenario.card;
  const phy::Propagation prop(card, scenario.prop);

  std::set<mac::NodeId> active;
  for (const auto& [flow, route] : base.flow_routes) {
    (void)flow;
    if (route.size() < 2) continue;
    ++out.routed_flows;
    for (mac::NodeId v : route) active.insert(v);
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      const double d = phy::distance(positions[route[i]],
                                     positions[route[i + 1]]);
      const double p =
          stack.tpc ? prop.required_power(d) : card.max_transmit_power();
      out.hops.push_back(FrozenHop{route[i], route[i + 1], p});
    }
  }
  out.active_nodes.assign(active.begin(), active.end());
  return out;
}

GridSeries grid_series_from_freeze(const RouteFreeze& freeze,
                                   const net::ScenarioConfig& scenario,
                                   const net::StackSpec& stack,
                                   const std::vector<double>& rates_pps) {
  GridSeries out;
  out.label = freeze.label;
  out.active_nodes = freeze.active_nodes;

  const std::set<mac::NodeId> active(freeze.active_nodes.begin(),
                                     freeze.active_nodes.end());
  const auto& card = scenario.card;
  const double duty = stack.psm.atim_window_s / stack.psm.beacon_interval_s;

  for (double rate : rates_pps) {
    // Per-hop airtime of one data frame (payload + source-route header +
    // MAC header + PHY/ACK overhead), matching the simulator's accounting.
    GridPoint pt;
    pt.rate_pps = rate;

    std::map<mac::NodeId, double> busy_frac;  // tx+rx time per second
    double data_w = 0.0;
    for (const FrozenHop& h : freeze.hops) {
      const std::uint32_t route_len_bits =
          routing::kRouteEntryBits * 4;  // average source-route header
      const double t = card.tx_duration(scenario.payload_bits +
                                        route_len_bits +
                                        scenario.mac.mac_header_bits) +
                       scenario.mac.frame_overhead_s;
      const double air = rate * t;  // seconds of airtime per second
      data_w += air * (h.tx_power_w + card.p_rx);
      busy_frac[h.from] += air;
      busy_frac[h.to] += air;
    }
    pt.data_power_w = data_w;

    // Passive power by scheduling model.
    double passive_w = 0.0;
    auto busy = [&](mac::NodeId v) {
      const auto it = busy_frac.find(v);
      return it == busy_frac.end() ? 0.0 : std::min(1.0, it->second);
    };
    switch (stack.power) {
      case net::PowerKind::PerfectSleep:
        for (mac::NodeId v = 0; v < scenario.node_count; ++v)
          passive_w += card.p_sleep * (1.0 - busy(v));
        break;
      case net::PowerKind::AlwaysActive:
        for (mac::NodeId v = 0; v < scenario.node_count; ++v)
          passive_w += card.p_idle * (1.0 - busy(v));
        break;
      case net::PowerKind::Odpm:
      case net::PowerKind::AlwaysPsm:
        for (mac::NodeId v = 0; v < scenario.node_count; ++v) {
          if (active.count(v) > 0) {
            passive_w += card.p_idle * (1.0 - busy(v));
          } else {
            passive_w += card.p_idle * duty + card.p_sleep * (1.0 - duty);
          }
        }
        break;
    }
    pt.passive_power_w = passive_w;
    pt.network_power_w = data_w + passive_w;

    const double delivered_bits_per_s =
        static_cast<double>(freeze.routed_flows) * rate *
        static_cast<double>(scenario.payload_bits);
    pt.goodput_bit_per_j = pt.network_power_w > 0.0
                               ? delivered_bits_per_s / pt.network_power_w
                               : 0.0;
    out.points.push_back(pt);
  }
  return out;
}

GridSeries grid_series(const net::ScenarioConfig& scenario,
                       const net::StackSpec& stack,
                       const std::vector<double>& rates_pps) {
  const auto freeze = freeze_routes_cached(scenario, stack);
  return grid_series_from_freeze(*freeze, scenario, stack, rates_pps);
}

std::size_t grid_freeze_cache_size() {
  std::lock_guard<std::mutex> lk(g_cache_mutex);
  return freeze_cache().size();
}

void clear_grid_freeze_cache() {
  std::lock_guard<std::mutex> lk(g_cache_mutex);
  freeze_cache().clear();
}

}  // namespace eend::core
