#include "core/grid_study.hpp"

#include <map>
#include <set>

#include "routing/messages.hpp"

namespace eend::core {

namespace {

/// One frozen hop with its distance and the data transmit power in use.
struct Hop {
  mac::NodeId from;
  mac::NodeId to;
  double tx_power_w;
};

}  // namespace

GridSeries grid_series(const net::ScenarioConfig& scenario,
                       const net::StackSpec& stack,
                       const std::vector<double>& rates_pps) {
  // 1. Base-rate simulation to let routes stabilize.
  net::Network network(scenario, stack);
  const metrics::RunResult base = network.run();

  GridSeries out;
  out.label = stack.label;

  // 2. Freeze routes; collect hops and the active node set.
  const auto positions = net::place_nodes(scenario);
  const auto& card = scenario.card;
  const phy::Propagation prop(card, scenario.prop);

  std::vector<Hop> hops;
  std::set<mac::NodeId> active;
  std::size_t routed_flows = 0;
  for (const auto& [flow, route] : base.flow_routes) {
    (void)flow;
    if (route.size() < 2) continue;
    ++routed_flows;
    for (mac::NodeId v : route) active.insert(v);
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      const double d = phy::distance(positions[route[i]],
                                     positions[route[i + 1]]);
      const double p =
          stack.tpc ? prop.required_power(d) : card.max_transmit_power();
      hops.push_back(Hop{route[i], route[i + 1], p});
    }
  }
  out.active_nodes.assign(active.begin(), active.end());

  // 3. Analytic E_network per second at each rate.
  const double n_nodes = static_cast<double>(scenario.node_count);
  const double duty = stack.psm.atim_window_s / stack.psm.beacon_interval_s;

  for (double rate : rates_pps) {
    // Per-hop airtime of one data frame (payload + source-route header +
    // MAC header + PHY/ACK overhead), matching the simulator's accounting.
    GridPoint pt;
    pt.rate_pps = rate;

    std::map<mac::NodeId, double> busy_frac;  // tx+rx time per second
    double data_w = 0.0;
    for (const Hop& h : hops) {
      const std::uint32_t route_len_bits =
          routing::kRouteEntryBits * 4;  // average source-route header
      const double t = card.tx_duration(scenario.payload_bits +
                                        route_len_bits +
                                        scenario.mac.mac_header_bits) +
                       scenario.mac.frame_overhead_s;
      const double air = rate * t;  // seconds of airtime per second
      data_w += air * (h.tx_power_w + card.p_rx);
      busy_frac[h.from] += air;
      busy_frac[h.to] += air;
    }
    pt.data_power_w = data_w;

    // Passive power by scheduling model.
    double passive_w = 0.0;
    auto busy = [&](mac::NodeId v) {
      const auto it = busy_frac.find(v);
      return it == busy_frac.end() ? 0.0 : std::min(1.0, it->second);
    };
    switch (stack.power) {
      case net::PowerKind::PerfectSleep:
        for (mac::NodeId v = 0; v < scenario.node_count; ++v)
          passive_w += card.p_sleep * (1.0 - busy(v));
        break;
      case net::PowerKind::AlwaysActive:
        for (mac::NodeId v = 0; v < scenario.node_count; ++v)
          passive_w += card.p_idle * (1.0 - busy(v));
        break;
      case net::PowerKind::Odpm:
      case net::PowerKind::AlwaysPsm:
        for (mac::NodeId v = 0; v < scenario.node_count; ++v) {
          if (active.count(v) > 0) {
            passive_w += card.p_idle * (1.0 - busy(v));
          } else {
            passive_w += card.p_idle * duty + card.p_sleep * (1.0 - duty);
          }
        }
        break;
    }
    pt.passive_power_w = passive_w;
    pt.network_power_w = data_w + passive_w;

    const double delivered_bits_per_s =
        static_cast<double>(routed_flows) * rate *
        static_cast<double>(scenario.payload_bits);
    pt.goodput_bit_per_j = pt.network_power_w > 0.0
                               ? delivered_bits_per_s / pt.network_power_w
                               : 0.0;
    out.points.push_back(pt);
  }
  (void)n_nodes;
  return out;
}

}  // namespace eend::core
