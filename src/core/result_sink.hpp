// Pluggable result emission for the manifest engine.
//
// ExperimentEngine turns every experiment cell into a ResultRow and streams
// it to all registered sinks in a deterministic order (independent of
// --jobs). Three sinks ship:
//
//   CsvSink    long/tidy CSV, one line per (row, metric), fixed header —
//              direct input for pandas / gnuplot / R;
//   JsonlSink  one compact JSON object per row — the golden-file format;
//   TableSink  the human-readable pivot tables the paper's figures use
//              (rows = x-axis, one column per stack/card).
//
// Machine sinks format every number with util/format.hpp's shortest
// round-trip representation, so files are locale-independent and stable
// across platforms for identical IEEE-754 results.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/manifest.hpp"

namespace eend::core {

/// One aggregated metric of one cell.
struct MetricValue {
  std::string name;
  double mean = 0.0;
  double ci95 = 0.0;   ///< 95% Student-t half-width (0 when runs < 2)
  std::size_t n = 0;   ///< sample size behind the aggregate
};

/// One experiment cell: a (series, x) point with its metric values.
struct ResultRow {
  std::string experiment;  ///< manifest experiment id
  std::string kind;        ///< kind_name() of the experiment
  std::string series;      ///< stack label or card legend
  std::string x_name;      ///< "rate_pps" | "nodes" | "rb"
  double x = 0.0;
  std::size_t runs = 0;
  std::uint64_t seed = 0;
  std::vector<MetricValue> metrics;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin_experiment(const Experiment& e) { (void)e; }
  virtual void row(const ResultRow& r) = 0;
  virtual void end_experiment(const Experiment& e) { (void)e; }
};

/// Long-format CSV: header
///   experiment,kind,series,x_name,x,runs,seed,metric,mean,ci95,n
/// then one line per (row, metric). Fields containing separators are
/// RFC-4180 quoted.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& os) : os_(os) {}
  void row(const ResultRow& r) override;

 private:
  std::ostream& os_;
  bool header_written_ = false;
};

/// JSON-lines: one compact object per row, metrics nested by name. The
/// format diffed by the golden regression suite.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void row(const ResultRow& r) override;

 private:
  std::ostream& os_;
};

/// Pretty pivot tables, one per (experiment, metric): rows = x values in
/// first-seen order, columns = series in first-seen order. Sim kinds print
/// "mean +- ci95"; analytic kinds (grid, mopt) print the bare value.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& os) : os_(os) {}
  void begin_experiment(const Experiment& e) override;
  void row(const ResultRow& r) override;
  void end_experiment(const Experiment& e) override;

 private:
  std::ostream& os_;
  std::vector<ResultRow> rows_;
};

}  // namespace eend::core
