// The energy-efficient network design problem (Section 3) as a first-class
// object, with the centralized solvers the paper discusses:
//
//   * node-weighted Steiner tree via Klein-Ravi (the Ω(log n) family);
//   * MPC-style reduction [Xing et al.]: push node weights onto edges and
//     run an edge-weighted Steiner approximation (KMB);
//   * Eq. 5 evaluation of any routing over the instance.
//
// These are the analysis-side tools; the distributed heuristics live in
// routing/ and are exercised through net::Network.
#pragma once

#include <optional>
#include <vector>

#include "analytical/design_eval.hpp"
#include "energy/radio_card.hpp"
#include "graph/steiner.hpp"
#include "phy/position.hpp"

namespace eend::core {

/// A design-problem instance: connectivity graph with communication edge
/// weights w(e) and idling node weights c(v), plus traffic demands.
class NetworkDesignProblem {
 public:
  /// Build from node positions and a radio card: nodes within transmission
  /// range are connected; w(e) = Ptx(d) + Prx (per unit data time) and
  /// c(v) = Pidle (per unit idle time), the Section 3 weighting.
  /// Neighbor discovery goes through a spatial::GridIndex, so construction
  /// is O(N·k) in the node count — the same predicate and arithmetic as the
  /// historical all-pairs scan, byte-identical edge lists included
  /// (design_problem_test pins the equivalence).
  static NetworkDesignProblem from_positions(
      const std::vector<phy::Position>& positions,
      const energy::RadioCard& card);

  /// Build directly from an explicit graph (weights already assigned).
  explicit NetworkDesignProblem(graph::Graph g) : graph_(std::move(g)) {}

  /// Empty problem (no nodes, no demands) — pre-sized result slots in the
  /// parallel engines are filled in place.
  NetworkDesignProblem() = default;

  const graph::Graph& graph() const { return graph_; }
  graph::Graph& graph() { return graph_; }

  void add_demand(graph::Demand d) { demands_.push_back(d); }
  /// Replace the whole demand set (the churn/ subsystem evolves demands
  /// across epochs over a fixed node id space).
  void set_demands(std::vector<graph::Demand> d) { demands_ = std::move(d); }
  const std::vector<graph::Demand>& demands() const { return demands_; }

  /// Terminals = all demand endpoints (deduplicated, sorted).
  std::vector<graph::NodeId> terminals() const;

  /// Node-weighted Steiner tree over the demand terminals (Klein-Ravi).
  graph::SteinerTree solve_node_weighted() const;

  /// MPC-style reduction: ignore node weights, run edge-weighted KMB with
  /// w'(e) = c(u) (the "edge weights equal to c(u)" reduction of §3).
  graph::SteinerTree solve_mpc_reduction() const;

  /// Plain edge-weighted KMB on w(e) (communication-cost-only design).
  graph::SteinerTree solve_edge_weighted() const;

  /// Route all demands along shortest paths *within* the given tree and
  /// evaluate Eq. 5.
  analytical::Eq5Breakdown evaluate_tree(
      const graph::SteinerTree& tree, const analytical::Eq5Params& p) const;

  /// Route all demands along global shortest paths (no tree restriction)
  /// and evaluate Eq. 5 — the "routing-aware" comparison point.
  analytical::Eq5Breakdown evaluate_shortest_paths(
      const analytical::Eq5Params& p) const;

  /// Route all demands along shortest paths restricted to `allowed_nodes`
  /// (empty = no restriction). Returns nullopt when any demand is
  /// unroutable within the set — the non-throwing twin the search layer
  /// (opt/) probes candidate designs with; the evaluate_* entry points
  /// above are built on it. On failure, `failed_demand` (when non-null)
  /// receives the index of the first unroutable demand.
  std::optional<std::vector<analytical::RoutedDemand>> try_route_in_subgraph(
      const std::vector<graph::NodeId>& allowed_nodes,
      std::size_t* failed_demand = nullptr) const;

  /// Cached twin of try_route_in_subgraph for incremental re-evaluation:
  /// `cached_routes` must be the routes this problem produced for
  /// `cached_allowed` (same graph, same demand endpoints; rates may have
  /// changed — paths are rate-independent). When `allowed_nodes` is a
  /// subset of `cached_allowed`, a cached path that avoids every removed
  /// node is still a shortest path (removing options can only lengthen
  /// paths) and is reused verbatim; only demands whose cached path touches
  /// a removed node — or whose endpoints changed — re-run Dijkstra. Falls
  /// back to the uncached routine whenever the subset precondition fails
  /// (e.g. nodes were *added*, which can create shorter paths). Caveat:
  /// bit-equality with the uncached twin additionally needs unique shortest
  /// paths; exact float ties could re-break differently, but the random
  /// geometric weights every instance family draws make ties measure-zero
  /// (design_heuristic_test pins the equality on those families).
  std::optional<std::vector<analytical::RoutedDemand>>
  try_route_in_subgraph_cached(
      const std::vector<graph::NodeId>& allowed_nodes,
      const std::vector<graph::NodeId>& cached_allowed,
      const std::vector<analytical::RoutedDemand>& cached_routes,
      std::size_t* failed_demand = nullptr) const;

 private:
  std::vector<analytical::RoutedDemand> route_in_subgraph(
      const std::vector<graph::NodeId>& allowed_nodes) const;

  graph::Graph graph_;
  std::vector<graph::Demand> demands_;
};

}  // namespace eend::core
