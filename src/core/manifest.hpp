// Scenario manifests: a declarative description of a batch of experiment
// cells — which protocol stacks, over which topology, at which traffic
// rates, how many seeded replications — parsed from a small JSON format
// with no external dependencies.
//
// A manifest is a list of experiments; each experiment is one "figure's
// worth" of cells and produces a stream of ResultRows (see result_sink.hpp)
// when executed by ExperimentEngine. Four kinds cover every evaluation
// shape in the paper:
//
//   sweep    (stack × rate) replication grid        — Figs. 8-12, ablations
//   density  (stack × node count) at a fixed rate   — Table 2
//   grid     frozen-route analytic goodput series   — Figs. 13-16 (§5.2.3)
//   mopt     characteristic hop count per card      — Fig. 7 (§5.1)
//   design   (heuristic × instance size) Eq. 5 design-search portfolio
//            over random §5.2.2-density fields      — the §3 problem itself
//   replay   (heuristic × instance size) searched designs realized as
//            scenarios and re-run through net::Network — the simulated-vs-
//            analytic cross-check, with battery caps and demand weights
//   churn    (instance size × epoch) time-varying serving loop: a
//            deterministic churn trace perturbs the instance each epoch and
//            the incremental designer repairs the previous design, scored
//            against a from-scratch portfolio per epoch
//
// Parsing is strict: unknown keys, duplicate experiment ids, duplicate
// cells (repeated stacks / rates / node counts), and out-of-range values
// are rejected with actionable messages. Specs stay symbolic (preset name +
// overrides) so serialize() round-trips to a canonical form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "churn/trace.hpp"
#include "net/scenario.hpp"
#include "net/stack.hpp"
#include "util/json.hpp"

namespace eend::core {

enum class ExperimentKind { Sweep, Density, Grid, Mopt, Design, Replay, Churn };

const char* kind_name(ExperimentKind k);
ExperimentKind kind_from_name(const std::string& name);

/// Scenario reference: a named preset plus explicit overrides, resolved to
/// a net::ScenarioConfig on demand. Presets: "small_network",
/// "large_network", "density_network", "hypothetical_grid", "custom".
struct ScenarioSpec {
  std::string preset = "small_network";
  std::optional<std::size_t> node_count;
  std::optional<double> field_w;
  std::optional<double> field_h;
  std::optional<std::size_t> flow_count;
  std::optional<double> rate_pps;
  std::optional<std::uint32_t> payload_bits;
  std::optional<double> duration_s;
  std::optional<std::size_t> flow_endpoint_pool;
  std::optional<std::vector<double>> rate_multipliers;

  /// Preset factory + overrides; throws CheckError (via validate()) on
  /// nonsensical combinations.
  net::ScenarioConfig resolve() const;
};

/// One metric column of an experiment; precision affects only the pretty
/// tables, never the machine-readable sinks.
struct MetricSpec {
  std::string name;
  int precision = 3;
};

/// One Fig. 7 curve: a radio card evaluated at a fixed endpoint distance.
struct CardSpec {
  std::string card;
  double distance_m = 100.0;
};

/// Reduced-scale parameters applied when the engine runs in --quick mode.
struct QuickSpec {
  std::optional<double> duration_s;
  std::optional<std::size_t> runs;
  std::optional<std::vector<double>> rates_pps;
  std::optional<std::vector<std::size_t>> node_counts;
  std::optional<std::size_t> epochs;  ///< churn: shortened trace length
};

struct Experiment {
  std::string id;     ///< unique within the manifest; [A-Za-z0-9_-]+
  std::string title;  ///< banner text; defaults to id
  ExperimentKind kind = ExperimentKind::Sweep;

  ScenarioSpec scenario;
  /// Escape hatch for programmatic callers (the bench binaries): when set,
  /// used verbatim instead of scenario.resolve(). Never serialized.
  std::optional<net::ScenarioConfig> scenario_config;

  std::vector<std::string> stacks;        ///< preset names (sim kinds)
  /// Programmatic twin of `stacks`: full specs (possibly tweaked beyond any
  /// preset) used verbatim when set. Never serialized.
  std::optional<std::vector<net::StackSpec>> stack_specs;
  std::vector<double> rates_pps;          ///< x-axis: sweep, grid
  std::vector<std::size_t> node_counts;   ///< x-axis: density, design
  std::vector<CardSpec> cards;            ///< curves: mopt
  std::vector<double> rb;                 ///< x-axis: mopt (R/B, (0, 0.5])
  std::vector<std::string> heuristics;    ///< series: design (opt/ registry)

  std::size_t runs = 5;
  std::uint64_t seed = 1;
  double base_rate_pps = 2.0;  ///< grid: rate of the route-freezing sim

  // design + replay kinds: instance and search knobs.
  std::size_t demands = 8;       ///< demands sampled per instance
  std::size_t starts = 8;        ///< portfolio multi-start count
  std::size_t anneal_iters = 300;///< annealing iterations per (re)start
  /// Run presolve::presolve_design per instance: searches use the reduced
  /// twins (bit-identical results) and the lb / certified_gap_pct /
  /// reduced_* metrics become available.
  bool presolve = false;
  /// Multiplier on the §5.2.2 density-law field side ("field_scale" key).
  /// Values > 1 make sparser instances at every node count — the regime
  /// where the presolve reductions actually fire.
  double field_scale = 1.0;

  // replay kind: realization and simulation knobs.
  std::string replay_stack = "dsr_active";  ///< stack preset ("stack" key)
  double replay_duration_s = 300.0;  ///< sim horizon ("duration_s" key)
  double replay_rate_pps = 2.0;      ///< base CBR rate per unit demand rate
  /// Per-node battery (J); 0 = infinite. Required > 0 when any
  /// `*_lifetime` heuristic is listed (it doubles as the search budget).
  double battery_j = 0.0;
  /// Heterogeneous per-demand rate multipliers, cycled over the demands
  /// (mixed_rate-style); they drive Eq. 5 and the CBR generators from one
  /// source of truth. Empty = homogeneous.
  std::vector<double> demand_weights;

  // churn kind: trace generator and serving-loop knobs. A non-empty
  // `churn_schedule` (the "schedule" key) replaces the generator; the
  // parser rejects manifests mixing the two.
  std::size_t epochs = 8;               ///< trace length incl. epoch 0
  std::size_t arrivals_per_epoch = 1;
  std::size_t departures_per_epoch = 1;
  std::size_t swings_per_epoch = 1;
  std::size_t failures_per_epoch = 0;
  double rate_swing = 0.5;              ///< swing factor in [1−s, 1+s]
  double move_fraction = 0.0;           ///< fraction of nodes moved/epoch
  double move_sigma_m = 50.0;           ///< waypoint Gaussian step (m)
  /// Warm-start fallback threshold: the repair must land within this
  /// percentage of the Klein-Ravi reference or the full portfolio reruns.
  double fallback_pct = 5.0;
  /// Replay-validate the warm design every N epochs through src/replay/
  /// (0 = off). When > 0 the replay knobs stack/duration_s/rate_pps apply.
  std::size_t replay_every = 0;
  std::vector<churn::EpochEvents> churn_schedule;  ///< explicit trace

  std::vector<MetricSpec> metrics;  ///< defaulted per kind when empty
  QuickSpec quick;
};

struct Manifest {
  std::string name;
  std::string title;
  std::vector<Experiment> experiments;

  /// Strict construction from parsed JSON; throws CheckError with the
  /// offending key/value and the allowed alternatives.
  static Manifest from_json(const json::Value& v);
  static Manifest parse(const std::string& text);
  static Manifest load(const std::string& path);

  json::Value to_json() const;
  /// Canonical pretty-printed form; parse(serialize(m)) is a fixed point.
  std::string serialize() const;

  /// One line per experiment — "id  [kind]  S series x N x-values  title" —
  /// the `eend_run --list` output that makes --only ids discoverable.
  std::vector<std::string> experiment_summaries() const;
};

/// Metric names valid for `kind`, in canonical order (also the default
/// metric set for sweep-less kinds).
const std::vector<std::string>& metric_names(ExperimentKind kind);

/// Human label used in table banners ("delivery ratio", "energy goodput
/// (bit/J)", ...). Throws on unknown names.
std::string metric_display_name(const std::string& name);

}  // namespace eend::core
