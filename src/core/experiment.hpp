// Experiment orchestration: run a (scenario, stack) combination over
// multiple seeds and aggregate the paper's metrics with 95% confidence
// intervals — the exact methodology of §5.2 ("Each graph depicts an average
// of N runs and 95% confidence intervals").
//
// Replications are dispatched across `jobs` worker threads (each owning a
// private sim::Simulator via its Network) and merged back in seed order, so
// results are bit-identical to the serial path for any jobs value.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "net/network.hpp"
#include "obs/counters.hpp"
#include "util/stats.hpp"

namespace eend::core {

struct ExperimentConfig {
  net::ScenarioConfig scenario;
  net::StackSpec stack;
  std::size_t runs = 5;
  std::uint64_t base_seed = 1;
  /// Worker threads for replications: 1 = serial (default), 0 = one per
  /// hardware thread. Output is identical for every value of `jobs`.
  std::size_t jobs = 1;
};

/// Aggregated results of one experiment cell.
struct ExperimentResult {
  std::string stack_label;
  double rate_pps = 0.0;

  SampleStats delivery_ratio;
  SampleStats goodput_bit_per_j;
  SampleStats transmit_energy_j;
  SampleStats total_energy_j;
  SampleStats control_energy_j;
  SampleStats passive_energy_j;
  SampleStats nodes_carrying_data;

  std::vector<metrics::RunResult> raw;  ///< per-run detail, in seed order

  /// Telemetry: per-replication counter snapshots merged in seed order
  /// (empty with EEND_OBS compiled off). Values derive only from simulated
  /// work, so the merge is byte-identical for any --jobs.
  obs::CounterSnapshot counters;
};

/// Run `cfg.runs` independent replications (seeds base_seed..base_seed+R-1).
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Evaluate an arbitrary list of fully-specified cells — every (scenario,
/// stack) combination with the same `runs` — on one shared pool of `jobs`
/// workers. Results come back in cell order regardless of scheduling;
/// `on_cell_done(index)` fires (serialized) as each cell's last replication
/// completes. The manifest engine's density kind is built on this.
std::vector<ExperimentResult> run_experiment_cells(
    const std::vector<ExperimentConfig>& cells, std::size_t jobs,
    const std::function<void(std::size_t)>& on_cell_done = {});

/// Sweep helper: same scenario/stack across a list of per-flow rates. All
/// (rate × replication) cells share one worker pool.
std::vector<ExperimentResult> sweep_rates(ExperimentConfig cfg,
                                          const std::vector<double>& rates);

/// Invoked (serialized, from the pool) when the last replication of a
/// stack's row completes — progress reporting for long sweeps.
using StackProgressFn = std::function<void(const net::StackSpec&)>;

/// Full (stack × rate) grid, the shape of every figure bench; returns
/// results[stack][rate]. Every replication in the grid is one task in a
/// shared pool of `cfg.jobs` workers, so wide grids keep all cores busy
/// even when individual cells have few runs. `cfg.stack` is ignored.
std::vector<std::vector<ExperimentResult>> sweep_grid(
    const ExperimentConfig& cfg, const std::vector<net::StackSpec>& stacks,
    const std::vector<double>& rates,
    const StackProgressFn& on_stack_done = {});

}  // namespace eend::core
