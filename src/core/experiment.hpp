// Experiment orchestration: run a (scenario, stack) combination over
// multiple seeds and aggregate the paper's metrics with 95% confidence
// intervals — the exact methodology of §5.2 ("Each graph depicts an average
// of N runs and 95% confidence intervals").
#pragma once

#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "net/network.hpp"
#include "util/stats.hpp"

namespace eend::core {

struct ExperimentConfig {
  net::ScenarioConfig scenario;
  net::StackSpec stack;
  std::size_t runs = 5;
  std::uint64_t base_seed = 1;
};

/// Aggregated results of one experiment cell.
struct ExperimentResult {
  std::string stack_label;
  double rate_pps = 0.0;

  SampleStats delivery_ratio;
  SampleStats goodput_bit_per_j;
  SampleStats transmit_energy_j;
  SampleStats total_energy_j;
  SampleStats control_energy_j;
  SampleStats passive_energy_j;
  SampleStats nodes_carrying_data;

  std::vector<metrics::RunResult> raw;  ///< per-run detail
};

/// Run `cfg.runs` independent replications (seeds base_seed..base_seed+R-1).
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Sweep helper: same scenario/stack across a list of per-flow rates.
std::vector<ExperimentResult> sweep_rates(ExperimentConfig cfg,
                                          const std::vector<double>& rates);

}  // namespace eend::core
