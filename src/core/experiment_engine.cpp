#include "core/experiment_engine.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>

#include "analytical/route_energy.hpp"
#include "churn/trace.hpp"
#include "core/experiment.hpp"
#include "core/grid_study.hpp"
#include "core/parallel_runner.hpp"
#include "energy/radio_card.hpp"
#include "obs/trace.hpp"
#include "opt/design_heuristic.hpp"
#include "opt/design_instance.hpp"
#include "opt/portfolio.hpp"
#include "opt/warm_start.hpp"
#include "presolve/presolve.hpp"
#include "replay/realization.hpp"
#include "replay/replay.hpp"
#include "util/table.hpp"

namespace eend::core {

namespace {

/// Short simulations used by --quick when the experiment does not specify
/// its own quick.duration_s — matches the bench binaries' --quick.
constexpr double kQuickDurationS = 120.0;

MetricValue sim_metric(const ExperimentResult& r, const std::string& name) {
  MetricValue out;
  out.name = name;
  const auto from_stats = [&](const SampleStats& s) {
    out.mean = s.mean;
    out.ci95 = s.ci95_half_width;
    out.n = s.n;
  };
  const auto from_raw = [&](auto pick) {
    std::vector<double> xs;
    xs.reserve(r.raw.size());
    for (const auto& run : r.raw) xs.push_back(pick(run));
    from_stats(summarize(xs));
  };
  if (name == "delivery_ratio") from_stats(r.delivery_ratio);
  else if (name == "goodput_bit_per_j") from_stats(r.goodput_bit_per_j);
  else if (name == "transmit_energy_j") from_stats(r.transmit_energy_j);
  else if (name == "total_energy_j") from_stats(r.total_energy_j);
  else if (name == "control_energy_j") from_stats(r.control_energy_j);
  else if (name == "passive_energy_j") from_stats(r.passive_energy_j);
  else if (name == "nodes_carrying_data") from_stats(r.nodes_carrying_data);
  else if (name == "rreq_transmissions")
    from_raw([](const metrics::RunResult& x) {
      return static_cast<double>(x.rreq_transmissions);
    });
  else if (name == "mac_collisions")
    from_raw([](const metrics::RunResult& x) {
      return static_cast<double>(x.mac_collisions);
    });
  else if (name == "mac_cs_drops")
    from_raw([](const metrics::RunResult& x) {
      return static_cast<double>(x.mac_cs_drops);
    });
  else if (name == "mac_defers_exhausted")
    from_raw([](const metrics::RunResult& x) {
      return static_cast<double>(x.mac_defers_exhausted);
    });
  else if (name == "mac_stale_bcast_drops")
    from_raw([](const metrics::RunResult& x) {
      return static_cast<double>(x.mac_stale_bcast_drops);
    });
  else if (name == "mac_unicast_failures")
    from_raw([](const metrics::RunResult& x) {
      return static_cast<double>(x.mac_unicast_failures);
    });
  else if (name == "average_delay_s")
    from_raw([](const metrics::RunResult& x) { return x.average_delay_s; });
  else
    EEND_REQUIRE_MSG(false, "unknown sim metric \"" << name << "\"");
  return out;
}

// ------------------------------------------------- design-search cells ---

/// One design-search cell, shared by the design and replay kinds: solve
/// the Klein-Ravi tree once (it seeds klein_ravi, local_search, annealing
/// and the portfolio's start 0, and is the dominant cost on large
/// instances), evaluate it as the baseline, then run every requested
/// heuristic against it. The baseline anchors the design kind's gap metric
/// and the portfolio ≤ Klein-Ravi invariant, which is enforced here — the
/// single point both kinds' results pass through on their way to sinks.
struct CellSearchResult {
  opt::CandidateDesign baseline;
  double baseline_wall = 0.0;
  std::vector<opt::CandidateDesign> designs;  ///< per heuristic, in order
  std::vector<double> walls;                  ///< per heuristic, seconds
};

CellSearchResult search_design_cell(
    const opt::DesignInstance& inst,
    const std::vector<std::string>& heuristics, opt::HeuristicOptions ho,
    std::uint64_t seed, std::size_t n, std::uint32_t trace_tid = 0) {
  const core::NetworkDesignProblem& problem = inst.problem;
  ho.presolve = inst.presolve.get();
  CellSearchResult out;
  obs::PhaseTimer t_base("search:klein_ravi(baseline)", obs::kPidCell, trace_tid);
  // The shared tree comes from the dead-end-masked twin when presolve ran —
  // bit-identical to the full solve (presolve/presolve.hpp), just cheaper.
  const graph::SteinerTree kr_tree =
      (inst.presolve ? inst.presolve->node_reduced : problem)
          .solve_node_weighted();
  ho.klein_ravi_tree = &kr_tree;
  out.baseline = opt::heuristic_by_name("klein_ravi").run(problem, ho, seed);
  out.baseline_wall = t_base.stop();
  EEND_CHECK_MSG(out.baseline.feasible,
                 "Klein-Ravi baseline infeasible on a connected instance "
                 "(n=" << n << ", seed=" << seed << ")");

  out.designs.resize(heuristics.size());
  out.walls.resize(heuristics.size());
  for (std::size_t hi = 0; hi < heuristics.size(); ++hi) {
    const auto& name = heuristics[hi];
    obs::PhaseTimer t0("search:" + name, obs::kPidCell, trace_tid);
    out.designs[hi] =
        name == "klein_ravi"
            ? out.baseline
            : opt::heuristic_by_name(name).run(problem, ho, seed);
    // The baseline's wall time (tree solve included) is attributed to the
    // klein_ravi series when that series is requested.
    out.walls[hi] = name == "klein_ravi" ? out.baseline_wall : t0.stop();
    EEND_CHECK_MSG(out.designs[hi].feasible,
                   "heuristic \"" << name
                   << "\" infeasible on a connected instance (n=" << n
                   << ", seed=" << seed << ")");
    // Soundness of the certified bound, enforced where results become
    // user-visible: no feasible design may score below it (1e-9 relative
    // slack absorbs float re-association between the two computations).
    if (inst.presolve)
      EEND_CHECK_MSG(
          inst.presolve->lower_bound(ho.eval) <=
              out.designs[hi].score.total() * (1.0 + 1e-9),
          "certified lower bound exceeds heuristic \""
              << name << "\" score (n=" << n << ", seed=" << seed << ")");
    // The portfolio's start 0 is Klein-Ravi + descent under the same
    // objective, so it can never cost more than the baseline; enforce the
    // invariant at the point results become user-visible.
    if (name == "portfolio")
      EEND_CHECK_MSG(out.designs[hi].cost() <= out.baseline.cost(),
                     "portfolio worse than Klein-Ravi baseline (n="
                         << n << ", seed=" << seed << ")");
  }
  return out;
}

MetricValue grid_metric(const GridSeries& s, const GridPoint& p,
                        const std::string& name) {
  MetricValue out;
  out.name = name;
  out.n = 1;
  if (name == "goodput_kbit_per_j") out.mean = p.goodput_bit_per_j / 1e3;
  else if (name == "network_power_w") out.mean = p.network_power_w;
  else if (name == "data_power_w") out.mean = p.data_power_w;
  else if (name == "passive_power_w") out.mean = p.passive_power_w;
  else if (name == "active_nodes")
    out.mean = static_cast<double>(s.active_nodes.size());
  else
    EEND_REQUIRE_MSG(false, "unknown grid metric \"" << name << "\"");
  return out;
}

}  // namespace

void ExperimentEngine::run(const Manifest& m) {
  for (const Experiment& e : m.experiments) run(e);
}

void ExperimentEngine::run(const Experiment& e) {
  obs::PhaseTimer exp_span("experiment:" + e.id, 0, 0);
  exp_counters_.clear();
  for (ResultSink* s : sinks_) s->begin_experiment(e);
  switch (e.kind) {
    case ExperimentKind::Sweep: run_sweep(e); break;
    case ExperimentKind::Density: run_density(e); break;
    case ExperimentKind::Grid: run_grid(e); break;
    case ExperimentKind::Mopt: run_mopt(e); break;
    case ExperimentKind::Design: run_design(e); break;
    case ExperimentKind::Replay: run_replay(e); break;
    case ExperimentKind::Churn: run_churn(e); break;
  }
  {
    obs::PhaseTimer flush_span("sink.flush", 0, 0);
    for (ResultSink* s : sinks_) s->end_experiment(e);
  }
  // Counter lines ride outside the sink stream: sinks stay byte-pinned by
  // the goldens, and the counters file is its own deterministic artifact.
  if (opts_.counters) exp_counters_.write_jsonl(*opts_.counters, e.id);
}

void ExperimentEngine::emit(const ResultRow& r) {
  for (ResultSink* s : sinks_) s->row(r);
}

void ExperimentEngine::note(const std::string& line) {
  if (opts_.progress) *opts_.progress << line << '\n';
}

net::ScenarioConfig ExperimentEngine::resolve_scenario(
    const Experiment& e, std::optional<std::size_t> node_count) const {
  net::ScenarioConfig sc;
  if (e.scenario_config) {
    sc = *e.scenario_config;
    if (node_count) sc.node_count = *node_count;
  } else {
    ScenarioSpec spec = e.scenario;
    if (node_count) spec.node_count = node_count;
    sc = spec.resolve();
  }
  if (opts_.quick)
    sc.duration_s =
        std::min(sc.duration_s, e.quick.duration_s.value_or(kQuickDurationS));
  return sc;
}

std::size_t ExperimentEngine::effective_runs(const Experiment& e) const {
  if (opts_.runs_override) return *opts_.runs_override;
  if (opts_.quick) return e.quick.runs.value_or(1);
  return e.runs;
}

std::uint64_t ExperimentEngine::effective_seed(const Experiment& e) const {
  return opts_.seed_override ? *opts_.seed_override : e.seed;
}

std::vector<net::StackSpec> ExperimentEngine::resolve_stacks(
    const Experiment& e) {
  if (e.stack_specs) return *e.stack_specs;
  std::vector<net::StackSpec> out;
  out.reserve(e.stacks.size());
  for (const auto& name : e.stacks) out.push_back(net::stack_preset(name));
  return out;
}

void ExperimentEngine::run_sweep(const Experiment& e) {
  ExperimentConfig cfg;
  cfg.scenario = resolve_scenario(e);
  cfg.runs = effective_runs(e);
  cfg.base_seed = effective_seed(e);
  cfg.jobs = opts_.jobs;

  const std::vector<net::StackSpec> stacks = resolve_stacks(e);

  const std::vector<double>& rates =
      (opts_.quick && e.quick.rates_pps) ? *e.quick.rates_pps : e.rates_pps;

  StackProgressFn progress;
  if (opts_.progress)
    progress = [this, &e](const net::StackSpec& s) {
      note("  [" + e.title + "] " + s.label + " done");
    };

  // results[stack][rate]
  const auto results = sweep_grid(cfg, stacks, rates, progress);

  // Cells already merged their replication snapshots in seed order; fold
  // them into the experiment total in (stack, rate) cell order.
  for (const auto& per_stack : results)
    for (const auto& r : per_stack) exp_counters_.merge_from(r.counters);

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t si = 0; si < stacks.size(); ++si) {
      ResultRow row;
      row.experiment = e.id;
      row.kind = kind_name(e.kind);
      row.series = stacks[si].label;
      row.x_name = "rate_pps";
      row.x = rates[ri];
      row.runs = cfg.runs;
      row.seed = cfg.base_seed;
      for (const MetricSpec& m : e.metrics)
        row.metrics.push_back(sim_metric(results[si][ri], m.name));
      emit(row);
    }
  }
}

void ExperimentEngine::run_density(const Experiment& e) {
  const std::vector<std::size_t>& nodes =
      (opts_.quick && e.quick.node_counts) ? *e.quick.node_counts
                                           : e.node_counts;
  const std::vector<net::StackSpec> stacks = resolve_stacks(e);

  // All (node count × stack) cells share one pool so wide density tables
  // keep every core busy even at runs=1; emission order (n-major,
  // stack-minor) matches the cell list and never depends on scheduling.
  std::vector<ExperimentConfig> cells;
  for (const std::size_t n : nodes) {
    const net::ScenarioConfig sc = resolve_scenario(e, n);
    for (const auto& stack : stacks) {
      ExperimentConfig cfg;
      cfg.scenario = sc;
      cfg.stack = stack;
      cfg.runs = effective_runs(e);
      cfg.base_seed = effective_seed(e);
      cells.push_back(std::move(cfg));
    }
  }

  std::function<void(std::size_t)> on_cell_done;
  if (opts_.progress)
    on_cell_done = [&](std::size_t i) {
      note("  [" + e.title + "] " + cells[i].stack.label + " n=" +
           std::to_string(cells[i].scenario.node_count) + " done");
    };
  const auto results = run_experiment_cells(cells, opts_.jobs, on_cell_done);

  for (const auto& r : results) exp_counters_.merge_from(r.counters);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    ResultRow row;
    row.experiment = e.id;
    row.kind = kind_name(e.kind);
    row.series = cells[i].stack.label;
    row.x_name = "nodes";
    row.x = static_cast<double>(cells[i].scenario.node_count);
    row.runs = cells[i].runs;
    row.seed = cells[i].base_seed;
    for (const MetricSpec& m : e.metrics)
      row.metrics.push_back(sim_metric(results[i], m.name));
    emit(row);
  }
}

void ExperimentEngine::run_grid(const Experiment& e) {
  net::ScenarioConfig sc = resolve_scenario(e);
  sc.rate_pps = e.base_rate_pps;
  sc.seed = effective_seed(e);

  const std::vector<net::StackSpec> stacks = resolve_stacks(e);

  const std::vector<double>& rates =
      (opts_.quick && e.quick.rates_pps) ? *e.quick.rates_pps : e.rates_pps;

  // One base-rate simulation per stack; fan out, keep stack order.
  std::vector<GridSeries> series(stacks.size());
  std::vector<obs::CounterSnapshot> snaps(stacks.size());
  std::mutex io_m;
  ParallelRunner pool(opts_.jobs);
  pool.set_span_label("grid.series");
  pool.for_each_index(stacks.size(), [&](std::size_t i) {
    obs::CounterRegistry reg;
    const obs::ScopedRegistry scope(&reg);
    series[i] = grid_series(sc, stacks[i], rates);
    snaps[i] = reg.snapshot();
    if (opts_.progress) {
      std::lock_guard<std::mutex> lk(io_m);
      note("  [" + e.title + "] " + stacks[i].label + " done (" +
           std::to_string(series[i].active_nodes.size()) + " active nodes)");
    }
  });
  for (const obs::CounterSnapshot& s : snaps) exp_counters_.merge_from(s);

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t si = 0; si < series.size(); ++si) {
      ResultRow row;
      row.experiment = e.id;
      row.kind = kind_name(e.kind);
      row.series = series[si].label;
      row.x_name = "rate_pps";
      row.x = rates[ri];
      row.runs = 1;
      row.seed = sc.seed;
      for (const MetricSpec& m : e.metrics)
        row.metrics.push_back(
            grid_metric(series[si], series[si].points[ri], m.name));
      emit(row);
    }
  }
}

void ExperimentEngine::run_design(const Experiment& e) {
  const std::vector<std::size_t>& nodes =
      (opts_.quick && e.quick.node_counts) ? *e.quick.node_counts
                                           : e.node_counts;
  const std::size_t runs = effective_runs(e);
  const std::uint64_t base_seed = effective_seed(e);

  opt::HeuristicOptions ho;
  ho.starts = e.starts;
  ho.anneal_iterations = e.anneal_iters;

  // All (node count x instance) cells are independent; fan them across the
  // pool into pre-sized slots so --jobs helps even without a portfolio
  // series. With more than one cell the portfolio runs its starts inline;
  // a single cell hands the whole pool to the portfolio's multi-starts.
  // Either way every heuristic is jobs-invariant, so output bytes never
  // depend on the split.
  struct Cell {
    std::size_t n = 0;
    std::size_t run = 0;
  };
  std::vector<Cell> cells;
  for (const std::size_t n : nodes)
    for (std::size_t run = 0; run < runs; ++run) cells.push_back({n, run});
  ho.jobs = cells.size() > 1 ? 1 : opts_.jobs;

  // Per-cell results: [cell][heuristic] -> this instance's metric values.
  struct Sample {
    double total = 0.0, data = 0.0, idle = 0.0, gap = 0.0, relays = 0.0,
           wall = 0.0;
    // Presolve-only columns (e.presolve gates the metrics that read them).
    double lb = 0.0, cert_gap = 0.0, rnodes = 0.0, redges = 0.0;
  };
  std::vector<std::vector<Sample>> samples(cells.size());
  std::vector<obs::CounterSnapshot> snaps(cells.size());

  std::mutex io_m;
  ParallelRunner pool(opts_.jobs);
  pool.set_span_label("design.cell");
  pool.for_each_index(cells.size(), [&](std::size_t ci) {
    const std::uint32_t tid = static_cast<std::uint32_t>(ci) + 1;
    obs::CounterRegistry reg;
    const obs::ScopedRegistry scope(&reg);
    const Cell& cell = cells[ci];
    opt::DesignInstanceSpec spec;
    spec.node_count = cell.n;
    spec.demand_count = e.demands;
    spec.seed = base_seed + cell.run;
    spec.presolve = e.presolve;
    spec.field_scale = e.field_scale;
    obs::PhaseTimer t_build("instance.build", obs::kPidCell, tid);
    const opt::DesignInstance inst = opt::make_design_instance(spec);
    t_build.stop();

    const CellSearchResult sr =
        search_design_cell(inst, e.heuristics, ho, spec.seed, cell.n, tid);
    samples[ci].resize(e.heuristics.size());
    for (std::size_t hi = 0; hi < e.heuristics.size(); ++hi) {
      const opt::CandidateDesign& cand = sr.designs[hi];
      Sample& s = samples[ci][hi];
      s.total = cand.cost();
      s.data = cand.score.data;
      s.idle = cand.score.idle;
      s.gap = 100.0 * (cand.cost() - sr.baseline.cost()) /
              sr.baseline.cost();
      s.relays = static_cast<double>(cand.score.relay_nodes);
      s.wall = sr.walls[hi];
      if (inst.presolve) {
        s.lb = inst.presolve->lower_bound(ho.eval);
        s.cert_gap = 100.0 * (cand.score.total() - s.lb) / s.lb;
        s.rnodes = static_cast<double>(inst.presolve->reduced_nodes);
        s.redges = static_cast<double>(inst.presolve->reduced_edges);
      }
    }
    snaps[ci] = reg.snapshot();
    if (opts_.progress) {
      std::lock_guard<std::mutex> lk(io_m);
      note("  [" + e.title + "] n=" + std::to_string(cell.n) +
           " instance " + std::to_string(cell.run + 1) + "/" +
           std::to_string(runs) + " done");
    }
  });
  for (const obs::CounterSnapshot& s : snaps) exp_counters_.merge_from(s);

  // Aggregate per (n, heuristic) across instances; emission is n-major,
  // heuristic-minor in manifest order, independent of scheduling.
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (std::size_t hi = 0; hi < e.heuristics.size(); ++hi) {
      ResultRow row;
      row.experiment = e.id;
      row.kind = kind_name(e.kind);
      row.series = e.heuristics[hi];
      row.x_name = "nodes";
      row.x = static_cast<double>(nodes[ni]);
      row.runs = runs;
      row.seed = base_seed;
      const auto metric_of = [&](const std::string& name) {
        std::vector<double> xs;
        xs.reserve(runs);
        for (std::size_t run = 0; run < runs; ++run) {
          const Sample& s = samples[ni * runs + run][hi];
          if (name == "eq5_total") xs.push_back(s.total);
          else if (name == "eq5_data") xs.push_back(s.data);
          else if (name == "eq5_idle") xs.push_back(s.idle);
          else if (name == "gap_vs_klein_ravi") xs.push_back(s.gap);
          else if (name == "relay_nodes") xs.push_back(s.relays);
          else if (name == "wall_time_s") xs.push_back(s.wall);
          else if (name == "lb" || name == "certified_gap_pct" ||
                   name == "reduced_nodes" || name == "reduced_edges") {
            // parse_metrics already rejects these without presolve; guard
            // against programmatic Experiment structs skipping validation.
            EEND_REQUIRE_MSG(e.presolve, "design metric \""
                                             << name
                                             << "\" requires presolve=true");
            if (name == "lb") xs.push_back(s.lb);
            else if (name == "certified_gap_pct") xs.push_back(s.cert_gap);
            else if (name == "reduced_nodes") xs.push_back(s.rnodes);
            else xs.push_back(s.redges);
          } else
            EEND_REQUIRE_MSG(false,
                             "unknown design metric \"" << name << "\"");
        }
        const SampleStats st = summarize(xs);
        MetricValue mv;
        mv.name = name;
        mv.mean = st.mean;
        mv.ci95 = st.ci95_half_width;
        mv.n = st.n;
        return mv;
      };
      for (const MetricSpec& m : e.metrics)
        row.metrics.push_back(metric_of(m.name));
      emit(row);
    }
  }
}

void ExperimentEngine::run_replay(const Experiment& e) {
  const std::vector<std::size_t>& nodes =
      (opts_.quick && e.quick.node_counts) ? *e.quick.node_counts
                                           : e.node_counts;
  const std::size_t runs = effective_runs(e);
  const std::uint64_t base_seed = effective_seed(e);

  replay::ReplaySettings settings;
  settings.stack = net::stack_preset(e.replay_stack);
  settings.duration_s = e.replay_duration_s;
  if (opts_.quick)
    settings.duration_s = std::min(
        settings.duration_s, e.quick.duration_s.value_or(kQuickDurationS));
  settings.rate_pps = e.replay_rate_pps;
  settings.battery_capacity_j = e.battery_j;

  struct Cell {
    std::size_t n = 0;
    std::size_t run = 0;
  };
  std::vector<Cell> cells;
  for (const std::size_t n : nodes)
    for (std::size_t run = 0; run < runs; ++run) cells.push_back({n, run});

  // Phase 1 — search: one instance per cell (shared Klein-Ravi tree), every
  // requested heuristic run under the joule-scaled replay objective, so the
  // analytic cost, the lifetime budget and the simulated battery all speak
  // the same unit. Phase 2 — simulate: every (cell, heuristic) design is
  // realized and replayed through net::Network, fanned flat across the pool
  // (simulations dominate the wall clock and are independent). Both phases
  // land results in pre-sized slots, so output bytes never depend on --jobs.
  struct CellState {
    opt::DesignInstanceSpec spec;
    opt::DesignInstance instance;
    std::vector<opt::CandidateDesign> designs;  // per heuristic
  };
  std::vector<CellState> state(cells.size());
  std::vector<obs::CounterSnapshot> search_snaps(cells.size());

  std::mutex io_m;
  ParallelRunner pool(opts_.jobs);
  pool.set_span_label("replay.search");
  pool.for_each_index(cells.size(), [&](std::size_t ci) {
    const std::uint32_t tid = static_cast<std::uint32_t>(ci) + 1;
    obs::CounterRegistry reg;
    const obs::ScopedRegistry scope(&reg);
    const Cell& cell = cells[ci];
    CellState& st = state[ci];
    st.spec.node_count = cell.n;
    st.spec.demand_count = e.demands;
    st.spec.seed = base_seed + cell.run;
    st.spec.demand_weights = e.demand_weights;
    st.spec.presolve = e.presolve;
    st.spec.field_scale = e.field_scale;
    obs::PhaseTimer t_build("instance.build", obs::kPidCell, tid);
    st.instance = opt::make_design_instance(st.spec);
    t_build.stop();

    opt::HeuristicOptions ho;
    ho.eval = replay::replay_eq5_params(settings, st.spec.card);
    ho.starts = e.starts;
    ho.anneal_iterations = e.anneal_iters;
    ho.jobs = cells.size() > 1 ? 1 : opts_.jobs;
    ho.battery_budget_j = e.battery_j;
    st.designs = search_design_cell(st.instance, e.heuristics, ho,
                                    st.spec.seed, cell.n, tid)
                     .designs;
    search_snaps[ci] = reg.snapshot();
    if (opts_.progress) {
      std::lock_guard<std::mutex> lk(io_m);
      note("  [" + e.title + "] n=" + std::to_string(cell.n) + " instance " +
           std::to_string(cell.run + 1) + "/" + std::to_string(runs) +
           " searched");
    }
  });

  // reports[cell * heuristics + heuristic]
  std::vector<replay::ReplayReport> reports(cells.size() *
                                            e.heuristics.size());
  std::vector<obs::CounterSnapshot> replay_snaps(reports.size());
  pool.set_span_label("replay.sim");
  pool.for_each_index(reports.size(), [&](std::size_t i) {
    const std::size_t ci = i / e.heuristics.size();
    const std::size_t hi = i % e.heuristics.size();
    obs::CounterRegistry reg;
    const obs::ScopedRegistry scope(&reg);
    const CellState& st = state[ci];
    reports[i] = replay::replay_design(st.spec, st.instance, st.designs[hi],
                                       settings);
    replay_snaps[i] = reg.snapshot();
    if (opts_.progress) {
      std::lock_guard<std::mutex> lk(io_m);
      note("  [" + e.title + "] n=" + std::to_string(cells[ci].n) + " " +
           e.heuristics[hi] + " instance " +
           std::to_string(cells[ci].run + 1) + "/" + std::to_string(runs) +
           " replayed");
    }
  });
  for (const obs::CounterSnapshot& s : search_snaps)
    exp_counters_.merge_from(s);
  for (const obs::CounterSnapshot& s : replay_snaps)
    exp_counters_.merge_from(s);

  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (std::size_t hi = 0; hi < e.heuristics.size(); ++hi) {
      ResultRow row;
      row.experiment = e.id;
      row.kind = kind_name(e.kind);
      row.series = e.heuristics[hi];
      row.x_name = "nodes";
      row.x = static_cast<double>(nodes[ni]);
      row.runs = runs;
      row.seed = base_seed;
      const auto metric_of = [&](const std::string& name) {
        std::vector<double> xs;
        xs.reserve(runs);
        for (std::size_t run = 0; run < runs; ++run) {
          const replay::ReplayReport& rep =
              reports[(ni * runs + run) * e.heuristics.size() + hi];
          if (name == "analytic_eq5_j") xs.push_back(rep.analytic_energy_j);
          else if (name == "sim_energy_j") xs.push_back(rep.sim_energy_j);
          else if (name == "analytic_gap_pct") xs.push_back(rep.gap_pct);
          else if (name == "sim_j_per_kbit") xs.push_back(rep.sim_j_per_kbit);
          else if (name == "delivery_ratio") xs.push_back(rep.delivery_ratio);
          else if (name == "first_death_s") xs.push_back(rep.first_death_s);
          else if (name == "depleted_nodes")
            xs.push_back(static_cast<double>(rep.depleted_nodes));
          else if (name == "active_nodes")
            xs.push_back(static_cast<double>(rep.active_nodes));
          else if (name == "max_node_load_j")
            xs.push_back(rep.max_node_load_j);
          else
            EEND_REQUIRE_MSG(false,
                             "unknown replay metric \"" << name << "\"");
        }
        const SampleStats st2 = summarize(xs);
        MetricValue mv;
        mv.name = name;
        mv.mean = st2.mean;
        mv.ci95 = st2.ci95_half_width;
        mv.n = st2.n;
        return mv;
      };
      for (const MetricSpec& m : e.metrics)
        row.metrics.push_back(metric_of(m.name));
      emit(row);
    }
  }
}

void ExperimentEngine::run_churn(const Experiment& e) {
  const std::vector<std::size_t>& nodes =
      (opts_.quick && e.quick.node_counts) ? *e.quick.node_counts
                                           : e.node_counts;
  const std::size_t epochs =
      (opts_.quick && e.quick.epochs) ? *e.quick.epochs : e.epochs;
  const std::size_t runs = effective_runs(e);
  const std::uint64_t base_seed = effective_seed(e);

  replay::ReplaySettings settings;
  if (e.replay_every > 0) {
    settings.stack = net::stack_preset(e.replay_stack);
    settings.duration_s = e.replay_duration_s;
    if (opts_.quick)
      settings.duration_s = std::min(settings.duration_s, kQuickDurationS);
    settings.rate_pps = e.replay_rate_pps;
  }

  // (node count x trace) cells are independent; each cell plays its whole
  // serving loop serially (epoch k+1 needs epoch k's design), so the fan
  // is across cells. Pre-sized per-epoch slots + a single emission pass
  // after the pool keep output bytes independent of --jobs.
  struct Cell {
    std::size_t n = 0;
    std::size_t run = 0;
  };
  std::vector<Cell> cells;
  for (const std::size_t n : nodes)
    for (std::size_t run = 0; run < runs; ++run) cells.push_back({n, run});
  const std::size_t inner_jobs = cells.size() > 1 ? 1 : opts_.jobs;

  struct Sample {
    double warm = 0.0, cold = 0.0, gap = 0.0, events = 0.0,
           rerouted = 0.0, fellback = 0.0, active = 0.0, live = 0.0,
           warm_wall = 0.0, cold_wall = 0.0, replay_gap = 0.0;
  };
  // samples[cell][epoch]
  std::vector<std::vector<Sample>> samples(cells.size());
  std::vector<obs::CounterSnapshot> snaps(cells.size());

  std::mutex io_m;
  ParallelRunner pool(opts_.jobs);
  pool.set_span_label("churn.cell");
  pool.for_each_index(cells.size(), [&](std::size_t ci) {
    const std::uint32_t tid = static_cast<std::uint32_t>(ci) + 1;
    obs::CounterRegistry reg;
    const obs::ScopedRegistry scope(&reg);
    const Cell& cell = cells[ci];
    opt::DesignInstanceSpec spec;
    spec.node_count = cell.n;
    spec.demand_count = e.demands;
    spec.seed = base_seed + cell.run;
    spec.demand_weights = e.demand_weights;
    spec.presolve = e.presolve;
    spec.field_scale = e.field_scale;
    obs::PhaseTimer t_build("instance.build", obs::kPidCell, tid);
    const opt::DesignInstance inst = opt::make_design_instance(spec);
    t_build.stop();

    churn::TraceSpec trace;
    trace.epochs = epochs;
    trace.arrivals_per_epoch = e.arrivals_per_epoch;
    trace.departures_per_epoch = e.departures_per_epoch;
    trace.swings_per_epoch = e.swings_per_epoch;
    trace.failures_per_epoch = e.failures_per_epoch;
    trace.rate_swing = e.rate_swing;
    trace.move_fraction = e.move_fraction;
    trace.move_sigma_m = e.move_sigma_m;
    trace.seed = spec.seed;
    trace.schedule = e.churn_schedule;

    churn::ChurnState state(inst, spec);
    const opt::DesignObjective objective;  // plain Eq. 5, like run_design

    // From-scratch portfolio on an arbitrary (possibly perturbed) problem:
    // the per-epoch baseline the warm repair is scored and raced against.
    const auto cold_solve = [&](const core::NetworkDesignProblem& problem,
                                const presolve::PresolveResult* pre)
        -> std::pair<opt::CandidateDesign, double> {
      obs::PhaseTimer t0("churn.cold_solve", obs::kPidCell, tid);
      const graph::SteinerTree kr =
          (pre ? pre->node_reduced : problem).solve_node_weighted();
      opt::PortfolioOptions po;
      po.objective = objective;
      po.starts = e.starts;
      po.jobs = inner_jobs;
      po.anneal.iterations = e.anneal_iters;
      po.seed = spec.seed;
      po.klein_ravi_tree = &kr;
      po.presolve = pre;
      opt::PortfolioResult pr = opt::design_portfolio(problem, po);
      return {std::move(pr.best), t0.stop()};
    };

    samples[ci].resize(epochs);

    // ---- epoch 0: the cold design IS the serving design.
    auto [serving, wall0] = cold_solve(inst.problem, inst.presolve.get());
    EEND_CHECK_MSG(serving.feasible,
                   "cold portfolio infeasible on a connected instance (n="
                       << cell.n << ", seed=" << spec.seed << ")");
    opt::RouteCache serving_routes;
    serving = opt::evaluate_design(inst.problem, serving.nodes, objective,
                                   nullptr, &serving_routes);
    {
      Sample& s = samples[ci][0];
      s.warm = s.cold = serving.cost();
      s.rerouted = static_cast<double>(serving_routes.routes.size());
      s.active = static_cast<double>(serving.nodes.size());
      s.live = static_cast<double>(inst.problem.demands().size());
      s.warm_wall = s.cold_wall = wall0;
    }

    // ---- epochs 1..: perturb, repair, race against from-scratch.
    for (std::size_t epoch = 1; epoch < epochs; ++epoch) {
      const churn::EpochDelta delta = state.advance(trace, epoch);
      const core::NetworkDesignProblem& problem = state.problem();

      // Failed nodes can no longer serve; drop them from the previous
      // design before the repair (the warm-start contract).
      const std::vector<graph::NodeId> failed = state.failed_nodes();
      if (!failed.empty()) {
        std::vector<graph::NodeId> alive;
        alive.reserve(serving.nodes.size());
        for (const graph::NodeId v : serving.nodes)
          if (!std::binary_search(failed.begin(), failed.end(), v))
            alive.push_back(v);
        serving.nodes = std::move(alive);
      }
      // Route caches are only valid over an unchanged graph.
      if (delta.topology_changed) serving_routes.clear();

      std::optional<presolve::PresolveResult> pre;
      if (e.presolve) {
        obs::PhaseTimer t_pre("presolve", obs::kPidCell, tid);
        pre = presolve::presolve_design(problem);
      }
      const presolve::PresolveResult* pre_ptr = pre ? &*pre : nullptr;

      obs::PhaseTimer t_warm("churn.warm_repair", obs::kPidCell, tid);
      opt::WarmStartOptions wo;
      wo.objective = objective;
      wo.starts = e.starts;
      wo.anneal_iterations = e.anneal_iters;
      wo.jobs = inner_jobs;
      wo.fallback_pct = e.fallback_pct;
      wo.presolve = pre_ptr;
      opt::RouteCache next_routes;
      const opt::WarmStartResult wr = opt::warm_start_search(
          problem, serving, delta.touched_nodes, wo, spec.seed,
          serving_routes.empty() ? nullptr : &serving_routes, &next_routes);
      const double warm_wall = t_warm.stop();

      const auto [cold, cold_wall] = cold_solve(problem, pre_ptr);

      Sample& s = samples[ci][epoch];
      s.warm = wr.design.cost();
      s.cold = cold.cost();
      s.gap = 100.0 * (s.warm - s.cold) / s.cold;
      s.events = static_cast<double>(delta.applied.size());
      s.rerouted = static_cast<double>(wr.rerouted_demands);
      s.fellback = wr.fell_back ? 1.0 : 0.0;
      s.active = static_cast<double>(wr.design.nodes.size());
      s.live = static_cast<double>(problem.demands().size());
      s.warm_wall = warm_wall;
      s.cold_wall = cold_wall;

      // Periodic replay validation: the warm design realized over the
      // *current* (moved/failed) topology and re-run through the packet
      // simulator — the serving loop's end-to-end ground truth.
      if (e.replay_every > 0 && epoch % e.replay_every == 0) {
        obs::PhaseTimer t_real("churn.realize", obs::kPidCell, tid);
        const replay::DesignRealization real = replay::realize_design_at(
            state.positions(), state.field_side(), spec.card, spec.seed,
            problem, wr.design, settings);
        t_real.stop();
        obs::PhaseTimer t_replay("churn.replay_sim", obs::kPidCell, tid);
        const replay::ReplayReport rep =
            replay::run_realization(real, settings);
        t_replay.stop();
        s.replay_gap = rep.gap_pct;
      }

      serving = wr.design;
      serving_routes = std::move(next_routes);
    }

    snaps[ci] = reg.snapshot();
    if (opts_.progress) {
      std::lock_guard<std::mutex> lk(io_m);
      note("  [" + e.title + "] n=" + std::to_string(cell.n) + " trace " +
           std::to_string(cell.run + 1) + "/" + std::to_string(runs) +
           " served (" + std::to_string(epochs) + " epochs)");
    }
  });
  for (const obs::CounterSnapshot& s : snaps) exp_counters_.merge_from(s);

  // Aggregate per (n, epoch) across traces; emission is n-major,
  // epoch-minor, independent of scheduling.
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      ResultRow row;
      row.experiment = e.id;
      row.kind = kind_name(e.kind);
      row.series = "n=" + std::to_string(nodes[ni]);
      row.x_name = "epoch";
      row.x = static_cast<double>(epoch);
      row.runs = runs;
      row.seed = base_seed;
      const auto metric_of = [&](const std::string& name) {
        std::vector<double> xs;
        xs.reserve(runs);
        for (std::size_t run = 0; run < runs; ++run) {
          const Sample& s = samples[ni * runs + run][epoch];
          if (name == "warm_score") xs.push_back(s.warm);
          else if (name == "cold_score") xs.push_back(s.cold);
          else if (name == "gap_vs_cold_pct") xs.push_back(s.gap);
          else if (name == "events_applied") xs.push_back(s.events);
          else if (name == "rerouted_demands") xs.push_back(s.rerouted);
          else if (name == "fallbacks") xs.push_back(s.fellback);
          else if (name == "active_nodes") xs.push_back(s.active);
          else if (name == "live_demands") xs.push_back(s.live);
          else if (name == "warm_wall_s") xs.push_back(s.warm_wall);
          else if (name == "cold_wall_s") xs.push_back(s.cold_wall);
          else if (name == "replay_gap_pct") {
            // parse_metrics already rejects this without replay epochs;
            // guard programmatic Experiment structs skipping validation.
            EEND_REQUIRE_MSG(e.replay_every > 0,
                             "churn metric \"replay_gap_pct\" requires "
                             "replay_every > 0");
            xs.push_back(s.replay_gap);
          } else
            EEND_REQUIRE_MSG(false,
                             "unknown churn metric \"" << name << "\"");
        }
        const SampleStats st = summarize(xs);
        MetricValue mv;
        mv.name = name;
        mv.mean = st.mean;
        mv.ci95 = st.ci95_half_width;
        mv.n = st.n;
        return mv;
      };
      for (const MetricSpec& m : e.metrics)
        row.metrics.push_back(metric_of(m.name));
      emit(row);
    }
  }
}

void ExperimentEngine::run_mopt(const Experiment& e) {
  struct Curve {
    energy::RadioCard card;
    double distance;
    std::string legend;
  };
  std::vector<Curve> curves;
  for (const CardSpec& c : e.cards) {
    Curve cv;
    cv.card = energy::card_by_name(c.card);
    cv.distance = c.distance_m;
    cv.legend = cv.card.name + " (D=" + Table::num(c.distance_m, 0) + "m)";
    curves.push_back(std::move(cv));
  }

  for (const double rb : e.rb) {
    for (const Curve& cv : curves) {
      ResultRow row;
      row.experiment = e.id;
      row.kind = kind_name(e.kind);
      row.series = cv.legend;
      row.x_name = "rb";
      row.x = rb;
      row.runs = 1;
      row.seed = 0;
      for (const MetricSpec& m : e.metrics) {
        MetricValue mv;
        mv.name = m.name;
        mv.n = 1;
        EEND_REQUIRE_MSG(m.name == "mopt",
                         "unknown mopt metric \"" << m.name << "\"");
        mv.mean = analytical::mopt_continuous(cv.card, cv.distance, rb);
        row.metrics.push_back(std::move(mv));
      }
      emit(row);
    }
  }
}

}  // namespace eend::core
