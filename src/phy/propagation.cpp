#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace eend::phy {

double Propagation::range_of_level(double pt) const {
  if (pt <= 0.0) return 0.0;
  if (card_.alpha2 <= 0.0) return max_range();
  const double r = std::pow(pt / card_.alpha2, 1.0 / card_.path_loss_n);
  return std::min(r, max_range());
}

}  // namespace eend::phy
