// 2-D geometry for node placement.
#pragma once

#include <cmath>

namespace eend::phy {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline double distance_sq(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace eend::phy
