// Radio propagation model: 1/d^n path loss with a hard reception range, the
// standard abstraction for protocol-level studies (and what the paper's ns-2
// setup uses via the two-ray ground model thresholds).
//
// Transmit power control (TPC) is "infinitely adjustable" (paper §5.2): the
// minimum power to reach distance d is the card's Ptx(d). The reception /
// carrier-sense / interference footprint of a transmission scales with its
// power level: range(P) = (Pt / alpha2)^(1/n).
#pragma once

#include "energy/radio_card.hpp"
#include "phy/position.hpp"

namespace eend::phy {

struct PropagationConfig {
  /// Carrier-sense range as a multiple of the decodable range (ns-2's
  /// 550 m CS vs 250 m RX ratio is 2.2).
  double cs_range_factor = 2.2;
  /// Interference range factor: transmissions within this multiple of the
  /// decodable range corrupt concurrent receptions.
  double interference_range_factor = 1.8;
  /// If false, every transmission occupies the card's maximum footprint
  /// regardless of TPC level (ablation knob; the paper defers spatial-reuse
  /// effects of TPC to future work).
  bool scale_footprint_with_power = true;
};

/// Stateless propagation calculator for one card model.
class Propagation {
 public:
  Propagation(const energy::RadioCard& card, const PropagationConfig& cfg)
      : card_(card), cfg_(cfg) {}

  const energy::RadioCard& card() const { return card_; }
  const PropagationConfig& config() const { return cfg_; }

  /// Nominal maximum decodable range (at full power).
  double max_range() const { return card_.max_range_m; }

  /// Can a receiver at distance d decode a max-power transmission?
  bool in_max_range(double d) const { return d <= card_.max_range_m + 1e-9; }

  /// Minimum full transmit power (Pbase + Pt) required to reach distance d.
  /// d beyond max range is a caller bug. A relative margin guarantees the
  /// round trip rx_range(required_power(d)) >= d despite pow() rounding.
  double required_power(double d) const {
    EEND_REQUIRE_MSG(in_max_range(d), "distance " << d << " beyond range "
                                                  << card_.max_range_m);
    return card_.transmit_power(d) * (1.0 + 1e-9) + 1e-12;
  }

  /// Decodable range of a transmission sent at amplifier level pt
  /// (pt = Ptx - Pbase). Clamped to the nominal maximum.
  double range_of_level(double pt) const;

  /// Reception range of a transmission with full power ptx.
  double rx_range(double ptx) const {
    return cfg_.scale_footprint_with_power
               ? range_of_level(ptx - card_.p_base)
               : max_range();
  }

  double cs_range(double ptx) const {
    return rx_range(ptx) * cfg_.cs_range_factor;
  }

  double interference_range(double ptx) const {
    return rx_range(ptx) * cfg_.interference_range_factor;
  }

 private:
  energy::RadioCard card_;
  PropagationConfig cfg_;
};

}  // namespace eend::phy
