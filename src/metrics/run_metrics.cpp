#include "metrics/run_metrics.hpp"

namespace eend::metrics {

void FlowTracker::register_flow(const traffic::FlowSpec& spec) { (void)spec; }

void FlowTracker::on_sent(const traffic::FlowSpec& spec) {
  (void)spec;
  ++sent_;
}

void FlowTracker::on_delivered(const mac::Packet& p, double now) {
  ++delivered_;
  delivered_bits_ += p.size_bits;
  delay_sum_ += now - p.created_at;
}

}  // namespace eend::metrics
