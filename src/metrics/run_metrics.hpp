// Evaluation metrics (paper §5.2):
//   * delivery ratio — received data packets / sent data packets;
//   * energy goodput — total application bits delivered / E_network (bit/J);
//   * transmit energy — Fig. 10's Σ tx-mode energy;
// plus the per-category energy breakdown and protocol counters used by the
// analysis sections.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mac/packet.hpp"
#include "traffic/cbr.hpp"

namespace eend::metrics {

/// Per-flow send/receive tracking.
class FlowTracker {
 public:
  void register_flow(const traffic::FlowSpec& spec);
  void on_sent(const traffic::FlowSpec& spec);
  void on_delivered(const mac::Packet& p, double now);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t delivered_bits() const { return delivered_bits_; }
  double delivery_ratio() const {
    return sent_ == 0 ? 1.0 : static_cast<double>(delivered_) /
                                  static_cast<double>(sent_);
  }
  double average_delay_s() const {
    return delivered_ == 0 ? 0.0 : delay_sum_ / static_cast<double>(delivered_);
  }

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bits_ = 0;
  double delay_sum_ = 0.0;
};

/// One simulation run's results.
struct RunResult {
  // communication performance
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double delivery_ratio = 0.0;
  double average_delay_s = 0.0;

  // energy (joules, whole network, whole run)
  double total_energy_j = 0.0;     ///< E_network
  double data_energy_j = 0.0;      ///< Σ Edata
  double control_energy_j = 0.0;   ///< Σ Econtrol
  double passive_energy_j = 0.0;   ///< Σ Epassive
  double transmit_energy_j = 0.0;  ///< Σ tx-mode energy (Fig. 10)
  double receive_energy_j = 0.0;
  double idle_energy_j = 0.0;
  double sleep_energy_j = 0.0;
  double switch_energy_j = 0.0;

  double goodput_bit_per_j = 0.0;  ///< delivered app bits / E_network

  // network behavior
  std::size_t nodes_carrying_data = 0;  ///< "relays" incl. endpoints
  std::uint64_t rreq_transmissions = 0;
  std::uint64_t update_transmissions = 0;
  std::uint64_t mac_collisions = 0;
  std::uint64_t mac_queue_drops = 0;
  // The remaining MacStats loss counters, summed over all nodes like
  // queue_drops (previously dropped on the floor by Network::run).
  std::uint64_t mac_cs_drops = 0;
  std::uint64_t mac_defers_exhausted = 0;
  std::uint64_t mac_stale_bcast_drops = 0;
  std::uint64_t mac_unicast_failures = 0;
  std::uint64_t channel_transmissions = 0;

  /// Final source route per flow (reactive stacks only; grid study).
  std::map<int, std::vector<mac::NodeId>> flow_routes;

  // lifetime extension (finite batteries)
  double first_death_s = -1.0;       ///< time of first depletion (-1: none)
  std::size_t depleted_nodes = 0;    ///< nodes that died of battery
};

}  // namespace eend::metrics
