// Routing-protocol framework: the per-node environment handed to every
// protocol instance and the abstract interface the traffic layer talks to.
#pragma once

#include <cstdint>
#include <functional>

#include "mac/channel.hpp"
#include "mac/mac.hpp"
#include "power/power_manager.hpp"
#include "util/rng.hpp"

namespace eend::routing {

/// Everything one node's routing instance may touch. Raw pointers are
/// non-owning wiring set up by net::Network, which outlives the protocols.
struct NodeEnv {
  mac::NodeId id = 0;
  sim::Simulator* sim = nullptr;
  mac::Channel* channel = nullptr;
  mac::Mac* mac = nullptr;
  mac::NodeRadio* radio = nullptr;
  power::PowerManager* power = nullptr;
  Rng rng{0};

  /// Transmit-power control for data frames (the "-PC" stacks). Control
  /// frames always go at maximum power (paper Eq. 2).
  bool tpc_data = false;

  /// ri/B hint for JointH's rate variant; <= 0 means unavailable (norate).
  double rate_over_b = 0.0;

  /// Oracle for a neighbor's power-management state — the information the
  /// paper's protocols obtain from beacons/ATIM traffic (TITAN, DSDVH, h).
  std::function<bool(mac::NodeId)> neighbor_is_am;

  /// Upcall when a data packet reaches its final destination.
  std::function<void(const mac::Packet&)> deliver_app;

  /// Optional: invoked at the origin whenever a data packet leaves with a
  /// full source route (used by the grid study to freeze routes).
  std::function<void(int flow_id, const std::vector<mac::NodeId>&)>
      record_route;

  double distance_to(mac::NodeId other) const {
    return phy::distance(radio->position(),
                         channel->radio(other).position());
  }

  /// Power for a data frame to `next_hop` under the node's TPC setting.
  double data_tx_power(mac::NodeId next_hop) const {
    const auto& card = radio->card();
    if (!tpc_data) return card.max_transmit_power();
    return channel->propagation().required_power(distance_to(next_hop));
  }

  double max_tx_power() const { return radio->card().max_transmit_power(); }
};

/// Counters every protocol maintains; the metrics layer aggregates them.
struct RoutingStats {
  std::uint64_t rreq_sent = 0;
  std::uint64_t rreq_forwarded = 0;
  std::uint64_t rrep_sent = 0;
  std::uint64_t rerr_sent = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t discoveries = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_buffer = 0;
  std::uint64_t drops_mac = 0;
  std::uint64_t drops_ttl = 0;
};

class RoutingProtocol {
 public:
  explicit RoutingProtocol(NodeEnv env) : env_(std::move(env)) {}
  virtual ~RoutingProtocol() = default;
  RoutingProtocol(const RoutingProtocol&) = delete;
  RoutingProtocol& operator=(const RoutingProtocol&) = delete;

  /// Called once when the simulation starts.
  virtual void start() = 0;

  /// Origin-side entry point: packet.origin == this node.
  virtual void send_data(mac::Packet packet) = 0;

  const RoutingStats& stats() const { return stats_; }
  mac::NodeId id() const { return env_.id; }

  /// True if this node forwarded or originated at least one data packet
  /// (used to count "relays"/active nodes in the evaluation).
  bool carried_data() const {
    return stats_.data_forwarded > 0 || stats_.data_delivered > 0;
  }

 protected:
  NodeEnv env_;
  RoutingStats stats_;
};

}  // namespace eend::routing
