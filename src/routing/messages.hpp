// Routing-message payload structures and on-air size accounting.
//
// Nothing is serialized — payloads travel as immutable shared structs — but
// every message carries a realistic on-air size so control overhead costs
// airtime and energy exactly like data does.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/packet.hpp"

namespace eend::routing {

/// Packet::type discriminators.
enum PacketType : int {
  kData = 0,
  kRreq = 1,
  kRrep = 2,
  kRerr = 3,
  kDsdvUpdate = 4,
};

/// Source-routed data: `route` is the full origin..destination node list;
/// `index` is the position of the node the frame is addressed to.
struct DataBody {
  std::vector<mac::NodeId> route;
  std::uint32_t index = 0;
};

/// Route request (flooded). origin/target live in the Packet header.
struct RreqBody {
  std::uint32_t seq = 0;
  std::vector<mac::NodeId> route;  ///< accumulated path, starts [origin]
  double cost = 0.0;               ///< accumulated metric
};

/// Route reply, unicast back along `route` (origin..target).
/// `index` = position of the node currently holding the reply.
struct RrepBody {
  std::vector<mac::NodeId> route;
  double cost = 0.0;
  std::uint32_t index = 0;
};

/// Route error: link broken_from->broken_to failed; travels back along the
/// original data route toward the origin.
struct RerrBody {
  mac::NodeId broken_from = mac::kBroadcast;
  mac::NodeId broken_to = mac::kBroadcast;
  std::vector<mac::NodeId> route;
  std::uint32_t index = 0;
};

/// One DSDV table entry advertisement.
struct DsdvEntry {
  mac::NodeId dest;
  std::uint32_t seq;
  double metric;
};

/// DSDV update broadcast. `sender_is_am` lets receivers evaluate the
/// JointH metric against the advertiser's power-management state (DSDVH).
struct DsdvBody {
  bool sender_is_am = true;
  std::vector<DsdvEntry> entries;
};

// --------------------------------------------------------------- sizes ---
inline constexpr std::uint32_t kCtrlHeaderBits = 160;      // 20 B
inline constexpr std::uint32_t kRouteEntryBits = 32;       // 4 B per hop
inline constexpr std::uint32_t kDsdvEntryBits = 48;        // 6 B per entry

inline std::uint32_t rreq_bits(std::size_t route_len) {
  return kCtrlHeaderBits +
         kRouteEntryBits * static_cast<std::uint32_t>(route_len);
}
inline std::uint32_t rrep_bits(std::size_t route_len) {
  return kCtrlHeaderBits +
         kRouteEntryBits * static_cast<std::uint32_t>(route_len);
}
inline std::uint32_t rerr_bits() { return kCtrlHeaderBits; }
inline std::uint32_t dsdv_bits(std::size_t entries) {
  return kCtrlHeaderBits +
         kDsdvEntryBits * static_cast<std::uint32_t>(entries);
}
/// Source-routed data carries its route in the header.
inline std::uint32_t data_bits(std::uint32_t payload_bits,
                               std::size_t route_len) {
  return payload_bits +
         kRouteEntryBits * static_cast<std::uint32_t>(route_len);
}

}  // namespace eend::routing
