// DSDV (Destination-Sequenced Distance Vector) and its joint-optimization
// variant DSDVH.
//
// DSDVH follows the paper's §4.2 proactive design: routing tables keep the
// h(u,v,ri) cost of reaching each destination, updates advertise the
// sender's power-management state so receivers can evaluate h, and "a route
// update is only needed when the quality of a link or the power management
// state of a node changes" — we re-advertise on ODPM AM<->PSM transitions
// (plus classic DSDV periodic dumps and triggered incremental updates).
//
// This control chatter is the point: in PSM networks every table broadcast
// keeps neighborhoods awake, which is why the paper finds DSDVH-ODPM's
// energy goodput collapsing to DSR-Active levels.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "routing/messages.hpp"
#include "routing/metric.hpp"
#include "routing/protocol.hpp"

namespace eend::routing {

struct DsdvConfig {
  LinkMetric metric = LinkMetric::Hop;  ///< JointH for DSDVH
  double periodic_interval_s = 15.0;    ///< full-dump period (ns-2 default)
  double triggered_min_interval_s = 1.0;///< min spacing of triggered updates
  double startup_jitter_s = 2.0;        ///< first-dump desynchronization
  bool advertise_pm_changes = false;    ///< DSDVH: update on AM<->PSM flips

  /// Link-quality churn (DSDVH: "a route update is only needed when the
  /// quality of a link or the power management state of a node changes").
  /// Our distance-only phy has no fading, so the quality process is
  /// synthesized: every ~interval seconds a node re-assesses a few links
  /// and re-advertises affected entries; adopted costs carry multiplicative
  /// noise of amplitude quality_noise. 0 disables both.
  double quality_update_interval_s = 0.0;
  double quality_noise = 0.0;
  std::size_t quality_update_entries = 8;
};

class DsdvRouting final : public RoutingProtocol {
 public:
  DsdvRouting(NodeEnv env, DsdvConfig cfg);

  void start() override;
  void send_data(mac::Packet packet) override;

  /// DSDVH wiring: net::Network calls this when ODPM flips the node's
  /// power-management mode.
  void on_pm_mode_change();

  /// Exposed for tests.
  mac::NodeId next_hop_to(mac::NodeId dest) const;
  std::size_t table_size() const { return table_.size(); }

 private:
  struct Entry {
    std::uint32_t seq = 0;
    double metric = 0.0;
    mac::NodeId next_hop = mac::kBroadcast;
    bool valid = false;
  };

  void on_receive(const mac::Packet& p, mac::NodeId from);
  void handle_update(const mac::Packet& p, mac::NodeId from);
  void handle_data(const mac::Packet& p);
  void forward(mac::Packet packet);
  void handle_link_failure(mac::NodeId next_hop);

  void periodic_dump();
  void schedule_quality_tick();
  void schedule_triggered();
  void send_triggered();
  void broadcast_entries(const std::vector<DsdvEntry>& entries);
  DsdvEntry own_entry();

  DsdvConfig cfg_;
  std::unordered_map<mac::NodeId, Entry> table_;
  std::set<mac::NodeId> dirty_;
  std::uint32_t own_seq_ = 0;
  double last_update_tx_ = -1e18;
  sim::EventId trigger_event_ = sim::kInvalidEvent;
  std::uint64_t next_uid_ = 1;
};

}  // namespace eend::routing
