#include "routing/reactive.hpp"

#include <algorithm>
#include <cmath>

namespace eend::routing {

namespace {

/// Does `path` traverse the undirected link a-b?
bool path_uses_link(std::span<const mac::NodeId> path, mac::NodeId a,
                    mac::NodeId b) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if ((path[i] == a && path[i + 1] == b) ||
        (path[i] == b && path[i + 1] == a))
      return true;
  }
  return false;
}

bool contains(std::span<const mac::NodeId> path, mac::NodeId v) {
  return std::find(path.begin(), path.end(), v) != path.end();
}

}  // namespace

ReactiveRouting::ReactiveRouting(NodeEnv env, ReactiveConfig cfg)
    : RoutingProtocol(std::move(env)), cfg_(cfg) {
  env_.mac->set_receive_handler(
      [this](const mac::Packet& p, mac::NodeId from) { on_receive(p, from); });
}

void ReactiveRouting::start() {
  neighbors_ = env_.channel->connectivity_neighbors(env_.id);
  degree_ = neighbors_.size();
}

double ReactiveRouting::effective_rate_over_b(double advertised) const {
  // "When the rate information is not available, h is modified by setting
  // ri/B = 1."
  return advertised > 0.0 ? advertised : 1.0;
}

// ----------------------------------------------------------- data plane ---

void ReactiveRouting::send_data(mac::Packet packet) {
  EEND_REQUIRE(packet.origin == env_.id);
  const mac::NodeId dest = packet.final_dest;
  if (dest == env_.id) {
    ++stats_.data_delivered;
    if (env_.deliver_app) env_.deliver_app(packet);
    return;
  }
  env_.power->notify_data_activity();

  const auto it = cache_.find(dest);
  if (it != cache_.end()) {
    DataBody body;
    body.route = it->second.path;
    body.index = 0;
    if (env_.record_route && packet.flow_id >= 0)
      env_.record_route(packet.flow_id, body.route);
    forward_data(std::move(packet), body);
    return;
  }

  auto& q = buffer_[dest];
  if (q.size() >= cfg_.send_buffer_limit) {
    ++stats_.drops_buffer;
    return;
  }
  q.push_back(Buffered{std::move(packet), env_.sim->now()});
  ensure_discovery(dest);
}

void ReactiveRouting::forward_data(mac::Packet packet, const DataBody& body) {
  EEND_CHECK(body.index + 1 < body.route.size());
  EEND_CHECK(body.route[body.index] == env_.id);
  const mac::NodeId next = body.route[body.index + 1];

  DataBody next_body = body;
  next_body.index = body.index + 1;
  // The source-route header rides in every data frame: add its overhead to
  // the app payload size (handle_data strips it again before re-forwarding,
  // so the app payload size is preserved end to end).
  mac::Packet out = packet;
  out.type = kData;
  out.payload = mac::Packet::wrap(env_.sim->pool(), next_body);
  out.size_bits = data_bits(packet.size_bits, body.route.size());

  // Keep the original payload size for delivery accounting downstream.
  const mac::Packet for_failure = out;
  env_.mac->send_unicast(out, next, env_.data_tx_power(next),
                         [this, for_failure, next_body](bool ok) {
                           if (!ok) handle_link_failure(for_failure, next_body);
                         });
}

void ReactiveRouting::handle_data(const mac::Packet& p) {
  const auto& body = p.body<DataBody>();
  if (body.index >= body.route.size() || body.route[body.index] != env_.id)
    return;  // stale route; drop silently
  env_.power->notify_data_activity();
  // Strip this hop's source-route overhead: the app sees (and delivery
  // accounting counts) the pure payload; forward_data re-adds the header.
  mac::Packet stripped = p;
  stripped.size_bits -=
      kRouteEntryBits * static_cast<std::uint32_t>(body.route.size());
  if (env_.id == p.final_dest) {
    ++stats_.data_delivered;
    if (env_.deliver_app) env_.deliver_app(stripped);
    return;
  }
  ++stats_.data_forwarded;
  forward_data(std::move(stripped), body);
}

void ReactiveRouting::handle_link_failure(const mac::Packet& packet,
                                          const DataBody& body) {
  ++stats_.drops_mac;
  EEND_CHECK(body.index >= 1);
  const mac::NodeId me = body.route[body.index - 1];
  EEND_CHECK(me == env_.id);
  const mac::NodeId broken_to = body.route[body.index];
  purge_link(me, broken_to);
  (void)packet;
  if (body.index - 1 == 0) {
    // We are the origin: retry discovery so follow-up traffic recovers.
    ensure_discovery(body.route.back());
  } else {
    send_rerr(body, broken_to);
  }
}

void ReactiveRouting::send_rerr(const DataBody& body, mac::NodeId broken_to) {
  RerrBody rerr;
  rerr.broken_from = env_.id;
  rerr.broken_to = broken_to;
  rerr.route = body.route;
  rerr.index = body.index - 1;  // our own position; walk toward 0
  if (rerr.index == 0) return;  // we are the origin; nothing to send

  mac::Packet p;
  p.uid = next_uid_++;
  p.category = energy::Category::Control;
  p.origin = env_.id;
  p.final_dest = body.route.front();
  p.size_bits = rerr_bits();
  p.created_at = env_.sim->now();
  p.type = kRerr;
  RerrBody next = rerr;
  next.index = rerr.index - 1;
  p.payload = mac::Packet::wrap(env_.sim->pool(), next);
  ++stats_.rerr_sent;
  env_.mac->send_unicast(p, body.route[rerr.index - 1], env_.max_tx_power());
}

void ReactiveRouting::handle_rerr(const mac::Packet& p) {
  const auto& body = p.body<RerrBody>();
  if (body.index >= body.route.size() || body.route[body.index] != env_.id)
    return;
  purge_link(body.broken_from, body.broken_to);
  if (body.index == 0) {
    // Origin: repair proactively for queued/future traffic.
    ensure_discovery(body.route.back());
    return;
  }
  mac::Packet fwd = p;
  RerrBody next = body;
  next.index = body.index - 1;
  fwd.payload = mac::Packet::wrap(env_.sim->pool(), next);
  ++stats_.rerr_sent;
  env_.mac->send_unicast(fwd, body.route[body.index - 1],
                         env_.max_tx_power());
}

void ReactiveRouting::purge_link(mac::NodeId a, mac::NodeId b) {
  // eend-lint: allow(unordered-iter) — erase-only sweep: every route using
  // the broken link is dropped, so the surviving cache state is the same
  // for any visit order.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (path_uses_link(it->second.path, a, b))
      it = cache_.erase(it);
    else
      ++it;
  }
}

// ------------------------------------------------------ route discovery ---

void ReactiveRouting::ensure_discovery(mac::NodeId dest) {
  Discovery& d = discovery_[dest];
  if (d.active) return;
  d.active = true;
  d.tries = 0;
  issue_rreq(dest);
}

void ReactiveRouting::issue_rreq(mac::NodeId dest) {
  Discovery& d = discovery_[dest];
  ++stats_.discoveries;
  ++stats_.rreq_sent;

  RreqBody body;
  body.seq = next_seq_++;
  body.route = {env_.id};
  body.cost = 0.0;

  mac::Packet p;
  p.uid = next_uid_++;
  p.category = energy::Category::Control;
  p.origin = env_.id;
  p.final_dest = dest;
  p.size_bits = rreq_bits(1);
  p.created_at = env_.sim->now();
  p.type = kRreq;
  p.payload = mac::Packet::wrap(env_.sim->pool(), std::move(body));
  env_.mac->send_broadcast(std::move(p), env_.max_tx_power());

  const double timeout =
      cfg_.discovery_timeout_s * std::pow(2.0, static_cast<double>(d.tries));
  d.timeout_event = env_.sim->schedule_in(
      timeout, [this, dest] { on_discovery_timeout(dest); });
}

void ReactiveRouting::on_discovery_timeout(mac::NodeId dest) {
  Discovery& d = discovery_[dest];
  d.timeout_event = sim::kInvalidEvent;
  if (!d.active) return;
  if (cache_.count(dest) > 0) {
    d.active = false;
    return;
  }
  if (++d.tries >= cfg_.max_discovery_tries) {
    d.active = false;
    drop_buffer(dest);
    return;
  }
  issue_rreq(dest);
}

void ReactiveRouting::flush_buffer(mac::NodeId dest) {
  const auto it = buffer_.find(dest);
  if (it == buffer_.end()) return;
  std::deque<Buffered> q = std::move(it->second);
  buffer_.erase(it);
  const double now = env_.sim->now();
  for (Buffered& b : q) {
    if (now - b.queued_at > cfg_.send_buffer_timeout_s) {
      ++stats_.drops_buffer;
      continue;
    }
    send_data(std::move(b.packet));
  }
}

void ReactiveRouting::drop_buffer(mac::NodeId dest) {
  const auto it = buffer_.find(dest);
  if (it == buffer_.end()) return;
  stats_.drops_no_route += it->second.size();
  buffer_.erase(it);
}

bool ReactiveRouting::titan_participates() {
  if (!cfg_.titan) return true;
  if (env_.power->is_active_mode()) return true;
  // PSM node: the more backbone (AM) neighbors it knows of, the likelier
  // an existing backbone path can carry the route without waking it. With
  // no backbone around, it must participate (p -> 1) or floods die out.
  std::size_t n_am = 0;
  if (env_.neighbor_is_am)
    for (mac::NodeId n : neighbors_)
      if (env_.neighbor_is_am(n)) ++n_am;
  const double p =
      std::clamp(cfg_.titan_alpha / (1.0 + static_cast<double>(n_am)),
                 cfg_.titan_pmin, 1.0);
  return env_.rng.bernoulli(p);
}

void ReactiveRouting::handle_rreq(const mac::Packet& p, mac::NodeId from) {
  const auto& body = p.body<RreqBody>();
  if (p.origin == env_.id) return;
  if (contains(body.route, env_.id)) return;  // routing loop
  (void)from;

  const mac::NodeId prev = body.route.back();
  const bool i_am_target = p.final_dest == env_.id;
  const bool me_am = env_.power->is_active_mode();
  const double c =
      link_cost(cfg_.metric, env_.radio->card(), env_.distance_to(prev),
                me_am, effective_rate_over_b(env_.rate_over_b));
  const double total = body.cost + c;

  const auto key = std::pair{p.origin, body.seq};
  const auto seen = rreq_best_.find(key);
  if (seen != rreq_best_.end() &&
      total >= seen->second * cfg_.cost_improve_factor)
    return;
  rreq_best_[key] = seen == rreq_best_.end()
                        ? total
                        : std::min(total, seen->second);

  if (i_am_target) {
    // Reply along the accumulated route.
    RrepBody rep;
    rep.route = body.route;
    rep.route.push_back(env_.id);
    rep.cost = total;
    rep.index = static_cast<std::uint32_t>(rep.route.size() - 1);
    env_.power->notify_route_activity();

    mac::Packet out;
    out.uid = next_uid_++;
    out.category = energy::Category::Control;
    out.origin = env_.id;
    out.final_dest = p.origin;
    out.size_bits = rrep_bits(rep.route.size());
    out.created_at = env_.sim->now();
    out.type = kRrep;
    const mac::NodeId prev_hop = rep.route[rep.index - 1];
    RrepBody next = rep;
    next.index = rep.index - 1;
    out.payload = mac::Packet::wrap(env_.sim->pool(), std::move(next));
    ++stats_.rrep_sent;
    env_.mac->send_unicast(std::move(out), prev_hop, env_.max_tx_power());
    return;
  }

  if (static_cast<int>(body.route.size()) >= cfg_.max_route_len) return;
  if (!titan_participates()) return;

  RreqBody fwd = body;
  fwd.route.push_back(env_.id);
  fwd.cost = total;
  mac::Packet out = p;
  out.uid = next_uid_++;
  out.size_bits = rreq_bits(fwd.route.size());
  out.payload = mac::Packet::wrap(env_.sim->pool(), std::move(fwd));
  ++stats_.rreq_forwarded;
  env_.mac->send_broadcast(std::move(out), env_.max_tx_power());
}

void ReactiveRouting::install_route(mac::NodeId dest,
                                    std::vector<mac::NodeId> path,
                                    double cost) {
  auto it = cache_.find(dest);
  if (it == cache_.end() || cost < it->second.cost)
    cache_[dest] = CachedRoute{std::move(path), cost};
}

void ReactiveRouting::handle_rrep(const mac::Packet& p) {
  const auto& body = p.body<RrepBody>();
  if (body.index >= body.route.size() || body.route[body.index] != env_.id)
    return;
  env_.power->notify_route_activity();

  // Cache the route segment ahead of us (toward the replying target).
  std::vector<mac::NodeId> segment(body.route.begin() + body.index,
                                   body.route.end());
  install_route(body.route.back(), std::move(segment), body.cost);

  if (body.index == 0) {
    // Discovery complete at the origin.
    Discovery& d = discovery_[body.route.back()];
    if (d.active) {
      d.active = false;
      if (d.timeout_event != sim::kInvalidEvent)
        env_.sim->cancel(d.timeout_event);
    }
    flush_buffer(body.route.back());
    return;
  }

  mac::Packet fwd = p;
  RrepBody next = body;
  next.index = body.index - 1;
  fwd.payload = mac::Packet::wrap(env_.sim->pool(), std::move(next));
  ++stats_.rrep_sent;
  env_.mac->send_unicast(std::move(fwd), body.route[body.index - 1],
                         env_.max_tx_power());
}

// ------------------------------------------------------------- dispatch ---

void ReactiveRouting::on_receive(const mac::Packet& p, mac::NodeId from) {
  switch (p.type) {
    case kData: handle_data(p); break;
    case kRreq: handle_rreq(p, from); break;
    case kRrep: handle_rrep(p); break;
    case kRerr: handle_rerr(p); break;
    default: break;
  }
}

std::vector<mac::NodeId> ReactiveRouting::cached_route(
    mac::NodeId dest) const {
  const auto it = cache_.find(dest);
  return it == cache_.end() ? std::vector<mac::NodeId>{} : it->second.path;
}

}  // namespace eend::routing
