// The reactive (DSR-style) protocol family.
//
// One engine covers five of the paper's protocols through configuration:
//
//   DSR        — metric Hop                       (idle-first, §4.3 v1)
//   MTPR       — metric Mtpr      (Eq. 10)        (comm-first,  §4.1)
//   MTPR+      — metric MtprPlus  (Eq. 11)        (comm-first,  §4.1)
//   DSRH       — metric JointH    (Eq. 12)        (joint opt.,  §4.2)
//                rate / norate via NodeEnv::rate_over_b
//   TITAN      — metric Hop + probabilistic RREQ participation biased
//                toward backbone (AM) nodes       (idle-first, §4.3 v2)
//
// Mechanics follow DSR [Johnson et al.]: flooded route requests accumulate
// a route and a metric cost; duplicate RREQs are suppressed unless they
// improve the best cost seen ("RREQs may be rebroadcast and multiple RREPs
// may be sent, if they advertise a lower cost"); replies travel back along
// the discovered route; data is source-routed; failed transmissions
// produce route errors toward the origin.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "routing/messages.hpp"
#include "routing/metric.hpp"
#include "routing/protocol.hpp"

namespace eend::routing {

struct ReactiveConfig {
  LinkMetric metric = LinkMetric::Hop;

  /// TITAN: PSM nodes participate in route discovery probabilistically.
  bool titan = false;
  double titan_pmin = 0.1;   ///< participation floor
  double titan_alpha = 1.0;  ///< participation scale: p = a / (1 + #AM)

  /// Initial discovery timeout; doubles per retry. Must comfortably cover
  /// a PSM-paced RREP return (one beacon interval per hop).
  double discovery_timeout_s = 3.0;
  int max_discovery_tries = 6;
  double send_buffer_timeout_s = 30.0;
  std::size_t send_buffer_limit = 64;
  int max_route_len = 32;

  /// A duplicate RREQ is only re-flooded (and re-answered) when its cost
  /// beats the best seen by this relative margin — the damper that keeps
  /// metric-driven discovery (MTPR/DSRH) from re-broadcasting on every
  /// epsilon improvement.
  double cost_improve_factor = 0.9;
};

class ReactiveRouting final : public RoutingProtocol {
 public:
  ReactiveRouting(NodeEnv env, ReactiveConfig cfg);

  void start() override;
  void send_data(mac::Packet packet) override;

  /// Exposed for tests: current cached route to `dest` (empty if none).
  std::vector<mac::NodeId> cached_route(mac::NodeId dest) const;

 private:
  struct CachedRoute {
    std::vector<mac::NodeId> path;  ///< this node .. dest
    double cost = 0.0;
  };
  struct Buffered {
    mac::Packet packet;
    double queued_at;
  };
  struct Discovery {
    bool active = false;
    int tries = 0;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  void on_receive(const mac::Packet& p, mac::NodeId from);
  void handle_rreq(const mac::Packet& p, mac::NodeId from);
  void handle_rrep(const mac::Packet& p);
  void handle_rerr(const mac::Packet& p);
  void handle_data(const mac::Packet& p);

  void ensure_discovery(mac::NodeId dest);
  void issue_rreq(mac::NodeId dest);
  void on_discovery_timeout(mac::NodeId dest);
  void flush_buffer(mac::NodeId dest);
  void drop_buffer(mac::NodeId dest);

  /// Send a data packet along `route` starting from this node's position.
  void forward_data(mac::Packet packet, const DataBody& body);
  void handle_link_failure(const mac::Packet& packet, const DataBody& body);
  void send_rerr(const DataBody& body, mac::NodeId broken_to);
  void purge_link(mac::NodeId a, mac::NodeId b);
  void install_route(mac::NodeId dest, std::vector<mac::NodeId> path,
                     double cost);

  bool titan_participates();
  double effective_rate_over_b(double advertised) const;

  ReactiveConfig cfg_;
  std::unordered_map<mac::NodeId, CachedRoute> cache_;
  std::unordered_map<mac::NodeId, std::deque<Buffered>> buffer_;
  std::unordered_map<mac::NodeId, Discovery> discovery_;
  std::map<std::pair<mac::NodeId, std::uint32_t>, double> rreq_best_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t next_uid_ = 1;

  // Static topology info for TITAN's participation heuristic.
  std::size_t degree_ = 0;
  std::vector<mac::NodeId> neighbors_;
};

}  // namespace eend::routing
