// Link cost metrics — the heart of the three heuristic approaches.
//
//   Hop      — shortest path (DSR / TITAN / the idle-first approach);
//   Mtpr     — Eq. 10: f(u,v) = Pt(u,v)                (amplifier only);
//   MtprPlus — Eq. 11: f(u,v) = Pbase + Pt(u,v) + Prx;
//   JointH   — Eq. 12: h(u,v,ri) = c(u,v) [+ Pidle if the candidate relay
//              is in PSM], where c(u,v) = (Ptx(u,v) + Prx - 2 Pidle) ri/B.
//              Without rate information ri/B is taken as 1 (the paper's
//              "norate" variant).
#pragma once

#include <algorithm>

#include "energy/radio_card.hpp"

namespace eend::routing {

enum class LinkMetric { Hop, Mtpr, MtprPlus, JointH };

inline const char* to_string(LinkMetric m) {
  switch (m) {
    case LinkMetric::Hop: return "hop";
    case LinkMetric::Mtpr: return "mtpr";
    case LinkMetric::MtprPlus: return "mtpr+";
    case LinkMetric::JointH: return "h";
  }
  return "?";
}

/// Cost of the link u->v.
/// `dist` is the u-v distance; `relay_is_am` is v's power-management state
/// (only JointH uses it); `rate_over_b` is ri/B (1.0 when unknown).
inline double link_cost(LinkMetric metric, const energy::RadioCard& card,
                        double dist, bool relay_is_am, double rate_over_b) {
  switch (metric) {
    case LinkMetric::Hop:
      return 1.0;
    case LinkMetric::Mtpr:
      return card.transmit_level(dist);
    case LinkMetric::MtprPlus:
      return card.p_base + card.transmit_level(dist) + card.p_rx;
    case LinkMetric::JointH: {
      const double c = (card.transmit_power(dist) + card.p_rx -
                        2.0 * card.p_idle) *
                       rate_over_b;
      // Negative c would mean relaying is cheaper than idling — clamp so
      // accumulated route costs stay monotone (Dijkstra-safe), as MPC's
      // bounded-weight assumption requires.
      return std::max(0.0, c) + (relay_is_am ? 0.0 : card.p_idle);
    }
  }
  return 1.0;
}

}  // namespace eend::routing
