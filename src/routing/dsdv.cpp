#include "routing/dsdv.hpp"

#include <algorithm>

namespace eend::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

DsdvRouting::DsdvRouting(NodeEnv env, DsdvConfig cfg)
    : RoutingProtocol(std::move(env)), cfg_(cfg) {
  env_.mac->set_receive_handler(
      [this](const mac::Packet& p, mac::NodeId from) { on_receive(p, from); });
}

DsdvEntry DsdvRouting::own_entry() {
  return DsdvEntry{env_.id, own_seq_, 0.0};
}

void DsdvRouting::start() {
  table_[env_.id] = Entry{0, 0.0, env_.id, true};
  const double first = env_.rng.uniform(0.0, cfg_.startup_jitter_s);
  env_.sim->schedule_in(first, [this] { periodic_dump(); });
  if (cfg_.quality_update_interval_s > 0.0) schedule_quality_tick();
}

void DsdvRouting::schedule_quality_tick() {
  const double delay =
      cfg_.quality_update_interval_s * env_.rng.uniform(0.7, 1.3);
  env_.sim->schedule_in(delay, [this] {
    // Re-assess a few routes: their advertised costs will be re-adopted by
    // neighbors with fresh quality noise, modeling fading-driven metric
    // drift that the distance-only phy cannot produce.
    std::vector<mac::NodeId> valid;
    // eend-lint: allow(unordered-iter) — pre-shuffle collection: the chosen
    // subset lands in the sorted dirty_ set, and the collection order itself
    // is --jobs-invariant (table_'s operation history does not depend on the
    // thread count); re-ordering would re-roll the synthesized churn subset
    // and invalidate the pinned dsdvh golden suites.
    for (const auto& [dest, e] : table_)
      if (dest != env_.id && e.valid) valid.push_back(dest);
    env_.rng.shuffle(valid);
    const std::size_t n =
        std::min(cfg_.quality_update_entries, valid.size());
    for (std::size_t i = 0; i < n; ++i) dirty_.insert(valid[i]);
    if (n > 0) schedule_triggered();
    schedule_quality_tick();
  });
}

void DsdvRouting::periodic_dump() {
  own_seq_ += 2;
  table_[env_.id].seq = own_seq_;
  std::vector<DsdvEntry> entries;
  entries.reserve(table_.size());
  // eend-lint: allow(unordered-iter) — wire order is behavior-neutral for
  // table CONTENTS (receivers fold each dest independently), but it fixes
  // the order receivers first INSERT dests into their own table_, whose
  // iteration order the quality-churn subset (see schedule_quality_tick)
  // deliberately pins. Sorting here re-rolls the dsdvh golden suites.
  for (const auto& [dest, e] : table_)
    entries.push_back(DsdvEntry{dest, e.seq, e.valid ? e.metric : kInf});
  broadcast_entries(entries);
  dirty_.clear();
  env_.sim->schedule_in(cfg_.periodic_interval_s, [this] { periodic_dump(); });
}

void DsdvRouting::schedule_triggered() {
  if (dirty_.empty() || trigger_event_ != sim::kInvalidEvent) return;
  const double earliest =
      std::max(env_.sim->now(),
               last_update_tx_ + cfg_.triggered_min_interval_s);
  trigger_event_ = env_.sim->schedule_at(earliest, [this] {
    trigger_event_ = sim::kInvalidEvent;
    send_triggered();
  });
}

void DsdvRouting::send_triggered() {
  if (dirty_.empty()) return;
  std::vector<DsdvEntry> entries;
  entries.reserve(dirty_.size() + 1);
  entries.push_back(own_entry());
  for (mac::NodeId dest : dirty_) {
    const auto it = table_.find(dest);
    if (it == table_.end() || dest == env_.id) continue;
    entries.push_back(DsdvEntry{dest, it->second.seq,
                                it->second.valid ? it->second.metric : kInf});
  }
  dirty_.clear();
  broadcast_entries(entries);
}

void DsdvRouting::broadcast_entries(const std::vector<DsdvEntry>& entries) {
  DsdvBody body;
  body.sender_is_am = env_.power->is_active_mode();
  body.entries = entries;

  mac::Packet p;
  p.uid = next_uid_++;
  p.category = energy::Category::Control;
  p.origin = env_.id;
  p.final_dest = mac::kBroadcast;
  p.size_bits = dsdv_bits(entries.size());
  p.created_at = env_.sim->now();
  p.type = kDsdvUpdate;
  p.payload = mac::Packet::wrap(env_.sim->pool(), std::move(body));
  ++stats_.updates_sent;
  last_update_tx_ = env_.sim->now();
  env_.mac->send_broadcast(std::move(p), env_.max_tx_power());
}

void DsdvRouting::on_pm_mode_change() {
  if (!cfg_.advertise_pm_changes) return;
  // Our reachability cost (as seen by neighbors evaluating h against our
  // PM state) changed: re-advertise the full table.
  // eend-lint: allow(unordered-iter) — inserts into the sorted dirty_ set;
  // per-entry independent, so iteration order cannot leak.
  for (const auto& [dest, e] : table_) {
    (void)e;
    if (dest != env_.id) dirty_.insert(dest);
  }
  schedule_triggered();
}

void DsdvRouting::handle_update(const mac::Packet& p, mac::NodeId from) {
  const auto& body = p.body<DsdvBody>();
  double link = link_cost(cfg_.metric, env_.radio->card(),
                          env_.distance_to(from), body.sender_is_am,
                          env_.rate_over_b > 0 ? env_.rate_over_b : 1.0);
  if (cfg_.quality_noise > 0.0)
    link *= 1.0 + env_.rng.uniform(-cfg_.quality_noise, cfg_.quality_noise);
  bool changed = false;
  for (const DsdvEntry& adv : body.entries) {
    if (adv.dest == env_.id) continue;
    const bool broken = !std::isfinite(adv.metric);
    const double via = broken ? kInf : adv.metric + link;
    auto it = table_.find(adv.dest);
    const bool have = it != table_.end();

    bool adopt = false;
    if (!have) {
      adopt = !broken;
    } else {
      Entry& cur = it->second;
      if (adv.seq > cur.seq) {
        adopt = true;
      } else if (adv.seq == cur.seq) {
        // Same sequence: better cost wins; the current next hop is always
        // authoritative (this is how cost *increases* — e.g. a relay
        // dropping to PSM under DSDVH — propagate).
        adopt = (cur.next_hop == from) || (via < cur.metric - kEps);
      }
    }
    if (!adopt) continue;

    Entry next;
    next.seq = adv.seq;
    next.metric = via;
    next.next_hop = from;
    next.valid = !broken;
    const bool materially_different =
        !have || it->second.valid != next.valid ||
        it->second.next_hop != next.next_hop ||
        std::abs(it->second.metric - next.metric) > kEps;
    table_[adv.dest] = next;
    if (materially_different) {
      dirty_.insert(adv.dest);
      changed = true;
    }
  }
  if (changed) schedule_triggered();
}

// ----------------------------------------------------------- data plane ---

void DsdvRouting::send_data(mac::Packet packet) {
  EEND_REQUIRE(packet.origin == env_.id);
  if (packet.final_dest == env_.id) {
    ++stats_.data_delivered;
    if (env_.deliver_app) env_.deliver_app(packet);
    return;
  }
  env_.power->notify_data_activity();
  forward(std::move(packet));
}

void DsdvRouting::forward(mac::Packet packet) {
  if (packet.ttl <= 0) {
    ++stats_.drops_ttl;
    return;
  }
  --packet.ttl;
  const auto it = table_.find(packet.final_dest);
  if (it == table_.end() || !it->second.valid ||
      !std::isfinite(it->second.metric)) {
    ++stats_.drops_no_route;
    return;
  }
  const mac::NodeId next = it->second.next_hop;
  packet.type = kData;
  if (!packet.payload) {
    packet.payload = mac::Packet::wrap(env_.sim->pool(), DataBody{});  // hop-by-hop: no route
  }
  env_.mac->send_unicast(packet, next, env_.data_tx_power(next),
                         [this, next](bool ok) {
                           if (!ok) handle_link_failure(next);
                         });
}

void DsdvRouting::handle_data(const mac::Packet& p) {
  env_.power->notify_data_activity();
  if (p.final_dest == env_.id) {
    ++stats_.data_delivered;
    if (env_.deliver_app) env_.deliver_app(p);
    return;
  }
  ++stats_.data_forwarded;
  forward(p);
}

void DsdvRouting::handle_link_failure(mac::NodeId next_hop) {
  ++stats_.drops_mac;
  bool changed = false;
  // eend-lint: allow(unordered-iter) — per-entry independent invalidation;
  // results land in the sorted dirty_ set, order cannot leak.
  for (auto& [dest, e] : table_) {
    if (dest == env_.id || e.next_hop != next_hop || !e.valid) continue;
    e.valid = false;
    e.metric = kInf;
    e.seq += 1;  // odd sequence: link-break advertisement (DSDV rule)
    dirty_.insert(dest);
    changed = true;
  }
  if (changed) schedule_triggered();
}

void DsdvRouting::on_receive(const mac::Packet& p, mac::NodeId from) {
  switch (p.type) {
    case kData: handle_data(p); break;
    case kDsdvUpdate: handle_update(p, from); break;
    default: break;
  }
}

mac::NodeId DsdvRouting::next_hop_to(mac::NodeId dest) const {
  const auto it = table_.find(dest);
  if (it == table_.end() || !it->second.valid) return mac::kBroadcast;
  return it->second.next_hop;
}

}  // namespace eend::routing
