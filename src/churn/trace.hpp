// Churn traces: deterministic time-varying perturbations of a design
// instance — the serving-loop workload (ROADMAP: "dynamic scenarios +
// incremental re-design").
//
// A trace is a schedule of perturbation events over discrete epochs. Epoch
// 0 is the untouched instance (the cold design); every later epoch applies
// a batch of events — demand arrivals and departures, piecewise rate swings
// layered onto the demand weights, scheduled node failures, and waypoint
// node motion — and yields a perturbed NetworkDesignProblem for the
// incremental designer (opt/warm_start.hpp) to repair against.
//
// Two sources of events share one application path:
//   * generated — drawn per epoch from a core::Rng stream forked on
//     (seed, epoch), so a trace is deterministic in its TraceSpec alone and
//     independent of --jobs or evaluation order;
//   * explicit — a validated schedule from the manifest (`schedule` key),
//     applied verbatim.
//
// Feasibility contract: ChurnState only ever exposes routable problems.
// Generated failures/moves that would strand a demand are redrawn or
// skipped; explicit events that do so throw CheckError (the manifest layer
// statically rejects what it can — endpoint failures, bad indices — and
// this runtime check catches graph-dependent breakage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_problem.hpp"
#include "energy/radio_card.hpp"
#include "opt/design_instance.hpp"
#include "phy/position.hpp"

namespace eend::churn {

enum class EventOp { Arrive, Depart, RateSwing, Fail, Move };

const char* event_op_name(EventOp op);
EventOp event_op_from_name(const std::string& name);

/// One perturbation. Only the fields its op reads are meaningful:
///   Arrive    source, destination, weight (rate = demand_rate · weight)
///   Depart    demand (index into the live demand list at application time)
///   RateSwing demand, factor (rate = demand_rate · base weight · factor)
///   Fail      node (radio dark: isolated in the graph, fed to
///             powered_off_nodes on replay epochs)
///   Move      node, x, y (absolute position; topology rebuilt through the
///             spatial::GridIndex-backed construction)
struct Event {
  EventOp op = EventOp::Arrive;
  graph::NodeId node = 0;
  std::size_t demand = 0;
  graph::NodeId source = 0;
  graph::NodeId destination = 0;
  double weight = 1.0;
  double factor = 1.0;
  double x = 0.0;
  double y = 0.0;
};

/// Explicit-schedule entry: the events applied when epoch `at` begins.
struct EpochEvents {
  std::size_t at = 0;  ///< epoch index, in [1, epochs)
  std::vector<Event> events;
};

/// Full trace description — the generator knobs, or an explicit schedule
/// (non-empty `schedule` makes the generator knobs inert; the manifest
/// layer rejects manifests that set both).
struct TraceSpec {
  std::size_t epochs = 8;           ///< total epochs incl. epoch 0
  std::size_t arrivals_per_epoch = 1;
  std::size_t departures_per_epoch = 1;
  std::size_t swings_per_epoch = 1;
  std::size_t failures_per_epoch = 0;
  double rate_swing = 0.5;          ///< factor drawn in [1−s, 1+s]
  double move_fraction = 0.0;       ///< fraction of nodes moved per epoch
  double move_sigma_m = 50.0;       ///< Gaussian waypoint step (meters)
  std::uint64_t seed = 1;
  std::vector<EpochEvents> schedule;  ///< explicit; sorted by `at`
};

/// What one epoch did to the instance — the warm-start locality signal.
struct EpochDelta {
  std::vector<Event> applied;
  /// Nodes the events referenced (failed, moved, endpoints of arrived /
  /// departed / swung demands), sorted unique. The incremental designer
  /// grows its repair region from these.
  std::vector<graph::NodeId> touched_nodes;
  /// True when the connectivity graph changed (failure or motion) — route
  /// caches over the previous graph are then invalid.
  bool topology_changed = false;
};

/// The live, mutable instance a churn trace evolves: current positions,
/// failed set and demand list, with the connectivity graph rebuilt (failed
/// nodes isolated, ids stable) whenever topology changes. With no failures
/// and untouched positions the graph is bit-identical to
/// NetworkDesignProblem::from_positions on the same inputs.
class ChurnState {
 public:
  /// Start from an untouched instance (epoch 0). `spec` supplies the card,
  /// base demand rate and the weight cycle future arrivals continue.
  ChurnState(const opt::DesignInstance& instance,
             const opt::DesignInstanceSpec& spec);

  /// Apply epoch `epoch` (>= 1): the explicit schedule's events when
  /// `trace.schedule` is non-empty, otherwise generated events from the
  /// (trace.seed, epoch)-forked stream. Deterministic; returns the delta.
  EpochDelta advance(const TraceSpec& trace, std::size_t epoch);

  /// Current perturbed problem: graph over the live topology plus the live
  /// demand list. Always routable.
  const core::NetworkDesignProblem& problem() const { return problem_; }
  const std::vector<phy::Position>& positions() const { return positions_; }
  /// Failed node ids, sorted ascending (feeds powered_off_nodes on replay
  /// epochs alongside the design's inactive complement).
  std::vector<graph::NodeId> failed_nodes() const;
  double field_side() const { return field_side_; }
  const energy::RadioCard& card() const { return card_; }

 private:
  void apply(const Event& ev, EpochDelta& delta);
  void rebuild_graph();
  bool routable() const;
  bool is_endpoint(graph::NodeId v) const;
  void touch(EpochDelta& delta, graph::NodeId v) const;

  core::NetworkDesignProblem problem_;
  std::vector<phy::Position> positions_;
  std::vector<char> failed_;
  /// Per-live-demand base weight (demand j's swing-free rate is
  /// demand_rate_ · base_weights_[j]); erased in lockstep with departures.
  std::vector<double> base_weights_;
  std::vector<double> weight_cycle_;  ///< arrival weights, cycled
  std::size_t arrivals_seen_ = 0;     ///< cycle position (starts past the
                                      ///< instance's initial demands)
  double demand_rate_ = 1.0;
  double field_side_ = 0.0;
  energy::RadioCard card_;
};

}  // namespace eend::churn
