#include "churn/trace.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "obs/counters.hpp"
#include "spatial/grid_index.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace eend::churn {

const char* event_op_name(EventOp op) {
  switch (op) {
    case EventOp::Arrive: return "arrive";
    case EventOp::Depart: return "depart";
    case EventOp::RateSwing: return "rate";
    case EventOp::Fail: return "fail";
    case EventOp::Move: return "move";
  }
  EEND_REQUIRE_MSG(false, "unhandled EventOp");
  return "";
}

EventOp event_op_from_name(const std::string& name) {
  if (name == "arrive") return EventOp::Arrive;
  if (name == "depart") return EventOp::Depart;
  if (name == "rate") return EventOp::RateSwing;
  if (name == "fail") return EventOp::Fail;
  if (name == "move") return EventOp::Move;
  EEND_REQUIRE_MSG(false, "unknown churn event op \"" << name
                   << "\" (expected arrive, depart, rate, fail or move)");
  return EventOp::Arrive;
}

ChurnState::ChurnState(const opt::DesignInstance& instance,
                       const opt::DesignInstanceSpec& spec)
    : problem_(instance.problem),
      positions_(instance.positions),
      failed_(instance.positions.size(), 0),
      weight_cycle_(spec.demand_weights),
      arrivals_seen_(spec.demand_count),
      demand_rate_(spec.demand_rate),
      field_side_(instance.field_side),
      card_(spec.card) {
  EEND_REQUIRE_MSG(!problem_.demands().empty(),
                   "churn needs an instance with at least one demand");
  // Mirror make_design_instance's weight cycling so swings can restore a
  // demand's base rate exactly.
  base_weights_.reserve(problem_.demands().size());
  for (std::size_t j = 0; j < problem_.demands().size(); ++j)
    base_weights_.push_back(weight_cycle_.empty()
                                ? 1.0
                                : weight_cycle_[j % weight_cycle_.size()]);
}

std::vector<graph::NodeId> ChurnState::failed_nodes() const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < failed_.size(); ++v)
    if (failed_[v]) out.push_back(v);
  return out;
}

bool ChurnState::is_endpoint(graph::NodeId v) const {
  for (const graph::Demand& d : problem_.demands())
    if (d.source == v || d.destination == v) return true;
  return false;
}

void ChurnState::touch(EpochDelta& delta, graph::NodeId v) const {
  delta.touched_nodes.push_back(v);
}

bool ChurnState::routable() const {
  return problem_.try_route_in_subgraph({}).has_value();
}

/// Rebuild the connectivity graph over the current positions with failed
/// nodes isolated. Mirrors NetworkDesignProblem::from_positions exactly —
/// same spatial-index predicate, same id-sorted edge order — so an empty
/// failed set reproduces its graph bit-for-bit (churn_test pins this).
void ChurnState::rebuild_graph() {
  graph::Graph g(positions_.size());
  for (graph::NodeId v = 0; v < positions_.size(); ++v)
    g.set_node_weight(v, card_.p_idle);
  spatial::GridIndex idx;
  idx.build(positions_, card_.max_range_m / 2.0);
  std::vector<std::pair<graph::NodeId, double>> above;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (failed_[i]) continue;
    above.clear();
    idx.for_each_within(i, card_.max_range_m, [&](std::size_t j, double d) {
      if (j > i && !failed_[j])
        above.emplace_back(static_cast<graph::NodeId>(j), d);
    });
    std::sort(above.begin(), above.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [j, d] : above)
      g.add_edge(static_cast<graph::NodeId>(i), j,
                 card_.transmit_power(d) + card_.p_rx);
  }
  std::vector<graph::Demand> demands = problem_.demands();
  problem_ = core::NetworkDesignProblem(std::move(g));
  problem_.set_demands(std::move(demands));
}

/// Apply one *validated-at-runtime* event: explicit-schedule events land
/// here directly (throwing CheckError on graph-dependent breakage the
/// manifest could not see), and the generator only feeds events it already
/// proved feasible.
void ChurnState::apply(const Event& ev, EpochDelta& delta) {
  const std::size_t n = positions_.size();
  std::vector<graph::Demand> demands = problem_.demands();
  switch (ev.op) {
    case EventOp::Fail: {
      EEND_REQUIRE_MSG(ev.node < n, "fail: node " << ev.node
                       << " out of range for node_count " << n);
      EEND_REQUIRE_MSG(!failed_[ev.node],
                       "fail: node " << ev.node << " is already failed");
      EEND_REQUIRE_MSG(!is_endpoint(ev.node),
                       "fail: node " << ev.node
                       << " is a live demand endpoint");
      failed_[ev.node] = 1;
      rebuild_graph();
      EEND_REQUIRE_MSG(routable(), "fail: losing node "
                       << ev.node << " strands a live demand");
      touch(delta, ev.node);
      delta.topology_changed = true;
      break;
    }
    case EventOp::Move: {
      EEND_REQUIRE_MSG(ev.node < n, "move: node " << ev.node
                       << " out of range for node_count " << n);
      EEND_REQUIRE_MSG(!failed_[ev.node],
                       "move: node " << ev.node << " is failed");
      positions_[ev.node] = phy::Position{ev.x, ev.y};
      rebuild_graph();
      EEND_REQUIRE_MSG(routable(), "move: relocating node "
                       << ev.node << " strands a live demand");
      touch(delta, ev.node);
      delta.topology_changed = true;
      break;
    }
    case EventOp::Arrive: {
      EEND_REQUIRE_MSG(ev.source < n && ev.destination < n,
                       "arrive: endpoint (" << ev.source << ", "
                       << ev.destination << ") out of range for node_count "
                       << n);
      EEND_REQUIRE_MSG(ev.source != ev.destination,
                       "arrive: demand (" << ev.source << ", " << ev.source
                       << ") is a self-loop");
      EEND_REQUIRE_MSG(!failed_[ev.source] && !failed_[ev.destination],
                       "arrive: demand (" << ev.source << ", "
                       << ev.destination << ") uses a failed node");
      EEND_REQUIRE_MSG(ev.weight > 0.0 && std::isfinite(ev.weight),
                       "arrive: weight must be positive and finite, got "
                       << ev.weight);
      for (const graph::Demand& d : demands)
        EEND_REQUIRE_MSG(
            !(d.source == ev.source && d.destination == ev.destination),
            "arrive: demand (" << ev.source << ", " << ev.destination
            << ") already live");
      demands.push_back(graph::Demand{ev.source, ev.destination,
                                      demand_rate_ * ev.weight});
      base_weights_.push_back(ev.weight);
      problem_.set_demands(std::move(demands));
      EEND_REQUIRE_MSG(routable(), "arrive: demand (" << ev.source << ", "
                       << ev.destination << ") is unroutable");
      touch(delta, ev.source);
      touch(delta, ev.destination);
      break;
    }
    case EventOp::Depart: {
      EEND_REQUIRE_MSG(ev.demand < demands.size(),
                       "depart: demand index " << ev.demand
                       << " out of range (" << demands.size() << " live)");
      EEND_REQUIRE_MSG(demands.size() > 1,
                       "depart: cannot remove the last live demand");
      touch(delta, demands[ev.demand].source);
      touch(delta, demands[ev.demand].destination);
      demands.erase(demands.begin() +
                    static_cast<std::ptrdiff_t>(ev.demand));
      base_weights_.erase(base_weights_.begin() +
                          static_cast<std::ptrdiff_t>(ev.demand));
      problem_.set_demands(std::move(demands));
      break;
    }
    case EventOp::RateSwing: {
      EEND_REQUIRE_MSG(ev.demand < demands.size(),
                       "rate: demand index " << ev.demand
                       << " out of range (" << demands.size() << " live)");
      EEND_REQUIRE_MSG(ev.factor > 0.0 && std::isfinite(ev.factor),
                       "rate: factor must be positive and finite, got "
                       << ev.factor);
      demands[ev.demand].rate =
          demand_rate_ * base_weights_[ev.demand] * ev.factor;
      touch(delta, demands[ev.demand].source);
      touch(delta, demands[ev.demand].destination);
      problem_.set_demands(std::move(demands));
      break;
    }
  }
  delta.applied.push_back(ev);
}

EpochDelta ChurnState::advance(const TraceSpec& trace, std::size_t epoch) {
  EEND_REQUIRE_MSG(epoch >= 1 && epoch < trace.epochs,
                   "epoch " << epoch << " outside [1, " << trace.epochs
                   << ") — epoch 0 is the untouched instance");
  EpochDelta delta;
  const std::size_t n = positions_.size();
  std::uint64_t redrawn = 0;  // rejected candidate draws (generated traces)

  if (!trace.schedule.empty()) {
    for (const EpochEvents& ee : trace.schedule)
      if (ee.at == epoch)
        for (const Event& ev : ee.events) apply(ev, delta);
  } else {
    Rng rng = Rng(trace.seed).fork(0xC42A).fork(epoch);

    // Failures first (they shrink the topology every later draw sees).
    // Candidates that are endpoints, already failed, or whose loss strands
    // a demand are redrawn; a failure slot that finds no viable node after
    // 32 attempts is skipped.
    for (std::size_t k = 0; k < trace.failures_per_epoch; ++k) {
      for (int attempt = 0; attempt < 32; ++attempt) {
        const auto v = static_cast<graph::NodeId>(rng.next_below(n));
        if (failed_[v] || is_endpoint(v)) {
          ++redrawn;
          continue;
        }
        failed_[v] = 1;
        rebuild_graph();
        if (routable()) {
          Event ev;
          ev.op = EventOp::Fail;
          ev.node = v;
          delta.applied.push_back(ev);
          touch(delta, v);
          delta.topology_changed = true;
          break;
        }
        failed_[v] = 0;  // revert: this node is a cut vertex right now
        ++redrawn;
        rebuild_graph();
      }
    }

    // Waypoint motion: a fixed fraction of live nodes takes one Gaussian
    // step, clamped to the field. Applied as a batch — if the moved
    // topology strands any demand, the whole epoch's motion is reverted.
    const auto moves = static_cast<std::size_t>(
        trace.move_fraction * static_cast<double>(n));
    if (moves > 0) {
      std::set<graph::NodeId> seen;
      std::vector<Event> moved;
      const std::vector<phy::Position> before = positions_;
      for (std::size_t k = 0; k < moves; ++k) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto v = static_cast<graph::NodeId>(rng.next_below(n));
          if (failed_[v] || seen.count(v)) {
            ++redrawn;
            continue;
          }
          seen.insert(v);
          Event ev;
          ev.op = EventOp::Move;
          ev.node = v;
          ev.x = std::clamp(
              positions_[v].x + trace.move_sigma_m * rng.normal(), 0.0,
              field_side_);
          ev.y = std::clamp(
              positions_[v].y + trace.move_sigma_m * rng.normal(), 0.0,
              field_side_);
          positions_[v] = phy::Position{ev.x, ev.y};
          moved.push_back(ev);
          break;
        }
      }
      if (!moved.empty()) {
        rebuild_graph();
        if (routable()) {
          for (const Event& ev : moved) {
            delta.applied.push_back(ev);
            touch(delta, ev.node);
          }
          delta.topology_changed = true;
        } else {
          positions_ = before;
          rebuild_graph();
        }
      }
    }

    // Departures (never below one live demand).
    for (std::size_t k = 0; k < trace.departures_per_epoch; ++k) {
      if (problem_.demands().size() <= 1) break;
      Event ev;
      ev.op = EventOp::Depart;
      ev.demand = rng.next_below(problem_.demands().size());
      apply(ev, delta);
    }

    // Arrivals: distinct live (s, d) pairs between non-failed nodes, the
    // weight cycle continuing where the instance's initial demands left
    // off. A draw whose demand is unroutable (failures can disconnect the
    // live graph) is retried.
    for (std::size_t k = 0; k < trace.arrivals_per_epoch; ++k) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto s = static_cast<graph::NodeId>(rng.next_below(n));
        const auto d = static_cast<graph::NodeId>(rng.next_below(n));
        if (s == d || failed_[s] || failed_[d]) {
          ++redrawn;
          continue;
        }
        bool dup = false;
        for (const graph::Demand& live : problem_.demands())
          dup |= live.source == s && live.destination == d;
        if (dup) {
          ++redrawn;
          continue;
        }
        const double weight =
            weight_cycle_.empty()
                ? 1.0
                : weight_cycle_[arrivals_seen_ % weight_cycle_.size()];
        std::vector<graph::Demand> demands = problem_.demands();
        demands.push_back(graph::Demand{s, d, demand_rate_ * weight});
        problem_.set_demands(std::move(demands));
        if (!routable()) {
          std::vector<graph::Demand> undo = problem_.demands();
          undo.pop_back();
          problem_.set_demands(std::move(undo));
          ++redrawn;
          continue;
        }
        base_weights_.push_back(weight);
        ++arrivals_seen_;
        Event ev;
        ev.op = EventOp::Arrive;
        ev.source = s;
        ev.destination = d;
        ev.weight = weight;
        delta.applied.push_back(ev);
        touch(delta, s);
        touch(delta, d);
        break;
      }
    }

    // Piecewise rate swings: factor in [1−s, 1+s] of the demand's base
    // (weighted) rate — absolute, not cumulative, so a later swing of the
    // same demand replaces the earlier factor.
    for (std::size_t k = 0; k < trace.swings_per_epoch; ++k) {
      if (problem_.demands().empty()) break;
      Event ev;
      ev.op = EventOp::RateSwing;
      ev.demand = rng.next_below(problem_.demands().size());
      ev.factor =
          rng.uniform(1.0 - trace.rate_swing, 1.0 + trace.rate_swing);
      apply(ev, delta);
    }
  }

  std::sort(delta.touched_nodes.begin(), delta.touched_nodes.end());
  delta.touched_nodes.erase(
      std::unique(delta.touched_nodes.begin(), delta.touched_nodes.end()),
      delta.touched_nodes.end());
  obs::count("churn.events_applied", delta.applied.size());
  obs::count("churn.events_redrawn", redrawn);
  return delta;
}

}  // namespace eend::churn
