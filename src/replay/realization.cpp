#include "replay/realization.hpp"

#include <algorithm>

#include "analytical/design_eval.hpp"

namespace eend::replay {

ReplaySettings::ReplaySettings() : stack(net::StackSpec::dsr_active()) {}

analytical::Eq5Params replay_eq5_params(const ReplaySettings& settings,
                                        const energy::RadioCard& card) {
  EEND_REQUIRE_MSG(settings.duration_s > 0.0, "duration must be positive");
  EEND_REQUIRE_MSG(settings.rate_pps > 0.0, "rate must be positive");
  EEND_REQUIRE_MSG(card.bandwidth_bps > 0.0, "bandwidth must be positive");
  const double mean_start =
      0.5 * (settings.flow_start_min_s + settings.flow_start_max_s);
  const double active_window =
      std::max(0.0, settings.duration_s - mean_start);
  analytical::Eq5Params p;
  p.t_idle = settings.duration_s;
  p.t_data_per_packet = (static_cast<double>(settings.payload_bits) /
                         card.bandwidth_bps) *
                        settings.rate_pps * active_window;
  p.include_endpoint_idle = true;
  return p;
}

namespace {

/// Shared tail of both realization entry points: traffic wiring, power
/// masking, validation, the demand/flow cross-check and the analytic side.
/// `sc` arrives with topology + execution knobs set; `card` is the radio
/// the analytic parameters scale against.
DesignRealization finish_realization(net::ScenarioConfig sc,
                                     const core::NetworkDesignProblem& problem,
                                     const opt::CandidateDesign& design,
                                     const ReplaySettings& settings,
                                     const energy::RadioCard& card) {
  EEND_REQUIRE_MSG(design.feasible,
                   "cannot realize an infeasible design (some demand was "
                   "unroutable in its node set)");
  DesignRealization out;

  // ---- traffic: one CBR flow per demand, in demand order. The demand's
  // rate multiplier is the single source of truth — it already drove the
  // Eq. 5 data term through RoutedDemand::packets, and here it becomes the
  // mixed_rate-style multiplier the generators cycle through.
  const auto& demands = problem.demands();
  EEND_REQUIRE_MSG(!demands.empty(), "instance has no demands to realize");
  sc.flow_count = demands.size();
  sc.flow_endpoints.reserve(demands.size());
  sc.rate_multipliers.reserve(demands.size());
  for (const graph::Demand& d : demands) {
    sc.flow_endpoints.emplace_back(d.source, d.destination);
    sc.rate_multipliers.push_back(d.rate);
  }

  // ---- power: everything outside the design's active set goes dark.
  std::vector<char> active(sc.node_count, 0);
  for (const graph::NodeId v : design.nodes) {
    EEND_REQUIRE_MSG(v < sc.node_count, "design node " << v
                     << " out of range for node_count " << sc.node_count);
    active[v] = 1;
  }
  for (std::size_t id = 0; id < sc.node_count; ++id)
    if (!active[id]) sc.powered_off_nodes.push_back(id);
  out.active_nodes = design.nodes.size();
  out.powered_off_nodes = sc.powered_off_nodes.size();

  sc.validate();

  // ---- cross-check: the realized flows must agree with the demands 1:1,
  // or the simulation would silently meter different traffic than the one
  // the search optimized.
  const std::vector<traffic::FlowSpec> flows = net::make_flows(sc);
  EEND_CHECK_MSG(flows.size() == demands.size(),
                 "realized " << flows.size() << " flows for "
                             << demands.size() << " demands");
  for (std::size_t j = 0; j < demands.size(); ++j) {
    EEND_CHECK_MSG(flows[j].source == demands[j].source &&
                       flows[j].destination == demands[j].destination,
                   "flow " << j << " endpoints (" << flows[j].source << " -> "
                           << flows[j].destination
                           << ") disagree with demand (" << demands[j].source
                           << " -> " << demands[j].destination << ")");
    EEND_CHECK_MSG(flows[j].packets_per_s ==
                       settings.rate_pps * demands[j].rate,
                   "flow " << j << " rate " << flows[j].packets_per_s
                           << " != rate_pps * demand multiplier "
                           << settings.rate_pps * demands[j].rate);
  }

  // ---- analytic side under the joule-scaled parameters.
  const analytical::Eq5Params eq5 = replay_eq5_params(settings, card);
  auto routes = problem.try_route_in_subgraph(design.nodes);
  EEND_CHECK_MSG(routes.has_value(),
                 "feasible design failed to re-route during realization");
  out.routes = std::move(*routes);
  out.analytic = analytical::evaluate_eq5(problem.graph(), out.routes, eq5);
  const std::vector<double> loads =
      opt::node_energy_loads(problem.graph(), out.routes, eq5);
  for (const double l : loads)
    out.max_node_load_j = std::max(out.max_node_load_j, l);

  out.scenario = std::move(sc);
  return out;
}

}  // namespace

DesignRealization realize_design(const opt::DesignInstanceSpec& spec,
                                 const opt::DesignInstance& instance,
                                 const opt::CandidateDesign& design,
                                 const ReplaySettings& settings) {
  EEND_REQUIRE_MSG(instance.positions.size() == spec.node_count,
                   "instance/spec mismatch: " << instance.positions.size()
                   << " positions for node_count " << spec.node_count);

  // ---- scenario skeleton: same placement inputs as make_design_instance,
  // so place_nodes reproduces the instance field exactly.
  net::ScenarioConfig sc;
  sc.node_count = spec.node_count;
  sc.field_w = sc.field_h = instance.field_side;
  sc.card = spec.card;
  sc.seed = spec.seed;
  sc.duration_s = settings.duration_s;
  sc.rate_pps = settings.rate_pps;
  sc.payload_bits = settings.payload_bits;
  sc.flow_start_min_s = settings.flow_start_min_s;
  sc.flow_start_max_s = settings.flow_start_max_s;
  sc.battery_capacity_j = settings.battery_capacity_j;

  // ---- cross-check: the realized scenario must regenerate the instance
  // bit-for-bit, or the simulation would silently measure a different
  // network than the one the search optimized.
  const std::vector<phy::Position> placed = net::place_nodes(sc);
  EEND_CHECK_MSG(placed.size() == instance.positions.size(),
                 "realized placement has " << placed.size()
                 << " nodes, instance has " << instance.positions.size());
  for (std::size_t i = 0; i < placed.size(); ++i)
    EEND_CHECK_MSG(placed[i].x == instance.positions[i].x &&
                       placed[i].y == instance.positions[i].y,
                   "realized position of node "
                       << i << " (" << placed[i].x << ", " << placed[i].y
                       << ") != instance position ("
                       << instance.positions[i].x << ", "
                       << instance.positions[i].y
                       << ") — seed/field/card drift between the design "
                          "instance and its realization");

  return finish_realization(std::move(sc), instance.problem, design,
                            settings, spec.card);
}

DesignRealization realize_design_at(
    const std::vector<phy::Position>& positions, double field_side,
    const energy::RadioCard& card, std::uint64_t seed,
    const core::NetworkDesignProblem& problem,
    const opt::CandidateDesign& design, const ReplaySettings& settings) {
  EEND_REQUIRE_MSG(!positions.empty(), "no positions to realize");
  EEND_REQUIRE_MSG(positions.size() == problem.graph().node_count(),
                   "positions/problem mismatch: " << positions.size()
                   << " positions for a " << problem.graph().node_count()
                   << "-node graph");
  EEND_REQUIRE_MSG(field_side > 0.0, "field side must be positive");

  net::ScenarioConfig sc;
  sc.node_count = positions.size();
  sc.field_w = sc.field_h = field_side;
  sc.card = card;
  sc.seed = seed;
  sc.explicit_positions = positions;
  sc.duration_s = settings.duration_s;
  sc.rate_pps = settings.rate_pps;
  sc.payload_bits = settings.payload_bits;
  sc.flow_start_min_s = settings.flow_start_min_s;
  sc.flow_start_max_s = settings.flow_start_max_s;
  sc.battery_capacity_j = settings.battery_capacity_j;

  return finish_realization(std::move(sc), problem, design, settings, card);
}

}  // namespace eend::replay
