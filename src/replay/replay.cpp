#include "replay/replay.hpp"

#include "net/network.hpp"

namespace eend::replay {

ReplayReport run_realization(const DesignRealization& realization,
                             const ReplaySettings& settings) {
  ReplayReport out;
  net::Network network(realization.scenario, settings.stack);
  out.sim = network.run();

  out.analytic_energy_j = realization.analytic.total();
  out.sim_energy_j = out.sim.total_energy_j;
  out.gap_pct =
      out.analytic_energy_j > 0.0
          ? 100.0 * (out.sim_energy_j - out.analytic_energy_j) /
                out.analytic_energy_j
          : 0.0;
  out.sim_j_per_kbit = out.sim.goodput_bit_per_j > 0.0
                           ? 1000.0 / out.sim.goodput_bit_per_j
                           : 0.0;
  out.delivery_ratio = out.sim.delivery_ratio;
  out.first_death_s = out.sim.first_death_s < 0.0
                          ? realization.scenario.duration_s
                          : out.sim.first_death_s;
  out.depleted_nodes = out.sim.depleted_nodes;
  out.active_nodes = realization.active_nodes;
  out.powered_off_nodes = realization.powered_off_nodes;
  out.max_node_load_j = realization.max_node_load_j;
  return out;
}

ReplayReport replay_design(const opt::DesignInstanceSpec& spec,
                           const opt::DesignInstance& instance,
                           const opt::CandidateDesign& design,
                           const ReplaySettings& settings) {
  return run_realization(realize_design(spec, instance, design, settings),
                         settings);
}

}  // namespace eend::replay
