// Replay a realized design through the full MAC/routing/energy stack and
// report simulated-vs-analytic agreement — the cross-check the paper's
// premise rests on (Eq. 5 is only a proxy for what the packet-level
// simulator measures).
//
// A ReplayReport carries both sides: the Eq. 5 analytic energy in joules
// (replay_eq5_params scaling), the simulated network energy, the gap
// between them, simulated joules per delivered kilobit, delivery ratio,
// and — under finite batteries — the network lifetime (time of first
// depletion, horizon when nobody dies). Deterministic: the same
// realization replayed twice is bit-identical in every field.
#pragma once

#include "metrics/run_metrics.hpp"
#include "replay/realization.hpp"

namespace eend::replay {

struct ReplayReport {
  metrics::RunResult sim;            ///< full simulator metrics
  double analytic_energy_j = 0.0;    ///< Eq. 5 total under replay params
  double sim_energy_j = 0.0;         ///< simulated E_network
  /// 100 · (sim − analytic) / analytic: what the proxy misses (control
  /// traffic, MAC overhead, retries, overhearing).
  double gap_pct = 0.0;
  double sim_j_per_kbit = 0.0;       ///< simulated J per delivered Kbit
  double delivery_ratio = 0.0;
  /// Time of first battery depletion; the horizon when no node dies (so
  /// "longer is better" holds with or without deaths). Horizon with
  /// infinite batteries.
  double first_death_s = 0.0;
  std::size_t depleted_nodes = 0;
  std::size_t active_nodes = 0;      ///< design's active set size
  std::size_t powered_off_nodes = 0;
  double max_node_load_j = 0.0;      ///< analytic per-node load peak
};

/// Simulate the realization under settings.stack and derive the report.
ReplayReport run_realization(const DesignRealization& realization,
                             const ReplaySettings& settings);

/// Convenience: realize_design + run_realization in one step.
ReplayReport replay_design(const opt::DesignInstanceSpec& spec,
                           const opt::DesignInstance& instance,
                           const opt::CandidateDesign& design,
                           const ReplaySettings& settings);

}  // namespace eend::replay
