// Design realization: turn a searched opt::CandidateDesign into a runnable
// net::ScenarioConfig — the bridge that lets the packet-level simulator
// judge what the Eq. 5 proxy promised.
//
// The mapping is exact and checked:
//   * the realized scenario regenerates the instance's node placement
//     bit-for-bit (same seed/field/card through net::place_nodes — an
//     EEND_CHECK compares every position);
//   * every node outside the design's active set is powered off
//     (ScenarioConfig::powered_off_nodes: radio dark from t=0, zero energy);
//   * every instance demand becomes one CBR flow between the same endpoints
//     (ScenarioConfig::flow_endpoints, in demand order), its rate derived
//     from the demand's rate multiplier — the single source of truth: the
//     same multipliers feed Eq. 5 (RoutedDemand::packets) and the
//     mixed_rate-style rate_multipliers the traffic generators consume,
//     and an EEND_CHECK verifies the realized flows match the demands 1:1.
//
// replay_eq5_params() scales the analytic objective into joules over the
// replay horizon, so Eq. 5 totals, per-node load budgets and simulated
// battery capacities all share one unit.
#pragma once

#include <cstdint>
#include <vector>

#include "analytical/design_eval.hpp"
#include "net/scenario.hpp"
#include "net/stack.hpp"
#include "opt/design_heuristic.hpp"
#include "opt/design_instance.hpp"

namespace eend::replay {

/// How to drive the simulator when replaying a design.
struct ReplaySettings {
  net::StackSpec stack;              ///< defaults to DSR-Active (set in ctor)
  double duration_s = 300.0;         ///< simulation horizon
  double rate_pps = 2.0;             ///< base CBR rate per unit demand rate
  std::uint32_t payload_bits = 1024; ///< 128-byte packets, the paper's size
  /// Finite per-node battery (J); 0 = infinite. Doubles as the per-node
  /// load budget of the `*_lifetime` heuristics when the replay engine
  /// wires HeuristicOptions::battery_budget_j from it.
  double battery_capacity_j = 0.0;
  double flow_start_min_s = 20.0;    ///< §5.2 start window
  double flow_start_max_s = 25.0;

  ReplaySettings();
};

/// Eq. 5 parameters that express the analytic objective in joules over the
/// replay horizon: t_idle is the full duration (idle draw runs the whole
/// run) and t_data_per_packet folds the per-hop airtime
/// (payload / bandwidth) times the expected packet count of a unit-rate
/// demand (rate_pps · mean active window). A demand with rate multiplier r
/// then contributes r of those packet batches — exactly what the CBR
/// generators inject. include_endpoint_idle is on: simulated endpoints
/// idle and drain batteries like any relay.
analytical::Eq5Params replay_eq5_params(const ReplaySettings& settings,
                                        const energy::RadioCard& card);

/// A design materialized as a runnable scenario plus its analytic side.
struct DesignRealization {
  net::ScenarioConfig scenario;  ///< validated, ready for net::Network
  /// The demands routed inside the design (shortest paths the Eq. 5 score
  /// is built on) — what the simulator's routing is being compared to.
  std::vector<analytical::RoutedDemand> routes;
  analytical::Eq5Breakdown analytic;  ///< Eq. 5 under replay_eq5_params
  double max_node_load_j = 0.0;  ///< largest per-node analytic share (J)
  std::size_t active_nodes = 0;
  std::size_t powered_off_nodes = 0;
};

/// Materialize `design` (which must be feasible) over the instance that
/// `spec` generated. Throws CheckError when the design is infeasible, when
/// the realized placement fails to reproduce the instance positions, or
/// when the realized flows disagree with the instance demands.
DesignRealization realize_design(const opt::DesignInstanceSpec& spec,
                                 const opt::DesignInstance& instance,
                                 const opt::CandidateDesign& design,
                                 const ReplaySettings& settings);

/// Positions-authoritative twin for perturbed topologies (the churn/
/// subsystem's replay-validation epochs): `positions` land in the scenario
/// verbatim (ScenarioConfig::explicit_positions) instead of being
/// regenerated from a seed — no seeded draw reproduces a moved field — and
/// `problem` supplies the current graph and live demand list. Nodes outside
/// the design's active set (failed nodes included: a normalized design
/// never contains one) are powered off; flow start times still draw from
/// `seed`. Same checks as realize_design minus the placement comparison,
/// which explicit positions make tautological.
DesignRealization realize_design_at(const std::vector<phy::Position>& positions,
                                    double field_side,
                                    const energy::RadioCard& card,
                                    std::uint64_t seed,
                                    const core::NetworkDesignProblem& problem,
                                    const opt::CandidateDesign& design,
                                    const ReplaySettings& settings);

}  // namespace eend::replay
