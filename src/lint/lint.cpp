#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace eend::lint {

namespace {

struct RuleInfo {
  Rule rule;
  std::string_view id;
  std::string_view summary;
};

constexpr std::array<RuleInfo, 6> kRules{{
    {Rule::UnorderedIter, "unordered-iter",
     "iteration over an unordered container (order is "
     "implementation-defined)"},
    {Rule::NondetSource, "nondet-source",
     "banned nondeterminism source (rand/random_device/system_clock/"
     "high_resolution_clock/time(nullptr))"},
    {Rule::PtrKey, "ptr-key",
     "ordered container keyed by a pointer (address order is "
     "nondeterministic)"},
    {Rule::FloatAccum, "float-accum",
     "float accumulator (rounding drifts with summation order; use "
     "double)"},
    {Rule::RawTiming, "raw-timing",
     "raw steady_clock outside src/obs/ and bench/ (time through "
     "obs::PhaseTimer)"},
    {Rule::BadAllow, "bad-allow",
     "malformed eend-lint annotation (unknown rule or missing reason)"},
}};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool word_bounded(std::string_view text, std::size_t pos, std::size_t len) {
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  if (pos + len < text.size() && is_ident_char(text[pos + len])) return false;
  return true;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// ------------------------------------------------------------ stripping ---

struct AllowEntry {
  Rule rule;
  int line;  // annotation line; coverage extends to the next code line
};

/// Comments, string literals, char literals and raw strings blanked to
/// spaces (newlines preserved, so offsets and line numbers survive).
/// eend-lint annotations are parsed out of comment text during the pass.
struct Stripped {
  std::string code;
  std::vector<AllowEntry> allows;
  std::vector<Finding> bad_allows;  // file field filled by caller
};

/// Parse annotations out of one comment's text. `line` is the line the
/// comment text starts on; block comments count newlines as they go.
void scan_comment(std::string_view comment, int line, Stripped& out) {
  static constexpr std::string_view kTag = "eend-lint:";
  std::size_t from = 0;
  int cur_line = line;
  std::size_t last_nl_scan = 0;
  while (true) {
    const std::size_t at = comment.find(kTag, from);
    if (at == std::string_view::npos) return;
    for (std::size_t i = last_nl_scan; i < at; ++i)
      if (comment[i] == '\n') ++cur_line;
    last_nl_scan = at;
    from = at + kTag.size();

    const auto bad = [&](std::string msg) {
      Finding f;
      f.rule = Rule::BadAllow;
      f.line = cur_line;
      f.message = std::move(msg);
      out.bad_allows.push_back(std::move(f));
    };

    std::size_t p = from;
    while (p < comment.size() && comment[p] == ' ') ++p;
    static constexpr std::string_view kAllow = "allow(";
    if (p >= comment.size() ||
        comment.compare(p, kAllow.size(), kAllow) != 0) {
      bad("eend-lint annotation without allow(<rule>)");
      continue;
    }
    p += kAllow.size();
    const std::size_t close = comment.find(')', p);
    if (close == std::string_view::npos) {
      bad("unterminated allow( in eend-lint annotation");
      continue;
    }
    const std::string id = trim(comment.substr(p, close - p));
    const auto rule = rule_from_id(id);
    if (!rule || *rule == Rule::BadAllow) {
      bad("allow(" + id + "): unknown rule id");
      continue;
    }
    // The reason is mandatory: everything after ')' up to the end of the
    // annotation's line, minus separator punctuation, must be non-empty.
    std::size_t r = close + 1;
    const std::size_t eol = comment.find('\n', r);
    std::string reason = trim(comment.substr(
        r, (eol == std::string_view::npos ? comment.size() : eol) - r));
    while (!reason.empty() &&
           (reason.front() == '-' || reason.front() == ':' ||
            static_cast<unsigned char>(reason.front()) > 0x7f))
      reason.erase(reason.begin());
    if (trim(reason).empty()) {
      bad("allow(" + id + "): missing reason after the closing parenthesis");
      continue;
    }
    out.allows.push_back(AllowEntry{*rule, cur_line});
  }
}

Stripped strip(std::string_view src) {
  Stripped out;
  out.code.assign(src.size(), ' ');
  int line = 1;
  std::size_t i = 0;
  const auto keep = [&](std::size_t at) { out.code[at] = src[at]; };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = eol == std::string_view::npos ? src.size() : eol;
      scan_comment(src.substr(i + 2, end - i - 2), line, out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t close = src.find("*/", i + 2);
      const std::size_t end =
          close == std::string_view::npos ? src.size() : close + 2;
      scan_comment(src.substr(i + 2, (close == std::string_view::npos
                                          ? src.size()
                                          : close) -
                                         i - 2),
                   line, out);
      for (std::size_t k = i; k < end; ++k)
        if (src[k] == '\n') {
          out.code[k] = '\n';
          ++line;
        }
      i = end;
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"' &&
        (i == 0 || !is_ident_char(src[i - 1]))) {
      std::size_t d = i + 2;
      while (d < src.size() && src[d] != '(' && src[d] != '"' &&
             src[d] != '\n')
        ++d;
      if (d < src.size() && src[d] == '(') {
        const std::string closer =
            ")" + std::string(src.substr(i + 2, d - i - 2)) + "\"";
        const std::size_t close = src.find(closer, d + 1);
        const std::size_t end = close == std::string_view::npos
                                    ? src.size()
                                    : close + closer.size();
        for (std::size_t k = i; k < end; ++k)
          if (src[k] == '\n') {
            out.code[k] = '\n';
            ++line;
          }
        i = end;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      std::size_t k = i + 1;
      while (k < src.size() && src[k] != c && src[k] != '\n') {
        if (src[k] == '\\' && k + 1 < src.size()) ++k;
        ++k;
      }
      i = k < src.size() ? k + 1 : src.size();
      continue;
    }
    keep(i);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------- line lookup ---

struct LineIndex {
  std::vector<std::size_t> starts;  // starts[k] = offset of line k+1

  explicit LineIndex(std::string_view text) {
    starts.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i)
      if (text[i] == '\n') starts.push_back(i + 1);
  }
  int line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), offset);
    return static_cast<int>(it - starts.begin());
  }
  std::string_view line_text(std::string_view text, int line) const {
    if (line < 1 || line > static_cast<int>(starts.size())) return {};
    const std::size_t b = starts[static_cast<std::size_t>(line) - 1];
    const std::size_t e = line < static_cast<int>(starts.size())
                              ? starts[static_cast<std::size_t>(line)] - 1
                              : text.size();
    return text.substr(b, e - b);
  }
};

/// Skip a balanced (...) starting at `open` (which must index '(').
/// Returns the offset one past the matching ')', or npos.
std::size_t skip_parens(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    else if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

/// Skip a balanced <...> starting at `open` ('<'). Template args only —
/// stops pairing on ';' or '{' which cannot appear inside them.
std::size_t skip_angles(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') ++depth;
    else if (c == '>' && --depth == 0) return i + 1;
    else if (c == ';' || c == '{') return std::string_view::npos;
  }
  return std::string_view::npos;
}

std::size_t skip_spaces(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])))
    ++i;
  return i;
}

std::string read_ident(std::string_view code, std::size_t i,
                       std::size_t* end = nullptr) {
  std::size_t b = i;
  while (i < code.size() && is_ident_char(code[i])) ++i;
  if (end) *end = i;
  return std::string(code.substr(b, i - b));
}

bool contains_word(std::string_view text, std::string_view word) {
  std::size_t from = 0;
  while (true) {
    const std::size_t at = text.find(word, from);
    if (at == std::string_view::npos) return false;
    if (word_bounded(text, at, word.size())) return true;
    from = at + 1;
  }
}

// ------------------------------------------------------------- the rules ---

constexpr std::array<std::string_view, 4> kUnorderedTypes{
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void collect_unordered_into(std::string_view code,
                            std::vector<std::string>& names) {
  for (const std::string_view type : kUnorderedTypes) {
    std::size_t from = 0;
    while (true) {
      const std::size_t at = code.find(type, from);
      if (at == std::string_view::npos) break;
      from = at + type.size();
      if (!word_bounded(code, at, type.size())) continue;
      std::size_t i = skip_spaces(code, at + type.size());
      if (i >= code.size() || code[i] != '<') continue;
      i = skip_angles(code, i);
      if (i == std::string_view::npos) continue;
      // Declarator: optional refs/pointers/cv, then the variable name.
      // `>::iterator it` and `using X = ...;` forms yield no name — skipped.
      while (true) {
        i = skip_spaces(code, i);
        if (i < code.size() && (code[i] == '&' || code[i] == '*')) {
          ++i;
          continue;
        }
        std::size_t end = i;
        const std::string word = read_ident(code, i, &end);
        if (word == "const" || word == "volatile") {
          i = end;
          continue;
        }
        if (!word.empty()) {
          const std::size_t next = skip_spaces(code, end);
          // A '(' would make this a function declaration returning the
          // container — the name is not a variable then.
          if (next >= code.size() || code[next] != '(')
            names.push_back(word);
        }
        break;
      }
    }
  }
}

struct Context {
  const SourceFile& file;
  std::string_view code;             // stripped
  const LineIndex& lines;
  const std::set<std::string>& container_names;
  std::vector<Finding>& findings;

  void flag(Rule rule, std::size_t offset, std::string message) const {
    Finding f;
    f.rule = rule;
    f.file = file.path;
    f.line = lines.line_of(offset);
    f.message = std::move(message);
    std::string snippet =
        trim(lines.line_text(file.content, f.line));
    if (snippet.size() > 160) snippet = snippet.substr(0, 157) + "...";
    f.snippet = std::move(snippet);
    findings.push_back(std::move(f));
  }
};

bool mentions_unordered(const Context& ctx, std::string_view expr,
                        std::string* who) {
  if (expr.find("unordered_") != std::string_view::npos) {
    *who = "unordered container expression";
    return true;
  }
  for (const std::string& name : ctx.container_names) {
    if (contains_word(expr, name)) {
      *who = name;
      return true;
    }
  }
  return false;
}

bool calls_begin_on_unordered(const Context& ctx, std::string_view expr,
                              std::string* who) {
  for (const std::string_view fn : {".begin", ".cbegin"}) {
    std::size_t from = 0;
    while (true) {
      const std::size_t at = expr.find(fn, from);
      if (at == std::string_view::npos) break;
      from = at + fn.size();
      // Identify the object the .begin() is called on: the identifier
      // immediately before the '.'.
      std::size_t e = at;
      while (e > 0 && is_ident_char(expr[e - 1])) --e;
      const std::string obj(expr.substr(e, at - e));
      if (!obj.empty() && ctx.container_names.count(obj)) {
        *who = obj;
        return true;
      }
    }
  }
  return false;
}

void rule_unordered_iter(const Context& ctx) {
  const std::string_view code = ctx.code;
  // for (...) — both the range-for and iterator-loop shapes.
  std::size_t from = 0;
  while (true) {
    const std::size_t at = code.find("for", from);
    if (at == std::string_view::npos) break;
    from = at + 3;
    if (!word_bounded(code, at, 3)) continue;
    const std::size_t open = skip_spaces(code, at + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = skip_parens(code, open);
    if (close == std::string_view::npos) continue;
    const std::string_view header = code.substr(open + 1, close - open - 2);

    // Top-level ':' (skipping '::') separates a range-for.
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '}') --depth;
      else if (c == ':' && depth == 0) {
        if (i + 1 < header.size() && header[i + 1] == ':') {
          ++i;
          continue;
        }
        if (i > 0 && header[i - 1] == ':') continue;
        colon = i;
        break;
      }
    }

    std::string who;
    if (colon != std::string_view::npos) {
      const std::string_view range = header.substr(colon + 1);
      if (mentions_unordered(ctx, range, &who))
        ctx.flag(Rule::UnorderedIter, at,
                 "range-for over unordered container '" + who +
                     "': iteration order is implementation-defined");
    } else if (calls_begin_on_unordered(ctx, header, &who)) {
      ctx.flag(Rule::UnorderedIter, at,
               "iterator loop over unordered container '" + who +
                   "': iteration order is implementation-defined");
    }
  }

  // std::for_each(x.begin(), ...) and friends.
  from = 0;
  while (true) {
    const std::size_t at = code.find("for_each", from);
    if (at == std::string_view::npos) break;
    from = at + 8;
    if (!word_bounded(code, at, 8)) continue;
    const std::size_t open = skip_spaces(code, at + 8);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = skip_parens(code, open);
    const std::string_view args =
        code.substr(open + 1, (close == std::string_view::npos
                                   ? code.size()
                                   : close - 1) -
                                  open - 1);
    std::string who;
    if (calls_begin_on_unordered(ctx, args, &who))
      ctx.flag(Rule::UnorderedIter, at,
               "std::for_each over unordered container '" + who +
                   "': iteration order is implementation-defined");
  }
}

void rule_nondet_source(const Context& ctx) {
  const std::string_view code = ctx.code;
  struct Banned {
    std::string_view token;
    std::string_view why;
    bool needs_call;  // must be followed by '('
  };
  static constexpr std::array<Banned, 6> kBanned{{
      {"rand", "seedless PRNG; use the scenario's util::Rng", true},
      {"srand", "global PRNG reseed; use the scenario's util::Rng", true},
      {"random_device",
       "hardware entropy is unreproducible; use the scenario's util::Rng",
       false},
      {"system_clock",
       "wall-clock time; use steady_clock for timing, never in results",
       false},
      // Despite the name, high_resolution_clock is an alias for
      // system_clock on libstdc++ — same wall-clock hazard.
      {"high_resolution_clock",
       "wall-clock-aliased timer; use steady_clock for timing, never in "
       "results",
       false},
      {"gettimeofday",
       "wall-clock time; use steady_clock for timing, never in results",
       true},
  }};
  for (const Banned& b : kBanned) {
    std::size_t from = 0;
    while (true) {
      const std::size_t at = code.find(b.token, from);
      if (at == std::string_view::npos) break;
      from = at + b.token.size();
      if (!word_bounded(code, at, b.token.size())) continue;
      if (b.needs_call) {
        const std::size_t next = skip_spaces(code, at + b.token.size());
        if (next >= code.size() || code[next] != '(') continue;
      }
      ctx.flag(Rule::NondetSource, at,
               "banned nondeterminism source '" + std::string(b.token) +
                   "': " + std::string(b.why));
    }
  }
  // time(nullptr) / time(NULL) / time(0)
  std::size_t from = 0;
  while (true) {
    const std::size_t at = code.find("time", from);
    if (at == std::string_view::npos) break;
    from = at + 4;
    if (!word_bounded(code, at, 4)) continue;
    std::size_t i = skip_spaces(code, at + 4);
    if (i >= code.size() || code[i] != '(') continue;
    i = skip_spaces(code, i + 1);
    std::size_t end = i;
    const std::string arg = read_ident(code, i, &end);
    if (arg != "nullptr" && arg != "NULL" && arg != "0") continue;
    if (skip_spaces(code, end) >= code.size() ||
        code[skip_spaces(code, end)] != ')')
      continue;
    ctx.flag(Rule::NondetSource, at,
             "banned nondeterminism source 'time(" + arg +
                 ")': wall-clock seed; use the scenario's util::Rng");
  }
}

void rule_ptr_key(const Context& ctx) {
  const std::string_view code = ctx.code;
  static constexpr std::array<std::string_view, 4> kOrdered{
      "map", "set", "multimap", "multiset"};
  for (const std::string_view type : kOrdered) {
    std::size_t from = 0;
    while (true) {
      const std::size_t at = code.find(type, from);
      if (at == std::string_view::npos) break;
      from = at + type.size();
      if (!word_bounded(code, at, type.size())) continue;
      const std::size_t open = skip_spaces(code, at + type.size());
      if (open >= code.size() || code[open] != '<') continue;
      if (skip_angles(code, open) == std::string_view::npos) continue;
      // First template argument, at top angle/paren level.
      std::size_t i = open + 1;
      int angle = 0, paren = 0;
      std::size_t arg_end = std::string_view::npos;
      for (; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '<') ++angle;
        else if (c == '>') {
          if (angle == 0) {
            arg_end = i;
            break;
          }
          --angle;
        } else if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == ',' && angle == 0 && paren == 0) {
          arg_end = i;
          break;
        }
      }
      if (arg_end == std::string_view::npos) continue;
      const std::string key = trim(code.substr(open + 1, arg_end - open - 1));
      if (!key.empty() && key.back() == '*')
        ctx.flag(Rule::PtrKey, at,
                 "ordered container keyed by pointer '" + key +
                     "': address order is nondeterministic; key by id or "
                     "use a sorted-by-id vector");
    }
  }
}

void rule_float_accum(const Context& ctx) {
  const std::string_view code = ctx.code;
  std::set<std::string> float_vars;
  std::size_t from = 0;
  while (true) {
    const std::size_t at = code.find("float", from);
    if (at == std::string_view::npos) break;
    from = at + 5;
    if (!word_bounded(code, at, 5)) continue;
    const std::size_t i = skip_spaces(code, at + 5);
    std::size_t end = i;
    const std::string name = read_ident(code, i, &end);
    if (name.empty()) continue;
    const std::size_t next = skip_spaces(code, end);
    // `float f(...)` declares a function, not an accumulator.
    if (next < code.size() && code[next] == '(') continue;
    float_vars.insert(name);
  }
  for (const std::string& name : float_vars) {
    std::size_t pos = 0;
    while (true) {
      const std::size_t at = code.find(name, pos);
      if (at == std::string_view::npos) break;
      pos = at + name.size();
      if (!word_bounded(code, at, name.size())) continue;
      const std::size_t i = skip_spaces(code, at + name.size());
      if (i + 1 < code.size() && code[i] == '+' && code[i + 1] == '=')
        ctx.flag(Rule::FloatAccum, at,
                 "float accumulator '" + name +
                     "': float rounding drifts with summation order; "
                     "accumulate in double");
    }
  }
  // std::accumulate(..., 0.0f) — a float init forces float accumulation
  // regardless of the element type.
  from = 0;
  while (true) {
    const std::size_t at = code.find("accumulate", from);
    if (at == std::string_view::npos) break;
    from = at + 10;
    if (!word_bounded(code, at, 10)) continue;
    const std::size_t open = skip_spaces(code, at + 10);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = skip_parens(code, open);
    if (close == std::string_view::npos) continue;
    const std::string_view args = code.substr(open + 1, close - open - 2);
    // Any top-level argument that is a float literal (ends in f/F after
    // digits) is the init value.
    int depth = 0;
    std::size_t arg_begin = 0;
    for (std::size_t i = 0; i <= args.size(); ++i) {
      const char c = i < args.size() ? args[i] : ',';
      if (c == '(' || c == '<' || c == '[') ++depth;
      else if (c == ')' || c == '>' || c == ']') --depth;
      else if (c == ',' && depth == 0) {
        const std::string arg = trim(args.substr(arg_begin, i - arg_begin));
        arg_begin = i + 1;
        if (arg.size() >= 2 && (arg.back() == 'f' || arg.back() == 'F') &&
            std::isdigit(static_cast<unsigned char>(
                arg[arg.size() - 2]))) {
          ctx.flag(Rule::FloatAccum, at,
                   "std::accumulate with float init '" + arg +
                       "': accumulates in float; use a double init");
          break;
        }
      }
    }
  }
}

bool path_has_segment(std::string_view path, std::string_view seg) {
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t next = path.find('/', pos);
    if (next == std::string_view::npos) next = path.size();
    if (path.substr(pos, next - pos) == seg) return true;
    pos = next + 1;
  }
  return false;
}

void rule_raw_timing(const Context& ctx) {
  // src/obs owns the steady_clock wrappers (PhaseTimer, TraceCollector) and
  // bench binaries time their own loops; everywhere else a raw clock read
  // bypasses the telemetry layer — spans and wall metrics would disagree.
  if (path_has_segment(ctx.file.path, "obs") ||
      path_has_segment(ctx.file.path, "bench"))
    return;
  static constexpr std::string_view kToken = "steady_clock";
  const std::string_view code = ctx.code;
  std::size_t from = 0;
  while (true) {
    const std::size_t at = code.find(kToken, from);
    if (at == std::string_view::npos) break;
    from = at + kToken.size();
    if (!word_bounded(code, at, kToken.size())) continue;
    ctx.flag(Rule::RawTiming, at,
             "raw 'steady_clock' outside src/obs/ and bench/: time through "
             "obs::PhaseTimer so wall metrics and trace spans stay "
             "consistent");
  }
}

// -------------------------------------------------------------- plumbing ---

/// allow(rule) on line L covers L and the next line that carries code.
std::set<std::pair<int, Rule>> coverage(
    const std::vector<AllowEntry>& allows, std::string_view stripped) {
  const LineIndex idx(stripped);
  const auto next_code_line = [&](int line) {
    const int last = static_cast<int>(idx.starts.size());
    for (int l = line + 1; l <= last; ++l) {
      const std::string_view text = idx.line_text(stripped, l);
      if (!trim(text).empty()) return l;
    }
    return line;
  };
  std::set<std::pair<int, Rule>> covered;
  for (const AllowEntry& a : allows) {
    covered.insert({a.line, a.rule});
    covered.insert({next_code_line(a.line), a.rule});
  }
  return covered;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view rule_id(Rule r) {
  for (const RuleInfo& info : kRules)
    if (info.rule == r) return info.id;
  return "unknown";
}

std::string_view rule_summary(Rule r) {
  for (const RuleInfo& info : kRules)
    if (info.rule == r) return info.summary;
  return "";
}

std::optional<Rule> rule_from_id(std::string_view id) {
  for (const RuleInfo& info : kRules)
    if (info.id == id) return info.rule;
  return std::nullopt;
}

std::vector<Rule> all_rules() {
  std::vector<Rule> out;
  for (const RuleInfo& info : kRules) out.push_back(info.rule);
  return out;
}

std::vector<std::string> collect_unordered_names(std::string_view content) {
  std::vector<std::string> names;
  collect_unordered_into(strip(content).code, names);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> lint_source(
    const SourceFile& file,
    const std::vector<std::string>& extra_unordered_names) {
  Stripped stripped = strip(file.content);
  const LineIndex lines(file.content);

  std::set<std::string> names(extra_unordered_names.begin(),
                              extra_unordered_names.end());
  {
    std::vector<std::string> own;
    collect_unordered_into(stripped.code, own);
    names.insert(own.begin(), own.end());
  }

  std::vector<Finding> findings;
  const Context ctx{file, stripped.code, lines, names, findings};
  rule_unordered_iter(ctx);
  rule_nondet_source(ctx);
  rule_ptr_key(ctx);
  rule_float_accum(ctx);
  rule_raw_timing(ctx);

  const auto covered = coverage(stripped.allows, stripped.code);
  std::vector<Finding> kept;
  for (Finding& f : findings)
    if (!covered.count({f.line, f.rule})) kept.push_back(std::move(f));

  for (Finding& f : stripped.bad_allows) {
    f.file = file.path;
    f.snippet = trim(lines.line_text(file.content, f.line));
    kept.push_back(std::move(f));
  }

  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return rule_id(a.rule) < rule_id(b.rule);
            });
  return kept;
}

std::vector<Finding> lint_files(const std::vector<SourceFile>& files) {
  // Header names, keyed by path stem, feed the paired implementation.
  std::map<std::string, std::vector<std::string>> header_names;
  for (const SourceFile& f : files) {
    const std::size_t dot = f.path.rfind('.');
    if (dot == std::string::npos) continue;
    const std::string ext = f.path.substr(dot);
    if (ext == ".hpp" || ext == ".h" || ext == ".hh") {
      auto& slot = header_names[f.path.substr(0, dot)];
      const auto names = collect_unordered_names(f.content);
      slot.insert(slot.end(), names.begin(), names.end());
    }
  }

  std::vector<Finding> all;
  for (const SourceFile& f : files) {
    std::vector<std::string> extra;
    const std::size_t dot = f.path.rfind('.');
    if (dot != std::string::npos) {
      const auto it = header_names.find(f.path.substr(0, dot));
      if (it != header_names.end()) extra = it->second;
    }
    auto found = lint_source(f, extra);
    all.insert(all.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return rule_id(a.rule) < rule_id(b.rule);
            });
  return all;
}

std::string report_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\"tool\":\"eend_lint\",\"files_scanned\":" << files_scanned
      << ",\"count\":" << findings.size() << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << rule_id(f.rule) << "\",\"file\":\""
        << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"message\":\"" << json_escape(f.message)
        << "\",\"snippet\":\"" << json_escape(f.snippet) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace eend::lint
