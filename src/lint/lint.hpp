// eend_lint — the repo's determinism / correctness contract, statically
// enforced.
//
// Every pinned result (the Figs 7-16 / Table 2 goldens, the design-search
// and replay families) relies on output being byte-identical for any
// --jobs. The rules below catch the idioms that historically break that
// contract, or memory-safety hygiene around it:
//
//   unordered-iter  iteration over std::unordered_{map,set,multimap,
//                   multiset} (range-for, iterator loops, std::for_each):
//                   iteration order is implementation-defined and silently
//                   leaks into tie-breaks and emitted tables.
//   nondet-source   banned nondeterminism sources: std::rand/srand,
//                   std::random_device, std::chrono::system_clock,
//                   std::chrono::high_resolution_clock (an alias for
//                   system_clock on the pinned libstdc++ toolchain),
//                   time(nullptr), gettimeofday. Seeded util::Rng and
//                   steady_clock are the sanctioned alternatives.
//   ptr-key         std::map/set/multimap/multiset keyed by a pointer:
//                   address order changes run to run.
//   float-accum     float (not double) accumulators (`float x; ... x += `)
//                   and std::accumulate with a float literal init: float
//                   rounding drifts with summation order — the PR 1 fig7
//                   R/B crash class.
//   raw-timing      std::chrono::steady_clock outside src/obs/ and bench/:
//                   ad-hoc timers bypass the telemetry layer — time through
//                   obs::PhaseTimer so wall metrics and trace spans stay
//                   one mechanism. obs/ owns the sanctioned call sites and
//                   bench binaries time themselves.
//   bad-allow       a malformed eend-lint annotation (unknown rule id or
//                   missing reason) — so the escape hatch cannot rot.
//
// The escape hatch: a comment of the form
//
//   // eend-lint: allow(unordered-iter) — why this site is order-free
//
// suppresses that rule on the annotation's own line and on the next line
// that carries code (so a multi-line explanation block above the loop
// works). The reason text after the closing parenthesis is mandatory.
//
// The engine is lexical by design: it strips comments, string/char
// literals and raw strings, then pattern-matches the remaining code. That
// keeps it dependency-free (no libclang in the image), fast enough to run
// as a ctest case, and — because it sees headers and sources as plain text
// — immune to build-configuration blind spots. The cost is a small
// false-positive surface, which is what allow() is for.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eend::lint {

enum class Rule {
  UnorderedIter,
  NondetSource,
  PtrKey,
  FloatAccum,
  RawTiming,
  BadAllow,
};

/// Stable rule identifier used in diagnostics and allow() annotations.
std::string_view rule_id(Rule r);

/// One-line description for --rules / reports.
std::string_view rule_summary(Rule r);

std::optional<Rule> rule_from_id(std::string_view id);

/// Every enforceable rule, in diagnostic order.
std::vector<Rule> all_rules();

struct Finding {
  Rule rule;
  std::string file;
  int line = 0;          ///< 1-based
  std::string message;   ///< human diagnostic, names the offending symbol
  std::string snippet;   ///< trimmed source line

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// A file handed to the engine. `path` is used verbatim in diagnostics.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Names of variables/members declared with an unordered container type in
/// `content`. Exposed so callers can thread header declarations into the
/// matching implementation file (the engine has no cross-TU view).
std::vector<std::string> collect_unordered_names(std::string_view content);

/// Lint one file. `extra_unordered_names` are identifiers known to be
/// unordered containers from elsewhere (typically the paired header).
std::vector<Finding> lint_source(
    const SourceFile& file,
    const std::vector<std::string>& extra_unordered_names = {});

/// Lint a set of files with automatic header/impl pairing: unordered names
/// declared in dir/stem.hpp (or .h) are visible when linting dir/stem.cpp.
/// Findings are sorted by (file, line, rule id).
std::vector<Finding> lint_files(const std::vector<SourceFile>& files);

/// JSON report (machine-readable twin of the stdout diagnostics).
std::string report_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned);

}  // namespace eend::lint
