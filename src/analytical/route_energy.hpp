// Closed-form route-energy model of Section 5.1 (Eqs. 13-15).
//
// For two endpoints distance D apart with m-1 equally spaced relays (m hops),
// total route power (energy per unit time, Eq. 14 divided by t) is
//
//   P_r(m) = (R/B) * [ sum_i Ptx(D/m) + m * Prx ]
//          + (m + 1 - 2 m (R/B)) * Pidle
//
// Minimizing over m gives the characteristic hop count (Eq. 15):
//
//   m_opt = D * ( (n-1) alpha2 / (Pbase + Prx + (1-2(R/B))/(R/B) * Pidle) )^{1/n}
//
// Relays only pay off when floor(m_opt) >= 2; Fig. 7 shows no surveyed card
// reaches that for any utilization.
#pragma once

#include "energy/radio_card.hpp"

namespace eend::analytical {

/// Route power (W) with m equal hops across distance D at utilization rb =
/// R/B (Eq. 14 normalized by t). m >= 1; 0 < rb <= 0.5 (a node both sends
/// and receives each packet, so utilization beyond 1/2 is infeasible).
double route_power(const energy::RadioCard& card, int hops, double distance_m,
                   double rb);

/// Continuous minimizer m_opt of Eq. 15.
double mopt_continuous(const energy::RadioCard& card, double distance_m,
                       double rb);

/// The paper's integral rounding: ceil when m_opt < 1, floor otherwise.
int characteristic_hop_count(const energy::RadioCard& card, double distance_m,
                             double rb);

/// Brute-force integer minimizer of route_power over 1..max_hops — test
/// oracle for Eq. 15 and used to sanity-check the convexity argument.
int brute_force_best_hops(const energy::RadioCard& card, double distance_m,
                          double rb, int max_hops = 64);

/// Does using relays (>= 2 hops) beat direct transmission for this card /
/// distance / utilization? ("characteristic hop count must be greater than
/// two to save energy through relays")
bool relays_save_energy(const energy::RadioCard& card, double distance_m,
                        double rb);

}  // namespace eend::analytical
