#include "analytical/steiner_cases.hpp"

namespace eend::analytical {

namespace {

/// Edge weight per packet-hop: one transmission at Ptx = alpha*z plus one
/// reception at Prx = z.
double hop_weight(const CaseParams& p) { return (p.alpha + 1.0) * p.z; }

void check_params(const CaseParams& p) {
  EEND_REQUIRE(p.k >= 1);
  EEND_REQUIRE(p.z > 0.0 && p.alpha >= 0.0 && p.packets >= 0.0);
}

}  // namespace

SteinerCase make_st1(const CaseParams& p) {
  check_params(p);
  SteinerCase c;
  const double w = hop_weight(p);
  // Nodes: sink, sources 1..k, relays i and j (j unused by this routing but
  // present in the network of Fig. 1).
  const graph::NodeId sink = c.g.add_node(0.0);
  std::vector<graph::NodeId> src(static_cast<std::size_t>(p.k));
  for (int s = 0; s < p.k; ++s) src[s] = c.g.add_node(p.z);
  const graph::NodeId relay_i = c.g.add_node(p.z);
  const graph::NodeId relay_j = c.g.add_node(p.z);

  // Chain among sources, source1 - i - sink, and the unused star via j.
  for (int s = 0; s + 1 < p.k; ++s) c.g.add_edge(src[s], src[s + 1], w);
  c.g.add_edge(src[0], relay_i, w);
  c.g.add_edge(relay_i, sink, w);
  for (int s = 0; s < p.k; ++s) c.g.add_edge(src[s], relay_j, w);
  c.g.add_edge(relay_j, sink, w);

  // ST1 routing: source l walks down the chain to source 1, then i, sink.
  for (int s = 0; s < p.k; ++s) {
    RoutedDemand rd;
    rd.demand = {src[s], sink, 1.0};
    for (int t = s; t >= 0; --t) rd.path.push_back(src[t]);
    rd.path.push_back(relay_i);
    rd.path.push_back(sink);
    rd.packets = p.packets;
    c.routes.push_back(std::move(rd));
  }
  c.sources = src;
  c.destinations = {sink};
  c.relays = {relay_i};
  return c;
}

SteinerCase make_st2(const CaseParams& p) {
  check_params(p);
  SteinerCase c = make_st1(p);  // same network (Fig. 1)
  c.routes.clear();
  // Node layout from make_st1: 0 = sink, 1..k = sources, k+1 = i, k+2 = j.
  const graph::NodeId sink = 0;
  const graph::NodeId relay_j = static_cast<graph::NodeId>(p.k + 2);
  for (int s = 0; s < p.k; ++s) {
    RoutedDemand rd;
    rd.demand = {c.sources[s], sink, 1.0};
    rd.path = {c.sources[s], relay_j, sink};
    rd.packets = p.packets;
    c.routes.push_back(std::move(rd));
  }
  c.relays = {relay_j};
  return c;
}

SteinerCase make_sf1(const CaseParams& p) {
  check_params(p);
  SteinerCase c;
  const double w = hop_weight(p);
  const graph::NodeId center = c.g.add_node(p.z);  // S0
  for (int i = 0; i < p.k; ++i) {
    const graph::NodeId si = c.g.add_node(p.z);
    const graph::NodeId di = c.g.add_node(p.z);
    const graph::NodeId ri = c.g.add_node(p.z);  // dedicated relay
    c.g.add_edge(si, ri, w);
    c.g.add_edge(ri, di, w);
    c.g.add_edge(si, center, w);
    c.g.add_edge(center, di, w);
    RoutedDemand rd;
    rd.demand = {si, di, 1.0};
    rd.path = {si, ri, di};
    rd.packets = p.packets;
    c.routes.push_back(std::move(rd));
    c.sources.push_back(si);
    c.destinations.push_back(di);
    c.relays.push_back(ri);
  }
  (void)center;
  return c;
}

SteinerCase make_sf2(const CaseParams& p) {
  check_params(p);
  SteinerCase c = make_sf1(p);  // same network (Fig. 4)
  c.routes.clear();
  c.relays = {0};  // S0 is node 0 in make_sf1's layout
  for (int i = 0; i < p.k; ++i) {
    RoutedDemand rd;
    rd.demand = {c.sources[i], c.destinations[i], 1.0};
    rd.path = {c.sources[i], 0, c.destinations[i]};
    rd.packets = p.packets;
    c.routes.push_back(std::move(rd));
  }
  return c;
}

double est1_closed(const CaseParams& p, double t_idle, double t_data) {
  const double k = p.k;
  return 1.0 * t_idle * p.z +
         p.packets * k * (k + 3.0) / 2.0 * t_data * (p.alpha + 1.0) * p.z;
}

double est2_closed(const CaseParams& p, double t_idle, double t_data) {
  const double k = p.k;
  return 1.0 * t_idle * p.z +
         p.packets * 2.0 * k * t_data * (p.alpha + 1.0) * p.z;
}

double esf1_closed(const CaseParams& p, double t_idle, double t_data) {
  const double k = p.k;
  return k * t_idle * p.z +
         p.packets * 2.0 * k * t_data * (p.alpha + 1.0) * p.z;
}

double esf2_closed(const CaseParams& p, double t_idle, double t_data) {
  const double k = p.k;
  return 1.0 * t_idle * p.z +
         p.packets * 2.0 * k * t_data * (p.alpha + 1.0) * p.z;
}

double sf_idle_ratio_closed(int k) {
  EEND_REQUIRE(k >= 1);
  return 3.0 * k / (2.0 * k + 1.0);
}

}  // namespace eend::analytical
