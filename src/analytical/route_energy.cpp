#include "analytical/route_energy.hpp"

#include <cmath>

namespace eend::analytical {

double route_power(const energy::RadioCard& card, int hops, double distance_m,
                   double rb) {
  EEND_REQUIRE(hops >= 1);
  EEND_REQUIRE(distance_m > 0.0);
  EEND_REQUIRE_MSG(rb > 0.0 && rb <= 0.5, "utilization R/B must be in (0,0.5]");
  const double m = hops;
  const double hop_d = distance_m / m;
  const double tx_sum = m * card.transmit_power(hop_d);
  const double rx_sum = m * card.p_rx;
  const double idle = (m + 1.0 - 2.0 * m * rb) * card.p_idle;
  return rb * (tx_sum + rx_sum) + idle;
}

double mopt_continuous(const energy::RadioCard& card, double distance_m,
                       double rb) {
  EEND_REQUIRE(distance_m > 0.0);
  EEND_REQUIRE_MSG(rb > 0.0 && rb <= 0.5, "utilization R/B must be in (0,0.5]");
  const double n = card.path_loss_n;
  const double denom =
      card.p_base + card.p_rx + (1.0 - 2.0 * rb) / rb * card.p_idle;
  EEND_CHECK(denom > 0.0);
  return distance_m * std::pow((n - 1.0) * card.alpha2 / denom, 1.0 / n);
}

int characteristic_hop_count(const energy::RadioCard& card, double distance_m,
                             double rb) {
  const double m = mopt_continuous(card, distance_m, rb);
  // Paper: "it is ceil(m_opt) if m_opt < 1, and floor(m_opt) if m_opt >= 1".
  return m < 1.0 ? static_cast<int>(std::ceil(m))
                 : static_cast<int>(std::floor(m));
}

int brute_force_best_hops(const energy::RadioCard& card, double distance_m,
                          double rb, int max_hops) {
  EEND_REQUIRE(max_hops >= 1);
  int best = 1;
  double best_power = route_power(card, 1, distance_m, rb);
  for (int m = 2; m <= max_hops; ++m) {
    const double p = route_power(card, m, distance_m, rb);
    if (p < best_power) {
      best_power = p;
      best = m;
    }
  }
  return best;
}

bool relays_save_energy(const energy::RadioCard& card, double distance_m,
                        double rb) {
  return characteristic_hop_count(card, distance_m, rb) >= 2;
}

}  // namespace eend::analytical
