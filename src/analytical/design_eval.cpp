#include "analytical/design_eval.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace eend::analytical {

Eq5Breakdown evaluate_eq5(const graph::Graph& g,
                          std::span<const RoutedDemand> routes,
                          const Eq5Params& params) {
  Eq5Breakdown out;
  std::set<graph::NodeId> active;
  std::set<graph::NodeId> endpoints;
  std::map<std::pair<graph::NodeId, graph::NodeId>, double> edge_packets;

  for (const RoutedDemand& r : routes) {
    EEND_REQUIRE_MSG(r.path.size() >= 1, "empty path");
    EEND_REQUIRE(r.path.front() == r.demand.source &&
                 r.path.back() == r.demand.destination);
    endpoints.insert(r.demand.source);
    endpoints.insert(r.demand.destination);
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      active.insert(r.path[i]);
      if (i + 1 < r.path.size()) {
        EEND_REQUIRE_MSG(g.has_edge(r.path[i], r.path[i + 1]),
                         "path hop " << r.path[i] << "->" << r.path[i + 1]
                                     << " is not an edge");
        const auto key = std::minmax(r.path[i], r.path[i + 1]);
        edge_packets[std::pair{key.first, key.second}] += r.packets;
      }
    }
  }

  out.active_nodes = active.size();
  for (graph::NodeId v : active) {
    const bool endpoint = endpoints.count(v) > 0;
    if (!endpoint) ++out.relay_nodes;
    if (endpoint && !params.include_endpoint_idle) continue;
    out.idle += params.t_idle * g.node_weight(v);
  }
  for (const auto& [uv, pkts] : edge_packets) {
    const double w = g.edge_weight_between(uv.first, uv.second);
    EEND_CHECK(w < graph::kInfCost);
    out.data += params.t_data_per_packet * pkts * w;
  }
  return out;
}

}  // namespace eend::analytical
