// The Section 3 worked examples: two minimum-weight Steiner trees (ST1, ST2;
// Figs. 1-3) for the single-sink network and two Steiner forests (SF1, SF2;
// Figs. 4-6) for the multi-commodity network. Both pairs have equal weight
// under the MPC-style reduction yet deviate in true E_network — the paper's
// argument for why tree structure must be communication-aware (ST) and why
// endpoint idle costs matter (SF).
//
// Constructors build the explicit graphs and routed demands; closed forms
// implement Eqs. 6-9 for cross-checking the generic Eq. 5 evaluator.
#pragma once

#include "analytical/design_eval.hpp"
#include "graph/graph.hpp"

namespace eend::analytical {

/// One constructed case: the network graph, the routing that realizes the
/// tree/forest, and the ids of the special nodes for inspection.
struct SteinerCase {
  graph::Graph g;
  std::vector<RoutedDemand> routes;
  std::vector<graph::NodeId> sources;
  std::vector<graph::NodeId> destinations;
  std::vector<graph::NodeId> relays;  ///< relay nodes used by this routing
};

/// Common parameters: Ptx(u,v) = alpha * z, Prx = Pidle = z, each source
/// sends `packets` packets (paper uses 1).
struct CaseParams {
  int k = 4;            ///< number of sources / pairs (k >= 1)
  double alpha = 2.0;   ///< transmit cost multiplier
  double z = 1.0;       ///< unit power
  double packets = 1.0;
};

/// Fig. 2 — ST1: sources form a chain k -> k-1 -> ... -> 1 -> relay i -> sink.
SteinerCase make_st1(const CaseParams& p);

/// Fig. 3 — ST2: every source reaches the sink through the single relay j.
SteinerCase make_st2(const CaseParams& p);

/// Fig. 5 — SF1: each pair (Si, Di) routes through its own dedicated relay.
SteinerCase make_sf1(const CaseParams& p);

/// Fig. 6 — SF2: every pair routes through the shared center node S0.
SteinerCase make_sf2(const CaseParams& p);

/// Closed forms (Eqs. 6-9). t_idle / t_data are the durations of Section 3.
double est1_closed(const CaseParams& p, double t_idle, double t_data);  // Eq. 6
double est2_closed(const CaseParams& p, double t_idle, double t_data);  // Eq. 7
double esf1_closed(const CaseParams& p, double t_idle, double t_data);  // Eq. 8
double esf2_closed(const CaseParams& p, double t_idle, double t_data);  // Eq. 9

/// The constant idle-cost ratio 3k/(2k+1) of SF1 vs SF2 when endpoint
/// idling is charged.
double sf_idle_ratio_closed(int k);

}  // namespace eend::analytical
