// Generic evaluator for the simplified network-energy objective of
// Section 3 (Eq. 5):
//
//   E_network = sum_{u in F} t_idle(u) * c(u) + sum_{e in F} t_data(e) * w(e)
//
// given a subgraph F implied by a set of routed demands. Sources and
// destinations have c = 0 by definition ("since all (si, di) are required
// to be in F, c(si) = 0 and c(di) = 0"); an option re-includes them for the
// paper's 3k/(2k+1) observation about SF1 vs SF2.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace eend::analytical {

/// One demand together with the path assigned to it and how many packets it
/// injects over the evaluation horizon.
struct RoutedDemand {
  graph::Demand demand;
  std::vector<graph::NodeId> path;  ///< node sequence source..destination
  double packets = 1.0;
};

struct Eq5Params {
  double t_idle = 1.0;             ///< idle duration charged per active node
  double t_data_per_packet = 1.0;  ///< airtime per packet per hop
  /// When true, sources/destinations also pay their idle weight (used to
  /// reproduce the 3k/(2k+1) constant-ratio observation for SF1 vs SF2).
  bool include_endpoint_idle = false;
};

struct Eq5Breakdown {
  double idle = 0.0;
  double data = 0.0;
  double total() const { return idle + data; }
  std::size_t active_nodes = 0;  ///< |F| (nodes carrying or relaying flows)
  std::size_t relay_nodes = 0;   ///< active nodes that are not endpoints
};

/// Evaluate Eq. 5 for the subgraph induced by the routed demands.
/// Node weights come from Graph::node_weight (c(u)); edge traversal cost
/// per packet comes from the edge weight (w(e)).
/// Every path must be a valid walk in g (consecutive nodes adjacent).
Eq5Breakdown evaluate_eq5(const graph::Graph& g,
                          std::span<const RoutedDemand> routes,
                          const Eq5Params& params);

}  // namespace eend::analytical
