// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events execute in (time, insertion-seq)
// order so runs are exactly reproducible for a given seed. Cancellation is
// O(1) amortized via tombstones: the handler map drops the entry, stale heap
// records are skipped on pop, and the heap is compacted in place whenever
// tombstones outnumber live entries — bounding memory on cancel-heavy
// workloads (PSM/MAC keep-alive timer churn).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace eend::sim {

/// Simulation time in seconds.
using Time = double;

/// Handle for a scheduled event; used to cancel.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// The event-driven simulator. All protocol stacks, MACs and traffic
/// generators schedule closures on one Simulator instance per experiment.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Absolute-time scheduling. `at` must not be in the past.
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Relative scheduling: fire `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    EEND_REQUIRE_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op (returns false).
  bool cancel(EventId id);

  bool pending(EventId id) const { return handlers_.count(id) > 0; }

  Time now() const { return now_; }

  /// Execute events until the queue empties or `end` is passed. The clock
  /// is left at min(end, last event time); events at exactly `end` run.
  void run_until(Time end);

  /// Execute every remaining event (use with care: traffic generators that
  /// reschedule forever will never drain).
  void run_all();

  /// Execute the single next event; returns false if the queue is empty.
  bool step();

  std::size_t queue_size() const { return handlers_.size(); }

  /// Heap storage size, including not-yet-reclaimed cancellation
  /// tombstones. Compaction keeps this within a small constant plus twice
  /// queue_size(); exposed so tests can assert the bound.
  std::size_t heap_size() const { return heap_.size(); }

  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    EventId id;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Don't bother compacting heaps smaller than this: the rebuild has a
  /// fixed cost and tiny heaps can't hold meaningful garbage.
  static constexpr std::size_t kCompactMin = 64;

  void pop_top();
  void compact_if_stale();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;   // min-heap via std::*_heap with std::greater
  std::size_t stale_ = 0;     // heap entries whose handler is gone
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

/// A restartable one-shot timer — the idiom behind ODPM keep-alive timers,
/// route-request timeouts and beacon schedules. Restarting replaces any
/// pending expiry.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_(&sim), on_expire_(std::move(on_expire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm to fire `delay` seconds from now.
  void restart(Time delay);

  /// Arm only if the new expiry is later than the current one ("extend").
  void extend_to(Time delay);

  void cancel();

  bool armed() const { return id_ != kInvalidEvent && sim_->pending(id_); }

  /// Absolute expiry time; only meaningful while armed().
  Time expiry() const { return expiry_; }

 private:
  Simulator* sim_;
  std::function<void()> on_expire_;
  EventId id_ = kInvalidEvent;
  Time expiry_ = 0.0;
};

}  // namespace eend::sim
