// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events execute in (time, insertion-seq)
// order so runs are exactly reproducible for a given seed. The engine is
// built to be allocation-free in steady state:
//
//   * ordering     — a ladder queue (sim/ladder_queue.hpp): near-future
//     timer churn drains through sorted bucket promotions, far-future
//     events wait in a sorted-overflow top rung; amortized O(1) per event
//     versus the O(log n) binary heap it replaced (the heap survives as
//     sim/baseline_simulator.hpp for benchmarking and differential tests).
//   * handlers     — a slot map with a free list instead of an
//     unordered_map<EventId, std::function>: EventId encodes (slot,
//     generation), so schedule/cancel/pending are array lookups and slot
//     reuse invalidates stale ids without hashing.
//   * closures     — small-buffer storage inside the slot (<= 48 bytes for
//     trivially-copyable captures, <= 32 for non-trivial ones — which
//     covers the [this]-capture timer/MAC/traffic closures); larger
//     captures (the channel's in-flight Frame closure) go to a size-class
//     MemoryPool and are recycled, not freed. A slot is exactly one cache
//     line.
//
// Cancellation is O(1): the slot is released immediately and the queue
// entry becomes a tombstone, skipped on pop; the queue is compacted in
// place once tombstones reach two-thirds of the stored entries — bounding
// memory on cancel-heavy workloads (PSM/MAC keep-alive timer churn).
//
// The same pool also backs mac::Packet payloads (Packet::wrap), so the
// routing-message bodies on the transmit path recycle through it too;
// Simulator::pool() is the accessor. The pool outlives every closure the
// engine holds (destroyed with the Simulator, after all slots are drained).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

#include "obs/obs.hpp"
#include "sim/ladder_queue.hpp"
#include "util/check.hpp"
#include "util/pool.hpp"

namespace eend::obs {
class CounterRegistry;
}  // namespace eend::obs

namespace eend::sim {

/// Simulation time in seconds.
using Time = double;

/// Handle for a scheduled event; used to cancel. Encodes (slot index,
/// generation): a slot's generation bumps on every release, so handles to
/// fired or cancelled events are recognized as stale in O(1).
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// The event-driven simulator. All protocol stacks, MACs and traffic
/// generators schedule closures on one Simulator instance per experiment.
class Simulator {
 public:
  /// Closure bytes stored inline in a slot; larger captures are pooled.
  /// Non-trivial closures reserve the buffer tail for their destroy/move
  /// hooks, leaving kInlineNonTrivial bytes of capture space.
  static constexpr std::size_t kInlineClosure = 48;
  static constexpr std::size_t kInlineNonTrivial = 32;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Absolute-time scheduling. `at` must not be in the past.
  template <typename F>
  EventId schedule_at(Time at, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "event handlers are void() callables");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    EEND_REQUIRE_MSG(at >= now_, "scheduling into the past: at="
                                     << at << " now=" << now_);
    if constexpr (std::is_constructible_v<bool, const Fn&>)
      EEND_REQUIRE(static_cast<bool>(fn));  // null std::function / fn ptr
    const std::uint32_t si = acquire_slot();
    Slot& s = slots_[si];
    // Trivially-copyable closures fit the whole buffer; non-trivial ones
    // leave room for their Aux record; everything else (and over-aligned
    // types) goes to the pool. The dominant [this, ctx...] capture case
    // writes invoke + kind + the bytes — one cache line, nothing else.
    constexpr bool kTrivial = std::is_trivially_copyable_v<Fn> &&
                              std::is_trivially_destructible_v<Fn>;
    constexpr bool kFitsInline =
        alignof(Fn) <= alignof(double) &&
        sizeof(Fn) <= (kTrivial ? kInlineClosure : kInlineNonTrivial);
    if constexpr (kFitsInline) {
      ::new (static_cast<void*>(s.buf)) Fn(std::forward<F>(fn));
      if constexpr (kTrivial) {
        kinds_[si] = kKindInlineTrivial;
      } else {
        const Aux aux{
            [](void* p) { static_cast<Fn*>(p)->~Fn(); },
            [](void* dst, void* src) {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            }};
        std::memcpy(s.buf + kInlineNonTrivial, &aux, sizeof(aux));
        kinds_[si] = kKindInlineAux;
      }
    } else {
      pooled_closures_.add();
      void* block = pool_.allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(fn));
      const OverflowRec rec{
          block, std::is_trivially_destructible_v<Fn>
                     ? nullptr
                     : +[](void* p) { static_cast<Fn*>(p)->~Fn(); }};
      std::memcpy(s.buf, &rec, sizeof(rec));
      kinds_[si] = static_cast<std::uint32_t>(sizeof(Fn));
    }
    s.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
    const std::uint32_t gen = gens_[si];
    queue_.push(QEntry{at, next_seq_++, si, gen});
    ++live_;
    return make_id(si, gen);
  }

  /// Relative scheduling: fire `delay` seconds from now (delay >= 0).
  template <typename F>
  EventId schedule_in(Time delay, F&& fn) {
    EEND_REQUIRE_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op (returns false). O(1): the queue
  /// entry is left behind as a tombstone. For trivially-destructible
  /// closures (the common case) this touches only the packed gens_/kinds_
  /// arrays — never the slot's cache line.
  bool cancel(EventId id) {
    const std::uint32_t si = slot_of(id);
    if (si >= slots_.size() || gens_[si] != gen_of(id)) return false;
    const std::uint32_t kind = kinds_[si];
    if (kind != kKindInlineTrivial) destroy_closure(slots_[si], kind);
    release_slot(si);
    --live_;
    ++stale_;  // the queue entry is now a tombstone
    cancelled_.add();
    compact_if_stale();
    return true;
  }

  // A matching generation alone proves liveness: gens_[si] bumps on every
  // release, and the current value is only ever handed out (as an id) by a
  // schedule that made the slot live again.
  bool pending(EventId id) const {
    const std::uint32_t si = slot_of(id);
    return si < slots_.size() && gens_[si] == gen_of(id);
  }

  Time now() const { return now_; }

  /// Execute every event with time <= `end` (events at exactly `end` run),
  /// then leave the clock at exactly `end` — even when the queue drained
  /// before `end` or was empty to begin with. Scheduling "between the last
  /// event and end" after the call therefore throws: that time has passed.
  void run_until(Time end);

  /// Execute every remaining event (use with care: traffic generators that
  /// reschedule forever will never drain).
  void run_all();

  /// Execute the single next event; returns false if the queue is empty.
  bool step();

  std::size_t queue_size() const { return live_; }

  /// Queue storage size, including not-yet-reclaimed cancellation
  /// tombstones. Compaction keeps this within a small constant plus three
  /// times queue_size(); exposed so tests can assert the bound.
  std::size_t heap_size() const { return queue_.stored(); }

  std::uint64_t executed_events() const { return executed_; }

  /// The simulation's size-class memory pool: closure overflow blocks and
  /// mac::Packet payloads recycle through it. Single-threaded, like the
  /// simulator itself; it outlives every object the engine stores.
  util::MemoryPool& pool() { return pool_; }

  /// Publish this simulation's telemetry (sim.*, sim.ladder.*, pool.*)
  /// into `reg`. Totals derive only from simulated work, so they are a
  /// pure function of the scenario and seed. No-op with EEND_OBS off.
  void publish_counters(obs::CounterRegistry& reg) const;

  /// Sampled sim-core trace spans: emit one "sim.batch" span per
  /// `every_events` fired events on logical trace lane (pid, tid).
  /// 0 disables (the default — the per-event cost is then one load+test).
  void set_trace_sampling(std::uint64_t every_events, std::uint32_t pid,
                          std::uint32_t tid);

 private:
  /// Destroy/relocate hooks for non-trivial inline closures, stored in the
  /// tail of the slot buffer (read back via memcpy).
  struct Aux {
    void (*destroy)(void*);
    void (*relocate)(void*, void*);  // move-construct dst from src
  };
  /// Pooled-closure record, stored at the head of the slot buffer.
  struct OverflowRec {
    void* block;
    void (*destroy)(void*);  // null = trivially destructible
  };

  static constexpr std::uint32_t kKindInlineTrivial = 0;
  static constexpr std::uint32_t kKindInlineAux = 1;
  // kind >= 2: pooled closure; the value is the closure's byte size
  // (always > kInlineClosure, so the encodings cannot collide).

  /// Exactly one aligned cache line, holding only what fire() needs: the
  /// invoke trampoline and the closure bytes. Liveness, generation, kind,
  /// and the free list all live in packed side arrays, so schedule/fire
  /// touch one slot line and cancel (trivial case) touches none.
  struct alignas(64) Slot {
    void (*invoke)(void*) = nullptr;
    alignas(double) unsigned char buf[kInlineClosure];
  };
  static_assert(sizeof(Slot) == 64, "Slot must stay one cache line");

  /// Don't bother compacting queues smaller than this: the sweep has a
  /// fixed cost and tiny queues can't hold meaningful garbage.
  static constexpr std::size_t kCompactMin = 64;

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t si = free_.back();
      free_.pop_back();
      slot_reuses_.add();
      return si;
    }
    return grow_slots();
  }

  void release_slot(std::uint32_t si) {
    // Stale EventIds must never match again: bump the generation (skipping
    // 0 so no id ever equals kInvalidEvent).
    if (++gens_[si] == 0) gens_[si] = 1;
    free_.push_back(si);
  }

  void destroy_closure(Slot& s, std::uint32_t kind) {
    if (kind == kKindInlineTrivial) return;
    if (kind == kKindInlineAux) {
      Aux aux;
      std::memcpy(&aux, s.buf + kInlineNonTrivial, sizeof(aux));
      aux.destroy(static_cast<void*>(s.buf));
      return;
    }
    OverflowRec rec;
    std::memcpy(&rec, s.buf, sizeof(rec));
    if (rec.destroy != nullptr) rec.destroy(rec.block);
    pool_.release(rec.block, kind);
  }

  // Sweep once tombstones dominate the stored entries: O(stored) per
  // sweep, amortized O(1) per cancel, and the queue never holds more than
  // two-thirds garbage afterwards.
  void compact_if_stale() {
    if (stale_ >= kCompactMin && stale_ * 3 > queue_.stored() * 2)
      compact_now();
  }

  std::uint32_t grow_slots();
  void fire(std::uint32_t si);
  void compact_now();
  void flush_batch_span();  // cold: emits the sampled sim-core span

  util::MemoryPool pool_;  // declared first: destroyed after the slots
  std::vector<Slot> slots_;
  // Slot metadata, packed apart from the (cache-line-sized) slots: the
  // tombstone check on every pop, the compaction sweep, and the whole
  // cancel path for trivially-destructible closures touch only these
  // 4-byte-per-slot arrays, not the slots themselves. gens_[i] bumps on
  // release (skipping 0); kinds_[i] is the closure-storage discriminator;
  // free_ is the slot free list (LIFO, so hot slots are reused first).
  // All three stay the same size as slots_.
  std::vector<std::uint32_t> gens_;
  std::vector<std::uint32_t> kinds_;
  std::vector<std::uint32_t> free_;
  LadderQueue queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;   // pending handlers
  std::size_t stale_ = 0;  // queue entries whose handler is gone
  obs::HotCounter slot_reuses_;
  obs::HotCounter cancelled_;
  obs::HotCounter pooled_closures_;
#if EEND_OBS_ENABLED
  // Sampled trace-span state; trace_every_ == 0 keeps fire() at one
  // load+test of extra work. Compiled out entirely with the gate off.
  std::uint64_t trace_every_ = 0;
  std::uint64_t batch_events_ = 0;
  double batch_t0_us_ = 0.0;
  std::uint32_t trace_pid_ = 0;
  std::uint32_t trace_tid_ = 0;
#endif
};

/// A restartable one-shot timer — the idiom behind ODPM keep-alive timers,
/// route-request timeouts and beacon schedules. Restarting replaces any
/// pending expiry.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_(&sim), on_expire_(std::move(on_expire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm to fire `delay` seconds from now.
  void restart(Time delay);

  /// Arm only if the new expiry is later than the current one ("extend").
  void extend_to(Time delay);

  void cancel();

  bool armed() const { return id_ != kInvalidEvent && sim_->pending(id_); }

  /// Absolute expiry time while armed(); 0.0 once the timer has fired or
  /// been cancelled — the value never goes stale.
  Time expiry() const { return expiry_; }

 private:
  Simulator* sim_;
  std::function<void()> on_expire_;
  EventId id_ = kInvalidEvent;
  Time expiry_ = 0.0;
};

}  // namespace eend::sim
