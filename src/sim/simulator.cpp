#include "sim/simulator.hpp"

#include <cstring>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace eend::sim {

Simulator::~Simulator() {
  // Destroy every still-pending closure (and hand its overflow block back
  // to the pool) before the members go: closures may hold pool-allocated
  // payloads, and pool_ is destroyed last. Occupancy is tracked by the
  // free list, not by the slots themselves.
  std::vector<bool> is_free(slots_.size(), false);
  for (const std::uint32_t si : free_) is_free[si] = true;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (!is_free[i]) destroy_closure(slots_[i], kinds_[i]);
}

std::uint32_t Simulator::grow_slots() {
  EEND_REQUIRE_MSG(slots_.size() < 0xFFFFFFFFu,
                   "slot map exhausted (2^32 concurrent events)");
  slots_.emplace_back();
  gens_.push_back(1);
  kinds_.push_back(kKindInlineTrivial);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::compact_now() {
  queue_.compact(gens_.data());
  stale_ = 0;
}

void Simulator::fire(std::uint32_t si) {
  Slot& s = slots_[si];
  // Move the closure out of the slot before invoking it: the handler may
  // schedule events (growing/reusing the slot vector) or cancel ids, and —
  // matching the erased-before-call contract of the original engine —
  // pending(self) is false and cancel(self) a no-op while it runs.
  auto* const invoke = s.invoke;
  const std::uint32_t kind = kinds_[si];
  alignas(double) unsigned char tmp[kInlineClosure];
  void* ctx;
  void* block = nullptr;
  std::uint32_t block_bytes = 0;
  void (*destroy)(void*) = nullptr;
  if (kind == kKindInlineTrivial) {
    // Fixed-size copy, no destructor: the dominant path is branch + memcpy.
    std::memcpy(tmp, s.buf, kInlineClosure);
    ctx = static_cast<void*>(tmp);
  } else if (kind == kKindInlineAux) {
    Aux aux;
    std::memcpy(&aux, s.buf + kInlineNonTrivial, sizeof(aux));
    aux.relocate(static_cast<void*>(tmp), static_cast<void*>(s.buf));
    ctx = static_cast<void*>(tmp);
    destroy = aux.destroy;
  } else {
    OverflowRec rec;  // pooled storage is stable; just detach it
    std::memcpy(&rec, s.buf, sizeof(rec));
    ctx = block = rec.block;
    block_bytes = kind;
    destroy = rec.destroy;
  }
  release_slot(si);  // `s` is dead past this point (vector may reallocate)
  --live_;
  ++executed_;

  struct Guard {  // destroy + recycle even if the handler throws
    void (*destroy)(void*);
    void* ctx;
    void* block;
    std::uint32_t bytes;
    util::MemoryPool* pool;
    ~Guard() {
      if (destroy != nullptr) destroy(ctx);
      if (block != nullptr) pool->release(block, bytes);
    }
  } guard{destroy, ctx, block, block_bytes, &pool_};
  invoke(ctx);
#if EEND_OBS_ENABLED
  if (trace_every_ != 0 && ++batch_events_ >= trace_every_)
    flush_batch_span();
#endif
}

void Simulator::set_trace_sampling(std::uint64_t every_events,
                                   std::uint32_t pid, std::uint32_t tid) {
#if EEND_OBS_ENABLED
  trace_every_ = every_events;
  batch_events_ = 0;
  batch_t0_us_ = obs::trace_now_us();
  trace_pid_ = pid;
  trace_tid_ = tid;
#else
  (void)every_events;
  (void)pid;
  (void)tid;
#endif
}

void Simulator::flush_batch_span() {
#if EEND_OBS_ENABLED
  const double now_us = obs::trace_now_us();
  obs::emit_span("sim.batch", batch_t0_us_, now_us - batch_t0_us_,
                 trace_pid_, trace_tid_);
  batch_t0_us_ = now_us;
  batch_events_ = 0;
#endif
}

void Simulator::publish_counters(obs::CounterRegistry& reg) const {
  if constexpr (!obs::kEnabled) return;
  reg.add("sim.events_fired", executed_);
  reg.add("sim.events_scheduled", next_seq_);
  reg.add("sim.events_cancelled", cancelled_.value());
  reg.add("sim.slot_reuses", slot_reuses_.value());
  reg.add("sim.closure_pool_spills", pooled_closures_.value());
  reg.observe("sim.slot_high_water", slots_.size());
  const LadderQueue::Stats& qs = queue_.stats();
  reg.add("sim.ladder.rung_spawns", qs.rung_spawns.value());
  reg.add("sim.ladder.rung_spills", qs.rung_spills.value());
  reg.add("sim.ladder.bucket_promotions", qs.bucket_promotions.value());
  reg.add("sim.ladder.top_seeds", qs.top_seeds.value());
  reg.add("sim.ladder.compactions", qs.compactions.value());
  reg.observe("sim.ladder.max_rung_depth", qs.max_rung_depth.value());
  reg.add("pool.fresh_blocks", pool_.allocated_blocks());
  reg.add("pool.reuse_hits", pool_.reuse_hits());
  reg.add("pool.overflow_allocs", pool_.overflow_allocs());
}

bool Simulator::step() {
  for (const QEntry* e; (e = queue_.peek()) != nullptr;) {
    if (gens_[e->slot] != e->gen) {  // cancelled (tombstone)
      queue_.pop();
      --stale_;
      continue;
    }
    const QEntry ent = queue_.pop();
    EEND_CHECK(ent.at >= now_);
    now_ = ent.at;
    fire(ent.slot);
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  EEND_REQUIRE(end >= now_);
  for (const QEntry* e; (e = queue_.peek()) != nullptr;) {
    // Bound check first: popping far-future tombstones here would drag the
    // queue's promoted window forward, turning the next wave of schedules
    // into sorted-bottom insertions (quadratic under cancel-heavy churn).
    // Compaction reclaims them instead.
    if (e->at > end) break;
    if (gens_[e->slot] != e->gen) {  // peek through tombstones
      queue_.pop();
      --stale_;
      continue;
    }
    const QEntry ent = queue_.pop();
    EEND_CHECK(ent.at >= now_);
    now_ = ent.at;
    fire(ent.slot);
  }
  now_ = end;
}

void Simulator::run_all() {
  while (step()) {
  }
}

void Timer::restart(Time delay) {
  cancel();
  expiry_ = sim_->now() + delay;
  id_ = sim_->schedule_in(delay, [this] {
    id_ = kInvalidEvent;
    expiry_ = 0.0;  // the expiry is only meaningful while armed
    on_expire_();
  });
}

void Timer::extend_to(Time delay) {
  const Time new_expiry = sim_->now() + delay;
  if (armed() && expiry_ >= new_expiry) return;
  restart(delay);
}

void Timer::cancel() {
  if (id_ != kInvalidEvent) {
    sim_->cancel(id_);
    id_ = kInvalidEvent;
    expiry_ = 0.0;
  }
}

}  // namespace eend::sim
