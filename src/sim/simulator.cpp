#include "sim/simulator.hpp"

#include <algorithm>

namespace eend::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  EEND_REQUIRE_MSG(at >= now_, "scheduling into the past: at=" << at
                                                               << " now="
                                                               << now_);
  EEND_REQUIRE(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) {
  if (handlers_.erase(id) == 0) return false;
  ++stale_;
  compact_if_stale();
  return true;
}

void Simulator::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
}

void Simulator::compact_if_stale() {
  // Rebuild once tombstones outnumber live entries: O(heap) per rebuild,
  // amortized O(1) per cancel, and the heap never holds more than half
  // garbage afterwards.
  if (stale_ < kCompactMin || stale_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return handlers_.find(e.id) == handlers_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  stale_ = 0;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    pop_top();
    const auto it = handlers_.find(e.id);
    if (it == handlers_.end()) {  // cancelled (tombstone)
      --stale_;
      continue;
    }
    EEND_CHECK(e.at >= now_);
    now_ = e.at;
    auto fn = std::move(it->second);
    handlers_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  EEND_REQUIRE(end >= now_);
  while (!heap_.empty()) {
    // Peek through tombstones.
    const Entry e = heap_.front();
    if (handlers_.count(e.id) == 0) {
      pop_top();
      --stale_;
      continue;
    }
    if (e.at > end) break;
    step();
  }
  now_ = end;
}

void Simulator::run_all() {
  while (step()) {
  }
}

void Timer::restart(Time delay) {
  cancel();
  expiry_ = sim_->now() + delay;
  id_ = sim_->schedule_in(delay, [this] {
    id_ = kInvalidEvent;
    on_expire_();
  });
}

void Timer::extend_to(Time delay) {
  const Time new_expiry = sim_->now() + delay;
  if (armed() && expiry_ >= new_expiry) return;
  restart(delay);
}

void Timer::cancel() {
  if (id_ != kInvalidEvent) {
    sim_->cancel(id_);
    id_ = kInvalidEvent;
  }
}

}  // namespace eend::sim
