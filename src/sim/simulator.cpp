#include "sim/simulator.hpp"

namespace eend::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  EEND_REQUIRE_MSG(at >= now_, "scheduling into the past: at=" << at
                                                               << " now="
                                                               << now_);
  EEND_REQUIRE(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) { return handlers_.erase(id) > 0; }

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(e.id);
    if (it == handlers_.end()) continue;  // cancelled (tombstone)
    EEND_CHECK(e.at >= now_);
    now_ = e.at;
    auto fn = std::move(it->second);
    handlers_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  EEND_REQUIRE(end >= now_);
  while (!queue_.empty()) {
    // Peek through tombstones.
    const Entry e = queue_.top();
    if (handlers_.count(e.id) == 0) {
      queue_.pop();
      continue;
    }
    if (e.at > end) break;
    step();
  }
  now_ = end;
}

void Simulator::run_all() {
  while (step()) {
  }
}

void Timer::restart(Time delay) {
  cancel();
  expiry_ = sim_->now() + delay;
  id_ = sim_->schedule_in(delay, [this] {
    id_ = kInvalidEvent;
    on_expire_();
  });
}

void Timer::extend_to(Time delay) {
  const Time new_expiry = sim_->now() + delay;
  if (armed() && expiry_ >= new_expiry) return;
  restart(delay);
}

void Timer::cancel() {
  if (id_ != kInvalidEvent) {
    sim_->cancel(id_);
    id_ = kInvalidEvent;
  }
}

}  // namespace eend::sim
