// Ladder queue: the event-ordering structure behind sim::Simulator.
//
// A three-part priority structure tuned for the simulator's access pattern
// (dense near-future timer churn, a sparse far-future tail):
//
//   * bottom — a sorted vector of the most imminent entries, drained by
//     cursor; mid-drain insertions (handlers scheduling at or near now())
//     binary-search into the undrained suffix.
//   * rungs  — a stack of bucket arrays. Each rung partitions a time window
//     into equal-width buckets (append-only, unsorted). When the next
//     bucket is promoted it either becomes the new bottom (small buckets
//     are sorted directly) or spawns a finer-grained child rung that tiles
//     exactly that bucket's window — the classic ladder descent, giving
//     amortized O(1) enqueue/dequeue without the calendar queue's
//     pathological resize heuristics.
//   * top    — the sorted-overflow rung: far-future entries beyond every
//     rung's horizon, kept unsorted and re-seeded into a fresh rung 0 only
//     when everything nearer has drained.
//
// Total order is (at, seq) with seq globally unique, so execution order is
// bit-identical to a binary heap with the same tie-break — the property the
// golden suite pins. Bucket membership is decided by floor((at-start)*inv)
// — weakly monotone in `at` under IEEE arithmetic — and child rungs tile
// their parent bucket exactly, so an entry can never land behind one that
// must fire after it, boundary rounding included.
//
// The queue stores cancelled entries (tombstones) like live ones; the owner
// filters them on pop and calls compact() to sweep. No entry is ever
// compared across buckets: order comes from bucket sequence + in-bucket
// sort, both deterministic.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace eend::sim {

/// One queued event reference. `slot`/`gen` identify the handler in the
/// simulator's slot map; the queue orders purely by (at, seq).
struct QEntry {
  double at;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

// A named functor (not a free function) so std::sort/std::lower_bound
// inline the comparison instead of calling through a function pointer.
struct QEntryLess {
  bool operator()(const QEntry& a, const QEntry& b) const {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
};

inline bool qentry_less(const QEntry& a, const QEntry& b) {
  return QEntryLess{}(a, b);
}

class LadderQueue {
 public:
  /// Max entries promoted straight to bottom without spawning a child rung.
  static constexpr std::size_t kBottomMax = 64;
  /// Rung-depth backstop: beyond this, buckets are sorted regardless of
  /// size (double precision exhausts itself long before 48 subdivisions).
  static constexpr std::size_t kMaxRungs = 48;

  bool empty() const { return stored_ == 0; }
  std::size_t stored() const { return stored_; }

  /// Structural telemetry (zero-cost with EEND_OBS off). Counts restructure
  /// operations, not per-entry work: spawns/spills/promotions happen once
  /// per O(kBottomMax) entries, so bumping them is off the per-event path.
  struct Stats {
    obs::HotCounter rung_spawns;        // child/seed rungs created
    obs::HotCounter rung_spills;        // bottom tails spilled to top
    obs::HotCounter bucket_promotions;  // rung buckets promoted to bottom
    obs::HotCounter top_seeds;          // re-seeds from the overflow top
    obs::HotCounter compactions;        // compact() sweeps
    obs::HotGauge max_rung_depth;       // deepest rung ladder seen
  };
  const Stats& stats() const { return stats_; }

  /// Add an entry. `at` must be >= the `at` of the last popped entry and
  /// `seq` must exceed every seq ever pushed (the simulator guarantees
  /// both).
  void push(const QEntry& e) {
    ++stored_;
    if (rungs_.empty()) {
      // Bottom covers [.., bottom_end_): everything nearer than the last
      // promoted window joins the sorted drain; the rest overflows to top.
      if (e.at < bottom_end_) {
        insert_bottom(e);
      } else {
        top_.push_back(e);
      }
      return;
    }
    std::ptrdiff_t idx = rungs_.front().index_of(e.at);
    if (idx >= static_cast<std::ptrdiff_t>(rungs_.front().buckets.size())) {
      top_.push_back(e);  // beyond rung 0's horizon
      return;
    }
    for (std::size_t i = 0;; ++i) {
      Rung& r = rungs_[i];
      const auto nb = static_cast<std::ptrdiff_t>(r.buckets.size());
      // Membership in rung i was established by rung i-1 (or the horizon
      // test above), so clamping is pure positioning and stays monotone.
      if (idx < 0) idx = 0;
      if (idx >= nb) idx = nb - 1;
      const auto cur = static_cast<std::ptrdiff_t>(r.cur);
      if (idx > cur - 1) {
        r.buckets[static_cast<std::size_t>(idx)].push_back(e);
        return;
      }
      if (idx == cur - 1 && i + 1 < rungs_.size()) {
        // Rung i+1 tiles exactly bucket cur-1 of rung i: descend.
        idx = rungs_[i + 1].index_of(e.at);
        continue;
      }
      // An already-promoted window: the entry is imminent, join bottom.
      insert_bottom(e);
      return;
    }
  }

  /// Pointer to the minimum entry, or nullptr when empty. May restructure
  /// (promote buckets / seed from top) but never reorders. The pointer is
  /// invalidated by any other call.
  const QEntry* peek() {
    while (bottom_pos_ >= bottom_.size()) {
      if (!refill_bottom()) return nullptr;
    }
    return &bottom_[bottom_pos_];
  }

  /// Remove and return the minimum entry. Call peek() first; requires a
  /// non-empty queue.
  QEntry pop() {
    EEND_CHECK(bottom_pos_ < bottom_.size());
    --stored_;
    return bottom_[bottom_pos_++];
  }

  /// Compaction sweep: drop every tombstone — an entry whose slot
  /// generation has moved past the one it was queued with. `gens` is the
  /// owner's generation array, indexed by QEntry::slot; taking it directly
  /// (rather than a predicate) lets the sweep prefetch the random
  /// generation reads a few entries ahead, which is where the sweep's time
  /// goes on large queues.
  void compact(const std::uint32_t* gens) {
    bottom_.erase(bottom_.begin(),
                  bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_));
    bottom_pos_ = 0;
    std::size_t kept = sweep(bottom_, gens);
    for (Rung& r : rungs_)
      for (std::size_t b = r.cur; b < r.buckets.size(); ++b)
        kept += sweep(r.buckets[b], gens);
    kept += sweep(top_, gens);
    stored_ = kept;
    stats_.compactions.add();
  }

 private:
  /// In-place filter keeping live entries; returns how many were kept.
  static std::size_t sweep(std::vector<QEntry>& v,
                           const std::uint32_t* gens) {
    QEntry* const d = v.data();
    const std::size_t n = v.size();
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 8 < n) __builtin_prefetch(&gens[d[i + 8].slot]);
      if (gens[d[i].slot] == d[i].gen) d[w++] = d[i];
    }
    v.resize(w);
    return w;
  }

  struct Rung {
    double start;
    double width;
    double inv;           // 1.0 / width, set wherever width is
    std::size_t cur = 0;  // next bucket to promote; earlier ones are empty
    std::vector<std::vector<QEntry>> buckets;

    // Multiplying by the cached reciprocal keeps the FP divide off the
    // per-push path. The index can differ from an exact divide by one near
    // bucket boundaries, but x * inv is still weakly monotone in x (IEEE
    // rounding is monotone), which is the only property ordering needs —
    // membership stays consistent because every decision about this rung
    // goes through this same function.
    std::ptrdiff_t index_of(double at) const {
      return static_cast<std::ptrdiff_t>(std::floor((at - start) * inv));
    }
  };

  void insert_bottom(const QEntry& e) {
    const auto it =
        std::lower_bound(bottom_.begin() +
                             static_cast<std::ptrdiff_t>(bottom_pos_),
                         bottom_.end(), e, QEntryLess{});
    bottom_.insert(it, e);
    // An overgrown bottom makes these sorted inserts quadratic; two
    // overflow rules keep it bounded under sustained push load:
    if (bottom_.size() - bottom_pos_ <= 4 * kBottomMax) return;
    if (rungs_.empty()) {
      // No-rungs regime: the bottom's window can cover the far future (a
      // small seed promotes everything up to its max timestamp). Spill the
      // tail back to the overflow top and shrink the window. Safe: every
      // spilled entry's (at, seq) exceeds every kept entry's (the vector
      // was sorted; ties at the boundary keep the smaller seqs), and the
      // top is only re-seeded after the bottom drains.
      const std::size_t keep = bottom_pos_ + kBottomMax;
      top_.insert(top_.end(), bottom_.begin() +
                                  static_cast<std::ptrdiff_t>(keep),
                  bottom_.end());
      bottom_end_ = bottom_[keep].at;
      bottom_.resize(keep);
      stats_.rung_spills.add();
      return;
    }
    // Rungs present: the bottom is the deepest rung's promoted bucket
    // (cur-1), whose window can stay "current" for a long stretch of
    // simulated time and soak up arrivals. Spawning the undrained suffix
    // as a child rung restores the exact invariant a promotion-time split
    // would have given — rung i+1 tiles bucket cur-1 of rung i — while
    // shrinking the arrival window geometrically. (Spilling to top instead
    // would be wrong here: unpromoted rung entries fire before any
    // re-seed, and their timestamps exceed the bottom's.)
    if (rungs_.size() >= kMaxRungs) return;  // sorted fallback
    const std::size_t undrained = bottom_.size() - bottom_pos_;
    const double start = bottom_[bottom_pos_].at;
    const std::size_t nb = buckets_for(undrained);
    const double width = (bottom_end_ - start) / static_cast<double>(nb);
    if (!(width > 0.0) || start + width == start) return;  // ties: stay sorted
    Rung child;
    child.start = start;
    child.width = width;
    child.inv = 1.0 / width;
    child.buckets.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i)
      child.buckets.push_back(alloc_bucket());
    const auto nbs = static_cast<std::ptrdiff_t>(nb);
    for (std::size_t i = bottom_pos_; i < bottom_.size(); ++i) {
      std::ptrdiff_t idx = child.index_of(bottom_[i].at);
      if (idx < 0) idx = 0;
      if (idx >= nbs) idx = nbs - 1;
      child.buckets[static_cast<std::size_t>(idx)].push_back(bottom_[i]);
    }
    rungs_.push_back(std::move(child));
    stats_.rung_spawns.add();
    stats_.max_rung_depth.observe_max(rungs_.size());
    bottom_.clear();
    bottom_pos_ = 0;
    // bottom_end_ keeps its value: the new rung tiles [start, bottom_end_)
    // and the next peek() promotes its first bucket into a fresh bottom.
  }

  /// Install `b` as the new bottom (sorted drain) covering up to `end`.
  void make_bottom(std::vector<QEntry>&& b, double end) {
    bottom_ = std::move(b);
    std::sort(bottom_.begin(), bottom_.end(), QEntryLess{});
    bottom_pos_ = 0;
    bottom_end_ = end;
  }

  /// Promote a rung bucket: copy it into the bottom (whose buffer is
  /// reused) and recycle the bucket's storage — the steady-state drain
  /// path allocates nothing.
  void promote_to_bottom(std::vector<QEntry>& b, double end) {
    bottom_.clear();
    bottom_.insert(bottom_.end(), b.begin(), b.end());
    std::sort(bottom_.begin(), bottom_.end(), QEntryLess{});
    bottom_pos_ = 0;
    bottom_end_ = end;
    recycle_bucket(b);
    stats_.bucket_promotions.add();
  }

  std::vector<QEntry> alloc_bucket() {
    if (spare_.empty()) return {};
    std::vector<QEntry> b = std::move(spare_.back());
    spare_.pop_back();
    return b;
  }

  void recycle_bucket(std::vector<QEntry>& b) {
    b.clear();
    if (spare_.size() < kSpareMax && b.capacity() > 0)
      spare_.push_back(std::move(b));
  }

  /// Refill the bottom from the rung structure / top. Returns false when
  /// the queue is fully drained.
  bool refill_bottom() {
    bottom_.clear();
    bottom_pos_ = 0;
    while (true) {
      if (rungs_.empty()) {
        if (top_.empty()) {
          bottom_end_ = -std::numeric_limits<double>::infinity();
          return false;
        }
        seed_from_top();
        // Small seeds skip the rung and land sorted in bottom directly.
        if (!bottom_.empty()) return true;
        continue;
      }
      Rung& r = rungs_.back();
      while (r.cur < r.buckets.size() && r.buckets[r.cur].empty()) ++r.cur;
      if (r.cur == r.buckets.size()) {
        for (std::vector<QEntry>& b : r.buckets) recycle_bucket(b);
        rungs_.pop_back();
        continue;
      }
      std::vector<QEntry>& b = r.buckets[r.cur];
      const double b_start = r.start + r.width * static_cast<double>(r.cur);
      const double b_width = r.width;
      ++r.cur;
      const double b_end = r.start + r.width * static_cast<double>(r.cur);
      if (b.size() <= kBottomMax || rungs_.size() >= kMaxRungs ||
          !splittable(b)) {
        promote_to_bottom(b, b_end);
        return true;
      }
      if (!spawn_rung(b, b_start, b_width)) {
        // Subdivision underflowed double precision; the bucket was sorted
        // into the bottom instead.
        bottom_end_ = b_end;
        return true;
      }
    }
  }

  /// A bucket with a single distinct timestamp (or a vanishing width after
  /// subdivision) cannot be usefully split — sort it instead.
  static bool splittable(const std::vector<QEntry>& b) {
    double lo = b.front().at, hi = b.front().at;
    for (const QEntry& e : b) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    return hi > lo;
  }

  /// Bucket count that targets ~kBottomMax entries per bucket, so a
  /// promoted bucket usually becomes the bottom directly (one small sort,
  /// no further descent) and scatter passes touch few distinct buckets.
  static std::size_t buckets_for(std::size_t n) {
    return (n + kBottomMax - 1) / kBottomMax;
  }

  /// Child rung tiling exactly [b_start, b_start + b_width): membership was
  /// decided by the parent's bucket index, positions here clamp into range.
  /// Returns false (after sorting the bucket into the bottom) when the
  /// subdivision underflows double precision. `b` is the parent's bucket;
  /// its storage is recycled before rungs_ can reallocate.
  bool spawn_rung(std::vector<QEntry>& b, double b_start, double b_width) {
    Rung child;
    child.start = b_start;
    const std::size_t n = buckets_for(b.size());
    child.width = b_width / static_cast<double>(n);
    if (!(child.width > 0.0) || b_start + child.width == b_start) {
      promote_to_bottom(b, b_start + b_width);
      return false;
    }
    child.inv = 1.0 / child.width;
    child.buckets.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      child.buckets.push_back(alloc_bucket());
    const auto nb = static_cast<std::ptrdiff_t>(n);
    for (const QEntry& e : b) {
      std::ptrdiff_t idx = child.index_of(e.at);
      if (idx < 0) idx = 0;
      if (idx >= nb) idx = nb - 1;
      child.buckets[static_cast<std::size_t>(idx)].push_back(e);
    }
    recycle_bucket(b);
    rungs_.push_back(std::move(child));
    stats_.rung_spawns.add();
    stats_.max_rung_depth.observe_max(rungs_.size());
    return true;
  }

  /// Re-seed the rung structure from the far-future overflow.
  void seed_from_top() {
    stats_.top_seeds.add();
    double lo = top_.front().at, hi = top_.front().at;
    for (const QEntry& e : top_) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    if (top_.size() <= kBottomMax || hi <= lo) {
      // Few entries (or one distinct timestamp): drain them sorted. The
      // window ends just past `hi`, so later far-future arrivals overflow
      // back into top instead of bloating the sorted insert path.
      make_bottom(std::move(top_),
                  std::nextafter(hi,
                                 std::numeric_limits<double>::infinity()));
      top_.clear();
      return;
    }
    Rung r0;
    r0.start = lo;
    r0.width = (hi - lo) / static_cast<double>(buckets_for(top_.size()));
    r0.inv = 1.0 / r0.width;
    if (!(r0.width > 0.0) || lo + r0.width == lo) {
      make_bottom(std::move(top_),
                  std::nextafter(hi,
                                 std::numeric_limits<double>::infinity()));
      top_.clear();
      return;
    }
    const std::size_t nb = static_cast<std::size_t>(r0.index_of(hi)) + 1;
    r0.buckets.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i) r0.buckets.push_back(alloc_bucket());
    const auto nbs = static_cast<std::ptrdiff_t>(nb);
    for (const QEntry& e : top_) {
      std::ptrdiff_t idx = r0.index_of(e.at);
      if (idx < 0) idx = 0;
      if (idx >= nbs) idx = nbs - 1;
      r0.buckets[static_cast<std::size_t>(idx)].push_back(e);
    }
    top_.clear();
    rungs_.clear();
    rungs_.push_back(std::move(r0));
    stats_.rung_spawns.add();
    stats_.max_rung_depth.observe_max(rungs_.size());
  }

  std::vector<QEntry> bottom_;  // sorted ascending (at, seq)
  std::size_t bottom_pos_ = 0;  // drain cursor into bottom_
  // Exclusive end of bottom's window while no rungs exist (rungs route by
  // bucket index instead). -inf = nothing promoted yet: first push opens
  // top.
  double bottom_end_ = -std::numeric_limits<double>::infinity();
  /// Retired bucket vectors kept for reuse (capacity only, no entries);
  /// bounds the allocator traffic of rung spawn/drain cycles.
  static constexpr std::size_t kSpareMax = 4096;

  std::vector<Rung> rungs_;    // [0] = coarsest; back() = currently driven
  std::vector<QEntry> top_;    // far-future overflow, unsorted
  std::vector<std::vector<QEntry>> spare_;  // recycled bucket storage
  std::size_t stored_ = 0;
  Stats stats_;
};

}  // namespace eend::sim
