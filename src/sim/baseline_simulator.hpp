// The pre-ladder-queue event engine, retained verbatim as a frozen
// reference: a binary heap (std::*_heap over a vector) with per-event
// std::function handlers in an unordered_map and tombstone cancellation.
//
// Two consumers keep it alive:
//   * bench_micro_simcore measures the ladder-queue Simulator against this
//     engine in the same run, so BENCH_simcore.json carries a
//     baseline-relative speedup rather than an unanchored number;
//   * sim_test drives randomized schedule/cancel/run interleavings through
//     both engines and asserts bit-identical execution order — the
//     differential oracle behind the "all goldens stay byte-identical"
//     guarantee.
//
// Do not "improve" this file; its value is that it does not change.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace eend::sim {

class BaselineSimulator {
 public:
  using Time = double;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  BaselineSimulator() = default;
  BaselineSimulator(const BaselineSimulator&) = delete;
  BaselineSimulator& operator=(const BaselineSimulator&) = delete;

  EventId schedule_at(Time at, std::function<void()> fn) {
    EEND_REQUIRE_MSG(at >= now_, "scheduling into the past: at="
                                     << at << " now=" << now_);
    EEND_REQUIRE(fn != nullptr);
    const EventId id = next_id_++;
    heap_.push_back(Entry{at, next_seq_++, id});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    handlers_.emplace(id, std::move(fn));
    return id;
  }

  EventId schedule_in(Time delay, std::function<void()> fn) {
    EEND_REQUIRE_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) {
    if (handlers_.erase(id) == 0) return false;
    ++stale_;
    compact_if_stale();
    return true;
  }

  bool pending(EventId id) const { return handlers_.count(id) > 0; }

  Time now() const { return now_; }

  bool step() {
    while (!heap_.empty()) {
      const Entry e = heap_.front();
      pop_top();
      const auto it = handlers_.find(e.id);
      if (it == handlers_.end()) {  // cancelled (tombstone)
        --stale_;
        continue;
      }
      EEND_CHECK(e.at >= now_);
      now_ = e.at;
      auto fn = std::move(it->second);
      handlers_.erase(it);
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  void run_until(Time end) {
    EEND_REQUIRE(end >= now_);
    while (!heap_.empty()) {
      const Entry e = heap_.front();
      if (handlers_.count(e.id) == 0) {
        pop_top();
        --stale_;
        continue;
      }
      if (e.at > end) break;
      step();
    }
    now_ = end;
  }

  void run_all() {
    while (step()) {
    }
  }

  std::size_t queue_size() const { return handlers_.size(); }
  std::size_t heap_size() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  static constexpr std::size_t kCompactMin = 64;

  void pop_top() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }

  void compact_if_stale() {
    if (stale_ < kCompactMin || stale_ * 2 <= heap_.size()) return;
    std::erase_if(heap_, [this](const Entry& e) {
      return handlers_.find(e.id) == handlers_.end();
    });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    stale_ = 0;
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  std::size_t stale_ = 0;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

/// The Timer idiom over the baseline engine — used by the cancel-churn
/// benchmark to reproduce the pre-PR restart cost exactly.
class BaselineTimer {
 public:
  BaselineTimer(BaselineSimulator& sim, std::function<void()> on_expire)
      : sim_(&sim), on_expire_(std::move(on_expire)) {}

  ~BaselineTimer() { cancel(); }
  BaselineTimer(const BaselineTimer&) = delete;
  BaselineTimer& operator=(const BaselineTimer&) = delete;

  void restart(BaselineSimulator::Time delay) {
    cancel();
    id_ = sim_->schedule_in(delay, [this] {
      id_ = BaselineSimulator::kInvalidEvent;
      on_expire_();
    });
  }

  void cancel() {
    if (id_ != BaselineSimulator::kInvalidEvent) {
      sim_->cancel(id_);
      id_ = BaselineSimulator::kInvalidEvent;
    }
  }

  bool armed() const {
    return id_ != BaselineSimulator::kInvalidEvent && sim_->pending(id_);
  }

 private:
  BaselineSimulator* sim_;
  std::function<void()> on_expire_;
  BaselineSimulator::EventId id_ = BaselineSimulator::kInvalidEvent;
};

}  // namespace eend::sim
