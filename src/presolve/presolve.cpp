#include "presolve/presolve.hpp"

#include <algorithm>

#include "graph/shortest_path.hpp"
#include "util/check.hpp"

namespace eend::presolve {

namespace {

using graph::EdgeId;
using graph::Graph;
using graph::kInfCost;
using graph::kInvalidNode;
using graph::NodeId;

/// Long-edge elimination fires only on a strict win with this relative
/// margin, so float re-association noise (~1e-15) can never flip a
/// decision that a later recomputation would make the other way.
constexpr double kLongEdgeMargin = 1.0 - 1e-12;

/// Dead-end elimination: iteratively mark non-terminal nodes of (current)
/// degree <= 1 removed and their incident edges dead. Worklist-driven —
/// each edge is touched O(1) times.
void eliminate_dead_ends(const Graph& g, const std::vector<char>& is_term,
                         std::vector<char>& node_removed,
                         std::vector<char>& edge_alive,
                         std::vector<std::size_t>& deg,
                         std::vector<ReductionStep>& steps) {
  std::vector<NodeId> work;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (!is_term[v] && deg[v] <= 1) work.push_back(v);
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    if (node_removed[v] || deg[v] > 1) continue;  // stale worklist entry
    node_removed[v] = 1;
    steps.push_back({ReductionKind::kDeadEndNode, v, kInvalidNode});
    for (const auto& [nbr, e] : g.neighbors(v)) {
      if (!edge_alive[e]) continue;
      edge_alive[e] = 0;
      --deg[v];
      --deg[nbr];
      if (!is_term[nbr] && !node_removed[nbr] && deg[nbr] <= 1)
        work.push_back(nbr);
    }
  }
}

/// Long-edge elimination on the dead-end-masked edge set. witness(u,v) is
/// the cheapest u -> v connection whose interior nodes are all terminals:
/// min over terminal neighbors (or u/v themselves when terminals) of
/// wa + D_T + wb, where D_T is the all-pairs terminal distance through
/// terminal-only interiors (Floyd-Warshall over the terminal-induced
/// subgraph — O(T^3), tiny for demand-derived terminal sets). An edge
/// strictly beaten by its witness can never lie on any shortest path or
/// acquire a Dijkstra label, so dropping all such edges at once preserves
/// every distance and every parent array exactly.
void eliminate_long_edges(const Graph& g, const std::vector<char>& is_term,
                          const std::vector<NodeId>& terminals,
                          std::vector<char>& edge_alive,
                          std::vector<ReductionStep>& steps) {
  const std::size_t t_count = terminals.size();
  std::vector<std::size_t> term_index(g.node_count(), t_count);
  for (std::size_t i = 0; i < t_count; ++i) term_index[terminals[i]] = i;

  // All-pairs terminal distance restricted to terminal interiors.
  std::vector<double> d(t_count * t_count, kInfCost);
  for (std::size_t i = 0; i < t_count; ++i) d[i * t_count + i] = 0.0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_alive[e]) continue;
    const graph::Edge& ed = g.edge(e);
    if (!is_term[ed.u] || !is_term[ed.v]) continue;
    const std::size_t a = term_index[ed.u], b = term_index[ed.v];
    d[a * t_count + b] = std::min(d[a * t_count + b], ed.weight);
    d[b * t_count + a] = std::min(d[b * t_count + a], ed.weight);
  }
  for (std::size_t k = 0; k < t_count; ++k)
    for (std::size_t i = 0; i < t_count; ++i)
      for (std::size_t j = 0; j < t_count; ++j)
        d[i * t_count + j] = std::min(d[i * t_count + j],
                                      d[i * t_count + k] + d[k * t_count + j]);

  // Terminal gateways per node: cheapest alive edge to each terminal
  // neighbor, plus the node itself at cost 0 when it is a terminal.
  struct Gateway {
    std::size_t term;
    double cost;
  };
  std::vector<std::vector<Gateway>> gateways(g.node_count());
  {
    std::vector<double> best(t_count, kInfCost);
    std::vector<std::size_t> touched;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const auto& [nbr, e] : g.neighbors(v)) {
        if (!edge_alive[e] || !is_term[nbr]) continue;
        const std::size_t ti = term_index[nbr];
        if (best[ti] == kInfCost) touched.push_back(ti);
        best[ti] = std::min(best[ti], g.edge(e).weight);
      }
      std::sort(touched.begin(), touched.end());
      if (is_term[v]) gateways[v].push_back({term_index[v], 0.0});
      for (const std::size_t ti : touched) {
        gateways[v].push_back({ti, best[ti]});
        best[ti] = kInfCost;
      }
      touched.clear();
    }
  }

  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_alive[e]) continue;
    const graph::Edge& ed = g.edge(e);
    double witness = kInfCost;
    for (const Gateway& a : gateways[ed.u])
      for (const Gateway& b : gateways[ed.v]) {
        const double w = a.cost + d[a.term * t_count + b.term] + b.cost;
        witness = std::min(witness, w);
      }
    // A witness that would route through e itself costs >= w(e) (it pays
    // the e gateway), so the strict comparison needs no self-use guard.
    if (witness < ed.weight * kLongEdgeMargin) {
      edge_alive[e] = 0;
      steps.push_back({ReductionKind::kLongEdge, kInvalidNode, e});
    }
  }
}

/// Rebuild a problem over the original node-id space with only the alive
/// edges (in original edge order, so relative edge order — and therefore
/// every order-sensitive downstream loop — is preserved).
core::NetworkDesignProblem masked_problem(
    const core::NetworkDesignProblem& problem,
    const std::vector<char>& edge_alive) {
  const Graph& g = problem.graph();
  Graph out(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    out.set_node_weight(v, g.node_weight(v));
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (edge_alive[e]) out.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).weight);
  core::NetworkDesignProblem p(std::move(out));
  for (const graph::Demand& d : problem.demands()) p.add_demand(d);
  return p;
}

/// Non-trivial articulation points of g (iterative Tarjan; parallel edges
/// handled by skipping only the tree edge into each node).
std::vector<NodeId> articulation_points(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<EdgeId> parent_edge(n, kInvalidNode);
  std::vector<char> is_ap(n, 0);
  int timer = 0;

  struct Frame {
    NodeId v;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::size_t root_children = 0;
    disc[root] = low[root] = timer++;
    stack.push_back({root});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NodeId v = f.v;
      if (f.next < g.neighbors(v).size()) {
        const auto [to, e] = g.neighbors(v)[f.next++];
        if (disc[to] == -1) {
          parent[to] = v;
          parent_edge[to] = e;
          disc[to] = low[to] = timer++;
          stack.push_back({to});
        } else if (e != parent_edge[v]) {
          low[v] = std::min(low[v], disc[to]);
        }
      } else {
        stack.pop_back();
        const NodeId p = parent[v];
        if (p == kInvalidNode) continue;
        low[p] = std::min(low[p], low[v]);
        if (p == root)
          ++root_children;
        else if (low[v] >= disc[p])
          is_ap[p] = 1;
      }
    }
    if (root_children >= 2) is_ap[root] = 1;
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < n; ++v)
    if (is_ap[v]) out.push_back(v);
  return out;
}

/// Sequential moat-growing dual ascent for the node-weighted Steiner
/// forest relaxation: components of the saturated subgraph grow one at a
/// time (smallest component index first — labels are assigned in
/// ascending-node-id order, so this is the component with the smallest
/// node id), paying every unsaturated boundary node the minimum boundary
/// residual. Weak duality: any feasible design's route out of an active
/// component crosses an unsaturated boundary node whose capacity absorbs
/// that round's increment, so the sum of increments never exceeds the
/// design's non-terminal node cost. Nodes with zero capacity (terminals,
/// forced nodes) start saturated and are never charged.
double dual_ascent(const Graph& g, const std::vector<char>& zero_cap,
                   const std::vector<graph::Demand>& demands) {
  const std::size_t n = g.node_count();
  std::vector<double> residual(n);
  for (NodeId v = 0; v < n; ++v)
    residual[v] = zero_cap[v] ? 0.0 : g.node_weight(v);

  double lb = 0.0;
  std::vector<NodeId> comp(n), queue, boundary;
  std::vector<char> in_boundary(n);
  // Every round saturates at least one new boundary node, so n + 1 rounds
  // always suffice; the guard turns a logic error into a loud failure.
  for (std::size_t round = 0; round <= n; ++round) {
    // Label connected components of the saturated subgraph.
    std::fill(comp.begin(), comp.end(), kInvalidNode);
    std::vector<std::vector<NodeId>> members;
    for (NodeId v = 0; v < n; ++v) {
      if (residual[v] > 0.0 || comp[v] != kInvalidNode) continue;
      const NodeId label = static_cast<NodeId>(members.size());
      members.emplace_back();
      comp[v] = label;
      queue.assign(1, v);
      while (!queue.empty()) {
        const NodeId u = queue.back();
        queue.pop_back();
        members[label].push_back(u);
        for (const auto& [nbr, e] : g.neighbors(u)) {
          (void)e;
          if (residual[nbr] > 0.0 || comp[nbr] != kInvalidNode) continue;
          comp[nbr] = label;
          queue.push_back(nbr);
        }
      }
    }

    std::vector<char> active(members.size(), 0);
    bool any_active = false;
    for (const graph::Demand& dem : demands) {
      if (comp[dem.source] == comp[dem.destination]) continue;
      active[comp[dem.source]] = active[comp[dem.destination]] = 1;
      any_active = true;
    }
    if (!any_active) break;

    // First active component with a non-empty boundary (components whose
    // graph component is fully saturated can make no further progress —
    // their demands are unsatisfiable).
    boundary.clear();
    for (std::size_t c = 0; c < members.size() && boundary.empty(); ++c) {
      if (!active[c]) continue;
      for (const NodeId u : members[c])
        for (const auto& [nbr, e] : g.neighbors(u)) {
          (void)e;
          if (residual[nbr] <= 0.0 || in_boundary[nbr]) continue;
          in_boundary[nbr] = 1;
          boundary.push_back(nbr);
        }
    }
    if (boundary.empty()) break;

    double delta = kInfCost;
    for (const NodeId b : boundary) delta = std::min(delta, residual[b]);
    lb += delta;
    for (const NodeId b : boundary) {
      residual[b] -= delta;  // exact 0 for the argmin (x - x == 0)
      in_boundary[b] = 0;
    }
  }
  return lb;
}

}  // namespace

std::vector<NodeId> ReductionTrace::unmap_nodes(
    std::span<const NodeId> compact_nodes) const {
  std::vector<NodeId> out;
  for (const NodeId c : compact_nodes) {
    EEND_REQUIRE_MSG(c < original_of.size(),
                     "unmap_nodes: compact id " << c << " out of range");
    out.insert(out.end(), original_of[c].begin(), original_of[c].end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t ReductionTrace::count(ReductionKind kind) const {
  std::size_t n = 0;
  for (const ReductionStep& s : steps)
    if (s.kind == kind) ++n;
  return n;
}

PresolveResult presolve_design(const core::NetworkDesignProblem& problem) {
  const Graph& g = problem.graph();
  EEND_REQUIRE_MSG(!problem.demands().empty(),
                   "presolve needs at least one demand");
  for (NodeId v = 0; v < g.node_count(); ++v)
    EEND_REQUIRE_MSG(g.node_weight(v) > 0.0,
                     "presolve requires strictly positive node weights "
                     "(node " << v << " has " << g.node_weight(v) << ")");
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EEND_REQUIRE_MSG(g.edge(e).weight > 0.0,
                     "presolve requires strictly positive edge weights "
                     "(edge " << e << " has " << g.edge(e).weight << ")");

  const std::vector<NodeId> terminals = problem.terminals();
  std::vector<char> is_term(g.node_count(), 0);
  for (const NodeId t : terminals) is_term[t] = 1;

  PresolveResult out;
  ReductionTrace& trace = out.trace;

  // ---- dead ends, then the node-reduced twin --------------------------
  std::vector<char> node_removed(g.node_count(), 0);
  std::vector<char> edge_alive(g.edge_count(), 1);
  std::vector<std::size_t> deg(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) deg[v] = g.degree(v);
  eliminate_dead_ends(g, is_term, node_removed, edge_alive, deg,
                      trace.steps);
  out.node_reduced = masked_problem(problem, edge_alive);

  // ---- long edges, then the edge-reduced twin -------------------------
  std::vector<char> edge_alive_er = edge_alive;
  eliminate_long_edges(g, is_term, terminals, edge_alive_er, trace.steps);
  out.edge_reduced = masked_problem(problem, edge_alive_er);

  // ---- compact: drop terminal-free components -------------------------
  // (built from the dead-end-masked view only: long-edge elimination is an
  // edge-weighted argument and must not constrain the node-weighted bound)
  std::vector<char> dropped(g.node_count(), 0);
  {
    std::vector<char> seen(g.node_count(), 0);
    std::vector<NodeId> queue, members;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (node_removed[v] || seen[v]) continue;
      members.clear();
      queue.assign(1, v);
      seen[v] = 1;
      bool has_terminal = false;
      while (!queue.empty()) {
        const NodeId u = queue.back();
        queue.pop_back();
        members.push_back(u);
        if (is_term[u]) has_terminal = true;
        for (const auto& [nbr, e] : g.neighbors(u)) {
          if (!edge_alive[e] || seen[nbr]) continue;
          seen[nbr] = 1;
          queue.push_back(nbr);
        }
      }
      if (has_terminal) continue;
      for (const NodeId u : members) {
        dropped[u] = 1;
        trace.steps.push_back(
            {ReductionKind::kTerminalFreeComponent, u, kInvalidNode});
      }
    }
  }

  // ---- compact: contract degree-2 chains ------------------------------
  const auto is_anchor = [&](NodeId v) {
    return is_term[v] || deg[v] != 2;
  };
  struct Chain {
    NodeId a = kInvalidNode;         ///< anchor endpoints (original ids)
    NodeId b = kInvalidNode;
    std::vector<NodeId> interior;    ///< walk order a -> b
    double edge_weight_sum = 0.0;
  };
  std::vector<Chain> chains;
  std::vector<char> in_chain(g.node_count(), 0);
  for (NodeId a = 0; a < g.node_count(); ++a) {
    if (node_removed[a] || dropped[a] || !is_anchor(a)) continue;
    for (const auto& [first, first_edge] : g.neighbors(a)) {
      if (!edge_alive[first_edge] || is_anchor(first) || in_chain[first])
        continue;
      Chain ch;
      ch.a = a;
      ch.edge_weight_sum = g.edge(first_edge).weight;
      NodeId cur = first;
      EdgeId came = first_edge;
      while (!is_anchor(cur)) {
        in_chain[cur] = 1;
        ch.interior.push_back(cur);
        // Degree-2 interior: exactly one alive edge other than `came`.
        NodeId next = kInvalidNode;
        EdgeId next_edge = kInvalidNode;
        for (const auto& [nbr, e] : g.neighbors(cur)) {
          if (!edge_alive[e] || e == came) continue;
          next = nbr;
          next_edge = e;
          break;
        }
        EEND_CHECK(next != kInvalidNode);
        ch.edge_weight_sum += g.edge(next_edge).weight;
        cur = next;
        came = next_edge;
      }
      ch.b = cur;
      for (const NodeId v : ch.interior)
        trace.steps.push_back(
            {ReductionKind::kChainContraction, v, kInvalidNode});
      // A chain closing back on its own anchor is a pendant cycle: any
      // route entering it must leave through the same anchor, so the
      // interior can never help a connection — drop it outright.
      if (ch.a != ch.b) chains.push_back(std::move(ch));
    }
  }

  // ---- compact: remap surviving nodes + synthetic chain nodes ---------
  trace.compact_of.assign(g.node_count(), kInvalidNode);
  Graph cg;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (node_removed[v] || dropped[v] || in_chain[v]) continue;
    trace.compact_of[v] = cg.add_node(g.node_weight(v));
    trace.original_of.push_back({v});
  }
  for (const Chain& ch : chains) {
    double weight = 0.0;
    for (const NodeId v : ch.interior) weight += g.node_weight(v);
    const NodeId sid = cg.add_node(weight);
    std::vector<NodeId> group = ch.interior;
    std::sort(group.begin(), group.end());
    trace.original_of.push_back(std::move(group));
    for (const NodeId v : ch.interior) trace.compact_of[v] = sid;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_alive[e]) continue;
    const graph::Edge& ed = g.edge(e);
    if (in_chain[ed.u] || in_chain[ed.v]) continue;  // rebuilt below
    if (dropped[ed.u] || dropped[ed.v]) continue;
    cg.add_edge(trace.compact_of[ed.u], trace.compact_of[ed.v], ed.weight);
  }
  for (const Chain& ch : chains) {
    // Edge weights on synthetic chains are nominal (each half the chain's
    // path weight): compact consumers are node-weighted.
    const NodeId sid = trace.compact_of[ch.interior.front()];
    cg.add_edge(trace.compact_of[ch.a], sid, 0.5 * ch.edge_weight_sum);
    cg.add_edge(sid, trace.compact_of[ch.b], 0.5 * ch.edge_weight_sum);
  }
  out.compact = core::NetworkDesignProblem(std::move(cg));
  for (const graph::Demand& dem : problem.demands()) {
    const NodeId s = trace.compact_of[dem.source];
    const NodeId d = trace.compact_of[dem.destination];
    EEND_CHECK(s != kInvalidNode && d != kInvalidNode);
    out.compact.add_demand({s, d, dem.rate});
  }
  out.reduced_nodes = g.node_count() - out.compact.graph().node_count();
  out.reduced_edges = g.edge_count() - out.compact.graph().edge_count();

  // ---- forced nodes: terminal-separating articulation points ----------
  const Graph& cgr = out.compact.graph();
  std::vector<char> compact_term(cgr.node_count(), 0);
  for (const NodeId t : terminals) compact_term[trace.compact_of[t]] = 1;
  std::vector<char> forced(cgr.node_count(), 0);
  {
    std::vector<NodeId> comp(cgr.node_count()), queue;
    for (const NodeId cand : articulation_points(cgr)) {
      if (compact_term[cand]) continue;
      // Label components of compact minus cand, then test each pair.
      std::fill(comp.begin(), comp.end(), kInvalidNode);
      NodeId next_label = 0;
      for (NodeId v = 0; v < cgr.node_count(); ++v) {
        if (v == cand || comp[v] != kInvalidNode) continue;
        comp[v] = next_label;
        queue.assign(1, v);
        while (!queue.empty()) {
          const NodeId u = queue.back();
          queue.pop_back();
          for (const auto& [nbr, e] : cgr.neighbors(u)) {
            (void)e;
            if (nbr == cand || comp[nbr] != kInvalidNode) continue;
            comp[nbr] = next_label;
            queue.push_back(nbr);
          }
        }
        ++next_label;
      }
      for (const graph::Demand& dem : out.compact.demands())
        if (comp[dem.source] != comp[dem.destination]) {
          forced[cand] = 1;
          break;
        }
    }
  }
  std::vector<NodeId> forced_compact;
  double forced_weight = 0.0;
  for (NodeId v = 0; v < cgr.node_count(); ++v)
    if (forced[v]) {
      forced_compact.push_back(v);
      forced_weight += cgr.node_weight(v);
    }
  out.forced_nodes = trace.unmap_nodes(forced_compact);

  // ---- bounds ---------------------------------------------------------
  std::vector<char> zero_cap(cgr.node_count(), 0);
  for (NodeId v = 0; v < cgr.node_count(); ++v)
    if (compact_term[v] || forced[v]) zero_cap[v] = 1;
  out.idle_lb_raw =
      dual_ascent(cgr, zero_cap, out.compact.demands()) + forced_weight;

  // Routing term on edge_reduced (distances there equal the original's by
  // construction). Unsatisfiable demands contribute nothing — any bound is
  // vacuously valid on an infeasible instance.
  const Graph& erg = out.edge_reduced.graph();
  std::vector<std::pair<NodeId, graph::ShortestPathTree>> spt_cache;
  for (const graph::Demand& dem : out.edge_reduced.demands()) {
    const graph::ShortestPathTree* spt = nullptr;
    for (const auto& [src, tree] : spt_cache)
      if (src == dem.source) {
        spt = &tree;
        break;
      }
    if (!spt) {
      spt_cache.emplace_back(dem.source, graph::dijkstra(erg, dem.source));
      spt = &spt_cache.back().second;
    }
    const double dist = spt->distance[dem.destination];
    if (dist < kInfCost) out.data_lb_raw += dem.rate * dist;
  }
  return out;
}

}  // namespace eend::presolve
