// Instance presolve + certified lower bounds for the Eq. 5 design problem
// (SCIP-STP style, adapted to the node-weighted setting).
//
// presolve_design() derives three views of one NetworkDesignProblem:
//
//  * node_reduced — the original node-id space with every iteratively
//    removed non-terminal dead end (degree <= 1) masked out. Running
//    Klein-Ravi or the MPC reduction here is *bit-identical* to the full
//    instance (pendant spiders are strictly ratio-dominated and pendant
//    detours strictly lengthen every Dijkstra label), just cheaper.
//  * edge_reduced — node_reduced with long edges eliminated: an edge (u,v)
//    is dropped when a strictly shorter u-v witness path through terminal
//    interiors exists (a conservative bottleneck-Steiner-distance test that
//    is cheap at O(T^3 + E·T^2)). Shortest-path distances — and therefore
//    KMB's terminal Dijkstras — are preserved exactly, so edge-weighted
//    search here is bit-identical too. A relative margin of 1e-12 keeps
//    float re-association from ever flipping a real decision.
//  * compact — a certified *remapped* instance: dead ends and terminal-free
//    components dropped, maximal chains of non-terminal degree-2 nodes
//    contracted into one synthetic node carrying the summed node weight.
//    Its node-weighted optimum equals the original's, which makes it the
//    substrate for the dual-ascent lower bound, the forced-node
//    (terminal-separating articulation) inclusion test, the shrink
//    statistics, and the oracle cross-checks. Search never runs on it.
//
// The certified bound combines a routing term (per-demand shortest-path
// distance, valid because any design routes each demand no shorter than the
// unrestricted shortest path) with a node-weight term (sequential moat-
// growing dual ascent over compact, plus the weights of forced nodes, which
// get zero dual capacity so the two never double-count). For any Eq. 5
// parameters, lower_bound() <= the Eq. 5 total of every feasible design —
// including under replay scoring, whose endpoint-inclusive idle term only
// adds cost.
//
// All three views REQUIRE strictly positive node and edge weights (the
// bit-identity arguments above use strictness); from_positions instances
// satisfy this by construction (c = Pidle > 0, w = Ptx + Prx > 0).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analytical/design_eval.hpp"
#include "core/design_problem.hpp"

namespace eend::presolve {

enum class ReductionKind {
  kDeadEndNode,            ///< non-terminal node of degree <= 1 removed
  kLongEdge,               ///< edge dominated by a terminal-interior witness
  kChainContraction,       ///< degree-2 interior folded into a synthetic node
  kTerminalFreeComponent,  ///< component without terminals dropped (compact)
};

/// One recorded reduction. Node steps carry the original node id, edge
/// steps the original edge id.
struct ReductionStep {
  ReductionKind kind;
  graph::NodeId node = graph::kInvalidNode;
  graph::EdgeId edge = graph::kInvalidNode;
};

/// Lossless id bookkeeping between the original and compact instances.
struct ReductionTrace {
  std::vector<ReductionStep> steps;

  /// original node id -> compact node id; kInvalidNode when the node was
  /// removed or dropped. Chain interiors map to their synthetic node.
  std::vector<graph::NodeId> compact_of;

  /// compact node id -> original ids folded into it, sorted ascending — a
  /// singleton for surviving nodes, the full interior for synthetic ones.
  std::vector<std::vector<graph::NodeId>> original_of;

  /// Expand compact node ids back to the original id space (union of the
  /// groups, sorted ascending, deduplicated).
  std::vector<graph::NodeId> unmap_nodes(
      std::span<const graph::NodeId> compact_nodes) const;

  std::size_t count(ReductionKind kind) const;
};

struct PresolveResult {
  /// Dead-end-masked twin in the original id space: same node count/ids and
  /// demands, pendant-incident edges omitted. Safe (bit-identical) for the
  /// node-weighted solvers: Klein-Ravi and the MPC reduction.
  core::NetworkDesignProblem node_reduced;

  /// node_reduced with long edges eliminated. Safe (bit-identical) for the
  /// edge-weighted solver (KMB) and exact for shortest-path distances.
  core::NetworkDesignProblem edge_reduced;

  /// Certified remapped instance (see file comment). Never searched; feeds
  /// the dual ascent, forced-node detection and the oracle cross-checks.
  core::NetworkDesignProblem compact;

  ReductionTrace trace;

  /// Nodes (original ids, sorted) every feasible design must contain:
  /// non-terminal articulation points of compact whose removal separates a
  /// demand pair, expanded through the trace.
  std::vector<graph::NodeId> forced_nodes;

  /// Structural shrink of the certified instance: original minus compact
  /// counts. Long-edge eliminations act on edge_reduced (a different view)
  /// and are reported through trace.count(ReductionKind::kLongEdge).
  std::size_t reduced_nodes = 0;
  std::size_t reduced_edges = 0;

  /// Raw bound terms, scale-free in the Eq. 5 parameters:
  ///   data_lb_raw = sum_i rate_i * dist(s_i, d_i)   (edge weights)
  ///   idle_lb_raw = dual ascent value + sum of forced node weights
  double data_lb_raw = 0.0;
  double idle_lb_raw = 0.0;

  /// Certified Eq. 5 lower bound under the given parameters: no feasible
  /// design scores below this, for any include_endpoint_idle setting.
  double lower_bound(const analytical::Eq5Params& eval) const {
    return eval.t_data_per_packet * data_lb_raw + eval.t_idle * idle_lb_raw;
  }
};

/// Run the full reduction + bound pipeline. Requires at least one demand
/// and strictly positive node and edge weights; throws CheckError
/// otherwise. Deterministic in the problem alone.
PresolveResult presolve_design(const core::NetworkDesignProblem& problem);

}  // namespace eend::presolve
