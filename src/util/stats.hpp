// Small-sample statistics used by the evaluation harness: mean, sample
// standard deviation and Student-t 95% confidence intervals, matching the
// paper's "average of N runs and 95% confidence intervals" methodology.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

#include "util/check.hpp"

namespace eend {

/// Summary of a sample of independent runs.
struct SampleStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;        ///< sample (n-1) standard deviation
  double ci95_half_width = 0.0;  ///< half-width of the 95% Student-t CI
};

/// Two-sided 95% Student-t critical value for df degrees of freedom.
/// Table-driven for df <= 30; beyond that, interpolated in 1/df through the
/// df = 40/60/120 anchors toward the asymptotic 1.960, so the value decays
/// smoothly instead of stepping at df = 31.
double student_t_95(std::size_t df);

/// Compute mean / stddev / 95% CI of a sample. Empty samples are invalid.
SampleStats summarize(std::span<const double> xs);

/// Mean of a sample (n must be > 0).
double mean_of(std::span<const double> xs);

/// Relative difference (a-b)/b, guarded against b == 0.
inline double rel_diff(double a, double b) {
  if (b == 0.0) return a == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return (a - b) / b;
}

}  // namespace eend
