#include "util/json.hpp"

#include <charconv>
#include <cmath>

#include "util/check.hpp"
#include "util/format.hpp"

namespace eend::json {

bool Value::as_bool() const {
  EEND_REQUIRE_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  EEND_REQUIRE_MSG(is_number(), "JSON value is not a number");
  return num_;
}

const std::string& Value::as_string() const {
  EEND_REQUIRE_MSG(is_string(), "JSON value is not a string");
  return str_;
}

const Array& Value::as_array() const {
  EEND_REQUIRE_MSG(is_array(), "JSON value is not an array");
  return arr_;
}

const Object& Value::as_object() const {
  EEND_REQUIRE_MSG(is_object(), "JSON value is not an object");
  return obj_;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

bool Value::operator==(const Value& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == o.bool_;
    case Kind::Number: return num_ == o.num_;
    case Kind::String: return str_ == o.str_;
    case Kind::Array: return arr_ == o.arr_;
    case Kind::Object: {
      if (obj_.size() != o.obj_.size()) return false;
      for (const auto& [k, v] : obj_) {
        const Value* ov = o.find(k);
        if (!ov || !(v == *ov)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw CheckError("JSON parse error at line " + std::to_string(line) +
                     ", column " + std::to_string(col) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" +
                          text_[pos_] + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  // Containers recurse; a hostile or corrupted document of the form
  // "[[[[..." must produce a parse error, not a stack overflow.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth)
        p_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                " levels");
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  Value parse_value() {
    const DepthGuard guard(*this);
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal (expected 'null')");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [k, _] : obj)
        if (k == key) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': fail("\\u escapes are not supported (use raw UTF-8)");
        default: fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1)
      fail("leading zeros are not allowed in numbers");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    // from_chars, not strtod: the latter honors LC_NUMERIC and would
    // misparse "1.5" under a comma-decimal locale.
    double v = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto r = std::from_chars(first, last, v);
    if (r.ec != std::errc{} || r.ptr != last) fail("invalid number");
    if (!std::isfinite(v)) fail("number out of double range");
    return Value(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void escape_to(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Other control characters would need \u escapes, which we neither
        // parse nor emit; manifest/result content never contains them.
        EEND_CHECK_MSG(static_cast<unsigned char>(c) >= 0x20,
                       "control character in JSON string");
        out.push_back(c);
    }
  }
  out.push_back('"');
}

void dump_to(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Kind::Number: {
      EEND_REQUIRE_MSG(std::isfinite(v.as_number()),
                       "cannot serialize non-finite number to JSON");
      out += format_double(v.as_number());
      break;
    }
    case Kind::String: escape_to(out, v.as_string()); break;
    case Kind::Array: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        dump_to(out, a[i], indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, val] : o) {
        if (!first) out.push_back(',');
        first = false;
        if (pretty) newline_pad(depth + 1);
        escape_to(out, k);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        dump_to(out, val, indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_to(out, v, indent, 0);
  return out;
}

}  // namespace eend::json
