// Lightweight precondition / invariant checking in the spirit of the C++
// Core Guidelines Expects()/Ensures(). Violations throw, so tests can assert
// on them and simulations fail loudly instead of silently corrupting state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eend {

/// Thrown when an EEND_REQUIRE / EEND_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace eend

/// Precondition check: use at function entry to validate arguments.
#define EEND_REQUIRE(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::eend::detail::check_failed("Precondition", #cond, __FILE__,         \
                                   __LINE__, "");                           \
  } while (false)

/// Precondition check with a message streamed into the exception text.
#define EEND_REQUIRE_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream eend_os_;                                          \
      eend_os_ << msg;                                                      \
      ::eend::detail::check_failed("Precondition", #cond, __FILE__,         \
                                   __LINE__, eend_os_.str());               \
    }                                                                       \
  } while (false)

/// Internal invariant check: something the module itself must guarantee.
#define EEND_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::eend::detail::check_failed("Invariant", #cond, __FILE__, __LINE__,  \
                                   "");                                     \
  } while (false)

#define EEND_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream eend_os_;                                          \
      eend_os_ << msg;                                                      \
      ::eend::detail::check_failed("Invariant", #cond, __FILE__, __LINE__,  \
                                   eend_os_.str());                         \
    }                                                                       \
  } while (false)
