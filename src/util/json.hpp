// Minimal JSON value model, parser and writer — no external dependencies.
//
// Backs the scenario-manifest subsystem (core::Manifest) and the JSON-lines
// result sink. Scope is deliberately small: UTF-8 passes through opaquely,
// numbers are doubles, and \uXXXX escapes are rejected (manifest content is
// plain text). Objects preserve key order so serialize(parse(x)) is stable
// and golden files never churn from reordering.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace eend::json {

class Value;

// Kind precedes the Array/Object aliases: GCC's -Wshadow otherwise flags
// the scoped enumerators as shadowing the namespace-level alias names.
enum class Kind { Null, Bool, Number, String, Array, Object };

using Array = std::vector<Value>;
/// Ordered key/value list. Duplicate keys are a parse error.
using Object = std::vector<std::pair<std::string, Value>>;

/// One JSON value. A tagged union kept simple on purpose: accessors check
/// the kind (throwing CheckError on mismatch) so manifest code can chain
/// lookups without defensive branching.
class Value {
 public:
  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}                // NOLINT
  Value(double n) : kind_(Kind::Number), num_(n) {}             // NOLINT
  Value(int n) : kind_(Kind::Number), num_(n) {}                // NOLINT
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : kind_(Kind::String), str_(s) {}        // NOLINT
  Value(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}    // NOLINT
  Value(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}  // NOLINT

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Structural equality (object key order ignored; numbers compared
  /// bitwise-as-doubles). Used by the round-trip tests.
  bool operator==(const Value& o) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse a complete JSON document. Throws CheckError with a line:column
/// position and a short reason on malformed input, trailing garbage,
/// duplicate object keys, or non-finite numbers.
Value parse(const std::string& text);

/// Serialize. indent < 0 gives the compact one-line form (JSON-lines rows);
/// indent >= 0 pretty-prints with that many spaces per level. Numbers use
/// the shortest round-trip representation (util/format.hpp).
std::string dump(const Value& v, int indent = -1);

}  // namespace eend::json
