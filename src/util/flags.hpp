// Minimal command-line flag parsing for bench binaries and examples.
// Supports --key=value, --key value, and bare --flag booleans.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eend {

/// Parsed command-line flags. Unknown flags are retained and can be listed,
/// so binaries can warn on typos instead of silently ignoring them.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed keys (for diagnostics).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace eend
