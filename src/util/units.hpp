// Unit conventions used across the library.
//
// All internal quantities are SI: seconds, meters, watts, joules, bits.
// The paper's Table 1 lists powers in milliwatts; card definitions convert
// at construction. Helpers here make unit conversions explicit at call
// sites instead of scattering bare 1e-3 factors.
#pragma once

namespace eend {

constexpr double milliwatts(double mw) { return mw * 1e-3; }
constexpr double watts(double w) { return w; }
constexpr double as_milliwatts(double w) { return w * 1e3; }

constexpr double kilobits(double kb) { return kb * 1e3; }
constexpr double megabits(double mb) { return mb * 1e6; }
constexpr double bytes_to_bits(double bytes) { return bytes * 8.0; }

constexpr double milliseconds(double ms) { return ms * 1e-3; }
constexpr double microseconds(double us) { return us * 1e-6; }

}  // namespace eend
