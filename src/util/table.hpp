// Text table / CSV emission for the benchmark harness. Every bench binary
// prints (a) an aligned human-readable table mirroring the paper's figure or
// table and (b) machine-readable CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eend {

/// Collects rows of strings and renders them either as an aligned text table
/// or as CSV. The first added row is treated as the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Format "mean ± ci" the way the paper's Table 2 reports values.
  static std::string num_ci(double mean, double ci, int precision = 3);

  /// Render with space-padded, right-aligned columns.
  std::string to_text() const;

  /// Render as RFC-4180-ish CSV (no quoting needed for our content).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a table under a titled banner: used by all bench binaries so output
/// for each figure/table is uniform and easy to grep.
void print_banner(std::ostream& os, const std::string& title);
void print_table(std::ostream& os, const std::string& title, const Table& t,
                 bool with_csv = true);

}  // namespace eend
