#include "util/stats.hpp"

#include <array>

namespace eend {

double student_t_95(std::size_t df) {
  // Two-sided 0.95 quantiles of the t distribution, df = 1..30.
  static constexpr std::array<double, 30> kT95 = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= kT95.size()) return kT95[df - 1];
  return 1.96;
}

double mean_of(std::span<const double> xs) {
  EEND_REQUIRE(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

SampleStats summarize(std::span<const double> xs) {
  EEND_REQUIRE(!xs.empty());
  SampleStats s;
  s.n = xs.size();
  s.mean = mean_of(xs);
  if (s.n >= 2) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci95_half_width = student_t_95(s.n - 1) * s.stddev /
                        std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

}  // namespace eend
