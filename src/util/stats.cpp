#include "util/stats.hpp"

#include <array>

namespace eend {

double student_t_95(std::size_t df) {
  // Two-sided 0.95 quantiles of the t distribution, df = 1..30.
  static constexpr std::array<double, 30> kT95 = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= kT95.size()) return kT95[df - 1];
  // Past the dense table, interpolate linearly in 1/df through the standard
  // sparse anchors (the quantile is nearly affine in 1/df), ending at the
  // normal 1.960 as df -> infinity. Without this the critical value used to
  // step from 2.042 straight to 1.96 when a sweep crossed --runs=31.
  struct Anchor {
    double inv_df;
    double t;
  };
  static constexpr std::array<Anchor, 5> kTail = {{{1.0 / 30.0, 2.042},
                                                   {1.0 / 40.0, 2.021},
                                                   {1.0 / 60.0, 2.000},
                                                   {1.0 / 120.0, 1.980},
                                                   {0.0, 1.960}}};
  const double x = 1.0 / static_cast<double>(df);
  for (std::size_t i = 0; i + 1 < kTail.size(); ++i) {
    const Anchor& hi = kTail[i];      // larger 1/df (smaller df)
    const Anchor& lo = kTail[i + 1];  // smaller 1/df (larger df)
    if (x <= hi.inv_df && x >= lo.inv_df) {
      const double w = (x - lo.inv_df) / (hi.inv_df - lo.inv_df);
      return lo.t + w * (hi.t - lo.t);
    }
  }
  return 1.960;
}

double mean_of(std::span<const double> xs) {
  EEND_REQUIRE(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

SampleStats summarize(std::span<const double> xs) {
  EEND_REQUIRE(!xs.empty());
  SampleStats s;
  s.n = xs.size();
  s.mean = mean_of(xs);
  if (s.n >= 2) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci95_half_width = student_t_95(s.n - 1) * s.stddev /
                        std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

}  // namespace eend
