// Size-class free-list memory pool.
//
// One pool serves one simulation (single-threaded by construction — each
// ParallelRunner replication owns its Simulator and therefore its pool, so
// no synchronization is needed or provided). Blocks are rounded up to
// 64-byte size classes; released blocks go on a per-class free list and are
// handed back verbatim on the next allocation of the same class, so the
// steady-state schedule/fire/release cycle of the event core and the
// packet-payload churn of the routing layer touch the global allocator only
// while a workload's live set is still growing.
//
// Requests larger than the biggest class (or over-aligned beyond
// max_align_t) fall through to plain operator new/delete — correct, just
// unpooled. All outstanding blocks must be released before the pool dies;
// the pool frees only its free lists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace eend::util {

class MemoryPool {
 public:
  static constexpr std::size_t kClassStep = 64;
  static constexpr std::size_t kClassCount = 16;  // 64 .. 1024 bytes
  static constexpr std::size_t kMaxPooled = kClassStep * kClassCount;

  MemoryPool() = default;
  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  ~MemoryPool() {
    for (std::size_t c = 0; c < kClassCount; ++c) {
      FreeNode* n = free_[c];
      while (n != nullptr) {
        FreeNode* next = n->next;
        ::operator delete(static_cast<void*>(n));
        n = next;
      }
    }
  }

  /// Allocate at least `bytes` (alignment up to alignof(max_align_t)).
  /// The same `bytes` value must be passed to release().
  void* allocate(std::size_t bytes) {
    EEND_CHECK(bytes > 0);
    const std::size_t c = class_of(bytes);
    if (c >= kClassCount) {
      overflow_allocs_.add();
      return ::operator new(bytes);
    }
    if (free_[c] != nullptr) {
      FreeNode* n = free_[c];
      free_[c] = n->next;
      --free_count_;
      reuse_hits_.add();
      return static_cast<void*>(n);
    }
    ++allocated_blocks_;
    return ::operator new((c + 1) * kClassStep);
  }

  void release(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    const std::size_t c = class_of(bytes);
    if (c >= kClassCount) {
      ::operator delete(p);
      return;
    }
    FreeNode* n = static_cast<FreeNode*>(p);
    n->next = free_[c];
    free_[c] = n;
    ++free_count_;
  }

  /// Pooled blocks ever fetched from the global allocator (not the free
  /// lists) — a flat curve under steady load is the "allocation-free in
  /// steady state" property the event core relies on.
  std::size_t allocated_blocks() const { return allocated_blocks_; }

  /// Blocks currently parked on the free lists.
  std::size_t free_blocks() const { return free_count_; }

  /// Telemetry (zero-cost with EEND_OBS off): free-list hits and requests
  /// past kMaxPooled that fell through to plain operator new.
  std::uint64_t reuse_hits() const { return reuse_hits_.value(); }
  std::uint64_t overflow_allocs() const { return overflow_allocs_.value(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(kClassStep >= sizeof(FreeNode));

  static std::size_t class_of(std::size_t bytes) {
    return (bytes - 1) / kClassStep;  // 1..64 -> 0, 65..128 -> 1, ...
  }

  FreeNode* free_[kClassCount] = {};
  std::size_t allocated_blocks_ = 0;
  std::size_t free_count_ = 0;
  obs::HotCounter reuse_hits_;
  obs::HotCounter overflow_allocs_;
};

}  // namespace eend::util
