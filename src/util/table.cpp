#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <locale>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace eend {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EEND_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  EEND_REQUIRE_MSG(cells.size() == header_.size(),
                   "row arity " << cells.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  // Pin the classic locale: ostringstream inherits std::locale::global(),
  // and a comma-decimal or digit-grouping locale would corrupt the CSV and
  // golden-table output.
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num_ci(double mean, double ci, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << mean << " +- " << ci;
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::setw(static_cast<int>(width[i])) << row[i];
      os << (i + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << row[i] << (i + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

void print_table(std::ostream& os, const std::string& title, const Table& t,
                 bool with_csv) {
  print_banner(os, title);
  os << t.to_text();
  if (with_csv) os << "\n[csv]\n" << t.to_csv();
  os.flush();
}

}  // namespace eend
