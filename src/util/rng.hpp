// Deterministic, fast pseudo-random number generation.
//
// Simulation results must be reproducible bit-for-bit across platforms, so we
// implement splitmix64 (seeding) and xoshiro256** (generation) from scratch
// instead of relying on std::mt19937 distributions, whose std::*_distribution
// outputs are not portable across standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace eend {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: all-purpose 64-bit generator (Blackman & Vigna, 2018).
/// Period 2^256 - 1; passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper bundling the generator with portable distributions.
/// Every experiment owns one Rng; sub-streams are derived with fork() so
/// adding a consumer does not perturb unrelated random sequences.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed), seed_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits — the standard xoshiro double recipe.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    EEND_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    EEND_REQUIRE(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      const std::uint64_t r = gen_();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    EEND_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (portable, no std distribution).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586476925286766559;
    spare_ = r * std::sin(two_pi * u2);
    have_spare_ = true;
    return r * std::cos(two_pi * u2);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    EEND_REQUIRE(mean > 0);
    double u = 0.0;
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Random index-free element pick.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    EEND_REQUIRE(!v.empty());
    return v[next_below(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Derive an independent child stream. Deterministic in (seed, salt).
  Rng fork(std::uint64_t salt) const {
    SplitMix64 sm(seed_ ^ (salt * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
    return Rng(sm.next());
  }

  std::uint64_t seed() const { return seed_; }

  Xoshiro256& engine() { return gen_; }

 private:
  Xoshiro256 gen_;
  std::uint64_t seed_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace eend
