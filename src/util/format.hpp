// Locale-independent, round-trippable number formatting for machine-readable
// output (CSV / JSON-lines). std::to_chars emits the shortest decimal string
// that parses back to exactly the same double (the "%.17g guarantee" without
// the noise digits), never consults the global locale, and is identical
// across platforms for a given IEEE-754 value — which is what makes golden
// files diffable at all.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace eend {

/// Shortest round-trip decimal representation of `v` ("2", "0.1",
/// "0.3333333333333333", "1e+21"). Valid as a JSON number except for
/// non-finite values, which the caller must reject or special-case.
inline std::string format_double(double v) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  EEND_REQUIRE(r.ec == std::errc{});
  return std::string(buf, r.ptr);
}

inline std::string format_u64(std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  EEND_REQUIRE(r.ec == std::errc{});
  return std::string(buf, r.ptr);
}

}  // namespace eend
