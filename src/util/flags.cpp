#include "util/flags.hpp"

#include <cstdlib>

namespace eend {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def
                         : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, _] : kv_) out.push_back(k);
  return out;
}

}  // namespace eend
