#include "net/stack.hpp"

#include <array>

#include "util/check.hpp"

namespace eend::net {

namespace {

struct PresetEntry {
  const char* name;
  StackSpec (*make)();
};

constexpr std::array<PresetEntry, 15> kPresets = {{
    {"dsr_active", StackSpec::dsr_active},
    {"dsr_odpm", StackSpec::dsr_odpm},
    {"dsr_odpm_pc", StackSpec::dsr_odpm_pc},
    {"titan_pc", StackSpec::titan_pc},
    {"dsrh_odpm_rate", StackSpec::dsrh_odpm_rate},
    {"dsrh_odpm_norate", StackSpec::dsrh_odpm_norate},
    {"dsdvh_odpm_psm", StackSpec::dsdvh_odpm_psm},
    {"dsdvh_odpm_span", StackSpec::dsdvh_odpm_span},
    {"mtpr_odpm", StackSpec::mtpr_odpm},
    {"mtpr_plus_odpm", StackSpec::mtpr_plus_odpm},
    {"dsr_perfect", StackSpec::dsr_perfect},
    {"titan_pc_perfect", StackSpec::titan_pc_perfect},
    {"dsrh_norate_perfect", StackSpec::dsrh_norate_perfect},
    {"mtpr_perfect", StackSpec::mtpr_perfect},
    {"mtpr_plus_perfect", StackSpec::mtpr_plus_perfect},
}};

}  // namespace

StackSpec stack_preset(const std::string& name) {
  for (const auto& p : kPresets)
    if (name == p.name) return p.make();
  std::string valid;
  for (const auto& p : kPresets) {
    if (!valid.empty()) valid += ", ";
    valid += p.name;
  }
  EEND_REQUIRE_MSG(false, "unknown stack preset \"" << name
                          << "\" (valid: " << valid << ")");
  return {};
}

std::vector<std::string> stack_preset_names() {
  std::vector<std::string> out;
  out.reserve(kPresets.size());
  for (const auto& p : kPresets) out.emplace_back(p.name);
  return out;
}

routing::LinkMetric StackSpec::metric() const {
  switch (routing) {
    case RoutingKind::Dsr:
    case RoutingKind::Titan:
    case RoutingKind::Dsdv:
      return routing::LinkMetric::Hop;
    case RoutingKind::Mtpr:
      return routing::LinkMetric::Mtpr;
    case RoutingKind::MtprPlus:
      return routing::LinkMetric::MtprPlus;
    case RoutingKind::Dsrh:
    case RoutingKind::Dsdvh:
      return routing::LinkMetric::JointH;
  }
  return routing::LinkMetric::Hop;
}

StackSpec StackSpec::dsr_active() {
  StackSpec s;
  s.label = "DSR-Active";
  s.routing = RoutingKind::Dsr;
  s.power = PowerKind::AlwaysActive;
  return s;
}

StackSpec StackSpec::dsr_odpm() {
  StackSpec s;
  s.label = "DSR-ODPM";
  s.routing = RoutingKind::Dsr;
  s.power = PowerKind::Odpm;
  return s;
}

StackSpec StackSpec::dsr_odpm_pc() {
  StackSpec s = dsr_odpm();
  s.label = "DSR-ODPM-PC";
  s.tpc = true;
  return s;
}

StackSpec StackSpec::titan_pc() {
  StackSpec s;
  s.label = "TITAN-PC";
  s.routing = RoutingKind::Titan;
  s.power = PowerKind::Odpm;
  s.tpc = true;
  return s;
}

StackSpec StackSpec::dsrh_odpm_rate() {
  StackSpec s;
  s.label = "DSRH-ODPM (rate)";
  s.routing = RoutingKind::Dsrh;
  s.power = PowerKind::Odpm;
  s.tpc = true;
  s.rate_info = true;
  return s;
}

StackSpec StackSpec::dsrh_odpm_norate() {
  StackSpec s = dsrh_odpm_rate();
  s.label = "DSRH-ODPM (norate)";
  s.rate_info = false;
  return s;
}

StackSpec StackSpec::dsdvh_odpm_psm() {
  StackSpec s;
  s.label = "DSDVH-ODPM(5,10)-PSM";
  s.routing = RoutingKind::Dsdvh;
  s.power = PowerKind::Odpm;
  s.tpc = true;
  s.odpm.keepalive_data_s = 5.0;
  s.odpm.keepalive_rrep_s = 10.0;
  s.psm.span_improvements = false;
  s.dsdv_quality_interval_s = 2.5;
  s.dsdv_quality_noise = 0.35;
  return s;
}

StackSpec StackSpec::dsdvh_odpm_span() {
  StackSpec s = dsdvh_odpm_psm();
  s.label = "DSDVH-ODPM(0.6,1.2)-Span";
  s.odpm.keepalive_data_s = 0.6;
  s.odpm.keepalive_rrep_s = 1.2;
  s.psm.span_improvements = true;
  return s;
}

StackSpec StackSpec::mtpr_odpm() {
  StackSpec s;
  s.label = "MTPR-ODPM";
  s.routing = RoutingKind::Mtpr;
  s.power = PowerKind::Odpm;
  s.tpc = true;
  return s;
}

StackSpec StackSpec::mtpr_plus_odpm() {
  StackSpec s = mtpr_odpm();
  s.label = "MTPR+-ODPM";
  s.routing = RoutingKind::MtprPlus;
  return s;
}

StackSpec StackSpec::dsr_perfect() {
  StackSpec s;
  s.label = "DSR";
  s.routing = RoutingKind::Dsr;
  s.power = PowerKind::PerfectSleep;
  return s;
}

StackSpec StackSpec::titan_pc_perfect() {
  StackSpec s;
  s.label = "TITAN-PC";
  s.routing = RoutingKind::Titan;
  s.power = PowerKind::PerfectSleep;
  s.tpc = true;
  return s;
}

StackSpec StackSpec::dsrh_norate_perfect() {
  StackSpec s;
  s.label = "DSRH (norate)";
  s.routing = RoutingKind::Dsrh;
  s.power = PowerKind::PerfectSleep;
  s.tpc = true;
  return s;
}

StackSpec StackSpec::mtpr_perfect() {
  StackSpec s;
  s.label = "MTPR";
  s.routing = RoutingKind::Mtpr;
  s.power = PowerKind::PerfectSleep;
  s.tpc = true;
  return s;
}

StackSpec StackSpec::mtpr_plus_perfect() {
  StackSpec s = mtpr_perfect();
  s.label = "MTPR+";
  s.routing = RoutingKind::MtprPlus;
  return s;
}

}  // namespace eend::net
