// Protocol-stack specifications: the named combinations of routing, power
// management and transmit power control that the paper evaluates.
//
// Presets (paper's figure legends):
//   DSR-Active              — DSR, all nodes always on
//   DSR-ODPM                — DSR + ODPM
//   DSR-ODPM-PC             — DSR + ODPM + TPC              (idle-first v1)
//   TITAN-PC                — TITAN + ODPM + TPC            (idle-first v2)
//   DSRH-ODPM (rate/norate) — reactive joint optimization   (joint)
//   DSDVH-ODPM(5,10)-PSM    — proactive joint optimization  (joint)
//   DSDVH-ODPM(0.6,1.2)-Span— + Span-improved PSM, short keep-alives
//   MTPR[-ODPM], MTPR+[-ODPM] — power control first         (comm-first)
//   *-Perfect               — §5.2.3 oracle sleep scheduling variants
#pragma once

#include <string>
#include <vector>

#include "mac/mac.hpp"
#include "mac/psm.hpp"
#include "power/power_manager.hpp"
#include "routing/metric.hpp"

namespace eend::net {

enum class RoutingKind { Dsr, Mtpr, MtprPlus, Dsrh, Titan, Dsdv, Dsdvh };
enum class PowerKind { AlwaysActive, Odpm, PerfectSleep, AlwaysPsm };

struct StackSpec {
  std::string label;
  RoutingKind routing = RoutingKind::Dsr;
  PowerKind power = PowerKind::AlwaysActive;
  bool tpc = false;        ///< transmit power control on data frames
  bool rate_info = false;  ///< DSRH rate variant (h with ri/B)
  power::OdpmConfig odpm;  ///< keep-alive timers
  mac::PsmConfig psm;      ///< beacon/ATIM/span settings

  /// DSDVH link-quality churn (see routing::DsdvConfig).
  double dsdv_quality_interval_s = 0.0;
  double dsdv_quality_noise = 0.0;

  /// TITAN participation scale: PSM nodes forward RREQs with probability
  /// p = titan_alpha / (1 + #AM neighbors). Ablation knob.
  double titan_alpha = 1.0;

  // ------------------------------------------------------------ presets ---
  static StackSpec dsr_active();
  static StackSpec dsr_odpm();
  static StackSpec dsr_odpm_pc();
  static StackSpec titan_pc();
  static StackSpec dsrh_odpm_rate();
  static StackSpec dsrh_odpm_norate();
  static StackSpec dsdvh_odpm_psm();   // keep-alives (5, 10), naive PSM
  static StackSpec dsdvh_odpm_span();  // keep-alives (0.6, 1.2), Span PSM
  static StackSpec mtpr_odpm();
  static StackSpec mtpr_plus_odpm();

  // §5.2.3 perfect-sleep variants.
  static StackSpec dsr_perfect();
  static StackSpec titan_pc_perfect();
  static StackSpec dsrh_norate_perfect();
  static StackSpec mtpr_perfect();
  static StackSpec mtpr_plus_perfect();

  /// The routing metric implied by the stack's routing kind.
  routing::LinkMetric metric() const;
};

/// Look up a preset by its manifest name (the snake_case factory name, e.g.
/// "dsr_odpm_pc", "titan_pc_perfect"). Throws CheckError listing the valid
/// names when unknown — manifests reference stacks this way.
StackSpec stack_preset(const std::string& name);

/// All preset names accepted by stack_preset(), in declaration order.
std::vector<std::string> stack_preset_names();

}  // namespace eend::net
