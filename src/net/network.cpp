#include "net/network.hpp"

#include "obs/counters.hpp"
#include "routing/dsdv.hpp"
#include "routing/reactive.hpp"

namespace eend::net {

namespace {

bool uses_psm(PowerKind k) {
  return k == PowerKind::Odpm || k == PowerKind::AlwaysPsm;
}

}  // namespace

Network::Network(const ScenarioConfig& scenario, const StackSpec& stack)
    : scenario_(scenario), stack_(stack), rng_(scenario.seed) {
  scenario_.validate();
  channel_ = std::make_unique<mac::Channel>(
      sim_, phy::Propagation(scenario_.card, scenario_.prop));
  channel_->set_field_extent(scenario_.field_w, scenario_.field_h);
  if (uses_psm(stack_.power)) {
    psm_ = std::make_unique<mac::PsmScheduler>(sim_, stack_.psm);
    psm_->set_announce_range(channel_->propagation().cs_range(
        scenario_.card.max_transmit_power()));
  }

  build_nodes(place_nodes(scenario_));
  // Powered-off nodes (replayed designs' inactive sets) go dark before
  // anything runs: a failed radio never transmits, locks receptions, or
  // wakes, so the node is absent from the network in every respect except
  // its position.
  for (const std::size_t id : scenario_.powered_off_nodes)
    radios_[id]->fail_permanently();
  build_routing();
  build_traffic();
}

Network::~Network() = default;

void Network::build_nodes(const std::vector<phy::Position>& positions) {
  const std::size_t n = positions.size();
  radios_.reserve(n);
  macs_.reserve(n);
  power_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<mac::NodeId>(i);
    radios_.push_back(std::make_unique<mac::NodeRadio>(
        id, positions[i], scenario_.card, sim_));
    channel_->register_radio(radios_.back().get());
    if (psm_) psm_->register_radio(radios_.back().get());
  }
  channel_->freeze_topology();

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<mac::NodeId>(i);
    macs_.push_back(std::make_unique<mac::Mac>(
        sim_, *channel_, *radios_[i], psm_.get(), rng_.fork(0xAC00 + i),
        scenario_.mac));

    switch (stack_.power) {
      case PowerKind::AlwaysActive:
        power_.push_back(std::make_unique<power::AlwaysActive>());
        break;
      case PowerKind::AlwaysPsm:
        power_.push_back(std::make_unique<power::AlwaysPsm>(*psm_, id));
        break;
      case PowerKind::Odpm:
        power_.push_back(
            std::make_unique<power::Odpm>(sim_, *psm_, id, stack_.odpm));
        break;
      case PowerKind::PerfectSleep:
        power_.push_back(std::make_unique<power::PerfectSleep>(*radios_[i]));
        break;
    }
  }
}

void Network::build_routing() {
  const double rate_over_b =
      stack_.rate_info
          ? scenario_.rate_pps * scenario_.payload_bits /
                scenario_.card.bandwidth_bps
          : 0.0;

  routing_.reserve(radios_.size());
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    routing::NodeEnv env;
    env.id = static_cast<mac::NodeId>(i);
    env.sim = &sim_;
    env.channel = channel_.get();
    env.mac = macs_[i].get();
    env.radio = radios_[i].get();
    env.power = power_[i].get();
    env.rng = rng_.fork(0xE000 + i);
    env.tpc_data = stack_.tpc;
    env.rate_over_b = rate_over_b;
    env.neighbor_is_am = [this](mac::NodeId n) {
      return power_[n]->is_active_mode();
    };
    env.deliver_app = [this](const mac::Packet& p) {
      tracker_.on_delivered(p, sim_.now());
    };
    env.record_route = [this](int flow, const std::vector<mac::NodeId>& r) {
      flow_routes_[flow] = r;
    };

    switch (stack_.routing) {
      case RoutingKind::Dsr:
      case RoutingKind::Mtpr:
      case RoutingKind::MtprPlus:
      case RoutingKind::Dsrh:
      case RoutingKind::Titan: {
        routing::ReactiveConfig rc;
        rc.metric = stack_.metric();
        rc.titan = stack_.routing == RoutingKind::Titan;
        rc.titan_alpha = stack_.titan_alpha;
        routing_.push_back(std::make_unique<routing::ReactiveRouting>(
            std::move(env), rc));
        break;
      }
      case RoutingKind::Dsdv:
      case RoutingKind::Dsdvh: {
        routing::DsdvConfig dc;
        dc.metric = stack_.metric();
        dc.advertise_pm_changes = stack_.routing == RoutingKind::Dsdvh;
        dc.quality_update_interval_s = stack_.dsdv_quality_interval_s;
        dc.quality_noise = stack_.dsdv_quality_noise;
        auto dsdv =
            std::make_unique<routing::DsdvRouting>(std::move(env), dc);
        // DSDVH: power-state changes trigger route updates.
        if (dc.advertise_pm_changes) {
          if (auto* odpm = dynamic_cast<power::Odpm*>(power_[i].get())) {
            routing::DsdvRouting* r = dsdv.get();
            odpm->set_mode_change_hook(
                [r](power::PmMode) { r->on_pm_mode_change(); });
          }
        }
        routing_.push_back(std::move(dsdv));
        break;
      }
    }
  }
}

void Network::build_traffic() {
  flows_ = make_flows(scenario_);
  for (const traffic::FlowSpec& f : flows_) {
    tracker_.register_flow(f);
    sources_.push_back(std::make_unique<traffic::CbrSource>(
        sim_, *routing_[f.source], f,
        [this](const traffic::FlowSpec& spec) { tracker_.on_sent(spec); }));
  }
}

void Network::battery_tick() {
  const double cap = scenario_.battery_capacity_j;
  for (auto& r : radios_) {
    if (r->failed()) continue;
    if (r->meter().peek_total(sim_.now()) >= cap) {
      r->fail_permanently();
      ++depleted_nodes_;
      if (first_death_s_ < 0.0) first_death_s_ = sim_.now();
    }
  }
  sim_.schedule_in(scenario_.battery_check_interval_s,
                   [this] { battery_tick(); });
}

void Network::schedule_node_failure(mac::NodeId id, sim::Time at) {
  EEND_REQUIRE(id < radios_.size());
  EEND_REQUIRE_MSG(!ran_, "failures must be scheduled before run()");
  sim_.schedule_at(at, [this, id] { radios_[id]->fail_permanently(); });
}

metrics::RunResult Network::run() {
  EEND_REQUIRE_MSG(!ran_, "Network::run() may only be called once");
  ran_ = true;

  // Powered-off nodes are excluded from metering entirely: a powered-off
  // interface draws nothing, unlike a sleeping one (p_sleep > 0), so their
  // meters must read zero rather than integrate sleep draw. Mid-run
  // failures (battery, schedule_node_failure) still meter normally.
  std::vector<char> powered_off(radios_.size(), 0);
  for (const std::size_t id : scenario_.powered_off_nodes)
    powered_off[id] = 1;
  for (auto& r : radios_)
    if (!powered_off[r->id()]) r->begin_metering(energy::RadioMode::Idle);
  for (auto& p : power_) p->start();
  if (psm_) psm_->start();
  for (auto& r : routing_) r->start();
  for (auto& s : sources_) s->start();
  if (scenario_.battery_capacity_j > 0.0)
    sim_.schedule_in(scenario_.battery_check_interval_s,
                     [this] { battery_tick(); });

  sim_.run_until(scenario_.duration_s);
  for (auto& r : radios_)
    if (!powered_off[r->id()]) r->finish_metering();

  metrics::RunResult out;
  out.sent = tracker_.sent();
  out.delivered = tracker_.delivered();
  out.delivery_ratio = tracker_.delivery_ratio();
  out.average_delay_s = tracker_.average_delay_s();

  for (const auto& r : radios_) {
    const auto& m = r->meter();
    out.total_energy_j += m.total();
    out.data_energy_j += m.data_energy();
    out.control_energy_j += m.control_energy();
    out.passive_energy_j += m.passive_energy();
    out.transmit_energy_j += m.transmit_energy();
    out.receive_energy_j += m.receive_energy();
    out.idle_energy_j += m.idle_energy();
    out.sleep_energy_j += m.sleep_energy();
    out.switch_energy_j += m.switch_energy();
    out.mac_collisions += r->rx_collisions();
  }
  out.goodput_bit_per_j =
      out.total_energy_j > 0.0
          ? static_cast<double>(tracker_.delivered_bits()) /
                out.total_energy_j
          : 0.0;

  for (const auto& r : routing_) {
    if (r->carried_data()) ++out.nodes_carrying_data;
    out.rreq_transmissions +=
        r->stats().rreq_sent + r->stats().rreq_forwarded;
    out.update_transmissions += r->stats().updates_sent;
  }
  for (const auto& m : macs_) {
    const mac::MacStats& ms = m->stats();
    out.mac_queue_drops += ms.queue_drops;
    out.mac_cs_drops += ms.cs_drops;
    out.mac_defers_exhausted += ms.defers_exhausted;
    out.mac_stale_bcast_drops += ms.stale_bcast_drops;
    out.mac_unicast_failures += ms.unicast_failures;
  }
  out.channel_transmissions = channel_->transmissions();
  out.flow_routes = flow_routes_;
  out.first_death_s = first_death_s_;
  out.depleted_nodes = depleted_nodes_;

  if (obs::CounterRegistry* reg = obs::current()) {
    reg->add("mac.queue_drops", out.mac_queue_drops);
    reg->add("mac.cs_drops", out.mac_cs_drops);
    reg->add("mac.defers_exhausted", out.mac_defers_exhausted);
    reg->add("mac.stale_bcast_drops", out.mac_stale_bcast_drops);
    reg->add("mac.unicast_failures", out.mac_unicast_failures);
    reg->add("mac.collisions", out.mac_collisions);
    reg->add("net.channel_transmissions", out.channel_transmissions);
    reg->add("energy.depleted_nodes", out.depleted_nodes);
    sim_.publish_counters(*reg);
  }
  return out;
}

}  // namespace eend::net
