#include "net/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "spatial/grid_index.hpp"

namespace eend::net {

ScenarioConfig::ScenarioConfig() : card(energy::cabletron()) {}

void ScenarioConfig::validate() const {
  EEND_REQUIRE_MSG(node_count > 0, "node_count must be positive");
  EEND_REQUIRE_MSG(field_w > 0.0 && field_h > 0.0, "field must be positive");
  EEND_REQUIRE_MSG(rate_pps > 0.0, "rate_pps must be positive");
  EEND_REQUIRE_MSG(payload_bits > 0, "payload_bits must be positive");
  EEND_REQUIRE_MSG(duration_s > 0.0, "duration_s must be positive");
  EEND_REQUIRE_MSG(flow_start_min_s <= flow_start_max_s,
                   "flow start window inverted");
  EEND_REQUIRE_MSG(flow_start_min_s >= 0.0, "flows cannot start before t=0");
  EEND_REQUIRE_MSG(card.max_range_m > 0.0, "card range must be positive");
  EEND_REQUIRE_MSG(card.bandwidth_bps > 0.0, "bandwidth must be positive");
  EEND_REQUIRE_MSG(battery_capacity_j >= 0.0, "battery cannot be negative");
  if (!explicit_positions.empty()) {
    EEND_REQUIRE_MSG(explicit_positions.size() == node_count,
                     "explicit_positions has " << explicit_positions.size()
                     << " entries for node_count " << node_count);
    EEND_REQUIRE_MSG(placement != Placement::Grid,
                     "explicit_positions and grid placement are exclusive");
    for (const phy::Position& p : explicit_positions)
      EEND_REQUIRE_MSG(std::isfinite(p.x) && std::isfinite(p.y),
                       "explicit_positions must be finite, got (" << p.x
                       << ", " << p.y << ")");
  }
  for (const double m : rate_multipliers)
    EEND_REQUIRE_MSG(m > 0.0 && std::isfinite(m),
                     "rate_multipliers must be positive and finite, got "
                         << m);
  std::set<std::size_t> off(powered_off_nodes.begin(),
                            powered_off_nodes.end());
  if (placement == Placement::Grid) {
    EEND_REQUIRE_MSG(grid_cols * grid_rows == node_count,
                     "grid dims must multiply to node_count");
    if (flows_left_right) {
      EEND_REQUIRE_MSG(flow_count <= grid_rows,
                       "one left->right flow per grid row at most");
      // Row-end endpoints are deterministic, so the powered-off invariant
      // is checkable here.
      for (std::size_t j = 0; j < flow_count; ++j)
        EEND_REQUIRE_MSG(!off.count(j * grid_cols) &&
                             !off.count(j * grid_cols + grid_cols - 1),
                         "left->right flow " << j
                         << " would use a powered-off row end");
    }
  }
  if (flow_count > 0 && !flows_left_right && flow_endpoints.empty()) {
    const std::size_t pool =
        flow_endpoint_pool > 0 ? std::min(flow_endpoint_pool, node_count)
                               : node_count;
    // Randomly sampled endpoints skip powered-off nodes (make_flows), so
    // the distinct-pair capacity is over the powered-on part of the pool.
    std::size_t off_in_pool = 0;
    for (const std::size_t id : off)
      if (id < pool) ++off_in_pool;
    const std::size_t avail = pool - off_in_pool;
    EEND_REQUIRE_MSG(avail >= 2,
                     "need >= 2 powered-on endpoint candidates for flows");
    EEND_REQUIRE_MSG(flow_count <= avail * (avail - 1),
                     "more distinct flows requested than powered-on "
                     "endpoint pairs");
  }
  if (!flow_endpoints.empty()) {
    EEND_REQUIRE_MSG(!flows_left_right,
                     "flow_endpoints and flows_left_right are exclusive");
    std::set<std::pair<std::size_t, std::size_t>> pairs;
    for (const auto& [s, d] : flow_endpoints) {
      EEND_REQUIRE_MSG(s < node_count && d < node_count,
                       "flow endpoint (" << s << ", " << d
                                         << ") out of range for node_count "
                                         << node_count);
      EEND_REQUIRE_MSG(s != d, "flow endpoint pair (" << s << ", " << s
                                                      << ") is a self-loop");
      EEND_REQUIRE_MSG(pairs.insert({s, d}).second,
                       "duplicate flow endpoint pair (" << s << ", " << d
                                                        << ")");
    }
  }
  if (!powered_off_nodes.empty()) {
    std::set<std::size_t> dark;
    for (const std::size_t id : powered_off_nodes) {
      EEND_REQUIRE_MSG(id < node_count, "powered-off node " << id
                       << " out of range for node_count " << node_count);
      EEND_REQUIRE_MSG(dark.insert(id).second,
                       "duplicate powered-off node " << id);
    }
    EEND_REQUIRE_MSG(dark.size() < node_count,
                     "cannot power off every node");
    for (const auto& [s, d] : flow_endpoints)
      EEND_REQUIRE_MSG(!dark.count(s) && !dark.count(d),
                       "flow endpoint pair (" << s << ", " << d
                       << ") uses a powered-off node");
  }
}

ScenarioConfig ScenarioConfig::small_network() {
  ScenarioConfig c;
  c.node_count = 50;
  c.field_w = c.field_h = 500.0;
  c.flow_count = 10;
  c.duration_s = 900.0;
  return c;
}

ScenarioConfig ScenarioConfig::large_network() {
  ScenarioConfig c;
  c.node_count = 200;
  c.field_w = c.field_h = 1300.0;
  c.flow_count = 20;
  c.duration_s = 600.0;
  return c;
}

ScenarioConfig ScenarioConfig::density_network(std::size_t nodes) {
  ScenarioConfig c = large_network();
  c.node_count = nodes;
  c.rate_pps = 4.0;  // paper: per-flow rate fixed at 4 Kb/s
  // Endpoints stay among the base 200 nodes across all densities.
  c.flow_endpoint_pool = 200;
  return c;
}

ScenarioConfig ScenarioConfig::huge_field(std::size_t nodes) {
  ScenarioConfig c = large_network();
  c.node_count = nodes;
  // Constant density: area grows linearly with the node count.
  const double side =
      1300.0 * std::sqrt(static_cast<double>(nodes) / 200.0);
  c.field_w = c.field_h = side;
  c.flow_count = 20;
  c.rate_pps = 2.0;
  // Endpoints stay among the first 200 ids at every scale, mirroring the
  // Table 2 methodology for cross-density comparability.
  c.flow_endpoint_pool = 200;
  c.duration_s = 300.0;
  return c;
}

ScenarioConfig ScenarioConfig::hypothetical_grid() {
  ScenarioConfig c;
  c.placement = Placement::Grid;
  c.grid_cols = 7;
  c.grid_rows = 7;
  c.node_count = 49;
  c.field_w = c.field_h = 300.0;
  c.card = energy::hypothetical_cabletron();
  c.flow_count = 7;
  c.flows_left_right = true;
  c.duration_s = 900.0;
  return c;
}

namespace {

std::vector<phy::Position> draw_uniform(const ScenarioConfig& cfg,
                                        std::uint64_t salt) {
  std::vector<phy::Position> pos(cfg.node_count);
  const Rng base = Rng(cfg.seed).fork(0x9051 + salt);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    Rng r = base.fork(i);
    pos[i] = phy::Position{r.uniform(0.0, cfg.field_w),
                           r.uniform(0.0, cfg.field_h)};
  }
  return pos;
}

bool connected_at_max_range(const std::vector<phy::Position>& pos,
                            double range, double field_w, double field_h) {
  // Spatial index instead of the O(N²) pair scan: the same predicate
  // (distance <= range), so the edge set — and the retry sequence drawing
  // placements — is unchanged at any node count.
  spatial::GridIndex idx;
  idx.build(pos, range, field_w, field_h);
  graph::Graph g(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    idx.for_each_within(i, range, [&](std::size_t j, double) {
      if (j > i)
        g.add_edge(static_cast<graph::NodeId>(i),
                   static_cast<graph::NodeId>(j));
    });
  return graph::is_connected(g);
}

}  // namespace

std::vector<phy::Position> place_nodes(const ScenarioConfig& cfg) {
  EEND_REQUIRE(cfg.node_count > 0);
  if (!cfg.explicit_positions.empty()) {
    EEND_REQUIRE(cfg.explicit_positions.size() == cfg.node_count);
    return cfg.explicit_positions;
  }
  if (cfg.placement == Placement::Grid) {
    EEND_REQUIRE(cfg.grid_cols * cfg.grid_rows == cfg.node_count);
    std::vector<phy::Position> pos;
    pos.reserve(cfg.node_count);
    const double dx =
        cfg.grid_cols > 1 ? cfg.field_w / static_cast<double>(cfg.grid_cols - 1)
                          : 0.0;
    const double dy =
        cfg.grid_rows > 1 ? cfg.field_h / static_cast<double>(cfg.grid_rows - 1)
                          : 0.0;
    // Row-major: node (row r, col c) has id r * cols + c.
    for (std::size_t r = 0; r < cfg.grid_rows; ++r)
      for (std::size_t c = 0; c < cfg.grid_cols; ++c)
        pos.push_back(phy::Position{static_cast<double>(c) * dx,
                                    static_cast<double>(r) * dy});
    return pos;
  }

  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    auto pos = draw_uniform(cfg, salt);
    if (connected_at_max_range(pos, cfg.card.max_range_m, cfg.field_w,
                               cfg.field_h))
      return pos;
  }
  EEND_REQUIRE_MSG(false, "could not draw a connected placement (node_count="
                              << cfg.node_count << ", field=" << cfg.field_w
                              << "x" << cfg.field_h << ")");
  return {};
}

std::vector<traffic::FlowSpec> make_flows(const ScenarioConfig& cfg) {
  std::vector<traffic::FlowSpec> flows;
  Rng rng = Rng(cfg.seed).fork(0xF10);

  const auto flow_rate = [&cfg](std::size_t j) {
    if (cfg.rate_multipliers.empty()) return cfg.rate_pps;
    return cfg.rate_pps * cfg.rate_multipliers[j % cfg.rate_multipliers.size()];
  };

  if (!cfg.flow_endpoints.empty()) {
    // Design replay: one flow per demand, endpoints fixed by the realized
    // design in demand order. Rates and start times go through the same
    // machinery as every other scenario, so the only difference from an
    // organic run is *where* the traffic flows.
    for (std::size_t j = 0; j < cfg.flow_endpoints.size(); ++j) {
      traffic::FlowSpec f;
      f.flow_id = static_cast<int>(j);
      f.source = static_cast<mac::NodeId>(cfg.flow_endpoints[j].first);
      f.destination =
          static_cast<mac::NodeId>(cfg.flow_endpoints[j].second);
      f.packets_per_s = flow_rate(j);
      f.payload_bits = cfg.payload_bits;
      f.start_s = rng.uniform(cfg.flow_start_min_s, cfg.flow_start_max_s);
      flows.push_back(f);
    }
    return flows;
  }

  if (cfg.flows_left_right) {
    // Grid study: source = left end of row j, destination = right end.
    EEND_REQUIRE(cfg.placement == Placement::Grid);
    EEND_REQUIRE(cfg.flow_count <= cfg.grid_rows);
    for (std::size_t j = 0; j < cfg.flow_count; ++j) {
      traffic::FlowSpec f;
      f.flow_id = static_cast<int>(j);
      f.source = static_cast<mac::NodeId>(j * cfg.grid_cols);
      f.destination =
          static_cast<mac::NodeId>(j * cfg.grid_cols + cfg.grid_cols - 1);
      f.packets_per_s = flow_rate(j);
      f.payload_bits = cfg.payload_bits;
      f.start_s = rng.uniform(cfg.flow_start_min_s, cfg.flow_start_max_s);
      flows.push_back(f);
    }
    return flows;
  }

  const std::size_t pool = cfg.flow_endpoint_pool > 0
                               ? std::min(cfg.flow_endpoint_pool,
                                          cfg.node_count)
                               : cfg.node_count;
  EEND_REQUIRE_MSG(pool >= 2, "need at least two nodes for a flow");
  // Powered-off nodes can neither source nor sink traffic; skip them in
  // the draw (validate() guarantees enough powered-on candidates remain).
  // With no powered-off nodes the rejection path never triggers, so the
  // historical endpoint sequence is untouched.
  const std::set<std::size_t> off(cfg.powered_off_nodes.begin(),
                                  cfg.powered_off_nodes.end());
  std::set<std::pair<mac::NodeId, mac::NodeId>> used;
  for (std::size_t j = 0; j < cfg.flow_count; ++j) {
    traffic::FlowSpec f;
    f.flow_id = static_cast<int>(j);
    for (;;) {
      const auto s = static_cast<mac::NodeId>(rng.next_below(pool));
      const auto d = static_cast<mac::NodeId>(rng.next_below(pool));
      if (s == d || off.count(s) || off.count(d)) continue;
      if (!used.insert({s, d}).second) continue;
      f.source = s;
      f.destination = d;
      break;
    }
    f.packets_per_s = flow_rate(j);
    f.payload_bits = cfg.payload_bits;
    f.start_s = rng.uniform(cfg.flow_start_min_s, cfg.flow_start_max_s);
    flows.push_back(f);
  }
  return flows;
}

}  // namespace eend::net
