// Network: assembles one complete simulation from a scenario and a protocol
// stack — radios, channel, PSM scheduler, power managers, routing protocols
// and CBR sources — runs it, and reports the paper's metrics.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "mac/channel.hpp"
#include "mac/mac.hpp"
#include "mac/psm.hpp"
#include "metrics/run_metrics.hpp"
#include "net/scenario.hpp"
#include "net/stack.hpp"
#include "power/power_manager.hpp"
#include "routing/protocol.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr.hpp"

namespace eend::net {

class Network {
 public:
  Network(const ScenarioConfig& scenario, const StackSpec& stack);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Run the simulation to scenario.duration_s and collect results.
  /// Callable once.
  metrics::RunResult run();

  /// Failure injection: node `id` dies (radio goes dark permanently) at
  /// simulation time `at`. Call before run().
  void schedule_node_failure(mac::NodeId id, sim::Time at);

  // ------------------------------------------------------ introspection ---
  sim::Simulator& simulator() { return sim_; }
  mac::Channel& channel() { return *channel_; }
  mac::PsmScheduler* psm() { return psm_.get(); }
  routing::RoutingProtocol& routing(mac::NodeId id) { return *routing_[id]; }
  power::PowerManager& power(mac::NodeId id) { return *power_[id]; }
  mac::NodeRadio& radio(mac::NodeId id) { return *radios_[id]; }
  const std::vector<traffic::FlowSpec>& flows() const { return flows_; }
  std::size_t node_count() const { return radios_.size(); }
  const ScenarioConfig& scenario() const { return scenario_; }
  const StackSpec& stack() const { return stack_; }

 private:
  void build_nodes(const std::vector<phy::Position>& positions);
  void build_routing();
  void build_traffic();

  ScenarioConfig scenario_;
  StackSpec stack_;
  sim::Simulator sim_;
  Rng rng_;

  std::unique_ptr<mac::Channel> channel_;
  std::unique_ptr<mac::PsmScheduler> psm_;
  std::vector<std::unique_ptr<mac::NodeRadio>> radios_;
  std::vector<std::unique_ptr<mac::Mac>> macs_;
  std::vector<std::unique_ptr<power::PowerManager>> power_;
  std::vector<std::unique_ptr<routing::RoutingProtocol>> routing_;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources_;
  std::vector<traffic::FlowSpec> flows_;

  metrics::FlowTracker tracker_;
  std::map<int, std::vector<mac::NodeId>> flow_routes_;
  double first_death_s_ = -1.0;
  std::size_t depleted_nodes_ = 0;
  bool ran_ = false;

  void battery_tick();
};

}  // namespace eend::net
