// Scenario configuration and node/flow placement.
//
// Placement is deterministic per (seed, node index): node i's position is
// drawn from an rng stream forked on i, so growing a 300-node network to
// 400 nodes leaves the first 300 positions — and any flow endpoints chosen
// among them — untouched. This is exactly the paper's Table 2 methodology
// ("without changing the positions of source and destination nodes").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "energy/radio_card.hpp"
#include "mac/mac.hpp"
#include "phy/position.hpp"
#include "phy/propagation.hpp"
#include "traffic/cbr.hpp"
#include "util/rng.hpp"

namespace eend::net {

enum class Placement { UniformRandom, Grid };

struct ScenarioConfig {
  // topology
  std::size_t node_count = 50;
  double field_w = 500.0;
  double field_h = 500.0;
  Placement placement = Placement::UniformRandom;
  std::size_t grid_cols = 7;  ///< for Placement::Grid
  std::size_t grid_rows = 7;
  energy::RadioCard card;     ///< defaults to Cabletron (set in ctor)
  phy::PropagationConfig prop;

  // traffic
  std::size_t flow_count = 10;
  double rate_pps = 2.0;             ///< packets/s (paper: Kbit/s == pkt/s)
  std::uint32_t payload_bits = 1024; ///< 128-byte packets
  double flow_start_min_s = 20.0;
  double flow_start_max_s = 25.0;
  /// When > 0, flow endpoints are sampled only from the first K node ids
  /// (density-sweep consistency). 0 = all nodes.
  std::size_t flow_endpoint_pool = 0;
  /// Heterogeneous traffic: flow j sends at rate_pps * rate_multipliers[j %
  /// size]. Empty = homogeneous (every flow at rate_pps, the paper's setup).
  /// Rate sweeps scale the whole mix, so "rate" stays the x-axis.
  std::vector<double> rate_multipliers;
  /// Grid studies: flow j runs from the left edge of row j to its right
  /// edge (paper §5.2.3) instead of random endpoints.
  bool flows_left_right = false;
  /// Design-driven traffic (the replay/ subsystem): when non-empty, flow j
  /// is exactly (source, destination) = flow_endpoints[j] — one CBR flow
  /// per design demand, in demand order — instead of randomly sampled
  /// endpoints. Rates still come from rate_pps · rate_multipliers[j % size]
  /// and start times from the usual seeded window, so a replayed design
  /// shares every traffic knob with the organic scenarios. flow_count is
  /// ignored (the endpoint list defines the flows).
  std::vector<std::pair<std::size_t, std::size_t>> flow_endpoints;

  // topology, continued
  /// Authoritative node positions (the churn/ subsystem maps a perturbed —
  /// possibly moved — topology here): when non-empty, place_nodes returns
  /// them verbatim instead of drawing from the seed, so a scenario can
  /// replay a field whose positions no seeded draw reproduces. Size must
  /// equal node_count; connectivity is the caller's responsibility (churn
  /// traces only emit routable topologies).
  std::vector<phy::Position> explicit_positions;
  /// Nodes powered off for the whole run (the replay/ subsystem maps a
  /// design's inactive node set here): their radios are failed before t=0,
  /// they are excluded from energy metering entirely (a powered-off
  /// interface draws nothing — unlike sleep), and they never count toward
  /// battery deaths. Ids must be in range and unique; no flow may end at
  /// one (explicit flow_endpoints and left->right grid flows are rejected
  /// by validate(), randomly sampled endpoints skip them in the draw).
  std::vector<std::size_t> powered_off_nodes;

  // execution
  double duration_s = 900.0;
  std::uint64_t seed = 1;
  mac::MacConfig mac;

  // --- lifetime extension (paper future work: "incorporating lifetime
  // constraints"). With a finite per-node battery, a node whose consumed
  // energy reaches the capacity dies (radio goes dark); RunResult reports
  // first-death time and the depleted-node count. 0 = infinite battery.
  double battery_capacity_j = 0.0;
  double battery_check_interval_s = 1.0;

  ScenarioConfig();

  /// Throws CheckError on nonsensical configurations (non-positive rates,
  /// durations, fields, zero-size grids, flow windows outside the run…).
  /// Network's constructor calls this; harness code may call it earlier.
  void validate() const;

  // ---- paper scenario presets ----
  static ScenarioConfig small_network();   ///< §5.2.1: 50 nodes, 500x500
  static ScenarioConfig large_network();   ///< §5.2.2: 200 nodes, 1300x1300
  static ScenarioConfig density_network(std::size_t nodes);  ///< Table 2
  static ScenarioConfig hypothetical_grid();  ///< §5.2.3: 7x7, 300x300
  /// Beyond the paper: 1k-10k nodes with the field scaled to hold the
  /// large-network density constant (side = 1300 * sqrt(nodes / 200)), so
  /// the per-node neighborhood — and hence the MAC contention regime —
  /// matches §5.2.2 while the topology grows. Requires the channel's
  /// spatial index to be tractable.
  static ScenarioConfig huge_field(std::size_t nodes);
};

/// Deterministic node placement for a scenario. Uniform-random placements
/// are retried with a salted seed until the max-power connectivity graph is
/// connected (disconnected layouts cannot satisfy arbitrary demands).
std::vector<phy::Position> place_nodes(const ScenarioConfig& cfg);

/// Deterministic flow selection (random distinct endpoints, or left->right
/// pairs for grid scenarios).
std::vector<traffic::FlowSpec> make_flows(const ScenarioConfig& cfg);

}  // namespace eend::net
