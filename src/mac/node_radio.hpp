// Per-node radio front-end: sleep/awake state, transmit/receive sessions,
// interference tracking and energy-meter integration.
//
// The Channel drives rf_begin/rf_end/try_lock_rx/finish_rx; the MAC drives
// begin_tx/end_tx; power-management policies drive sleep()/wake()/holds.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "energy/energy_meter.hpp"
#include "mac/packet.hpp"
#include "phy/position.hpp"
#include "sim/simulator.hpp"

namespace eend::mac {

/// Radio state of one node. Half-duplex: a transmitting radio cannot lock a
/// reception and vice versa.
class NodeRadio {
 public:
  NodeRadio(NodeId id, phy::Position pos, const energy::RadioCard& card,
            sim::Simulator& sim);

  NodeId id() const { return id_; }
  const phy::Position& position() const { return pos_; }
  const energy::RadioCard& card() const { return card_; }

  /// Start/stop energy metering (called by the experiment harness).
  void begin_metering(energy::RadioMode initial);
  void finish_metering();
  const energy::EnergyMeter& meter() const { return meter_; }

  // ------------------------------------------------- failure injection ---
  /// Kill the node: the radio goes dark permanently (any in-progress
  /// reception is corrupted; wake() becomes a no-op). Used by failure-
  /// injection tests and robustness studies.
  void fail_permanently();
  bool failed() const { return failed_; }

  // -------------------------------------------------- sleep management ---
  bool sleeping() const { return sleeping_; }

  /// Put the radio to sleep. Precondition: can_sleep().
  void sleep();

  /// Wake the radio (no-op when awake). Applies the card's switch cost via
  /// the meter's transition accounting.
  void wake();

  /// Keep the radio awake (waking it if needed) until at least time t.
  void hold_awake_until(sim::Time t);

  /// Current hold expiry (0 when never held).
  sim::Time hold_until() const { return hold_until_; }

  /// Busy hold: the MAC raises this while it has queued frames.
  void set_busy_hold(bool held);

  /// May the radio sleep right now? (no holds, no sessions, queue idle)
  bool can_sleep() const;

  /// Passive-mode override: PerfectSleep policies bill passive time at
  /// sleep draw while keeping the radio logically awake.
  void set_passive_draw_is_sleep(bool v);

  // ------------------------------------------- transmit path (MAC only) ---
  bool transmitting() const { return transmitting_; }
  void begin_tx(double power_w, energy::Category cat);
  void end_tx();

  /// Charge a short control burst (ATIM announcement) without a state
  /// change; no-op when metering is off.
  void charge_tx_burst(double duration, double power_w,
                       energy::Category cat) {
    if (metering_) meter_.charge_tx_burst(duration, power_w, cat);
  }

  // ------------------------------------------- channel-driven reception ---
  /// Another transmission's footprint now covers this node.
  /// Corrupts any in-progress reception lock (collision).
  void rf_begin();
  void rf_end();
  int rf_count() const { return rf_count_; }

  /// Try to lock onto `frame` (called right after its rf_begin sweep).
  /// Succeeds only when awake, not transmitting, not already locked, and
  /// this is the only signal present. Starts billing receive energy.
  bool try_lock_rx(const Frame& frame);

  bool locked_rx() const { return rx_lock_.has_value(); }

  /// Finish the reception of `frame_uid` (its airtime elapsed). Returns
  /// true when the lock survived uncorrupted; the radio returns to its
  /// passive mode either way. No-op/false when this radio never locked it.
  bool finish_rx(std::uint64_t frame_uid);

  // -------------------------------------------------------- statistics ---
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t rx_collisions() const { return rx_collisions_; }

 private:
  void enter_passive(double now);

  struct RxLock {
    std::uint64_t frame_uid;
    bool corrupted = false;
  };

  NodeId id_;
  phy::Position pos_;
  energy::RadioCard card_;
  sim::Simulator& sim_;
  energy::EnergyMeter meter_;

  bool metering_ = false;
  bool failed_ = false;
  bool sleeping_ = false;
  bool transmitting_ = false;
  bool busy_hold_ = false;
  bool passive_is_sleep_ = false;
  sim::Time hold_until_ = 0.0;
  int rf_count_ = 0;
  std::optional<RxLock> rx_lock_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t rx_collisions_ = 0;
};

}  // namespace eend::mac
