// Per-node CSMA/CA MAC with PSM-aware buffered delivery.
//
// Transmission path:
//   * frames queue FIFO (bounded; overflow drops — the capacity-limit
//     mechanism behind the paper's high-rate delivery degradation);
//   * carrier sensing with binary-exponential random backoff;
//   * unicast reliability is abstracted: the frame airtime includes the
//     ACK exchange, and the sender learns synchronously whether the target
//     decoded the frame, retrying up to retry_limit before reporting
//     failure upward (DSR uses this to emit route errors);
//   * frames destined to PSM-sleeping nodes are announced at the next
//     beacon (the receiver is held awake per naive-PSM or Span rules) and
//     transmitted in the following data window. Broadcasts in a network
//     with PSM neighbors are likewise beacon-synchronized, which is the
//     transmission "scheduling" the paper credits for flood scalability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "mac/channel.hpp"
#include "mac/packet.hpp"
#include "mac/psm.hpp"
#include "util/rng.hpp"

namespace eend::mac {

struct MacConfig {
  double slot_s = 20e-6;
  int cw_min_slots = 31;
  int cw_max_slots = 1023;
  int retry_limit = 6;        ///< unicast retransmissions after a collision
  int max_defer_rounds = 10;  ///< beacon-window defers before giving up
  int max_cs_defers = 400;    ///< carrier-sense busy retries before drop
  double frame_overhead_s = 4e-4;   ///< PHY preamble + IFS + ACK airtime
  std::uint32_t mac_header_bits = 224;  ///< 28-byte MAC header
  std::size_t queue_limit = 64;
  double bcast_jitter_s = 0.01;   ///< random delay before flooding forward
  double window_jitter_s = 0.03;  ///< unicast tx-start spread in a window
  /// Broadcasts deferred to PSM data windows spread over this fraction of
  /// the post-ATIM interval (desynchronizes beacon-aligned flood bursts).
  double bcast_window_fraction = 0.12;
  /// Broadcasts older than this are dropped instead of transmitted —
  /// stale flood fragments (RREQs from long-gone discovery rounds) must
  /// not clog the queue ahead of data.
  double bcast_max_age_s = 1.0;
};

/// MAC statistics used by the evaluation metrics.
struct MacStats {
  std::uint64_t queue_drops = 0;     ///< frames rejected: queue full
  std::uint64_t unicast_failures = 0;///< retry limit exhausted
  std::uint64_t cs_drops = 0;        ///< gave up waiting for a clear channel
  std::uint64_t defers_exhausted = 0;///< PSM window retries exhausted
  std::uint64_t stale_bcast_drops = 0;///< broadcasts aged out in the queue
  std::uint64_t frames_ok = 0;
};

class Mac {
 public:
  /// Result callback for unicasts: success = target decoded the frame.
  using SendCallback = std::function<void(bool success)>;
  /// Upcall for received packets addressed to this node (or broadcast).
  using ReceiveHandler = std::function<void(const Packet&, NodeId from)>;

  Mac(sim::Simulator& sim, Channel& channel, NodeRadio& radio,
      PsmScheduler* psm, Rng rng, MacConfig cfg);

  NodeId id() const { return radio_.id(); }
  const MacConfig& config() const { return cfg_; }
  const MacStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.size(); }

  void set_receive_handler(ReceiveHandler fn) { on_receive_ = std::move(fn); }
  void set_promiscuous_handler(ReceiveHandler fn) {
    on_promiscuous_ = std::move(fn);
  }

  /// Enqueue a unicast. Returns false (and drops) when the queue is full;
  /// `cb` fires exactly once otherwise.
  bool send_unicast(Packet packet, NodeId next_hop, double tx_power,
                    SendCallback cb = nullptr);

  /// Enqueue a broadcast (fire-and-forget; no retries, no result).
  bool send_broadcast(Packet packet, double tx_power);

  /// Airtime of one frame carrying `size_bits` of payload.
  double frame_duration(std::uint32_t size_bits) const;

 private:
  struct Outgoing {
    Packet packet;
    NodeId next_hop;  // kBroadcast for broadcast
    double tx_power;
    SendCallback cb;
    double enqueued_at = 0.0;
    int retries = 0;
    int cs_defers = 0;
    int defer_rounds = 0;
    int backoff_stage = 0;
  };

  void on_frame_delivered(const Frame& f);
  void on_frame_overheard(const Frame& f);

  void process_head();
  void schedule_attempt(double delay);
  void attempt_head();
  void transmit_head();
  void defer_to_window(bool announce_broadcast);
  void finish_head(bool success);
  double backoff_delay(int stage);

  sim::Simulator& sim_;
  Channel& channel_;
  NodeRadio& radio_;
  PsmScheduler* psm_;  // nullptr when the whole network is always-on
  Rng rng_;
  MacConfig cfg_;
  MacStats stats_;

  std::deque<Outgoing> queue_;
  bool head_active_ = false;  // a timer/airtime event for the head exists
  ReceiveHandler on_receive_;
  ReceiveHandler on_promiscuous_;
};

}  // namespace eend::mac
