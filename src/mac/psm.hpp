// IEEE 802.11 power-save mode machinery: synchronized beacons, ATIM
// windows, and the sleep/wake schedule of PSM-mode nodes.
//
// Model (paper §5.2 parameters: beacon 0.3 s, ATIM window 0.02 s):
//  * all nodes share a synchronized beacon clock;
//  * every PSM-mode node wakes at each beacon and listens for the ATIM
//    window;
//  * at the end of the ATIM window a PSM node sleeps unless it was held
//    awake (announced traffic, pending transmissions, in-progress frames);
//  * traffic to PSM nodes is announced during the ATIM window and
//    transmitted after it ("data window"); with the *naive* IEEE PSM rules
//    an announced node stays awake for the entire beacon interval, while
//    the Span-style improvement ("advertised traffic window") lets it
//    sleep as soon as the advertised frames have been received.
//
// Beacon/ATIM frames themselves are not simulated as transmissions; their
// cost appears as the awake time they impose (the dominant term). This is
// the standard abstraction and is documented in DESIGN.md.
#pragma once

#include <vector>

#include "mac/node_radio.hpp"
#include "sim/simulator.hpp"

namespace eend::mac {

struct PsmConfig {
  double beacon_interval_s = 0.3;
  double atim_window_s = 0.02;
  /// Span-style improvements: advertised broadcasts + advertised traffic
  /// window (nodes sleep right after receiving announced traffic).
  bool span_improvements = false;

  /// ATIM-window capacity model: every announcement occupies the shared
  /// medium for atim_frame_s within the 20 ms window. Announcements in a
  /// carrier-sense neighborhood beyond the window's usable share fail and
  /// the frame waits for the next beacon — the congestion-collapse
  /// mechanism that limits PSM networks at high density.
  double atim_frame_s = 0.8e-3;
  double atim_utilization = 0.35; ///< usable fraction (CSMA contention)
};

/// Global, beacon-synchronized PSM coordinator. Nodes are either in AM
/// (never touched by the scheduler) or PSM (woken each beacon, slept after
/// the ATIM window when possible).
class PsmScheduler {
 public:
  PsmScheduler(sim::Simulator& sim, PsmConfig cfg);

  const PsmConfig& config() const { return cfg_; }

  /// Register radios in id order before start().
  void register_radio(NodeRadio* radio);

  /// Start beacon ticking (idempotent).
  void start();

  /// Switch a node between AM (psm=false) and PSM (psm=true).
  /// Entering PSM: the node sleeps at the next opportunity.
  /// Entering AM: the node wakes immediately and stays awake.
  void set_psm(NodeId id, bool psm);

  bool is_psm(NodeId id) const {
    EEND_REQUIRE(id < psm_.size());
    return psm_[id];
  }

  /// Any PSM-mode node among `ids`?
  bool any_psm(std::span<const NodeId> ids) const;

  /// Time of the next beacon strictly after `now`.
  sim::Time next_beacon(sim::Time now) const;

  /// Time the next data window opens (next beacon + ATIM window).
  sim::Time next_data_window(sim::Time now) const {
    return next_beacon(now) + cfg_.atim_window_s;
  }

  /// End of the beacon interval that starts at the next beacon.
  sim::Time next_interval_end(sim::Time now) const {
    return next_beacon(now) + cfg_.beacon_interval_s;
  }

  std::size_t psm_count() const;

  /// Re-evaluate whether a PSM node can sleep now (or as soon as its hold
  /// expires). MACs call this after receptions complete and queues drain —
  /// this is what makes the Span-style advertised-traffic-window actually
  /// save energy (naive PSM only sleeps at ATIM boundaries).
  void reconsider(NodeId id);

  /// Set the carrier-sense range used for ATIM contention accounting.
  /// 0 disables the capacity model (announcements always succeed).
  void set_announce_range(double meters) { announce_range_m_ = meters; }

  /// Attempt an ATIM announcement from `sender` in the current beacon
  /// interval. Fails when the sender's carrier-sense neighborhood has
  /// exhausted the window's airtime; on success the sender is charged the
  /// announcement's transmit energy.
  bool try_announce(NodeId sender);

  std::uint64_t announce_failures() const { return announce_failures_; }

 private:
  void on_beacon();
  void on_atim_end();
  void try_sleep(NodeId id);

  struct Announcement {
    NodeId sender;
    double airtime;
  };

  sim::Simulator& sim_;
  PsmConfig cfg_;
  std::vector<NodeRadio*> radios_;
  std::vector<bool> psm_;
  bool started_ = false;
  double announce_range_m_ = 0.0;
  std::vector<Announcement> interval_announcements_;
  std::uint64_t announce_failures_ = 0;
};

}  // namespace eend::mac
