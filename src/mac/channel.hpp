// The shared wireless channel.
//
// A transmission occupies an airtime interval and a spatial footprint
// derived from its power level. The channel implements:
//   * carrier sensing   — is any transmission audible at a node?
//   * reception locking — a radio decodes a frame iff it is the only signal
//                         present at the radio for the frame's full airtime
//                         (collision = overlap within interference range;
//                         the hidden-terminal problem emerges naturally)
//   * overhearing       — awake radios in range lock onto frames not
//                         addressed to them and pay receive energy
//
// Positions are static (the paper studies static networks), so each node's
// potential-interferer set is precomputed once via a uniform-grid spatial
// index (spatial::GridIndex) — construction is O(N·k), not the old O(N²)
// all-pairs scan — and stored in one flattened CSR arena (per-node spans
// sorted by distance) instead of N separate vectors. Per-transmission work
// is O(|neighborhood|), not O(N), and the hot frame-delivery path walks
// arena prefixes without allocating.
#pragma once

#include <functional>
#include <vector>

#include "mac/node_radio.hpp"
#include "mac/packet.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "spatial/grid_index.hpp"

namespace eend::mac {

/// Outcome of one frame transmission, reported to the sending MAC.
struct TxResult {
  bool target_received = false;  ///< meaningful for unicast only
};

class Channel {
 public:
  Channel(sim::Simulator& sim, phy::Propagation prop)
      : sim_(sim), prop_(std::move(prop)) {}

  /// Register radios in node-id order (id must equal index).
  void register_radio(NodeRadio* radio);

  /// Optional extent hint for the spatial index — the scenario's field
  /// dimensions, forwarded by net::Network. Call before freeze_topology();
  /// omitting it falls back to the positions' bounding box.
  void set_field_extent(double w, double h);

  /// Call after all radios are registered: builds the spatial index and the
  /// per-node neighbor arena.
  void freeze_topology();

  NodeRadio& radio(NodeId id) {
    EEND_REQUIRE(id < radios_.size());
    return *radios_[id];
  }
  const NodeRadio& radio(NodeId id) const {
    EEND_REQUIRE(id < radios_.size());
    return *radios_[id];
  }
  std::size_t node_count() const { return radios_.size(); }

  const phy::Propagation& propagation() const { return prop_; }

  /// The largest footprint any transmission can have (full-power carrier-
  /// sense / interference range): the neighbor arena's horizon. Queries
  /// beyond it would silently truncate, so they are rejected.
  double max_reach() const { return max_reach_; }

  /// The spatial index the topology was frozen with (tests, benches, and
  /// the future intra-replication sharding share its cell decomposition).
  const spatial::GridIndex& grid() const { return grid_; }

  /// Non-allocating neighbor query: visit nodes within `range` meters of
  /// `of` (excluding `of`) in ascending distance order (ties by id).
  /// `fn(NodeId id, double dist)`; a bool-returning fn stops the walk when
  /// it returns false. This is the hot-path overload — it walks a prefix
  /// of the frozen CSR arena and never allocates.
  template <typename Fn>
  void for_each_within(NodeId of, double range, Fn&& fn) const {
    EEND_REQUIRE(frozen_ && of < radios_.size());
    EEND_REQUIRE_MSG(range <= max_reach_ + 1e-9,
                     "neighbor query range " << range
                         << " exceeds the frozen horizon " << max_reach_);
    const std::uint32_t end = nbr_start_[of + 1];
    for (std::uint32_t k = nbr_start_[of]; k < end; ++k) {
      const Neighbor& n = nbr_arena_[k];
      if (n.dist > range) break;  // sorted by distance
      if constexpr (std::is_invocable_r_v<bool, Fn, NodeId, double>) {
        if (!fn(n.id, n.dist)) return;
      } else {
        fn(n.id, n.dist);
      }
    }
  }

  /// Nodes within `range` meters of `of` (excluding `of` itself).
  /// Allocating twin of for_each_within — cold paths only.
  std::vector<NodeId> nodes_within(NodeId of, double range) const;

  /// Nodes that can decode a max-power transmission from `of` — the
  /// connectivity neighbors used by routing and scenario validation.
  std::vector<NodeId> connectivity_neighbors(NodeId of) const {
    return nodes_within(of, prop_.max_range());
  }

  /// Would a carrier-sensing node hear any ongoing transmission right now?
  bool carrier_busy(NodeId listener) const;

  /// Put `frame` on the air for `duration` seconds. The sender radio must
  /// be awake and idle. `on_done` fires when airtime ends, after receiver
  /// delivery callbacks have run.
  void transmit(const Frame& frame, double duration,
                std::function<void(const TxResult&)> on_done);

  /// Delivery hooks, keyed by node id: invoked for successfully decoded
  /// frames addressed to the node (or broadcast). Overhear hooks fire for
  /// decodable frames addressed elsewhere.
  void set_deliver_handler(NodeId id, std::function<void(const Frame&)> fn);
  void set_overhear_handler(NodeId id, std::function<void(const Frame&)> fn);

  std::uint64_t transmissions() const { return transmissions_; }

 private:
  struct ActiveTx {
    std::uint64_t frame_uid;
    NodeId sender;
    double cs_range;
    sim::Time end;
  };

  struct Neighbor {
    NodeId id;
    double dist;
  };

  sim::Simulator& sim_;
  phy::Propagation prop_;
  std::vector<NodeRadio*> radios_;
  spatial::GridIndex grid_;
  // CSR neighbor arena: node i's neighbors (within the max footprint,
  // ascending distance) are nbr_arena_[nbr_start_[i] .. nbr_start_[i+1]).
  std::vector<std::uint32_t> nbr_start_;
  std::vector<Neighbor> nbr_arena_;
  std::vector<ActiveTx> active_;
  std::vector<std::function<void(const Frame&)>> deliver_;
  std::vector<std::function<void(const Frame&)>> overhear_;
  double field_w_ = 0.0, field_h_ = 0.0;
  double max_reach_ = 0.0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t next_frame_uid_ = 1;
  bool frozen_ = false;
};

}  // namespace eend::mac
