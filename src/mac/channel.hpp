// The shared wireless channel.
//
// A transmission occupies an airtime interval and a spatial footprint
// derived from its power level. The channel implements:
//   * carrier sensing   — is any transmission audible at a node?
//   * reception locking — a radio decodes a frame iff it is the only signal
//                         present at the radio for the frame's full airtime
//                         (collision = overlap within interference range;
//                         the hidden-terminal problem emerges naturally)
//   * overhearing       — awake radios in range lock onto frames not
//                         addressed to them and pay receive energy
//
// Positions are static (the paper studies static networks), so each node's
// potential-interferer set is precomputed once; per-transmission work is
// O(|neighborhood|), not O(N).
#pragma once

#include <functional>
#include <vector>

#include "mac/node_radio.hpp"
#include "mac/packet.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"

namespace eend::mac {

/// Outcome of one frame transmission, reported to the sending MAC.
struct TxResult {
  bool target_received = false;  ///< meaningful for unicast only
};

class Channel {
 public:
  Channel(sim::Simulator& sim, phy::Propagation prop)
      : sim_(sim), prop_(std::move(prop)) {}

  /// Register radios in node-id order (id must equal index).
  void register_radio(NodeRadio* radio);

  /// Call after all radios are registered: builds neighbor tables.
  void freeze_topology();

  NodeRadio& radio(NodeId id) {
    EEND_REQUIRE(id < radios_.size());
    return *radios_[id];
  }
  const NodeRadio& radio(NodeId id) const {
    EEND_REQUIRE(id < radios_.size());
    return *radios_[id];
  }
  std::size_t node_count() const { return radios_.size(); }

  const phy::Propagation& propagation() const { return prop_; }

  /// Nodes within `range` meters of `of` (excluding `of` itself).
  std::vector<NodeId> nodes_within(NodeId of, double range) const;

  /// Nodes that can decode a max-power transmission from `of` — the
  /// connectivity neighbors used by routing and scenario validation.
  std::vector<NodeId> connectivity_neighbors(NodeId of) const {
    return nodes_within(of, prop_.max_range());
  }

  /// Would a carrier-sensing node hear any ongoing transmission right now?
  bool carrier_busy(NodeId listener) const;

  /// Put `frame` on the air for `duration` seconds. The sender radio must
  /// be awake and idle. `on_done` fires when airtime ends, after receiver
  /// delivery callbacks have run.
  void transmit(const Frame& frame, double duration,
                std::function<void(const TxResult&)> on_done);

  /// Delivery hooks, keyed by node id: invoked for successfully decoded
  /// frames addressed to the node (or broadcast). Overhear hooks fire for
  /// decodable frames addressed elsewhere.
  void set_deliver_handler(NodeId id, std::function<void(const Frame&)> fn);
  void set_overhear_handler(NodeId id, std::function<void(const Frame&)> fn);

  std::uint64_t transmissions() const { return transmissions_; }

 private:
  struct ActiveTx {
    std::uint64_t frame_uid;
    NodeId sender;
    double cs_range;
    sim::Time end;
  };

  struct Neighbor {
    NodeId id;
    double dist;
  };

  sim::Simulator& sim_;
  phy::Propagation prop_;
  std::vector<NodeRadio*> radios_;
  std::vector<std::vector<Neighbor>> neighborhood_;  // within max footprint
  std::vector<ActiveTx> active_;
  std::vector<std::function<void(const Frame&)>> deliver_;
  std::vector<std::function<void(const Frame&)>> overhear_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t next_frame_uid_ = 1;
  bool frozen_ = false;
};

}  // namespace eend::mac
