#include "mac/channel.hpp"

#include <algorithm>

namespace eend::mac {

void Channel::register_radio(NodeRadio* radio) {
  EEND_REQUIRE(radio != nullptr);
  EEND_REQUIRE_MSG(!frozen_, "topology already frozen");
  EEND_REQUIRE_MSG(radio->id() == radios_.size(),
                   "radios must be registered in id order");
  radios_.push_back(radio);
  deliver_.emplace_back();
  overhear_.emplace_back();
}

void Channel::set_field_extent(double w, double h) {
  EEND_REQUIRE_MSG(!frozen_, "topology already frozen");
  EEND_REQUIRE(w >= 0.0 && h >= 0.0);
  field_w_ = w;
  field_h_ = h;
}

void Channel::freeze_topology() {
  EEND_REQUIRE(!frozen_);
  frozen_ = true;
  // Maximum possible footprint: full-power CS range (largest of the three
  // range flavors). Any pair farther apart than this never interacts.
  max_reach_ =
      std::max(prop_.cs_range(prop_.card().max_transmit_power()),
               prop_.interference_range(prop_.card().max_transmit_power()));

  const std::size_t n = radios_.size();
  std::vector<phy::Position> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = radios_[i]->position();
  // Half-reach cells: a reach query touches at most 5x5 cells but each
  // carries ~4x fewer out-of-disc candidates than reach-sized cells.
  grid_.build(pts, max_reach_ / 2.0, field_w_, field_h_);

  // One O(N·k) grid pass per node builds the CSR arena: gather into a
  // reused scratch span, order it, append, record the offset.
  //
  // Ordering is the canonical (distance, id) — platform-stable even when
  // grid placements produce many exactly-equal distances. Comparison
  // sorting ~k random doubles per node dominated construction time, so
  // spans are counting-sorted into distance buckets first and finished
  // with an insertion pass over the then-nearly-sorted span; the final
  // order is identical to std::sort with the same comparator.
  constexpr std::size_t kBuckets = 128;
  const double bucket_scale =
      max_reach_ > 0.0 ? static_cast<double>(kBuckets) / max_reach_ : 0.0;
  const auto bucket_of = [&](double d) {
    return std::min<std::size_t>(kBuckets - 1,
                                 static_cast<std::size_t>(d * bucket_scale));
  };
  const auto less = [](const Neighbor& a, const Neighbor& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
  };

  nbr_start_.assign(n + 1, 0);
  nbr_arena_.clear();
  // Generous up-front reservation (trimmed below): repeated geometric
  // growth re-copies the arena ~20 times at 4k+ nodes otherwise.
  nbr_arena_.reserve(std::min(n * (n - (n > 0)), n * 128));
  std::vector<Neighbor> scratch;
  std::vector<std::uint8_t> bucket;
  scratch.reserve(256);
  bucket.reserve(256);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    bucket.clear();
    grid_.for_each_within(i, max_reach_, [&](std::size_t j, double d) {
      scratch.push_back(Neighbor{static_cast<NodeId>(j), d});
      bucket.push_back(static_cast<std::uint8_t>(bucket_of(d)));
    });
    const std::size_t k = scratch.size();
    std::uint32_t count[kBuckets + 1] = {0};
    for (std::size_t m = 0; m < k; ++m) ++count[bucket[m] + 1];
    for (std::size_t b = 0; b < kBuckets; ++b) count[b + 1] += count[b];
    const std::size_t base = nbr_arena_.size();
    nbr_arena_.resize(base + k);
    Neighbor* span = nbr_arena_.data() + base;
    for (std::size_t m = 0; m < k; ++m)
      span[count[bucket[m]]++] = scratch[m];
    if (k > 1) {  // guard: span may be null when the arena is still empty
      for (Neighbor* p = span + 1; p < span + k; ++p) {
        Neighbor v = *p;
        Neighbor* q = p;
        while (q > span && less(v, q[-1])) {
          *q = q[-1];
          --q;
        }
        *q = v;
      }
    }
    // The CSR offsets are uint32: one entry per in-reach *pair*, which
    // grows quadratically with density — fail loudly, never wrap.
    EEND_REQUIRE_MSG(
        nbr_arena_.size() <= 0xFFFFFFFFu,
        "neighbor arena exceeds 2^32 entries (node " << i << " of " << n
            << ") — the uint32 CSR offsets cannot address this topology");
    nbr_start_[i + 1] = static_cast<std::uint32_t>(nbr_arena_.size());
  }
  if (nbr_arena_.size() * 2 < nbr_arena_.capacity())
    nbr_arena_.shrink_to_fit();  // sparse topologies: return the slack
}

std::vector<NodeId> Channel::nodes_within(NodeId of, double range) const {
  std::vector<NodeId> out;
  for_each_within(of, range,
                  [&](NodeId id, double) { out.push_back(id); });
  return out;
}

bool Channel::carrier_busy(NodeId listener) const {
  EEND_REQUIRE(listener < radios_.size());
  const auto& pos = radios_[listener]->position();
  for (const ActiveTx& tx : active_) {
    const double d = phy::distance(pos, radios_[tx.sender]->position());
    if (d <= tx.cs_range) return true;
  }
  return false;
}

void Channel::transmit(const Frame& frame, double duration,
                       std::function<void(const TxResult&)> on_done) {
  EEND_REQUIRE(frozen_);
  EEND_REQUIRE(duration > 0.0);
  EEND_REQUIRE(frame.tx_node < radios_.size());
  NodeRadio& sender = *radios_[frame.tx_node];

  Frame f = frame;
  f.frame_uid = next_frame_uid_++;
  ++transmissions_;

  const double rx_range = prop_.rx_range(f.tx_power_w);
  const double int_range = prop_.interference_range(f.tx_power_w);
  const double cs_range = prop_.cs_range(f.tx_power_w);

  sender.begin_tx(f.tx_power_w, f.packet.category);
  active_.push_back(
      ActiveTx{f.frame_uid, f.tx_node, cs_range, sim_.now() + duration});

  // Interference sweep, then lock attempts on decodable radios. Both are
  // prefix walks of the sender's distance-sorted arena span — the hot
  // frame-delivery path allocates nothing; the end-of-airtime lambda walks
  // the same (immutable) prefixes instead of capturing id lists.
  for_each_within(f.tx_node, int_range,
                  [&](NodeId id, double) { radios_[id]->rf_begin(); });
  for_each_within(f.tx_node, rx_range,
                  [&](NodeId id, double) { radios_[id]->try_lock_rx(f); });

  sim_.schedule_in(duration, [this, f, int_range, rx_range,
                              on_done = std::move(on_done)] {
    TxResult result;
    radios_[f.tx_node]->end_tx();
    // End the footprint first so finish_rx sees a clean rf count.
    for_each_within(f.tx_node, int_range,
                    [&](NodeId id, double) { radios_[id]->rf_end(); });
    for_each_within(f.tx_node, rx_range, [&](NodeId id, double) {
      // finish_rx is false for radios that never locked this frame
      // (asleep, collided at lock time, or locked a different uid).
      if (!radios_[id]->finish_rx(f.frame_uid)) return;
      const bool addressed = f.is_broadcast() || f.rx_node == id;
      if (f.rx_node == id) result.target_received = true;
      if (addressed) {
        if (deliver_[id]) deliver_[id](f);
      } else {
        if (overhear_[id]) overhear_[id](f);
      }
    });
    // Remove from the active list.
    active_.erase(std::find_if(active_.begin(), active_.end(),
                               [&](const ActiveTx& t) {
                                 return t.frame_uid == f.frame_uid;
                               }));
    if (on_done) on_done(result);
  });
}

void Channel::set_deliver_handler(NodeId id,
                                  std::function<void(const Frame&)> fn) {
  EEND_REQUIRE(id < deliver_.size());
  deliver_[id] = std::move(fn);
}

void Channel::set_overhear_handler(NodeId id,
                                   std::function<void(const Frame&)> fn) {
  EEND_REQUIRE(id < overhear_.size());
  overhear_[id] = std::move(fn);
}

}  // namespace eend::mac
