#include "mac/channel.hpp"

#include <algorithm>

namespace eend::mac {

void Channel::register_radio(NodeRadio* radio) {
  EEND_REQUIRE(radio != nullptr);
  EEND_REQUIRE_MSG(!frozen_, "topology already frozen");
  EEND_REQUIRE_MSG(radio->id() == radios_.size(),
                   "radios must be registered in id order");
  radios_.push_back(radio);
  deliver_.emplace_back();
  overhear_.emplace_back();
}

void Channel::freeze_topology() {
  EEND_REQUIRE(!frozen_);
  frozen_ = true;
  // Maximum possible footprint: full-power CS range (largest of the three
  // range flavors). Any pair farther apart than this never interacts.
  const double max_reach =
      std::max(prop_.cs_range(prop_.card().max_transmit_power()),
               prop_.interference_range(prop_.card().max_transmit_power()));
  neighborhood_.resize(radios_.size());
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    for (std::size_t j = 0; j < radios_.size(); ++j) {
      if (i == j) continue;
      const double d =
          phy::distance(radios_[i]->position(), radios_[j]->position());
      if (d <= max_reach)
        neighborhood_[i].push_back(
            Neighbor{static_cast<NodeId>(j), d});
    }
    std::sort(neighborhood_[i].begin(), neighborhood_[i].end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.dist < b.dist;
              });
  }
}

std::vector<NodeId> Channel::nodes_within(NodeId of, double range) const {
  EEND_REQUIRE(frozen_ && of < radios_.size());
  std::vector<NodeId> out;
  for (const Neighbor& n : neighborhood_[of]) {
    if (n.dist > range) break;  // sorted by distance
    out.push_back(n.id);
  }
  return out;
}

bool Channel::carrier_busy(NodeId listener) const {
  EEND_REQUIRE(listener < radios_.size());
  const auto& pos = radios_[listener]->position();
  for (const ActiveTx& tx : active_) {
    const double d = phy::distance(pos, radios_[tx.sender]->position());
    if (d <= tx.cs_range) return true;
  }
  return false;
}

void Channel::transmit(const Frame& frame, double duration,
                       std::function<void(const TxResult&)> on_done) {
  EEND_REQUIRE(frozen_);
  EEND_REQUIRE(duration > 0.0);
  EEND_REQUIRE(frame.tx_node < radios_.size());
  NodeRadio& sender = *radios_[frame.tx_node];

  Frame f = frame;
  f.frame_uid = next_frame_uid_++;
  ++transmissions_;

  const double rx_range = prop_.rx_range(f.tx_power_w);
  const double int_range = prop_.interference_range(f.tx_power_w);
  const double cs_range = prop_.cs_range(f.tx_power_w);

  sender.begin_tx(f.tx_power_w, f.packet.category);
  active_.push_back(
      ActiveTx{f.frame_uid, f.tx_node, cs_range, sim_.now() + duration});

  // Interference sweep, then lock attempts on decodable radios.
  std::vector<NodeId> irradiated;
  std::vector<NodeId> locked;
  for (const Neighbor& n : neighborhood_[f.tx_node]) {
    if (n.dist > int_range) break;
    radios_[n.id]->rf_begin();
    irradiated.push_back(n.id);
  }
  for (const Neighbor& n : neighborhood_[f.tx_node]) {
    if (n.dist > rx_range) break;
    if (radios_[n.id]->try_lock_rx(f)) locked.push_back(n.id);
  }

  sim_.schedule_in(duration, [this, f, irradiated = std::move(irradiated),
                              locked = std::move(locked),
                              on_done = std::move(on_done)] {
    TxResult result;
    radios_[f.tx_node]->end_tx();
    // End the footprint first so finish_rx sees a clean rf count.
    for (NodeId id : irradiated) radios_[id]->rf_end();
    for (NodeId id : locked) {
      const bool ok = radios_[id]->finish_rx(f.frame_uid);
      if (!ok) continue;
      const bool addressed = f.is_broadcast() || f.rx_node == id;
      if (f.rx_node == id) result.target_received = true;
      if (addressed) {
        if (deliver_[id]) deliver_[id](f);
      } else {
        if (overhear_[id]) overhear_[id](f);
      }
    }
    // Remove from the active list.
    active_.erase(std::find_if(active_.begin(), active_.end(),
                               [&](const ActiveTx& t) {
                                 return t.frame_uid == f.frame_uid;
                               }));
    if (on_done) on_done(result);
  });
}

void Channel::set_deliver_handler(NodeId id,
                                  std::function<void(const Frame&)> fn) {
  EEND_REQUIRE(id < deliver_.size());
  deliver_[id] = std::move(fn);
}

void Channel::set_overhear_handler(NodeId id,
                                   std::function<void(const Frame&)> fn) {
  EEND_REQUIRE(id < overhear_.size());
  overhear_[id] = std::move(fn);
}

}  // namespace eend::mac
