#include "mac/mac.hpp"

#include <algorithm>

namespace eend::mac {

Mac::Mac(sim::Simulator& sim, Channel& channel, NodeRadio& radio,
         PsmScheduler* psm, Rng rng, MacConfig cfg)
    : sim_(sim),
      channel_(channel),
      radio_(radio),
      psm_(psm),
      rng_(rng),
      cfg_(cfg) {
  channel_.set_deliver_handler(radio_.id(),
                               [this](const Frame& f) { on_frame_delivered(f); });
  channel_.set_overhear_handler(radio_.id(), [this](const Frame& f) {
    on_frame_overheard(f);
  });
}

double Mac::frame_duration(std::uint32_t size_bits) const {
  return radio_.card().tx_duration(size_bits + cfg_.mac_header_bits) +
         cfg_.frame_overhead_s;
}

bool Mac::send_unicast(Packet packet, NodeId next_hop, double tx_power,
                       SendCallback cb) {
  EEND_REQUIRE(next_hop != kBroadcast && next_hop != radio_.id());
  if (queue_.size() >= cfg_.queue_limit) {
    ++stats_.queue_drops;
    if (cb) cb(false);
    return false;
  }
  Outgoing out{std::move(packet), next_hop, tx_power, std::move(cb)};
  out.enqueued_at = sim_.now();
  queue_.push_back(std::move(out));
  radio_.set_busy_hold(true);
  if (!head_active_) process_head();
  return true;
}

bool Mac::send_broadcast(Packet packet, double tx_power) {
  if (queue_.size() >= cfg_.queue_limit) {
    ++stats_.queue_drops;
    return false;
  }
  Outgoing out{std::move(packet), kBroadcast, tx_power, nullptr};
  out.enqueued_at = sim_.now();
  queue_.push_back(std::move(out));
  radio_.set_busy_hold(true);
  if (!head_active_) process_head();
  return true;
}

void Mac::process_head() {
  if (queue_.empty()) {
    head_active_ = false;
    radio_.set_busy_hold(false);
    if (psm_) psm_->reconsider(radio_.id());
    return;
  }
  head_active_ = true;
  Outgoing& out = queue_.front();

  // A dead node sends nothing; drain its queue.
  if (radio_.failed()) {
    finish_head(false);
    return;
  }

  if (out.next_hop == kBroadcast) {
    // Stale flood fragments are useless and must not clog the queue.
    if (sim_.now() - out.enqueued_at > cfg_.bcast_max_age_s) {
      ++stats_.stale_bcast_drops;
      finish_head(false);
      return;
    }
    // Broadcast: only defer to the beacon schedule when some in-range PSM
    // node is actually asleep right now. Neighbors already held awake by
    // an earlier announcement receive immediately — floods propagate
    // through the woken wavefront within one beacon interval.
    if (psm_) {
      const double range = channel_.propagation().rx_range(out.tx_power);
      bool sleeping_neighbor = false;
      channel_.for_each_within(radio_.id(), range, [&](NodeId n, double) {
        if (psm_->is_psm(n) && channel_.radio(n).sleeping()) {
          sleeping_neighbor = true;
          return false;  // stop the walk
        }
        return true;
      });
      if (sleeping_neighbor) {
        defer_to_window(/*announce_broadcast=*/true);
        return;
      }
    }
    schedule_attempt(rng_.uniform(0.0, cfg_.bcast_jitter_s));
    return;
  }

  // Unicast: sleeping PSM target => beacon-synchronized delivery.
  const NodeRadio& target = channel_.radio(out.next_hop);
  if (psm_ && target.sleeping()) {
    defer_to_window(/*announce_broadcast=*/false);
    return;
  }
  schedule_attempt(0.0);
}

void Mac::defer_to_window(bool announce_broadcast) {
  Outgoing& out = queue_.front();
  if (++out.defer_rounds > cfg_.max_defer_rounds) {
    ++stats_.defers_exhausted;
    finish_head(false);
    return;
  }
  const sim::Time beacon = psm_->next_beacon(sim_.now());
  const double dur = frame_duration(out.packet.size_bits);
  const NodeId self = radio_.id();
  const double range = channel_.propagation().rx_range(out.tx_power);
  const NodeId target = out.next_hop;

  // At the beacon: contend for the ATIM window. If the window's airtime is
  // exhausted (dense-network congestion), wait for the next interval; on
  // success, hold the receiver(s) awake and transmit in the data window.
  sim_.schedule_at(beacon, [this, self, target, range, dur,
                            announce_broadcast] {
    if (!psm_->try_announce(self)) {
      defer_to_window(announce_broadcast);
      return;
    }
    const sim::Time beacon_now = sim_.now();
    const sim::Time window = beacon_now + psm_->config().atim_window_s;
    // Unicasts go right after the ATIM window; broadcasts spread across
    // the data window so beacon-synchronized floods do not collide en
    // masse.
    const double spread =
        announce_broadcast
            ? cfg_.bcast_window_fraction *
                  (psm_->config().beacon_interval_s -
                   psm_->config().atim_window_s)
            : cfg_.window_jitter_s;
    const sim::Time attempt_at = window + rng_.uniform(0.0, spread);
    const bool span = psm_->config().span_improvements;
    // Naive PSM: announced receivers stay awake the whole beacon interval.
    // Span: only until the announced frame should have arrived.
    const sim::Time hold_end =
        span ? attempt_at + cfg_.window_jitter_s + dur + 0.01
             : beacon_now + psm_->config().beacon_interval_s;
    if (announce_broadcast) {
      // Visitor overload: this lambda runs at every beacon of a deferred
      // broadcast, so it must not re-allocate a neighbor vector each time.
      channel_.for_each_within(self, range, [&](NodeId n, double) {
        if (psm_->is_psm(n)) channel_.radio(n).hold_awake_until(hold_end);
      });
    } else {
      channel_.radio(target).hold_awake_until(hold_end);
    }
    schedule_attempt(attempt_at - beacon_now);
  });
}

void Mac::schedule_attempt(double delay) {
  sim_.schedule_in(delay, [this] { attempt_head(); });
}

double Mac::backoff_delay(int stage) {
  const int cw = std::min(cfg_.cw_max_slots,
                          ((cfg_.cw_min_slots + 1) << std::min(stage, 10)) - 1);
  const auto slots = static_cast<double>(rng_.uniform_int(1, cw));
  return slots * cfg_.slot_s;
}

void Mac::attempt_head() {
  EEND_CHECK(!queue_.empty());
  Outgoing& out = queue_.front();

  if (radio_.failed()) {
    finish_head(false);
    return;
  }

  // The radio might be mid-reception; treat like a busy channel.
  if (radio_.transmitting() || radio_.locked_rx() ||
      channel_.carrier_busy(radio_.id())) {
    if (++out.cs_defers > cfg_.max_cs_defers) {
      ++stats_.cs_drops;
      finish_head(false);
      return;
    }
    out.backoff_stage = std::min(out.backoff_stage + 1, 10);
    schedule_attempt(backoff_delay(out.backoff_stage));
    return;
  }

  // Unicast target went back to sleep (PSM churn): re-defer.
  if (out.next_hop != kBroadcast && psm_ &&
      channel_.radio(out.next_hop).sleeping()) {
    defer_to_window(false);
    return;
  }
  transmit_head();
}

void Mac::transmit_head() {
  Outgoing& out = queue_.front();
  Frame f;
  f.tx_node = radio_.id();
  f.rx_node = out.next_hop;
  f.tx_power_w = out.tx_power;
  f.packet = out.packet;
  const double dur = frame_duration(out.packet.size_bits);
  channel_.transmit(f, dur, [this](const TxResult& r) {
    EEND_CHECK(!queue_.empty());
    Outgoing& head = queue_.front();
    if (head.next_hop == kBroadcast) {
      ++stats_.frames_ok;
      finish_head(true);
      return;
    }
    if (r.target_received) {
      ++stats_.frames_ok;
      finish_head(true);
      return;
    }
    // Collision or sleeping receiver: retry with backoff.
    if (psm_ && channel_.radio(head.next_hop).sleeping()) {
      defer_to_window(false);
      return;
    }
    if (++head.retries > cfg_.retry_limit) {
      ++stats_.unicast_failures;
      finish_head(false);
      return;
    }
    head.backoff_stage = std::min(head.backoff_stage + 1, 10);
    schedule_attempt(backoff_delay(head.backoff_stage));
  });
}

void Mac::finish_head(bool success) {
  EEND_CHECK(!queue_.empty());
  Outgoing out = std::move(queue_.front());
  queue_.pop_front();
  if (out.cb) out.cb(success);
  process_head();
}

void Mac::on_frame_delivered(const Frame& f) {
  if (psm_) psm_->reconsider(radio_.id());
  if (on_receive_) on_receive_(f.packet, f.tx_node);
}

void Mac::on_frame_overheard(const Frame& f) {
  if (psm_) psm_->reconsider(radio_.id());
  if (on_promiscuous_) on_promiscuous_(f.packet, f.tx_node);
}

}  // namespace eend::mac
