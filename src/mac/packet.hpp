// Network-layer packet and MAC-layer frame records.
//
// Packets are value types; routing-protocol payloads ride along as a shared
// immutable std::any (the simulator never serializes: a payload is whatever
// struct the protocol attaches, by convention documented on each protocol).
#pragma once

#include <any>
#include <cstdint>
#include <memory>

#include "energy/energy_meter.hpp"
#include "graph/graph.hpp"

namespace eend::mac {

using NodeId = graph::NodeId;
inline constexpr NodeId kBroadcast = graph::kInvalidNode;

/// One network-layer packet.
struct Packet {
  std::uint64_t uid = 0;          ///< unique per simulation
  energy::Category category = energy::Category::Data;
  int flow_id = -1;               ///< >= 0 for application data
  NodeId origin = kBroadcast;     ///< end-to-end source
  NodeId final_dest = kBroadcast; ///< end-to-end destination
  std::uint32_t size_bits = 0;    ///< network-layer payload size
  double created_at = 0.0;
  int ttl = 64;                   ///< hop budget (guards DV transient loops)
  int type = 0;                   ///< protocol-defined discriminator
  std::shared_ptr<const std::any> payload;  ///< protocol-defined body

  template <typename T>
  const T& body() const {
    EEND_REQUIRE(payload != nullptr);
    return std::any_cast<const T&>(*payload);
  }

  template <typename T>
  static std::shared_ptr<const std::any> wrap(T&& value) {
    return std::make_shared<const std::any>(std::forward<T>(value));
  }
};

/// One MAC transmission.
struct Frame {
  std::uint64_t frame_uid = 0;
  NodeId tx_node = kBroadcast;
  NodeId rx_node = kBroadcast;  ///< kBroadcast for broadcast frames
  double tx_power_w = 0.0;      ///< full Ptx used for this frame
  Packet packet;

  bool is_broadcast() const { return rx_node == kBroadcast; }
};

}  // namespace eend::mac
