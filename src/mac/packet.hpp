// Network-layer packet and MAC-layer frame records.
//
// Packets are value types; routing-protocol payloads ride along as shared
// immutable bodies (the simulator never serializes: a payload is whatever
// struct the protocol attaches, by convention documented on each protocol).
//
// Payload bodies live in PayloadRef: one type-checked, intrusively
// refcounted block allocated from the simulation's MemoryPool
// (sim::Simulator::pool()) instead of the two-to-three global-allocator
// hits of the old shared_ptr<const std::any> — on the transmit path a
// routing message's body is recycled through the pool's free lists, not
// malloc'd. Like the rest of the engine, PayloadRef is single-threaded by
// construction: packets never leave the replication that created them, so
// the refcount is a plain integer (the TSan CI leg guards the confinement).
#pragma once

#include <cstdint>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "energy/energy_meter.hpp"
#include "graph/graph.hpp"
#include "util/pool.hpp"

namespace eend::mac {

using NodeId = graph::NodeId;
inline constexpr NodeId kBroadcast = graph::kInvalidNode;

/// Shared immutable payload body, pool-allocated in a single block
/// (header + object). Copies bump a refcount; the last owner destroys the
/// body and returns the block to the pool it came from, which therefore
/// must outlive every packet — sim::Simulator guarantees this for its own
/// pool.
class PayloadRef {
 public:
  PayloadRef() = default;
  PayloadRef(const PayloadRef& o) : h_(o.h_) {
    if (h_ != nullptr) ++h_->refs;
  }
  PayloadRef(PayloadRef&& o) noexcept : h_(o.h_) { o.h_ = nullptr; }
  PayloadRef& operator=(const PayloadRef& o) {
    PayloadRef tmp(o);
    std::swap(h_, tmp.h_);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    std::swap(h_, o.h_);
    return *this;
  }
  ~PayloadRef() { reset(); }

  explicit operator bool() const { return h_ != nullptr; }

  // GCC's -Wuse-after-free cannot follow refcounts: when two PayloadRef
  // copies of the same block are destroyed in one function it assumes the
  // second read chases the first's delete, though --refs==0 is true for
  // exactly one owner. Known false positive (GCC PR 108795 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif
  void reset() {
    if (h_ != nullptr && --h_->refs == 0) {
      util::MemoryPool* pool = h_->pool;
      const std::uint32_t bytes = h_->block_bytes;
      h_->destroy(static_cast<void*>(
          reinterpret_cast<unsigned char*>(h_) + h_->obj_offset));
      pool->release(static_cast<void*>(h_), bytes);
    }
    h_ = nullptr;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// Build a payload holding `value` in one pooled block.
  template <typename T>
  static PayloadRef make(util::MemoryPool& pool, T&& value) {
    using V = std::decay_t<T>;
    static_assert(alignof(V) <= alignof(std::max_align_t));
    constexpr std::size_t off =
        (sizeof(Head) + alignof(V) - 1) / alignof(V) * alignof(V);
    constexpr std::size_t bytes = off + sizeof(V);
    void* block = pool.allocate(bytes);
    Head* h = ::new (block)
        Head{1, static_cast<std::uint32_t>(bytes),
             static_cast<std::uint32_t>(off),
             [](void* p) { static_cast<V*>(p)->~V(); }, &typeid(V), &pool};
    void* obj = static_cast<void*>(reinterpret_cast<unsigned char*>(h) + off);
    try {
      ::new (obj) V(std::forward<T>(value));
    } catch (...) {
      pool.release(block, bytes);
      throw;
    }
    PayloadRef r;
    r.h_ = h;
    return r;
  }

  /// Type-checked access; the payload must hold exactly a T.
  template <typename T>
  const T& get() const {
    EEND_REQUIRE(h_ != nullptr);
    EEND_REQUIRE_MSG(*h_->type == typeid(T),
                     "payload type mismatch: holds " << h_->type->name()
                                                     << ", asked for "
                                                     << typeid(T).name());
    return *reinterpret_cast<const T*>(
        reinterpret_cast<const unsigned char*>(h_) + h_->obj_offset);
  }

 private:
  struct Head {
    std::uint32_t refs;
    std::uint32_t block_bytes;
    std::uint32_t obj_offset;
    void (*destroy)(void*);
    const std::type_info* type;
    util::MemoryPool* pool;
  };

  Head* h_ = nullptr;
};

/// One network-layer packet.
struct Packet {
  std::uint64_t uid = 0;          ///< unique per simulation
  energy::Category category = energy::Category::Data;
  int flow_id = -1;               ///< >= 0 for application data
  NodeId origin = kBroadcast;     ///< end-to-end source
  NodeId final_dest = kBroadcast; ///< end-to-end destination
  std::uint32_t size_bits = 0;    ///< network-layer payload size
  double created_at = 0.0;
  int ttl = 64;                   ///< hop budget (guards DV transient loops)
  int type = 0;                   ///< protocol-defined discriminator
  PayloadRef payload;             ///< protocol-defined body

  template <typename T>
  const T& body() const {
    return payload.get<T>();
  }

  /// Wrap `value` as a pooled payload body. Protocols pass their
  /// simulation's pool (env_.sim->pool()).
  template <typename T>
  static PayloadRef wrap(util::MemoryPool& pool, T&& value) {
    return PayloadRef::make(pool, std::forward<T>(value));
  }
};

/// One MAC transmission.
struct Frame {
  std::uint64_t frame_uid = 0;
  NodeId tx_node = kBroadcast;
  NodeId rx_node = kBroadcast;  ///< kBroadcast for broadcast frames
  double tx_power_w = 0.0;      ///< full Ptx used for this frame
  Packet packet;

  bool is_broadcast() const { return rx_node == kBroadcast; }
};

}  // namespace eend::mac
