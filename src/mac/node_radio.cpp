#include "mac/node_radio.hpp"

namespace eend::mac {

NodeRadio::NodeRadio(NodeId id, phy::Position pos,
                     const energy::RadioCard& card, sim::Simulator& sim)
    : id_(id), pos_(pos), card_(card), sim_(sim), meter_(card) {}

void NodeRadio::begin_metering(energy::RadioMode initial) {
  meter_.begin(sim_.now(), initial);
  metering_ = true;
  sleeping_ = initial == energy::RadioMode::Sleep;
}

void NodeRadio::finish_metering() {
  meter_.finish(sim_.now());
  metering_ = false;
}

void NodeRadio::enter_passive(double now) {
  const auto mode = (sleeping_ || passive_is_sleep_) ? energy::RadioMode::Sleep
                                                     : energy::RadioMode::Idle;
  // Only real sleep transitions pay the switch cost; the perfect-sleep
  // draw override is an oracle without switching overhead.
  meter_.set_passive_mode(now, mode, /*charge_switch=*/!passive_is_sleep_);
}

void NodeRadio::sleep() {
  EEND_REQUIRE_MSG(can_sleep(), "node " << id_ << " cannot sleep now");
  if (sleeping_) return;
  sleeping_ = true;
  if (metering_) meter_.set_passive_mode(sim_.now(), energy::RadioMode::Sleep);
}

void NodeRadio::fail_permanently() {
  failed_ = true;
  if (rx_lock_) rx_lock_->corrupted = true;
  sleeping_ = true;
  if (metering_ && !transmitting_ && !rx_lock_)
    meter_.set_passive_mode(sim_.now(), energy::RadioMode::Sleep);
}

void NodeRadio::wake() {
  if (failed_) return;
  if (!sleeping_) return;
  sleeping_ = false;
  // Only flip the meter when passive; an active session already owns it.
  if (metering_ && !transmitting_ && !rx_lock_)
    meter_.set_passive_mode(sim_.now(), passive_is_sleep_
                                            ? energy::RadioMode::Sleep
                                            : energy::RadioMode::Idle);
}

void NodeRadio::hold_awake_until(sim::Time t) {
  if (t > hold_until_) hold_until_ = t;
  wake();
}

void NodeRadio::set_busy_hold(bool held) {
  busy_hold_ = held;
  if (held) wake();
}

bool NodeRadio::can_sleep() const {
  return !busy_hold_ && !transmitting_ && !rx_lock_.has_value() &&
         sim_.now() >= hold_until_;
}

void NodeRadio::set_passive_draw_is_sleep(bool v) {
  passive_is_sleep_ = v;
  if (metering_ && !transmitting_ && !rx_lock_ && !sleeping_)
    meter_.set_passive_mode(sim_.now(),
                            v ? energy::RadioMode::Sleep
                              : energy::RadioMode::Idle,
                            /*charge_switch=*/false);
}

void NodeRadio::begin_tx(double power_w, energy::Category cat) {
  EEND_REQUIRE_MSG(!transmitting_, "node " << id_ << " already transmitting");
  EEND_REQUIRE_MSG(!sleeping_, "node " << id_ << " transmitting while asleep");
  // Half-duplex: starting a transmission aborts any reception in progress.
  if (rx_lock_) rx_lock_->corrupted = true;
  transmitting_ = true;
  if (metering_) meter_.set_transmit(sim_.now(), power_w, cat);
  ++frames_sent_;
}

void NodeRadio::end_tx() {
  EEND_REQUIRE(transmitting_);
  transmitting_ = false;
  if (metering_) enter_passive(sim_.now());
}

void NodeRadio::rf_begin() {
  ++rf_count_;
  if (rx_lock_ && rf_count_ > 1) rx_lock_->corrupted = true;
}

void NodeRadio::rf_end() {
  EEND_CHECK(rf_count_ > 0);
  --rf_count_;
}

bool NodeRadio::try_lock_rx(const Frame& frame) {
  if (sleeping_ || transmitting_ || rx_lock_.has_value()) return false;
  if (rf_count_ != 1) {
    // Another signal is already in the air here: this frame arrives garbled.
    ++rx_collisions_;
    return false;
  }
  rx_lock_ = RxLock{frame.frame_uid, false};
  if (metering_) meter_.set_receive(sim_.now(), frame.packet.category);
  return true;
}

bool NodeRadio::finish_rx(std::uint64_t frame_uid) {
  if (!rx_lock_ || rx_lock_->frame_uid != frame_uid) return false;
  const bool ok = !rx_lock_->corrupted;
  rx_lock_.reset();
  if (metering_ && !transmitting_) enter_passive(sim_.now());
  if (ok)
    ++frames_received_;
  else
    ++rx_collisions_;
  return ok;
}

}  // namespace eend::mac
