#include "mac/psm.hpp"

#include <algorithm>
#include <cmath>

namespace eend::mac {

PsmScheduler::PsmScheduler(sim::Simulator& sim, PsmConfig cfg)
    : sim_(sim), cfg_(cfg) {
  EEND_REQUIRE(cfg_.beacon_interval_s > 0.0);
  EEND_REQUIRE(cfg_.atim_window_s > 0.0 &&
               cfg_.atim_window_s < cfg_.beacon_interval_s);
}

void PsmScheduler::register_radio(NodeRadio* radio) {
  EEND_REQUIRE(radio != nullptr);
  EEND_REQUIRE(radio->id() == radios_.size());
  radios_.push_back(radio);
  psm_.push_back(false);
}

void PsmScheduler::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_at(next_beacon(sim_.now()), [this] { on_beacon(); });
}

sim::Time PsmScheduler::next_beacon(sim::Time now) const {
  const double k = std::floor(now / cfg_.beacon_interval_s + 1e-9) + 1.0;
  return k * cfg_.beacon_interval_s;
}

void PsmScheduler::on_beacon() {
  interval_announcements_.clear();
  // Wake every PSM node for the ATIM window.
  for (std::size_t i = 0; i < radios_.size(); ++i)
    if (psm_[i]) radios_[i]->wake();
  sim_.schedule_in(cfg_.atim_window_s, [this] { on_atim_end(); });
  sim_.schedule_in(cfg_.beacon_interval_s, [this] { on_beacon(); });
}

bool PsmScheduler::try_announce(NodeId sender) {
  EEND_REQUIRE(sender < radios_.size());
  if (announce_range_m_ <= 0.0) return true;
  const auto& pos = radios_[sender]->position();
  double local_airtime = 0.0;
  for (const Announcement& a : interval_announcements_) {
    if (phy::distance(pos, radios_[a.sender]->position()) <=
        announce_range_m_)
      local_airtime += a.airtime;
  }
  const double budget = cfg_.atim_window_s * cfg_.atim_utilization;
  if (local_airtime + cfg_.atim_frame_s > budget) {
    ++announce_failures_;
    return false;
  }
  interval_announcements_.push_back(Announcement{sender, cfg_.atim_frame_s});
  radios_[sender]->charge_tx_burst(cfg_.atim_frame_s,
                                   radios_[sender]->card().max_transmit_power(),
                                   energy::Category::Control);
  return true;
}

void PsmScheduler::on_atim_end() {
  for (std::size_t i = 0; i < radios_.size(); ++i)
    try_sleep(static_cast<NodeId>(i));
}

void PsmScheduler::try_sleep(NodeId id) {
  if (!psm_[id]) return;
  NodeRadio& r = *radios_[id];
  if (!r.sleeping() && r.can_sleep()) r.sleep();
}

void PsmScheduler::set_psm(NodeId id, bool psm) {
  EEND_REQUIRE(id < psm_.size());
  if (psm_[id] == psm) return;
  psm_[id] = psm;
  if (!psm) {
    radios_[id]->wake();
  } else {
    // Sleep immediately when possible; otherwise the next ATIM end or a
    // hold expiry will catch it.
    try_sleep(id);
  }
}

void PsmScheduler::reconsider(NodeId id) {
  EEND_REQUIRE(id < psm_.size());
  if (!psm_[id]) return;
  NodeRadio& r = *radios_[id];
  if (r.sleeping()) return;
  if (r.can_sleep()) {
    r.sleep();
    return;
  }
  // If only a time hold blocks sleep, try again right after it expires.
  const sim::Time expiry = r.hold_until();
  if (expiry > sim_.now())
    sim_.schedule_at(expiry, [this, id] { try_sleep(id); });
}

bool PsmScheduler::any_psm(std::span<const NodeId> ids) const {
  return std::any_of(ids.begin(), ids.end(),
                     [&](NodeId id) { return is_psm(id); });
}

std::size_t PsmScheduler::psm_count() const {
  return static_cast<std::size_t>(std::count(psm_.begin(), psm_.end(), true));
}

}  // namespace eend::mac
