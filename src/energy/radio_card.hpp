// Radio card models — Table 1 of the paper.
//
// Power figures are stored in watts (Table 1 lists mW; constructors
// convert). The transmit power curve is Ptx(d) = Pbase + alpha2 * d^n
// (paper §5.1: "Ptx(d) can be modeled as Pbase + α2·d^n, where α2·d^n
// represents Pt(i,j)").
//
// Sleep power is not listed in Table 1; we use the published values for
// each card family (Span's Cabletron RoamAbout measurements, Cisco Aironet
// data sheet, Mica2/LEACH sensor specs) and document them here.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace eend::energy {

/// Energy/power model of one wireless interface.
struct RadioCard {
  std::string name;

  double p_idle = 0.0;   ///< idle-state power [W]
  double p_rx = 0.0;     ///< receive power [W]
  double p_sleep = 0.0;  ///< sleep-state power [W]
  double p_base = 0.0;   ///< base transmitter cost Pbase [W]
  double alpha2 = 0.0;   ///< amplifier coefficient [W / m^n]
  double path_loss_n = 4.0;  ///< path-loss exponent n (2..4)

  double max_range_m = 0.0;     ///< nominal transmission range D [m]
  double bandwidth_bps = 2e6;   ///< link bandwidth B [bit/s]
  double switch_energy_j = 1e-3;  ///< Esw per sleep<->idle transition [J]
  double switch_latency_s = 1e-3; ///< time to wake from sleep [s]

  /// Transmit power level Pt(d) (amplifier only) for distance d.
  double transmit_level(double d) const {
    EEND_REQUIRE(d >= 0.0);
    return alpha2 * std::pow(d, path_loss_n);
  }

  /// Full transmit power Ptx(d) = Pbase + Pt(d).
  double transmit_power(double d) const { return p_base + transmit_level(d); }

  /// Maximum transmit power (at nominal range) — control packets always use
  /// this level (paper Eq. 2).
  double max_transmit_power() const { return transmit_power(max_range_m); }

  /// Time to put `bits` on the air.
  double tx_duration(double bits) const {
    EEND_REQUIRE(bits >= 0.0 && bandwidth_bps > 0.0);
    return bits / bandwidth_bps;
  }
};

/// The five Table 1 cards plus the LEACH n=2 variant used in Fig. 7.
RadioCard aironet350();            // Pidle 1350, Prx 1350, 2165 + 3.6e-7 d^4
RadioCard cabletron();             // Pidle 830, Prx 1000, 1118 + 7.2e-8 d^4
RadioCard hypothetical_cabletron();// Cabletron with alpha2 = 5.2e-6
RadioCard mica2();                 // Pidle 21, Prx 21, 10.2 + 9.4e-7 d^4
RadioCard leach_n4();              // Pidle 50, Prx 50, 50 + 1.3e-6 d^4
RadioCard leach_n2();              // Pidle 50, Prx 50, 50 + 1e-2 d^2

/// All Fig. 7 card configurations with the D values from the plot legend.
std::vector<RadioCard> fig7_cards();

/// Look up a card by (case-insensitive) name; throws CheckError if unknown.
RadioCard card_by_name(const std::string& name);

}  // namespace eend::energy
