#include "energy/energy_meter.hpp"

namespace eend::energy {

namespace {
std::size_t mi(RadioMode m) { return static_cast<std::size_t>(m); }
std::size_t ci(Category c) { return static_cast<std::size_t>(c); }
}  // namespace

void EnergyMeter::begin(double now, RadioMode mode) {
  EEND_REQUIRE(!started_);
  started_ = true;
  last_ts_ = now;
  mode_ = mode;
  cat_ = Category::Passive;
  draw_w_ = mode == RadioMode::Sleep ? card_.p_sleep : card_.p_idle;
}

void EnergyMeter::integrate(double now) {
  EEND_REQUIRE(started_);
  EEND_REQUIRE_MSG(now >= last_ts_, "time moved backwards: " << now << " < "
                                                             << last_ts_);
  const double dt = now - last_ts_;
  energy_[mi(mode_)][ci(cat_)] += dt * draw_w_;
  time_[mi(mode_)] += dt;
  last_ts_ = now;
}

void EnergyMeter::set_passive_mode(double now, RadioMode mode,
                                   bool charge_switch) {
  EEND_REQUIRE(mode == RadioMode::Idle || mode == RadioMode::Sleep);
  integrate(now);
  // Esw is charged on sleep<->idle transitions (Eq. 3).
  const bool was_sleep = mode_ == RadioMode::Sleep;
  const bool to_sleep = mode == RadioMode::Sleep;
  if (charge_switch && was_sleep != to_sleep) {
    switch_energy_j_ += card_.switch_energy_j;
    ++switches_;
  }
  mode_ = mode;
  cat_ = Category::Passive;
  draw_w_ = to_sleep ? card_.p_sleep : card_.p_idle;
}

void EnergyMeter::set_transmit(double now, double power_w, Category cat) {
  EEND_REQUIRE(power_w >= 0.0);
  EEND_REQUIRE(cat != Category::Passive);
  integrate(now);
  mode_ = RadioMode::Transmit;
  cat_ = cat;
  draw_w_ = power_w;
}

void EnergyMeter::set_receive(double now, Category cat) {
  EEND_REQUIRE(cat != Category::Passive);
  integrate(now);
  mode_ = RadioMode::Receive;
  cat_ = cat;
  draw_w_ = card_.p_rx;
}

void EnergyMeter::charge_tx_burst(double duration, double power_w,
                                  Category cat) {
  EEND_REQUIRE(duration >= 0.0 && power_w >= 0.0);
  EEND_REQUIRE(cat != Category::Passive);
  energy_[mi(RadioMode::Transmit)][ci(cat)] += duration * power_w;
  time_[mi(RadioMode::Transmit)] += duration;
}

void EnergyMeter::finish(double now) { integrate(now); }

double EnergyMeter::peek_total(double now) const {
  EEND_REQUIRE(started_);
  EEND_REQUIRE(now >= last_ts_);
  return total() + (now - last_ts_) * draw_w_;
}

double EnergyMeter::total() const {
  double sum = switch_energy_j_;
  for (const auto& row : energy_)
    for (double e : row) sum += e;
  return sum;
}

double EnergyMeter::data_energy() const {
  return energy_[mi(RadioMode::Transmit)][ci(Category::Data)] +
         energy_[mi(RadioMode::Receive)][ci(Category::Data)];
}

double EnergyMeter::control_energy() const {
  return energy_[mi(RadioMode::Transmit)][ci(Category::Control)] +
         energy_[mi(RadioMode::Receive)][ci(Category::Control)];
}

double EnergyMeter::passive_energy() const {
  return idle_energy() + sleep_energy() + switch_energy_j_;
}

double EnergyMeter::transmit_energy() const {
  const auto& row = energy_[mi(RadioMode::Transmit)];
  return row[ci(Category::Data)] + row[ci(Category::Control)];
}

double EnergyMeter::receive_energy() const {
  const auto& row = energy_[mi(RadioMode::Receive)];
  return row[ci(Category::Data)] + row[ci(Category::Control)];
}

double EnergyMeter::idle_energy() const {
  const auto& row = energy_[mi(RadioMode::Idle)];
  return row[0] + row[1] + row[2];
}

double EnergyMeter::sleep_energy() const {
  const auto& row = energy_[mi(RadioMode::Sleep)];
  return row[0] + row[1] + row[2];
}

double EnergyMeter::switch_energy() const { return switch_energy_j_; }

double EnergyMeter::time_in(RadioMode m) const { return time_[mi(m)]; }

}  // namespace eend::energy
