#include "energy/radio_card.hpp"

#include <algorithm>
#include <cctype>

#include "util/units.hpp"

namespace eend::energy {

RadioCard aironet350() {
  RadioCard c;
  c.name = "Aironet350";
  c.p_idle = milliwatts(1350);
  c.p_rx = milliwatts(1350);
  c.p_sleep = milliwatts(75);  // Cisco 350 series data-sheet sleep mode
  c.p_base = milliwatts(2165);
  c.alpha2 = milliwatts(3.6e-7);
  c.path_loss_n = 4.0;
  c.max_range_m = 140.0;
  c.bandwidth_bps = 2e6;
  return c;
}

RadioCard cabletron() {
  RadioCard c;
  c.name = "Cabletron";
  c.p_idle = milliwatts(830);
  c.p_rx = milliwatts(1000);
  c.p_sleep = milliwatts(130);  // RoamAbout sleep power (Span measurements)
  c.p_base = milliwatts(1118);
  c.alpha2 = milliwatts(7.2e-8);
  c.path_loss_n = 4.0;
  c.max_range_m = 250.0;
  c.bandwidth_bps = 2e6;
  return c;
}

RadioCard hypothetical_cabletron() {
  RadioCard c = cabletron();
  c.name = "HypoCabletron";
  // §5.1: alpha2 >= 5.16e-6 makes m_opt >= 2 at R/B = 0.25; the paper's
  // hypothetical card uses 5.2e-6 (Table 1).
  c.alpha2 = milliwatts(5.2e-6);
  return c;
}

RadioCard mica2() {
  RadioCard c;
  c.name = "Mica2";
  c.p_idle = milliwatts(21);
  c.p_rx = milliwatts(21);
  c.p_sleep = milliwatts(0.003);  // mote deep-sleep, ~3 uW
  c.p_base = milliwatts(10.2);
  c.alpha2 = milliwatts(9.4e-7);
  c.path_loss_n = 4.0;
  c.max_range_m = 68.0;
  c.bandwidth_bps = 38.4e3;
  return c;
}

RadioCard leach_n4() {
  RadioCard c;
  c.name = "LEACH-n4";
  c.p_idle = milliwatts(50);  // x = 1 in Table 1's "x * 50"
  c.p_rx = milliwatts(50);
  c.p_sleep = milliwatts(0.01);
  c.p_base = milliwatts(50);
  c.alpha2 = milliwatts(1.3e-6);
  c.path_loss_n = 4.0;
  c.max_range_m = 100.0;
  c.bandwidth_bps = 1e6;
  return c;
}

RadioCard leach_n2() {
  RadioCard c = leach_n4();
  c.name = "LEACH-n2";
  c.alpha2 = milliwatts(1e-2);
  c.path_loss_n = 2.0;
  c.max_range_m = 75.0;
  return c;
}

std::vector<RadioCard> fig7_cards() {
  return {aironet350(), cabletron(), mica2(), leach_n4(), leach_n2(),
          hypothetical_cabletron()};
}

RadioCard card_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  for (const RadioCard& c : fig7_cards()) {
    std::string cn = c.name;
    std::transform(cn.begin(), cn.end(), cn.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (cn == key) return c;
  }
  EEND_REQUIRE_MSG(false, "unknown radio card: " << name);
  return {};  // unreachable
}

}  // namespace eend::energy
