// Per-node energy accounting — the simulator-side realization of the
// Section 2.1 energy model.
//
// The meter is a lazily-integrated state machine: it records the current
// radio mode, draw and accounting category, and on every transition adds
// (elapsed x power) into the (mode, category) bucket. This makes energy
// accounting O(1) per state change — no per-beacon bookkeeping events —
// which is what lets 200-node, 900-second runs finish in milliseconds.
//
// Buckets map onto the paper's decomposition:
//   Edata    = transmit/receive time attributed to data packets   (Eq. 1)
//   Econtrol = transmit/receive time attributed to control packets (Eq. 2)
//   Epassive = idle + sleep + switching                            (Eq. 3)
#pragma once

#include <array>
#include <cstdint>

#include "energy/radio_card.hpp"
#include "util/check.hpp"

namespace eend::energy {

/// Radio operating mode (Section 2.1: transmit, receive, idle, sleep).
enum class RadioMode : std::uint8_t { Transmit, Receive, Idle, Sleep };

/// Accounting category for communication energy.
enum class Category : std::uint8_t { Data, Control, Passive };

inline const char* to_string(RadioMode m) {
  switch (m) {
    case RadioMode::Transmit: return "transmit";
    case RadioMode::Receive: return "receive";
    case RadioMode::Idle: return "idle";
    case RadioMode::Sleep: return "sleep";
  }
  return "?";
}

/// Tracks one node's energy use over a run.
class EnergyMeter {
 public:
  /// `card` supplies idle/sleep draws and the per-transition switch cost.
  explicit EnergyMeter(const RadioCard& card) : card_(card) {}

  /// Start metering at simulation time `now` in the given persistent mode.
  void begin(double now, RadioMode mode);

  /// Transition to idle or sleep (persistent modes; draw from the card).
  /// `charge_switch` controls whether a sleep<->idle flip pays Esw —
  /// PerfectSleep radios bill passive time at sleep draw without real
  /// transitions and pass false.
  void set_passive_mode(double now, RadioMode mode, bool charge_switch = true);

  /// Enter transmit mode at `power_w` attributing to `cat`; the caller must
  /// pair this with a return to a passive mode (or another active mode).
  void set_transmit(double now, double power_w, Category cat);

  /// Enter receive mode attributing to `cat`.
  void set_receive(double now, Category cat);

  /// Charge a short transmission burst (e.g. an ATIM announcement frame)
  /// without changing the persistent mode — duration x power is added to
  /// the transmit bucket directly.
  void charge_tx_burst(double duration, double power_w, Category cat);

  /// Stop metering (integrates the final open interval).
  void finish(double now);

  RadioMode mode() const { return mode_; }

  /// Total including the currently-open interval up to `now` — lets
  /// battery models read consumption mid-run without a state change.
  double peek_total(double now) const;

  /// --- Totals (valid after finish(), or mid-run for time < last change) --
  double total() const;
  double data_energy() const;      ///< Edata
  double control_energy() const;   ///< Econtrol
  double passive_energy() const;   ///< Epassive (idle + sleep + switch)
  double transmit_energy() const;  ///< tx-mode energy, data + control
  double receive_energy() const;
  double idle_energy() const;
  double sleep_energy() const;
  double switch_energy() const;

  double time_in(RadioMode m) const;
  std::uint64_t switch_count() const { return switches_; }

 private:
  void integrate(double now);

  RadioCard card_;
  bool started_ = false;
  double last_ts_ = 0.0;
  RadioMode mode_ = RadioMode::Idle;
  Category cat_ = Category::Passive;
  double draw_w_ = 0.0;

  // energy[mode][category], time[mode]
  std::array<std::array<double, 3>, 4> energy_{};
  std::array<double, 4> time_{};
  double switch_energy_j_ = 0.0;
  std::uint64_t switches_ = 0;
};

}  // namespace eend::energy
