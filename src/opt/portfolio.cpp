#include "opt/portfolio.hpp"

#include <algorithm>

#include "core/parallel_runner.hpp"
#include "opt/local_search.hpp"
#include "presolve/presolve.hpp"
#include "util/rng.hpp"

namespace eend::opt {

namespace {

const char* seed_kind_for(std::size_t start) {
  switch (start) {
    case 0: return "klein_ravi";
    case 1: return "mpc";
    case 2: return "kmb";
    default: return (start - 3) % 2 == 0 ? "random_klein_ravi"
                                         : "random_kmb";
  }
}

/// Multiplicative jitter factor in [1 - amp, 1 + amp).
double jitter(Rng& rng, double amp) {
  return 1.0 + amp * (2.0 * rng.uniform() - 1.0);
}

graph::SteinerTree construct_seed(const core::NetworkDesignProblem& p,
                                  const PortfolioOptions& o,
                                  std::size_t start) {
  // Constructive seeds run on the presolved twins when available — node-
  // weighted greedy on node_reduced, edge-weighted KMB on edge_reduced —
  // which is bit-identical to the full instance (presolve/presolve.hpp).
  const core::NetworkDesignProblem& node_view =
      o.presolve ? o.presolve->node_reduced : p;
  const std::string kind = seed_kind_for(start);
  if (kind == "klein_ravi") {
    return o.klein_ravi_tree ? *o.klein_ravi_tree
                             : node_view.solve_node_weighted();
  }
  if (kind == "mpc") return node_view.solve_mpc_reduction();
  if (kind == "kmb")
    return (o.presolve ? o.presolve->edge_reduced : p).solve_edge_weighted();

  // GRASP randomization: rebuild the greedy tree on a weight-jittered copy
  // of the instance, then score it on the true instance. The amplitude
  // keeps weights positive for any grasp_jitter < 1.
  const double amp = std::min(o.grasp_jitter, 0.95);
  Rng rng = Rng(o.seed).fork(0x6EA5).fork(start);
  if (kind == "random_klein_ravi") {
    // node_reduced shares the original node-id space, so the per-node
    // jitter stream lines up and the reduced run stays bit-identical.
    graph::Graph jittered = node_view.graph();
    for (graph::NodeId v = 0; v < jittered.node_count(); ++v)
      jittered.set_node_weight(v, jittered.node_weight(v) * jitter(rng, amp));
    return graph::klein_ravi_steiner(jittered, p.terminals());
  }
  // random_kmb jitters *per edge id*: reduced twins renumber edges, which
  // would shift the stream and change results — always use the original.
  graph::Graph jittered = p.graph();
  for (graph::EdgeId e = 0; e < jittered.edge_count(); ++e)
    jittered.edge(e).weight *= jitter(rng, amp);
  return graph::kmb_steiner_tree(jittered, p.terminals());
}

PortfolioStart run_start(const core::NetworkDesignProblem& p,
                         const PortfolioOptions& o, std::size_t start) {
  PortfolioStart out;
  out.seed_kind = seed_kind_for(start);
  out.seeded = design_from_tree(p, construct_seed(p, o, start), o.objective);
  if (!out.seeded.feasible) {
    out.improved = out.seeded;
    return out;
  }
  CandidateDesign cur = out.seeded;
  if (o.anneal.iterations > 0)
    cur = simulated_annealing(p, cur, o.objective, o.anneal,
                              Rng(o.seed).fork(0x5A17).fork(start).seed());
  out.improved = local_search(p, cur, o.objective);
  return out;
}

}  // namespace

PortfolioResult design_portfolio(const core::NetworkDesignProblem& problem,
                                 const PortfolioOptions& options) {
  const std::size_t n = std::max<std::size_t>(1, options.starts);

  PortfolioResult result;
  result.starts.resize(n);
  core::ParallelRunner pool(options.jobs);
  pool.set_span_label("portfolio.start");
  pool.for_each_index(n, [&](std::size_t i) {
    result.starts[i] = run_start(problem, options, i);
  });

  // Seed-order merge: lowest cost wins, lowest start index breaks ties —
  // independent of which worker finished first.
  std::size_t best = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.starts[i].improved.feasible) continue;
    if (best == n ||
        result.starts[i].improved.cost() < result.starts[best].improved.cost())
      best = i;
  }
  if (best == n) {  // no feasible start (disconnected terminals)
    result.best = result.starts[0].improved;
    result.best_start = 0;
    return result;
  }
  result.best = result.starts[best].improved;
  result.best_start = best;
  return result;
}

}  // namespace eend::opt
