// Metaheuristic design search over the Section 3 (Eq. 5) network design
// problem — the subsystem the paper's title promises.
//
// A *design* is a set of active nodes F (always containing every demand
// endpoint). Scoring a design routes each demand along its shortest
// communication-cost path restricted to F and evaluates Eq. 5 on the
// resulting flows: restricting routing to a small F forces demands to share
// relays (lower idle cost) at some data-cost premium — exactly the
// trade-off the paper's one-shot approximations (Klein-Ravi, the MPC
// edge-weight reduction) strike once, and that the search layers here
// (local_search.hpp, annealing.hpp, portfolio.hpp) keep improving.
//
// DesignHeuristic is the uniform interface: a name, plus run(problem,
// options, seed) -> CandidateDesign. Every heuristic is deterministic in
// (problem, options, seed); the registry (heuristic_names /
// heuristic_by_name) is what manifests and benches validate against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/design_problem.hpp"

namespace eend::opt {

/// One candidate design: the active node set with its Eq. 5 score.
struct CandidateDesign {
  /// Active nodes, sorted ascending, endpoints included. After evaluation
  /// this is exactly the set of nodes carrying flows (allowed-but-unused
  /// nodes are dropped — they cost nothing and would bloat the state).
  std::vector<graph::NodeId> nodes;
  analytical::Eq5Breakdown score;
  bool feasible = false;

  double cost() const { return score.total(); }
};

/// Score the design implied by `nodes`: route every demand along its
/// shortest path within the set, drop nodes no route uses, evaluate Eq. 5.
/// Infeasible sets (some demand unroutable) come back with feasible=false
/// and an infinite-cost-like empty score — callers compare via cost() only
/// on feasible candidates.
CandidateDesign evaluate_design(const core::NetworkDesignProblem& problem,
                                const std::vector<graph::NodeId>& nodes,
                                const analytical::Eq5Params& eval);

/// Evaluate a constructive solver's tree as a design seed.
CandidateDesign design_from_tree(const core::NetworkDesignProblem& problem,
                                 const graph::SteinerTree& tree,
                                 const analytical::Eq5Params& eval);

/// Knobs shared by every heuristic (each uses the subset it needs).
struct HeuristicOptions {
  analytical::Eq5Params eval;
  std::size_t starts = 8;             ///< portfolio: multi-start count
  std::size_t anneal_iterations = 300;///< annealing moves per (re)start
  std::size_t jobs = 1;               ///< portfolio: ParallelRunner width
  /// Optional precomputed Klein-Ravi tree for this problem. The tree is
  /// deterministic in the instance alone, and it seeds klein_ravi,
  /// local_search, annealing AND the portfolio's start 0 — callers running
  /// several heuristics on one instance (ExperimentEngine::run_design,
  /// bench) solve it once and share it here. Must outlive the run() call;
  /// nullptr = each heuristic solves its own.
  const graph::SteinerTree* klein_ravi_tree = nullptr;
};

class DesignHeuristic {
 public:
  virtual ~DesignHeuristic() = default;
  virtual const std::string& name() const = 0;
  /// Deterministic in (problem, opts, seed) — byte-identical results for
  /// any jobs value (parallel fan-outs merge in seed order).
  virtual CandidateDesign run(const core::NetworkDesignProblem& problem,
                              const HeuristicOptions& opts,
                              std::uint64_t seed) const = 0;
};

/// Registry names in canonical order: "klein_ravi", "mpc", "kmb",
/// "local_search", "annealing", "portfolio".
const std::vector<std::string>& heuristic_names();

/// Lookup by manifest name; throws CheckError listing the valid names.
const DesignHeuristic& heuristic_by_name(const std::string& name);

}  // namespace eend::opt
