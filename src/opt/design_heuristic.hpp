// Metaheuristic design search over the Section 3 (Eq. 5) network design
// problem — the subsystem the paper's title promises.
//
// A *design* is a set of active nodes F (always containing every demand
// endpoint). Scoring a design routes each demand along its shortest
// communication-cost path restricted to F and evaluates Eq. 5 on the
// resulting flows: restricting routing to a small F forces demands to share
// relays (lower idle cost) at some data-cost premium — exactly the
// trade-off the paper's one-shot approximations (Klein-Ravi, the MPC
// edge-weight reduction) strike once, and that the search layers here
// (local_search.hpp, annealing.hpp, portfolio.hpp) keep improving.
//
// DesignHeuristic is the uniform interface: a name, plus run(problem,
// options, seed) -> CandidateDesign. Every heuristic is deterministic in
// (problem, options, seed); the registry (heuristic_names /
// heuristic_by_name) is what manifests and benches validate against.
//
// Two scoring modes share one objective type: the plain Eq. 5 total, and —
// when DesignObjective::battery_budget_j > 0 — a lifetime-constrained mode
// that adds a penalty for every unit by which a node's idle + routed energy
// share exceeds the per-node battery budget. The `*_lifetime` registry
// variants run the same searches under the penalized objective, steering
// them toward designs whose most-loaded node survives longest (the
// replay/ subsystem validates exactly that against simulated first-death).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/design_problem.hpp"

namespace eend::presolve {
struct PresolveResult;
}

namespace eend::opt {

/// One candidate design: the active node set with its Eq. 5 score.
struct CandidateDesign {
  /// Active nodes, sorted ascending, endpoints included. After evaluation
  /// this is exactly the set of nodes carrying flows (allowed-but-unused
  /// nodes are dropped — they cost nothing and would bloat the state).
  std::vector<graph::NodeId> nodes;
  analytical::Eq5Breakdown score;
  bool feasible = false;
  /// Lifetime-constrained scoring only (both 0 under the plain objective,
  /// whose hot search loops skip the load scan): the largest per-node
  /// energy share (see node_energy_loads), and
  /// penalty_weight · Σ_v max(0, load(v) − battery_budget_j).
  double max_node_load = 0.0;
  double lifetime_penalty = 0.0;

  double cost() const { return score.total() + lifetime_penalty; }
};

/// Search objective: Eq. 5, optionally penalized by per-node battery
/// overload. Implicitly constructible from bare Eq5Params so existing
/// plain-objective call sites read unchanged (budget 0 ⇒ identical cost).
struct DesignObjective {
  analytical::Eq5Params eval;
  /// Per-node energy budget in the same units Eq. 5 produces (joules when
  /// t_idle/t_data_per_packet carry seconds). 0 = plain Eq. 5 scoring.
  double battery_budget_j = 0.0;
  /// Cost added per unit of per-node overload. Large enough by default
  /// that a fraction of a joule of overload outweighs the ~100 J idle cost
  /// of opening another relay — the budget acts as a near-hard constraint
  /// whenever a compliant design is reachable.
  double overload_penalty = 1024.0;

  DesignObjective() = default;
  DesignObjective(const analytical::Eq5Params& e) : eval(e) {}
};

/// Per-node energy shares of a routed design, in Eq. 5 units: every node on
/// a route is charged t_idle · c(v) (endpoints included — unlike the Eq. 5
/// idle term, a simulated endpoint idles and drains its battery too) plus
/// half the data cost of each incident route edge (w(e) lumps the
/// transmitter's and receiver's draw; the half/half split attributes it
/// symmetrically). Indexed by NodeId over the whole graph; non-active nodes
/// read 0.
std::vector<double> node_energy_loads(
    const graph::Graph& g,
    std::span<const analytical::RoutedDemand> routes,
    const analytical::Eq5Params& eval);

/// Score the design implied by `nodes`: route every demand along its
/// shortest path within the set, drop nodes no route uses, evaluate Eq. 5
/// and (when the objective carries a battery budget) the overload penalty.
/// Infeasible sets (some demand unroutable) come back with feasible=false
/// and an infinite-cost-like empty score — callers compare via cost() only
/// on feasible candidates.
CandidateDesign evaluate_design(const core::NetworkDesignProblem& problem,
                                const std::vector<graph::NodeId>& nodes,
                                const DesignObjective& objective);

/// Route memo for incremental re-evaluation (the churn/ warm-start loop):
/// the allowed node set an evaluation routed within, plus the routes it
/// produced — valid only for the graph and demand endpoints it was filled
/// against (rates may change; paths are rate-independent).
struct RouteCache {
  std::vector<graph::NodeId> nodes;  ///< allowed set at fill time
  std::vector<analytical::RoutedDemand> routes;

  bool empty() const { return routes.empty(); }
  void clear() {
    nodes.clear();
    routes.clear();
  }
};

/// Path-reuse twin of evaluate_design: when `reuse` holds routes for a
/// superset allowed set on the same graph, demands whose cached path is
/// untouched by the shrink skip Dijkstra entirely (see
/// NetworkDesignProblem::try_route_in_subgraph_cached for the exact validity
/// rule — the result is bit-identical to the uncached evaluation). When
/// `fill` is non-null it receives this evaluation's allowed set and routes
/// (only on feasible results) for the next round. Either pointer may be
/// null; (nullptr, nullptr) is exactly the plain overload.
CandidateDesign evaluate_design(const core::NetworkDesignProblem& problem,
                                const std::vector<graph::NodeId>& nodes,
                                const DesignObjective& objective,
                                const RouteCache* reuse, RouteCache* fill);

/// Evaluate a constructive solver's tree as a design seed.
CandidateDesign design_from_tree(const core::NetworkDesignProblem& problem,
                                 const graph::SteinerTree& tree,
                                 const DesignObjective& objective);

/// Knobs shared by every heuristic (each uses the subset it needs).
struct HeuristicOptions {
  analytical::Eq5Params eval;
  std::size_t starts = 8;             ///< portfolio: multi-start count
  std::size_t anneal_iterations = 300;///< annealing moves per (re)start
  std::size_t jobs = 1;               ///< portfolio: ParallelRunner width
  /// Lifetime variants only: per-node energy budget (must be > 0 when a
  /// `*_lifetime` heuristic runs) and the overload penalty weight. Base
  /// heuristics ignore both and score plain Eq. 5.
  double battery_budget_j = 0.0;
  double overload_penalty = 1024.0;
  /// Optional precomputed Klein-Ravi tree for this problem. The tree is
  /// deterministic in the instance alone, and it seeds klein_ravi,
  /// local_search, annealing AND the portfolio's start 0 — callers running
  /// several heuristics on one instance (ExperimentEngine::run_design,
  /// bench) solve it once and share it here. Must outlive the run() call;
  /// nullptr = each heuristic solves its own.
  const graph::SteinerTree* klein_ravi_tree = nullptr;
  /// Optional presolve result for this problem (see presolve/presolve.hpp).
  /// When set, the constructive solvers run on the reduced twins —
  /// node_reduced for Klein-Ravi / MPC, edge_reduced for KMB — which is
  /// bit-identical to solving the full instance, just cheaper. Evaluation
  /// and the search layers always use the original problem. Must outlive
  /// the run() call; nullptr = no reduction.
  const presolve::PresolveResult* presolve = nullptr;
};

class DesignHeuristic {
 public:
  virtual ~DesignHeuristic() = default;
  virtual const std::string& name() const = 0;
  /// Deterministic in (problem, opts, seed) — byte-identical results for
  /// any jobs value (parallel fan-outs merge in seed order).
  virtual CandidateDesign run(const core::NetworkDesignProblem& problem,
                              const HeuristicOptions& opts,
                              std::uint64_t seed) const = 0;
};

/// Registry names in canonical order: "klein_ravi", "mpc", "kmb",
/// "local_search", "annealing", "portfolio", then the lifetime-constrained
/// twins "local_search_lifetime", "annealing_lifetime",
/// "portfolio_lifetime".
const std::vector<std::string>& heuristic_names();

/// Lookup by manifest name; throws CheckError listing the valid names.
const DesignHeuristic& heuristic_by_name(const std::string& name);

/// True for the `*_lifetime` variants, which require
/// HeuristicOptions::battery_budget_j > 0 (manifests reject them where no
/// battery provides the budget). Throws on unknown names.
bool heuristic_uses_battery_budget(const std::string& name);

}  // namespace eend::opt
