#include "opt/design_heuristic.hpp"

#include <algorithm>
#include <set>

#include "opt/annealing.hpp"
#include "opt/local_search.hpp"
#include "opt/portfolio.hpp"
#include "presolve/presolve.hpp"
#include "util/check.hpp"

namespace eend::opt {

std::vector<double> node_energy_loads(
    const graph::Graph& g,
    std::span<const analytical::RoutedDemand> routes,
    const analytical::Eq5Params& eval) {
  std::vector<double> load(g.node_count(), 0.0);
  std::vector<char> active(g.node_count(), 0);
  for (const analytical::RoutedDemand& r : routes) {
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      active[r.path[i]] = 1;
      if (i + 1 < r.path.size()) {
        const double w = g.edge_weight_between(r.path[i], r.path[i + 1]);
        EEND_CHECK(w < graph::kInfCost);
        const double half = 0.5 * eval.t_data_per_packet * r.packets * w;
        load[r.path[i]] += half;
        load[r.path[i + 1]] += half;
      }
    }
  }
  // Idle is charged to every active node — simulated endpoints drain their
  // batteries too, so the lifetime proxy must not zero them out the way the
  // Eq. 5 idle term does.
  for (graph::NodeId v = 0; v < g.node_count(); ++v)
    if (active[v]) load[v] += eval.t_idle * g.node_weight(v);
  return load;
}

CandidateDesign evaluate_design(const core::NetworkDesignProblem& problem,
                                const std::vector<graph::NodeId>& nodes,
                                const DesignObjective& objective) {
  return evaluate_design(problem, nodes, objective, nullptr, nullptr);
}

CandidateDesign evaluate_design(const core::NetworkDesignProblem& problem,
                                const std::vector<graph::NodeId>& nodes,
                                const DesignObjective& objective,
                                const RouteCache* reuse, RouteCache* fill) {
  EEND_REQUIRE_MSG(!nodes.empty(), "a design needs at least one node");
  CandidateDesign out;
  const auto routes =
      reuse && !reuse->empty()
          ? problem.try_route_in_subgraph_cached(nodes, reuse->nodes,
                                                 reuse->routes)
          : problem.try_route_in_subgraph(nodes);
  if (!routes) {
    out.nodes = nodes;
    std::sort(out.nodes.begin(), out.nodes.end());
    out.feasible = false;
    return out;
  }
  out.score = analytical::evaluate_eq5(problem.graph(), *routes,
                                       objective.eval);
  // The load scan is O(N + route length) per evaluation and only the
  // lifetime objective consumes it; the plain mode — the innermost loop of
  // every design-kind search — must not pay for it.
  if (objective.battery_budget_j > 0.0) {
    const std::vector<double> loads =
        node_energy_loads(problem.graph(), *routes, objective.eval);
    double overload = 0.0;
    for (const double l : loads) {
      out.max_node_load = std::max(out.max_node_load, l);
      overload += std::max(0.0, l - objective.battery_budget_j);
    }
    out.lifetime_penalty = objective.overload_penalty * overload;
  }
  // Normalize the state to the nodes the routing actually uses: allowed-
  // but-idle-free nodes contribute nothing to Eq. 5 and would make equal-
  // cost designs compare unequal.
  std::set<graph::NodeId> used;
  for (const auto& r : *routes) used.insert(r.path.begin(), r.path.end());
  out.nodes.assign(used.begin(), used.end());
  out.feasible = true;
  if (fill) {
    // Memoize against the *allowed* set (pre-normalization): the subset
    // test in the cached routing twin compares allowed sets, not the
    // route-used subset the CandidateDesign keeps.
    fill->nodes = nodes;
    std::sort(fill->nodes.begin(), fill->nodes.end());
    fill->routes = *routes;
  }
  return out;
}

CandidateDesign design_from_tree(const core::NetworkDesignProblem& problem,
                                 const graph::SteinerTree& tree,
                                 const DesignObjective& objective) {
  if (!tree.feasible || tree.nodes.empty()) {
    CandidateDesign out;
    out.nodes = tree.nodes;
    out.feasible = false;
    return out;
  }
  return evaluate_design(problem, tree.nodes, objective);
}

namespace {

/// The shared Klein-Ravi seed: the caller-provided tree when present,
/// otherwise solved fresh — on the dead-end-masked twin when presolve ran
/// (bit-identical to the full instance; see presolve/presolve.hpp).
graph::SteinerTree klein_ravi_tree(const core::NetworkDesignProblem& p,
                                   const HeuristicOptions& o) {
  if (o.klein_ravi_tree) return *o.klein_ravi_tree;
  return (o.presolve ? o.presolve->node_reduced : p).solve_node_weighted();
}

/// The objective a heuristic scores under: plain Eq. 5 for the base
/// variants, battery-penalized for the `*_lifetime` twins (which require a
/// positive budget — running one without a battery would silently reduce to
/// the base heuristic and mislabel its series).
DesignObjective objective_of(const HeuristicOptions& o, bool lifetime,
                             const std::string& name) {
  DesignObjective obj(o.eval);
  if (lifetime) {
    EEND_REQUIRE_MSG(o.battery_budget_j > 0.0,
                     "heuristic \"" << name
                     << "\" needs HeuristicOptions::battery_budget_j > 0 "
                        "(the per-node battery that defines overload)");
    obj.battery_budget_j = o.battery_budget_j;
    obj.overload_penalty = o.overload_penalty;
  }
  return obj;
}

// ---------------------------------------------------------------- registry ---

class KleinRaviHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "klein_ravi";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    return design_from_tree(p, klein_ravi_tree(p, o), o.eval);
  }
};

class MpcHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "mpc";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    return design_from_tree(
        p, (o.presolve ? o.presolve->node_reduced : p).solve_mpc_reduction(),
        o.eval);
  }
};

class KmbHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "kmb";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    return design_from_tree(
        p, (o.presolve ? o.presolve->edge_reduced : p).solve_edge_weighted(),
        o.eval);
  }
};

class LocalSearchHeuristic final : public DesignHeuristic {
 public:
  explicit LocalSearchHeuristic(bool lifetime)
      : lifetime_(lifetime),
        name_(lifetime ? "local_search_lifetime" : "local_search") {}
  const std::string& name() const override { return name_; }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    const DesignObjective obj = objective_of(o, lifetime_, name_);
    const CandidateDesign seed =
        design_from_tree(p, klein_ravi_tree(p, o), obj);
    if (!seed.feasible) return seed;
    return local_search(p, seed, obj);
  }

 private:
  bool lifetime_;
  std::string name_;
};

class AnnealingHeuristic final : public DesignHeuristic {
 public:
  explicit AnnealingHeuristic(bool lifetime)
      : lifetime_(lifetime),
        name_(lifetime ? "annealing_lifetime" : "annealing") {}
  const std::string& name() const override { return name_; }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t seed) const override {
    const DesignObjective obj = objective_of(o, lifetime_, name_);
    const CandidateDesign start =
        design_from_tree(p, klein_ravi_tree(p, o), obj);
    if (!start.feasible) return start;
    AnnealingSchedule sched;
    sched.iterations = o.anneal_iterations;
    return simulated_annealing(p, start, obj, sched, seed);
  }

 private:
  bool lifetime_;
  std::string name_;
};

class PortfolioHeuristic final : public DesignHeuristic {
 public:
  explicit PortfolioHeuristic(bool lifetime)
      : lifetime_(lifetime),
        name_(lifetime ? "portfolio_lifetime" : "portfolio") {}
  const std::string& name() const override { return name_; }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t seed) const override {
    const DesignObjective obj = objective_of(o, lifetime_, name_);
    PortfolioOptions po;
    po.objective = obj;
    po.starts = o.starts;
    po.jobs = o.jobs;
    po.anneal.iterations = o.anneal_iterations;
    po.seed = seed;
    po.klein_ravi_tree = o.klein_ravi_tree;
    po.presolve = o.presolve;
    return design_portfolio(p, po).best;
  }

 private:
  bool lifetime_;
  std::string name_;
};

const DesignHeuristic* const kRegistry[] = {
    new KleinRaviHeuristic,
    new MpcHeuristic,
    new KmbHeuristic,
    new LocalSearchHeuristic(false),
    new AnnealingHeuristic(false),
    new PortfolioHeuristic(false),
    new LocalSearchHeuristic(true),
    new AnnealingHeuristic(true),
    new PortfolioHeuristic(true),
};

}  // namespace

const std::vector<std::string>& heuristic_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const DesignHeuristic* h : kRegistry) out.push_back(h->name());
    return out;
  }();
  return names;
}

const DesignHeuristic& heuristic_by_name(const std::string& name) {
  for (const DesignHeuristic* h : kRegistry)
    if (h->name() == name) return *h;
  std::string valid;
  for (const auto& n : heuristic_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  EEND_REQUIRE_MSG(false, "unknown design heuristic \"" << name
                          << "\" (valid: " << valid << ")");
  throw CheckError("unreachable");
}

bool heuristic_uses_battery_budget(const std::string& name) {
  heuristic_by_name(name);  // throws on unknown names
  const std::string suffix = "_lifetime";
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace eend::opt
