#include "opt/design_heuristic.hpp"

#include <algorithm>
#include <set>

#include "opt/annealing.hpp"
#include "opt/local_search.hpp"
#include "opt/portfolio.hpp"
#include "util/check.hpp"

namespace eend::opt {

CandidateDesign evaluate_design(const core::NetworkDesignProblem& problem,
                                const std::vector<graph::NodeId>& nodes,
                                const analytical::Eq5Params& eval) {
  EEND_REQUIRE_MSG(!nodes.empty(), "a design needs at least one node");
  CandidateDesign out;
  const auto routes = problem.try_route_in_subgraph(nodes);
  if (!routes) {
    out.nodes = nodes;
    std::sort(out.nodes.begin(), out.nodes.end());
    out.feasible = false;
    return out;
  }
  out.score = analytical::evaluate_eq5(problem.graph(), *routes, eval);
  // Normalize the state to the nodes the routing actually uses: allowed-
  // but-idle-free nodes contribute nothing to Eq. 5 and would make equal-
  // cost designs compare unequal.
  std::set<graph::NodeId> used;
  for (const auto& r : *routes) used.insert(r.path.begin(), r.path.end());
  out.nodes.assign(used.begin(), used.end());
  out.feasible = true;
  return out;
}

CandidateDesign design_from_tree(const core::NetworkDesignProblem& problem,
                                 const graph::SteinerTree& tree,
                                 const analytical::Eq5Params& eval) {
  if (!tree.feasible || tree.nodes.empty()) {
    CandidateDesign out;
    out.nodes = tree.nodes;
    out.feasible = false;
    return out;
  }
  return evaluate_design(problem, tree.nodes, eval);
}

namespace {

/// The shared Klein-Ravi seed: the caller-provided tree when present,
/// otherwise solved fresh.
graph::SteinerTree klein_ravi_tree(const core::NetworkDesignProblem& p,
                                   const HeuristicOptions& o) {
  return o.klein_ravi_tree ? *o.klein_ravi_tree : p.solve_node_weighted();
}

// ---------------------------------------------------------------- registry ---

class KleinRaviHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "klein_ravi";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    return design_from_tree(p, klein_ravi_tree(p, o), o.eval);
  }
};

class MpcHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "mpc";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    return design_from_tree(p, p.solve_mpc_reduction(), o.eval);
  }
};

class KmbHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "kmb";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    return design_from_tree(p, p.solve_edge_weighted(), o.eval);
  }
};

class LocalSearchHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "local_search";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t) const override {
    const CandidateDesign seed =
        design_from_tree(p, klein_ravi_tree(p, o), o.eval);
    if (!seed.feasible) return seed;
    return local_search(p, seed, o.eval);
  }
};

class AnnealingHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "annealing";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t seed) const override {
    const CandidateDesign start =
        design_from_tree(p, klein_ravi_tree(p, o), o.eval);
    if (!start.feasible) return start;
    AnnealingSchedule sched;
    sched.iterations = o.anneal_iterations;
    return simulated_annealing(p, start, o.eval, sched, seed);
  }
};

class PortfolioHeuristic final : public DesignHeuristic {
 public:
  const std::string& name() const override {
    static const std::string n = "portfolio";
    return n;
  }
  CandidateDesign run(const core::NetworkDesignProblem& p,
                      const HeuristicOptions& o,
                      std::uint64_t seed) const override {
    PortfolioOptions po;
    po.eval = o.eval;
    po.starts = o.starts;
    po.jobs = o.jobs;
    po.anneal.iterations = o.anneal_iterations;
    po.seed = seed;
    po.klein_ravi_tree = o.klein_ravi_tree;
    return design_portfolio(p, po).best;
  }
};

const DesignHeuristic* const kRegistry[] = {
    new KleinRaviHeuristic,  new MpcHeuristic,       new KmbHeuristic,
    new LocalSearchHeuristic, new AnnealingHeuristic, new PortfolioHeuristic,
};

}  // namespace

const std::vector<std::string>& heuristic_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const DesignHeuristic* h : kRegistry) out.push_back(h->name());
    return out;
  }();
  return names;
}

const DesignHeuristic& heuristic_by_name(const std::string& name) {
  for (const DesignHeuristic* h : kRegistry)
    if (h->name() == name) return *h;
  std::string valid;
  for (const auto& n : heuristic_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  EEND_REQUIRE_MSG(false, "unknown design heuristic \"" << name
                          << "\" (valid: " << valid << ")");
  throw CheckError("unreachable");
}

}  // namespace eend::opt
