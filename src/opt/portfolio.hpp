// GRASP-style multi-start portfolio: diversified constructive seeds, each
// refined by annealing + local search, fanned out across a
// core::ParallelRunner and merged in start order.
//
// Start 0 is always the deterministic Klein-Ravi tree followed by pure
// descent — since local search never worsens its seed, the portfolio's
// Eq. 5 cost is ≤ the Klein-Ravi baseline's *by construction*, on every
// instance (the acceptance bar the design_portfolio golden family pins).
// Starts 1/2 are the MPC reduction and plain KMB trees; further starts are
// randomized greedy constructions (Klein-Ravi on multiplicatively jittered
// node weights, KMB on jittered edge weights — the GRASP recipe), each
// scored and refined on the *true* instance.
//
// Determinism: every start's work depends only on (problem, options, start
// index), results land in pre-sized slots, and the winner is the lowest
// cost with lowest-start-index tie-break — byte-identical for any jobs.
#pragma once

#include "opt/annealing.hpp"
#include "opt/design_heuristic.hpp"

namespace eend::opt {

struct PortfolioOptions {
  /// Scoring objective for seeds, anneal walks and descents alike — plain
  /// Eq. 5, or lifetime-penalized when battery_budget_j > 0.
  DesignObjective objective;
  std::size_t starts = 8;    ///< total starts (>= 1; 0 is clamped to 1)
  std::size_t jobs = 1;      ///< ParallelRunner width (0 = auto)
  AnnealingSchedule anneal;  ///< iterations = 0 disables the anneal stage
  double grasp_jitter = 0.35;///< weight noise amplitude for random starts
  std::uint64_t seed = 1;
  /// Optional precomputed Klein-Ravi tree (start 0's seed); see
  /// HeuristicOptions::klein_ravi_tree. Must outlive the call.
  const graph::SteinerTree* klein_ravi_tree = nullptr;
  /// Optional presolve result; constructive seeds then run on the reduced
  /// twins where that is provably bit-identical (see
  /// HeuristicOptions::presolve). Must outlive the call.
  const presolve::PresolveResult* presolve = nullptr;
};

struct PortfolioStart {
  std::string seed_kind;    ///< "klein_ravi" | "mpc" | "kmb" |
                            ///< "random_klein_ravi" | "random_kmb"
  CandidateDesign seeded;   ///< the constructive seed, evaluated
  CandidateDesign improved; ///< after annealing + local search
};

struct PortfolioResult {
  CandidateDesign best;
  std::size_t best_start = 0;
  std::vector<PortfolioStart> starts;  ///< in start order
};

PortfolioResult design_portfolio(const core::NetworkDesignProblem& problem,
                                 const PortfolioOptions& options);

}  // namespace eend::opt
