#include "opt/design_instance.hpp"

#include <cmath>
#include <set>
#include <utility>

#include "net/scenario.hpp"
#include "presolve/presolve.hpp"
#include "util/rng.hpp"

namespace eend::opt {

DesignInstanceSpec::DesignInstanceSpec() : card(energy::cabletron()) {}

DesignInstance make_design_instance(const DesignInstanceSpec& spec) {
  EEND_REQUIRE_MSG(spec.node_count >= 2, "an instance needs >= 2 nodes");
  EEND_REQUIRE_MSG(spec.demand_count >= 1, "an instance needs >= 1 demand");
  EEND_REQUIRE_MSG(
      spec.demand_count <= spec.node_count * (spec.node_count - 1),
      "more demands than distinct (source, destination) pairs");
  EEND_REQUIRE_MSG(spec.demand_rate > 0.0, "demand rate must be positive");
  for (const double w : spec.demand_weights)
    EEND_REQUIRE_MSG(w > 0.0 && std::isfinite(w),
                     "demand weights must be positive and finite, got " << w);

  EEND_REQUIRE_MSG(spec.field_scale > 0.0 && std::isfinite(spec.field_scale),
                   "field scale must be positive and finite, got "
                       << spec.field_scale);
  const double side =
      spec.field_side > 0.0
          ? spec.field_side
          : spec.field_scale * 1300.0 *
                std::sqrt(static_cast<double>(spec.node_count) / 200.0);

  // Reuse the simulator's deterministic placement (retried with salted
  // seeds until connected at max power), so every instance is routable.
  net::ScenarioConfig sc;
  sc.node_count = spec.node_count;
  sc.field_w = sc.field_h = side;
  sc.card = spec.card;
  sc.seed = spec.seed;
  sc.flow_count = 0;  // flows are irrelevant; demands are sampled below

  DesignInstance out{
      core::NetworkDesignProblem(graph::Graph{}), {}, side, nullptr};
  out.positions = net::place_nodes(sc);
  out.problem =
      core::NetworkDesignProblem::from_positions(out.positions, spec.card);

  Rng rng = Rng(spec.seed).fork(0xDE51);
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  while (seen.size() < spec.demand_count) {
    const auto s = static_cast<graph::NodeId>(
        rng.next_below(spec.node_count));
    const auto d = static_cast<graph::NodeId>(
        rng.next_below(spec.node_count));
    if (s == d || !seen.insert({s, d}).second) continue;
    const std::size_t j = seen.size() - 1;  // draw order = demand index
    const double weight =
        spec.demand_weights.empty()
            ? 1.0
            : spec.demand_weights[j % spec.demand_weights.size()];
    out.problem.add_demand({s, d, spec.demand_rate * weight});
  }
  if (spec.presolve)
    out.presolve = std::make_shared<const presolve::PresolveResult>(
        presolve::presolve_design(out.problem));
  return out;
}

}  // namespace eend::opt
