// Tree-local improvement over a candidate design: steepest-descent search
// with three operator families, all evaluated under the true Eq. 5
// objective (routing re-runs inside the candidate set, so every move is a
// "path reroute within the connectivity graph" as a side effect):
//
//   * relay removal     — drop one non-endpoint active node; surviving
//                         routes re-route around it;
//   * Steiner insertion — open one inactive node adjacent to the design;
//                         routes may shortcut through it;
//   * relay exchange    — close relay v and open one of its inactive
//                         neighbors in the same move (the reroute operator:
//                         a swap neither single move can reach, because
//                         removal alone would disconnect and insertion
//                         alone would not force the reroute).
//
// Each pass evaluates every candidate move and applies the single best
// strict improvement; enumeration order is sorted-node-id, so the descent
// is deterministic. The result is never worse than the seed: when no move
// improves, the seed is returned unchanged (bit-identical cost).
#pragma once

#include "opt/design_heuristic.hpp"

namespace eend::opt {

struct LocalSearchStats {
  std::size_t passes = 0;       ///< improvement rounds applied
  std::size_t evaluations = 0;  ///< candidate designs scored
};

/// Steepest descent from `start` (which must be feasible). `max_passes`
/// bounds the improvement rounds; each pass is O(moves · Eq5 evaluation).
/// The objective implicitly converts from bare Eq5Params (plain scoring).
CandidateDesign local_search(const core::NetworkDesignProblem& problem,
                             const CandidateDesign& start,
                             const DesignObjective& objective,
                             std::size_t max_passes = 64,
                             LocalSearchStats* stats = nullptr);

}  // namespace eend::opt
