// Incremental re-design: repair the previous epoch's CandidateDesign under
// a perturbed instance instead of searching from scratch — the serving-loop
// half of the churn/ subsystem.
//
// The repair has three stages:
//   1. *Feasibility*: start from the previous active set plus the current
//      terminals; while some demand is unroutable inside it, route that
//      demand on the full graph and absorb its path (adding nodes never
//      breaks other demands, so this terminates in <= |demands| rounds).
//   2. *Localized descent*: the removal / insertion / exchange moves of
//      opt/local_search.hpp, but restricted to a repair region grown from
//      the perturbation's touched nodes (two neighbor rings) — the move
//      budget scales with the perturbation, not the instance. Removal
//      candidates re-evaluate through the RouteCache fast path, so demands
//      whose route avoids the probed node skip Dijkstra entirely.
//   3. *Fallback*: the repaired design is referenced against a fresh
//      Klein-Ravi construction (the always-available one-shot baseline).
//      If its cost exceeds (1 + fallback_pct/100) x the reference — repair
//      quality degraded past the threshold — a full portfolio search runs
//      and the better of the two wins.
//
// Deterministic in (problem, previous, touched_nodes, options, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "opt/design_heuristic.hpp"

namespace eend::opt {

struct WarmStartOptions {
  DesignObjective objective;
  /// Fallback portfolio knobs (only consumed when the fallback fires).
  std::size_t starts = 8;
  std::size_t anneal_iterations = 300;
  std::size_t jobs = 1;
  /// Fallback threshold: repair must land within this percentage of the
  /// Klein-Ravi reference cost, else a from-scratch portfolio runs.
  double fallback_pct = 5.0;
  /// Steepest-descent passes over the repair region.
  std::size_t max_repair_passes = 8;
  /// Optional presolve of the *current* (perturbed) problem: speeds the
  /// Klein-Ravi reference and the fallback portfolio's constructive seeds
  /// (bit-identical results). Must outlive the call; nullptr = none.
  const presolve::PresolveResult* presolve = nullptr;
};

struct WarmStartResult {
  CandidateDesign design;
  bool fell_back = false;          ///< the full portfolio ran
  std::size_t rerouted_demands = 0;///< routes differing from previous_routes
  std::size_t evaluations = 0;     ///< evaluate_design calls spent
};

/// Repair `previous` (the prior epoch's design; callers must already have
/// dropped failed nodes from it) under `problem` (the perturbed instance,
/// which must be routable). `touched_nodes` seeds the repair region — the
/// nodes the perturbation referenced. `previous_routes`, when non-null,
/// accelerates the first evaluation (pass null after topology changes: the
/// cache is only valid over an unchanged graph) and anchors the
/// rerouted_demands count; `out_routes`, when non-null, receives the final
/// design's routes for the next epoch.
WarmStartResult warm_start_search(
    const core::NetworkDesignProblem& problem,
    const CandidateDesign& previous,
    const std::vector<graph::NodeId>& touched_nodes,
    const WarmStartOptions& options, std::uint64_t seed,
    const RouteCache* previous_routes = nullptr,
    RouteCache* out_routes = nullptr);

}  // namespace eend::opt
