// Random design-problem instances at the paper's §5.2.2 density.
//
// The instance family behind the `design` manifest kind and
// bench_design_portfolio: N nodes placed uniformly in a square field whose
// side follows the huge_field density law (side = 1300 · sqrt(N / 200), so
// per-node neighborhoods match the 200-node large network at every scale),
// re-drawn until connected at max power — the same deterministic placement
// net::place_nodes gives the simulator. The connectivity graph is built
// through the spatial::GridIndex-backed from_positions (O(N·k)), and
// `demand_count` distinct (source, destination) pairs are sampled from a
// forked Rng stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/design_problem.hpp"
#include "energy/radio_card.hpp"
#include "phy/position.hpp"

namespace eend::presolve {
struct PresolveResult;
}

namespace eend::opt {

struct DesignInstanceSpec {
  std::size_t node_count = 200;
  std::size_t demand_count = 8;
  std::uint64_t seed = 1;
  double demand_rate = 1.0;    ///< packets per demand over the horizon
  /// Heterogeneous demand weights: demand j carries rate
  /// demand_rate · demand_weights[j % size] (mixed_rate-style cycling).
  /// Empty = homogeneous. These multipliers are the single source of truth
  /// for per-demand load: Eq. 5 scores them through RoutedDemand::packets
  /// and replay/ derives the CBR rate_multipliers from the same values.
  std::vector<double> demand_weights;
  energy::RadioCard card;      ///< defaults to Cabletron
  /// Field side in meters; 0 = the §5.2.2 density law (1300·sqrt(N/200)).
  double field_side = 0.0;
  /// Multiplier on the density-law side when field_side == 0. Values > 1
  /// make instances sparser at every node count — the regime where the
  /// presolve reductions (dead ends, long edges, chains) actually fire.
  double field_scale = 1.0;
  /// Run presolve::presolve_design on the built problem: heuristics then
  /// search the reduced twins (bit-identical results, less work) and every
  /// design row carries a certified lower bound / gap.
  bool presolve = false;

  DesignInstanceSpec();
};

struct DesignInstance {
  core::NetworkDesignProblem problem;
  std::vector<phy::Position> positions;
  double field_side = 0.0;
  /// Non-null iff the spec asked for presolve (shared so cells can copy
  /// instances cheaply; the result is immutable after construction).
  std::shared_ptr<const presolve::PresolveResult> presolve;
};

/// Deterministic in every spec field. Throws CheckError on degenerate specs
/// (node_count < 2, demand_count 0 or more than the distinct pairs).
DesignInstance make_design_instance(const DesignInstanceSpec& spec);

}  // namespace eend::opt
