#include "opt/local_search.hpp"

#include <algorithm>
#include <set>

#include "obs/counters.hpp"

namespace eend::opt {

namespace {

/// Dense membership mask over the graph's node ids.
std::vector<char> membership(const graph::Graph& g,
                             const std::vector<graph::NodeId>& nodes) {
  std::vector<char> in(g.node_count(), 0);
  for (graph::NodeId v : nodes) in[v] = 1;
  return in;
}

std::vector<graph::NodeId> without(const std::vector<graph::NodeId>& nodes,
                                   graph::NodeId drop) {
  std::vector<graph::NodeId> out;
  out.reserve(nodes.size() - 1);
  for (graph::NodeId v : nodes)
    if (v != drop) out.push_back(v);
  return out;
}

}  // namespace

CandidateDesign local_search(const core::NetworkDesignProblem& problem,
                             const CandidateDesign& start,
                             const DesignObjective& objective,
                             std::size_t max_passes,
                             LocalSearchStats* stats) {
  EEND_REQUIRE_MSG(start.feasible, "local search needs a feasible seed");
  const graph::Graph& g = problem.graph();
  const auto terminals = problem.terminals();  // sorted
  const auto is_terminal = [&](graph::NodeId v) {
    return std::binary_search(terminals.begin(), terminals.end(), v);
  };

  CandidateDesign cur = start;
  LocalSearchStats local;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    const std::vector<char> in_cur = membership(g, cur.nodes);

    CandidateDesign best;  // infeasible until a candidate beats nothing
    const auto consider = [&](CandidateDesign cand) {
      ++local.evaluations;
      if (!cand.feasible) return;
      if (!best.feasible || cand.cost() < best.cost()) best = std::move(cand);
    };

    // Relay removal: drop each non-endpoint active node.
    for (graph::NodeId v : cur.nodes) {
      if (is_terminal(v)) continue;
      consider(evaluate_design(problem, without(cur.nodes, v), objective));
    }

    // Steiner insertion: open each inactive node adjacent to the design.
    std::set<graph::NodeId> frontier;
    for (graph::NodeId v : cur.nodes)
      for (const auto& [u, e] : g.neighbors(v)) {
        (void)e;
        if (!in_cur[u]) frontier.insert(u);
      }
    for (graph::NodeId u : frontier) {
      std::vector<graph::NodeId> cand = cur.nodes;
      cand.push_back(u);
      consider(evaluate_design(problem, cand, objective));
    }

    // Relay exchange (reroute): close relay v, open an inactive neighbor u
    // in the same move.
    for (graph::NodeId v : cur.nodes) {
      if (is_terminal(v)) continue;
      std::set<graph::NodeId> swaps;
      for (const auto& [u, e] : g.neighbors(v)) {
        (void)e;
        if (!in_cur[u]) swaps.insert(u);
      }
      for (graph::NodeId u : swaps) {
        std::vector<graph::NodeId> cand = without(cur.nodes, v);
        cand.push_back(u);
        consider(evaluate_design(problem, cand, objective));
      }
    }

    if (!best.feasible || !(best.cost() < cur.cost())) break;
    cur = std::move(best);
    ++local.passes;
  }
  if (stats) *stats = local;
  obs::count("opt.ls.calls");
  obs::count("opt.ls.evaluations", local.evaluations);
  obs::count("opt.ls.moves_accepted", local.passes);  // one move per pass
  return cur;
}

}  // namespace eend::opt
