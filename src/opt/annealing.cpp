#include "opt/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

#include "obs/counters.hpp"
#include "util/rng.hpp"

namespace eend::opt {

CandidateDesign simulated_annealing(const core::NetworkDesignProblem& problem,
                                    const CandidateDesign& start,
                                    const DesignObjective& objective,
                                    const AnnealingSchedule& schedule,
                                    std::uint64_t seed) {
  EEND_REQUIRE_MSG(start.feasible, "annealing needs a feasible seed");
  const graph::Graph& g = problem.graph();
  const auto terminals = problem.terminals();  // sorted
  const auto is_terminal = [&](graph::NodeId v) {
    return std::binary_search(terminals.begin(), terminals.end(), v);
  };

  Rng rng = Rng(seed).fork(0xA44E);
  CandidateDesign cur = start;
  CandidateDesign best = start;
  const double t0 = schedule.initial_temp_frac * start.cost();
  double temp = t0;
  std::uint64_t proposals = 0, accepted = 0, improved = 0;

  for (std::size_t it = 0; it < schedule.iterations;
       ++it, temp *= schedule.cooling) {
    // Current move surface: relays (closable), frontier (openable),
    // per-relay inactive neighbors (exchangeable).
    std::vector<graph::NodeId> relays;
    for (graph::NodeId v : cur.nodes)
      if (!is_terminal(v)) relays.push_back(v);
    std::vector<char> in_cur(g.node_count(), 0);
    for (graph::NodeId v : cur.nodes) in_cur[v] = 1;

    std::vector<graph::NodeId> proposal = cur.nodes;
    const std::uint64_t family = rng.next_below(3);
    if (family == 0) {  // relay removal
      if (relays.empty()) continue;
      const graph::NodeId v = relays[rng.next_below(relays.size())];
      proposal.erase(std::find(proposal.begin(), proposal.end(), v));
    } else if (family == 1) {  // Steiner insertion
      std::set<graph::NodeId> frontier;
      for (graph::NodeId v : cur.nodes)
        for (const auto& [u, e] : g.neighbors(v)) {
          (void)e;
          if (!in_cur[u]) frontier.insert(u);
        }
      if (frontier.empty()) continue;
      std::vector<graph::NodeId> cands(frontier.begin(), frontier.end());
      proposal.push_back(cands[rng.next_below(cands.size())]);
    } else {  // relay exchange
      if (relays.empty()) continue;
      const graph::NodeId v = relays[rng.next_below(relays.size())];
      std::set<graph::NodeId> swaps;
      for (const auto& [u, e] : g.neighbors(v)) {
        (void)e;
        if (!in_cur[u]) swaps.insert(u);
      }
      if (swaps.empty()) continue;
      std::vector<graph::NodeId> cands(swaps.begin(), swaps.end());
      proposal.erase(std::find(proposal.begin(), proposal.end(), v));
      proposal.push_back(cands[rng.next_below(cands.size())]);
    }

    CandidateDesign cand = evaluate_design(problem, proposal, objective);
    if (!cand.feasible) continue;
    ++proposals;
    const double delta = cand.cost() - cur.cost();
    const bool accept =
        delta <= 0.0 ||
        (temp > 0.0 && rng.uniform() < std::exp(-delta / temp));
    if (!accept) continue;
    ++accepted;
    // Acceptance curve: which schedule decile accepted moves land in (the
    // histogram shape shows whether cooling freezes the walk too early).
    obs::observe("opt.sa.accept_decile",
                 schedule.iterations == 0 ? 0 : it * 10 / schedule.iterations);
    cur = std::move(cand);
    if (cur.cost() < best.cost()) {
      best = cur;
      ++improved;
    }
  }
  obs::count("opt.sa.calls");
  obs::count("opt.sa.proposals", proposals);
  obs::count("opt.sa.accepted", accepted);
  obs::count("opt.sa.improved", improved);
  return best;
}

}  // namespace eend::opt
