#include "opt/warm_start.hpp"

#include <algorithm>
#include <set>

#include "graph/shortest_path.hpp"
#include "obs/counters.hpp"
#include "opt/portfolio.hpp"
#include "presolve/presolve.hpp"
#include "util/check.hpp"

namespace eend::opt {

namespace {

std::vector<char> membership(std::size_t n,
                             const std::vector<graph::NodeId>& nodes) {
  std::vector<char> in(n, 0);
  for (graph::NodeId v : nodes) in[v] = 1;
  return in;
}

std::vector<graph::NodeId> without(const std::vector<graph::NodeId>& nodes,
                                   graph::NodeId drop) {
  std::vector<graph::NodeId> out;
  out.reserve(nodes.size() - 1);
  for (graph::NodeId v : nodes)
    if (v != drop) out.push_back(v);
  return out;
}

/// Repair-region mask: the touched nodes plus two rings of graph
/// neighbors — wide enough that an insertion can bridge around a failed or
/// moved relay, small enough that the move budget tracks the perturbation.
std::vector<char> repair_region(const graph::Graph& g,
                                const std::vector<graph::NodeId>& touched) {
  std::vector<char> in(g.node_count(), 0);
  std::vector<graph::NodeId> frontier;
  for (graph::NodeId v : touched)
    if (v < g.node_count() && !in[v]) {
      in[v] = 1;
      frontier.push_back(v);
    }
  for (int ring = 0; ring < 2; ++ring) {
    std::vector<graph::NodeId> next;
    for (graph::NodeId v : frontier)
      for (const auto& [u, e] : g.neighbors(v)) {
        (void)e;
        if (!in[u]) {
          in[u] = 1;
          next.push_back(u);
        }
      }
    frontier = std::move(next);
  }
  return in;
}

}  // namespace

WarmStartResult warm_start_search(
    const core::NetworkDesignProblem& problem,
    const CandidateDesign& previous,
    const std::vector<graph::NodeId>& touched_nodes,
    const WarmStartOptions& options, std::uint64_t seed,
    const RouteCache* previous_routes, RouteCache* out_routes) {
  WarmStartResult out;
  const graph::Graph& g = problem.graph();
  const auto terminals = problem.terminals();  // sorted
  const auto is_terminal = [&](graph::NodeId v) {
    return std::binary_search(terminals.begin(), terminals.end(), v);
  };

  RouteCache cur_cache;
  const auto eval = [&](const std::vector<graph::NodeId>& cand,
                        const RouteCache* reuse, RouteCache* fill) {
    ++out.evaluations;
    return evaluate_design(problem, cand, options.objective, reuse, fill);
  };

  // ---- stage 1: feasibility. Previous active set + current terminals;
  // every unroutable demand absorbs its full-graph shortest path (adding
  // nodes never hurts another demand, so one round per failing demand
  // suffices and the loop is bounded by the demand count).
  std::set<graph::NodeId> seed_set(previous.nodes.begin(),
                                   previous.nodes.end());
  seed_set.insert(terminals.begin(), terminals.end());
  std::vector<graph::NodeId> nodes(seed_set.begin(), seed_set.end());

  CandidateDesign cur = eval(nodes, previous_routes, &cur_cache);
  for (std::size_t round = 0;
       !cur.feasible && round < problem.demands().size() + 1; ++round) {
    std::size_t failed = 0;
    if (problem.try_route_in_subgraph(nodes, &failed)) break;
    const graph::Demand& d = problem.demands()[failed];
    const auto spt =
        graph::dijkstra(g, d.source, [](graph::NodeId) { return 0.0; });
    const auto path = spt.path_to(d.destination);
    EEND_REQUIRE_MSG(!path.empty(),
                     "warm start on an unroutable instance: demand "
                         << d.source << "->" << d.destination
                         << " has no path even on the full graph");
    std::set<graph::NodeId> widened(nodes.begin(), nodes.end());
    widened.insert(path.begin(), path.end());
    nodes.assign(widened.begin(), widened.end());
    cur = eval(nodes, nullptr, &cur_cache);
  }

  // ---- stage 2: localized steepest descent around the perturbation.
  // Same move set as opt/local_search.hpp, but removal / insertion probes
  // only fire inside the repair region, and every candidate evaluation
  // goes through the RouteCache fast path against the incumbent's routes.
  if (cur.feasible && !touched_nodes.empty()) {
    const std::vector<char> region = repair_region(g, touched_nodes);
    obs::observe("opt.warm.repair_region_size",
                 static_cast<std::uint64_t>(
                     std::count(region.begin(), region.end(), char{1})));
    for (std::size_t pass = 0; pass < options.max_repair_passes; ++pass) {
      const std::vector<char> in_cur = membership(g.node_count(), cur.nodes);
      CandidateDesign best;
      std::vector<graph::NodeId> best_allowed;
      const auto consider = [&](std::vector<graph::NodeId> cand) {
        CandidateDesign c = eval(cand, &cur_cache, nullptr);
        if (!c.feasible) return;
        if (!best.feasible || c.cost() < best.cost()) {
          best = std::move(c);
          best_allowed = std::move(cand);
        }
      };

      for (graph::NodeId v : cur.nodes) {
        if (!region[v] || is_terminal(v)) continue;
        consider(without(cur.nodes, v));
      }

      std::set<graph::NodeId> frontier;
      for (graph::NodeId v : cur.nodes)
        for (const auto& [u, e] : g.neighbors(v)) {
          (void)e;
          if (!in_cur[u] && region[u]) frontier.insert(u);
        }
      for (graph::NodeId u : frontier) {
        std::vector<graph::NodeId> cand = cur.nodes;
        cand.push_back(u);
        consider(std::move(cand));
      }

      for (graph::NodeId v : cur.nodes) {
        if (!region[v] || is_terminal(v)) continue;
        std::set<graph::NodeId> swaps;
        for (const auto& [u, e] : g.neighbors(v)) {
          (void)e;
          if (!in_cur[u]) swaps.insert(u);
        }
        for (graph::NodeId u : swaps) {
          std::vector<graph::NodeId> cand = without(cur.nodes, v);
          cand.push_back(u);
          consider(std::move(cand));
        }
      }

      if (!best.feasible || !(best.cost() < cur.cost())) break;
      // Re-evaluate the winner with a cache fill so the next pass (and the
      // final route diff) reuse its routes — one extra evaluation per
      // accepted move, all of it cache-accelerated.
      RouteCache next_cache;
      cur = eval(best_allowed, &cur_cache, &next_cache);
      cur_cache = std::move(next_cache);
    }
  }

  // ---- stage 3: quality gate. Reference = Klein-Ravi on the perturbed
  // instance (the one-shot baseline a from-scratch run would at least
  // reach); a repair worse than (1 + fallback_pct/100) x reference — or an
  // irreparable one — triggers the full portfolio, and the better design
  // wins.
  const graph::SteinerTree kr_tree =
      (options.presolve ? options.presolve->node_reduced : problem)
          .solve_node_weighted();
  const CandidateDesign reference =
      design_from_tree(problem, kr_tree, options.objective);
  EEND_CHECK_MSG(reference.feasible,
                 "Klein-Ravi reference infeasible on a routable instance");
  if (!cur.feasible ||
      cur.cost() >
          (1.0 + options.fallback_pct / 100.0) * reference.cost()) {
    PortfolioOptions po;
    po.objective = options.objective;
    po.starts = options.starts;
    po.jobs = options.jobs;
    po.anneal.iterations = options.anneal_iterations;
    po.seed = seed;
    po.klein_ravi_tree = &kr_tree;
    po.presolve = options.presolve;
    const PortfolioResult pr = design_portfolio(problem, po);
    if (!cur.feasible || pr.best.cost() < cur.cost()) cur = pr.best;
    out.fell_back = true;
  }

  // ---- final routes: one evaluation fills the outgoing cache and anchors
  // the re-route count against the previous epoch's routes.
  RouteCache final_cache;
  cur = eval(cur.nodes, &cur_cache, &final_cache);
  EEND_CHECK_MSG(cur.feasible, "warm-start result lost feasibility");
  out.rerouted_demands = final_cache.routes.size();
  if (previous_routes &&
      previous_routes->routes.size() == final_cache.routes.size()) {
    std::size_t unchanged = 0;
    for (std::size_t i = 0; i < final_cache.routes.size(); ++i) {
      const analytical::RoutedDemand& a = previous_routes->routes[i];
      const analytical::RoutedDemand& b = final_cache.routes[i];
      if (a.demand.source == b.demand.source &&
          a.demand.destination == b.demand.destination && a.path == b.path)
        ++unchanged;
    }
    out.rerouted_demands -= unchanged;
  }
  if (out_routes) *out_routes = std::move(final_cache);
  out.design = std::move(cur);
  obs::count("opt.warm.calls");
  obs::count("opt.warm.evaluations", out.evaluations);
  obs::count("opt.warm.rerouted_demands", out.rerouted_demands);
  if (out.fell_back) obs::count("opt.warm.fallbacks");
  return out;
}

}  // namespace eend::opt
