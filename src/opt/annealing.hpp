// Deterministic simulated annealing over the design space, using the same
// move families as local_search.hpp but sampled (uniformly over the three
// families, then over their candidates) from a seeded Rng instead of
// enumerated — so the walk can cross cost barriers a pure descent cannot.
//
// Schedule: geometric cooling T_i = T0 · cooling^i with T0 scaled off the
// seed design's cost (initial_temp_frac), the standard parametrization for
// instances whose cost magnitude varies by orders of magnitude with N.
// Worsening moves are accepted with probability exp(-Δ/T); infeasible
// proposals are rejected outright. The best design ever visited is tracked
// and returned, so the result is never worse than the seed for any
// schedule or seed value — the determinism/monotonicity contract
// tests/opt_search_test.cpp pins.
#pragma once

#include "opt/design_heuristic.hpp"

namespace eend::opt {

struct AnnealingSchedule {
  std::size_t iterations = 300;
  double initial_temp_frac = 0.02;  ///< T0 = frac · cost(seed design)
  double cooling = 0.97;            ///< geometric decay per iteration
};

/// The objective implicitly converts from bare Eq5Params (plain scoring).
CandidateDesign simulated_annealing(const core::NetworkDesignProblem& problem,
                                    const CandidateDesign& start,
                                    const DesignObjective& objective,
                                    const AnnealingSchedule& schedule,
                                    std::uint64_t seed);

}  // namespace eend::opt
