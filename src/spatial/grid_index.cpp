#include "spatial/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

namespace eend::spatial {

namespace {

/// Hard ceiling on grid cells: beyond this the per-cell bookkeeping would
/// dwarf the points themselves, so the cell side is scaled up instead.
constexpr std::size_t kMaxCells = std::size_t{1} << 22;

}  // namespace

void GridIndex::build(const std::vector<phy::Position>& points,
                      double cell_size, double field_w, double field_h) {
  EEND_REQUIRE_MSG(points.size() < std::numeric_limits<std::uint32_t>::max(),
                   "grid index holds at most 2^32-1 points");
  points_ = points;
  built_ = true;

  // Extent: the field hint unioned with the actual bounding box, so a point
  // placed outside the declared field still lands in a real cell.
  double min_x = 0.0, min_y = 0.0;
  double max_x = field_w > 0.0 ? field_w : 0.0;
  double max_y = field_h > 0.0 ? field_h : 0.0;
  for (const phy::Position& p : points_) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  min_x_ = min_x;
  min_y_ = min_y;
  const double w = std::max(max_x - min_x, 0.0);
  const double h = std::max(max_y - min_y, 0.0);

  // Degenerate radii (coincident points, zero-range cards) get one cell
  // spanning everything — correct, just brute-force within the cell.
  cell_ = cell_size > 0.0 && std::isfinite(cell_size)
              ? cell_size
              : std::max({w, h, 1.0});
  auto dims_for = [&](double cs) {
    const std::size_t nx =
        std::max<std::size_t>(1, static_cast<std::size_t>(w / cs) + 1);
    const std::size_t ny =
        std::max<std::size_t>(1, static_cast<std::size_t>(h / cs) + 1);
    return std::pair{nx, ny};
  };
  std::tie(nx_, ny_) = dims_for(cell_);
  while (nx_ * ny_ > kMaxCells) {
    cell_ *= 2.0;
    std::tie(nx_, ny_) = dims_for(cell_);
  }
  inv_cell_ = 1.0 / cell_;

  // Counting sort into CSR: count, prefix-sum, then a fill pass in id order
  // so items within a cell stay id-sorted (deterministic visit order).
  const std::size_t cells = nx_ * ny_;
  cell_start_.assign(cells + 1, 0);
  std::vector<std::uint32_t> cell_of(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t c =
        cell_y(points_[i].y) * nx_ + cell_x(points_[i].x);
    cell_of[i] = static_cast<std::uint32_t>(c);
    ++cell_start_[c + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) cell_start_[c + 1] += cell_start_[c];
  xs_.resize(points_.size());
  ys_.resize(points_.size());
  ids_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::uint32_t slot = cursor[cell_of[i]]++;
    xs_[slot] = points_[i].x;
    ys_[slot] = points_[i].y;
    ids_[slot] = static_cast<std::uint32_t>(i);
  }
}

std::size_t GridIndex::cell_x(double x) const {
  const double rel = (x - min_x_) * inv_cell_;
  if (!(rel > 0.0)) return 0;  // also catches NaN
  return std::min(nx_ - 1, static_cast<std::size_t>(rel));
}

std::size_t GridIndex::cell_y(double y) const {
  const double rel = (y - min_y_) * inv_cell_;
  if (!(rel > 0.0)) return 0;
  return std::min(ny_ - 1, static_cast<std::size_t>(rel));
}

}  // namespace eend::spatial
