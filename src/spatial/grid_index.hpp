// Uniform-grid spatial index over static 2-D points.
//
// Points are bucketed once into square cells of side `cell_size` (CSR
// layout: flat coordinate/id arrays in cell-major order plus per-cell
// offsets, no per-cell vectors — candidate scans walk memory linearly).
// A radius query visits only the cells overlapping the query disc, so a
// query costs O(points in the covered cells) instead of O(N). Cell sides
// of half the typical query radius balance candidate overcount against
// per-cell loop overhead; any positive size is correct.
//
// The index is the cell decomposition the ROADMAP's intra-replication
// sharding wants too: cells two rows apart are conflict-free regions.
//
// Degenerate inputs are first-class: zero or one point, coincident points,
// radii larger than the field, and empty fields all behave like the
// brute-force scan (tests/spatial_index_test.cpp pins the equivalence).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "phy/position.hpp"
#include "util/check.hpp"

namespace eend::spatial {

class GridIndex {
 public:
  GridIndex() = default;

  /// Bucket `points` into cells of side ~`cell_size` (clamped so the grid
  /// never exceeds a bounded cell count). `field_w`/`field_h` are optional
  /// extent hints — the scenario's field dimensions — merged with the
  /// points' own bounding box, so out-of-field points are still indexed.
  void build(const std::vector<phy::Position>& points, double cell_size,
             double field_w = 0.0, double field_h = 0.0);

  bool built() const { return built_; }
  std::size_t size() const { return points_.size(); }
  double cell_size() const { return cell_; }
  std::size_t cols() const { return nx_; }
  std::size_t rows() const { return ny_; }

  /// Visit every indexed point j != of with distance(point[of], point[j])
  /// <= radius, in unspecified order. `fn(std::size_t id, double dist)`;
  /// a bool-returning fn stops the walk when it returns false.
  template <typename Fn>
  void for_each_within(std::size_t of, double radius, Fn&& fn) const {
    EEND_REQUIRE(built_ && of < points_.size());
    visit(points_[of], radius, static_cast<std::int64_t>(of),
          static_cast<Fn&&>(fn));
  }

  /// Same, from an arbitrary position; no point is excluded.
  template <typename Fn>
  void for_each_within(const phy::Position& p, double radius,
                       Fn&& fn) const {
    EEND_REQUIRE(built_);
    visit(p, radius, -1, static_cast<Fn&&>(fn));
  }

  /// Allocating convenience twin (ids in index order, not by distance).
  std::vector<std::size_t> within(std::size_t of, double radius) const {
    std::vector<std::size_t> out;
    for_each_within(of, radius,
                    [&](std::size_t id, double) { out.push_back(id); });
    return out;
  }

 private:
  std::size_t cell_x(double x) const;
  std::size_t cell_y(double y) const;

  template <typename Fn>
  void visit(const phy::Position& p, double radius, std::int64_t exclude,
             Fn&& fn) const {
    const std::size_t x0 = cell_x(p.x - radius), x1 = cell_x(p.x + radius);
    const std::size_t y0 = cell_y(p.y - radius), y1 = cell_y(p.y + radius);
    // Conservative squared-radius prefilter: anything beyond it is
    // certainly out of range, so most far candidates skip the sqrt. The
    // margin over-covers double rounding; candidates inside it still get
    // the exact predicate — sqrt then compare, the brute-force scan's
    // arithmetic — so boundary cases round identically and neighbor sets
    // equal the O(N²) reference's.
    const double rr = radius * radius * (1.0 + 1e-12);
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        const std::size_t c = cy * nx_ + cx;
        for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const double dx = p.x - xs_[k];
          const double dy = p.y - ys_[k];
          const double dsq = dx * dx + dy * dy;
          if (dsq > rr) continue;
          const std::uint32_t j = ids_[k];
          if (static_cast<std::int64_t>(j) == exclude) continue;
          const double d = std::sqrt(dsq);
          if (d > radius) continue;
          if constexpr (std::is_invocable_r_v<bool, Fn, std::size_t,
                                              double>) {
            if (!fn(static_cast<std::size_t>(j), d)) return;
          } else {
            fn(static_cast<std::size_t>(j), d);
          }
        }
      }
    }
  }

  std::vector<phy::Position> points_;      ///< original order (query centers)
  std::vector<std::uint32_t> cell_start_;  ///< nx*ny + 1 CSR offsets
  // Cell-major mirrors of the points: the hot candidate loop reads these
  // sequentially instead of chasing ids through the original array.
  std::vector<double> xs_, ys_;
  std::vector<std::uint32_t> ids_;  ///< original id per cell-major slot
  double min_x_ = 0.0, min_y_ = 0.0;
  double cell_ = 1.0, inv_cell_ = 1.0;
  std::size_t nx_ = 1, ny_ = 1;
  bool built_ = false;
};

}  // namespace eend::spatial
