#include "power/power_manager.hpp"

namespace eend::power {

Odpm::Odpm(sim::Simulator& sim, mac::PsmScheduler& psm, mac::NodeId id,
           OdpmConfig cfg)
    : psm_(psm), id_(id), cfg_(cfg), timer_(sim, [this] { on_expire(); }) {}

void Odpm::start() { psm_.set_psm(id_, true); }

void Odpm::notify_data_activity() { to_active(cfg_.keepalive_data_s); }

void Odpm::notify_route_activity() { to_active(cfg_.keepalive_rrep_s); }

void Odpm::to_active(double keepalive) {
  timer_.extend_to(keepalive);
  if (mode_ == PmMode::ActiveMode) return;
  mode_ = PmMode::ActiveMode;
  ++activations_;
  psm_.set_psm(id_, false);
  if (on_mode_change_) on_mode_change_(mode_);
}

void Odpm::on_expire() {
  if (mode_ == PmMode::PowerSave) return;
  mode_ = PmMode::PowerSave;
  psm_.set_psm(id_, true);
  if (on_mode_change_) on_mode_change_(mode_);
}

}  // namespace eend::power
