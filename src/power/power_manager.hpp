// Power-management policies.
//
// A PowerManager decides when its node's radio may sleep. The three
// policies the paper evaluates:
//   * AlwaysActive — AM forever (the DSR-Active baseline; passive = idle);
//   * Odpm         — On-Demand Power Management [Zheng & Kravets]: nodes
//                    default to PSM, switch to AM on communication events,
//                    and fall back to PSM when keep-alive timers (data 5 s,
//                    RREP 10 s by default) expire;
//   * PerfectSleep — the oracle of §5.2.3: nodes wake exactly when needed,
//                    so passive time is billed at sleep draw with no
//                    latency or switching cost (modeled as an always-
//                    receivable radio whose passive draw is P_sleep);
//   * AlwaysPsm    — plain IEEE 802.11 PSM (completeness + tests).
//
// Routing protocols report events through notify_data_activity() /
// notify_route_activity(); policies that do not care ignore them.
#pragma once

#include <memory>

#include "mac/psm.hpp"
#include "sim/simulator.hpp"

namespace eend::power {

/// Power-management mode of a node (paper §2.2).
enum class PmMode { ActiveMode, PowerSave };

class PowerManager {
 public:
  virtual ~PowerManager() = default;

  /// Called once at simulation start (after MAC/radio wiring).
  virtual void start() = 0;

  virtual PmMode mode() const = 0;

  bool is_active_mode() const { return mode() == PmMode::ActiveMode; }

  /// Data packet sent / forwarded / received at this node.
  virtual void notify_data_activity() {}

  /// Route-reply handled at this node (route setup keep-alive).
  virtual void notify_route_activity() {}
};

/// DSR-Active baseline: the radio idles forever.
class AlwaysActive final : public PowerManager {
 public:
  void start() override {}
  PmMode mode() const override { return PmMode::ActiveMode; }
};

/// Plain IEEE 802.11 PSM: always on the beacon/ATIM schedule.
class AlwaysPsm final : public PowerManager {
 public:
  AlwaysPsm(mac::PsmScheduler& psm, mac::NodeId id) : psm_(psm), id_(id) {}
  void start() override { psm_.set_psm(id_, true); }
  PmMode mode() const override { return PmMode::PowerSave; }

 private:
  mac::PsmScheduler& psm_;
  mac::NodeId id_;
};

struct OdpmConfig {
  double keepalive_data_s = 5.0;   ///< paper §5.2: 5 s for data
  double keepalive_rrep_s = 10.0;  ///< paper §5.2: 10 s for RREPs
};

/// On-Demand Power Management.
class Odpm final : public PowerManager {
 public:
  Odpm(sim::Simulator& sim, mac::PsmScheduler& psm, mac::NodeId id,
       OdpmConfig cfg);

  void start() override;
  PmMode mode() const override { return mode_; }
  void notify_data_activity() override;
  void notify_route_activity() override;

  /// Number of PSM->AM transitions (metric for control-churn analysis).
  std::uint64_t activations() const { return activations_; }

  /// Observer hook: fired after every AM<->PSM transition (DSDVH uses this
  /// to trigger route updates on power-state changes).
  void set_mode_change_hook(std::function<void(PmMode)> fn) {
    on_mode_change_ = std::move(fn);
  }

 private:
  void to_active(double keepalive);
  void on_expire();

  mac::PsmScheduler& psm_;
  mac::NodeId id_;
  OdpmConfig cfg_;
  PmMode mode_ = PmMode::PowerSave;
  sim::Timer timer_;
  std::uint64_t activations_ = 0;
  std::function<void(PmMode)> on_mode_change_;
};

/// Oracle sleep scheduling for the §5.2.3 hypothetical-card study.
class PerfectSleep final : public PowerManager {
 public:
  explicit PerfectSleep(mac::NodeRadio& radio) : radio_(radio) {}
  void start() override { radio_.set_passive_draw_is_sleep(true); }
  // Behaves like AM for the MAC (always receivable, no beacon delays).
  PmMode mode() const override { return PmMode::ActiveMode; }

 private:
  mac::NodeRadio& radio_;
};

}  // namespace eend::power
