// Unit tests: the closed-form analyses of §3 (Eqs. 5-9) and §5.1
// (Eqs. 13-15, characteristic hop count / Fig. 7 claims).
#include <gtest/gtest.h>

#include "analytical/design_eval.hpp"
#include "analytical/route_energy.hpp"
#include "analytical/steiner_cases.hpp"

namespace eend::analytical {
namespace {

// ----------------------------------------------- Eq. 15 / Fig. 7 claims ---

TEST(RouteEnergy, MoptMatchesPaperFormula) {
  const auto card = energy::cabletron();
  // Hand-computed: R/B = 0.5 kills the idle term; denominator = Pbase+Prx.
  const double expect =
      250.0 * std::pow(3.0 * card.alpha2 / (card.p_base + card.p_rx), 0.25);
  EXPECT_NEAR(mopt_continuous(card, 250.0, 0.5), expect, 1e-12);
}

TEST(RouteEnergy, Fig7RealCardsNeverFavorRelays) {
  // The paper's headline analytical result: m_opt < 2 for every real card
  // at every utilization, so relays between two nodes in range never pay.
  for (const auto& card : {energy::aironet350(), energy::cabletron(),
                           energy::mica2(), energy::leach_n4(),
                           energy::leach_n2()}) {
    for (double rb = 0.1; rb <= 0.5 + 1e-9; rb += 0.05) {
      EXPECT_LT(mopt_continuous(card, card.max_range_m, rb), 2.0)
          << card.name << " rb=" << rb;
      EXPECT_FALSE(relays_save_energy(card, card.max_range_m, rb));
    }
  }
}

TEST(RouteEnergy, Fig7HypotheticalCardCrossesAtQuarterUtilization) {
  const auto h = energy::hypothetical_cabletron();
  // Paper: alpha2 >= 5.16e-6 satisfies m_opt >= 2 for R/B = 0.25.
  EXPECT_GE(mopt_continuous(h, 250.0, 0.25), 2.0);
  EXPECT_TRUE(relays_save_energy(h, 250.0, 0.25));
}

TEST(RouteEnergy, BruteForceAgreesWithClosedForm) {
  for (const auto& card : energy::fig7_cards()) {
    for (double rb : {0.1, 0.25, 0.4, 0.5}) {
      const int analytic =
          std::max(1, characteristic_hop_count(card, card.max_range_m, rb));
      const int brute = brute_force_best_hops(card, card.max_range_m, rb);
      // Integer rounding of a convex minimum: at most one hop apart.
      EXPECT_NEAR(analytic, brute, 1.0) << card.name << " rb=" << rb;
    }
  }
}

TEST(RouteEnergy, RoutePowerConvexAroundOptimum) {
  const auto h = energy::hypothetical_cabletron();
  const double rb = 0.25;
  const int best = brute_force_best_hops(h, 250.0, rb);
  const double pb = route_power(h, best, 250.0, rb);
  EXPECT_LE(pb, route_power(h, best + 1, 250.0, rb));
  if (best > 1) {
    EXPECT_LE(pb, route_power(h, best - 1, 250.0, rb));
  }
}

TEST(RouteEnergy, CeilingFloorRounding) {
  const auto card = energy::cabletron();
  // m_opt in (0, 1) must round up to 1 (a route has at least one hop).
  const double m = mopt_continuous(card, 250.0, 0.5);
  ASSERT_LT(m, 1.0);
  EXPECT_EQ(characteristic_hop_count(card, 250.0, 0.5), 1);
}

TEST(RouteEnergy, InvalidUtilizationThrows) {
  const auto card = energy::cabletron();
  EXPECT_THROW(mopt_continuous(card, 250.0, 0.0), CheckError);
  EXPECT_THROW(mopt_continuous(card, 250.0, 0.6), CheckError);
  EXPECT_THROW(route_power(card, 0, 250.0, 0.25), CheckError);
}

// ---------------------------------------------------- §3 worked examples --

TEST(SteinerCases, St1MatchesEq6) {
  for (int k : {1, 2, 4, 8}) {
    CaseParams p;
    p.k = k;
    p.alpha = 2.0;
    p.z = 1.5;
    const auto c = make_st1(p);
    Eq5Params ep;
    ep.t_idle = 3.0;
    ep.t_data_per_packet = 0.5;
    const auto ev = evaluate_eq5(c.g, c.routes, ep);
    EXPECT_NEAR(ev.total(), est1_closed(p, ep.t_idle, ep.t_data_per_packet),
                1e-9)
        << "k=" << k;
    EXPECT_EQ(ev.relay_nodes, 1u);
  }
}

TEST(SteinerCases, St2MatchesEq7) {
  for (int k : {1, 3, 7}) {
    CaseParams p;
    p.k = k;
    const auto c = make_st2(p);
    Eq5Params ep;
    ep.t_idle = 1.0;
    ep.t_data_per_packet = 1.0;
    const auto ev = evaluate_eq5(c.g, c.routes, ep);
    EXPECT_NEAR(ev.total(), est2_closed(p, 1.0, 1.0), 1e-9);
  }
}

TEST(SteinerCases, St1DeviationGrowsWithK) {
  // The paper: communication costs deviate by (k+3)/4 between ST1 and ST2.
  CaseParams p;
  p.k = 8;
  Eq5Params ep;
  const auto e1 = evaluate_eq5(make_st1(p).g, make_st1(p).routes, ep);
  const auto e2 = evaluate_eq5(make_st2(p).g, make_st2(p).routes, ep);
  EXPECT_NEAR(e1.data / e2.data, (p.k + 3.0) / 4.0, 1e-9);
  EXPECT_NEAR(e1.idle, e2.idle, 1e-12);  // same idling cost
}

TEST(SteinerCases, Sf1Sf2MatchEq8Eq9) {
  CaseParams p;
  p.k = 5;
  Eq5Params ep;
  const auto e1 = evaluate_eq5(make_sf1(p).g, make_sf1(p).routes, ep);
  const auto e2 = evaluate_eq5(make_sf2(p).g, make_sf2(p).routes, ep);
  EXPECT_NEAR(e1.total(), esf1_closed(p, 1.0, 1.0), 1e-9);
  EXPECT_NEAR(e2.total(), esf2_closed(p, 1.0, 1.0), 1e-9);
  EXPECT_NEAR(e1.data, e2.data, 1e-12);  // same communication cost
  EXPECT_EQ(evaluate_eq5(make_sf1(p).g, make_sf1(p).routes, ep).relay_nodes,
            static_cast<std::size_t>(p.k));
  EXPECT_EQ(e2.idle, 1.0);  // one shared relay
}

TEST(SteinerCases, EndpointIdleGivesConstantRatio) {
  // "If the idling costs of source and destination were included, then a
  // constant ratio of 3k/(2k+1) would be obtained."
  for (int k : {1, 2, 5, 20}) {
    CaseParams p;
    p.k = k;
    Eq5Params ep;
    ep.include_endpoint_idle = true;
    ep.t_data_per_packet = 0.0;  // isolate idling
    const auto e1 = evaluate_eq5(make_sf1(p).g, make_sf1(p).routes, ep);
    const auto e2 = evaluate_eq5(make_sf2(p).g, make_sf2(p).routes, ep);
    EXPECT_NEAR(e1.idle / e2.idle, sf_idle_ratio_closed(k), 1e-9) << k;
  }
}

TEST(DesignEval, RejectsInvalidPaths) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);
  RoutedDemand rd;
  rd.demand = {0, 2, 1.0};
  rd.path = {0, 2};  // no such edge
  EXPECT_THROW(evaluate_eq5(g, std::vector<RoutedDemand>{rd}, Eq5Params{}),
               CheckError);
}

TEST(DesignEval, SharedEdgeAccumulatesPackets) {
  graph::Graph g(3);
  g.set_node_weight(1, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 2.0);
  RoutedDemand a{{0, 2, 1.0}, {0, 1, 2}, 3.0};
  RoutedDemand b{{2, 0, 1.0}, {2, 1, 0}, 2.0};
  Eq5Params ep;
  const auto ev = evaluate_eq5(g, std::vector<RoutedDemand>{a, b}, ep);
  // Both edges carry 5 packets at weight 2.
  EXPECT_NEAR(ev.data, 2.0 * 5.0 * 2.0, 1e-12);
  EXPECT_NEAR(ev.idle, 1.0, 1e-12);
}

}  // namespace
}  // namespace eend::analytical
