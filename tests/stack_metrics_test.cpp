// Unit tests: protocol-stack presets, flow tracking, message sizing and
// link-metric tables — the glue the evaluation harness depends on.
#include <gtest/gtest.h>

#include "metrics/run_metrics.hpp"
#include "net/stack.hpp"
#include "routing/messages.hpp"
#include "routing/metric.hpp"

namespace eend {
namespace {

// ----------------------------------------------------------- presets ----

TEST(StackSpec, PresetsMatchFigureLegends) {
  EXPECT_EQ(net::StackSpec::dsr_active().label, "DSR-Active");
  EXPECT_EQ(net::StackSpec::titan_pc().label, "TITAN-PC");
  EXPECT_EQ(net::StackSpec::dsdvh_odpm_psm().label, "DSDVH-ODPM(5,10)-PSM");
  EXPECT_EQ(net::StackSpec::dsdvh_odpm_span().label,
            "DSDVH-ODPM(0.6,1.2)-Span");
  EXPECT_EQ(net::StackSpec::dsrh_odpm_rate().label, "DSRH-ODPM (rate)");
  EXPECT_EQ(net::StackSpec::mtpr_plus_odpm().label, "MTPR+-ODPM");
}

TEST(StackSpec, PowerManagementAssignments) {
  EXPECT_EQ(net::StackSpec::dsr_active().power, net::PowerKind::AlwaysActive);
  EXPECT_EQ(net::StackSpec::dsr_odpm().power, net::PowerKind::Odpm);
  EXPECT_EQ(net::StackSpec::titan_pc().power, net::PowerKind::Odpm);
  EXPECT_EQ(net::StackSpec::dsr_perfect().power, net::PowerKind::PerfectSleep);
  EXPECT_EQ(net::StackSpec::mtpr_perfect().power,
            net::PowerKind::PerfectSleep);
}

TEST(StackSpec, TpcFlags) {
  EXPECT_FALSE(net::StackSpec::dsr_active().tpc);
  EXPECT_FALSE(net::StackSpec::dsr_odpm().tpc);
  EXPECT_TRUE(net::StackSpec::dsr_odpm_pc().tpc);
  EXPECT_TRUE(net::StackSpec::titan_pc().tpc);
  EXPECT_TRUE(net::StackSpec::mtpr_odpm().tpc);  // MTPR is PC by definition
}

TEST(StackSpec, MetricsFollowRoutingKind) {
  EXPECT_EQ(net::StackSpec::dsr_active().metric(), routing::LinkMetric::Hop);
  EXPECT_EQ(net::StackSpec::titan_pc().metric(), routing::LinkMetric::Hop);
  EXPECT_EQ(net::StackSpec::mtpr_odpm().metric(), routing::LinkMetric::Mtpr);
  EXPECT_EQ(net::StackSpec::mtpr_plus_odpm().metric(),
            routing::LinkMetric::MtprPlus);
  EXPECT_EQ(net::StackSpec::dsrh_odpm_rate().metric(),
            routing::LinkMetric::JointH);
  EXPECT_EQ(net::StackSpec::dsdvh_odpm_psm().metric(),
            routing::LinkMetric::JointH);
}

TEST(StackSpec, PaperKeepaliveTimers) {
  const auto psm = net::StackSpec::dsdvh_odpm_psm();
  EXPECT_DOUBLE_EQ(psm.odpm.keepalive_data_s, 5.0);
  EXPECT_DOUBLE_EQ(psm.odpm.keepalive_rrep_s, 10.0);
  EXPECT_FALSE(psm.psm.span_improvements);
  const auto span = net::StackSpec::dsdvh_odpm_span();
  EXPECT_DOUBLE_EQ(span.odpm.keepalive_data_s, 0.6);
  EXPECT_DOUBLE_EQ(span.odpm.keepalive_rrep_s, 1.2);
  EXPECT_TRUE(span.psm.span_improvements);
}

TEST(StackSpec, RateInfoOnlyOnRateVariant) {
  EXPECT_TRUE(net::StackSpec::dsrh_odpm_rate().rate_info);
  EXPECT_FALSE(net::StackSpec::dsrh_odpm_norate().rate_info);
}

TEST(StackSpec, Paper802Dot11PsmParameters) {
  const auto s = net::StackSpec::dsr_odpm();
  EXPECT_DOUBLE_EQ(s.psm.beacon_interval_s, 0.3);
  EXPECT_DOUBLE_EQ(s.psm.atim_window_s, 0.02);
}

// ------------------------------------------------------- flow tracker ---

TEST(FlowTracker, CountsAndDelays) {
  metrics::FlowTracker t;
  traffic::FlowSpec spec;
  spec.flow_id = 0;
  t.register_flow(spec);
  EXPECT_DOUBLE_EQ(t.delivery_ratio(), 1.0);  // vacuous before traffic

  t.on_sent(spec);
  t.on_sent(spec);
  mac::Packet p;
  p.size_bits = 1024;
  p.created_at = 1.0;
  t.on_delivered(p, 1.5);
  EXPECT_EQ(t.sent(), 2u);
  EXPECT_EQ(t.delivered(), 1u);
  EXPECT_DOUBLE_EQ(t.delivery_ratio(), 0.5);
  EXPECT_EQ(t.delivered_bits(), 1024u);
  EXPECT_DOUBLE_EQ(t.average_delay_s(), 0.5);
}

// ------------------------------------------------------ message sizes ---

TEST(Messages, SizesGrowWithContent) {
  EXPECT_EQ(routing::rreq_bits(1), 192u);
  EXPECT_EQ(routing::rreq_bits(5), routing::rreq_bits(1) + 4 * 32);
  EXPECT_EQ(routing::dsdv_bits(0), 160u);
  EXPECT_EQ(routing::dsdv_bits(10), 160u + 480u);
  EXPECT_EQ(routing::data_bits(1024, 3), 1024u + 96u);
  EXPECT_EQ(routing::rerr_bits(), 160u);
}

// --------------------------------------------------------- link costs ---

TEST(LinkMetric, HopIsConstant) {
  const auto card = energy::cabletron();
  EXPECT_DOUBLE_EQ(
      routing::link_cost(routing::LinkMetric::Hop, card, 10.0, true, 1.0),
      1.0);
  EXPECT_DOUBLE_EQ(
      routing::link_cost(routing::LinkMetric::Hop, card, 250.0, false, 0.1),
      1.0);
}

TEST(LinkMetric, MtprGrowsWithDistanceToTheFourth) {
  const auto card = energy::cabletron();
  const double c100 =
      routing::link_cost(routing::LinkMetric::Mtpr, card, 100.0, true, 1.0);
  const double c200 =
      routing::link_cost(routing::LinkMetric::Mtpr, card, 200.0, true, 1.0);
  EXPECT_NEAR(c200 / c100, 16.0, 1e-9);
}

TEST(LinkMetric, MtprPlusAddsFixedCosts) {
  const auto card = energy::cabletron();
  const double mtpr =
      routing::link_cost(routing::LinkMetric::Mtpr, card, 150.0, true, 1.0);
  const double plus = routing::link_cost(routing::LinkMetric::MtprPlus, card,
                                         150.0, true, 1.0);
  EXPECT_NEAR(plus - mtpr, card.p_base + card.p_rx, 1e-12);
}

TEST(LinkMetric, JointHNeverNegative) {
  // Even for a card where Ptx + Prx < 2*Pidle (relaying "cheaper than
  // idling"), the clamped metric stays Dijkstra-safe.
  energy::RadioCard odd = energy::cabletron();
  odd.p_idle = 2.0;  // exaggerated idle power
  const double c =
      routing::link_cost(routing::LinkMetric::JointH, odd, 50.0, true, 1.0);
  EXPECT_GE(c, 0.0);
}

TEST(LinkMetric, Names) {
  EXPECT_STREQ(routing::to_string(routing::LinkMetric::Hop), "hop");
  EXPECT_STREQ(routing::to_string(routing::LinkMetric::JointH), "h");
}

}  // namespace
}  // namespace eend
