// The linter's own suite: every rule has a seeded-violation fixture (exact
// rule/line asserted) and an allow-annotated twin proving suppression, plus
// the stripping corners that keep the lexical engine honest (violations
// inside comments, strings and raw strings must NOT fire — the fixtures in
// this very file depend on it).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace lint = eend::lint;

namespace {

std::vector<lint::Finding> run(const std::string& src,
                               const std::vector<std::string>& extra = {}) {
  return lint::lint_source(lint::SourceFile{"fixture.cpp", src}, extra);
}

/// Count findings for `rule`; asserts every reported line is in `lines`.
int count_rule(const std::vector<lint::Finding>& fs, lint::Rule rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const lint::Finding& f) { return f.rule == rule; }));
}

int line_of_first(const std::vector<lint::Finding>& fs, lint::Rule rule) {
  for (const auto& f : fs)
    if (f.rule == rule) return f.line;
  return -1;
}

}  // namespace

// ----------------------------------------------------------- rule table ---

TEST(LintRules, IdsRoundTrip) {
  for (const lint::Rule r : lint::all_rules()) {
    const auto back = lint::rule_from_id(lint::rule_id(r));
    ASSERT_TRUE(back.has_value()) << lint::rule_id(r);
    EXPECT_EQ(*back, r);
    EXPECT_FALSE(lint::rule_summary(r).empty());
  }
  EXPECT_FALSE(lint::rule_from_id("no-such-rule").has_value());
}

// ------------------------------------------------------- unordered-iter ---

TEST(LintUnorderedIter, RangeForOverMember) {
  const std::string src = R"(#include <unordered_map>
std::unordered_map<int, double> tbl_;
void f() {
  for (const auto& [k, v] : tbl_) { (void)k; (void)v; }
}
)";
  const auto fs = run(src);
  ASSERT_EQ(count_rule(fs, lint::Rule::UnorderedIter), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::UnorderedIter), 4);
  EXPECT_NE(fs[0].message.find("tbl_"), std::string::npos);
  EXPECT_EQ(fs[0].file, "fixture.cpp");
}

TEST(LintUnorderedIter, AllowedTwinIsSuppressed) {
  const std::string src = R"(#include <unordered_map>
std::unordered_map<int, double> tbl_;
void f() {
  // eend-lint: allow(unordered-iter) — order-free: per-entry independent
  for (const auto& [k, v] : tbl_) { (void)k; (void)v; }
}
)";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintUnorderedIter, AllowCoversNextCodeLineAcrossCommentBlock) {
  const std::string src = R"(std::unordered_map<int, int> m_;
void f() {
  // eend-lint: allow(unordered-iter) — the explanation starts here and
  // continues over several comment lines before the loop itself.
  for (const auto& [k, v] : m_) { (void)k; (void)v; }
}
)";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintUnorderedIter, IteratorLoop) {
  const std::string src = R"(std::unordered_set<int> seen_;
void f() {
  for (auto it = seen_.begin(); it != seen_.end(); ++it) { (void)*it; }
}
)";
  const auto fs = run(src);
  ASSERT_EQ(count_rule(fs, lint::Rule::UnorderedIter), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::UnorderedIter), 3);
}

TEST(LintUnorderedIter, ForEachAlgorithm) {
  const std::string src = R"(std::unordered_set<int> seen_;
void f() {
  std::for_each(seen_.begin(), seen_.end(), [](int) {});
}
)";
  const auto fs = run(src);
  ASSERT_EQ(count_rule(fs, lint::Rule::UnorderedIter), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::UnorderedIter), 3);
}

TEST(LintUnorderedIter, LookupsDoNotFire) {
  const std::string src = R"(std::unordered_map<int, int> m_;
int f(int k) {
  auto it = m_.find(k);
  if (m_.count(k) > 0 && it != m_.end()) return it->second;
  return m_[k];
}
)";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintUnorderedIter, OrderedContainersDoNotFire) {
  const std::string src = R"(#include <map>
std::map<int, int> m_;
void f() {
  for (const auto& [k, v] : m_) { (void)k; (void)v; }
}
)";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintUnorderedIter, HeaderDeclaredMemberViaExtraNames) {
  // The member lives in the paired header; the .cpp only iterates it.
  const std::string src = R"(void Proto::dump() {
  for (const auto& [k, v] : table_) { (void)k; (void)v; }
}
)";
  EXPECT_TRUE(run(src).empty());  // no declaration in sight: cannot know
  const auto fs = run(src, {"table_"});
  ASSERT_EQ(count_rule(fs, lint::Rule::UnorderedIter), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::UnorderedIter), 2);
}

TEST(LintUnorderedIter, PairedHeaderNamesFlowThroughLintFiles) {
  const std::vector<lint::SourceFile> files{
      {"src/p/proto.hpp", "#include <unordered_map>\n"
                          "std::unordered_map<int, int> table_;\n"},
      {"src/p/proto.cpp",
       "void dump() {\n"
       "  for (const auto& [k, v] : table_) { (void)k; (void)v; }\n"
       "}\n"},
  };
  const auto fs = lint::lint_files(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "src/p/proto.cpp");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[0].rule, lint::Rule::UnorderedIter);
}

TEST(LintUnorderedIter, CollectNamesSeesAllUnorderedForms) {
  const auto names = lint::collect_unordered_names(
      "std::unordered_map<int, std::vector<int>> nested_;\n"
      "std::unordered_set<long> ids;\n"
      "std::unordered_multimap<int, int> mm;\n"
      "const std::unordered_map<int, int>& ref = mm2;\n"
      "std::unordered_map<int, int>::iterator it;\n"  // not a container
      "std::unordered_map<int, int> make_map();\n");  // function, skipped
  EXPECT_EQ(names, (std::vector<std::string>{"ids", "mm", "nested_", "ref"}));
}

// -------------------------------------------------------- nondet-source ---

TEST(LintNondetSource, EachBannedSourceFires) {
  struct Case {
    const char* snippet;
    const char* needle;
  };
  const Case cases[] = {
      {"int f() { return std::rand(); }", "rand"},
      {"void f() { srand(42); }", "srand"},
      {"int f() { std::random_device rd; return rd(); }", "random_device"},
      {"auto f() { return std::chrono::system_clock::now(); }",
       "system_clock"},
      {"auto f() { return std::chrono::high_resolution_clock::now(); }",
       "high_resolution_clock"},
      {"long f() { return time(nullptr); }", "time(nullptr)"},
      {"long f() { return time(NULL); }", "time(NULL)"},
  };
  for (const Case& c : cases) {
    const auto fs = run(c.snippet);
    ASSERT_EQ(count_rule(fs, lint::Rule::NondetSource), 1) << c.snippet;
    EXPECT_EQ(fs[0].line, 1);
    EXPECT_NE(fs[0].message.find(c.needle), std::string::npos) << c.snippet;
  }
}

TEST(LintNondetSource, AllowedTwinIsSuppressed) {
  const std::string src =
      "// eend-lint: allow(nondet-source) — timestamping a report header\n"
      "auto stamp() { return std::chrono::system_clock::now(); }\n";
  EXPECT_TRUE(run(src).empty());
  // The same sanctioned-sources carve-out covers high_resolution_clock.
  const std::string hrc =
      "// eend-lint: allow(nondet-source) — profiling scratch, not results\n"
      "auto t0() { return std::chrono::high_resolution_clock::now(); }\n";
  EXPECT_TRUE(run(hrc).empty());
}

TEST(LintNondetSource, SanctionedSourcesDoNotFire) {
  // steady_clock is sanctioned for THIS rule (raw-timing governs where it
  // may appear — asserted separately below).
  const std::string src = R"(#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
double g(eend::util::Rng& rng) { return rng.uniform(0.0, 1.0); }
long h(double time_s) { return static_cast<long>(time_s); }
void operand() {}
)";
  const auto fs = run(src);
  EXPECT_EQ(count_rule(fs, lint::Rule::NondetSource), 0);
}

// ----------------------------------------------------------- raw-timing ---

TEST(LintRawTiming, SteadyClockOutsideObsFires) {
  const std::string src = R"(#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
)";
  const auto fs = run(src);  // fixture.cpp: not an exempt path
  ASSERT_EQ(count_rule(fs, lint::Rule::RawTiming), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::RawTiming), 2);
  EXPECT_NE(fs[0].message.find("PhaseTimer"), std::string::npos);
}

TEST(LintRawTiming, AllowedTwinIsSuppressed) {
  const std::string src =
      "// eend-lint: allow(raw-timing) — bootstrap code, obs not linked\n"
      "auto t0() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintRawTiming, ObsAndBenchPathsAreExempt) {
  const std::string body =
      "auto f() { return std::chrono::steady_clock::now(); }\n";
  for (const char* path :
       {"src/obs/trace.cpp", "bench/bench_micro_simcore.cpp",
        "src/obs/nested/timer.hpp"}) {
    const auto fs = lint::lint_source(lint::SourceFile{path, body});
    EXPECT_EQ(count_rule(fs, lint::Rule::RawTiming), 0) << path;
  }
  // "observability.cpp" is not an "obs" path segment; still fires.
  const auto fs =
      lint::lint_source(lint::SourceFile{"src/observability/t.cpp", body});
  EXPECT_EQ(count_rule(fs, lint::Rule::RawTiming), 1);
}

TEST(LintRawTiming, MentionsInCommentsAndStringsDoNotFire) {
  const std::string src =
      "// steady_clock is banned here\n"
      "const char* why = \"use steady_clock via PhaseTimer\";\n"
      "void f() { (void)why; }\n";
  EXPECT_TRUE(run(src).empty());
}

// -------------------------------------------------------------- ptr-key ---

TEST(LintPtrKey, PointerKeyedMapAndSetFire) {
  const std::string src = R"(#include <map>
std::map<Node*, int> loads_;
std::set<const Packet*> seen_;
)";
  const auto fs = run(src);
  ASSERT_EQ(count_rule(fs, lint::Rule::PtrKey), 2);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 3);
}

TEST(LintPtrKey, AllowedTwinIsSuppressed) {
  const std::string src =
      "// eend-lint: allow(ptr-key) — scratch set, never iterated\n"
      "std::set<Node*> scratch_;\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintPtrKey, ValueOrIdKeysDoNotFire) {
  const std::string src = R"(std::map<int, Node*> by_id_;
std::map<std::pair<int, int>, double> edges_;
std::set<std::string> labels_;
)";
  EXPECT_TRUE(run(src).empty());
}

// ---------------------------------------------------------- float-accum ---

TEST(LintFloatAccum, FloatPlusEqualsFires) {
  const std::string src = R"(double f(const double* xs, int n) {
  float sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<float>(xs[i]);
  return sum;
}
)";
  const auto fs = run(src);
  ASSERT_EQ(count_rule(fs, lint::Rule::FloatAccum), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::FloatAccum), 3);
  EXPECT_NE(fs[0].message.find("sum"), std::string::npos);
}

TEST(LintFloatAccum, AccumulateWithFloatInitFires) {
  const std::string src =
      "double f(const std::vector<double>& v) {\n"
      "  return std::accumulate(v.begin(), v.end(), 0.0f);\n"
      "}\n";
  const auto fs = run(src);
  ASSERT_EQ(count_rule(fs, lint::Rule::FloatAccum), 1);
  EXPECT_EQ(line_of_first(fs, lint::Rule::FloatAccum), 2);
}

TEST(LintFloatAccum, AllowedTwinIsSuppressed) {
  const std::string src =
      "void f(float dt) {\n"
      "  float t = 0;\n"
      "  // eend-lint: allow(float-accum) — GPU interop buffer is float\n"
      "  t += dt;\n"
      "}\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintFloatAccum, DoubleAccumulatorsDoNotFire) {
  const std::string src = R"(double f(const double* xs, int n) {
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += xs[i];
  return std::accumulate(xs, xs + n, 0.0);
}
)";
  EXPECT_TRUE(run(src).empty());
}

// ------------------------------------------------------------ bad-allow ---

TEST(LintBadAllow, UnknownRuleId) {
  const auto fs = run("// eend-lint: allow(no-such-rule) — whatever\n");
  ASSERT_EQ(count_rule(fs, lint::Rule::BadAllow), 1);
  EXPECT_NE(fs[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintBadAllow, MissingReasonAndNoSuppression) {
  const std::string src = R"(std::unordered_map<int, int> m_;
// eend-lint: allow(unordered-iter)
void f() { for (const auto& [k, v] : m_) { (void)k; (void)v; } }
)";
  const auto fs = run(src);
  // The reasonless annotation is itself a finding AND does not suppress.
  EXPECT_EQ(count_rule(fs, lint::Rule::BadAllow), 1);
  EXPECT_EQ(count_rule(fs, lint::Rule::UnorderedIter), 1);
}

TEST(LintBadAllow, MalformedAnnotationWithoutAllow) {
  const auto fs = run("// eend-lint: suppress-everything please\n");
  ASSERT_EQ(count_rule(fs, lint::Rule::BadAllow), 1);
}

TEST(LintBadAllow, CannotAllowBadAllow) {
  const auto fs = run("// eend-lint: allow(bad-allow) — nope\n");
  ASSERT_EQ(count_rule(fs, lint::Rule::BadAllow), 1);
}

// ------------------------------------------------------------ stripping ---

TEST(LintStripping, ViolationsInCommentsAndStringsDoNotFire) {
  const std::string src = R"fix(// for (auto& kv : some_unordered_map) {}
/* std::rand(); time(nullptr); */
const char* doc = "for (auto& kv : unordered_thing) std::rand()";
const char* raw = R"doc(
  std::map<int*, int> fake;
  float x = 0; x += 1;
)doc";
void f() { (void)doc; (void)raw; }
)fix";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintStripping, LineNumbersSurviveBlockCommentsAndRawStrings) {
  const std::string src = "/* one\n   two\n   three */\n"
                          "const char* s = R\"(\nfiller\n)\";\n"
                          "std::unordered_map<int, int> m_;\n"
                          "void f() { for (const auto& [k, v] : m_) "
                          "{ (void)k; (void)v; } }\n";
  const auto fs = run(src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 8);
}

// ----------------------------------------------------------- the report ---

TEST(LintReport, JsonShapeAndEscaping) {
  std::vector<lint::Finding> fs;
  fs.push_back(lint::Finding{lint::Rule::UnorderedIter, "src/a \"b\".cpp", 7,
                             "iteration order", "for (auto& x : m_)"});
  const std::string json = lint::report_json(fs, 3);
  EXPECT_NE(json.find("\"tool\":\"eend_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":3"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"unordered-iter\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
  EXPECT_NE(json.find("src/a \\\"b\\\".cpp"), std::string::npos);
}

TEST(LintReport, EmptyReportIsWellFormed) {
  EXPECT_EQ(lint::report_json({}, 0),
            "{\"tool\":\"eend_lint\",\"files_scanned\":0,\"count\":0,"
            "\"findings\":[]}");
}

// Findings come back sorted by (file, line, rule id) so reports diff
// cleanly between runs.
TEST(LintReport, FindingsAreSorted) {
  const std::vector<lint::SourceFile> files{
      {"z.cpp", "std::unordered_map<int, int> zm;\n"
                "void f() { for (const auto& [k, v] : zm) { (void)k; } }\n"},
      {"a.cpp", "std::map<int*, int> am;\n"
                "void g() { srand(7); }\n"},
  };
  const auto fs = lint::lint_files(files);
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "a.cpp");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].file, "a.cpp");
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].file, "z.cpp");
}
