// Golden-table regression suite.
//
// Runs the manifest engine in-process on the shipped manifests at --quick
// scale and diffs the JSON-lines output field-by-field against the checked-
// in goldens under tests/golden/. Numeric fields compare with a tight
// relative epsilon (identical IEEE-754 arithmetic should be bit-equal; the
// epsilon absorbs cross-platform libm drift), CI half-widths with a looser
// one. Also asserts the engine's determinism contract: --jobs=1 and
// --jobs=8 produce byte-identical CSV and JSON-lines.
//
// On mismatch a full field-by-field report is written to
// golden_diff_<name>.txt in the test's working directory (CI uploads these
// as artifacts). To regenerate a golden after an intentional behavior
// change:
//
//   ./build/tools/eend_run --manifest examples/manifests/<m>.json
//       --quick --quiet --no-table --csv=none
//       --jsonl=tests/golden/<name>_quick.jsonl
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "util/json.hpp"

#ifndef EEND_MANIFEST_DIR
#error "EEND_MANIFEST_DIR must point at examples/manifests"
#endif
#ifndef EEND_GOLDEN_DIR
#error "EEND_GOLDEN_DIR must point at tests/golden"
#endif

namespace eend::core {
namespace {

struct EngineOutput {
  std::string jsonl;
  std::string csv;
};

EngineOutput run_quick_manifest(const Manifest& m, std::size_t jobs) {
  std::ostringstream jsonl, csv;
  EngineOptions opts;
  opts.jobs = jobs;
  opts.quick = true;
  ExperimentEngine engine(opts);
  JsonlSink jsonl_sink(jsonl);
  CsvSink csv_sink(csv);
  engine.add_sink(jsonl_sink);
  engine.add_sink(csv_sink);
  engine.run(m);
  return {jsonl.str(), csv.str()};
}

EngineOutput run_quick(const std::string& manifest_file, std::size_t jobs) {
  return run_quick_manifest(
      Manifest::load(std::string(EEND_MANIFEST_DIR) + "/" + manifest_file),
      jobs);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

/// Field-by-field comparison with per-field epsilons; mismatch descriptions
/// are appended to `diffs` with their JSON path.
void diff_values(const json::Value& got, const json::Value& want,
                 const std::string& path, std::vector<std::string>& diffs) {
  if (got.kind() != want.kind()) {
    diffs.push_back(path + ": kind mismatch (got " + json::dump(got) +
                    ", want " + json::dump(want) + ")");
    return;
  }
  switch (want.kind()) {
    case json::Kind::Number: {
      // CI half-widths aggregate noisier arithmetic (stddev of near-equal
      // samples); give them a looser tolerance than the means.
      const bool is_ci = path.size() >= 5 &&
                         path.compare(path.size() - 5, 5, ".ci95") == 0;
      const double eps = is_ci ? 1e-6 : 1e-9;
      const double a = got.as_number(), b = want.as_number();
      if (std::abs(a - b) > eps * std::max(1.0, std::abs(b)))
        diffs.push_back(path + ": got " + json::dump(got) + ", want " +
                        json::dump(want));
      break;
    }
    case json::Kind::Object: {
      for (const auto& [key, wv] : want.as_object()) {
        const json::Value* gv = got.find(key);
        if (!gv) {
          diffs.push_back(path + "." + key + ": missing in output");
          continue;
        }
        diff_values(*gv, wv, path + "." + key, diffs);
      }
      for (const auto& [key, gv] : got.as_object())
        if (!want.find(key))
          diffs.push_back(path + "." + key + ": not present in golden");
      break;
    }
    case json::Kind::Array: {
      const auto& ga = got.as_array();
      const auto& wa = want.as_array();
      if (ga.size() != wa.size()) {
        diffs.push_back(path + ": array length " + std::to_string(ga.size()) +
                        " != golden " + std::to_string(wa.size()));
        break;
      }
      for (std::size_t i = 0; i < wa.size(); ++i)
        diff_values(ga[i], wa[i], path + "[" + std::to_string(i) + "]",
                    diffs);
      break;
    }
    default:
      if (!(got == want))
        diffs.push_back(path + ": got " + json::dump(got) + ", want " +
                        json::dump(want));
  }
}

void check_against_golden(const std::string& name,
                          const std::string& manifest_file) {
  const std::string golden_path =
      std::string(EEND_GOLDEN_DIR) + "/" + name + ".jsonl";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " — regenerate with:\n  ./build/tools/eend_run "
                     "--manifest examples/manifests/"
                  << manifest_file
                  << " --quick --quiet --no-table --csv=none --jsonl="
                  << golden_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto want_lines = split_lines(buf.str());
  const auto got_lines = split_lines(run_quick(manifest_file, 1).jsonl);

  std::vector<std::string> diffs;
  if (got_lines.size() != want_lines.size())
    diffs.push_back("row count: got " + std::to_string(got_lines.size()) +
                    ", golden has " + std::to_string(want_lines.size()));
  const std::size_t n = std::min(got_lines.size(), want_lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto got = json::parse(got_lines[i]);
    const auto want = json::parse(want_lines[i]);
    std::string label = "row[" + std::to_string(i) + "]";
    if (const auto* series = want.find("series"))
      label += "(" + series->as_string() + ", x=" +
               json::dump(*want.find("x")) + ")";
    diff_values(got, want, label, diffs);
  }

  if (!diffs.empty()) {
    // Full report next to the test binary; CI uploads golden_diff_*.txt
    // as artifacts on failure.
    const std::string report = "golden_diff_" + name + ".txt";
    std::ofstream rep(report, std::ios::binary);
    rep << "golden: " << golden_path << "\nmanifest: " << manifest_file
        << "\n" << diffs.size() << " mismatched field(s):\n";
    for (const auto& d : diffs) rep << "  " << d << "\n";
    rep << "\n--- engine output (JSON-lines) ---\n";
    for (const auto& l : got_lines) rep << l << "\n";
    std::string first;
    for (std::size_t i = 0; i < diffs.size() && i < 5; ++i)
      first += "\n  " + diffs[i];
    FAIL() << diffs.size() << " field(s) differ from " << golden_path
           << " (full report: " << report << "):" << first;
  }
}

// The paper's three golden tables, at --quick scale.

TEST(GoldenRegression, Fig7CharacteristicHopCount) {
  check_against_golden("fig7_quick", "fig7_small.json");
}

TEST(GoldenRegression, Fig8SmallFieldSweep) {
  check_against_golden("small_field_quick", "small_field.json");
}

TEST(GoldenRegression, Table2Density) {
  check_against_golden("table2_quick", "table2_density.json");
}

// Large-field scaling family (2k nodes at --quick scale): pins the spatial
// index's end-to-end behavior — any neighbor-set or ordering drift in the
// grid-backed channel shows up here as a metric diff.
TEST(GoldenRegression, HugeFieldDensity) {
  check_against_golden("huge_field_quick", "huge_field.json");
}

// Metaheuristic design-search family (random §5.2.2-density fields): pins
// the opt/ subsystem end-to-end — constructive seeds, annealing walks,
// portfolio merge, and the engine's design-kind row shape. Any drift in
// move enumeration order, RNG stream layout, or the GridIndex-backed
// instance construction shows up here as a metric diff.
TEST(GoldenRegression, DesignPortfolio) {
  check_against_golden("design_portfolio_quick", "design_portfolio.json");
}

// Design-replay family: pins the replay/ subsystem end-to-end — instance
// generation with demand weights, lifetime-penalized search, realization
// (powered-off sets, demand-derived CBR flows) and the full simulator run
// per cell. Also the acceptance bar for the lifetime mode: on this pinned
// family the portfolio_lifetime series must reach a strictly later
// first_death_s than the unconstrained portfolio (asserted below from the
// same rows the golden pins).
TEST(GoldenRegression, DesignReplay) {
  check_against_golden("design_replay_quick", "design_replay.json");
}

TEST(GoldenRegression, ReplayLifetimeOutlivesUnconstrainedPortfolio) {
  const auto lines = split_lines(run_quick("design_replay.json", 1).jsonl);
  // first_death_s per (series, x); require portfolio_lifetime > portfolio
  // on at least one instance family (x value), never earlier on any.
  std::map<double, double> portfolio, lifetime;
  for (const auto& l : lines) {
    const auto row = json::parse(l);
    const std::string series = row.find("series")->as_string();
    const double x = row.find("x")->as_number();
    const double death = row.find("metrics")
                             ->find("first_death_s")
                             ->find("mean")
                             ->as_number();
    if (series == "portfolio") portfolio[x] = death;
    if (series == "portfolio_lifetime") lifetime[x] = death;
  }
  ASSERT_FALSE(portfolio.empty());
  ASSERT_EQ(portfolio.size(), lifetime.size());
  bool strictly_later_somewhere = false;
  for (const auto& [x, death] : portfolio) {
    ASSERT_TRUE(lifetime.count(x));
    EXPECT_GE(lifetime[x], death) << "lifetime variant died earlier at n="
                                  << x;
    strictly_later_somewhere |= lifetime[x] > death;
  }
  EXPECT_TRUE(strictly_later_somewhere)
      << "portfolio_lifetime never outlived the unconstrained portfolio";
}

// Presolve family: design search with reductions enabled plus the
// certified-bound columns (lb, certified_gap_pct, reduced counts). Pins the
// presolve/ subsystem end-to-end through the manifest engine.
TEST(GoldenRegression, DesignPresolve) {
  check_against_golden("design_presolve_quick", "design_presolve.json");
}

// Presolve soundness at the engine level: flipping `presolve` on must not
// change a single byte of the existing design/replay golden families' output
// — the reduced twins replay the searches exactly (the certified-bound
// columns only appear when a manifest *requests* those metrics).
TEST(GoldenRegression, PresolveFlipKeepsDesignOutputsByteIdentical) {
  for (const char* file : {"design_portfolio.json", "design_replay.json"}) {
    Manifest m =
        Manifest::load(std::string(EEND_MANIFEST_DIR) + "/" + file);
    const EngineOutput plain = run_quick_manifest(m, 1);
    for (auto& e : m.experiments) e.presolve = true;
    const EngineOutput reduced = run_quick_manifest(m, 1);
    EXPECT_EQ(plain.jsonl, reduced.jsonl) << file;
    EXPECT_EQ(plain.csv, reduced.csv) << file;
    ASSERT_FALSE(plain.jsonl.empty());
  }
}

TEST(GoldenRegression, PresolveKindByteIdenticalAcrossJobs) {
  const EngineOutput serial = run_quick("design_presolve.json", 1);
  const EngineOutput parallel = run_quick("design_presolve.json", 8);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  EXPECT_EQ(serial.csv, parallel.csv);
  ASSERT_FALSE(serial.jsonl.empty());
}

// Churn family: pins the serving loop end-to-end — trace generation,
// per-epoch warm-start repair vs from-scratch portfolio, and the periodic
// replay-validation epochs. Any drift in the trace RNG stream, the repair
// region, or the realization path shows up here as a metric diff.
TEST(GoldenRegression, DesignChurn) {
  check_against_golden("design_churn_quick", "design_churn.json");
}

TEST(GoldenRegression, ChurnByteIdenticalAcrossJobs) {
  // The churn kind fans (node count × run) serving loops across the pool;
  // each loop is serial inside, results land in pre-sized slots, so every
  // sink must be byte-stable for any --jobs.
  const EngineOutput serial = run_quick("design_churn.json", 1);
  const EngineOutput parallel = run_quick("design_churn.json", 8);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  EXPECT_EQ(serial.csv, parallel.csv);
  ASSERT_FALSE(serial.jsonl.empty());
}

// The serving loop's acceptance bar, asserted on the same rows the golden
// pins: at every epoch the warm-start design's Eq. 5 score stays within 5%
// of the from-scratch portfolio's (ISSUE 9's per-epoch quality gap bound).
TEST(GoldenRegression, ChurnWarmGapWithinBound) {
  const auto lines = split_lines(run_quick("design_churn.json", 1).jsonl);
  ASSERT_FALSE(lines.empty());
  for (const auto& l : lines) {
    const auto row = json::parse(l);
    const double gap = row.find("metrics")
                           ->find("gap_vs_cold_pct")
                           ->find("mean")
                           ->as_number();
    EXPECT_LE(gap, 5.0) << "series " << row.find("series")->as_string()
                        << " epoch " << row.find("x")->as_number();
  }
}

// Determinism contract: the machine-readable streams must be byte-identical
// for any --jobs value, not merely numerically close.

TEST(GoldenRegression, ByteIdenticalAcrossJobs) {
  const EngineOutput serial = run_quick("small_field.json", 1);
  const EngineOutput parallel = run_quick("small_field.json", 8);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  EXPECT_EQ(serial.csv, parallel.csv);
  ASSERT_FALSE(serial.jsonl.empty());
  ASSERT_FALSE(serial.csv.empty());
}

TEST(GoldenRegression, DesignKindByteIdenticalAcrossJobs) {
  // The design kind parallelizes *inside* the portfolio (multi-starts via
  // ParallelRunner); its seed-order merge must keep every sink byte-stable.
  const EngineOutput serial = run_quick("design_portfolio.json", 1);
  const EngineOutput parallel = run_quick("design_portfolio.json", 8);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  EXPECT_EQ(serial.csv, parallel.csv);
  ASSERT_FALSE(serial.jsonl.empty());
}

TEST(GoldenRegression, ReplayKindByteIdenticalAcrossJobs) {
  // The replay kind fans two phases across the pool (search per cell, then
  // one full simulation per cell × heuristic); both land in pre-sized
  // slots, so every sink must be byte-stable for any --jobs.
  const EngineOutput serial = run_quick("design_replay.json", 1);
  const EngineOutput parallel = run_quick("design_replay.json", 8);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  EXPECT_EQ(serial.csv, parallel.csv);
  ASSERT_FALSE(serial.jsonl.empty());
}

}  // namespace
}  // namespace eend::core
