// Unit tests: the churn subsystem (src/churn/ + opt/warm_start.hpp) — the
// serving loop's trace model and incremental re-designer.
//
// The load-bearing guarantees:
//   * a trace is deterministic in its TraceSpec alone — two states advanced
//     under the same spec produce identical deltas and identical problems;
//   * ChurnState only ever exposes routable problems, failed nodes are
//     isolated, and an unperturbed topology is bit-identical to
//     NetworkDesignProblem::from_positions on the same inputs;
//   * explicit schedules apply verbatim (arrive/depart/rate semantics);
//   * warm_start_search returns a feasible design within the fallback
//     threshold of the Klein-Ravi reference, deterministically;
//   * the RouteCache fast path of evaluate_design is bit-identical to the
//     uncached evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "churn/trace.hpp"
#include "opt/design_instance.hpp"
#include "opt/portfolio.hpp"
#include "opt/warm_start.hpp"

namespace eend::churn {
namespace {

opt::DesignInstanceSpec small_spec() {
  opt::DesignInstanceSpec spec;
  spec.node_count = 40;
  spec.demand_count = 6;
  spec.seed = 7;
  return spec;
}

TraceSpec busy_trace(std::uint64_t seed) {
  TraceSpec t;
  t.epochs = 6;
  t.arrivals_per_epoch = 1;
  t.departures_per_epoch = 1;
  t.swings_per_epoch = 2;
  t.failures_per_epoch = 1;
  t.rate_swing = 0.5;
  t.move_fraction = 0.1;
  t.move_sigma_m = 60.0;
  t.seed = seed;
  return t;
}

std::string fingerprint(const Event& e) {
  std::ostringstream os;
  os << event_op_name(e.op) << '|' << e.node << '|' << e.demand << '|'
     << e.source << '|' << e.destination << '|' << e.weight << '|'
     << e.factor << '|' << e.x << '|' << e.y;
  return os.str();
}

std::string fingerprint(const EpochDelta& d) {
  std::ostringstream os;
  for (const Event& e : d.applied) os << fingerprint(e) << '\n';
  os << "touched:";
  for (const graph::NodeId v : d.touched_nodes) os << ' ' << v;
  os << " topo:" << d.topology_changed;
  return os.str();
}

void expect_same_graph(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (graph::NodeId v = 0; v < a.node_count(); ++v)
    EXPECT_EQ(a.node_weight(v), b.node_weight(v)) << "node " << v;
  for (graph::EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u) << "edge " << e;
    EXPECT_EQ(a.edge(e).v, b.edge(e).v) << "edge " << e;
    EXPECT_EQ(a.edge(e).weight, b.edge(e).weight) << "edge " << e;
  }
}

void expect_same_demands(const std::vector<graph::Demand>& a,
                         const std::vector<graph::Demand>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source) << "demand " << i;
    EXPECT_EQ(a[i].destination, b[i].destination) << "demand " << i;
    EXPECT_EQ(a[i].rate, b[i].rate) << "demand " << i;
  }
}

// ------------------------------------------------------------- the trace ---

TEST(ChurnTrace, GeneratedAdvanceIsDeterministic) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  const TraceSpec trace = busy_trace(spec.seed);

  ChurnState a(inst, spec);
  ChurnState b(inst, spec);
  for (std::size_t epoch = 1; epoch < trace.epochs; ++epoch) {
    const EpochDelta da = a.advance(trace, epoch);
    const EpochDelta db = b.advance(trace, epoch);
    EXPECT_EQ(fingerprint(da), fingerprint(db)) << "epoch " << epoch;
    expect_same_graph(a.problem().graph(), b.problem().graph());
    expect_same_demands(a.problem().demands(), b.problem().demands());
    EXPECT_EQ(a.failed_nodes(), b.failed_nodes());
  }
}

TEST(ChurnTrace, DifferentSeedsDiverge) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  ChurnState a(inst, spec);
  ChurnState b(inst, spec);
  const EpochDelta da = a.advance(busy_trace(1), 1);
  const EpochDelta db = b.advance(busy_trace(2), 1);
  EXPECT_NE(fingerprint(da), fingerprint(db));
}

TEST(ChurnTrace, UnperturbedTopologyMatchesFromPositions) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  ChurnState state(inst, spec);
  // A rate swing touches demands only: topology_changed must stay false and
  // the graph bit-identical to the from_positions construction.
  TraceSpec t;
  t.epochs = 2;
  t.arrivals_per_epoch = 0;
  t.departures_per_epoch = 0;
  t.swings_per_epoch = 1;
  t.failures_per_epoch = 0;
  t.seed = spec.seed;
  const EpochDelta d = state.advance(t, 1);
  EXPECT_FALSE(d.topology_changed);
  expect_same_graph(state.problem().graph(), inst.problem.graph());
  expect_same_graph(
      state.problem().graph(),
      core::NetworkDesignProblem::from_positions(inst.positions, spec.card)
          .graph());
}

TEST(ChurnTrace, FeasibilityInvariantsHoldAcrossEpochs) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  ChurnState state(inst, spec);
  const TraceSpec trace = busy_trace(spec.seed);
  for (std::size_t epoch = 1; epoch < trace.epochs; ++epoch) {
    const EpochDelta d = state.advance(trace, epoch);
    // The exposed problem is always routable (empty set = full graph).
    EXPECT_TRUE(state.problem().try_route_in_subgraph({}).has_value())
        << "epoch " << epoch;
    // Failed nodes are isolated and never demand endpoints.
    const auto failed = state.failed_nodes();
    EXPECT_TRUE(std::is_sorted(failed.begin(), failed.end()));
    for (const graph::NodeId v : failed)
      EXPECT_EQ(state.problem().graph().degree(v), 0u) << "node " << v;
    for (const graph::Demand& dm : state.problem().demands()) {
      EXPECT_FALSE(std::binary_search(failed.begin(), failed.end(),
                                      dm.source));
      EXPECT_FALSE(std::binary_search(failed.begin(), failed.end(),
                                      dm.destination));
      EXPECT_GT(dm.rate, 0.0);
    }
    // touched_nodes is sorted unique — the warm-start locality contract.
    EXPECT_TRUE(std::is_sorted(d.touched_nodes.begin(),
                               d.touched_nodes.end()));
    EXPECT_EQ(std::adjacent_find(d.touched_nodes.begin(),
                                 d.touched_nodes.end()),
              d.touched_nodes.end());
    EXPECT_FALSE(d.applied.empty()) << "epoch " << epoch;
  }
}

TEST(ChurnTrace, ExplicitScheduleAppliesVerbatim) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  const std::size_t initial = inst.problem.demands().size();
  const double base0 = inst.problem.demands()[0].rate;

  // Pick endpoints for the arrival that are not already a demand pair.
  graph::NodeId s = 0, d = 0;
  bool found = false;
  for (graph::NodeId u = 0; u < 40 && !found; ++u)
    for (graph::NodeId v = 0; v < 40 && !found; ++v) {
      if (u == v) continue;
      bool dup = false;
      for (const graph::Demand& dm : inst.problem.demands())
        dup = dup || (dm.source == u && dm.destination == v);
      if (!dup) {
        s = u;
        d = v;
        found = true;
      }
    }
  ASSERT_TRUE(found);

  TraceSpec t;
  t.epochs = 3;
  t.seed = spec.seed;
  Event arrive;
  arrive.op = EventOp::Arrive;
  arrive.source = s;
  arrive.destination = d;
  arrive.weight = 2.5;
  Event swing;
  swing.op = EventOp::RateSwing;
  swing.demand = 0;
  swing.factor = 0.25;
  Event depart;
  depart.op = EventOp::Depart;
  depart.demand = 1;
  t.schedule.push_back(EpochEvents{1, {arrive, swing}});
  t.schedule.push_back(EpochEvents{2, {depart}});

  ChurnState state(inst, spec);
  EpochDelta d1 = state.advance(t, 1);
  EXPECT_EQ(d1.applied.size(), 2u);
  ASSERT_EQ(state.problem().demands().size(), initial + 1);
  const graph::Demand& arrived = state.problem().demands().back();
  EXPECT_EQ(arrived.source, s);
  EXPECT_EQ(arrived.destination, d);
  EXPECT_EQ(arrived.rate, 2.5);  // demand_rate defaults to 1.0
  EXPECT_EQ(state.problem().demands()[0].rate, base0 * 0.25);

  state.advance(t, 2);
  ASSERT_EQ(state.problem().demands().size(), initial);
  // Demand 1 was erased; the arrival (previously last) is still live.
  EXPECT_EQ(state.problem().demands().back().source, s);
}

TEST(ChurnTrace, ScheduleGapEpochsAreNoOps) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  TraceSpec t;
  t.epochs = 4;
  t.seed = spec.seed;
  Event swing;
  swing.op = EventOp::RateSwing;
  swing.demand = 0;
  swing.factor = 2.0;
  t.schedule.push_back(EpochEvents{2, {swing}});

  ChurnState state(inst, spec);
  const EpochDelta d1 = state.advance(t, 1);
  EXPECT_TRUE(d1.applied.empty());
  expect_same_demands(state.problem().demands(), inst.problem.demands());
  const EpochDelta d2 = state.advance(t, 2);
  EXPECT_EQ(d2.applied.size(), 1u);
}

// ------------------------------------------------------------ warm start ---

TEST(WarmStart, RepairsPerturbationWithinFallbackBound) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  const opt::DesignObjective objective;

  opt::PortfolioOptions po;
  po.objective = objective;
  po.starts = 4;
  po.anneal.iterations = 100;
  po.seed = spec.seed;
  const opt::CandidateDesign cold =
      opt::design_portfolio(inst.problem, po).best;
  ASSERT_TRUE(cold.feasible);

  ChurnState state(inst, spec);
  const TraceSpec trace = busy_trace(spec.seed);
  opt::CandidateDesign serving = cold;
  for (std::size_t epoch = 1; epoch < trace.epochs; ++epoch) {
    const EpochDelta delta = state.advance(trace, epoch);
    const auto failed = state.failed_nodes();
    serving.nodes.erase(
        std::remove_if(serving.nodes.begin(), serving.nodes.end(),
                       [&](graph::NodeId v) {
                         return std::binary_search(failed.begin(),
                                                   failed.end(), v);
                       }),
        serving.nodes.end());

    opt::WarmStartOptions wo;
    wo.objective = objective;
    wo.starts = 4;
    wo.anneal_iterations = 100;
    wo.fallback_pct = 5.0;
    const opt::WarmStartResult wr = opt::warm_start_search(
        state.problem(), serving, delta.touched_nodes, wo, spec.seed);
    ASSERT_TRUE(wr.design.feasible) << "epoch " << epoch;

    // Whether the repair held or the fallback fired, the result must land
    // within the threshold of the Klein-Ravi reference (the fallback
    // portfolio is <= Klein-Ravi by construction).
    const opt::CandidateDesign kr = opt::design_from_tree(
        state.problem(), state.problem().solve_node_weighted(), objective);
    ASSERT_TRUE(kr.feasible);
    EXPECT_LE(wr.design.cost(), kr.cost() * 1.05 + 1e-9)
        << "epoch " << epoch;
    serving = wr.design;
  }
}

TEST(WarmStart, IsDeterministic) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  const opt::DesignObjective objective;
  const opt::CandidateDesign seed_design = opt::design_from_tree(
      inst.problem, inst.problem.solve_node_weighted(), objective);

  ChurnState state(inst, spec);
  const EpochDelta delta = state.advance(busy_trace(spec.seed), 1);
  opt::CandidateDesign previous = seed_design;
  const auto failed = state.failed_nodes();
  previous.nodes.erase(
      std::remove_if(previous.nodes.begin(), previous.nodes.end(),
                     [&](graph::NodeId v) {
                       return std::binary_search(failed.begin(),
                                                 failed.end(), v);
                     }),
      previous.nodes.end());

  opt::WarmStartOptions wo;
  wo.objective = objective;
  const opt::WarmStartResult a = opt::warm_start_search(
      state.problem(), previous, delta.touched_nodes, wo, 11);
  const opt::WarmStartResult b = opt::warm_start_search(
      state.problem(), previous, delta.touched_nodes, wo, 11);
  EXPECT_EQ(a.design.nodes, b.design.nodes);
  EXPECT_EQ(a.design.cost(), b.design.cost());
  EXPECT_EQ(a.fell_back, b.fell_back);
  EXPECT_EQ(a.rerouted_demands, b.rerouted_demands);
}

// ------------------------------------------------- RouteCache fast path ---

TEST(RouteCache, CachedEvaluationIsBitIdentical) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  const opt::DesignObjective objective;

  // Fill the cache from the full node set.
  std::vector<graph::NodeId> all;
  for (graph::NodeId v = 0; v < inst.problem.graph().node_count(); ++v)
    all.push_back(v);
  opt::RouteCache cache;
  const opt::CandidateDesign full =
      opt::evaluate_design(inst.problem, all, objective, nullptr, &cache);
  ASSERT_TRUE(full.feasible);
  ASSERT_FALSE(cache.empty());

  // Remove each non-terminal in turn; the cached evaluation must equal the
  // uncached one bit for bit (score, surviving node set).
  const auto terminals = inst.problem.terminals();
  std::size_t probed = 0;
  for (graph::NodeId victim = 0;
       victim < inst.problem.graph().node_count() && probed < 12; ++victim) {
    if (std::binary_search(terminals.begin(), terminals.end(), victim))
      continue;
    ++probed;
    std::vector<graph::NodeId> subset;
    for (const graph::NodeId v : all)
      if (v != victim) subset.push_back(v);
    const opt::CandidateDesign plain =
        opt::evaluate_design(inst.problem, subset, objective);
    const opt::CandidateDesign cached = opt::evaluate_design(
        inst.problem, subset, objective, &cache, nullptr);
    EXPECT_EQ(plain.feasible, cached.feasible) << "victim " << victim;
    if (!plain.feasible) continue;
    EXPECT_EQ(plain.score.idle, cached.score.idle) << "victim " << victim;
    EXPECT_EQ(plain.score.data, cached.score.data) << "victim " << victim;
    EXPECT_EQ(plain.nodes, cached.nodes) << "victim " << victim;
  }
  EXPECT_GT(probed, 0u);
}

TEST(RouteCache, SubgraphRoutingCachedMatchesUncached) {
  const auto spec = small_spec();
  const auto inst = opt::make_design_instance(spec);
  std::vector<graph::NodeId> all;
  for (graph::NodeId v = 0; v < inst.problem.graph().node_count(); ++v)
    all.push_back(v);
  const auto cached_routes = inst.problem.try_route_in_subgraph(all);
  ASSERT_TRUE(cached_routes.has_value());

  const auto terminals = inst.problem.terminals();
  graph::NodeId victim = 0;
  while (std::binary_search(terminals.begin(), terminals.end(), victim))
    ++victim;
  std::vector<graph::NodeId> subset;
  for (const graph::NodeId v : all)
    if (v != victim) subset.push_back(v);

  const auto plain = inst.problem.try_route_in_subgraph(subset);
  const auto fast = inst.problem.try_route_in_subgraph_cached(
      subset, all, *cached_routes);
  ASSERT_EQ(plain.has_value(), fast.has_value());
  ASSERT_TRUE(plain.has_value());
  ASSERT_EQ(plain->size(), fast->size());
  for (std::size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].path, (*fast)[i].path) << "demand " << i;
    EXPECT_EQ((*plain)[i].packets, (*fast)[i].packets) << "demand " << i;
  }
}

}  // namespace
}  // namespace eend::churn
