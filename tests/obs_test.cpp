// Observability suite: counter registry semantics, --counters determinism
// across --jobs, and Chrome-trace well-formedness.
//
// The engine-level tests replay the shipped design_churn manifest at --quick
// scale. Counter VALUES are part of the determinism contract (byte-identical
// JSONL for any jobs value); trace span NAMES are deterministic too, but
// lane assignment (which worker ran which cell) and timestamps are not, so
// the trace tests compare name multisets and per-lane nesting, never
// (name, tid) pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

#ifndef EEND_MANIFEST_DIR
#error "EEND_MANIFEST_DIR must point at examples/manifests"
#endif

namespace eend {
namespace {

// With telemetry compiled off the hot primitives must be empty types —
// instrumented members then occupy [[no_unique_address]]-free single bytes
// and the inner loops carry no code.
static_assert(obs::kEnabled ? sizeof(obs::HotCounter) == sizeof(std::uint64_t)
                            : sizeof(obs::HotCounter) == 1);
static_assert(obs::kEnabled ? sizeof(obs::HotGauge) == sizeof(std::uint64_t)
                            : sizeof(obs::HotGauge) == 1);

std::string jsonl_of(const obs::CounterSnapshot& snap,
                     std::string_view experiment) {
  std::ostringstream os;
  snap.write_jsonl(os, experiment);
  return os.str();
}

TEST(ObsCounters, AddAndSnapshot) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled off";
  obs::CounterRegistry reg;
  reg.add("b.second");
  reg.add("a.first", 3);
  reg.add("a.first");
  reg.observe("h.sizes", 5);
  reg.observe("h.sizes", 0);
  const obs::CounterSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.at("a.first"), 4u);
  EXPECT_EQ(snap.counters.at("b.second"), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms.at("h.sizes").count, 2u);
  EXPECT_EQ(snap.histograms.at("h.sizes").sum, 5u);
  // Counters emit sorted by name regardless of insertion order.
  const std::string text = jsonl_of(snap, "t");
  EXPECT_LT(text.find("a.first"), text.find("b.second"));
  EXPECT_LT(text.find("b.second"), text.find("h.sizes"));
}

TEST(ObsCounters, HistogramBucketBoundaries) {
  // bucket i holds bit_width(v) == i: 0 -> 0, 1 -> 1, 2..3 -> 2, ...
  EXPECT_EQ(obs::hist_bucket(0), 0u);
  EXPECT_EQ(obs::hist_bucket(1), 1u);
  EXPECT_EQ(obs::hist_bucket(2), 2u);
  EXPECT_EQ(obs::hist_bucket(3), 2u);
  EXPECT_EQ(obs::hist_bucket(4), 3u);
  EXPECT_EQ(obs::hist_bucket(7), 3u);
  EXPECT_EQ(obs::hist_bucket(8), 4u);
  // Values past the last bucket clamp into it rather than overflowing.
  EXPECT_EQ(obs::hist_bucket(~std::uint64_t{0}), obs::kHistBuckets - 1);
}

TEST(ObsCounters, ScopedRegistryRoutesAndMasks) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled off";
  EXPECT_EQ(obs::current(), nullptr);
  obs::count("dropped.no_registry");  // no registry installed: a no-op
  obs::CounterRegistry outer;
  {
    const obs::ScopedRegistry outer_scope(&outer);
    EXPECT_EQ(obs::current(), &outer);
    obs::count("seen.outer");
    {
      // Installing nullptr masks the outer registry rather than leaking
      // counts from a section that opted out.
      const obs::ScopedRegistry mask(nullptr);
      EXPECT_EQ(obs::current(), nullptr);
      obs::count("dropped.masked");
    }
    EXPECT_EQ(obs::current(), &outer);
    obs::observe("seen.sizes", 2);
  }
  EXPECT_EQ(obs::current(), nullptr);
  const obs::CounterSnapshot snap = outer.snapshot();
  EXPECT_EQ(snap.counters.count("dropped.no_registry"), 0u);
  EXPECT_EQ(snap.counters.count("dropped.masked"), 0u);
  EXPECT_EQ(snap.counters.at("seen.outer"), 1u);
  EXPECT_EQ(snap.histograms.at("seen.sizes").sum, 2u);
}

TEST(ObsCounters, MergeIsOrderIndependent) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled off";
  obs::CounterRegistry a, b;
  a.add("shared", 2);
  a.add("only_a", 7);
  a.observe("h", 1);
  b.add("shared", 5);
  b.add("only_b");
  b.observe("h", 6);
  b.observe("h2", 3);
  const obs::CounterSnapshot sa = a.snapshot();
  const obs::CounterSnapshot sb = b.snapshot();
  obs::CounterSnapshot ab, ba;
  ab.merge_from(sa);
  ab.merge_from(sb);
  ba.merge_from(sb);
  ba.merge_from(sa);
  EXPECT_EQ(ab.counters.at("shared"), 7u);
  EXPECT_EQ(ab.histograms.at("h").count, 2u);
  EXPECT_EQ(ab.histograms.at("h").sum, 7u);
  // Sums commute and emission is name-sorted, so merge order cannot leak
  // into the bytes.
  EXPECT_EQ(jsonl_of(ab, "x"), jsonl_of(ba, "x"));
}

// --- Engine-level determinism on the shipped churn manifest ---------------

std::string run_churn_counters(std::size_t jobs) {
  const core::Manifest m =
      core::Manifest::load(EEND_MANIFEST_DIR "/design_churn.json");
  std::ostringstream counters;
  core::EngineOptions opts;
  opts.jobs = jobs;
  opts.quick = true;
  opts.counters = &counters;
  core::ExperimentEngine engine(opts);
  engine.run(m);
  return counters.str();
}

TEST(ObsEngine, CountersAreByteIdenticalAcrossJobs) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled off";
  const std::string serial = run_churn_counters(1);
  ASSERT_FALSE(serial.empty());
  // Spot-check the catalog: churn cells exercise the sim core, the route
  // cache, and the churn engine itself.
  EXPECT_NE(serial.find("\"counter\":\"sim.events_fired\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"counter\":\"opt.cache.route_hits\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"counter\":\"churn.events_applied\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"experiment\":\"churn_serving\""),
            std::string::npos);
  EXPECT_EQ(serial, run_churn_counters(8));
}

// --- Chrome trace emission ------------------------------------------------

std::vector<obs::TraceEvent> run_churn_trace(std::size_t jobs) {
  obs::TraceCollector collector;
  obs::set_trace(&collector);
  const core::Manifest m =
      core::Manifest::load(EEND_MANIFEST_DIR "/design_churn.json");
  core::EngineOptions opts;
  opts.jobs = jobs;
  opts.quick = true;
  core::ExperimentEngine engine(opts);
  engine.run(m);
  obs::set_trace(nullptr);
  return collector.events();
}

TEST(ObsTrace, JsonIsWellFormedAndSpansNest) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled off";
  obs::TraceCollector collector;
  obs::set_trace(&collector);
  const core::Manifest m =
      core::Manifest::load(EEND_MANIFEST_DIR "/design_churn.json");
  core::EngineOptions opts;
  opts.quick = true;
  core::ExperimentEngine engine(opts);
  engine.run(m);
  obs::set_trace(nullptr);
  std::ostringstream os;
  collector.write_json(os);

  const json::Value doc = json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = nullptr;
  for (const auto& [k, v] : doc.as_object())
    if (k == "traceEvents") events = &v;
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());

  struct Span {
    std::string name;
    std::uint32_t pid = 0, tid = 0;
    double ts = 0.0, dur = 0.0;
  };
  std::vector<Span> spans;
  for (const json::Value& ev : events->as_array()) {
    ASSERT_TRUE(ev.is_object());
    Span s;
    for (const auto& [k, v] : ev.as_object()) {
      if (k == "name") s.name = v.as_string();
      else if (k == "ph") EXPECT_EQ(v.as_string(), "X");
      else if (k == "pid") s.pid = static_cast<std::uint32_t>(v.as_number());
      else if (k == "tid") s.tid = static_cast<std::uint32_t>(v.as_number());
      else if (k == "ts") s.ts = v.as_number();
      else if (k == "dur") s.dur = v.as_number();
    }
    EXPECT_FALSE(s.name.empty());
    EXPECT_LE(s.pid, obs::kPidCell);
    EXPECT_GE(s.ts, 0.0);
    EXPECT_GE(s.dur, 0.0);
    spans.push_back(std::move(s));
  }

  // The deterministic engine phases must appear by name.
  const auto has = [&](std::string_view name) {
    return std::any_of(spans.begin(), spans.end(),
                       [&](const Span& s) { return s.name == name; });
  };
  EXPECT_TRUE(has("experiment:churn_serving"));
  EXPECT_TRUE(has("sink.flush"));
  EXPECT_TRUE(has("churn.cell"));
  EXPECT_TRUE(has("churn.cold_solve"));
  EXPECT_TRUE(has("churn.warm_repair"));
  EXPECT_TRUE(has("instance.build"));

  // Complete spans on one (pid, tid) lane must nest: sorted by start time,
  // each span either starts after the enclosing one ends or ends within it.
  // A small epsilon absorbs float rounding of back-to-back spans.
  constexpr double kEpsUs = 0.5;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Span>> lanes;
  for (const Span& s : spans) lanes[{s.pid, s.tid}].push_back(s);
  for (auto& [lane, in_lane] : lanes) {
    std::stable_sort(in_lane.begin(), in_lane.end(),
                     [](const Span& a, const Span& b) { return a.ts < b.ts; });
    std::vector<double> open_ends;
    for (const Span& s : in_lane) {
      while (!open_ends.empty() && open_ends.back() <= s.ts + kEpsUs)
        open_ends.pop_back();
      if (!open_ends.empty()) {
        EXPECT_LE(s.ts + s.dur, open_ends.back() + kEpsUs)
            << "span '" << s.name << "' overlaps its enclosing span on lane ("
            << lane.first << "," << lane.second << ")";
      }
      open_ends.push_back(s.ts + s.dur);
    }
  }
}

TEST(ObsTrace, SpanNamesAreJobsInvariant) {
  if (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled off";
  // Which lane a span lands on depends on scheduling; WHICH spans exist
  // (one per cell, phase, solve, ...) depends only on the workload.
  const auto names_of = [](std::size_t jobs) {
    std::vector<std::string> names;
    for (const obs::TraceEvent& e : run_churn_trace(jobs))
      names.push_back(e.name);
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(names_of(1), names_of(4));
}

TEST(ObsTrace, DisabledCollectorEmitsNothing) {
  obs::TraceCollector collector;
  // No set_trace: PhaseTimer still measures but must not emit anywhere.
  obs::PhaseTimer t("untracked.phase");
  EXPECT_GE(t.stop(), 0.0);
  EXPECT_TRUE(collector.events().empty());
  std::ostringstream os;
  collector.write_json(os);
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace eend
