// Unit tests: 802.11 PSM scheduler — beacon/ATIM cycles, holds, announce
// capacity, Span reconsideration, and PSM-deferred MAC delivery.
#include <gtest/gtest.h>

#include <memory>

#include "mac/mac.hpp"
#include "mac/psm.hpp"

namespace eend::mac {
namespace {

struct Rig {
  sim::Simulator sim;
  phy::Propagation prop{energy::cabletron(), {}};
  Channel ch{sim, prop};
  PsmConfig psm_cfg;
  std::unique_ptr<PsmScheduler> psm;
  std::vector<std::unique_ptr<NodeRadio>> radios;
  std::vector<std::unique_ptr<Mac>> macs;
  MacConfig mac_cfg;

  void add(double x, double y) {
    auto r = std::make_unique<NodeRadio>(
        static_cast<NodeId>(radios.size()), phy::Position{x, y},
        energy::cabletron(), sim);
    ch.register_radio(r.get());
    radios.push_back(std::move(r));
  }
  void freeze() {
    psm = std::make_unique<PsmScheduler>(sim, psm_cfg);
    psm->set_announce_range(
        prop.cs_range(energy::cabletron().max_transmit_power()));
    ch.freeze_topology();
    for (std::size_t i = 0; i < radios.size(); ++i) {
      psm->register_radio(radios[i].get());
      radios[i]->begin_metering(energy::RadioMode::Idle);
      macs.push_back(std::make_unique<Mac>(sim, ch, *radios[i], psm.get(),
                                           Rng(200 + i), mac_cfg));
    }
    psm->start();
  }
  Packet data() {
    Packet p;
    p.size_bits = 1024;
    return p;
  }
  double max_power() const {
    return energy::cabletron().max_transmit_power();
  }
};

TEST(Psm, PsmNodeSleepsAfterAtimWindow) {
  Rig r;
  r.add(0, 0);
  r.freeze();
  r.psm->set_psm(0, true);
  r.sim.run_until(0.01);
  EXPECT_TRUE(r.radios[0]->sleeping());  // slept immediately (no holds)
  // At the next beacon it wakes for the ATIM window...
  r.sim.run_until(0.305);
  EXPECT_FALSE(r.radios[0]->sleeping());
  // ...and sleeps again after it.
  r.sim.run_until(0.33);
  EXPECT_TRUE(r.radios[0]->sleeping());
}

TEST(Psm, AmNodeStaysAwake) {
  Rig r;
  r.add(0, 0);
  r.freeze();
  r.sim.run_until(1.0);
  EXPECT_FALSE(r.radios[0]->sleeping());
  EXPECT_EQ(r.psm->psm_count(), 0u);
}

TEST(Psm, SwitchingToAmWakesImmediately) {
  Rig r;
  r.add(0, 0);
  r.freeze();
  r.psm->set_psm(0, true);
  r.sim.run_until(0.1);
  ASSERT_TRUE(r.radios[0]->sleeping());
  r.psm->set_psm(0, false);
  EXPECT_FALSE(r.radios[0]->sleeping());
}

TEST(Psm, HoldKeepsNodeAwakeThroughAtimEnd) {
  Rig r;
  r.add(0, 0);
  r.freeze();
  r.psm->set_psm(0, true);
  r.sim.run_until(0.31);  // inside ATIM of the second beacon
  r.radios[0]->hold_awake_until(0.5);
  r.sim.run_until(0.4);
  EXPECT_FALSE(r.radios[0]->sleeping());
}

TEST(Psm, UnicastToSleepingNodeDeliversNextWindow) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  r.psm->set_psm(1, true);
  r.sim.run_until(0.05);
  ASSERT_TRUE(r.radios[1]->sleeping());

  double delivered_at = -1.0;
  r.macs[1]->set_receive_handler(
      [&](const Packet&, NodeId) { delivered_at = r.sim.now(); });
  bool ok = false;
  r.sim.schedule_at(0.1, [&] {
    r.macs[0]->send_unicast(r.data(), 1, r.max_power(),
                            [&](bool s) { ok = s; });
  });
  r.sim.run_until(2.0);
  EXPECT_TRUE(ok);
  // Delivery happens in the data window after the next beacon (t=0.3).
  EXPECT_GT(delivered_at, 0.3);
  EXPECT_LT(delivered_at, 0.45);
}

TEST(Psm, BroadcastWakesPsmNeighbors) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.add(0, 100);
  r.freeze();
  r.psm->set_psm(1, true);
  r.psm->set_psm(2, true);
  int received = 0;
  for (int i = 1; i <= 2; ++i)
    r.macs[i]->set_receive_handler([&](const Packet&, NodeId) { ++received; });
  r.sim.schedule_at(0.1, [&] {
    r.macs[0]->send_broadcast(r.data(), r.max_power());
  });
  r.sim.run_until(2.0);
  EXPECT_EQ(received, 2);
}

TEST(Psm, NaivePsmHoldsForWholeInterval) {
  Rig r;
  r.psm_cfg.span_improvements = false;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  r.psm->set_psm(1, true);
  r.sim.schedule_at(0.1, [&] {
    r.macs[0]->send_unicast(r.data(), 1, r.max_power());
  });
  // Frame delivered shortly after t=0.32; naive PSM keeps the receiver
  // awake until the interval end (t=0.6).
  r.sim.run_until(0.55);
  EXPECT_FALSE(r.radios[1]->sleeping());
}

TEST(Psm, SpanSleepsRightAfterAnnouncedTraffic) {
  Rig r;
  r.psm_cfg.span_improvements = true;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  r.psm->set_psm(1, true);
  r.sim.schedule_at(0.1, [&] {
    r.macs[0]->send_unicast(r.data(), 1, r.max_power());
  });
  // With the advertised-traffic window the receiver re-sleeps well before
  // the interval ends.
  r.sim.run_until(0.55);
  EXPECT_TRUE(r.radios[1]->sleeping());
}

TEST(Psm, SpanSavesEnergyVersusNaive) {
  auto run = [](bool span) {
    Rig r;
    r.psm_cfg.span_improvements = span;
    r.add(0, 0);
    r.add(100, 0);
    r.freeze();
    r.psm->set_psm(1, true);
    // One packet per interval for 30 intervals.
    for (int i = 0; i < 30; ++i)
      r.sim.schedule_at(0.05 + 0.3 * i, [&r] {
        r.macs[0]->send_unicast(r.data(), 1,
                                energy::cabletron().max_transmit_power());
      });
    r.sim.run_until(10.0);
    r.radios[1]->finish_metering();
    return r.radios[1]->meter().total();
  };
  EXPECT_LT(run(true), run(false) * 0.75);
}

TEST(Psm, AnnounceBudgetExhausts) {
  Rig r;
  r.psm_cfg.atim_frame_s = 0.004;      // 4 ms per announcement
  r.psm_cfg.atim_utilization = 0.5;    // 10 ms usable => 2 fit
  r.add(0, 0);
  r.add(10, 0);
  r.add(20, 0);
  r.add(30, 0);
  r.freeze();
  EXPECT_TRUE(r.psm->try_announce(0));
  EXPECT_TRUE(r.psm->try_announce(1));
  EXPECT_FALSE(r.psm->try_announce(2));
  EXPECT_EQ(r.psm->announce_failures(), 1u);
  // Far-away node has its own neighborhood budget.
  r.radios.clear();
}

TEST(Psm, AnnounceBudgetIsPerNeighborhood) {
  Rig r;
  r.psm_cfg.atim_frame_s = 0.004;
  r.psm_cfg.atim_utilization = 0.5;
  r.add(0, 0);
  r.add(10, 0);
  r.add(9000, 0);  // different region
  r.freeze();
  EXPECT_TRUE(r.psm->try_announce(0));
  EXPECT_TRUE(r.psm->try_announce(1));
  EXPECT_TRUE(r.psm->try_announce(2));  // unaffected by the far cluster
}

TEST(Psm, AnnounceBudgetResetsEachBeacon) {
  Rig r;
  r.psm_cfg.atim_frame_s = 0.009;
  r.psm_cfg.atim_utilization = 0.5;  // one per interval
  r.add(0, 0);
  r.add(10, 0);
  r.freeze();
  EXPECT_TRUE(r.psm->try_announce(0));
  EXPECT_FALSE(r.psm->try_announce(1));
  r.sim.run_until(0.31);  // past the next beacon
  EXPECT_TRUE(r.psm->try_announce(1));
}

TEST(Psm, NextBeaconMath) {
  Rig r;
  r.add(0, 0);
  r.freeze();
  EXPECT_NEAR(r.psm->next_beacon(0.0), 0.3, 1e-12);
  EXPECT_NEAR(r.psm->next_beacon(0.3), 0.6, 1e-12);
  EXPECT_NEAR(r.psm->next_beacon(0.31), 0.6, 1e-12);
  EXPECT_NEAR(r.psm->next_data_window(0.0), 0.32, 1e-12);
}

}  // namespace
}  // namespace eend::mac
