// Unit tests: the metaheuristic design-search subsystem (src/opt/).
//
// The load-bearing guarantees:
//   * an exhaustive-enumeration oracle on <= 10-node instances lower-bounds
//     every heuristic (no heuristic may beat the true optimum);
//   * local search and annealing never worsen their seed;
//   * the portfolio's Eq. 5 cost is <= the Klein-Ravi baseline's on every
//     instance, and it is byte-deterministic for any jobs value.
#include <gtest/gtest.h>

#include "opt/annealing.hpp"
#include "opt/design_instance.hpp"
#include "opt/local_search.hpp"
#include "opt/portfolio.hpp"
#include "util/rng.hpp"

namespace eend::opt {
namespace {

const analytical::Eq5Params kEval{};  // t_idle = t_data = 1, the defaults

/// Brute-force exact design search: enumerate every subset of non-terminal
/// nodes, score the feasible ones, return the cheapest. Exponential — the
/// test oracle for small instances only.
CandidateDesign exact_design(const core::NetworkDesignProblem& p) {
  const auto terminals = p.terminals();
  std::vector<graph::NodeId> optional;
  for (graph::NodeId v = 0; v < p.graph().node_count(); ++v)
    if (!std::binary_search(terminals.begin(), terminals.end(), v))
      optional.push_back(v);
  EXPECT_LE(optional.size(), 16u) << "oracle is exponential";

  CandidateDesign best;
  for (std::size_t mask = 0; mask < (std::size_t{1} << optional.size());
       ++mask) {
    std::vector<graph::NodeId> nodes = terminals;
    for (std::size_t i = 0; i < optional.size(); ++i)
      if (mask & (std::size_t{1} << i)) nodes.push_back(optional[i]);
    const CandidateDesign cand = evaluate_design(p, nodes, kEval);
    if (!cand.feasible) continue;
    if (!best.feasible || cand.cost() < best.cost()) best = cand;
  }
  return best;
}

/// The §3 ST1/ST2 instance: k sources, one sink, a chain relay (ST1) and a
/// star relay (ST2) of equal node weight but very different data cost.
core::NetworkDesignProblem st_instance(int k, graph::NodeId* chain_relay,
                                       graph::NodeId* star_relay) {
  graph::Graph g;
  const auto sink = g.add_node(0.0);
  std::vector<graph::NodeId> src;
  for (int s = 0; s < k; ++s) src.push_back(g.add_node(0.0));
  const auto ri = g.add_node(1.0);
  const auto rj = g.add_node(1.0);
  for (int s = 0; s + 1 < k; ++s) g.add_edge(src[s], src[s + 1], 1.0);
  g.add_edge(src[0], ri, 1.0);
  g.add_edge(ri, sink, 1.0);
  for (int s = 0; s < k; ++s) g.add_edge(src[s], rj, 1.0);
  g.add_edge(rj, sink, 1.0);

  core::NetworkDesignProblem p(std::move(g));
  for (int s = 0; s < k; ++s) p.add_demand({src[s], sink, 1.0});
  if (chain_relay) *chain_relay = ri;
  if (star_relay) *star_relay = rj;
  return p;
}

DesignInstance small_field(std::uint64_t seed, std::size_t nodes = 40,
                           std::size_t demands = 5) {
  DesignInstanceSpec spec;
  spec.node_count = nodes;
  spec.demand_count = demands;
  spec.seed = seed;
  return make_design_instance(spec);
}

// ------------------------------------------------------------- evaluation ---

TEST(DesignEval, DropsUnusedNodesAndScoresEq5) {
  // Hub-and-arms star: the only 1 -> 2 route is 1-0-2, so arms 3 and 4 are
  // allowed but unused and must be normalized out of the candidate.
  graph::Graph g;
  const auto hub = g.add_node(1.0);
  for (int arm = 0; arm < 4; ++arm) g.add_edge(hub, g.add_node(1.0), 1.0);
  core::NetworkDesignProblem p(std::move(g));
  p.add_demand({1, 2, 1.0});
  std::vector<graph::NodeId> all{0, 1, 2, 3, 4};
  const auto cand = evaluate_design(p, all, kEval);
  ASSERT_TRUE(cand.feasible);
  EXPECT_EQ(cand.nodes, (std::vector<graph::NodeId>{0, 1, 2}));
  EXPECT_EQ(cand.score.active_nodes, 3u);
  EXPECT_EQ(cand.score.relay_nodes, 1u);
  EXPECT_NEAR(cand.score.idle, 1.0, 1e-12);  // the hub's idle weight
  EXPECT_NEAR(cand.score.data, 2.0, 1e-12);  // two unit-weight hops
}

TEST(DesignEval, InfeasibleSubsetsAreFlaggedNotThrown) {
  graph::NodeId ri = 0, rj = 0;
  const auto p = st_instance(3, &ri, &rj);
  // Terminals only: sources reach each other over the chain but the sink
  // needs a relay — infeasible.
  const auto cand = evaluate_design(p, p.terminals(), kEval);
  EXPECT_FALSE(cand.feasible);
}

// ----------------------------------------------------------- local search ---

TEST(LocalSearch, ReroutesChainRelayToStarRelay) {
  // Seeded with the ST1 (chain) design, the exchange operator must
  // discover the ST2 (star) design — the paper's §3 deviation of (k+3)/4
  // closed by search instead of solver luck.
  const int k = 4;
  graph::NodeId ri = 0, rj = 0;
  const auto p = st_instance(k, &ri, &rj);

  std::vector<graph::NodeId> st1 = p.terminals();
  st1.push_back(ri);
  const auto seed = evaluate_design(p, st1, kEval);
  ASSERT_TRUE(seed.feasible);
  EXPECT_NEAR(seed.score.data, k * (k + 3.0) / 2.0, 1e-9);  // Eq. 6

  LocalSearchStats stats;
  const auto improved = local_search(p, seed, kEval, 64, &stats);
  ASSERT_TRUE(improved.feasible);
  EXPECT_GT(stats.passes, 0u);
  EXPECT_NEAR(improved.score.data, 2.0 * k, 1e-9);  // Eq. 7 (ST2)
  EXPECT_TRUE(std::binary_search(improved.nodes.begin(),
                                 improved.nodes.end(), rj));
}

TEST(LocalSearch, NeverWorsensItsSeed) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto inst = small_field(seed);
    for (const char* heuristic : {"klein_ravi", "mpc", "kmb"}) {
      const auto start = heuristic_by_name(heuristic).run(
          inst.problem, HeuristicOptions{}, seed);
      ASSERT_TRUE(start.feasible) << heuristic;
      const auto improved = local_search(inst.problem, start, kEval);
      ASSERT_TRUE(improved.feasible) << heuristic;
      EXPECT_LE(improved.cost(), start.cost()) << heuristic;
    }
  }
}

// --------------------------------------------------------------- annealing ---

TEST(Annealing, NeverWorseThanSeedAndDeterministic) {
  const auto inst = small_field(3);
  const auto start = design_from_tree(
      inst.problem, inst.problem.solve_node_weighted(), kEval);
  ASSERT_TRUE(start.feasible);
  AnnealingSchedule sched;
  sched.iterations = 200;
  const auto a = simulated_annealing(inst.problem, start, kEval, sched, 11);
  const auto b = simulated_annealing(inst.problem, start, kEval, sched, 11);
  EXPECT_LE(a.cost(), start.cost());
  EXPECT_EQ(a.cost(), b.cost());
  EXPECT_EQ(a.nodes, b.nodes);
  // A different walk may find a different design, but the guarantee holds.
  const auto c = simulated_annealing(inst.problem, start, kEval, sched, 12);
  EXPECT_LE(c.cost(), start.cost());
}

// ------------------------------------------------------------ exact oracle ---

TEST(ExactOracle, NoHeuristicBeatsExhaustiveEnumeration) {
  // Tiny (<= 10 node) instances: the brute-force Steiner enumeration is
  // the ground truth; every heuristic must land in [exact, infinity), and
  // the portfolio must also stay <= Klein-Ravi.
  Rng rng(404);
  for (int trial = 0; trial < 12; ++trial) {
    graph::Graph g;
    const std::size_t n = 6 + rng.next_below(5);  // 6..10 nodes
    for (std::size_t v = 0; v < n; ++v)
      g.add_node(0.5 + rng.uniform());  // idle weights in [0.5, 1.5)
    // Random connected-ish graph: a ring plus chords.
    for (std::size_t v = 0; v < n; ++v)
      g.add_edge(static_cast<graph::NodeId>(v),
                 static_cast<graph::NodeId>((v + 1) % n),
                 0.5 + rng.uniform());
    const std::size_t chords = n;
    for (std::size_t c = 0; c < chords; ++c) {
      const auto u = static_cast<graph::NodeId>(rng.next_below(n));
      const auto v = static_cast<graph::NodeId>(rng.next_below(n));
      if (u != v) g.add_edge(u, v, 0.5 + 2.0 * rng.uniform());
    }
    core::NetworkDesignProblem p(std::move(g));
    const auto s = static_cast<graph::NodeId>(rng.next_below(n));
    auto d = static_cast<graph::NodeId>(rng.next_below(n));
    if (d == s) d = static_cast<graph::NodeId>((d + 1) % n);
    p.add_demand({s, d, 1.0});
    p.add_demand({d, static_cast<graph::NodeId>((s + n / 2) % n), 1.0});

    const auto exact = exact_design(p);
    ASSERT_TRUE(exact.feasible) << "trial " << trial;

    HeuristicOptions ho;
    ho.starts = 6;
    ho.anneal_iterations = 120;
    // Non-binding budget so the *_lifetime registry twins run too: with no
    // node ever overloaded they score pure Eq. 5 and the oracle bound
    // applies to them unchanged.
    ho.battery_budget_j = 1e9;
    double kr_cost = 0.0;
    for (const auto& name : heuristic_names()) {
      const auto cand = heuristic_by_name(name).run(p, ho, 1);
      ASSERT_TRUE(cand.feasible) << name << " trial " << trial;
      EXPECT_GE(cand.cost(), exact.cost() - 1e-9)
          << name << " beat the exact optimum in trial " << trial;
      if (name == "klein_ravi") kr_cost = cand.cost();
      if (name == "portfolio") {
        EXPECT_LE(cand.cost(), kr_cost) << "trial " << trial;
        // On instances this small the multi-start portfolio should reach
        // the optimum outright.
        EXPECT_NEAR(cand.cost(), exact.cost(), 1e-9) << "trial " << trial;
      }
    }
  }
}

// --------------------------------------------------------------- portfolio ---

TEST(Portfolio, CostNeverExceedsKleinRaviOnRandomFields) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const auto inst = small_field(seed, 60, 6);
    PortfolioOptions po;
    po.starts = 6;
    po.anneal.iterations = 150;
    po.seed = seed;
    const auto result = design_portfolio(inst.problem, po);
    ASSERT_TRUE(result.best.feasible);
    ASSERT_EQ(result.starts.size(), 6u);
    EXPECT_EQ(result.starts[0].seed_kind, "klein_ravi");
    // Start 0 is Klein-Ravi + descent: the portfolio-wide guarantee.
    EXPECT_LE(result.best.cost(), result.starts[0].seeded.cost());
    for (const auto& s : result.starts) {
      if (s.improved.feasible) {
        EXPECT_LE(s.improved.cost(), s.seeded.cost()) << s.seed_kind;
      }
    }
  }
}

TEST(Portfolio, ResultsAreIdenticalForAnyJobsValue) {
  const auto inst = small_field(9, 50, 6);
  PortfolioOptions po;
  po.starts = 7;
  po.anneal.iterations = 100;
  po.seed = 9;
  po.jobs = 1;
  const auto serial = design_portfolio(inst.problem, po);
  po.jobs = 4;
  const auto parallel = design_portfolio(inst.problem, po);
  EXPECT_EQ(serial.best_start, parallel.best_start);
  EXPECT_EQ(serial.best.cost(), parallel.best.cost());
  EXPECT_EQ(serial.best.nodes, parallel.best.nodes);
  ASSERT_EQ(serial.starts.size(), parallel.starts.size());
  for (std::size_t i = 0; i < serial.starts.size(); ++i) {
    EXPECT_EQ(serial.starts[i].seed_kind, parallel.starts[i].seed_kind);
    EXPECT_EQ(serial.starts[i].improved.cost(),
              parallel.starts[i].improved.cost());
    EXPECT_EQ(serial.starts[i].improved.nodes,
              parallel.starts[i].improved.nodes);
  }
}

// ---------------------------------------------------------------- instances ---

TEST(DesignInstance, DeterministicConnectedAndDensityScaled) {
  const auto a = small_field(5);
  const auto b = small_field(5);
  EXPECT_EQ(a.problem.graph().edge_count(), b.problem.graph().edge_count());
  EXPECT_EQ(a.problem.demands().size(), 5u);
  for (std::size_t i = 0; i < a.problem.demands().size(); ++i) {
    EXPECT_EQ(a.problem.demands()[i].source, b.problem.demands()[i].source);
    EXPECT_EQ(a.problem.demands()[i].destination,
              b.problem.demands()[i].destination);
  }
  // §5.2.2 density law: side = 1300 * sqrt(N / 200).
  EXPECT_NEAR(a.field_side, 1300.0 * std::sqrt(40.0 / 200.0), 1e-9);
  // Connected by construction: the node-weighted solver must be feasible.
  EXPECT_TRUE(a.problem.solve_node_weighted().feasible);
}

TEST(DesignInstance, RejectsDegenerateSpecs) {
  DesignInstanceSpec spec;
  spec.node_count = 1;
  EXPECT_THROW(make_design_instance(spec), CheckError);
  spec.node_count = 3;
  spec.demand_count = 0;
  EXPECT_THROW(make_design_instance(spec), CheckError);
  spec.demand_count = 7;  // > 3*2 distinct ordered pairs
  EXPECT_THROW(make_design_instance(spec), CheckError);
}

}  // namespace
}  // namespace eend::opt
