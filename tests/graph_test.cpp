// Unit tests: graph container, shortest paths, MST, connectivity.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/mst.hpp"
#include "graph/shortest_path.hpp"

namespace eend::graph {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 4.0);
  return g;
}

TEST(Graph, BasicConstruction) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, AddNodeGrows) {
  Graph g;
  const NodeId a = g.add_node(1.5);
  const NodeId b = g.add_node();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_DOUBLE_EQ(g.node_weight(a), 1.5);
  EXPECT_DOUBLE_EQ(g.node_weight(b), 0.0);
  g.set_node_weight(b, 3.0);
  EXPECT_DOUBLE_EQ(g.node_weight(b), 3.0);
}

TEST(Graph, EdgeOther) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.edge(e).other(0), 1u);
  EXPECT_EQ(g.edge(e).other(1), 0u);
}

TEST(Graph, InvalidEdgesThrow) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), CheckError);         // self loop
  EXPECT_THROW(g.add_edge(0, 5), CheckError);         // bad node
  EXPECT_THROW(g.add_edge(0, 1, -1.0), CheckError);   // negative weight
}

TEST(Graph, ParallelEdgesPickMinWeight) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight_between(0, 1), 2.0);
}

TEST(Dijkstra, TriangleShortestPath) {
  const Graph g = triangle();
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.distance[2], 3.0);  // 0->1->2 beats direct 4.0
  EXPECT_EQ(t.path_to(2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(Dijkstra, UnreachableNodes) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto t = dijkstra(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_TRUE(t.path_to(2).empty());
}

TEST(Dijkstra, NodeCostFolding) {
  // 0-1-2 vs 0-3-2: equal edge weights, node 1 expensive.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 2, 1.0);
  const auto cost = [](NodeId v) { return v == 1 ? 10.0 : 0.0; };
  const auto t = dijkstra(g, 0, cost);
  EXPECT_EQ(t.path_to(2), (std::vector<NodeId>{0, 3, 2}));
}

TEST(BellmanFord, MatchesDijkstraOnTriangle) {
  const Graph g = triangle();
  const auto d = dijkstra(g, 0);
  const auto b = bellman_ford(g, 0);
  for (NodeId v = 0; v < 3; ++v)
    EXPECT_DOUBLE_EQ(d.distance[v], b.distance[v]);
}

TEST(PathCost, SumsEdges) {
  const Graph g = triangle();
  const std::vector<NodeId> path{0, 1, 2};
  EXPECT_DOUBLE_EQ(path_cost(g, path), 3.0);
  EXPECT_EQ(path_hops(path), 2u);
  const std::vector<NodeId> broken{2, 0, 1};
  EXPECT_DOUBLE_EQ(path_cost(g, broken), 5.0);
}

TEST(Mst, TriangleTakesCheapEdges) {
  const Graph g = triangle();
  const auto m = prim_mst(g);
  EXPECT_TRUE(m.connected);
  EXPECT_EQ(m.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(m.total_weight, 3.0);
}

TEST(Mst, DisconnectedGraphReported) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto m = prim_mst(g, 0);
  EXPECT_FALSE(m.connected);
  EXPECT_EQ(m.edges.size(), 1u);
}

TEST(Mst, EmptyGraph) {
  Graph g;
  const auto m = prim_mst(g);
  EXPECT_TRUE(m.connected);
  EXPECT_TRUE(m.edges.empty());
}

TEST(Connectivity, Components) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_TRUE(c.same(0, 2));
  EXPECT_FALSE(c.same(0, 3));
  EXPECT_FALSE(is_connected(g));
  g.add_edge(2, 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, DemandsSatisfiableRespectsActiveSet) {
  Graph g(4);  // chain 0-1-2-3
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<Demand> demands{{0, 3, 1.0}};
  std::vector<bool> all(4, true);
  EXPECT_TRUE(demands_satisfiable(g, demands, all));
  std::vector<bool> cut = all;
  cut[2] = false;  // relay removed
  EXPECT_FALSE(demands_satisfiable(g, demands, cut));
}

TEST(Connectivity, BfsHops) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[3], 3u);
}

}  // namespace
}  // namespace eend::graph
