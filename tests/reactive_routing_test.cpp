// Unit tests: the reactive protocol family — discovery, source routing,
// caching, route errors, metric behavior, TITAN participation.
#include <gtest/gtest.h>

#include <memory>

#include "routing/reactive.hpp"

namespace eend::routing {
namespace {

/// Hand-wired multi-node rig with explicit positions, always-active power
/// and no PSM: isolates routing behavior from sleep scheduling.
struct Rig {
  sim::Simulator sim;
  phy::Propagation prop{energy::cabletron(), {}};
  mac::Channel ch{sim, prop};
  std::vector<std::unique_ptr<mac::NodeRadio>> radios;
  std::vector<std::unique_ptr<mac::Mac>> macs;
  std::vector<std::unique_ptr<power::AlwaysActive>> power;
  std::vector<std::unique_ptr<ReactiveRouting>> routing;
  std::vector<mac::Packet> delivered;
  ReactiveConfig cfg;
  bool tpc = false;

  void add(double x, double y) {
    auto r = std::make_unique<mac::NodeRadio>(
        static_cast<mac::NodeId>(radios.size()), phy::Position{x, y},
        energy::cabletron(), sim);
    ch.register_radio(r.get());
    radios.push_back(std::move(r));
  }

  void wire() {
    ch.freeze_topology();
    for (std::size_t i = 0; i < radios.size(); ++i) {
      radios[i]->begin_metering(energy::RadioMode::Idle);
      macs.push_back(std::make_unique<mac::Mac>(
          sim, ch, *radios[i], nullptr, Rng(300 + i), mac::MacConfig{}));
      power.push_back(std::make_unique<power::AlwaysActive>());
    }
    for (std::size_t i = 0; i < radios.size(); ++i) {
      NodeEnv env;
      env.id = static_cast<mac::NodeId>(i);
      env.sim = &sim;
      env.channel = &ch;
      env.mac = macs[i].get();
      env.radio = radios[i].get();
      env.power = power[i].get();
      env.rng = Rng(400 + i);
      env.tpc_data = tpc;
      env.neighbor_is_am = [](mac::NodeId) { return true; };
      env.deliver_app = [this](const mac::Packet& p) {
        delivered.push_back(p);
      };
      routing.push_back(std::make_unique<ReactiveRouting>(std::move(env), cfg));
    }
    for (auto& r : routing) r->start();
  }

  void send(mac::NodeId from, mac::NodeId to, int flow = 0) {
    mac::Packet p;
    p.uid = delivered.size() + 1000;
    p.flow_id = flow;
    p.origin = from;
    p.final_dest = to;
    p.size_bits = 1024;
    p.created_at = sim.now();
    routing[from]->send_data(std::move(p));
  }
};

TEST(ReactiveRouting, DiscoversMultiHopRoute) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);  // 0 cannot reach 2 directly (range 250)
  r.wire();
  r.send(0, 2);
  r.sim.run_until(5.0);
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].final_dest, 2u);
  EXPECT_EQ(r.routing[0]->cached_route(2),
            (std::vector<mac::NodeId>{0, 1, 2}));
}

TEST(ReactiveRouting, SecondPacketUsesCacheWithoutNewDiscovery) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.wire();
  r.send(0, 2);
  r.sim.run_until(5.0);
  const auto discoveries = r.routing[0]->stats().discoveries;
  r.send(0, 2);
  r.sim.run_until(10.0);
  EXPECT_EQ(r.delivered.size(), 2u);
  EXPECT_EQ(r.routing[0]->stats().discoveries, discoveries);
}

TEST(ReactiveRouting, BufferedPacketsFlushAfterDiscovery) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.wire();
  for (int i = 0; i < 5; ++i) r.send(0, 2);
  r.sim.run_until(5.0);
  EXPECT_EQ(r.delivered.size(), 5u);
}

TEST(ReactiveRouting, HopMetricPrefersFewerHops) {
  Rig r;
  // Direct 240 m link vs 2-hop detour.
  r.add(0, 0);
  r.add(240, 0);   // destination, directly reachable
  r.add(120, 50);  // potential relay
  r.wire();
  r.send(0, 1);
  r.sim.run_until(5.0);
  EXPECT_EQ(r.routing[0]->cached_route(1),
            (std::vector<mac::NodeId>{0, 1}));
}

TEST(ReactiveRouting, MtprMetricPrefersShortHops) {
  Rig r;
  r.cfg.metric = LinkMetric::Mtpr;
  r.add(0, 0);
  r.add(240, 0);   // destination: direct = Pt(240)
  r.add(120, 0);   // midpoint relay: 2 x Pt(120) << Pt(240) for d^4 loss
  r.wire();
  r.send(0, 1);
  r.sim.run_until(5.0);
  EXPECT_EQ(r.routing[0]->cached_route(1),
            (std::vector<mac::NodeId>{0, 2, 1}));
}

TEST(ReactiveRouting, MtprPlusChargesFixedCostsPerHop) {
  // With Pbase + Prx in the metric, an extra short hop no longer pays off
  // for Cabletron (fixed costs dominate Pt).
  Rig r;
  r.cfg.metric = LinkMetric::MtprPlus;
  r.add(0, 0);
  r.add(240, 0);
  r.add(120, 0);
  r.wire();
  r.send(0, 1);
  r.sim.run_until(5.0);
  EXPECT_EQ(r.routing[0]->cached_route(1),
            (std::vector<mac::NodeId>{0, 1}));
}

TEST(ReactiveRouting, UnreachableDestinationDropsBuffered) {
  Rig r;
  r.cfg.discovery_timeout_s = 0.2;
  r.cfg.max_discovery_tries = 2;
  r.add(0, 0);
  r.add(5000, 0);  // unreachable island
  r.wire();
  r.send(0, 1);
  r.sim.run_until(10.0);
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.routing[0]->stats().drops_no_route, 1u);
}

TEST(ReactiveRouting, RouteErrorOnDeadRelayTriggersRediscovery) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);    // relay A
  r.add(400, 0);    // destination
  r.add(210, 120);  // alternate relay B (in range of both ends)
  r.wire();
  r.send(0, 2);
  r.sim.run_until(5.0);
  ASSERT_EQ(r.delivered.size(), 1u);

  // Kill whichever relay the route used; traffic must recover via the other.
  const auto route = r.routing[0]->cached_route(2);
  ASSERT_EQ(route.size(), 3u);
  r.radios[route[1]]->fail_permanently();
  r.sim.schedule_at(6.0, [&] { r.send(0, 2); });
  r.sim.schedule_at(12.0, [&] { r.send(0, 2); });
  r.sim.run_until(30.0);
  // The first post-failure packet may be lost (carried the stale route);
  // recovery must deliver at least one more.
  EXPECT_GE(r.delivered.size(), 2u);
  const auto newroute = r.routing[0]->cached_route(2);
  ASSERT_EQ(newroute.size(), 3u);
  EXPECT_NE(newroute[1], route[1]);
}

TEST(ReactiveRouting, TpcUsesLowerPowerOnShortHops) {
  Rig with, without;
  for (Rig* r : {&with, &without}) {
    r->tpc = r == &with;
    r->add(0, 0);
    r->add(100, 0);
    r->wire();
    r->send(0, 1);
    r->sim.run_until(2.0);
    ASSERT_EQ(r->delivered.size(), 1u);
    for (auto& rad : r->radios) rad->finish_metering();
  }
  EXPECT_LT(with.radios[0]->meter().data_energy(),
            without.radios[0]->meter().data_energy());
}

TEST(ReactiveRouting, ControlPacketsAlwaysAtMaxPower) {
  // Even with TPC, RREQs are broadcast at max power: a far neighbor (240 m)
  // must receive the flood from a source whose data hop is short.
  Rig r;
  r.tpc = true;
  r.add(0, 0);
  r.add(50, 0);
  r.add(240, 0);
  r.wire();
  r.send(0, 1);
  r.sim.run_until(2.0);
  // Node 2 heard the RREQ (it recorded it as seen and would answer
  // discovery for itself); verify via its routing stats: it received the
  // broadcast and did not forward (target replied first, cost rule).
  EXPECT_EQ(r.delivered.size(), 1u);
  EXPECT_GE(r.radios[2]->frames_received(), 1u);
}

TEST(ReactiveRouting, JointHMetricAddsIdlePenaltyForPsmRelays) {
  const auto card = energy::cabletron();
  const double am = link_cost(LinkMetric::JointH, card, 100.0, true, 1.0);
  const double ps = link_cost(LinkMetric::JointH, card, 100.0, false, 1.0);
  EXPECT_NEAR(ps - am, card.p_idle, 1e-12);
}

TEST(ReactiveRouting, JointHRateScalesCommunicationTerm) {
  const auto card = energy::cabletron();
  const double full = link_cost(LinkMetric::JointH, card, 100.0, true, 1.0);
  const double tenth = link_cost(LinkMetric::JointH, card, 100.0, true, 0.1);
  EXPECT_NEAR(full, 10.0 * tenth, 1e-9);
}

TEST(ReactiveRouting, StatsCountDiscoveryTraffic) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.wire();
  r.send(0, 2);
  r.sim.run_until(5.0);
  EXPECT_GE(r.routing[0]->stats().rreq_sent, 1u);
  EXPECT_GE(r.routing[1]->stats().rreq_forwarded, 1u);
  EXPECT_GE(r.routing[2]->stats().rrep_sent, 1u);
  EXPECT_EQ(r.routing[1]->stats().data_forwarded, 1u);
  EXPECT_EQ(r.routing[2]->stats().data_delivered, 1u);
  EXPECT_TRUE(r.routing[1]->carried_data());
  EXPECT_TRUE(r.routing[2]->carried_data());  // destination counts too
}

}  // namespace
}  // namespace eend::routing
