// Unit tests: discrete-event simulator and timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/baseline_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eend::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, FifoAmongEqualTimes) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.schedule_at(3.0, [&] { ++fired; });
  s.run_until(2.0);
  EXPECT_EQ(fired, 2);  // events at exactly t=2 run
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run_until(5.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_in(1.0, chain);
  };
  s.schedule_in(1.0, chain);
  s.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.schedule_at(2.0, [] {});
  s.run_until(2.0);
  EXPECT_THROW(s.schedule_at(1.0, [] {}), CheckError);
  EXPECT_THROW(s.schedule_in(-0.5, [] {}), CheckError);
}

TEST(Simulator, QueueSizeTracksPending) {
  Simulator s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.queue_size(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.queue_size(), 1u);
  s.run_all();
  EXPECT_EQ(s.queue_size(), 0u);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelHeavyHeapIsCompacted) {
  // Mass cancellation must not leave the heap full of tombstones: once
  // stale entries exceed the live ones the heap is rebuilt in place.
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i)
    ids.push_back(s.schedule_at(1.0 + i, [] {}));
  int live = 0;
  for (int i = 0; i < 10000; ++i) {
    if (i % 100 == 0) {
      ++live;
      continue;  // keep every 100th event
    }
    EXPECT_TRUE(s.cancel(ids[i]));
  }
  EXPECT_EQ(s.queue_size(), static_cast<std::size_t>(live));
  EXPECT_LE(s.heap_size(), 3 * s.queue_size() + 64);

  // The survivors still fire, in time order.
  std::uint64_t before = s.executed_events();
  s.run_all();
  EXPECT_EQ(s.executed_events() - before, static_cast<std::uint64_t>(live));
  EXPECT_DOUBLE_EQ(s.now(), 1.0 + 9900);
}

TEST(Simulator, CompactionPreservesOrderAcrossRescheduling) {
  // Interleave cancels with new schedules so compaction happens while the
  // heap is hot, then verify execution order is still (time, seq).
  Simulator s;
  std::vector<double> fired;
  std::vector<EventId> cancel_me;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i)
      cancel_me.push_back(
          s.schedule_at(500.0 + round * 40 + i, [] { FAIL(); }));
    const double at = 100.0 - round;  // reverse order insertion
    s.schedule_at(at, [&fired, at] { fired.push_back(at); });
    for (EventId id : cancel_me) s.cancel(id);
    cancel_me.clear();
  }
  EXPECT_LE(s.heap_size(), 3 * s.queue_size() + 64);
  s.run_all();
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LT(fired[i - 1], fired[i]);
}

TEST(Simulator, CancelHeavyTimerWorkloadMatchesNoCompactionBaseline) {
  // Drive the ODPM/PSM idiom at scale — waves of keep-alive timers where
  // most are cancelled before firing — and check both halves of the
  // compaction contract at once:
  //   (1) heap_size() stays within the documented bound (a small constant
  //       plus three times the live queue) throughout the run;
  //   (2) the survivors fire in exactly the order a tombstone-free
  //       reference queue (plain stable sort by (time, insertion-seq))
  //       would execute them — compaction never perturbs ordering.
  Simulator s;
  Rng rng(2024);

  struct Expected {
    double at;
    int tag;  // insertion order among survivors = seq tie-break
  };
  std::vector<Expected> expected;  // the no-compaction baseline
  std::vector<int> fired;
  std::size_t max_heap_over_bound = 0;
  // Sampled from inside every firing callback too, so the bound is also
  // observed mid-drain (pops interleaved with tombstone reclamation), not
  // just at the between-waves checkpoints.
  std::size_t drain_violations = 0;

  int tag = 0;
  std::vector<EventId> wave;
  for (int round = 0; round < 200; ++round) {
    wave.clear();
    std::vector<Expected> wave_expected;
    for (int i = 0; i < 50; ++i) {
      const double at = s.now() + rng.uniform(0.1, 50.0);
      const int t = tag++;
      wave.push_back(s.schedule_at(at, [&fired, &s, &drain_violations, t] {
        fired.push_back(t);
        if (s.heap_size() > 3 * s.queue_size() + 64) ++drain_violations;
      }));
      wave_expected.push_back({at, t});
    }
    // Cancel 45 of 50 — keep-alive churn where the timer usually restarts
    // before expiry. Keep indices {0, 10, 20, 30, 40}.
    for (int i = 0; i < 50; ++i) {
      if (i % 10 == 0) {
        expected.push_back(wave_expected[i]);
      } else {
        ASSERT_TRUE(s.cancel(wave[i]));
      }
    }
    if (s.heap_size() > 3 * s.queue_size() + 64)
      max_heap_over_bound =
          std::max(max_heap_over_bound, s.heap_size());
    // Let part of the backlog drain so waves overlap in time.
    s.run_until(s.now() + 5.0);
  }
  EXPECT_EQ(max_heap_over_bound, 0u)
      << "heap grew past 3*queue_size()+64 during the churn";
  s.run_all();
  EXPECT_EQ(drain_violations, 0u)
      << "heap bound violated while draining events";

  // Reference execution order: sort by time, stable in insertion order
  // (ties share a wave, and seq increases with tag).
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.at < b.at;
                   });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(fired[i], expected[i].tag) << "divergence at event " << i;
}

TEST(Timer, RestartChurnBoundsHeap) {
  // The ODPM keep-alive idiom: a timer restarted far more often than it
  // fires. Each restart cancels the previous event; compaction keeps the
  // heap from growing with the churn count.
  Simulator s;
  Timer t(s, [] {});
  for (int i = 0; i < 5000; ++i) t.restart(1.0);
  EXPECT_EQ(s.queue_size(), 1u);
  EXPECT_LE(s.heap_size(), 3 * s.queue_size() + 64);
}

TEST(Timer, FiresOnceAfterDelay) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.restart(2.0);
  EXPECT_TRUE(t.armed());
  s.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RestartReplacesExpiry) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.restart(2.0);
  s.run_until(1.0);
  t.restart(5.0);  // now expires at 6.0
  s.run_until(5.9);
  EXPECT_EQ(fired, 0);
  s.run_until(6.1);
  EXPECT_EQ(fired, 1);
}

TEST(Timer, ExtendToOnlyExtends) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.restart(5.0);
  t.extend_to(2.0);  // shorter: ignored
  EXPECT_DOUBLE_EQ(t.expiry(), 5.0);
  t.extend_to(8.0);  // longer: applied
  EXPECT_DOUBLE_EQ(t.expiry(), 8.0);
  s.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelStopsExpiry) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.restart(1.0);
  t.cancel();
  s.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DestructorCancels) {
  Simulator s;
  int fired = 0;
  {
    Timer t(s, [&] { ++fired; });
    t.restart(1.0);
  }
  s.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RunUntilLeavesClockAtEndEvenWhenQueueDrainsEarly) {
  // The documented contract (and the one every golden run relies on): the
  // clock lands at exactly `end`, whether the queue drained before `end`,
  // at `end`, or was empty all along. The header once promised
  // min(end, last event time); the implementation — and every consumer —
  // wanted `end`, so `end` is the pinned behavior.
  Simulator s;
  s.run_until(4.0);  // empty queue: clock still advances
  EXPECT_DOUBLE_EQ(s.now(), 4.0);
  s.schedule_at(5.0, [] {});
  s.run_until(9.0);  // last event at 5.0 < end
  EXPECT_DOUBLE_EQ(s.now(), 9.0);
  // "Between the last event and end" is the past now.
  EXPECT_THROW(s.schedule_at(6.0, [] {}), CheckError);
  s.schedule_at(9.0, [] {});  // exactly now() is allowed
  s.run_until(9.0);           // end == now is allowed, runs the event
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Simulator, HandlerCancelsOtherPendingEvent) {
  // Reentrancy: a firing handler cancels a later event — including one at
  // the same timestamp (later seq), which must not fire.
  Simulator s;
  int fired = 0;
  EventId same_time = kInvalidEvent, later = kInvalidEvent;
  s.schedule_at(1.0, [&] {
    EXPECT_TRUE(s.cancel(same_time));
    EXPECT_TRUE(s.cancel(later));
  });
  same_time = s.schedule_at(1.0, [&] { ++fired; });
  later = s.schedule_at(2.0, [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, HandlerCancelSelfIsNoOp) {
  // By the time a handler runs its own id is released (erase-before-call),
  // so self-cancel returns false and pending(self) is false.
  Simulator s;
  EventId self = kInvalidEvent;
  bool checked = false;
  self = s.schedule_at(1.0, [&] {
    EXPECT_FALSE(s.pending(self));
    EXPECT_FALSE(s.cancel(self));
    checked = true;
  });
  s.run_all();
  EXPECT_TRUE(checked);
}

TEST(Simulator, HandlerSchedulesAtExactlyNow) {
  // Scheduling at exactly now() from inside a handler is legal and the new
  // event fires in the same run, after every previously queued event at
  // that time (seq order).
  Simulator s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(0);
    s.schedule_at(1.0, [&] { order.push_back(2); });
    s.schedule_in(0.0, [&] { order.push_back(3); });
  });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(Simulator, StaleIdAfterSlotReuseDoesNotCancelNewEvent) {
  // EventIds encode (slot, generation): after the slot is recycled, the old
  // handle must neither read as pending nor cancel the new tenant.
  Simulator s;
  const EventId old_id = s.schedule_at(1.0, [] {});
  ASSERT_TRUE(s.cancel(old_id));
  // The freed slot is reused by the very next schedule (LIFO free list).
  int fired = 0;
  const EventId new_id = s.schedule_at(1.0, [&] { ++fired; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(s.pending(old_id));
  EXPECT_FALSE(s.cancel(old_id));  // stale: must not hit the new event
  EXPECT_TRUE(s.pending(new_id));
  s.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, LargeClosuresTakeThePooledPathAndRecycle) {
  // Captures beyond kInlineClosure bytes go to the pool; cancelled or fired,
  // their blocks return to the free lists and get reused.
  Simulator s;
  struct Big {
    double a[12];  // 96 bytes > kInlineClosure
  };
  static_assert(sizeof(Big) > Simulator::kInlineClosure);
  double sum = 0.0;
  Big b{};
  b.a[0] = 2.5;
  b.a[11] = 0.5;
  s.schedule_at(1.0, [b, &sum] { sum += b.a[0] + b.a[11]; });
  const EventId dropped = s.schedule_at(2.0, [b, &sum] { sum += 100.0; });
  EXPECT_TRUE(s.cancel(dropped));
  s.run_all();
  EXPECT_DOUBLE_EQ(sum, 3.0);
  const std::size_t blocks = s.pool().allocated_blocks();
  EXPECT_GE(blocks, 1u);
  // Steady state: sequential schedule/fire churn recycles one block from
  // the free lists instead of allocating per event.
  for (int i = 0; i < 100; ++i) {
    s.schedule_in(1.0, [b, &sum] { sum += 0.0; });
    s.run_all();
  }
  EXPECT_EQ(s.pool().allocated_blocks(), blocks);
}

TEST(Simulator, TombstoneBoundHoldsUnderCancelFromHandlerChurn) {
  // Cancels issued *from inside handlers* while the queue is draining:
  // the storage bound heap_size() <= 3*queue_size() + 64 must hold at
  // every observation point, not just between externally driven waves.
  Simulator s;
  Rng rng(77);
  std::vector<EventId> pending_ids;
  std::size_t violations = 0;
  std::function<void()> churn = [&] {
    // Cancel roughly half of what is outstanding, then refill.
    for (std::size_t i = 0; i < pending_ids.size(); i += 2)
      s.cancel(pending_ids[i]);
    pending_ids.clear();
    if (s.now() < 200.0) {
      for (int i = 0; i < 64; ++i)
        pending_ids.push_back(
            s.schedule_in(rng.uniform(0.1, 40.0), [] {}));
      s.schedule_in(1.0, churn);
    }
    if (s.heap_size() > 3 * s.queue_size() + 64) ++violations;
  };
  s.schedule_in(0.0, churn);
  s.run_all();
  EXPECT_EQ(violations, 0u);
}

TEST(Simulator, DifferentialFuzzAgainstBaselineHeap) {
  // The ordering oracle: random schedule/cancel/run interleavings must
  // execute in bit-identical order on the ladder-queue engine and on the
  // frozen pre-PR binary heap. This is the property that keeps every
  // golden byte-identical across the engine swap.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Simulator lq;
    BaselineSimulator heap;
    Rng rng(seed);
    std::vector<int> lq_order, heap_order;
    std::vector<EventId> lq_ids;
    std::vector<BaselineSimulator::EventId> heap_ids;
    int tag = 0;
    for (int round = 0; round < 60; ++round) {
      const int n = static_cast<int>(rng.uniform_int(1, 40));
      for (int i = 0; i < n; ++i) {
        // Mix horizons: dense near-future, sparse far-future tail, and
        // exact ties — the regimes where bucket routing could diverge.
        double delay;
        const double u = rng.uniform();
        if (u < 0.5)
          delay = rng.uniform(0.0, 2.0);
        else if (u < 0.8)
          delay = rng.uniform(0.0, 500.0);
        else if (u < 0.9)
          delay = 1.0;  // deliberate collisions
        else
          delay = rng.uniform(0.0, 50000.0);
        const int t = tag++;
        lq_ids.push_back(lq.schedule_in(delay, [&lq_order, t] {
          lq_order.push_back(t);
        }));
        heap_ids.push_back(heap.schedule_in(delay, [&heap_order, t] {
          heap_order.push_back(t);
        }));
      }
      // Cancel a random subset — decisions mirrored across both engines.
      for (std::size_t i = 0; i < lq_ids.size(); ++i) {
        if (rng.bernoulli(0.4)) {
          const bool a = lq.cancel(lq_ids[i]);
          const bool b = heap.cancel(heap_ids[i]);
          EXPECT_EQ(a, b);
        }
      }
      lq_ids.clear();
      heap_ids.clear();
      const double horizon = rng.uniform(0.0, 40.0);
      lq.run_until(lq.now() + horizon);
      heap.run_until(heap.now() + horizon);
      ASSERT_EQ(lq.now(), heap.now());
      ASSERT_EQ(lq.queue_size(), heap.queue_size());
    }
    lq.run_all();
    heap.run_all();
    ASSERT_EQ(lq_order.size(), heap_order.size()) << "seed " << seed;
    for (std::size_t i = 0; i < lq_order.size(); ++i)
      ASSERT_EQ(lq_order[i], heap_order[i])
          << "order divergence at event " << i << ", seed " << seed;
    EXPECT_EQ(lq.executed_events(), heap.executed_events());
    EXPECT_DOUBLE_EQ(lq.now(), heap.now());
  }
}

TEST(Timer, ExpiryResetsAfterFireAndCancel) {
  // expiry() is only meaningful while armed(); it reads 0.0 after the
  // timer fires or is cancelled instead of reporting the stale timestamp
  // of an expiry that no longer exists.
  Simulator s;
  Timer t(s, [] {});
  EXPECT_DOUBLE_EQ(t.expiry(), 0.0);  // never armed
  t.restart(3.0);
  EXPECT_TRUE(t.armed());
  EXPECT_DOUBLE_EQ(t.expiry(), 3.0);  // exact absolute expiry while armed
  s.run_until(10.0);
  EXPECT_FALSE(t.armed());
  EXPECT_DOUBLE_EQ(t.expiry(), 0.0);  // fired: reset, not stale 3.0
  t.restart(4.0);
  EXPECT_DOUBLE_EQ(t.expiry(), 14.0);
  t.cancel();
  EXPECT_FALSE(t.armed());
  EXPECT_DOUBLE_EQ(t.expiry(), 0.0);  // cancelled: reset, not stale 14.0
}

}  // namespace
}  // namespace eend::sim
