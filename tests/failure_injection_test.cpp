// Failure-injection tests: nodes dying mid-run; protocols must recover
// (reactive: RERR + rediscovery; proactive: break advertisements) and the
// accounting must stay consistent.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace eend {
namespace {

net::ScenarioConfig dense_scenario() {
  net::ScenarioConfig sc;
  sc.node_count = 30;           // dense: plenty of alternate relays
  sc.field_w = sc.field_h = 500.0;
  sc.flow_count = 3;
  sc.rate_pps = 2.0;
  sc.duration_s = 120.0;
  sc.seed = 42;
  return sc;
}

/// Pick victims that are neither sources nor destinations.
std::vector<mac::NodeId> pick_victims(const net::Network& n, std::size_t k) {
  std::set<mac::NodeId> endpoints;
  for (const auto& f : n.flows()) {
    endpoints.insert(f.source);
    endpoints.insert(f.destination);
  }
  std::vector<mac::NodeId> victims;
  for (mac::NodeId v = 0; victims.size() < k &&
                          v < static_cast<mac::NodeId>(n.node_count());
       ++v)
    if (endpoints.count(v) == 0) victims.push_back(v);
  return victims;
}

TEST(FailureInjection, DsrRecoversFromRelayDeaths) {
  net::Network n(dense_scenario(), net::StackSpec::dsr_active());
  for (mac::NodeId v : pick_victims(n, 5))
    n.schedule_node_failure(v, 60.0);
  const auto r = n.run();
  // Five arbitrary non-endpoint deaths in a dense network: most traffic
  // still arrives (rediscovery around the holes).
  EXPECT_GT(r.delivery_ratio, 0.85);
}

TEST(FailureInjection, OdpmStackSurvivesDeaths) {
  net::Network n(dense_scenario(), net::StackSpec::dsr_odpm_pc());
  for (mac::NodeId v : pick_victims(n, 5))
    n.schedule_node_failure(v, 60.0);
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.75);
}

TEST(FailureInjection, TitanSurvivesBackboneDeaths) {
  net::Network n(dense_scenario(), net::StackSpec::titan_pc());
  for (mac::NodeId v : pick_victims(n, 5))
    n.schedule_node_failure(v, 60.0);
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.75);
}

TEST(FailureInjection, DsdvAdvertisesBreaksAndReRoutes) {
  net::Network n(dense_scenario(), net::StackSpec::dsdvh_odpm_psm());
  for (mac::NodeId v : pick_victims(n, 3))
    n.schedule_node_failure(v, 60.0);
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.6);
}

TEST(FailureInjection, DeadNodesStopConsumingIdleEnergy) {
  auto sc = dense_scenario();
  net::Network with(sc, net::StackSpec::dsr_active());
  const auto victims = pick_victims(with, 8);
  for (mac::NodeId v : victims) with.schedule_node_failure(v, 10.0);
  const auto rw = with.run();

  net::Network without(sc, net::StackSpec::dsr_active());
  const auto ro = without.run();
  // 8 nodes idle for 110 fewer seconds: total energy clearly lower.
  EXPECT_LT(rw.total_energy_j, ro.total_energy_j - 100.0);
}

TEST(FailureInjection, EnergyAccountingSurvivesFailures) {
  net::Network n(dense_scenario(), net::StackSpec::titan_pc());
  for (mac::NodeId v : pick_victims(n, 5))
    n.schedule_node_failure(v, 30.0);
  const auto r = n.run();
  EXPECT_NEAR(r.total_energy_j,
              r.data_energy_j + r.control_energy_j + r.passive_energy_j,
              1e-6);
}

TEST(FailureInjection, KillingAllRelaysPartitionsGracefully) {
  // Kill every non-endpoint node: delivery can only happen on direct
  // source->destination links; the run must still terminate cleanly.
  auto sc = dense_scenario();
  sc.duration_s = 60.0;
  net::Network n(sc, net::StackSpec::dsr_active());
  for (mac::NodeId v = 0; v < static_cast<mac::NodeId>(n.node_count()); ++v) {
    bool endpoint = false;
    for (const auto& f : n.flows())
      if (f.source == v || f.destination == v) endpoint = true;
    if (!endpoint) n.schedule_node_failure(v, 25.0);
  }
  const auto r = n.run();
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GE(r.delivery_ratio, 0.0);
}

TEST(FailureInjection, FailureBeforeRunThrowsAfterRun) {
  net::Network n(dense_scenario(), net::StackSpec::dsr_active());
  (void)n.run();
  EXPECT_THROW(n.schedule_node_failure(0, 1.0), CheckError);
}

// ----------------------------- lifetime extension (finite batteries) ----

TEST(Lifetime, InfiniteBatteryNeverDies) {
  net::Network n(dense_scenario(), net::StackSpec::dsr_active());
  const auto r = n.run();
  EXPECT_DOUBLE_EQ(r.first_death_s, -1.0);
  EXPECT_EQ(r.depleted_nodes, 0u);
}

TEST(Lifetime, AlwaysActiveDrainsPredictably) {
  auto sc = dense_scenario();
  // Cabletron idle = 0.83 W: a 50 J budget lasts ~60 s of idling.
  sc.battery_capacity_j = 50.0;
  net::Network n(sc, net::StackSpec::dsr_active());
  const auto r = n.run();
  EXPECT_GT(r.first_death_s, 40.0);
  EXPECT_LT(r.first_death_s, 75.0);
  // All nodes idle at the same draw: everyone dies before the run ends.
  EXPECT_EQ(r.depleted_nodes, n.node_count());
}

TEST(Lifetime, PowerManagementExtendsFirstDeath) {
  auto sc = dense_scenario();
  sc.battery_capacity_j = 60.0;
  net::Network active(sc, net::StackSpec::dsr_active());
  const auto ra = active.run();
  net::Network odpm(sc, net::StackSpec::dsr_odpm_pc());
  const auto ro = odpm.run();
  ASSERT_GT(ra.first_death_s, 0.0);
  // ODPM keeps non-relays asleep: the first relay may die early, but far
  // fewer nodes deplete overall.
  EXPECT_LT(ro.depleted_nodes, ra.depleted_nodes);
}

TEST(Lifetime, DeadNetworkStopsDelivering) {
  auto sc = dense_scenario();
  sc.battery_capacity_j = 30.0;  // everyone dies ~36 s in (flows start ~20)
  net::Network n(sc, net::StackSpec::dsr_active());
  const auto r = n.run();
  EXPECT_EQ(r.depleted_nodes, n.node_count());
  EXPECT_LT(r.delivery_ratio, 0.5);
}

}  // namespace
}  // namespace eend
