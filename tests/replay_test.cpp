// Design-replay subsystem tests.
//
//   * exact-mapping suite: a tiny hand-built graph where routed demand
//     paths, per-node energy shares and the lifetime penalty are asserted
//     against closed-form values, and a generated instance whose realized
//     ScenarioConfig (powered-off set, demand-derived flows, rate
//     multipliers) is asserted field by field;
//   * the single-source-of-truth contract: realized CBR rates are exactly
//     rate_pps x the demand's rate multiplier, in demand order;
//   * powered-off semantics: dark radios meter zero energy and the
//     simulated network total is exactly the active nodes' sum;
//   * determinism: replaying the same design twice is bit-identical in
//     every report field;
//   * lifetime scoring: registry classification, the budget requirement,
//     and the penalized objective actually lowering the max per-node load
//     on a pinned instance.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "opt/design_heuristic.hpp"
#include "opt/design_instance.hpp"
#include "replay/replay.hpp"
#include "util/check.hpp"

namespace eend::replay {
namespace {

// --------------------------------------------------- hand-built exactness ---

/// 3-node path 0 -2- 1 -4- 2, node weight 5 everywhere, one demand
/// 0 -> 2 with rate multiplier 3.
core::NetworkDesignProblem hand_problem() {
  graph::Graph g(3);
  for (graph::NodeId v = 0; v < 3; ++v) g.set_node_weight(v, 5.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  core::NetworkDesignProblem p(std::move(g));
  p.add_demand({0, 2, 3.0});
  return p;
}

TEST(NodeLoads, HandGraphSharesAreExact) {
  const core::NetworkDesignProblem p = hand_problem();
  const auto routes = p.try_route_in_subgraph({0, 1, 2});
  ASSERT_TRUE(routes.has_value());
  ASSERT_EQ(routes->size(), 1u);
  EXPECT_EQ(routes->front().path, (std::vector<graph::NodeId>{0, 1, 2}));
  EXPECT_EQ(routes->front().packets, 3.0);  // = the demand's rate multiplier

  analytical::Eq5Params eval;
  eval.t_idle = 7.0;
  eval.t_data_per_packet = 0.5;
  const std::vector<double> loads =
      opt::node_energy_loads(p.graph(), *routes, eval);
  ASSERT_EQ(loads.size(), 3u);
  // Every active node pays idle (7 * 5 = 35); each route edge's data cost
  // (0.5 * 3 * w) splits half/half between its endpoints.
  EXPECT_EQ(loads[0], 35.0 + 0.5 * 0.5 * 3.0 * 2.0);  // 36.5
  EXPECT_EQ(loads[1], 35.0 + 1.5 + 0.5 * 0.5 * 3.0 * 4.0);  // 39.5
  EXPECT_EQ(loads[2], 35.0 + 3.0);  // 38
}

TEST(NodeLoads, LifetimePenaltyIsExactAndChangesCostOnly) {
  const core::NetworkDesignProblem p = hand_problem();
  analytical::Eq5Params eval;
  eval.t_idle = 7.0;
  eval.t_data_per_packet = 0.5;

  const opt::CandidateDesign plain =
      opt::evaluate_design(p, {0, 1, 2}, eval);
  ASSERT_TRUE(plain.feasible);
  // Eq. 5: relay idle (node 1) + data over both edges.
  EXPECT_EQ(plain.score.idle, 35.0);
  EXPECT_EQ(plain.score.data, 0.5 * 3.0 * (2.0 + 4.0));
  // The plain objective skips the load scan entirely (hot search loops).
  EXPECT_EQ(plain.lifetime_penalty, 0.0);
  EXPECT_EQ(plain.max_node_load, 0.0);

  opt::DesignObjective obj(eval);
  obj.battery_budget_j = 38.0;
  obj.overload_penalty = 2.0;
  const opt::CandidateDesign penalized =
      opt::evaluate_design(p, {0, 1, 2}, obj);
  ASSERT_TRUE(penalized.feasible);
  EXPECT_EQ(penalized.max_node_load, 39.5);
  // Only node 1 exceeds the budget: 39.5 - 38 = 1.5 -> penalty 3.
  EXPECT_EQ(penalized.lifetime_penalty, 3.0);
  EXPECT_EQ(penalized.cost(), plain.cost() + 3.0);
  EXPECT_EQ(penalized.score.total(), plain.score.total());
}

// ------------------------------------------------------ realized scenario ---

struct Realized {
  opt::DesignInstanceSpec spec;
  opt::DesignInstance instance;
  opt::CandidateDesign design;
  ReplaySettings settings;
  DesignRealization realization;
};

Realized realize_small(std::uint64_t seed = 3) {
  Realized r;
  r.spec.node_count = 24;
  r.spec.demand_count = 3;
  r.spec.seed = seed;
  r.spec.demand_weights = {1.0, 2.0};  // cycles: 1, 2, 1
  r.instance = opt::make_design_instance(r.spec);
  r.settings.duration_s = 60.0;
  r.settings.rate_pps = 2.0;
  const opt::DesignObjective obj =
      replay_eq5_params(r.settings, r.spec.card);
  r.design = opt::design_from_tree(
      r.instance.problem, r.instance.problem.solve_node_weighted(), obj);
  EEND_REQUIRE(r.design.feasible);
  r.realization =
      realize_design(r.spec, r.instance, r.design, r.settings);
  return r;
}

TEST(Realization, PoweredOffSetIsExactComplement) {
  const Realized r = realize_small();
  std::set<std::size_t> active(r.design.nodes.begin(), r.design.nodes.end());
  std::vector<std::size_t> want_off;
  for (std::size_t id = 0; id < r.spec.node_count; ++id)
    if (!active.count(id)) want_off.push_back(id);
  EXPECT_EQ(r.realization.scenario.powered_off_nodes, want_off);
  EXPECT_EQ(r.realization.active_nodes, active.size());
  EXPECT_EQ(r.realization.powered_off_nodes,
            r.spec.node_count - active.size());
}

TEST(Realization, FlowsMirrorDemandsInOrderWithWeightedRates) {
  const Realized r = realize_small();
  const auto& demands = r.instance.problem.demands();
  const auto& sc = r.realization.scenario;
  ASSERT_EQ(sc.flow_endpoints.size(), demands.size());
  ASSERT_EQ(sc.rate_multipliers.size(), demands.size());
  // Demand weights cycle 1, 2, 1 over the three demands.
  EXPECT_EQ(sc.rate_multipliers, (std::vector<double>{1.0, 2.0, 1.0}));
  const auto flows = net::make_flows(sc);
  ASSERT_EQ(flows.size(), demands.size());
  for (std::size_t j = 0; j < demands.size(); ++j) {
    EXPECT_EQ(sc.flow_endpoints[j].first, demands[j].source);
    EXPECT_EQ(sc.flow_endpoints[j].second, demands[j].destination);
    EXPECT_EQ(flows[j].source, demands[j].source);
    EXPECT_EQ(flows[j].destination, demands[j].destination);
    // Single source of truth: CBR rate = rate_pps x demand multiplier.
    EXPECT_EQ(flows[j].packets_per_s,
              r.settings.rate_pps * demands[j].rate);
  }
}

TEST(Realization, ScenarioReproducesInstancePositionsBitwise) {
  const Realized r = realize_small();
  const auto placed = net::place_nodes(r.realization.scenario);
  ASSERT_EQ(placed.size(), r.instance.positions.size());
  for (std::size_t i = 0; i < placed.size(); ++i) {
    EXPECT_EQ(placed[i].x, r.instance.positions[i].x);
    EXPECT_EQ(placed[i].y, r.instance.positions[i].y);
  }
}

TEST(Realization, RoutesMatchDesignRouting) {
  const Realized r = realize_small();
  const auto routes =
      r.instance.problem.try_route_in_subgraph(r.design.nodes);
  ASSERT_TRUE(routes.has_value());
  ASSERT_EQ(r.realization.routes.size(), routes->size());
  for (std::size_t i = 0; i < routes->size(); ++i) {
    EXPECT_EQ(r.realization.routes[i].path, (*routes)[i].path);
    EXPECT_EQ(r.realization.routes[i].packets, (*routes)[i].packets);
    // Every routed node is active; no route touches a powered-off node.
    for (const graph::NodeId v : r.realization.routes[i].path)
      EXPECT_TRUE(std::binary_search(r.design.nodes.begin(),
                                     r.design.nodes.end(), v));
  }
}

TEST(Realization, InfeasibleDesignIsRejected) {
  const Realized r = realize_small();
  opt::CandidateDesign bad = r.design;
  bad.feasible = false;
  EXPECT_THROW(realize_design(r.spec, r.instance, bad, r.settings),
               CheckError);
}

// ------------------------------------------------- scenario-level checks ---

TEST(ScenarioValidation, RejectsBadPoweredOffAndEndpointLists) {
  net::ScenarioConfig sc = net::ScenarioConfig::small_network();
  sc.powered_off_nodes = {sc.node_count};  // out of range
  EXPECT_THROW(sc.validate(), CheckError);
  sc.powered_off_nodes = {3, 3};
  EXPECT_THROW(sc.validate(), CheckError);
  sc.powered_off_nodes.clear();
  sc.flow_endpoints = {{1, 1}};  // self-loop
  EXPECT_THROW(sc.validate(), CheckError);
  sc.flow_endpoints = {{1, 2}, {1, 2}};  // duplicate pair
  EXPECT_THROW(sc.validate(), CheckError);
  sc.flow_endpoints = {{1, 2}};
  sc.powered_off_nodes = {2};  // endpoint powered off
  EXPECT_THROW(sc.validate(), CheckError);
  sc.powered_off_nodes = {3};
  sc.validate();  // endpoint-disjoint powered-off set is fine
  sc.powered_off_nodes.clear();
  for (std::size_t id = 0; id < sc.node_count; ++id)
    sc.powered_off_nodes.push_back(id);
  sc.flow_endpoints.clear();
  EXPECT_THROW(sc.validate(), CheckError);  // cannot power off everything
}

TEST(PoweredOff, DarkRadiosMeterZeroAndTotalsComeFromActiveNodes) {
  const Realized r = realize_small();
  net::Network network(r.realization.scenario, r.settings.stack);
  const metrics::RunResult result = network.run();

  std::set<std::size_t> off(r.realization.scenario.powered_off_nodes.begin(),
                            r.realization.scenario.powered_off_nodes.end());
  double active_sum = 0.0;
  for (std::size_t id = 0; id < network.node_count(); ++id) {
    const double total =
        network.radio(static_cast<mac::NodeId>(id)).meter().total();
    if (off.count(id)) {
      EXPECT_EQ(total, 0.0) << "powered-off node " << id
                            << " consumed energy";
    } else {
      EXPECT_GT(total, 0.0) << "active node " << id << " metered nothing";
      active_sum += total;
    }
  }
  EXPECT_DOUBLE_EQ(result.total_energy_j, active_sum);
  // Demands route inside the design, so traffic must actually flow.
  EXPECT_GT(result.delivered, 0u);
}

// ------------------------------------------------------------ determinism ---

TEST(Replay, SameDesignReplaysBitIdentically) {
  const Realized r = realize_small(7);
  const ReplayReport a =
      replay_design(r.spec, r.instance, r.design, r.settings);
  const ReplayReport b =
      replay_design(r.spec, r.instance, r.design, r.settings);
  EXPECT_EQ(a.analytic_energy_j, b.analytic_energy_j);
  EXPECT_EQ(a.sim_energy_j, b.sim_energy_j);
  EXPECT_EQ(a.gap_pct, b.gap_pct);
  EXPECT_EQ(a.sim_j_per_kbit, b.sim_j_per_kbit);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.first_death_s, b.first_death_s);
  EXPECT_EQ(a.depleted_nodes, b.depleted_nodes);
  EXPECT_EQ(a.max_node_load_j, b.max_node_load_j);
  EXPECT_EQ(a.sim.sent, b.sim.sent);
  EXPECT_EQ(a.sim.delivered, b.sim.delivered);
  EXPECT_EQ(a.sim.total_energy_j, b.sim.total_energy_j);
  EXPECT_EQ(a.sim.transmit_energy_j, b.sim.transmit_energy_j);
  EXPECT_EQ(a.sim.control_energy_j, b.sim.control_energy_j);
  EXPECT_EQ(a.sim.channel_transmissions, b.sim.channel_transmissions);
  EXPECT_EQ(a.sim.mac_collisions, b.sim.mac_collisions);
}

TEST(Replay, ReportSidesAgreeWithTheirSources) {
  const Realized r = realize_small();
  const ReplayReport rep = run_realization(r.realization, r.settings);
  EXPECT_EQ(rep.analytic_energy_j, r.realization.analytic.total());
  EXPECT_EQ(rep.sim_energy_j, rep.sim.total_energy_j);
  EXPECT_EQ(rep.max_node_load_j, r.realization.max_node_load_j);
  EXPECT_EQ(rep.active_nodes, r.realization.active_nodes);
  // No batteries here: nobody dies, first_death_s reads the horizon.
  EXPECT_EQ(rep.first_death_s, r.settings.duration_s);
  EXPECT_EQ(rep.depleted_nodes, 0u);
}

// -------------------------------------------------------- lifetime search ---

TEST(Lifetime, RegistryClassifiesVariants) {
  EXPECT_TRUE(opt::heuristic_uses_battery_budget("portfolio_lifetime"));
  EXPECT_TRUE(opt::heuristic_uses_battery_budget("local_search_lifetime"));
  EXPECT_TRUE(opt::heuristic_uses_battery_budget("annealing_lifetime"));
  EXPECT_FALSE(opt::heuristic_uses_battery_budget("portfolio"));
  EXPECT_FALSE(opt::heuristic_uses_battery_budget("klein_ravi"));
  EXPECT_THROW(opt::heuristic_uses_battery_budget("nope"), CheckError);
}

TEST(Lifetime, VariantWithoutBudgetThrowsActionably) {
  const Realized r = realize_small();
  opt::HeuristicOptions ho;  // battery_budget_j = 0
  EXPECT_THROW(opt::heuristic_by_name("portfolio_lifetime")
                   .run(r.instance.problem, ho, 1),
               CheckError);
}

TEST(Lifetime, BindingBudgetLowersMaxNodeLoadOnPinnedInstance) {
  // The pinned quick family's shape at small scale: under a budget sitting
  // between the spread-out and concentrated max loads, the lifetime
  // portfolio must find a design whose hottest node carries strictly less
  // than the unconstrained winner's — that is the whole point of the mode.
  opt::DesignInstanceSpec spec;
  spec.node_count = 50;
  spec.demand_count = 6;
  spec.seed = 1;
  spec.demand_weights = {0.5, 1.0, 3.0};
  const opt::DesignInstance inst = opt::make_design_instance(spec);

  ReplaySettings settings;
  settings.duration_s = 120.0;
  settings.rate_pps = 16.0;
  settings.battery_capacity_j = 102.5;

  opt::HeuristicOptions ho;
  ho.eval = replay_eq5_params(settings, spec.card);
  ho.starts = 6;
  ho.anneal_iterations = 200;
  ho.battery_budget_j = settings.battery_capacity_j;

  const opt::CandidateDesign base =
      opt::heuristic_by_name("portfolio").run(inst.problem, ho, spec.seed);
  const opt::CandidateDesign lifetime =
      opt::heuristic_by_name("portfolio_lifetime")
          .run(inst.problem, ho, spec.seed);
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(lifetime.feasible);
  // Re-score the plain winner under the penalized objective (the plain run
  // itself skips the load scan) to compare hottest nodes.
  opt::DesignObjective obj(ho.eval);
  obj.battery_budget_j = ho.battery_budget_j;
  const opt::CandidateDesign base_scored =
      opt::evaluate_design(inst.problem, base.nodes, obj);
  EXPECT_LT(lifetime.max_node_load, base_scored.max_node_load);
  // The plain-Eq. 5 winner pays for its concentration under the penalized
  // objective; the lifetime winner is the cheaper of the two there.
  EXPECT_LE(lifetime.cost(), base_scored.cost());
}

}  // namespace
}  // namespace eend::replay
