// Unit tests: channel delivery, interference/collision semantics, carrier
// sensing, overhearing, hidden terminals.
#include <gtest/gtest.h>

#include <memory>

#include "mac/channel.hpp"

namespace eend::mac {
namespace {

struct Rig {
  sim::Simulator sim;
  phy::Propagation prop{energy::cabletron(), {}};
  Channel ch{sim, prop};
  std::vector<std::unique_ptr<NodeRadio>> radios;

  void add(double x, double y) {
    auto r = std::make_unique<NodeRadio>(
        static_cast<NodeId>(radios.size()), phy::Position{x, y},
        energy::cabletron(), sim);
    ch.register_radio(r.get());
    radios.push_back(std::move(r));
  }
  void freeze() {
    ch.freeze_topology();
    for (auto& r : radios) r->begin_metering(energy::RadioMode::Idle);
  }
  Frame frame(NodeId from, NodeId to) {
    Frame f;
    f.tx_node = from;
    f.rx_node = to;
    f.tx_power_w = energy::cabletron().max_transmit_power();
    f.packet.size_bits = 1024;
    return f;
  }
};

TEST(Channel, DeliversToTargetInRange) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  int delivered = 0;
  r.ch.set_deliver_handler(1, [&](const Frame&) { ++delivered; });
  bool done = false;
  r.ch.transmit(r.frame(0, 1), 0.001, [&](const TxResult& res) {
    EXPECT_TRUE(res.target_received);
    done = true;
  });
  r.sim.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 1);
}

TEST(Channel, NoDeliveryBeyondRange) {
  Rig r;
  r.add(0, 0);
  r.add(300, 0);  // beyond 250 m
  r.freeze();
  int delivered = 0;
  r.ch.set_deliver_handler(1, [&](const Frame&) { ++delivered; });
  r.ch.transmit(r.frame(0, 1), 0.001, [&](const TxResult& res) {
    EXPECT_FALSE(res.target_received);
  });
  r.sim.run_all();
  EXPECT_EQ(delivered, 0);
}

TEST(Channel, SleepingReceiverMissesFrame) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  r.radios[1]->sleep();
  int delivered = 0;
  r.ch.set_deliver_handler(1, [&](const Frame&) { ++delivered; });
  r.ch.transmit(r.frame(0, 1), 0.001, nullptr);
  r.sim.run_all();
  EXPECT_EQ(delivered, 0);
}

TEST(Channel, ConcurrentTransmissionsCollideAtReceiver) {
  Rig r;
  r.add(0, 0);    // sender A
  r.add(100, 0);  // receiver in the middle
  r.add(200, 0);  // sender B (within interference range of receiver)
  r.freeze();
  int delivered = 0;
  r.ch.set_deliver_handler(1, [&](const Frame&) { ++delivered; });
  r.ch.transmit(r.frame(0, 1), 0.001, nullptr);
  r.ch.transmit(r.frame(2, 1), 0.001, nullptr);
  r.sim.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_GE(r.radios[1]->rx_collisions(), 1u);
}

TEST(Channel, LateInterferenceCorruptsOngoingReception) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.add(200, 0);
  r.freeze();
  int delivered = 0;
  r.ch.set_deliver_handler(1, [&](const Frame&) { ++delivered; });
  r.ch.transmit(r.frame(0, 1), 0.002, nullptr);
  // Second transmission starts mid-flight of the first.
  r.sim.schedule_at(0.001, [&] { r.ch.transmit(r.frame(2, 1), 0.002, nullptr); });
  r.sim.run_all();
  EXPECT_EQ(delivered, 0);
}

TEST(Channel, DisjointTransmissionsBothSucceed) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  // Far-away pair: outside interference range of the first.
  r.add(5000, 0);
  r.add(5100, 0);
  r.freeze();
  int d1 = 0, d3 = 0;
  r.ch.set_deliver_handler(1, [&](const Frame&) { ++d1; });
  r.ch.set_deliver_handler(3, [&](const Frame&) { ++d3; });
  r.ch.transmit(r.frame(0, 1), 0.001, nullptr);
  r.ch.transmit(r.frame(2, 3), 0.001, nullptr);
  r.sim.run_all();
  EXPECT_EQ(d1, 1);
  EXPECT_EQ(d3, 1);
}

TEST(Channel, HiddenTerminalEmerges) {
  // A and B out of carrier-sense range of each other; C between them.
  Rig r;
  r.add(0, 0);     // A
  r.add(250, 0);   // C
  r.add(1200, 0);  // B — 1200 m from A, beyond CS range (550)
  r.freeze();
  EXPECT_FALSE(r.ch.carrier_busy(2));
  r.ch.transmit(r.frame(0, 1), 0.002, nullptr);
  // B senses idle even while A transmits (hidden terminal).
  bool checked = false;
  r.sim.schedule_at(0.001, [&] {
    EXPECT_FALSE(r.ch.carrier_busy(2));
    checked = true;
  });
  r.sim.run_all();
  EXPECT_TRUE(checked);
}

TEST(Channel, CarrierBusyWithinCsRange) {
  Rig r;
  r.add(0, 0);
  r.add(400, 0);  // within CS range (550 m) but beyond rx range
  r.freeze();
  r.ch.transmit(r.frame(0, kBroadcast), 0.002, nullptr);
  bool checked = false;
  r.sim.schedule_at(0.001, [&] {
    EXPECT_TRUE(r.ch.carrier_busy(1));
    checked = true;
  });
  r.sim.run_all();
  EXPECT_TRUE(checked);
  EXPECT_FALSE(r.ch.carrier_busy(1));  // after airtime ends
}

TEST(Channel, OverhearingChargesAndNotifies) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);   // target
  r.add(0, 100);   // overhearer in range
  r.freeze();
  int overheard = 0;
  r.ch.set_overhear_handler(2, [&](const Frame&) { ++overheard; });
  r.ch.transmit(r.frame(0, 1), 0.001, nullptr);
  r.sim.run_all();
  EXPECT_EQ(overheard, 1);
  for (auto& rad : r.radios) rad->finish_metering();
  EXPECT_GT(r.radios[2]->meter().receive_energy(), 0.0);
}

TEST(Channel, BroadcastReachesAllAwakeInRange) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.add(0, 100);
  r.add(240, 0);
  r.freeze();
  int count = 0;
  for (NodeId i = 1; i <= 3; ++i)
    r.ch.set_deliver_handler(i, [&](const Frame&) { ++count; });
  r.ch.transmit(r.frame(0, kBroadcast), 0.001, nullptr);
  r.sim.run_all();
  EXPECT_EQ(count, 3);
}

TEST(Channel, TpcShrinksFootprint) {
  Rig r;
  r.add(0, 0);
  r.add(50, 0);    // close target
  r.add(240, 0);   // would decode a max-power frame
  r.freeze();
  int far = 0;
  r.ch.set_overhear_handler(2, [&](const Frame&) { ++far; });
  Frame f = r.frame(0, 1);
  f.tx_power_w = r.prop.required_power(50.0);
  r.ch.transmit(f, 0.001, [&](const TxResult& res) {
    EXPECT_TRUE(res.target_received);
  });
  r.sim.run_all();
  EXPECT_EQ(far, 0);  // low-power frame is inaudible at 240 m
}

TEST(Channel, ConnectivityNeighbors) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.add(600, 0);
  r.freeze();
  const auto n0 = r.ch.connectivity_neighbors(0);
  EXPECT_EQ(n0, (std::vector<NodeId>{1}));
  const auto n2 = r.ch.connectivity_neighbors(2);
  EXPECT_TRUE(n2.empty());
}

TEST(Channel, TransmitterCannotReceiveConcurrently) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  int delivered_at_0 = 0;
  r.ch.set_deliver_handler(0, [&](const Frame&) { ++delivered_at_0; });
  // Node 0 transmits; node 1 transmits to node 0 at the same time.
  r.ch.transmit(r.frame(0, kBroadcast), 0.001, nullptr);
  r.ch.transmit(r.frame(1, 0), 0.001, nullptr);
  r.sim.run_all();
  EXPECT_EQ(delivered_at_0, 0);  // half-duplex
}

}  // namespace
}  // namespace eend::mac
