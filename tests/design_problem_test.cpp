// Unit tests: the centralized design-problem facade.
#include <gtest/gtest.h>

#include "core/design_problem.hpp"
#include "util/rng.hpp"

namespace eend::core {
namespace {

std::vector<phy::Position> cross_positions() {
  // A center hub with four arms, each within Cabletron range of the hub
  // but not of each other.
  return {{250, 250}, {250, 50}, {250, 450}, {50, 250}, {450, 250}};
}

TEST(DesignProblem, FromPositionsBuildsRangeGraph) {
  const auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                      energy::cabletron());
  const auto& g = p.graph();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);  // only hub-arm pairs are within 250 m
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));  // 400 m apart
  // w(e) = Ptx(200) + Prx; c(v) = Pidle.
  const auto card = energy::cabletron();
  EXPECT_NEAR(g.edge_weight_between(0, 1),
              card.transmit_power(200.0) + card.p_rx, 1e-12);
  EXPECT_DOUBLE_EQ(g.node_weight(0), card.p_idle);
}

TEST(DesignProblem, FromPositionsMatchesBruteForceScan) {
  // from_positions now discovers neighbors through spatial::GridIndex; the
  // contract is *bitwise* equivalence with the historical O(N²) scan —
  // same edges, in the same order (stable EdgeIds), with identical weights.
  const auto card = energy::cabletron();
  Rng field_rng(20260726);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + field_rng.next_below(120);
    const double side = 200.0 + field_rng.uniform(0.0, 1500.0);
    std::vector<phy::Position> pts(n);
    for (auto& p : pts)
      p = {field_rng.uniform(0.0, side), field_rng.uniform(0.0, side)};
    // Exercise the boundary predicate: plant one pair at exactly max range.
    if (n >= 2) {
      pts[0] = {10.0, 10.0};
      pts[1] = {10.0 + card.max_range_m, 10.0};
    }

    graph::Graph brute(n);
    for (graph::NodeId v = 0; v < n; ++v)
      brute.set_node_weight(v, card.p_idle);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = phy::distance(pts[i], pts[j]);
        if (d <= card.max_range_m)
          brute.add_edge(static_cast<graph::NodeId>(i),
                         static_cast<graph::NodeId>(j),
                         card.transmit_power(d) + card.p_rx);
      }

    const auto p = NetworkDesignProblem::from_positions(pts, card);
    const auto& g = p.graph();
    ASSERT_EQ(g.node_count(), brute.node_count()) << "trial " << trial;
    ASSERT_EQ(g.edge_count(), brute.edge_count()) << "trial " << trial;
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(g.edge(e).u, brute.edge(e).u) << "trial " << trial;
      EXPECT_EQ(g.edge(e).v, brute.edge(e).v) << "trial " << trial;
      // Bitwise, not approximate: both paths must compute the identical
      // distance expression.
      EXPECT_EQ(g.edge(e).weight, brute.edge(e).weight) << "trial " << trial;
    }
    for (graph::NodeId v = 0; v < n; ++v)
      EXPECT_EQ(g.node_weight(v), brute.node_weight(v));
  }
}

TEST(DesignProblem, TryRouteInSubgraphReportsInfeasibility) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  // Without the hub, arms 1 and 2 cannot reach each other.
  EXPECT_FALSE(p.try_route_in_subgraph({1, 2}).has_value());
  // Endpoints missing from the set is infeasible, not "unrestricted".
  EXPECT_FALSE(p.try_route_in_subgraph({0, 2}).has_value());
  const auto routes = p.try_route_in_subgraph({0, 1, 2});
  ASSERT_TRUE(routes.has_value());
  ASSERT_EQ(routes->size(), 1u);
  EXPECT_EQ(routes->front().path,
            (std::vector<graph::NodeId>{1, 0, 2}));
}

TEST(DesignProblem, TerminalsDeduplicated) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  p.add_demand({1, 3, 1.0});
  EXPECT_EQ(p.terminals().size(), 3u);
}

TEST(DesignProblem, NodeWeightedSolverUsesHub) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  const auto t = p.solve_node_weighted();
  ASSERT_TRUE(t.feasible);
  // Only route: 1 - hub - 2. One non-terminal (the hub).
  EXPECT_NEAR(t.node_cost, energy::cabletron().p_idle, 1e-12);
}

TEST(DesignProblem, McpReductionFeasible) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  p.add_demand({3, 4, 1.0});
  const auto t = p.solve_mpc_reduction();
  EXPECT_TRUE(t.feasible);
  // MPC's tree must contain the hub (the only connector).
  EXPECT_NE(std::find(t.nodes.begin(), t.nodes.end(), 0u), t.nodes.end());
}

TEST(DesignProblem, EvaluateTreeAccountsIdleAndData) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 2.0});  // 2 packets
  const auto tree = p.solve_node_weighted();
  analytical::Eq5Params ep;
  ep.t_idle = 10.0;
  ep.t_data_per_packet = 1.0;
  const auto ev = p.evaluate_tree(tree, ep);
  const auto card = energy::cabletron();
  EXPECT_NEAR(ev.idle, 10.0 * card.p_idle, 1e-12);  // hub only
  const double hop_w = card.transmit_power(200.0) + card.p_rx;
  EXPECT_NEAR(ev.data, 2.0 * 2.0 * hop_w, 1e-12);  // 2 hops x 2 packets
}

TEST(DesignProblem, ShortestPathEvaluationUnrestricted) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  const auto ev = p.evaluate_shortest_paths({});
  EXPECT_GT(ev.total(), 0.0);
  EXPECT_EQ(ev.active_nodes, 3u);
}

TEST(DesignProblem, St1St2IndifferenceShowsPaperSection3Point) {
  // The §3 argument on the solver side: k sources, one sink, a chain
  // relay i (ST1) and a star relay j (ST2). Both trees cost exactly one
  // relay, so a node-weighted Steiner solver is *indifferent* — yet the
  // communication cost deviates by (k+3)/4. This is why the paper argues
  // tree structure must be communication-aware.
  const int k = 4;
  graph::Graph g;
  const auto sink = g.add_node(0.0);
  std::vector<graph::NodeId> src;
  for (int s = 0; s < k; ++s) src.push_back(g.add_node(0.0));
  const auto ri = g.add_node(1.0);
  const auto rj = g.add_node(1.0);
  for (int s = 0; s + 1 < k; ++s) g.add_edge(src[s], src[s + 1], 1.0);
  g.add_edge(src[0], ri, 1.0);
  g.add_edge(ri, sink, 1.0);
  for (int s = 0; s < k; ++s) g.add_edge(src[s], rj, 1.0);
  g.add_edge(rj, sink, 1.0);

  NetworkDesignProblem p(std::move(g));
  for (int s = 0; s < k; ++s) p.add_demand({src[s], sink, 1.0});
  const auto t = p.solve_node_weighted();
  ASSERT_TRUE(t.feasible);
  EXPECT_NEAR(t.node_cost, 1.0, 1e-12);  // either relay: same node cost

  analytical::Eq5Params ep;
  const auto ev = p.evaluate_tree(t, ep);
  const double st2_data = 2.0 * k;                    // Eq. 7 term
  const double st1_data = k * (k + 3.0) / 2.0;        // Eq. 6 term
  EXPECT_TRUE(std::abs(ev.data - st2_data) < 1e-9 ||
              std::abs(ev.data - st1_data) < 1e-9)
      << "data=" << ev.data;

  // Communication-aware routing (global shortest paths) always achieves
  // the ST2 cost — the deviation the solver cannot see is (k+3)/4.
  const auto sp = p.evaluate_shortest_paths(ep);
  EXPECT_NEAR(sp.data, st2_data, 1e-9);
  EXPECT_NEAR(st1_data / st2_data, (k + 3.0) / 4.0, 1e-12);
}

TEST(DesignProblem, InfeasibleTreeEvaluationThrows) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  graph::SteinerTree bogus;  // infeasible by default
  EXPECT_THROW(p.evaluate_tree(bogus, {}), CheckError);
}

}  // namespace
}  // namespace eend::core
