// Unit tests: the centralized design-problem facade.
#include <gtest/gtest.h>

#include "core/design_problem.hpp"

namespace eend::core {
namespace {

std::vector<phy::Position> cross_positions() {
  // A center hub with four arms, each within Cabletron range of the hub
  // but not of each other.
  return {{250, 250}, {250, 50}, {250, 450}, {50, 250}, {450, 250}};
}

TEST(DesignProblem, FromPositionsBuildsRangeGraph) {
  const auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                      energy::cabletron());
  const auto& g = p.graph();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);  // only hub-arm pairs are within 250 m
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));  // 400 m apart
  // w(e) = Ptx(200) + Prx; c(v) = Pidle.
  const auto card = energy::cabletron();
  EXPECT_NEAR(g.edge_weight_between(0, 1),
              card.transmit_power(200.0) + card.p_rx, 1e-12);
  EXPECT_DOUBLE_EQ(g.node_weight(0), card.p_idle);
}

TEST(DesignProblem, TerminalsDeduplicated) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  p.add_demand({1, 3, 1.0});
  EXPECT_EQ(p.terminals().size(), 3u);
}

TEST(DesignProblem, NodeWeightedSolverUsesHub) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  const auto t = p.solve_node_weighted();
  ASSERT_TRUE(t.feasible);
  // Only route: 1 - hub - 2. One non-terminal (the hub).
  EXPECT_NEAR(t.node_cost, energy::cabletron().p_idle, 1e-12);
}

TEST(DesignProblem, McpReductionFeasible) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  p.add_demand({3, 4, 1.0});
  const auto t = p.solve_mpc_reduction();
  EXPECT_TRUE(t.feasible);
  // MPC's tree must contain the hub (the only connector).
  EXPECT_NE(std::find(t.nodes.begin(), t.nodes.end(), 0u), t.nodes.end());
}

TEST(DesignProblem, EvaluateTreeAccountsIdleAndData) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 2.0});  // 2 packets
  const auto tree = p.solve_node_weighted();
  analytical::Eq5Params ep;
  ep.t_idle = 10.0;
  ep.t_data_per_packet = 1.0;
  const auto ev = p.evaluate_tree(tree, ep);
  const auto card = energy::cabletron();
  EXPECT_NEAR(ev.idle, 10.0 * card.p_idle, 1e-12);  // hub only
  const double hop_w = card.transmit_power(200.0) + card.p_rx;
  EXPECT_NEAR(ev.data, 2.0 * 2.0 * hop_w, 1e-12);  // 2 hops x 2 packets
}

TEST(DesignProblem, ShortestPathEvaluationUnrestricted) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  const auto ev = p.evaluate_shortest_paths({});
  EXPECT_GT(ev.total(), 0.0);
  EXPECT_EQ(ev.active_nodes, 3u);
}

TEST(DesignProblem, St1St2IndifferenceShowsPaperSection3Point) {
  // The §3 argument on the solver side: k sources, one sink, a chain
  // relay i (ST1) and a star relay j (ST2). Both trees cost exactly one
  // relay, so a node-weighted Steiner solver is *indifferent* — yet the
  // communication cost deviates by (k+3)/4. This is why the paper argues
  // tree structure must be communication-aware.
  const int k = 4;
  graph::Graph g;
  const auto sink = g.add_node(0.0);
  std::vector<graph::NodeId> src;
  for (int s = 0; s < k; ++s) src.push_back(g.add_node(0.0));
  const auto ri = g.add_node(1.0);
  const auto rj = g.add_node(1.0);
  for (int s = 0; s + 1 < k; ++s) g.add_edge(src[s], src[s + 1], 1.0);
  g.add_edge(src[0], ri, 1.0);
  g.add_edge(ri, sink, 1.0);
  for (int s = 0; s < k; ++s) g.add_edge(src[s], rj, 1.0);
  g.add_edge(rj, sink, 1.0);

  NetworkDesignProblem p(std::move(g));
  for (int s = 0; s < k; ++s) p.add_demand({src[s], sink, 1.0});
  const auto t = p.solve_node_weighted();
  ASSERT_TRUE(t.feasible);
  EXPECT_NEAR(t.node_cost, 1.0, 1e-12);  // either relay: same node cost

  analytical::Eq5Params ep;
  const auto ev = p.evaluate_tree(t, ep);
  const double st2_data = 2.0 * k;                    // Eq. 7 term
  const double st1_data = k * (k + 3.0) / 2.0;        // Eq. 6 term
  EXPECT_TRUE(std::abs(ev.data - st2_data) < 1e-9 ||
              std::abs(ev.data - st1_data) < 1e-9)
      << "data=" << ev.data;

  // Communication-aware routing (global shortest paths) always achieves
  // the ST2 cost — the deviation the solver cannot see is (k+3)/4.
  const auto sp = p.evaluate_shortest_paths(ep);
  EXPECT_NEAR(sp.data, st2_data, 1e-9);
  EXPECT_NEAR(st1_data / st2_data, (k + 3.0) / 4.0, 1e-12);
}

TEST(DesignProblem, InfeasibleTreeEvaluationThrows) {
  auto p = NetworkDesignProblem::from_positions(cross_positions(),
                                                energy::cabletron());
  p.add_demand({1, 2, 1.0});
  graph::SteinerTree bogus;  // infeasible by default
  EXPECT_THROW(p.evaluate_tree(bogus, {}), CheckError);
}

}  // namespace
}  // namespace eend::core
