// Unit tests: deterministic RNG, flags, tables, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace eend {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.engine()() == b.engine()()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowCoversRangeWithoutBias) {
  Rng r(13);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, n / 7.0 * 0.1);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng r(19);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(99);
  Rng child1 = a.fork(5);
  a.uniform();  // consume from parent
  Rng b(99);
  Rng child2 = b.fork(5);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(child1.engine()(), child2.engine()());
}

TEST(Rng, ForkSaltsProduceDistinctStreams) {
  Rng a(99);
  Rng c1 = a.fork(1), c2 = a.fork(2);
  EXPECT_NE(c1.engine()(), c2.engine()());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng r(1);
  EXPECT_THROW(r.next_below(0), CheckError);
  EXPECT_THROW(r.uniform(2.0, 1.0), CheckError);
  EXPECT_THROW(r.exponential(0.0), CheckError);
}

// ------------------------------------------------------------- stats ----

TEST(Stats, MeanOfConstant) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
}

TEST(Stats, KnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  // t(4, 0.975) = 2.776
  EXPECT_NEAR(s.ci95_half_width, 2.776 * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
}

TEST(Stats, SingleValueHasNoCi) {
  const std::vector<double> xs{7.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
}

TEST(Stats, StudentTTable) {
  EXPECT_NEAR(student_t_95(1), 12.706, 1e-9);
  EXPECT_NEAR(student_t_95(4), 2.776, 1e-9);
  EXPECT_NEAR(student_t_95(9), 2.262, 1e-9);
  // Sparse anchors past the dense table.
  EXPECT_NEAR(student_t_95(40), 2.021, 1e-9);
  EXPECT_NEAR(student_t_95(60), 2.000, 1e-9);
  EXPECT_NEAR(student_t_95(120), 1.980, 1e-9);
  // True t(1000, 0.975) is 1.9623; the 1/df interpolation lands close,
  // instead of the old hard 1.96 step.
  EXPECT_NEAR(student_t_95(1000), 1.962, 1e-3);
  EXPECT_NEAR(student_t_95(100000000), 1.960, 1e-4);
}

TEST(Stats, StudentTTailIsSmoothAndMonotone) {
  // The regression: df=30 -> 2.042 used to drop straight to 1.96 at df=31.
  EXPECT_LT(student_t_95(31), student_t_95(30));
  EXPECT_GT(student_t_95(31), student_t_95(40));
  EXPECT_LT(student_t_95(30) - student_t_95(31), 0.005);
  double prev = student_t_95(30);
  for (std::size_t df = 31; df <= 300; ++df) {
    const double t = student_t_95(df);
    EXPECT_LE(t, prev) << "df=" << df;
    EXPECT_GT(t, 1.96) << "df=" << df;
    prev = t;
  }
}

TEST(Stats, StudentTInterpolatedValuesSitBetweenAnchors) {
  // The 1/df interpolation must keep every off-anchor df strictly inside
  // its bracketing anchors (40 -> 2.021, 60 -> 2.000, 120 -> 1.980,
  // infinity -> 1.960) and strictly ordered among themselves.
  const double t45 = student_t_95(45);
  const double t90 = student_t_95(90);
  const double t200 = student_t_95(200);

  EXPECT_LT(t45, student_t_95(40));
  EXPECT_GT(t45, student_t_95(60));
  EXPECT_LT(t90, student_t_95(60));
  EXPECT_GT(t90, student_t_95(120));
  EXPECT_LT(t200, student_t_95(120));
  EXPECT_GT(t200, 1.960);

  // Monotone decreasing in df across the interpolated tail.
  EXPECT_GT(t45, t90);
  EXPECT_GT(t90, t200);

  // Spot-check against the true quantiles (t(45)=2.0141, t(90)=1.9867,
  // t(200)=1.9719): linear-in-1/df interpolation is good to ~3 decimals.
  EXPECT_NEAR(t45, 2.0141, 5e-3);
  EXPECT_NEAR(t90, 1.9867, 5e-3);
  EXPECT_NEAR(t200, 1.9719, 5e-3);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(summarize({}), CheckError);
  EXPECT_THROW(mean_of({}), CheckError);
}

// ------------------------------------------------------------- flags ----

TEST(Flags, ParsesKeyValueForms) {
  // Note: a bare boolean followed by a non-flag token would consume the
  // token as its value (the --key value form), so positionals come first.
  const char* argv[] = {"prog", "positional", "--alpha=1.5", "--name", "foo",
                        "--verbose"};
  Flags f(6, argv);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(f.get("name", ""), "foo");
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
}

TEST(Flags, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.get_int("runs", 5), 5);
  EXPECT_FALSE(f.has("anything"));
}

TEST(Flags, IntParsing) {
  const char* argv[] = {"prog", "--n=42", "--neg=-7"};
  Flags f(3, argv);
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_EQ(f.get_int("neg", 0), -7);
}

// ------------------------------------------------------------- table ----

TEST(Table, TextAndCsvRendering) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"33", "4"});
  const std::string txt = t.to_text();
  EXPECT_NE(txt.find("bb"), std::string::npos);
  EXPECT_NE(txt.find("33"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,bb\n1,2\n33,4\n");
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num_ci(1.5, 0.25, 2), "1.50 +- 0.25");
}

// ------------------------------------------------------------- units ----

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(milliwatts(830), 0.83);
  EXPECT_DOUBLE_EQ(as_milliwatts(0.83), 830.0);
  EXPECT_DOUBLE_EQ(kilobits(2), 2000.0);
  EXPECT_DOUBLE_EQ(bytes_to_bits(128), 1024.0);
  EXPECT_DOUBLE_EQ(milliseconds(300), 0.3);
}

TEST(MemoryPool, ReusesReleasedBlocksOfSameClass) {
  util::MemoryPool pool;
  void* a = pool.allocate(40);  // class 0 (<= 64 bytes)
  EXPECT_EQ(pool.allocated_blocks(), 1u);
  pool.release(a, 40);
  EXPECT_EQ(pool.free_blocks(), 1u);
  void* b = pool.allocate(64);  // same class: must be the recycled block
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.allocated_blocks(), 1u);
  EXPECT_EQ(pool.free_blocks(), 0u);
  pool.release(b, 64);
}

TEST(MemoryPool, SizeClassesAreIndependent) {
  util::MemoryPool pool;
  void* small = pool.allocate(10);    // class 0
  void* medium = pool.allocate(100);  // class 1
  void* large = pool.allocate(1000);  // class 15
  EXPECT_EQ(pool.allocated_blocks(), 3u);
  pool.release(small, 10);
  // A class-1 request must not be served from the class-0 free list.
  void* medium2 = pool.allocate(70);
  EXPECT_NE(medium2, small);
  EXPECT_EQ(pool.allocated_blocks(), 4u);
  pool.release(medium, 100);
  pool.release(medium2, 70);
  pool.release(large, 1000);
  EXPECT_EQ(pool.free_blocks(), 4u);
}

TEST(MemoryPool, OversizedRequestsBypassThePool) {
  util::MemoryPool pool;
  void* big = pool.allocate(util::MemoryPool::kMaxPooled + 1);
  ASSERT_NE(big, nullptr);
  // Not counted: it came straight from (and returns straight to) the
  // global allocator.
  EXPECT_EQ(pool.allocated_blocks(), 0u);
  pool.release(big, util::MemoryPool::kMaxPooled + 1);
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(MemoryPool, SteadyStateChurnAllocatesNothingNew) {
  util::MemoryPool pool;
  void* p = pool.allocate(200);
  pool.release(p, 200);
  const std::size_t baseline = pool.allocated_blocks();
  for (int i = 0; i < 1000; ++i) {
    void* q = pool.allocate(250);  // same size class as 200 (193..256)
    pool.release(q, 250);
  }
  EXPECT_EQ(pool.allocated_blocks(), baseline);
}

}  // namespace
}  // namespace eend
