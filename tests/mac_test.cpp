// Unit tests: CSMA MAC — queueing, retries, drops, broadcasts.
#include <gtest/gtest.h>

#include <memory>

#include "mac/mac.hpp"

namespace eend::mac {
namespace {

struct Rig {
  sim::Simulator sim;
  phy::Propagation prop{energy::cabletron(), {}};
  Channel ch{sim, prop};
  std::vector<std::unique_ptr<NodeRadio>> radios;
  std::vector<std::unique_ptr<Mac>> macs;
  MacConfig cfg;

  void add(double x, double y) {
    auto r = std::make_unique<NodeRadio>(
        static_cast<NodeId>(radios.size()), phy::Position{x, y},
        energy::cabletron(), sim);
    ch.register_radio(r.get());
    radios.push_back(std::move(r));
  }
  void freeze() {
    ch.freeze_topology();
    for (std::size_t i = 0; i < radios.size(); ++i) {
      radios[i]->begin_metering(energy::RadioMode::Idle);
      macs.push_back(std::make_unique<Mac>(sim, ch, *radios[i], nullptr,
                                           Rng(100 + i), cfg));
    }
  }
  Packet data(std::uint32_t bits = 1024) {
    Packet p;
    p.size_bits = bits;
    p.category = energy::Category::Data;
    return p;
  }
  double max_power() const {
    return energy::cabletron().max_transmit_power();
  }
};

TEST(Mac, UnicastDeliversAndReportsSuccess) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  int received = 0;
  bool ok = false;
  r.macs[1]->set_receive_handler(
      [&](const Packet&, NodeId from) {
        EXPECT_EQ(from, 0u);
        ++received;
      });
  r.macs[0]->send_unicast(r.data(), 1, r.max_power(),
                          [&](bool s) { ok = s; });
  r.sim.run_until(1.0);
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(ok);
  EXPECT_EQ(r.macs[0]->stats().frames_ok, 1u);
}

TEST(Mac, UnicastToUnreachableFailsAfterRetries) {
  Rig r;
  r.add(0, 0);
  r.add(300, 0);  // out of range
  r.freeze();
  bool ok = true;
  r.macs[0]->send_unicast(r.data(), 1, r.max_power(),
                          [&](bool s) { ok = s; });
  r.sim.run_until(10.0);
  EXPECT_FALSE(ok);
  EXPECT_EQ(r.macs[0]->stats().unicast_failures, 1u);
}

TEST(Mac, QueueOverflowDrops) {
  Rig r;
  r.cfg.queue_limit = 4;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  int failures = 0;
  for (int i = 0; i < 10; ++i)
    r.macs[0]->send_unicast(r.data(), 1, r.max_power(),
                            [&](bool s) { if (!s) ++failures; });
  EXPECT_GE(r.macs[0]->stats().queue_drops, 6u);
  r.sim.run_until(5.0);
  EXPECT_EQ(failures, 6);
}

TEST(Mac, QueueDrainsInOrder) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  std::vector<std::uint64_t> uids;
  r.macs[1]->set_receive_handler(
      [&](const Packet& p, NodeId) { uids.push_back(p.uid); });
  for (std::uint64_t i = 1; i <= 5; ++i) {
    Packet p = r.data();
    p.uid = i;
    r.macs[0]->send_unicast(p, 1, r.max_power());
  }
  r.sim.run_until(5.0);
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Mac, BroadcastReachesAllNeighbors) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.add(0, 100);
  r.freeze();
  int received = 0;
  for (int i = 1; i <= 2; ++i)
    r.macs[i]->set_receive_handler(
        [&](const Packet&, NodeId) { ++received; });
  r.macs[0]->send_broadcast(r.data(512), r.max_power());
  r.sim.run_until(1.0);
  EXPECT_EQ(received, 2);
}

TEST(Mac, FrameDurationIncludesHeaderAndOverhead) {
  Rig r;
  r.add(0, 0);
  r.freeze();
  const double d = r.macs[0]->frame_duration(1024);
  EXPECT_NEAR(d, (1024 + r.cfg.mac_header_bits) / 2e6 + r.cfg.frame_overhead_s,
              1e-12);
}

TEST(Mac, ContendersSerializeViaCsma) {
  // Two senders in CS range of each other; both frames must get through
  // (carrier sensing + backoff resolves contention without loss).
  Rig r;
  r.add(0, 0);
  r.add(100, 0);   // receiver
  r.add(200, 0);   // second sender, in CS range of first
  r.freeze();
  int received = 0;
  r.macs[1]->set_receive_handler(
      [&](const Packet&, NodeId) { ++received; });
  r.macs[0]->send_unicast(r.data(), 1, r.max_power());
  r.macs[2]->send_unicast(r.data(), 1, r.max_power());
  r.sim.run_until(5.0);
  EXPECT_EQ(received, 2);
}

TEST(Mac, ManyContendersAllEventuallyDeliver) {
  Rig r;
  r.add(0, 0);  // receiver at center
  for (int i = 0; i < 8; ++i) r.add(100 + i * 5.0, 0);
  r.freeze();
  int received = 0;
  r.macs[0]->set_receive_handler(
      [&](const Packet&, NodeId) { ++received; });
  for (int i = 1; i <= 8; ++i)
    r.macs[i]->send_unicast(r.data(), 0, r.max_power());
  r.sim.run_until(10.0);
  EXPECT_EQ(received, 8);
}

TEST(Mac, FailedNodeSendsNothing) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.freeze();
  r.radios[0]->fail_permanently();
  bool ok = true;
  r.macs[0]->send_unicast(r.data(), 1, r.max_power(),
                          [&](bool s) { ok = s; });
  r.sim.run_until(2.0);
  EXPECT_FALSE(ok);
  EXPECT_EQ(r.radios[0]->frames_sent(), 0u);
}

TEST(Mac, PromiscuousHandlerSeesOverheardFrames) {
  Rig r;
  r.add(0, 0);
  r.add(100, 0);
  r.add(0, 100);  // bystander
  r.freeze();
  int overheard = 0;
  r.macs[2]->set_promiscuous_handler(
      [&](const Packet&, NodeId) { ++overheard; });
  r.macs[0]->send_unicast(r.data(), 1, r.max_power());
  r.sim.run_until(1.0);
  EXPECT_EQ(overheard, 1);
}

TEST(PayloadRef, TypeCheckedSharedOwnership) {
  util::MemoryPool pool;
  struct BodyA {
    int x;
  };
  struct BodyB {
    double y;
  };
  Packet p;
  EXPECT_FALSE(p.payload);
  p.payload = Packet::wrap(pool, BodyA{41});
  EXPECT_TRUE(p.payload);
  EXPECT_EQ(p.body<BodyA>().x, 41);
  Packet copy = p;  // copies share the body
  EXPECT_EQ(copy.body<BodyA>().x, 41);
  EXPECT_THROW(p.body<BodyB>(), CheckError);  // wrong type is refused
  p.payload.reset();
  EXPECT_FALSE(p.payload);
  EXPECT_EQ(copy.body<BodyA>().x, 41);  // survives the other owner
}

TEST(PayloadRef, BlocksRecycleThroughThePool) {
  util::MemoryPool pool;
  struct Body {
    std::uint64_t seqno;
    double metric[4];
  };
  {
    Packet p;
    p.payload = Packet::wrap(pool, Body{1, {}});
  }
  const std::size_t blocks = pool.allocated_blocks();
  EXPECT_GE(blocks, 1u);
  // Steady-state wrap/destroy churn reuses the same block.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Packet p;
    p.payload = Packet::wrap(pool, Body{i, {}});
  }
  EXPECT_EQ(pool.allocated_blocks(), blocks);
}

TEST(PayloadRef, DestructorRunsForNonTrivialBodies) {
  util::MemoryPool pool;
  struct Body {
    std::shared_ptr<int> token;
  };
  auto token = std::make_shared<int>(7);
  {
    PayloadRef ref = PayloadRef::make(pool, Body{token});
    PayloadRef moved = std::move(ref);
    EXPECT_FALSE(ref);  // NOLINT(bugprone-use-after-move): pinned empty
    EXPECT_TRUE(moved);
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // body destroyed with the last ref
}

}  // namespace
}  // namespace eend::mac
