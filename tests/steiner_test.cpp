// Unit tests: Steiner-tree approximations (KMB edge-weighted, Klein-Ravi
// node-weighted) against hand-built instances and the exact oracle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/steiner.hpp"
#include "util/rng.hpp"

namespace eend::graph {
namespace {

/// Reference leaf pruning: the original fixed-point sweep that rebuilds the
/// full incident map per pass. Kept here verbatim as the oracle for the
/// worklist implementation in steiner.cpp — same unique fixed point, O(E²)
/// instead of O(E).
void prune_leaves_reference(const Graph& g,
                            std::span<const NodeId> terminals,
                            std::set<EdgeId>& edges) {
  const auto is_term = [&](NodeId v) {
    return std::find(terminals.begin(), terminals.end(), v) !=
           terminals.end();
  };
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<NodeId, std::vector<EdgeId>> incident;
    for (EdgeId e : edges) {
      incident[g.edge(e).u].push_back(e);
      incident[g.edge(e).v].push_back(e);
    }
    for (const auto& [v, inc] : incident) {
      if (inc.size() == 1 && !is_term(v)) {
        edges.erase(inc[0]);
        changed = true;
      }
    }
  }
}

TEST(Kmb, TwoTerminalsIsShortestPath) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 5.0);
  g.add_edge(3, 2, 5.0);
  const std::vector<NodeId> terms{0, 2};
  const auto t = kmb_steiner_tree(g, terms);
  EXPECT_TRUE(t.feasible);
  EXPECT_DOUBLE_EQ(t.edge_cost, 2.0);
}

TEST(Kmb, StarSteinerPoint) {
  // Three terminals around a cheap hub; best tree uses the hub.
  Graph g(4);
  g.add_edge(0, 3, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 2, 3.0);
  const std::vector<NodeId> terms{0, 1, 2};
  const auto t = kmb_steiner_tree(g, terms);
  EXPECT_TRUE(t.feasible);
  EXPECT_DOUBLE_EQ(t.edge_cost, 3.0);
  EXPECT_EQ(t.edges.size(), 3u);
}

TEST(Kmb, DisconnectedTerminalsInfeasible) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<NodeId> terms{0, 3};
  const auto t = kmb_steiner_tree(g, terms);
  EXPECT_FALSE(t.feasible);
}

TEST(Kmb, SingleTerminalTrivial) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const std::vector<NodeId> terms{0};
  const auto t = kmb_steiner_tree(g, terms);
  EXPECT_TRUE(t.feasible);
  EXPECT_TRUE(t.edges.empty());
}

TEST(KleinRavi, PrefersCheapRelay) {
  // Terminals 0,1; relays 2 (cheap) and 3 (expensive), both connect them.
  Graph g(4);
  g.set_node_weight(2, 1.0);
  g.set_node_weight(3, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 1, 1.0);
  const std::vector<NodeId> terms{0, 1};
  const auto t = klein_ravi_steiner(g, terms);
  EXPECT_TRUE(t.feasible);
  EXPECT_DOUBLE_EQ(t.node_cost, 1.0);
}

TEST(KleinRavi, SharedRelayBeatsDedicatedRelays) {
  // The SF1/SF2 structure: k pairs can each use a dedicated relay (cost k)
  // or all share the center (cost 1). Node-weighted Steiner on the union
  // of terminals must pick the shared center.
  const int k = 4;
  Graph g;
  const NodeId center = g.add_node(1.0);
  std::vector<NodeId> terms;
  for (int i = 0; i < k; ++i) {
    const NodeId s = g.add_node(0.0);
    const NodeId d = g.add_node(0.0);
    const NodeId r = g.add_node(1.0);
    g.add_edge(s, r, 1.0);
    g.add_edge(r, d, 1.0);
    g.add_edge(s, center, 1.0);
    g.add_edge(center, d, 1.0);
    terms.push_back(s);
    terms.push_back(d);
  }
  const auto t = klein_ravi_steiner(g, terms);
  EXPECT_TRUE(t.feasible);
  EXPECT_DOUBLE_EQ(t.node_cost, 1.0);  // only the center pays
}

TEST(ExactOracle, MatchesHandAnalysis) {
  Graph g(5);
  g.set_node_weight(2, 5.0);
  g.set_node_weight(3, 1.0);
  g.set_node_weight(4, 1.0);
  // 0-2-1 (one relay cost 5) vs 0-3-4-1 (two relays cost 2).
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 1, 1.0);
  const std::vector<NodeId> terms{0, 1};
  const auto t = exact_node_weighted_steiner(g, terms);
  EXPECT_TRUE(t.feasible);
  EXPECT_DOUBLE_EQ(t.node_cost, 2.0);
}

TEST(KleinRavi, WithinLogFactorOfExactOnRandomGraphs) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 10;
    Graph g(n);
    for (NodeId v = 0; v < n; ++v)
      g.set_node_weight(v, rng.uniform(0.5, 3.0));
    // Random connected-ish graph: ring + chords.
    for (NodeId v = 0; v < n; ++v)
      g.add_edge(v, static_cast<NodeId>((v + 1) % n), 1.0);
    for (int c = 0; c < 6; ++c) {
      const auto a = static_cast<NodeId>(rng.next_below(n));
      const auto b = static_cast<NodeId>(rng.next_below(n));
      if (a != b) g.add_edge(a, b, 1.0);
    }
    const std::vector<NodeId> terms{0, static_cast<NodeId>(n / 2),
                                    static_cast<NodeId>(n - 2)};
    const auto approx = klein_ravi_steiner(g, terms);
    const auto exact = exact_node_weighted_steiner(g, terms);
    ASSERT_TRUE(approx.feasible);
    ASSERT_TRUE(exact.feasible);
    // 2 ln(3) ~ 2.2; allow the proven bound.
    EXPECT_LE(approx.node_cost, exact.node_cost * 2.2 + 1e-9)
        << "trial " << trial;
    EXPECT_GE(approx.node_cost, exact.node_cost - 1e-9);
  }
}

TEST(Kmb, TreeHasNoNonTerminalLeaves) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12;
    Graph g(n);
    for (NodeId v = 0; v < n; ++v)
      g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(1.0, 4.0));
    for (int c = 0; c < 8; ++c) {
      const auto a = static_cast<NodeId>(rng.next_below(n));
      const auto b = static_cast<NodeId>(rng.next_below(n));
      if (a != b) g.add_edge(a, b, rng.uniform(1.0, 4.0));
    }
    const std::vector<NodeId> terms{1, 5, 9};
    const auto t = kmb_steiner_tree(g, terms);
    ASSERT_TRUE(t.feasible);
    // Count degrees within the tree.
    std::map<NodeId, int> deg;
    for (EdgeId e : t.edges) {
      deg[g.edge(e).u]++;
      deg[g.edge(e).v]++;
    }
    for (const auto& [v, d] : deg) {
      if (std::find(terms.begin(), terms.end(), v) == terms.end()) {
        EXPECT_GE(d, 2) << "non-terminal leaf " << v << " in trial " << trial;
      }
    }
  }
}

TEST(PruneLeaves, MatchesReferenceSweepBitIdentically) {
  // Randomized trees-with-hair plus general subgraphs: the worklist
  // implementation must reach exactly the reference fixed point (satellite
  // of the O(E²)-per-sweep fix).
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 20;
    Graph g(n);
    // Random spanning-tree-ish skeleton + chords, then a random subset of
    // edges as the working set (the shape KMB hands prune_leaves).
    for (NodeId v = 1; v < n; ++v)
      g.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
                 rng.uniform(1.0, 4.0));
    for (int c = 0; c < 10; ++c) {
      const auto a = static_cast<NodeId>(rng.next_below(n));
      const auto b = static_cast<NodeId>(rng.next_below(n));
      if (a != b) g.add_edge(a, b, rng.uniform(1.0, 4.0));
    }
    std::set<EdgeId> subset;
    for (EdgeId e = 0; e < g.edge_count(); ++e)
      if (rng.next_below(4) != 0) subset.insert(e);
    const std::vector<NodeId> terms{0, static_cast<NodeId>(n / 2)};

    std::set<EdgeId> got = subset, want = subset;
    prune_leaves(g, terms, got);
    prune_leaves_reference(g, terms, want);
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(PruneLeaves, DeepChainPrunesToEmpty) {
  // A bare path with only one terminal endpoint collapses entirely; the
  // worklist must chase the retreating leaf the whole way down.
  const std::size_t n = 64;
  Graph g(n);
  std::set<EdgeId> edges;
  for (NodeId v = 0; v + 1 < n; ++v)
    edges.insert(g.add_edge(v, v + 1, 1.0));
  const std::vector<NodeId> terms{0};
  prune_leaves(g, terms, edges);
  EXPECT_TRUE(edges.empty());
}

TEST(ExactOracle, IsolatedCheapOptionalNodeBelowFirstTerminal) {
  // Regression for the prim_mst(sub, 0) rooting bug: node 0 is a cheap
  // optional node disconnected from the terminals {1, 2}. Any mask that
  // activates it makes it the lowest remapped id; rooting the MST there
  // spanned the wrong component and silently rejected the candidate. The
  // optimum (bridge relay 3) must come back feasible and junk-free.
  Graph g(4);
  g.set_node_weight(0, 0.01);
  g.set_node_weight(3, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(3, 2, 1.0);
  const std::vector<NodeId> terms{1, 2};
  const auto t = exact_node_weighted_steiner(g, terms);
  ASSERT_TRUE(t.feasible);
  EXPECT_DOUBLE_EQ(t.node_cost, 1.0);
  EXPECT_EQ(t.nodes, (std::vector<NodeId>{1, 2, 3}));
}

}  // namespace
}  // namespace eend::graph
