// Unit tests: power-management policies (AlwaysActive, PSM, ODPM,
// PerfectSleep) and ODPM keep-alive semantics.
#include <gtest/gtest.h>

#include <memory>

#include "power/power_manager.hpp"

namespace eend::power {
namespace {

struct Rig {
  sim::Simulator sim;
  mac::PsmScheduler psm{sim, {}};
  std::vector<std::unique_ptr<mac::NodeRadio>> radios;

  mac::NodeRadio& add() {
    auto r = std::make_unique<mac::NodeRadio>(
        static_cast<mac::NodeId>(radios.size()),
        phy::Position{0.0, 100.0 * static_cast<double>(radios.size())},
        energy::cabletron(), sim);
    psm.register_radio(r.get());
    r->begin_metering(energy::RadioMode::Idle);
    radios.push_back(std::move(r));
    return *radios.back();
  }
};

TEST(AlwaysActive, StaysInActiveMode) {
  AlwaysActive p;
  p.start();
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);
  p.notify_data_activity();  // no-ops
  EXPECT_TRUE(p.is_active_mode());
}

TEST(AlwaysPsm, EntersPowerSave) {
  Rig r;
  r.add();
  AlwaysPsm p(r.psm, 0);
  r.psm.start();
  p.start();
  EXPECT_EQ(p.mode(), PmMode::PowerSave);
  r.sim.run_until(0.05);
  EXPECT_TRUE(r.radios[0]->sleeping());
}

TEST(Odpm, StartsInPowerSave) {
  Rig r;
  r.add();
  Odpm p(r.sim, r.psm, 0, {});
  r.psm.start();
  p.start();
  EXPECT_EQ(p.mode(), PmMode::PowerSave);
  r.sim.run_until(0.05);
  EXPECT_TRUE(r.radios[0]->sleeping());
}

TEST(Odpm, DataActivitySwitchesToActive) {
  Rig r;
  r.add();
  Odpm p(r.sim, r.psm, 0, {});
  r.psm.start();
  p.start();
  r.sim.run_until(1.0);
  p.notify_data_activity();
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);
  EXPECT_FALSE(r.radios[0]->sleeping());
  EXPECT_EQ(p.activations(), 1u);
}

TEST(Odpm, KeepaliveExpiryReturnsToPsm) {
  Rig r;
  r.add();
  OdpmConfig cfg;
  cfg.keepalive_data_s = 2.0;
  Odpm p(r.sim, r.psm, 0, cfg);
  r.psm.start();
  p.start();
  r.sim.run_until(1.0);
  p.notify_data_activity();
  r.sim.run_until(2.5);  // expires at t=3.0
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);
  r.sim.run_until(3.5);
  EXPECT_EQ(p.mode(), PmMode::PowerSave);
}

TEST(Odpm, ActivityRefreshesKeepalive) {
  Rig r;
  r.add();
  OdpmConfig cfg;
  cfg.keepalive_data_s = 2.0;
  Odpm p(r.sim, r.psm, 0, cfg);
  r.psm.start();
  p.start();
  r.sim.run_until(1.0);
  p.notify_data_activity();  // expires 3.0
  r.sim.run_until(2.5);
  p.notify_data_activity();  // refreshed: expires 4.5
  r.sim.run_until(3.5);
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);
  r.sim.run_until(5.0);
  EXPECT_EQ(p.mode(), PmMode::PowerSave);
  EXPECT_EQ(p.activations(), 1u);  // never flapped in between
}

TEST(Odpm, RrepKeepaliveIsLonger) {
  Rig r;
  r.add();
  OdpmConfig cfg;  // defaults: data 5 s, RREP 10 s (paper values)
  Odpm p(r.sim, r.psm, 0, cfg);
  r.psm.start();
  p.start();
  r.sim.run_until(1.0);
  p.notify_route_activity();
  r.sim.run_until(9.0);  // data keep-alive would have expired at 6.0
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);
  r.sim.run_until(11.5);
  EXPECT_EQ(p.mode(), PmMode::PowerSave);
}

TEST(Odpm, ShorterTimerDoesNotTruncateLonger) {
  Rig r;
  r.add();
  Odpm p(r.sim, r.psm, 0, {});  // data 5, rrep 10
  r.psm.start();
  p.start();
  r.sim.run_until(1.0);
  p.notify_route_activity();  // expires 11
  p.notify_data_activity();   // would expire 6; must NOT shorten
  r.sim.run_until(10.0);
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);
}

TEST(Odpm, ModeChangeHookFires) {
  Rig r;
  r.add();
  OdpmConfig cfg;
  cfg.keepalive_data_s = 1.0;
  Odpm p(r.sim, r.psm, 0, cfg);
  std::vector<PmMode> changes;
  p.set_mode_change_hook([&](PmMode m) { changes.push_back(m); });
  r.psm.start();
  p.start();
  r.sim.run_until(0.5);
  p.notify_data_activity();
  r.sim.run_until(3.0);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0], PmMode::ActiveMode);
  EXPECT_EQ(changes[1], PmMode::PowerSave);
}

TEST(PerfectSleep, BillsPassiveTimeAtSleepDraw) {
  Rig r;
  auto& radio = r.add();
  PerfectSleep p(radio);
  p.start();
  EXPECT_EQ(p.mode(), PmMode::ActiveMode);  // always receivable
  r.sim.run_until(10.0);
  radio.finish_metering();
  const auto& card = radio.card();
  EXPECT_NEAR(radio.meter().total(), 10.0 * card.p_sleep, 1e-9);
  EXPECT_FALSE(radio.sleeping());  // logically awake the whole time
}

TEST(PerfectSleep, CheaperThanOdpmIdle) {
  Rig a, b;
  auto& ra = a.add();
  PerfectSleep pa(ra);
  pa.start();
  a.sim.run_until(10.0);
  ra.finish_metering();

  auto& rb = b.add();
  AlwaysActive pb;
  pb.start();
  b.sim.run_until(10.0);
  rb.finish_metering();

  EXPECT_LT(ra.meter().total(), rb.meter().total() / 5.0);
}

}  // namespace
}  // namespace eend::power
