// Brute-force equivalence suite for the spatial index subsystem.
//
// The GridIndex must be observationally identical to the O(N²) all-pairs
// scan it replaced: same neighbor sets under the same predicate
// (distance <= radius), at every density, field shape and degenerate
// configuration. 200+ randomized fields pin that here, plus Channel-level
// checks that the CSR arena's nodes_within() / for_each_within() overloads
// agree with each other and with brute force, including distance ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "mac/channel.hpp"
#include "spatial/grid_index.hpp"
#include "util/rng.hpp"

namespace eend::spatial {
namespace {

using phy::Position;

std::set<std::size_t> brute_within(const std::vector<Position>& pts,
                                   std::size_t of, double radius) {
  std::set<std::size_t> out;
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (j == of) continue;
    if (phy::distance(pts[of], pts[j]) <= radius) out.insert(j);
  }
  return out;
}

std::set<std::size_t> grid_within(const GridIndex& idx, std::size_t of,
                                  double radius) {
  std::set<std::size_t> out;
  idx.for_each_within(of, radius, [&](std::size_t j, double d) {
    EXPECT_TRUE(out.insert(j).second) << "neighbor " << j << " visited twice";
    EXPECT_LE(d, radius);
  });
  return out;
}

void expect_equivalent(const std::vector<Position>& pts, double cell_size,
                       double radius, double field_w, double field_h,
                       const std::string& label) {
  GridIndex idx;
  idx.build(pts, cell_size, field_w, field_h);
  ASSERT_EQ(idx.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(grid_within(idx, i, radius), brute_within(pts, i, radius))
        << label << ": node " << i << " of " << pts.size()
        << " (cell=" << cell_size << ", radius=" << radius << ")";
}

// The tentpole property: 200 randomized fields spanning sparse to dense,
// square and elongated, with query radii below, at, and above the cell
// size. Every neighbor set must equal the brute-force scan's exactly.
TEST(SpatialIndex, TwoHundredRandomFieldsMatchBruteForce) {
  Rng rng(20260726);
  int fields = 0;
  for (int f = 0; f < 200; ++f, ++fields) {
    Rng field_rng = rng.fork(f);
    const std::size_t n = 1 + field_rng.next_below(100);
    const double w = field_rng.uniform(1.0, 3000.0);
    const double h = field_rng.uniform(1.0, 3000.0);
    std::vector<Position> pts(n);
    for (auto& p : pts)
      p = Position{field_rng.uniform(0.0, w), field_rng.uniform(0.0, h)};
    // Coincident points: every 7th field duplicates a prefix of positions.
    if (f % 7 == 0)
      for (std::size_t i = 0; i + 1 < n && i < 5; ++i) pts[i + 1] = pts[i];
    const double cell = field_rng.uniform(5.0, 800.0);
    const double radius =
        cell * field_rng.uniform(0.05, 2.5);  // below & beyond cell size
    expect_equivalent(pts, cell, radius, w, h,
                      "field #" + std::to_string(f));
  }
  EXPECT_EQ(fields, 200);
}

TEST(SpatialIndex, SingleNodeHasNoNeighbors) {
  GridIndex idx;
  idx.build({Position{12.0, 34.0}}, 100.0);
  EXPECT_TRUE(idx.within(0, 1e9).empty());
}

TEST(SpatialIndex, EmptyIndexIsValid) {
  GridIndex idx;
  idx.build({}, 100.0);
  EXPECT_EQ(idx.size(), 0u);
  int visits = 0;
  idx.for_each_within(Position{0, 0}, 50.0,
                      [&](std::size_t, double) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(SpatialIndex, AllOutOfRange) {
  // Nodes pairwise farther apart than the radius: every set is empty.
  std::vector<Position> pts;
  for (int i = 0; i < 10; ++i)
    pts.push_back(Position{i * 1000.0, 0.0});
  GridIndex idx;
  idx.build(pts, 500.0, 9000.0, 1.0);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_TRUE(idx.within(i, 500.0).empty()) << i;
}

TEST(SpatialIndex, AllCoincidentNodesSeeEachOther) {
  std::vector<Position> pts(25, Position{7.0, 7.0});
  GridIndex idx;
  idx.build(pts, 10.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(idx.within(i, 0.0).size(), 24u) << i;  // distance 0 <= 0
    EXPECT_EQ(grid_within(idx, i, 1.0), brute_within(pts, i, 1.0));
  }
}

TEST(SpatialIndex, ZeroAndDegenerateCellSizesFallBack) {
  std::vector<Position> pts{{0, 0}, {50, 0}, {0, 50}, {600, 600}};
  for (const double cell : {0.0, -1.0}) {
    GridIndex idx;
    idx.build(pts, cell);
    for (std::size_t i = 0; i < pts.size(); ++i)
      EXPECT_EQ(grid_within(idx, i, 75.0), brute_within(pts, i, 75.0))
          << "cell=" << cell;
  }
}

TEST(SpatialIndex, PointsOutsideDeclaredFieldAreIndexed) {
  // Extent hint smaller than the data: bounding box must win.
  std::vector<Position> pts{{-200, -100}, {-180, -100}, {950, 900}};
  GridIndex idx;
  idx.build(pts, 100.0, 500.0, 500.0);
  EXPECT_EQ(idx.within(0, 25.0), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(idx.within(2, 25.0).empty());
}

TEST(SpatialIndex, TinyCellSizeIsClampedNotExploded) {
  // A pathological cell size over a big field must not allocate millions
  // of cells; correctness is unchanged either way.
  std::vector<Position> pts{{0, 0}, {1e6, 1e6}, {1e6 - 30.0, 1e6}};
  GridIndex idx;
  idx.build(pts, 1e-3);
  EXPECT_LE(idx.cols() * idx.rows(), std::size_t{1} << 22);
  EXPECT_EQ(idx.within(1, 50.0), (std::vector<std::size_t>{2}));
}

TEST(SpatialIndex, BoolVisitorStopsEarly) {
  std::vector<Position> pts(10, Position{1.0, 1.0});
  GridIndex idx;
  idx.build(pts, 10.0);
  int visits = 0;
  idx.for_each_within(std::size_t{0}, 5.0, [&](std::size_t, double) {
    return ++visits < 3;
  });
  EXPECT_EQ(visits, 3);
}

TEST(SpatialIndex, ArbitraryPositionQueryIncludesAllPoints) {
  std::vector<Position> pts{{0, 0}, {10, 0}, {300, 0}};
  GridIndex idx;
  idx.build(pts, 100.0);
  std::set<std::size_t> got;
  idx.for_each_within(Position{1.0, 0.0}, 20.0,
                      [&](std::size_t j, double) { got.insert(j); });
  EXPECT_EQ(got, (std::set<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace eend::spatial

namespace eend::mac {
namespace {

/// A channel over explicit positions (mirrors channel_test's rig).
struct Rig {
  sim::Simulator sim;
  phy::Propagation prop{energy::cabletron(), {}};
  Channel ch{sim, prop};
  std::vector<std::unique_ptr<NodeRadio>> radios;
  std::vector<phy::Position> pts;

  explicit Rig(const std::vector<phy::Position>& positions,
               double field_w = 0.0, double field_h = 0.0)
      : pts(positions) {
    ch.set_field_extent(field_w, field_h);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      radios.push_back(std::make_unique<NodeRadio>(
          static_cast<NodeId>(i), pts[i], energy::cabletron(), sim));
      ch.register_radio(radios.back().get());
    }
    ch.freeze_topology();
  }
};

std::vector<phy::Position> random_field(Rng& rng, std::size_t n, double w,
                                        double h) {
  std::vector<phy::Position> pts(n);
  for (auto& p : pts)
    p = phy::Position{rng.uniform(0.0, w), rng.uniform(0.0, h)};
  return pts;
}

// Channel-level equivalence: the CSR arena behind nodes_within() must hold
// exactly the brute-force neighbor set, sorted by distance.
TEST(ChannelSpatial, NodesWithinMatchesBruteForceAcrossFields) {
  Rng rng(77);
  for (int f = 0; f < 30; ++f) {
    Rng field_rng = rng.fork(f);
    const std::size_t n = 2 + field_rng.next_below(60);
    const double side = field_rng.uniform(100.0, 2500.0);
    Rig rig(random_field(field_rng, n, side, side), side, side);
    const double max_range = rig.prop.max_range();
    for (const double range :
         {25.0, max_range / 2.0, max_range}) {
      for (NodeId i = 0; i < n; ++i) {
        const auto got = rig.ch.nodes_within(i, range);
        std::set<NodeId> want;
        for (NodeId j = 0; j < n; ++j)
          if (j != i && phy::distance(rig.pts[i], rig.pts[j]) <= range)
            want.insert(j);
        EXPECT_EQ(std::set<NodeId>(got.begin(), got.end()), want)
            << "field #" << f << " node " << i << " range " << range;
        // Ascending-distance contract.
        for (std::size_t k = 1; k < got.size(); ++k)
          EXPECT_LE(phy::distance(rig.pts[i], rig.pts[got[k - 1]]),
                    phy::distance(rig.pts[i], rig.pts[got[k]]));
      }
    }
  }
}

// The vector and visitor overloads must agree element-for-element,
// including visit order.
TEST(ChannelSpatial, VisitorAndVectorOverloadsAgree) {
  Rng rng(4242);
  for (int f = 0; f < 10; ++f) {
    Rng field_rng = rng.fork(f);
    Rig rig(random_field(field_rng, 40, 800.0, 800.0), 800.0, 800.0);
    for (NodeId i = 0; i < 40; ++i) {
      for (const double range : {60.0, 250.0, rig.ch.max_reach()}) {
        const auto vec = rig.ch.nodes_within(i, range);
        std::vector<NodeId> visited;
        double prev = -1.0;
        rig.ch.for_each_within(i, range, [&](NodeId id, double d) {
          visited.push_back(id);
          EXPECT_GE(d, prev);  // ascending distances
          EXPECT_DOUBLE_EQ(d, phy::distance(rig.pts[i], rig.pts[id]));
          prev = d;
        });
        EXPECT_EQ(vec, visited) << "node " << i << " range " << range;
      }
    }
  }
}

TEST(ChannelSpatial, VisitorEarlyExitStopsWalk) {
  Rig rig({{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}}, 100.0, 10.0);
  std::vector<NodeId> seen;
  rig.ch.for_each_within(0, rig.ch.max_reach(), [&](NodeId id, double) {
    seen.push_back(id);
    return seen.size() < 2;
  });
  EXPECT_EQ(seen, (std::vector<NodeId>{1, 2}));
}

TEST(ChannelSpatial, EqualDistanceNeighborsOrderedById) {
  // Four nodes equidistant from the center: ties break by ascending id.
  Rig rig({{100, 100}, {100, 200}, {200, 100}, {100, 0}, {0, 100}},
          200.0, 200.0);
  EXPECT_EQ(rig.ch.nodes_within(0, 150.0),
            (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(ChannelSpatial, SingleNodeChannel) {
  Rig rig({{50, 50}}, 100.0, 100.0);
  EXPECT_TRUE(rig.ch.nodes_within(0, rig.ch.max_reach()).empty());
  EXPECT_TRUE(rig.ch.connectivity_neighbors(0).empty());
}

TEST(ChannelSpatial, AllNodesOutOfReach) {
  // Pairwise separation beyond the full-power CS range (550 m): the arena
  // is empty for every node even though the grid holds them all.
  Rig rig({{0, 0}, {2000, 0}, {4000, 0}, {0, 2000}}, 4000.0, 2000.0);
  for (NodeId i = 0; i < 4; ++i)
    EXPECT_TRUE(rig.ch.nodes_within(i, rig.ch.max_reach()).empty()) << i;
  EXPECT_EQ(rig.ch.grid().size(), 4u);
}

TEST(ChannelSpatial, GridAccessorExposesFrozenIndex) {
  Rig rig({{0, 0}, {100, 0}}, 500.0, 500.0);
  EXPECT_TRUE(rig.ch.grid().built());
  EXPECT_EQ(rig.ch.grid().size(), 2u);
  EXPECT_GT(rig.ch.grid().cell_size(), 0.0);
  EXPECT_LE(rig.ch.grid().cell_size(), rig.ch.max_reach());
}

}  // namespace
}  // namespace eend::mac
