// Unit tests: CBR traffic generation.
#include <gtest/gtest.h>

#include <memory>

#include "routing/protocol.hpp"
#include "traffic/cbr.hpp"

namespace eend::traffic {
namespace {

/// Routing stub that records packets instead of sending them.
class SinkRouting final : public routing::RoutingProtocol {
 public:
  explicit SinkRouting(routing::NodeEnv env)
      : routing::RoutingProtocol(std::move(env)) {}
  void start() override {}
  void send_data(mac::Packet p) override { packets.push_back(std::move(p)); }
  std::vector<mac::Packet> packets;
};

struct Rig {
  sim::Simulator sim;
  routing::NodeEnv env;  // mostly-empty: SinkRouting touches nothing
  SinkRouting sink{[this] {
    routing::NodeEnv e;
    e.id = 0;
    e.sim = &sim;
    return e;
  }()};
};

TEST(Cbr, GeneratesAtConfiguredRate) {
  Rig r;
  FlowSpec spec;
  spec.flow_id = 3;
  spec.source = 0;
  spec.destination = 9;
  spec.packets_per_s = 4.0;
  spec.start_s = 10.0;
  int sent = 0;
  CbrSource cbr(r.sim, r.sink, spec, [&](const FlowSpec&) { ++sent; });
  cbr.start();
  r.sim.run_until(20.0);
  // start at 10.0, then every 0.25 s: t=10.0 .. 20.0 inclusive => 41.
  EXPECT_EQ(sent, 41);
  EXPECT_EQ(cbr.packets_sent(), 41u);
  EXPECT_EQ(r.sink.packets.size(), 41u);
}

TEST(Cbr, PacketFieldsPopulated) {
  Rig r;
  FlowSpec spec;
  spec.flow_id = 7;
  spec.source = 2;
  spec.destination = 5;
  spec.payload_bits = 1024;
  spec.start_s = 1.0;
  CbrSource cbr(r.sim, r.sink, spec, nullptr);
  cbr.start();
  r.sim.run_until(1.0);
  ASSERT_EQ(r.sink.packets.size(), 1u);
  const auto& p = r.sink.packets[0];
  EXPECT_EQ(p.flow_id, 7);
  EXPECT_EQ(p.origin, 2u);
  EXPECT_EQ(p.final_dest, 5u);
  EXPECT_EQ(p.size_bits, 1024u);
  EXPECT_EQ(p.category, energy::Category::Data);
  EXPECT_DOUBLE_EQ(p.created_at, 1.0);
}

TEST(Cbr, StopsAtStopTime) {
  Rig r;
  FlowSpec spec;
  spec.packets_per_s = 2.0;
  spec.start_s = 0.0;
  spec.stop_s = 5.0;
  CbrSource cbr(r.sim, r.sink, spec, nullptr);
  cbr.start();
  r.sim.run_until(100.0);
  // t = 0, 0.5, ..., 4.5 => 10 packets (tick at 5.0 sees stop).
  EXPECT_EQ(cbr.packets_sent(), 10u);
}

TEST(Cbr, UidsAreUniqueAcrossFlows) {
  Rig r;
  FlowSpec a;
  a.flow_id = 0;
  a.start_s = 0.0;
  FlowSpec b;
  b.flow_id = 1;
  b.start_s = 0.0;
  CbrSource ca(r.sim, r.sink, a, nullptr);
  CbrSource cb(r.sim, r.sink, b, nullptr);
  ca.start();
  cb.start();
  r.sim.run_until(10.0);
  std::set<std::uint64_t> uids;
  for (const auto& p : r.sink.packets) uids.insert(p.uid);
  EXPECT_EQ(uids.size(), r.sink.packets.size());
}

TEST(Cbr, InvalidSpecsThrow) {
  Rig r;
  FlowSpec bad;
  bad.packets_per_s = 0.0;
  EXPECT_THROW(CbrSource(r.sim, r.sink, bad, nullptr), CheckError);
}

}  // namespace
}  // namespace eend::traffic
