// Unit tests: propagation model, ranges and TPC inversion.
#include <gtest/gtest.h>

#include "phy/position.hpp"
#include "phy/propagation.hpp"

namespace eend::phy {
namespace {

Propagation make_prop(PropagationConfig cfg = {}) {
  return Propagation(energy::cabletron(), cfg);
}

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Propagation, MaxRangeBoundary) {
  const auto p = make_prop();
  EXPECT_TRUE(p.in_max_range(250.0));
  EXPECT_FALSE(p.in_max_range(250.1));
  EXPECT_DOUBLE_EQ(p.max_range(), 250.0);
}

TEST(Propagation, RequiredPowerRoundTrip) {
  const auto p = make_prop();
  // For any reachable distance, transmitting at the required power must
  // produce a decode range covering that distance.
  for (double d : {10.0, 50.0, 124.7, 199.99, 250.0}) {
    const double pw = p.required_power(d);
    EXPECT_GE(p.rx_range(pw), d) << "d=" << d;
    // And not wastefully larger (within 1%).
    EXPECT_LE(p.rx_range(pw), d * 1.01 + 1.0) << "d=" << d;
  }
}

TEST(Propagation, RequiredPowerBeyondRangeThrows) {
  const auto p = make_prop();
  EXPECT_THROW(p.required_power(251.0), CheckError);
}

TEST(Propagation, RangesScaleWithConfigFactors) {
  PropagationConfig cfg;
  cfg.cs_range_factor = 2.0;
  cfg.interference_range_factor = 1.5;
  const auto p = make_prop(cfg);
  const double full = energy::cabletron().max_transmit_power();
  EXPECT_NEAR(p.cs_range(full), 2.0 * p.rx_range(full), 1e-9);
  EXPECT_NEAR(p.interference_range(full), 1.5 * p.rx_range(full), 1e-9);
}

TEST(Propagation, FootprintScalingCanBeDisabled) {
  PropagationConfig cfg;
  cfg.scale_footprint_with_power = false;
  const auto p = make_prop(cfg);
  const double low = p.required_power(50.0);
  // With scaling off, even a low-power frame occupies the full footprint.
  EXPECT_DOUBLE_EQ(p.rx_range(low), 250.0);

  const auto scaled = make_prop();
  EXPECT_LT(scaled.rx_range(low), 80.0);
}

TEST(Propagation, RangeOfLevelMonotone) {
  const auto p = make_prop();
  double prev = 0.0;
  for (double pt = 0.01; pt < 0.3; pt += 0.02) {
    const double r = p.range_of_level(pt);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(Propagation, ZeroAndNegativeLevels) {
  const auto p = make_prop();
  EXPECT_DOUBLE_EQ(p.range_of_level(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.range_of_level(-1.0), 0.0);
}

TEST(Propagation, MaxPowerCoversMaxRange) {
  for (const auto& card : energy::fig7_cards()) {
    const Propagation p(card, {});
    EXPECT_GE(p.rx_range(card.max_transmit_power()) + 1e-6, card.max_range_m)
        << card.name;
  }
}

}  // namespace
}  // namespace eend::phy
