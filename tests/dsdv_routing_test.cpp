// Unit tests: DSDV / DSDVH proactive routing — convergence, sequence-number
// rules, link breaks, TTL protection, triggered updates, PM-change adverts.
#include <gtest/gtest.h>

#include <memory>

#include "routing/dsdv.hpp"

namespace eend::routing {
namespace {

struct Rig {
  sim::Simulator sim;
  phy::Propagation prop{energy::cabletron(), {}};
  mac::Channel ch{sim, prop};
  std::vector<std::unique_ptr<mac::NodeRadio>> radios;
  std::vector<std::unique_ptr<mac::Mac>> macs;
  std::vector<std::unique_ptr<power::AlwaysActive>> power;
  std::vector<std::unique_ptr<DsdvRouting>> routing;
  std::vector<mac::Packet> delivered;
  DsdvConfig cfg;

  void add(double x, double y) {
    auto r = std::make_unique<mac::NodeRadio>(
        static_cast<mac::NodeId>(radios.size()), phy::Position{x, y},
        energy::cabletron(), sim);
    ch.register_radio(r.get());
    radios.push_back(std::move(r));
  }

  void wire() {
    ch.freeze_topology();
    for (std::size_t i = 0; i < radios.size(); ++i) {
      radios[i]->begin_metering(energy::RadioMode::Idle);
      macs.push_back(std::make_unique<mac::Mac>(
          sim, ch, *radios[i], nullptr, Rng(500 + i), mac::MacConfig{}));
      power.push_back(std::make_unique<power::AlwaysActive>());
    }
    for (std::size_t i = 0; i < radios.size(); ++i) {
      NodeEnv env;
      env.id = static_cast<mac::NodeId>(i);
      env.sim = &sim;
      env.channel = &ch;
      env.mac = macs[i].get();
      env.radio = radios[i].get();
      env.power = power[i].get();
      env.rng = Rng(600 + i);
      env.neighbor_is_am = [](mac::NodeId) { return true; };
      env.deliver_app = [this](const mac::Packet& p) {
        delivered.push_back(p);
      };
      routing.push_back(std::make_unique<DsdvRouting>(std::move(env), cfg));
    }
    for (auto& r : routing) r->start();
  }

  void send(mac::NodeId from, mac::NodeId to) {
    mac::Packet p;
    p.origin = from;
    p.final_dest = to;
    p.size_bits = 1024;
    p.created_at = sim.now();
    routing[from]->send_data(std::move(p));
  }
};

TEST(DsdvRouting, ChainConverges) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.add(600, 0);
  r.wire();
  r.sim.run_until(15.0);
  // Every node routes to every other.
  EXPECT_EQ(r.routing[0]->next_hop_to(3), 1u);
  EXPECT_EQ(r.routing[3]->next_hop_to(0), 2u);
  EXPECT_EQ(r.routing[1]->next_hop_to(3), 2u);
  EXPECT_EQ(r.routing[0]->table_size(), 4u);
}

TEST(DsdvRouting, DeliversDataAfterConvergence) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.wire();
  r.sim.run_until(15.0);
  r.send(0, 2);
  r.sim.run_until(20.0);
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.routing[1]->stats().data_forwarded, 1u);
}

TEST(DsdvRouting, DropsWhenNoRoute) {
  Rig r;
  r.add(0, 0);
  r.add(5000, 0);  // unreachable
  r.wire();
  r.sim.run_until(15.0);
  r.send(0, 1);
  r.sim.run_until(16.0);
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.routing[0]->stats().drops_no_route, 1u);
}

TEST(DsdvRouting, LinkBreakInvalidatesAndReRoutes) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);    // relay on the straight path
  r.add(400, 0);
  r.add(200, 150);  // alternate relay (within 250 m of both ends)
  r.wire();
  r.sim.run_until(15.0);
  r.radios[1]->fail_permanently();
  // First packet hits the dead next hop, gets dropped, triggers the break
  // advertisement; a later packet must go around.
  r.send(0, 2);
  r.sim.run_until(25.0);
  r.send(0, 2);
  r.sim.run_until(40.0);
  EXPECT_GE(r.delivered.size(), 1u);
  EXPECT_EQ(r.routing[0]->next_hop_to(2), 3u);
}

TEST(DsdvRouting, TtlStopsLoopingPackets) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.wire();
  r.sim.run_until(15.0);
  mac::Packet p;
  p.origin = 0;
  p.final_dest = 1;
  p.size_bits = 128;
  p.ttl = 0;  // exhausted on arrival
  r.routing[0]->send_data(std::move(p));
  r.sim.run_until(16.0);
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.routing[0]->stats().drops_ttl, 1u);
}

TEST(DsdvRouting, TriggeredUpdatesAccelerateConvergence) {
  // With triggered updates, convergence happens in a few seconds, well
  // before the second periodic dump (15 s).
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.add(600, 0);
  r.add(800, 0);
  r.wire();
  r.sim.run_until(8.0);
  EXPECT_NE(r.routing[0]->next_hop_to(4), mac::kBroadcast);
}

TEST(DsdvRouting, UpdateCountsTracked) {
  Rig r;
  r.add(0, 0);
  r.add(200, 0);
  r.wire();
  r.sim.run_until(40.0);
  // At least: initial dump + 2 periodic dumps.
  EXPECT_GE(r.routing[0]->stats().updates_sent, 3u);
}

TEST(DsdvRouting, QualityChurnEmitsMoreUpdates) {
  auto updates = [](double interval, double noise) {
    Rig r;
    r.cfg.quality_update_interval_s = interval;
    r.cfg.quality_noise = noise;
    r.add(0, 0);
    r.add(200, 0);
    r.add(400, 0);
    r.wire();
    r.sim.run_until(60.0);
    std::uint64_t total = 0;
    for (auto& rt : r.routing) total += rt->stats().updates_sent;
    return total;
  };
  EXPECT_GT(updates(2.0, 0.3), updates(0.0, 0.0) + 10);
}

TEST(DsdvRouting, JointHMetricRoutesAroundExpensiveRelay) {
  // DSDVH with all-AM oracle behaves like cost-based routing; verify a
  // Cabletron chain still converges and delivers under the h metric.
  Rig r;
  r.cfg.metric = LinkMetric::JointH;
  r.add(0, 0);
  r.add(200, 0);
  r.add(400, 0);
  r.wire();
  r.sim.run_until(15.0);
  r.send(0, 2);
  r.sim.run_until(20.0);
  EXPECT_EQ(r.delivered.size(), 1u);
}

}  // namespace
}  // namespace eend::routing
