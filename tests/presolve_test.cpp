// Unit + soundness tests for the presolve subsystem: per-reduction hand
// graphs (dead ends, chains, long edges, terminal-free components,
// degenerates), trace un-mapping, reduced-twin bit-identity for every
// constructive solver, compact-optimum preservation against the exact
// oracle, and the certified lower bound against an exhaustive design
// oracle on small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/shortest_path.hpp"
#include "graph/steiner.hpp"
#include "opt/design_heuristic.hpp"
#include "opt/design_instance.hpp"
#include "opt/portfolio.hpp"
#include "presolve/presolve.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace eend::presolve {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

core::NetworkDesignProblem problem_of(Graph g,
                                      std::vector<graph::Demand> demands) {
  core::NetworkDesignProblem p(std::move(g));
  for (const auto& d : demands) p.add_demand(d);
  return p;
}

/// Exhaustive design oracle: minimum Eq. 5 total over every active-node
/// superset of the terminals. Exponential — tiny instances only.
double oracle_min_total(const core::NetworkDesignProblem& p,
                        const analytical::Eq5Params& eval) {
  const std::vector<NodeId> terminals = p.terminals();
  std::vector<NodeId> optional;
  for (NodeId v = 0; v < p.graph().node_count(); ++v)
    if (std::find(terminals.begin(), terminals.end(), v) == terminals.end())
      optional.push_back(v);
  EEND_REQUIRE(optional.size() <= 12);
  double best = graph::kInfCost;
  for (std::size_t mask = 0; mask < (std::size_t{1} << optional.size());
       ++mask) {
    std::vector<NodeId> nodes(terminals.begin(), terminals.end());
    for (std::size_t i = 0; i < optional.size(); ++i)
      if (mask & (std::size_t{1} << i)) nodes.push_back(optional[i]);
    const opt::CandidateDesign cand =
        opt::evaluate_design(p, nodes, opt::DesignObjective(eval));
    if (cand.feasible) best = std::min(best, cand.score.total());
  }
  return best;
}

// ------------------------------------------------------- hand instances ---

TEST(Presolve, DeadEndChainsAreMaskedNotSearched) {
  // Square 0-1-2-3 with a pendant tail 2-4-5; demand 0 -> 2.
  Graph g(6);
  for (NodeId v = 0; v < 6; ++v) g.set_node_weight(v, 1.0 + v);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  g.add_edge(2, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  const auto pr = presolve_design(problem_of(g, {{0, 2, 1.0}}));

  EXPECT_EQ(pr.trace.count(ReductionKind::kDeadEndNode), 2u);  // 5 then 4
  // node_reduced keeps the original id space, minus the two tail edges.
  EXPECT_EQ(pr.node_reduced.graph().node_count(), 6u);
  EXPECT_EQ(pr.node_reduced.graph().edge_count(), 4u);
  // compact additionally contracts the two parallel 0-x-2 chains.
  EXPECT_EQ(pr.trace.count(ReductionKind::kChainContraction), 2u);
  EXPECT_EQ(pr.compact.graph().node_count(), 4u);
  EXPECT_EQ(pr.reduced_nodes, 2u);
  // Two parallel routes: nothing is forced.
  EXPECT_TRUE(pr.forced_nodes.empty());
}

TEST(Presolve, ChainContractionFoldsInteriorWeights) {
  // Path 0-1-2-3, demand 0 -> 3: interior {1, 2} folds into one synthetic
  // node carrying both weights, and that node is forced (articulation).
  Graph g(4);
  g.set_node_weight(0, 1.0);
  g.set_node_weight(1, 2.0);
  g.set_node_weight(2, 3.0);
  g.set_node_weight(3, 1.0);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  g.add_edge(2, 3, 3.5);
  const auto pr = presolve_design(problem_of(g, {{0, 3, 2.0}}));

  ASSERT_EQ(pr.compact.graph().node_count(), 3u);
  ASSERT_EQ(pr.compact.graph().edge_count(), 2u);
  const NodeId syn = pr.trace.compact_of[1];
  EXPECT_EQ(pr.trace.compact_of[2], syn);
  EXPECT_DOUBLE_EQ(pr.compact.graph().node_weight(syn), 5.0);
  EXPECT_EQ(pr.trace.unmap_nodes(std::vector<NodeId>{syn}),
            (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(pr.forced_nodes, (std::vector<NodeId>{1, 2}));

  // Both bound terms are exact here: the idle bound is the forced interior
  // weight, the routing bound the rate-weighted path length.
  EXPECT_DOUBLE_EQ(pr.idle_lb_raw, 5.0);
  EXPECT_DOUBLE_EQ(pr.data_lb_raw, 2.0 * (1.5 + 2.5 + 3.5));
  analytical::Eq5Params eval;
  eval.t_idle = 2.0;
  eval.t_data_per_packet = 0.5;
  EXPECT_DOUBLE_EQ(pr.lower_bound(eval),
                   2.0 * 5.0 + 0.5 * 2.0 * 7.5);
  // On a path instance the bound is tight: it equals the only design.
  EXPECT_DOUBLE_EQ(pr.lower_bound(eval), oracle_min_total(pr.compact, eval));
}

TEST(Presolve, LongEdgeEliminatedOnlyFromEdgeReducedView) {
  // Terminal triangle: the heavy 0-2 edge is strictly beaten by the
  // 0-1-2 witness through a terminal interior.
  Graph g(3);
  for (NodeId v = 0; v < 3; ++v) g.set_node_weight(v, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const EdgeId heavy = g.add_edge(0, 2, 3.0);
  const auto pr =
      presolve_design(problem_of(g, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}}));

  EXPECT_EQ(pr.trace.count(ReductionKind::kLongEdge), 1u);
  EXPECT_EQ(pr.edge_reduced.graph().edge_count(), 2u);
  bool recorded = false;
  for (const ReductionStep& s : pr.trace.steps)
    if (s.kind == ReductionKind::kLongEdge) recorded = (s.edge == heavy);
  EXPECT_TRUE(recorded);
  // The node-weighted views keep the edge: the elimination argument is
  // edge-weighted only.
  EXPECT_EQ(pr.node_reduced.graph().edge_count(), 3u);
  EXPECT_EQ(pr.compact.graph().edge_count(), 3u);
  // Distances must survive the elimination exactly.
  const auto before = graph::dijkstra(g, 0);
  const auto after = graph::dijkstra(pr.edge_reduced.graph(), 0);
  for (NodeId v = 0; v < 3; ++v)
    EXPECT_EQ(before.distance[v], after.distance[v]);
}

TEST(Presolve, EqualWitnessDoesNotEliminate) {
  // Witness equal to the edge weight must NOT fire (strict test with
  // margin): removing it could change tie-broken search results.
  Graph g(3);
  for (NodeId v = 0; v < 3; ++v) g.set_node_weight(v, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 2.0);
  const auto pr =
      presolve_design(problem_of(g, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}}));
  EXPECT_EQ(pr.trace.count(ReductionKind::kLongEdge), 0u);
  EXPECT_EQ(pr.edge_reduced.graph().edge_count(), 3u);
}

TEST(Presolve, TerminalFreeComponentDroppedFromCompact) {
  // Demand square plus a disjoint non-terminal triangle (cycle, so dead-end
  // elimination cannot touch it).
  Graph g(7);
  for (NodeId v = 0; v < 7; ++v) g.set_node_weight(v, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 6, 1.0);
  g.add_edge(6, 4, 1.0);
  const auto pr = presolve_design(problem_of(g, {{0, 2, 1.0}}));
  EXPECT_EQ(pr.trace.count(ReductionKind::kTerminalFreeComponent), 3u);
  EXPECT_EQ(pr.compact.graph().node_count(), 4u);  // 0, 2 + two chain nodes
  EXPECT_EQ(pr.trace.compact_of[4], graph::kInvalidNode);
  // node_reduced masks edges only, so the triangle still exists there —
  // harmless: no solver ever reaches it from the terminals.
  EXPECT_EQ(pr.node_reduced.graph().edge_count(), 7u);
}

TEST(Presolve, NoOpInstanceIsUntouched) {
  // Complete terminal square with uniform weights: nothing is reducible.
  Graph g(4);
  for (NodeId v = 0; v < 4; ++v) g.set_node_weight(v, 1.0);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v, 1.0);
  const auto pr = presolve_design(
      problem_of(g, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}}));
  EXPECT_TRUE(pr.trace.steps.empty());
  EXPECT_EQ(pr.reduced_nodes, 0u);
  EXPECT_EQ(pr.reduced_edges, 0u);
  EXPECT_EQ(pr.compact.graph().node_count(), 4u);
  EXPECT_EQ(pr.compact.graph().edge_count(), 6u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(pr.trace.compact_of[v], v);
}

TEST(Presolve, FullyReducibleInstanceCollapsesToTerminals) {
  // Direct demand edge plus a pendant tree: everything else vanishes.
  Graph g(6);
  for (NodeId v = 0; v < 6; ++v) g.set_node_weight(v, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);  // pendant fan off the source
  g.add_edge(2, 3, 1.0);
  g.add_edge(2, 4, 1.0);
  g.add_edge(1, 5, 1.0);  // pendant leaf off the destination
  const auto pr = presolve_design(problem_of(g, {{0, 1, 1.0}}));
  EXPECT_EQ(pr.trace.count(ReductionKind::kDeadEndNode), 4u);
  EXPECT_EQ(pr.compact.graph().node_count(), 2u);
  EXPECT_EQ(pr.compact.graph().edge_count(), 1u);
  EXPECT_EQ(pr.reduced_nodes, 4u);
  EXPECT_EQ(pr.reduced_edges, 4u);
  EXPECT_DOUBLE_EQ(pr.idle_lb_raw, 0.0);   // endpoints carry no idle bound
  EXPECT_DOUBLE_EQ(pr.data_lb_raw, 1.0);
}

TEST(Presolve, PendantCycleInteriorIsDropped) {
  // A cycle hanging off one anchor: the walk returns to its own anchor, so
  // the interior can never help any connection and is dropped outright.
  Graph g(5);
  for (NodeId v = 0; v < 5; ++v) g.set_node_weight(v, 1.0);
  g.add_edge(0, 1, 1.0);  // demand edge
  g.add_edge(0, 2, 1.0);  // cycle 0-2-3-4-0
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 0, 1.0);
  const auto pr = presolve_design(problem_of(g, {{0, 1, 1.0}}));
  EXPECT_EQ(pr.trace.count(ReductionKind::kChainContraction), 3u);
  EXPECT_EQ(pr.compact.graph().node_count(), 2u);
  EXPECT_EQ(pr.compact.graph().edge_count(), 1u);
}

TEST(Presolve, ForcedNodeAtTerminalSeparatingArticulation) {
  // Two triangles sharing the cut node 2: every 0 -> 1 route crosses it.
  Graph g(5);
  for (NodeId v = 0; v < 5; ++v) g.set_node_weight(v, 1.0 + v);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 4, 1.0);
  g.add_edge(4, 1, 1.0);
  g.add_edge(2, 1, 1.0);
  const auto pr = presolve_design(problem_of(g, {{0, 1, 1.0}}));
  EXPECT_EQ(pr.forced_nodes, (std::vector<NodeId>{2}));
  // The forced weight enters the idle bound on top of the dual ascent.
  EXPECT_GE(pr.idle_lb_raw, g.node_weight(2));
}

TEST(Presolve, RequiresStrictlyPositiveWeightsAndDemands) {
  Graph ok(2);
  ok.set_node_weight(0, 1.0);
  ok.set_node_weight(1, 1.0);
  ok.add_edge(0, 1, 1.0);
  EXPECT_THROW(presolve_design(problem_of(ok, {})), CheckError);

  Graph zero_node = ok;
  zero_node.set_node_weight(1, 0.0);
  EXPECT_THROW(presolve_design(problem_of(zero_node, {{0, 1, 1.0}})),
               CheckError);

  Graph zero_edge(2);
  zero_edge.set_node_weight(0, 1.0);
  zero_edge.set_node_weight(1, 1.0);
  zero_edge.add_edge(0, 1, 0.0);
  EXPECT_THROW(presolve_design(problem_of(zero_edge, {{0, 1, 1.0}})),
               CheckError);
}

// ---------------------------------------------- randomized invariance ---

/// Random reducible instance: a ring core with chords, pendant chains
/// hanging off it, one deliberately heavy chord between terminals (long-
/// edge fodder) and a disjoint non-terminal triangle.
core::NetworkDesignProblem random_reducible_problem(Rng& rng,
                                                    std::size_t core_n) {
  Graph g;
  for (std::size_t v = 0; v < core_n; ++v)
    g.add_node(rng.uniform(0.5, 3.0));
  for (NodeId v = 0; v < core_n; ++v)
    g.add_edge(v, static_cast<NodeId>((v + 1) % core_n),
               rng.uniform(1.0, 2.0));
  for (int c = 0; c < 4; ++c) {
    const auto a = static_cast<NodeId>(rng.next_below(core_n));
    const auto b = static_cast<NodeId>(rng.next_below(core_n));
    if (a != b) g.add_edge(a, b, rng.uniform(1.0, 2.0));
  }
  // Heavy terminal-terminal chord, strictly beaten by the ring arc.
  g.add_edge(0, 1, 50.0);
  // Pendant chains.
  for (int chain = 0; chain < 3; ++chain) {
    NodeId at = static_cast<NodeId>(rng.next_below(core_n));
    const std::size_t len = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < len; ++i) {
      const NodeId leaf = g.add_node(rng.uniform(0.5, 3.0));
      g.add_edge(at, leaf, rng.uniform(1.0, 2.0));
      at = leaf;
    }
  }
  // Disjoint non-terminal triangle.
  const NodeId t0 = g.add_node(1.0), t1 = g.add_node(1.0),
               t2 = g.add_node(1.0);
  g.add_edge(t0, t1, 1.0);
  g.add_edge(t1, t2, 1.0);
  g.add_edge(t2, t0, 1.0);

  return problem_of(std::move(g),
                    {{0, 1, 1.0},
                     {static_cast<NodeId>(2), static_cast<NodeId>(core_n / 2),
                      rng.uniform(0.5, 2.0)}});
}

void expect_same_tree(const graph::SteinerTree& a, const graph::SteinerTree& b,
                      const char* what, int trial) {
  EXPECT_EQ(a.feasible, b.feasible) << what << " trial " << trial;
  EXPECT_EQ(a.nodes, b.nodes) << what << " trial " << trial;
  // Bit-identical, not merely close: the twins must replay the exact same
  // arithmetic.
  EXPECT_EQ(a.node_cost, b.node_cost) << what << " trial " << trial;
  EXPECT_EQ(a.edge_cost, b.edge_cost) << what << " trial " << trial;
}

TEST(Presolve, ReducedTwinsAreBitIdenticalForEverySolver) {
  Rng rng(777);
  std::size_t total_dead_ends = 0, total_long_edges = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto p = random_reducible_problem(rng, 10);
    const auto pr = presolve_design(p);
    total_dead_ends += pr.trace.count(ReductionKind::kDeadEndNode);
    total_long_edges += pr.trace.count(ReductionKind::kLongEdge);

    expect_same_tree(p.solve_node_weighted(),
                     pr.node_reduced.solve_node_weighted(), "klein_ravi",
                     trial);
    expect_same_tree(p.solve_mpc_reduction(),
                     pr.node_reduced.solve_mpc_reduction(), "mpc", trial);
    expect_same_tree(p.solve_edge_weighted(),
                     pr.edge_reduced.solve_edge_weighted(), "kmb", trial);

    // Shortest-path distances survive the edge-reduced view exactly.
    for (const graph::Demand& d : p.demands()) {
      const auto full = graph::dijkstra(p.graph(), d.source);
      const auto reduced =
          graph::dijkstra(pr.edge_reduced.graph(), d.source);
      EXPECT_EQ(full.distance[d.destination],
                reduced.distance[d.destination])
          << "trial " << trial;
    }
  }
  // The family must actually exercise the reductions, or the equalities
  // above are vacuous.
  EXPECT_GT(total_dead_ends, 0u);
  EXPECT_GT(total_long_edges, 0u);
}

TEST(Presolve, PortfolioSearchIsBitIdenticalWithPresolve) {
  // End-to-end over the GRASP portfolio: reduced constructive seeds (and
  // the random_klein_ravi jitter stream on node_reduced) must reproduce
  // the unreduced search byte for byte.
  Rng rng(31337);
  for (int trial = 0; trial < 3; ++trial) {
    const auto p = random_reducible_problem(rng, 10);
    const auto pr = presolve_design(p);

    opt::PortfolioOptions po;
    po.starts = 6;  // covers klein_ravi, mpc, kmb + both random kinds
    po.anneal.iterations = 40;
    po.seed = 17 + trial;
    const auto plain = opt::design_portfolio(p, po);
    po.presolve = &pr;
    const auto reduced = opt::design_portfolio(p, po);

    EXPECT_EQ(plain.best_start, reduced.best_start) << "trial " << trial;
    EXPECT_EQ(plain.best.nodes, reduced.best.nodes) << "trial " << trial;
    EXPECT_EQ(plain.best.score.total(), reduced.best.score.total())
        << "trial " << trial;
    ASSERT_EQ(plain.starts.size(), reduced.starts.size());
    for (std::size_t i = 0; i < plain.starts.size(); ++i) {
      EXPECT_EQ(plain.starts[i].seed_kind, reduced.starts[i].seed_kind);
      EXPECT_EQ(plain.starts[i].seeded.nodes, reduced.starts[i].seeded.nodes)
          << "start " << i << " trial " << trial;
      EXPECT_EQ(plain.starts[i].improved.nodes,
                reduced.starts[i].improved.nodes)
          << "start " << i << " trial " << trial;
    }
  }
}

// --------------------------------------------------- certified bounds ---

TEST(Presolve, CompactOptimumEqualsOriginalOptimum) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = random_reducible_problem(rng, 8);
    const auto pr = presolve_design(p);
    const auto exact_full =
        graph::exact_node_weighted_steiner(p.graph(), p.terminals());
    const auto exact_compact = graph::exact_node_weighted_steiner(
        pr.compact.graph(), pr.compact.terminals());
    ASSERT_EQ(exact_full.feasible, exact_compact.feasible)
        << "trial " << trial;
    if (!exact_full.feasible) continue;
    // Chain contraction re-associates weight sums; allow float slack only.
    EXPECT_NEAR(exact_compact.node_cost, exact_full.node_cost,
                1e-9 * (1.0 + exact_full.node_cost))
        << "trial " << trial;
    // Un-mapping the compact optimum lands on original ids.
    for (const NodeId v :
         pr.trace.unmap_nodes(std::vector<NodeId>(
             exact_compact.nodes.begin(), exact_compact.nodes.end())))
      EXPECT_LT(v, p.graph().node_count());
  }
}

TEST(Presolve, LowerBoundNeverExceedsExhaustiveOracle) {
  analytical::Eq5Params plain;
  analytical::Eq5Params endpoint_idle;
  endpoint_idle.t_idle = 3.0;
  endpoint_idle.t_data_per_packet = 0.25;
  endpoint_idle.include_endpoint_idle = true;

  Rng rng(9001);
  int checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    // <= 10 nodes total so the exhaustive oracle stays instant.
    const std::size_t core_n = 5 + rng.next_below(3);
    Graph g;
    for (std::size_t v = 0; v < core_n; ++v)
      g.add_node(rng.uniform(0.5, 4.0));
    for (NodeId v = 0; v < core_n; ++v)
      g.add_edge(v, static_cast<NodeId>((v + 1) % core_n),
                 rng.uniform(0.5, 3.0));
    for (int c = 0; c < 3; ++c) {
      const auto a = static_cast<NodeId>(rng.next_below(core_n));
      const auto b = static_cast<NodeId>(rng.next_below(core_n));
      if (a != b) g.add_edge(a, b, rng.uniform(0.5, 3.0));
    }
    const NodeId leaf = g.add_node(rng.uniform(0.5, 4.0));
    g.add_edge(static_cast<NodeId>(rng.next_below(core_n)), leaf, 1.0);

    const auto p = problem_of(
        std::move(g),
        {{0, static_cast<NodeId>(core_n / 2), 1.0},
         {1, static_cast<NodeId>(core_n - 1), rng.uniform(0.5, 2.0)}});
    if (p.terminals().size() < 3) continue;
    const auto pr = presolve_design(p);

    for (const auto& eval : {plain, endpoint_idle}) {
      const double opt = oracle_min_total(p, eval);
      ASSERT_LT(opt, graph::kInfCost);
      EXPECT_LE(pr.lower_bound(eval), opt * (1.0 + 1e-9))
          << "trial " << trial;
      EXPECT_GT(pr.lower_bound(eval), 0.0);
      ++checked;
    }
  }
  EXPECT_GE(checked, 16);
}

TEST(Presolve, InstanceSpecPresolveFlagPopulatesTheInstance) {
  opt::DesignInstanceSpec spec;
  spec.node_count = 60;
  spec.demand_count = 4;
  spec.seed = 5;
  const auto plain = opt::make_design_instance(spec);
  EXPECT_EQ(plain.presolve, nullptr);

  spec.presolve = true;
  const auto reduced = opt::make_design_instance(spec);
  ASSERT_NE(reduced.presolve, nullptr);
  EXPECT_GT(reduced.presolve->lower_bound(analytical::Eq5Params{}), 0.0);
  // The reduced twins share the instance's id space and demand list.
  EXPECT_EQ(reduced.presolve->node_reduced.graph().node_count(),
            reduced.problem.graph().node_count());
  EXPECT_EQ(reduced.presolve->node_reduced.demands().size(),
            reduced.problem.demands().size());
  // compact_of covers every node.
  EXPECT_EQ(reduced.presolve->trace.compact_of.size(),
            reduced.problem.graph().node_count());
}

}  // namespace
}  // namespace eend::presolve
