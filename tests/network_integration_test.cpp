// Integration tests: full protocol stacks on small deterministic networks.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "net/network.hpp"

namespace eend {
namespace {

net::ScenarioConfig tiny_scenario() {
  net::ScenarioConfig c;
  c.node_count = 12;
  c.field_w = c.field_h = 400.0;
  c.flow_count = 2;
  c.rate_pps = 2.0;
  c.duration_s = 60.0;
  c.seed = 7;
  return c;
}

TEST(NetworkIntegration, DsrActiveDeliversTraffic) {
  net::Network n(tiny_scenario(), net::StackSpec::dsr_active());
  const auto r = n.run();
  EXPECT_GT(r.sent, 100u);
  EXPECT_GT(r.delivery_ratio, 0.95);
  EXPECT_GT(r.total_energy_j, 0.0);
}

TEST(NetworkIntegration, DsrOdpmDeliversTraffic) {
  net::Network n(tiny_scenario(), net::StackSpec::dsr_odpm());
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.9);
  // ODPM must save energy versus always-active.
  net::Network active(tiny_scenario(), net::StackSpec::dsr_active());
  const auto ra = active.run();
  EXPECT_LT(r.total_energy_j, ra.total_energy_j);
}

TEST(NetworkIntegration, TitanPcDeliversTraffic) {
  net::Network n(tiny_scenario(), net::StackSpec::titan_pc());
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.9);
}

TEST(NetworkIntegration, DsrhNorateDeliversTraffic) {
  net::Network n(tiny_scenario(), net::StackSpec::dsrh_odpm_norate());
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.9);
}

TEST(NetworkIntegration, DsdvhOdpmDeliversTraffic) {
  net::Network n(tiny_scenario(), net::StackSpec::dsdvh_odpm_psm());
  const auto r = n.run();
  EXPECT_GT(r.delivery_ratio, 0.8);
  EXPECT_GT(r.update_transmissions, 0u);
}

TEST(NetworkIntegration, PerfectSleepUsesLessEnergyThanOdpm) {
  net::Network perfect(tiny_scenario(), net::StackSpec::dsr_perfect());
  const auto rp = perfect.run();
  net::Network odpm(tiny_scenario(), net::StackSpec::dsr_odpm());
  const auto ro = odpm.run();
  EXPECT_GT(rp.delivery_ratio, 0.95);
  EXPECT_LT(rp.total_energy_j, ro.total_energy_j);
}

TEST(NetworkIntegration, DeterministicAcrossRebuilds) {
  net::Network a(tiny_scenario(), net::StackSpec::titan_pc());
  net::Network b(tiny_scenario(), net::StackSpec::titan_pc());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.sent, rb.sent);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_DOUBLE_EQ(ra.total_energy_j, rb.total_energy_j);
}

TEST(NetworkIntegration, ExperimentRunnerAggregates) {
  core::ExperimentConfig cfg;
  cfg.scenario = tiny_scenario();
  cfg.scenario.duration_s = 40.0;
  cfg.stack = net::StackSpec::dsr_odpm();
  cfg.runs = 3;
  const auto res = core::run_experiment(cfg);
  EXPECT_EQ(res.raw.size(), 3u);
  EXPECT_GT(res.delivery_ratio.mean, 0.8);
  EXPECT_GE(res.delivery_ratio.ci95_half_width, 0.0);
}

}  // namespace
}  // namespace eend
