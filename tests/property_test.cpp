// Property-based tests (parameterized gtest): invariants that must hold
// across randomized inputs and across every protocol stack.
#include <gtest/gtest.h>

#include "analytical/route_energy.hpp"
#include "graph/shortest_path.hpp"
#include "graph/steiner.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace eend {
namespace {

// ---------------------------------------------------------------------
// Dijkstra vs Bellman-Ford on random weighted graphs.
class ShortestPathProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ShortestPathProperty, DijkstraMatchesBellmanFord) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.next_below(12);
  graph::Graph g(n);
  for (graph::NodeId v = 0; v < n; ++v)
    g.add_edge(v, static_cast<graph::NodeId>((v + 1) % n),
               rng.uniform(0.1, 5.0));
  const std::size_t extra = rng.next_below(2 * n);
  for (std::size_t i = 0; i < extra; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.next_below(n));
    const auto b = static_cast<graph::NodeId>(rng.next_below(n));
    if (a != b) g.add_edge(a, b, rng.uniform(0.1, 5.0));
  }
  const auto src = static_cast<graph::NodeId>(rng.next_below(n));
  const auto d = graph::dijkstra(g, src);
  const auto bf = graph::bellman_ford(g, src);
  for (graph::NodeId v = 0; v < n; ++v)
    EXPECT_NEAR(d.distance[v], bf.distance[v], 1e-9) << "node " << v;
  // Paths reconstruct to their own costs.
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!d.reachable(v) || v == src) continue;
    const auto path = d.path_to(v);
    EXPECT_NEAR(graph::path_cost(g, path), d.distance[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ShortestPathProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---------------------------------------------------------------------
// KMB feasibility + 2-approximation sanity against the terminal-spanning
// lower bound (an MST over terminals in the metric closure / 2).
class SteinerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteinerProperty, KmbFeasibleOnConnectedGraphs) {
  Rng rng(GetParam() * 7919);
  const std::size_t n = 6 + rng.next_below(10);
  graph::Graph g(n);
  for (graph::NodeId v = 0; v + 1 < n; ++v)
    g.add_edge(v, v + 1, rng.uniform(0.5, 3.0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.next_below(n));
    const auto b = static_cast<graph::NodeId>(rng.next_below(n));
    if (a != b) g.add_edge(a, b, rng.uniform(0.5, 3.0));
  }
  std::vector<graph::NodeId> terms;
  for (graph::NodeId v = 0; v < n; ++v)
    if (rng.bernoulli(0.4)) terms.push_back(v);
  if (terms.size() < 2) terms = {0, static_cast<graph::NodeId>(n - 1)};

  const auto t = graph::kmb_steiner_tree(g, terms);
  ASSERT_TRUE(t.feasible);
  // Tree property: |E| = |V| - #components(=1).
  EXPECT_EQ(t.edges.size(), t.nodes.size() - 1);
  // Cost at least the cheapest terminal-to-terminal distance.
  const auto spt = graph::dijkstra(g, terms[0]);
  double nearest = graph::kInfCost;
  for (std::size_t i = 1; i < terms.size(); ++i)
    nearest = std::min(nearest, spt.distance[terms[i]]);
  EXPECT_GE(t.edge_cost + 1e-9, nearest);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SteinerProperty,
                         ::testing::Range<std::uint64_t>(1, 15));

// ---------------------------------------------------------------------
// Energy meter: random mode traces never produce negative buckets, and the
// category decomposition always sums to the total.
class MeterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeterProperty, RandomTraceConserved) {
  Rng rng(GetParam() * 104729);
  const auto card = energy::cabletron();
  energy::EnergyMeter m(card);
  double now = 0.0;
  m.begin(now, energy::RadioMode::Idle);
  bool active = false;
  for (int step = 0; step < 200; ++step) {
    now += rng.uniform(0.0, 0.5);
    const int choice = static_cast<int>(rng.next_below(active ? 2 : 4));
    if (active) {
      m.set_passive_mode(now, rng.bernoulli(0.5) ? energy::RadioMode::Idle
                                                 : energy::RadioMode::Sleep);
      active = false;
      continue;
    }
    switch (choice) {
      case 0:
        m.set_passive_mode(now, energy::RadioMode::Idle);
        break;
      case 1:
        m.set_passive_mode(now, energy::RadioMode::Sleep);
        break;
      case 2:
        m.set_transmit(now, rng.uniform(0.5, 2.0),
                       rng.bernoulli(0.5) ? energy::Category::Data
                                          : energy::Category::Control);
        active = true;
        break;
      case 3:
        m.set_receive(now, energy::Category::Data);
        active = true;
        break;
    }
  }
  now += 1.0;
  m.finish(now);
  EXPECT_GE(m.data_energy(), 0.0);
  EXPECT_GE(m.control_energy(), 0.0);
  EXPECT_GE(m.passive_energy(), 0.0);
  EXPECT_NEAR(m.total(),
              m.data_energy() + m.control_energy() + m.passive_energy(),
              1e-9);
  const double time_sum =
      m.time_in(energy::RadioMode::Transmit) +
      m.time_in(energy::RadioMode::Receive) +
      m.time_in(energy::RadioMode::Idle) + m.time_in(energy::RadioMode::Sleep);
  EXPECT_NEAR(time_sum, now, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, MeterProperty,
                         ::testing::Range<std::uint64_t>(1, 20));

// ---------------------------------------------------------------------
// Characteristic hop count: the closed form minimizes route power across
// every card and utilization (within integer rounding).
struct MoptCase {
  std::string card;
  double rb;
};

class MoptProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(MoptProperty, BruteForceBracketsContinuousOptimum) {
  // Route power is convex in the hop count, so the best integer solution
  // must be floor(m_opt) or ceil(m_opt) (clamped to >= 1).
  const auto card = energy::card_by_name(std::get<0>(GetParam()));
  const double rb = std::get<1>(GetParam());
  const double D = card.max_range_m;
  const int brute = analytical::brute_force_best_hops(card, D, rb, 32);
  const double m = analytical::mopt_continuous(card, D, rb);
  const int lo = std::max(1, static_cast<int>(std::floor(m)));
  const int hi = std::max(1, static_cast<int>(std::ceil(m)));
  EXPECT_TRUE(brute == lo || brute == hi)
      << "brute=" << brute << " m_opt=" << m;
  // And the paper's rounding never loses more than the floor/ceil gap.
  const int closed =
      std::max(1, analytical::characteristic_hop_count(card, D, rb));
  EXPECT_TRUE(closed == lo || closed == hi);
}

INSTANTIATE_TEST_SUITE_P(
    CardsAndRates, MoptProperty,
    ::testing::Combine(::testing::Values("Aironet350", "Cabletron", "Mica2",
                                         "LEACH-n4", "LEACH-n2",
                                         "HypoCabletron"),
                       ::testing::Values(0.1, 0.2, 0.25, 0.35, 0.5)));

// ---------------------------------------------------------------------
// Whole-stack invariants on a small network, across every protocol stack:
// delivery ratio in [0,1], energy conservation, goodput consistency.
class StackProperty : public ::testing::TestWithParam<int> {
 public:
  static net::StackSpec stack(int idx) {
    using S = net::StackSpec;
    switch (idx) {
      case 0: return S::dsr_active();
      case 1: return S::dsr_odpm();
      case 2: return S::dsr_odpm_pc();
      case 3: return S::titan_pc();
      case 4: return S::dsrh_odpm_rate();
      case 5: return S::dsrh_odpm_norate();
      case 6: return S::dsdvh_odpm_psm();
      case 7: return S::dsdvh_odpm_span();
      case 8: return S::mtpr_odpm();
      case 9: return S::mtpr_plus_odpm();
      case 10: return S::dsr_perfect();
      default: return S::titan_pc_perfect();
    }
  }
};

TEST_P(StackProperty, RunInvariantsHold) {
  net::ScenarioConfig sc;
  sc.node_count = 16;
  sc.field_w = sc.field_h = 450.0;
  sc.flow_count = 3;
  sc.rate_pps = 2.0;
  sc.duration_s = 60.0;
  sc.seed = 11;
  net::Network n(sc, StackProperty::stack(GetParam()));
  const auto r = n.run();

  EXPECT_GE(r.delivery_ratio, 0.0);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_LE(r.delivered, r.sent);
  EXPECT_GT(r.sent, 0u);

  // Energy conservation: categories sum to the total.
  EXPECT_NEAR(r.total_energy_j,
              r.data_energy_j + r.control_energy_j + r.passive_energy_j,
              1e-6);
  EXPECT_GE(r.transmit_energy_j, 0.0);
  EXPECT_GE(r.passive_energy_j, 0.0);

  // Goodput is delivered bits over total energy.
  if (r.total_energy_j > 0.0) {
    const double recomputed =
        static_cast<double>(r.delivered) * sc.payload_bits / r.total_energy_j;
    EXPECT_NEAR(r.goodput_bit_per_j, recomputed, 1e-6);
  }

  // The energy bound: no node can beat sleep power or exceed a
  // transmit-everything bound.
  const double dur = sc.duration_s;
  const auto& card = sc.card;
  const double nodes = static_cast<double>(sc.node_count);
  EXPECT_GE(r.total_energy_j, nodes * card.p_sleep * dur * 0.5);
  EXPECT_LE(r.total_energy_j, nodes * card.max_transmit_power() * dur);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, StackProperty, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Determinism across stacks: same seed, same result.
TEST_P(StackProperty, RunsAreDeterministic) {
  net::ScenarioConfig sc;
  sc.node_count = 12;
  sc.field_w = sc.field_h = 400.0;
  sc.flow_count = 2;
  sc.duration_s = 30.0;
  sc.seed = 23;
  net::Network a(sc, StackProperty::stack(GetParam()));
  net::Network b(sc, StackProperty::stack(GetParam()));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.sent, rb.sent);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_DOUBLE_EQ(ra.total_energy_j, rb.total_energy_j);
  EXPECT_EQ(ra.channel_transmissions, rb.channel_transmissions);
}

}  // namespace
}  // namespace eend
