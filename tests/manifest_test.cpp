// Unit tests: JSON subset parser, manifest parsing/validation/round-trip,
// and the machine-readable result sinks.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace eend::core {
namespace {

// --------------------------------------------------------------- helpers ---

/// EXPECT_THROW with a substring check on the message — every rejection
/// must tell the user what was wrong and what would have been accepted.
template <typename Fn>
void expect_rejected(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected CheckError containing \"" << needle << "\"";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

std::string sweep_manifest_json(const std::string& patch_key = "",
                                const std::string& patch_value = "") {
  std::string extra;
  if (!patch_key.empty())
    extra = ", \"" + patch_key + "\": " + patch_value;
  return R"({
    "name": "t",
    "experiments": [
      {
        "id": "fig8",
        "kind": "sweep",
        "scenario": {"preset": "small_network"},
        "stacks": ["titan_pc", "dsr_active"],
        "rates_pps": [2, 4],
        "runs": 2,
        "seed": 7,
        "metrics": ["delivery_ratio"])" +
         extra + R"(
      }
    ]
  })";
}

// ------------------------------------------------------------------ JSON ---

TEST(Json, ParsesScalarsArraysObjects) {
  const auto v = json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\n\"y\"", "e": 2e3})");
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  EXPECT_EQ(v.find("b")->as_array().size(), 3u);
  EXPECT_TRUE(v.find("b")->as_array()[0].as_bool());
  EXPECT_TRUE(v.find("b")->as_array()[2].is_null());
  EXPECT_EQ(v.find("s")->as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(v.find("e")->as_number(), 2000.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), CheckError);
  EXPECT_THROW(json::parse("[1,]"), CheckError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), CheckError);
  EXPECT_THROW(json::parse("{'a': 1}"), CheckError);
  EXPECT_THROW(json::parse("{\"a\": 01}"), CheckError);  // leading zero
  EXPECT_THROW(json::parse("nul"), CheckError);
  EXPECT_THROW(json::parse("\"\\u0041\""), CheckError);  // \u unsupported
}

TEST(Json, RejectsDuplicateKeysWithPosition) {
  try {
    json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL();
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate object key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
}

TEST(Json, DumpRoundTripsStructurally) {
  const std::string text =
      R"({"name":"x","xs":[0.1,2,3.25e-4],"flag":true,"nested":{"k":"v"}})";
  const auto v = json::parse(text);
  EXPECT_TRUE(json::parse(json::dump(v)) == v);
  EXPECT_TRUE(json::parse(json::dump(v, 2)) == v);
}

TEST(Json, NumbersUseShortestRoundTrip) {
  EXPECT_EQ(json::dump(json::Value(0.1)), "0.1");
  EXPECT_EQ(json::dump(json::Value(2.0)), "2");
  EXPECT_EQ(format_double(1.0 / 3.0), "0.3333333333333333");
  // The formatted text parses back to the identical double.
  const double ugly = 0.9973211223001;
  EXPECT_EQ(json::parse(format_double(ugly)).as_number(), ugly);
}

// -------------------------------------------------------------- manifest ---

TEST(Manifest, ParsesSweepExperiment) {
  const auto m = Manifest::parse(sweep_manifest_json());
  ASSERT_EQ(m.experiments.size(), 1u);
  const Experiment& e = m.experiments[0];
  EXPECT_EQ(e.id, "fig8");
  EXPECT_EQ(e.kind, ExperimentKind::Sweep);
  EXPECT_EQ(e.stacks, (std::vector<std::string>{"titan_pc", "dsr_active"}));
  EXPECT_EQ(e.rates_pps, (std::vector<double>{2, 4}));
  EXPECT_EQ(e.runs, 2u);
  EXPECT_EQ(e.seed, 7u);
  ASSERT_EQ(e.metrics.size(), 1u);
  EXPECT_EQ(e.metrics[0].name, "delivery_ratio");
  // Scenario resolves to the paper's small network.
  const auto sc = e.scenario.resolve();
  EXPECT_EQ(sc.node_count, 50u);
  EXPECT_DOUBLE_EQ(sc.field_w, 500.0);
}

TEST(Manifest, ParsesDesignExperiment) {
  const auto m = Manifest::parse(R"({
    "name": "ds",
    "experiments": [{
      "id": "portfolio_scaling",
      "kind": "design",
      "node_counts": [50, 100],
      "heuristics": ["klein_ravi", "local_search", "portfolio"],
      "demands": 6,
      "starts": 4,
      "anneal_iters": 100,
      "runs": 2,
      "seed": 9
    }]
  })");
  ASSERT_EQ(m.experiments.size(), 1u);
  const Experiment& e = m.experiments[0];
  EXPECT_EQ(e.kind, ExperimentKind::Design);
  EXPECT_EQ(e.node_counts, (std::vector<std::size_t>{50, 100}));
  EXPECT_EQ(e.heuristics, (std::vector<std::string>{
                              "klein_ravi", "local_search", "portfolio"}));
  EXPECT_EQ(e.demands, 6u);
  EXPECT_EQ(e.starts, 4u);
  EXPECT_EQ(e.anneal_iters, 100u);
  EXPECT_EQ(e.runs, 2u);
  EXPECT_EQ(e.seed, 9u);
  // Default metric set: total cost + gap vs the Klein-Ravi baseline.
  ASSERT_EQ(e.metrics.size(), 2u);
  EXPECT_EQ(e.metrics[0].name, "eq5_total");
  EXPECT_EQ(e.metrics[1].name, "gap_vs_klein_ravi");
}

TEST(Manifest, ParsesReplayExperiment) {
  const auto m = Manifest::parse(R"({
    "name": "rp",
    "experiments": [{
      "id": "replay_scaling",
      "kind": "replay",
      "node_counts": [50, 100],
      "heuristics": ["klein_ravi", "portfolio", "portfolio_lifetime"],
      "demands": 6,
      "starts": 4,
      "anneal_iters": 100,
      "stack": "dsr_odpm",
      "duration_s": 120,
      "rate_pps": 16,
      "battery_j": 102.5,
      "demand_weights": [0.5, 1, 3],
      "runs": 2,
      "seed": 9
    }]
  })");
  ASSERT_EQ(m.experiments.size(), 1u);
  const Experiment& e = m.experiments[0];
  EXPECT_EQ(e.kind, ExperimentKind::Replay);
  EXPECT_EQ(e.node_counts, (std::vector<std::size_t>{50, 100}));
  EXPECT_EQ(e.heuristics,
            (std::vector<std::string>{"klein_ravi", "portfolio",
                                      "portfolio_lifetime"}));
  EXPECT_EQ(e.replay_stack, "dsr_odpm");
  EXPECT_DOUBLE_EQ(e.replay_duration_s, 120.0);
  EXPECT_DOUBLE_EQ(e.replay_rate_pps, 16.0);
  EXPECT_DOUBLE_EQ(e.battery_j, 102.5);
  EXPECT_EQ(e.demand_weights, (std::vector<double>{0.5, 1.0, 3.0}));
  EXPECT_EQ(e.runs, 2u);
  EXPECT_EQ(e.seed, 9u);
  // Default metric set: both sides of the cross-check plus lifetime.
  ASSERT_EQ(e.metrics.size(), 5u);
  EXPECT_EQ(e.metrics[0].name, "analytic_eq5_j");
  EXPECT_EQ(e.metrics[1].name, "sim_energy_j");
  EXPECT_EQ(e.metrics[2].name, "analytic_gap_pct");
  EXPECT_EQ(e.metrics[3].name, "delivery_ratio");
  EXPECT_EQ(e.metrics[4].name, "first_death_s");
}

TEST(Manifest, ReplayKindRejectsBadInputsActionably) {
  const auto replay = [](const std::string& patch) {
    return R"({"name":"t","experiments":[{"id":"r","kind":"replay",
      "node_counts":[50],)" + patch + R"(}]})";
  };
  // Heuristics validate against the opt/ registry, like the design kind.
  expect_rejected(
      [&] { Manifest::parse(replay("\"heuristics\": [\"simplex\"]")); },
      "unknown design heuristic \"simplex\" (valid: klein_ravi");
  // Lifetime variants need the battery that defines their budget.
  expect_rejected(
      [&] {
        Manifest::parse(replay("\"heuristics\": [\"portfolio_lifetime\"]"));
      },
      "battery_j is 0");
  // ...and are meaningless for the un-simulated design kind.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
          "kind":"design","node_counts":[50],
          "heuristics":["portfolio_lifetime"]}]})");
      },
      "only valid for kind \"replay\"");
  // Range validation on the replay knobs.
  expect_rejected(
      [&] {
        Manifest::parse(replay(
            "\"heuristics\": [\"klein_ravi\"], \"battery_j\": -1"));
      },
      "battery_j must be in [0, 1e9]");
  expect_rejected(
      [&] {
        Manifest::parse(replay(
            "\"heuristics\": [\"klein_ravi\"], \"rate_pps\": 0"));
      },
      "rate_pps must be in (0, 1e6]");
  expect_rejected(
      [&] {
        Manifest::parse(replay(
            "\"heuristics\": [\"klein_ravi\"], \"duration_s\": 0"));
      },
      "duration_s must be in (0, 1e6]");
  expect_rejected(
      [&] {
        Manifest::parse(replay("\"heuristics\": [\"klein_ravi\"], "
                               "\"demand_weights\": []"));
      },
      "demand_weights must be a non-empty array");
  expect_rejected(
      [&] {
        Manifest::parse(replay("\"heuristics\": [\"klein_ravi\"], "
                               "\"demand_weights\": [0]"));
      },
      "demand_weights entries must be in (0, 1e3]");
  expect_rejected(
      [&] {
        Manifest::parse(replay("\"heuristics\": [\"klein_ravi\"], "
                               "\"stack\": \"warp_drive\""));
      },
      "unknown stack preset");
  // Replay takes the singular "stack", not the sim kinds' array...
  expect_rejected(
      [&] {
        Manifest::parse(replay("\"heuristics\": [\"klein_ravi\"], "
                               "\"stacks\": [\"titan_pc\"]"));
      },
      "the singular \"stack\"");
  // ...and the singular "stack" is replay-only.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","scenario":{"preset":"small_network"},
          "stacks":["titan_pc"],"rates_pps":[2],
          "stack":"dsr_active"}]})");
      },
      "only valid for kind \"replay\"");
  // Sim metrics that are not replay metrics stay rejected.
  expect_rejected(
      [&] {
        Manifest::parse(replay("\"heuristics\": [\"klein_ravi\"], "
                               "\"metrics\": [\"goodput_bit_per_j\"]"));
      },
      "not valid for kind \"replay\"");
}

TEST(Manifest, DesignKindRejectsBadInputsActionably) {
  const auto design = [](const std::string& patch) {
    return R"({"name":"t","experiments":[{"id":"d","kind":"design",
      "node_counts":[50],)" + patch + R"(}]})";
  };
  expect_rejected([&] { Manifest::parse(design("\"starts\": 4")); },
                  "missing required key \"heuristics\"");
  expect_rejected(
      [&] { Manifest::parse(design("\"heuristics\": [\"simplex\"]")); },
      "unknown design heuristic \"simplex\" (valid: klein_ravi");
  expect_rejected(
      [&] {
        Manifest::parse(
            design("\"heuristics\": [\"portfolio\", \"portfolio\"]"));
      },
      "duplicate heuristic \"portfolio\"");
  expect_rejected(
      [&] {
        Manifest::parse(design(
            "\"heuristics\": [\"portfolio\"], \"starts\": 0"));
      },
      "starts must be in [1, 1000]");
  expect_rejected(
      [&] {
        Manifest::parse(design(
            "\"heuristics\": [\"portfolio\"], "
            "\"scenario\": {\"preset\": \"small_network\"}"));
      },
      "is not valid for kind \"design\"");
  expect_rejected(
      [&] {
        Manifest::parse(design(
            "\"heuristics\": [\"portfolio\"], \"stacks\": [\"titan_pc\"]"));
      },
      "use \"heuristics\"");
  expect_rejected(
      [&] {
        Manifest::parse(design(
            "\"heuristics\": [\"portfolio\"], \"rates_pps\": [2]"));
      },
      "only valid for kinds \"sweep\" and \"grid\"");
  // Sim metrics are not design metrics.
  expect_rejected(
      [&] {
        Manifest::parse(design("\"heuristics\": [\"portfolio\"], "
                               "\"metrics\": [\"delivery_ratio\"]"));
      },
      "not valid for kind \"design\"");
  // Instances must be able to host the demand count — caught at parse,
  // not mid-run in the engine.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
          "kind":"design","node_counts":[2],
          "heuristics":["klein_ravi"]}]})");
      },
      "distinct (source, destination) pairs");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
          "kind":"design","node_counts":[50],"demands":10,
          "heuristics":["klein_ravi"],
          "quick":{"node_counts":[3]}}]})");
      },
      "quick node count 3 cannot host 10 demands");
  // Design experiments are solved, not simulated: a quick duration would
  // be silently inert.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
          "kind":"design","node_counts":[50],
          "heuristics":["klein_ravi"],
          "quick":{"duration_s":5}}]})");
      },
      "solved, not simulated");
}

TEST(Manifest, ExperimentSummariesListIdsKindsAndCellCounts) {
  const auto m = Manifest::parse(R"({
    "name": "t",
    "experiments": [
      {"id": "fig8", "kind": "sweep",
       "scenario": {"preset": "small_network"},
       "stacks": ["titan_pc", "dsr_active"], "rates_pps": [2, 4, 6]},
      {"id": "search", "kind": "design", "node_counts": [50, 100],
       "heuristics": ["klein_ravi", "portfolio"],
       "title": "Design search"}
    ]
  })");
  const auto lines = m.experiment_summaries();
  ASSERT_EQ(lines.size(), 2u);
  // The first token is the experiment id — exactly what --only accepts.
  EXPECT_EQ(lines[0].substr(0, lines[0].find(' ')), "fig8");
  EXPECT_NE(lines[0].find("[sweep]"), std::string::npos);
  EXPECT_NE(lines[0].find("2 series x 3 x-values"), std::string::npos);
  EXPECT_EQ(lines[1].substr(0, lines[1].find(' ')), "search");
  EXPECT_NE(lines[1].find("[design]"), std::string::npos);
  EXPECT_NE(lines[1].find("2 series x 2 x-values"), std::string::npos);
  EXPECT_NE(lines[1].find("Design search"), std::string::npos);
}

TEST(Manifest, SerializeParseRoundTripIsAFixedPoint) {
  for (const std::string& text : std::vector<std::string>{
           sweep_manifest_json(),
           R"({"name":"g","experiments":[{"id":"fig13","kind":"grid",
               "stacks":["dsr_perfect","dsr_active"],"rates_pps":[2,3],
               "base_rate_pps":2,"quick":{"duration_s":60}}]})",
           R"({"name":"d","experiments":[{"id":"t2","kind":"density",
               "stacks":["titan_pc"],"node_counts":[300,400],
               "quick":{"node_counts":[300],"runs":1}}]})",
           R"({"name":"m","experiments":[{"id":"fig7","kind":"mopt",
               "cards":[{"card":"Cabletron","distance_m":250}],
               "rb":[0.1,0.5]}]})",
           R"({"name":"s","experiments":[{"id":"ds","kind":"design",
               "node_counts":[50,200],"heuristics":["klein_ravi","portfolio"],
               "demands":6,"starts":4,"anneal_iters":150,"runs":2,
               "quick":{"node_counts":[50],"runs":1}}]})",
           R"({"name":"r","experiments":[{"id":"rp","kind":"replay",
               "node_counts":[50,100],
               "heuristics":["klein_ravi","portfolio_lifetime"],
               "demands":6,"stack":"dsr_active","duration_s":120,
               "rate_pps":16,"battery_j":102.5,
               "demand_weights":[0.5,1,3],"runs":2,
               "quick":{"node_counts":[50],"runs":1,"duration_s":60}}]})",
       }) {
    const Manifest m1 = Manifest::parse(text);
    const std::string canon = m1.serialize();
    const Manifest m2 = Manifest::parse(canon);
    EXPECT_EQ(canon, m2.serialize()) << "for manifest: " << text;
    EXPECT_TRUE(m1.to_json() == m2.to_json()) << "for manifest: " << text;
  }
}

TEST(Manifest, RejectsUnknownKeysWithAllowedList) {
  expect_rejected([] { Manifest::parse(sweep_manifest_json("ratez", "[2]")); },
                  "unknown key \"ratez\"");
  expect_rejected([] { Manifest::parse(sweep_manifest_json("ratez", "[2]")); },
                  "allowed:");
  // Unknown keys nested in scenario / quick / metrics entries.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","scenario":{"preset":"small_network","nodez":3},
          "stacks":["titan_pc"],"rates_pps":[2]}]})");
      },
      "unknown key \"nodez\"");
  expect_rejected(
      [] {
        Manifest::parse(sweep_manifest_json("quick", R"({"runz": 1})"));
      },
      "unknown key \"runz\"");
}

TEST(Manifest, RejectsKindMismatchedKeys) {
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("node_counts", "[300]")); },
      "only valid for kinds \"density\", \"design\", \"replay\" and "
      "\"churn\"");
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("heuristics",
                                               "[\"portfolio\"]")); },
      "only valid for kinds \"design\" and \"replay\"");
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("starts", "4")); },
      "only valid for kinds \"design\", \"replay\" and \"churn\"");
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("cards", "[]")); },
      "only valid for kind \"mopt\"");
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("base_rate_pps", "2")); },
      "only valid for kind \"grid\"");
}

TEST(Manifest, RejectsOutOfRangeValues) {
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[0]}]})");
      },
      "(0, 1e6]");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[-3]}]})");
      },
      "(0, 1e6]");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[2],
          "runs":0}]})");
      },
      "[1, 10000]");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"m","experiments":[{"id":"f","kind":"mopt",
          "cards":[{"card":"Cabletron","distance_m":250}],"rb":[0.6]}]})");
      },
      "(0, 0.5]");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[2],
          "seed":-1}]})");
      },
      "non-negative integer");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[2],
          "runs":2.5}]})");
      },
      "non-negative integer");
}

TEST(Manifest, RejectsDuplicateCellDefinitions) {
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[
          {"id":"a","kind":"sweep","stacks":["titan_pc"],"rates_pps":[2]},
          {"id":"a","kind":"sweep","stacks":["titan_pc"],"rates_pps":[2]}]})");
      },
      "duplicate experiment id \"a\"");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc","titan_pc"],
          "rates_pps":[2]}]})");
      },
      "duplicate stack \"titan_pc\"");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[2,2]}]})");
      },
      "duplicate rate");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"density","stacks":["titan_pc"],
          "node_counts":[300,300]}]})");
      },
      "duplicate node count");
}

TEST(Manifest, RejectsUnknownNamesActionably) {
  // Unknown stack: the message must list what IS valid.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pcc"],"rates_pps":[2]}]})");
      },
      "titan_pc");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","stacks":["titan_pc"],"rates_pps":[2],
          "metrics":["deliverance"]}]})");
      },
      "not valid for kind \"sweep\"");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"warp","stacks":["titan_pc"],"rates_pps":[2]}]})");
      },
      "unknown experiment kind");
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
          "kind":"sweep","scenario":{"preset":"tiny"},
          "stacks":["titan_pc"],"rates_pps":[2]}]})");
      },
      "unknown scenario preset");
}

TEST(Manifest, StackPresetRegistryCoversAllPresets) {
  const auto names = net::stack_preset_names();
  EXPECT_EQ(names.size(), 15u);
  for (const auto& n : names)
    EXPECT_FALSE(net::stack_preset(n).label.empty()) << n;
  EXPECT_EQ(net::stack_preset("dsdvh_odpm_span").label,
            "DSDVH-ODPM(0.6,1.2)-Span");
  EXPECT_THROW(net::stack_preset("nope"), CheckError);
}

TEST(Manifest, ScenarioOverridesApply) {
  const auto m = Manifest::parse(R"({"name":"t","experiments":[{"id":"a",
    "kind":"sweep",
    "scenario":{"preset":"large_network","node_count":500,"duration_s":300,
                "rate_multipliers":[0.5,1,2]},
    "stacks":["titan_pc"],"rates_pps":[2]}]})");
  const auto sc = m.experiments[0].scenario.resolve();
  EXPECT_EQ(sc.node_count, 500u);
  EXPECT_DOUBLE_EQ(sc.duration_s, 300.0);
  EXPECT_DOUBLE_EQ(sc.field_w, 1300.0);  // from the preset
  ASSERT_EQ(sc.rate_multipliers.size(), 3u);

  // Heterogeneous rates reach the flows, cycling through the multipliers.
  auto flows_cfg = sc;
  flows_cfg.rate_pps = 4.0;
  const auto flows = net::make_flows(flows_cfg);
  ASSERT_GE(flows.size(), 3u);
  EXPECT_DOUBLE_EQ(flows[0].packets_per_s, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].packets_per_s, 4.0);
  EXPECT_DOUBLE_EQ(flows[2].packets_per_s, 8.0);
}

// ----------------------------------------------------------------- sinks ---

ResultRow demo_row() {
  ResultRow r;
  r.experiment = "e1";
  r.kind = "sweep";
  r.series = "TITAN, \"PC\"";  // exercise CSV quoting
  r.x_name = "rate_pps";
  r.x = 2.5;
  r.runs = 5;
  r.seed = 1;
  r.metrics.push_back({"delivery_ratio", 0.75, 0.01, 5});
  return r;
}

TEST(Sinks, CsvQuotesAndRoundTripFloats) {
  std::ostringstream os;
  CsvSink sink(os);
  sink.row(demo_row());
  const std::string out = os.str();
  EXPECT_NE(out.find("experiment,kind,series,x_name,x,runs,seed,metric,"
                     "mean,ci95,n"),
            std::string::npos);
  EXPECT_NE(out.find("\"TITAN, \"\"PC\"\"\""), std::string::npos) << out;
  EXPECT_NE(out.find(",2.5,"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
}

TEST(Sinks, JsonlRowsAreValidJson) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.row(demo_row());
  std::string line = os.str();
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  const auto v = json::parse(line);
  EXPECT_EQ(v.find("experiment")->as_string(), "e1");
  EXPECT_EQ(v.find("series")->as_string(), "TITAN, \"PC\"");
  const auto* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->find("delivery_ratio")->find("mean")->as_number(),
                   0.75);
}

TEST(Engine, MoptExperimentStreamsDeterministicRows) {
  Experiment e;
  e.id = "fig7";
  e.kind = ExperimentKind::Mopt;
  e.cards = {{"Cabletron", 250.0}, {"HypoCabletron", 250.0}};
  e.rb = {0.1, 0.5};
  e.metrics = {{"mopt", 3}};

  std::ostringstream a, b;
  for (auto* os : {&a, &b}) {
    ExperimentEngine engine;
    JsonlSink sink(*os);
    engine.add_sink(sink);
    engine.run(e);
  }
  EXPECT_EQ(a.str(), b.str());
  // 2 cards x 2 rb values = 4 rows, x-major.
  std::istringstream lines(a.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto v = json::parse(line);
    EXPECT_EQ(v.find("kind")->as_string(), "mopt");
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

// ------------------------------------------------------------- presolve ---

TEST(Manifest, PresolveKeyParsesOnDesignAndReplay) {
  const auto m = Manifest::parse(R"({
    "name": "p",
    "experiments": [
      {"id": "d", "kind": "design", "node_counts": [50],
       "heuristics": ["klein_ravi"], "presolve": true,
       "metrics": ["eq5_total", "lb", "certified_gap_pct",
                   "reduced_nodes", "reduced_edges"]},
      {"id": "r", "kind": "replay", "node_counts": [50],
       "heuristics": ["klein_ravi"], "presolve": true},
      {"id": "off", "kind": "design", "node_counts": [50],
       "heuristics": ["klein_ravi"]}
    ]
  })");
  ASSERT_EQ(m.experiments.size(), 3u);
  EXPECT_TRUE(m.experiments[0].presolve);
  EXPECT_TRUE(m.experiments[1].presolve);
  EXPECT_FALSE(m.experiments[2].presolve);  // defaults off
  EXPECT_EQ(m.experiments[0].metrics.size(), 5u);
}

TEST(Manifest, PresolveKeyRejectsBadInputsActionably) {
  // Must be a boolean, not a truthy number.
  expect_rejected(
      [] {
        Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
          "kind":"design","node_counts":[50],
          "heuristics":["klein_ravi"],"presolve":1}]})");
      },
      "presolve must be a boolean");
  // Only meaningful where instances are searched.
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("presolve", "true")); },
      "only valid for kinds \"design\", \"replay\" and \"churn\"");
  // The certified-bound metrics need the pass that computes them.
  for (const std::string metric :
       {"lb", "certified_gap_pct", "reduced_nodes", "reduced_edges"})
    expect_rejected(
        [&] {
          Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
            "kind":"design","node_counts":[50],
            "heuristics":["klein_ravi"],
            "metrics":[")" + metric + R"("]}]})");
        },
        "requires \"presolve\": true");
}

TEST(Manifest, FieldScaleParsesAndRejectsOutOfRange) {
  const Manifest m = Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
    "kind":"design","node_counts":[50],
    "heuristics":["klein_ravi"],"field_scale":2.0}]})");
  EXPECT_DOUBLE_EQ(m.experiments[0].field_scale, 2.0);
  // Defaults to the plain density law.
  const Manifest d = Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
    "kind":"design","node_counts":[50],"heuristics":["klein_ravi"]}]})");
  EXPECT_DOUBLE_EQ(d.experiments[0].field_scale, 1.0);

  for (const std::string bad : {"0", "-1", "10.5"})
    expect_rejected(
        [&] {
          Manifest::parse(R"({"name":"t","experiments":[{"id":"d",
            "kind":"design","node_counts":[50],
            "heuristics":["klein_ravi"],"field_scale":)" + bad + "}]}");
        },
        "field_scale must be in (0, 10]");
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("field_scale", "2.0")); },
      "only valid for kinds \"design\", \"replay\" and \"churn\"");
}

TEST(Manifest, PresolveKeySerializeRoundTripIsAFixedPoint) {
  for (const std::string& text : std::vector<std::string>{
           R"({"name":"s","experiments":[{"id":"ds","kind":"design",
               "node_counts":[50],"heuristics":["klein_ravi"],
               "presolve":true,
               "metrics":["eq5_total","lb","certified_gap_pct"]}]})",
           R"({"name":"r","experiments":[{"id":"rp","kind":"replay",
               "node_counts":[50],"heuristics":["klein_ravi"],
               "presolve":true,"stack":"dsr_active"}]})",
       }) {
    const Manifest m1 = Manifest::parse(text);
    EXPECT_TRUE(m1.experiments[0].presolve);
    const std::string canon = m1.serialize();
    // The flag must survive the canonical form (always emitted for the
    // design/replay kinds so the default is explicit).
    EXPECT_NE(canon.find("\"presolve\""), std::string::npos);
    const Manifest m2 = Manifest::parse(canon);
    EXPECT_TRUE(m2.experiments[0].presolve);
    EXPECT_EQ(canon, m2.serialize()) << "for manifest: " << text;
    EXPECT_TRUE(m1.to_json() == m2.to_json()) << "for manifest: " << text;
  }
}

// ----------------------------------------------------------------- churn ---

std::string churn_manifest_json(const std::string& body) {
  return R"({"name":"c","experiments":[{"id":"ch","kind":"churn",)" + body +
         "}]}";
}

TEST(Manifest, ChurnParsesWithDefaultsAndSummaries) {
  const Manifest m = Manifest::parse(churn_manifest_json(
      R"("node_counts":[40,80],"epochs":6,"demands":5,"runs":2,
         "fallback_pct":4.5,"quick":{"node_counts":[40],"runs":1,
         "epochs":3})"));
  const Experiment& e = m.experiments[0];
  EXPECT_EQ(e.kind, ExperimentKind::Churn);
  EXPECT_EQ(e.epochs, 6u);
  EXPECT_EQ(e.demands, 5u);
  EXPECT_DOUBLE_EQ(e.fallback_pct, 4.5);
  EXPECT_EQ(e.replay_every, 0u);
  ASSERT_TRUE(e.quick.epochs.has_value());
  EXPECT_EQ(*e.quick.epochs, 3u);
  // Generator defaults hold when no knob is set.
  EXPECT_EQ(e.arrivals_per_epoch, 1u);
  EXPECT_EQ(e.failures_per_epoch, 0u);

  const auto lines = m.experiment_summaries();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[churn]"), std::string::npos);
  EXPECT_NE(lines[0].find("2 series x 6 x-values"), std::string::npos);
}

TEST(Manifest, ChurnRejectsBadSchedules) {
  const auto sched = [](const std::string& entries) {
    return churn_manifest_json(R"("node_counts":[40],"epochs":6,
        "schedule":[)" + entries + "]");
  };
  // Non-monotone epoch times.
  expect_rejected(
      [&] {
        Manifest::parse(sched(
            R"({"at":3,"events":[{"op":"fail","node":1}]},
               {"at":2,"events":[{"op":"fail","node":2}]})"));
      },
      "strictly increasing");
  // Epoch outside [1, epochs).
  expect_rejected(
      [&] {
        Manifest::parse(sched(R"({"at":6,"events":[{"op":"fail","node":1}]})"));
      },
      "outside [1, 6)");
  // Out-of-range rate factor.
  expect_rejected(
      [&] {
        Manifest::parse(sched(
            R"({"at":1,"events":[{"op":"rate","demand":0,"factor":0}]})"));
      },
      "factor must be in (0, 1e3]");
  // Failing an arrived demand's endpoint.
  expect_rejected(
      [&] {
        Manifest::parse(sched(
            R"({"at":1,"events":[
                 {"op":"arrive","source":3,"destination":9}]},
               {"at":2,"events":[{"op":"fail","node":9}]})"));
      },
      "is a live flow endpoint");
  // Unknown event keys.
  expect_rejected(
      [&] {
        Manifest::parse(sched(
            R"({"at":1,"events":[{"op":"fail","node":1,"bogus":2}]})"));
      },
      "unknown key \"bogus\"");
  // Depart index past the live list.
  expect_rejected(
      [&] {
        Manifest::parse(sched(
            R"({"at":1,"events":[{"op":"depart","demand":99}]})"));
      },
      "out of range");
  // Generator knobs alongside an explicit schedule are inert — rejected.
  expect_rejected(
      [&] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"epochs":6,"failures_per_epoch":1,
               "schedule":[{"at":1,"events":[{"op":"fail","node":1}]}])"));
      },
      "not valid alongside an explicit \"schedule\"");
}

TEST(Manifest, ChurnScheduleChecksNodeRangeAndQuickEpochs) {
  // A scheduled node reference must fit the smallest instance, including
  // the quick override's.
  expect_rejected(
      [] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"epochs":6,
               "schedule":[{"at":1,"events":[{"op":"fail","node":40}]}])"));
      },
      "references node 40");
  // A schedule entry past the quick epoch count would silently never fire.
  expect_rejected(
      [] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"epochs":8,
               "schedule":[{"at":5,"events":[{"op":"fail","node":1}]}],
               "quick":{"epochs":3})"));
      },
      "unreachable under quick epochs");
}

TEST(Manifest, ChurnRejectsKindMismatchedAndGatedKeys) {
  // Churn's own keys are invalid elsewhere.
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("epochs", "4")); },
      "only valid for kind \"churn\"");
  expect_rejected(
      [] { Manifest::parse(sweep_manifest_json("fallback_pct", "5")); },
      "only valid for kind \"churn\"");
  // Heuristics are fixed by the serving loop.
  expect_rejected(
      [] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"heuristics":["portfolio"])"));
      },
      "not valid for kind \"churn\"");
  // Replay knobs need replay-validation epochs.
  expect_rejected(
      [] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"stack":"dsr_active")"));
      },
      "requires \"replay_every\" > 0");
  expect_rejected(
      [] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"battery_j":100)"));
      },
      "not valid for kind \"churn\"");
  expect_rejected(
      [] {
        Manifest::parse(churn_manifest_json(
            R"("node_counts":[40],"metrics":["replay_gap_pct"])"));
      },
      "requires \"replay_every\"");
  // With replay_every set, the replay knobs parse.
  const Manifest m = Manifest::parse(churn_manifest_json(
      R"("node_counts":[40],"replay_every":2,"stack":"dsr_active",
         "duration_s":120,"rate_pps":8,
         "metrics":["warm_score","replay_gap_pct"])"));
  EXPECT_EQ(m.experiments[0].replay_every, 2u);
  EXPECT_EQ(m.experiments[0].replay_stack, "dsr_active");
}

TEST(Manifest, ChurnSerializeRoundTripIsAFixedPoint) {
  for (const std::string& text : std::vector<std::string>{
           churn_manifest_json(
               R"("node_counts":[40,80],"epochs":6,"demands":5,
                  "arrivals_per_epoch":2,"failures_per_epoch":1,
                  "rate_swing":0.4,"move_fraction":0.1,"move_sigma_m":60,
                  "fallback_pct":5,"runs":2,"demand_weights":[0.5,1,3],
                  "quick":{"node_counts":[40],"runs":1,"epochs":3})"),
           churn_manifest_json(
               R"("node_counts":[40],"epochs":6,"replay_every":2,
                  "stack":"dsr_active","duration_s":120,"rate_pps":8,
                  "schedule":[
                    {"at":1,"events":[
                      {"op":"arrive","source":3,"destination":9,
                       "weight":2.5},
                      {"op":"rate","demand":0,"factor":0.5}]},
                    {"at":3,"events":[
                      {"op":"fail","node":12},
                      {"op":"move","node":5,"x":100.5,"y":200},
                      {"op":"depart","demand":1}]}])"),
       }) {
    const Manifest m1 = Manifest::parse(text);
    const std::string canon = m1.serialize();
    const Manifest m2 = Manifest::parse(canon);
    EXPECT_EQ(canon, m2.serialize()) << "for manifest: " << text;
    EXPECT_TRUE(m1.to_json() == m2.to_json()) << "for manifest: " << text;
  }
}

}  // namespace
}  // namespace eend::core
