// Unit tests: Table 1 radio cards and the energy meter.
#include <gtest/gtest.h>

#include "energy/energy_meter.hpp"
#include "energy/radio_card.hpp"
#include "util/units.hpp"

namespace eend::energy {
namespace {

TEST(RadioCard, Table1Cabletron) {
  const RadioCard c = cabletron();
  EXPECT_DOUBLE_EQ(c.p_idle, 0.830);
  EXPECT_DOUBLE_EQ(c.p_rx, 1.000);
  EXPECT_DOUBLE_EQ(c.p_base, 1.118);
  // Ptx(250) = 1118 + 7.2e-8 * 250^4 mW = 1118 + 281.25 mW
  EXPECT_NEAR(c.transmit_power(250.0), 1.118 + 0.28125, 1e-9);
  EXPECT_DOUBLE_EQ(c.max_range_m, 250.0);
}

TEST(RadioCard, Table1Aironet) {
  const RadioCard c = aironet350();
  EXPECT_DOUBLE_EQ(c.p_idle, 1.350);
  EXPECT_DOUBLE_EQ(c.p_rx, 1.350);
  // Ptx(140) = 2165 + 3.6e-7 * 140^4 mW
  EXPECT_NEAR(as_milliwatts(c.transmit_power(140.0)),
              2165.0 + 3.6e-7 * std::pow(140.0, 4), 1e-6);
}

TEST(RadioCard, Table1Mica2AndLeach) {
  const RadioCard m = mica2();
  EXPECT_DOUBLE_EQ(m.p_idle, 0.021);
  EXPECT_NEAR(as_milliwatts(m.transmit_power(68.0)),
              10.2 + 9.4e-7 * std::pow(68.0, 4), 1e-6);
  const RadioCard l4 = leach_n4();
  EXPECT_DOUBLE_EQ(l4.path_loss_n, 4.0);
  const RadioCard l2 = leach_n2();
  EXPECT_DOUBLE_EQ(l2.path_loss_n, 2.0);
  EXPECT_NEAR(as_milliwatts(l2.transmit_power(75.0)),
              50.0 + 1e-2 * 75.0 * 75.0, 1e-6);
}

TEST(RadioCard, HypotheticalCabletronAlpha) {
  const RadioCard h = hypothetical_cabletron();
  EXPECT_DOUBLE_EQ(h.alpha2, milliwatts(5.2e-6));
  // The paper: transmit power to reach 250 m rises to ~20 W.
  EXPECT_NEAR(h.transmit_power(250.0), 1.118 + 5.2e-6 * 1e-3 * std::pow(250.0, 4),
              1e-6);
  EXPECT_GT(h.transmit_power(250.0), 20.0);
}

TEST(RadioCard, CardLookupByName) {
  EXPECT_EQ(card_by_name("cabletron").name, "Cabletron");
  EXPECT_EQ(card_by_name("MICA2").name, "Mica2");
  EXPECT_THROW(card_by_name("nosuchcard"), CheckError);
}

TEST(RadioCard, TxDuration) {
  const RadioCard c = cabletron();  // 2 Mbit/s
  EXPECT_DOUBLE_EQ(c.tx_duration(2e6), 1.0);
  EXPECT_DOUBLE_EQ(c.tx_duration(1024), 1024 / 2e6);
}

TEST(EnergyMeter, IdleIntegration) {
  const RadioCard c = cabletron();
  EnergyMeter m(c);
  m.begin(0.0, RadioMode::Idle);
  m.finish(10.0);
  EXPECT_NEAR(m.total(), 10.0 * c.p_idle, 1e-12);
  EXPECT_NEAR(m.passive_energy(), 10.0 * c.p_idle, 1e-12);
  EXPECT_DOUBLE_EQ(m.data_energy(), 0.0);
  EXPECT_DOUBLE_EQ(m.time_in(RadioMode::Idle), 10.0);
}

TEST(EnergyMeter, SleepIsCheaperThanIdle) {
  const RadioCard c = cabletron();
  EnergyMeter idle(c), sleep(c);
  idle.begin(0.0, RadioMode::Idle);
  idle.finish(10.0);
  sleep.begin(0.0, RadioMode::Sleep);
  sleep.finish(10.0);
  EXPECT_LT(sleep.total(), idle.total());
  EXPECT_NEAR(sleep.sleep_energy(), 10.0 * c.p_sleep, 1e-12);
}

TEST(EnergyMeter, TransmitAttribution) {
  const RadioCard c = cabletron();
  EnergyMeter m(c);
  m.begin(0.0, RadioMode::Idle);
  m.set_transmit(1.0, 1.4, Category::Data);
  m.set_passive_mode(2.0, RadioMode::Idle);
  m.set_transmit(3.0, 1.4, Category::Control);
  m.set_passive_mode(4.0, RadioMode::Idle);
  m.finish(5.0);
  EXPECT_NEAR(m.transmit_energy(), 2.0 * 1.4, 1e-12);
  EXPECT_NEAR(m.data_energy(), 1.4, 1e-12);
  EXPECT_NEAR(m.control_energy(), 1.4, 1e-12);
  EXPECT_NEAR(m.idle_energy(), 3.0 * c.p_idle, 1e-12);
  EXPECT_NEAR(m.total(), 2.8 + 3.0 * c.p_idle, 1e-12);
}

TEST(EnergyMeter, ReceiveUsesCardRxPower) {
  const RadioCard c = cabletron();
  EnergyMeter m(c);
  m.begin(0.0, RadioMode::Idle);
  m.set_receive(1.0, Category::Data);
  m.set_passive_mode(3.0, RadioMode::Idle);
  m.finish(4.0);
  EXPECT_NEAR(m.receive_energy(), 2.0 * c.p_rx, 1e-12);
  EXPECT_NEAR(m.data_energy(), 2.0 * c.p_rx, 1e-12);
}

TEST(EnergyMeter, SwitchCostCharged) {
  RadioCard c = cabletron();
  c.switch_energy_j = 0.005;
  EnergyMeter m(c);
  m.begin(0.0, RadioMode::Idle);
  m.set_passive_mode(1.0, RadioMode::Sleep);   // 1 switch
  m.set_passive_mode(2.0, RadioMode::Idle);    // 2 switches
  m.set_passive_mode(3.0, RadioMode::Idle);    // no transition
  m.finish(4.0);
  EXPECT_EQ(m.switch_count(), 2u);
  EXPECT_NEAR(m.switch_energy(), 0.010, 1e-12);
  EXPECT_NEAR(m.passive_energy(),
              3.0 * c.p_idle + 1.0 * c.p_sleep + 0.010, 1e-12);
}

TEST(EnergyMeter, BurstCharging) {
  const RadioCard c = cabletron();
  EnergyMeter m(c);
  m.begin(0.0, RadioMode::Idle);
  m.charge_tx_burst(0.001, 2.0, Category::Control);
  m.finish(1.0);
  EXPECT_NEAR(m.control_energy(), 0.002, 1e-12);
  EXPECT_NEAR(m.total(), 1.0 * c.p_idle + 0.002, 1e-12);
}

TEST(EnergyMeter, TimeMovingBackwardThrows) {
  EnergyMeter m(cabletron());
  m.begin(5.0, RadioMode::Idle);
  EXPECT_THROW(m.finish(4.0), CheckError);
}

TEST(EnergyMeter, TotalEqualsSumOfParts) {
  const RadioCard c = cabletron();
  EnergyMeter m(c);
  m.begin(0.0, RadioMode::Sleep);
  m.set_passive_mode(1.0, RadioMode::Idle);
  m.set_transmit(1.5, 1.4, Category::Data);
  m.set_receive(2.0, Category::Control);
  m.set_passive_mode(2.5, RadioMode::Sleep);
  m.finish(4.0);
  EXPECT_NEAR(m.total(),
              m.data_energy() + m.control_energy() + m.passive_energy(),
              1e-12);
}

}  // namespace
}  // namespace eend::energy
