// Unit tests: the §5.2.3 grid-study harness (route freezing + analytic
// re-costing under perfect / ODPM / always-active scheduling).
#include <gtest/gtest.h>

#include "core/grid_study.hpp"

namespace eend::core {
namespace {

net::ScenarioConfig quick_grid() {
  auto sc = net::ScenarioConfig::hypothetical_grid();
  sc.duration_s = 120.0;  // enough for routes to stabilize at 2 pkt/s
  sc.rate_pps = 2.0;
  sc.seed = 5;
  return sc;
}

TEST(GridStudy, FreezesRoutesForAllFlows) {
  const auto s = grid_series(quick_grid(), net::StackSpec::titan_pc(),
                             {2.0, 4.0});
  EXPECT_EQ(s.label, "TITAN-PC");
  EXPECT_GE(s.active_nodes.size(), 14u);  // at least sources + sinks
  ASSERT_EQ(s.points.size(), 2u);
  for (const auto& pt : s.points) {
    EXPECT_GT(pt.goodput_bit_per_j, 0.0);
    EXPECT_GT(pt.network_power_w, 0.0);
    EXPECT_NEAR(pt.network_power_w, pt.data_power_w + pt.passive_power_w,
                1e-9);
  }
}

TEST(GridStudy, DataPowerScalesLinearlyWithRate) {
  const auto s = grid_series(quick_grid(), net::StackSpec::mtpr_perfect(),
                             {2.0, 4.0, 8.0});
  ASSERT_EQ(s.points.size(), 3u);
  EXPECT_NEAR(s.points[1].data_power_w, 2.0 * s.points[0].data_power_w, 1e-6);
  EXPECT_NEAR(s.points[2].data_power_w, 4.0 * s.points[0].data_power_w, 1e-6);
}

TEST(GridStudy, PerfectSleepBeatsOdpmAtLowRates) {
  const auto perfect =
      grid_series(quick_grid(), net::StackSpec::titan_pc_perfect(), {2.0});
  const auto odpm =
      grid_series(quick_grid(), net::StackSpec::titan_pc(), {2.0});
  EXPECT_GT(perfect.points[0].goodput_bit_per_j,
            odpm.points[0].goodput_bit_per_j * 2.0);
}

TEST(GridStudy, MtprUsesShortHopsTitanUsesFew) {
  // MTPR minimizes transmit power => more, shorter hops => lower data
  // power per packet than TITAN-PC's min-hop routes on the hypothetical
  // card (this is the Fig. 15 crossover mechanism).
  const auto mtpr =
      grid_series(quick_grid(), net::StackSpec::mtpr_perfect(), {100.0});
  const auto titan =
      grid_series(quick_grid(), net::StackSpec::titan_pc_perfect(), {100.0});
  EXPECT_LT(mtpr.points[0].data_power_w, titan.points[0].data_power_w);
}

TEST(GridStudy, AlwaysActivePaysIdleEverywhere) {
  const auto active =
      grid_series(quick_grid(), net::StackSpec::dsr_active(), {2.0});
  const auto card = energy::hypothetical_cabletron();
  // 49 idling nodes minus airtime: passive power close to 49 x Pidle.
  EXPECT_NEAR(active.points[0].passive_power_w, 49 * card.p_idle,
              49 * card.p_idle * 0.05);
}

TEST(GridStudy, CachedFreezeMatchesUncachedPath) {
  // The memoized grid_series path must be indistinguishable from running
  // the base-rate simulation fresh: same active set, same points, bit for
  // bit. Run the cached entry twice (miss, then hit) and diff both against
  // the uncached reference pipeline.
  const auto sc = quick_grid();
  const auto stack = net::StackSpec::mtpr_perfect();
  const std::vector<double> rates{2.0, 5.0, 40.0};

  const auto reference =
      grid_series_from_freeze(freeze_routes(sc, stack), sc, stack, rates);
  const auto first = grid_series(sc, stack, rates);
  const auto second = grid_series(sc, stack, rates);  // served from cache

  for (const auto* s : {&first, &second}) {
    EXPECT_EQ(s->label, reference.label);
    EXPECT_EQ(s->active_nodes, reference.active_nodes);
    ASSERT_EQ(s->points.size(), reference.points.size());
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
      EXPECT_EQ(s->points[i].rate_pps, reference.points[i].rate_pps);
      EXPECT_EQ(s->points[i].goodput_bit_per_j,
                reference.points[i].goodput_bit_per_j);
      EXPECT_EQ(s->points[i].network_power_w,
                reference.points[i].network_power_w);
      EXPECT_EQ(s->points[i].data_power_w, reference.points[i].data_power_w);
      EXPECT_EQ(s->points[i].passive_power_w,
                reference.points[i].passive_power_w);
    }
  }
}

TEST(GridStudy, FreezeCacheHoldsOneEntryPerScenarioStackPair) {
  clear_grid_freeze_cache();
  const auto sc = quick_grid();
  grid_series(sc, net::StackSpec::dsr_active(), {2.0});
  EXPECT_EQ(grid_freeze_cache_size(), 1u);
  // Same (scenario, stack), different rate axis: no new simulation.
  grid_series(sc, net::StackSpec::dsr_active(), {50.0, 100.0});
  EXPECT_EQ(grid_freeze_cache_size(), 1u);
  // Different stack — and a scenario nudged by one field — are new keys.
  grid_series(sc, net::StackSpec::titan_pc(), {2.0});
  EXPECT_EQ(grid_freeze_cache_size(), 2u);
  auto sc2 = sc;
  sc2.seed += 1;
  grid_series(sc2, net::StackSpec::titan_pc(), {2.0});
  EXPECT_EQ(grid_freeze_cache_size(), 3u);
  clear_grid_freeze_cache();
  EXPECT_EQ(grid_freeze_cache_size(), 0u);
}

TEST(GridStudy, GoodputIncreasesWithRateUnderFixedIdle) {
  // With ODPM idle dominating, higher rates amortize it: goodput rises.
  const auto s = grid_series(quick_grid(), net::StackSpec::dsr_odpm_pc(),
                             {2.0, 5.0, 20.0});
  EXPECT_LT(s.points[0].goodput_bit_per_j, s.points[1].goodput_bit_per_j);
  EXPECT_LT(s.points[1].goodput_bit_per_j, s.points[2].goodput_bit_per_j);
}

}  // namespace
}  // namespace eend::core
