// Unit tests: ParallelRunner pool semantics, and the determinism contract
// of the parallel replication engine — the same ExperimentConfig must
// produce bit-identical results for jobs=1 and jobs=8.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"

namespace eend::core {
namespace {

TEST(ParallelRunner, CoversEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ParallelRunner pool(jobs);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.for_each_index(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ParallelRunner, ZeroJobsMeansAuto) {
  EXPECT_GE(default_jobs(), 1u);
  ParallelRunner pool(0);
  EXPECT_EQ(pool.jobs(), default_jobs());
  std::atomic<int> count{0};
  pool.for_each_index(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelRunner, AbsurdJobCountsAreClamped) {
  // A negative --jobs cast through size_t must not spawn 2^64 threads.
  ParallelRunner pool(static_cast<std::size_t>(-1));
  EXPECT_EQ(pool.jobs(), ParallelRunner::kMaxJobs);
  std::atomic<int> count{0};
  pool.for_each_index(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelRunner, EmptyBatchIsNoop) {
  ParallelRunner pool(4);
  pool.for_each_index(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.for_each_index(50, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 50) << "round " << round;
  }
}

TEST(ParallelRunner, RethrowsSmallestIndexException) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    ParallelRunner pool(jobs);
    try {
      pool.for_each_index(100, [](std::size_t i) {
        if (i % 10 == 3) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3");
    }
    // The pool survives a throwing batch.
    std::atomic<int> count{0};
    pool.for_each_index(8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
  }
}

// ---------------------------------------------------------------------
// Determinism of the replication engine under parallelism.

ExperimentConfig tiny_experiment() {
  ExperimentConfig cfg;
  cfg.scenario = net::ScenarioConfig::small_network();
  cfg.scenario.node_count = 20;
  cfg.scenario.flow_count = 4;
  cfg.scenario.duration_s = 60.0;
  cfg.stack = net::StackSpec::titan_pc();
  cfg.runs = 4;
  cfg.base_seed = 7;
  return cfg;
}

void expect_stats_identical(const SampleStats& a, const SampleStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.mean, b.mean);  // bitwise: no tolerance
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.ci95_half_width, b.ci95_half_width);
}

void expect_results_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  EXPECT_EQ(a.stack_label, b.stack_label);
  EXPECT_EQ(a.rate_pps, b.rate_pps);
  expect_stats_identical(a.delivery_ratio, b.delivery_ratio);
  expect_stats_identical(a.goodput_bit_per_j, b.goodput_bit_per_j);
  expect_stats_identical(a.transmit_energy_j, b.transmit_energy_j);
  expect_stats_identical(a.total_energy_j, b.total_energy_j);
  expect_stats_identical(a.control_energy_j, b.control_energy_j);
  expect_stats_identical(a.passive_energy_j, b.passive_energy_j);
  expect_stats_identical(a.nodes_carrying_data, b.nodes_carrying_data);
  ASSERT_EQ(a.raw.size(), b.raw.size());
  for (std::size_t i = 0; i < a.raw.size(); ++i) {
    EXPECT_EQ(a.raw[i].sent, b.raw[i].sent);
    EXPECT_EQ(a.raw[i].delivered, b.raw[i].delivered);
    EXPECT_EQ(a.raw[i].total_energy_j, b.raw[i].total_energy_j);
    EXPECT_EQ(a.raw[i].transmit_energy_j, b.raw[i].transmit_energy_j);
    EXPECT_EQ(a.raw[i].channel_transmissions, b.raw[i].channel_transmissions);
  }
}

TEST(ParallelExperiment, RunExperimentIsJobsInvariant) {
  ExperimentConfig serial = tiny_experiment();
  serial.jobs = 1;
  ExperimentConfig parallel = tiny_experiment();
  parallel.jobs = 8;
  expect_results_identical(run_experiment(serial), run_experiment(parallel));
}

TEST(ParallelExperiment, SweepRatesIsJobsInvariant) {
  const std::vector<double> rates{2.0, 4.0};
  ExperimentConfig serial = tiny_experiment();
  serial.runs = 2;
  serial.jobs = 1;
  ExperimentConfig parallel = serial;
  parallel.jobs = 8;
  const auto a = sweep_rates(serial, rates);
  const auto b = sweep_rates(parallel, rates);
  ASSERT_EQ(a.size(), rates.size());
  ASSERT_EQ(b.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_EQ(a[i].rate_pps, rates[i]);
    expect_results_identical(a[i], b[i]);
  }
}

TEST(ParallelExperiment, SweepGridIsJobsInvariantAndReportsProgress) {
  const std::vector<net::StackSpec> stacks{net::StackSpec::titan_pc(),
                                           net::StackSpec::dsr_active()};
  const std::vector<double> rates{2.0, 4.0};
  ExperimentConfig cfg = tiny_experiment();
  cfg.runs = 2;

  cfg.jobs = 1;
  std::vector<std::string> done_serial;
  const auto a = sweep_grid(cfg, stacks, rates, [&](const net::StackSpec& s) {
    done_serial.push_back(s.label);
  });

  cfg.jobs = 8;
  std::atomic<int> done_parallel{0};
  const auto b = sweep_grid(
      cfg, stacks, rates,
      [&](const net::StackSpec&) { done_parallel.fetch_add(1); });

  EXPECT_EQ(done_serial.size(), stacks.size());
  EXPECT_EQ(done_parallel.load(), static_cast<int>(stacks.size()));
  ASSERT_EQ(a.size(), stacks.size());
  ASSERT_EQ(b.size(), stacks.size());
  for (std::size_t si = 0; si < stacks.size(); ++si) {
    ASSERT_EQ(a[si].size(), rates.size());
    for (std::size_t ri = 0; ri < rates.size(); ++ri)
      expect_results_identical(a[si][ri], b[si][ri]);
  }
}

}  // namespace
}  // namespace eend::core
