// Unit tests: scenario placement and flow construction.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "net/scenario.hpp"

namespace eend::net {
namespace {

TEST(Scenario, PlacementDeterministicPerSeed) {
  const auto cfg = ScenarioConfig::small_network();
  const auto a = place_nodes(cfg);
  const auto b = place_nodes(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(Scenario, DifferentSeedsDifferentLayouts) {
  auto cfg = ScenarioConfig::small_network();
  const auto a = place_nodes(cfg);
  cfg.seed = 2;
  const auto b = place_nodes(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].x != b[i].x) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, DensityGrowthKeepsPrefixPositions) {
  // Table 2 methodology: adding nodes must not move existing ones.
  auto c300 = ScenarioConfig::density_network(300);
  auto c400 = ScenarioConfig::density_network(400);
  const auto a = place_nodes(c300);
  const auto b = place_nodes(c400);
  ASSERT_EQ(b.size(), 400u);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x) << i;
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y) << i;
  }
}

TEST(Scenario, PlacementsWithinField) {
  const auto cfg = ScenarioConfig::large_network();
  for (const auto& p : place_nodes(cfg)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.field_w);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.field_h);
  }
}

TEST(Scenario, PlacementIsConnected) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    auto cfg = ScenarioConfig::small_network();
    cfg.seed = seed;
    const auto pos = place_nodes(cfg);
    graph::Graph g(pos.size());
    for (std::size_t i = 0; i < pos.size(); ++i)
      for (std::size_t j = i + 1; j < pos.size(); ++j)
        if (phy::distance(pos[i], pos[j]) <= cfg.card.max_range_m)
          g.add_edge(static_cast<graph::NodeId>(i),
                     static_cast<graph::NodeId>(j));
    EXPECT_TRUE(graph::is_connected(g)) << "seed " << seed;
  }
}

TEST(Scenario, GridLayout) {
  const auto cfg = ScenarioConfig::hypothetical_grid();
  const auto pos = place_nodes(cfg);
  ASSERT_EQ(pos.size(), 49u);
  // Row-major 7x7 over 300x300: spacing 50 m.
  EXPECT_DOUBLE_EQ(pos[0].x, 0.0);
  EXPECT_DOUBLE_EQ(pos[0].y, 0.0);
  EXPECT_DOUBLE_EQ(pos[6].x, 300.0);
  EXPECT_DOUBLE_EQ(pos[6].y, 0.0);
  EXPECT_DOUBLE_EQ(pos[7].x, 0.0);
  EXPECT_DOUBLE_EQ(pos[7].y, 50.0);
  EXPECT_DOUBLE_EQ(pos[48].x, 300.0);
  EXPECT_DOUBLE_EQ(pos[48].y, 300.0);
}

TEST(Scenario, GridFlowsRunLeftToRight) {
  const auto cfg = ScenarioConfig::hypothetical_grid();
  const auto flows = make_flows(cfg);
  ASSERT_EQ(flows.size(), 7u);
  for (std::size_t j = 0; j < flows.size(); ++j) {
    EXPECT_EQ(flows[j].source, j * 7);
    EXPECT_EQ(flows[j].destination, j * 7 + 6);
    EXPECT_GE(flows[j].start_s, cfg.flow_start_min_s);
    EXPECT_LE(flows[j].start_s, cfg.flow_start_max_s);
  }
}

TEST(Scenario, RandomFlowsDistinctEndpoints) {
  const auto cfg = ScenarioConfig::large_network();
  const auto flows = make_flows(cfg);
  ASSERT_EQ(flows.size(), 20u);
  std::set<std::pair<mac::NodeId, mac::NodeId>> pairs;
  for (const auto& f : flows) {
    EXPECT_NE(f.source, f.destination);
    EXPECT_TRUE(pairs.insert({f.source, f.destination}).second);
  }
}

TEST(Scenario, FlowEndpointPoolRestrictsChoices) {
  auto cfg = ScenarioConfig::density_network(400);
  const auto flows = make_flows(cfg);
  for (const auto& f : flows) {
    EXPECT_LT(f.source, 200u);
    EXPECT_LT(f.destination, 200u);
  }
}

TEST(Scenario, FlowsStableAcrossDensities) {
  // Same endpoints for 300 and 400 nodes (Table 2 requirement).
  const auto f300 = make_flows(ScenarioConfig::density_network(300));
  const auto f400 = make_flows(ScenarioConfig::density_network(400));
  ASSERT_EQ(f300.size(), f400.size());
  for (std::size_t i = 0; i < f300.size(); ++i) {
    EXPECT_EQ(f300[i].source, f400[i].source);
    EXPECT_EQ(f300[i].destination, f400[i].destination);
  }
}

TEST(Scenario, ValidateAcceptsPresets) {
  EXPECT_NO_THROW(ScenarioConfig::small_network().validate());
  EXPECT_NO_THROW(ScenarioConfig::large_network().validate());
  EXPECT_NO_THROW(ScenarioConfig::density_network(400).validate());
  EXPECT_NO_THROW(ScenarioConfig::hypothetical_grid().validate());
}

TEST(Scenario, ValidateRejectsNonsense) {
  auto bad = ScenarioConfig::small_network();
  bad.rate_pps = 0.0;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = ScenarioConfig::small_network();
  bad.duration_s = -1.0;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = ScenarioConfig::small_network();
  bad.flow_start_min_s = 30.0;
  bad.flow_start_max_s = 20.0;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = ScenarioConfig::hypothetical_grid();
  bad.grid_cols = 6;  // 6*7 != 49
  EXPECT_THROW(bad.validate(), CheckError);

  bad = ScenarioConfig::small_network();
  bad.node_count = 1;  // cannot host a flow
  EXPECT_THROW(bad.validate(), CheckError);

  bad = ScenarioConfig::small_network();
  bad.battery_capacity_j = -5.0;
  EXPECT_THROW(bad.validate(), CheckError);
}

TEST(Scenario, PaperPresetsMatchSection52) {
  const auto small = ScenarioConfig::small_network();
  EXPECT_EQ(small.node_count, 50u);
  EXPECT_DOUBLE_EQ(small.field_w, 500.0);
  EXPECT_EQ(small.flow_count, 10u);
  EXPECT_DOUBLE_EQ(small.duration_s, 900.0);
  EXPECT_EQ(small.payload_bits, 1024u);  // 128 B

  const auto large = ScenarioConfig::large_network();
  EXPECT_EQ(large.node_count, 200u);
  EXPECT_DOUBLE_EQ(large.field_w, 1300.0);
  EXPECT_EQ(large.flow_count, 20u);
  EXPECT_DOUBLE_EQ(large.duration_s, 600.0);

  const auto grid = ScenarioConfig::hypothetical_grid();
  EXPECT_EQ(grid.node_count, 49u);
  EXPECT_EQ(grid.card.name, "HypoCabletron");
  EXPECT_DOUBLE_EQ(grid.field_w, 300.0);
}

}  // namespace
}  // namespace eend::net
