// eend_lint — enforce the repo's determinism / correctness contract.
//
//   eend_lint                          # lint src tests bench tools examples
//   eend_lint --root=/path/to/repo     # same, rooted elsewhere
//   eend_lint src/routing bench        # explicit paths (files or dirs)
//   eend_lint --json=LINT_report.json  # also write the machine report
//   eend_lint --rules                  # print the rule table
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error. See
// src/lint/lint.hpp for the rules and the allow() annotation grammar.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using eend::lint::Finding;
using eend::lint::SourceFile;

namespace {

constexpr const char* kDefaultPaths[] = {"src", "tests", "bench", "tools",
                                         "examples"};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

int usage(std::ostream& out, int code) {
  out << "usage: eend_lint [--root=DIR] [--json[=FILE]] [--quiet] "
         "[--rules] [PATH...]\n"
         "  PATHs default to: src tests bench tools examples (under "
         "--root, default .)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool want_json = false;
  std::string json_file;  // empty with want_json: report to stdout
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--rules") {
      for (const auto r : eend::lint::all_rules())
        std::cout << eend::lint::rule_id(r) << "\n    "
                  << eend::lint::rule_summary(r) << "\n";
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_file = arg.substr(7);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "eend_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty())
    paths.assign(std::begin(kDefaultPaths), std::end(kDefaultPaths));

  // Collect files (sorted, so diagnostics and reports are stable).
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = root / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec))
        if (it->is_regular_file(ec) && lintable(it->path()))
          files.push_back(it->path());
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      std::cerr << "eend_lint: no such file or directory: " << full << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "eend_lint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // Report paths relative to --root: stable across checkouts.
    sources.push_back(SourceFile{
        fs::proximate(f, root).generic_string(), buf.str()});
  }

  const std::vector<Finding> findings = eend::lint::lint_files(sources);

  // Bare --json streams the report to stdout — keep that stream pure JSON.
  if (want_json && json_file.empty()) quiet = true;

  if (!quiet) {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": ["
                << eend::lint::rule_id(f.rule) << "] " << f.message << "\n";
      if (!f.snippet.empty()) std::cout << "    " << f.snippet << "\n";
    }
    std::cout << "eend_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in "
              << sources.size() << " files\n";
  }

  if (want_json) {
    const std::string report =
        eend::lint::report_json(findings, sources.size());
    if (json_file.empty()) {
      std::cout << report << "\n";
    } else {
      std::ofstream out(json_file, std::ios::binary);
      if (!out) {
        std::cerr << "eend_lint: cannot write " << json_file << "\n";
        return 2;
      }
      out << report << "\n";
    }
  }

  return findings.empty() ? 0 : 1;
}
