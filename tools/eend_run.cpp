// eend_run — manifest-driven experiment runner.
//
// Replaces per-bench main() boilerplate: a manifest file describes the
// experiment cells (stacks × rates/densities, runs, seeds), and this driver
// streams them through core::ExperimentEngine, emitting
//
//   * pretty pivot tables on stdout (one per experiment × metric),
//   * long-format CSV, and
//   * JSON-lines (one object per cell — the golden-file format).
//
// Output is byte-identical for every --jobs value; see
// core/experiment_engine.hpp for the determinism contract.
//
//   eend_run --manifest examples/manifests/fig7_small.json --jobs=0
//   eend_run --manifest m.json --quick --only=fig8 --jsonl=- --no-table
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment_engine.hpp"
#include "core/manifest.hpp"
#include "core/result_sink.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"

namespace {

constexpr const char* kUsage = R"(usage: eend_run --manifest=FILE [options]

options:
  --manifest=FILE   manifest to execute (also accepted as a positional arg)
  --jobs=N          worker threads (1 = serial, 0 = one per hardware thread);
                    results are byte-identical for every value
  --quick           reduced scale: each experiment's "quick" block, or
                    1 run / 120 s simulations by default
  --runs=N          override every experiment's replication count
  --seed=S          override every experiment's base seed
  --only=ID[,ID]    run only the named experiments, in manifest order
  --csv=PATH        CSV destination: a path, '-' for stdout, 'none' to skip
                    (default: <name>.csv in the current directory)
  --jsonl=PATH      JSON-lines destination, same conventions
                    (default: <name>.jsonl)
  --counters=PATH   telemetry counters as JSON-lines, one object per counter
                    or histogram per experiment; byte-identical for every
                    --jobs value (default: not written)
  --trace=PATH      Chrome trace_event JSON covering engine phases, worker
                    spans and sampled sim batches — open in chrome://tracing
                    or ui.perfetto.dev (default: not written)
  --no-table        suppress the pretty tables on stdout (implied when a
                    machine sink writes to '-')
  --list            list the manifest's experiments and exit
  --print-manifest  echo the canonical serialized manifest and exit
  --quiet           suppress progress lines on stderr
  --help            this text
)";

const std::vector<std::string> kKnownFlags = {
    "manifest", "jobs", "quick", "runs", "seed", "only", "csv", "jsonl",
    "counters", "trace", "no-table", "list", "print-manifest", "quiet",
    "help"};

/// Strict integer flag parsing: Flags::get_int uses strtoll, which stops at
/// the first non-digit — "--seed=1e6" would silently read as 1 and the
/// whole sweep would run under the wrong seed. Rejects trailing garbage;
/// diagnostics are the caller's job (one message per problem).
bool parse_int_flag(const eend::Flags& flags, const char* name,
                    std::int64_t& out) {
  const std::string v = flags.get(name, "");
  const char* first = v.data();
  const char* last = v.data() + v.size();
  const auto r = std::from_chars(first, last, out);
  return r.ec == std::errc{} && r.ptr == last && !v.empty();
}

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    if (next > pos) out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eend;
  const Flags flags(argc, argv);

  if (flags.get_bool("help", false)) {
    std::cout << kUsage;
    return 0;
  }

  // A typo'd flag silently falling back to its default would invalidate a
  // whole sweep; reject anything unknown up front.
  for (const std::string& key : flags.keys()) {
    bool known = false;
    for (const auto& k : kKnownFlags) known = known || k == key;
    if (!known) {
      std::cerr << "eend_run: unknown flag --" << key << "\n" << kUsage;
      return 2;
    }
  }
  // Flags binds "--quick path" as quick="path" (the --key value form), so a
  // boolean flag written before the positional manifest path would swallow
  // it and silently read as false. Catch non-boolean values early.
  for (const char* b : {"quick", "quiet", "no-table", "list",
                        "print-manifest", "help"}) {
    const std::string v = flags.get(b, "true");
    if (v != "true" && v != "false" && v != "1" && v != "0" && v != "yes" &&
        v != "no") {
      std::cerr << "eend_run: --" << b << " takes no value but got \"" << v
                << "\" — put the manifest path before boolean flags or use "
                   "--manifest=PATH\n";
      return 2;
    }
  }
  // The converse: a bare value-taking flag binds the string "true" and
  // would be used verbatim (e.g. a CSV file literally named "true").
  for (const char* f :
       {"manifest", "csv", "jsonl", "only", "counters", "trace"}) {
    if (flags.has(f) && flags.get(f, "") == "true") {
      std::cerr << "eend_run: --" << f << " needs a value (--" << f
                << "=...)\n";
      return 2;
    }
  }

  std::string path = flags.get("manifest", "");
  if (path.empty() && !flags.positional().empty())
    path = flags.positional().front();
  if (path.empty()) {
    std::cerr << "eend_run: no manifest given\n" << kUsage;
    return 2;
  }

  core::Manifest manifest;
  try {
    manifest = core::Manifest::load(path);
  } catch (const CheckError& e) {
    std::cerr << "eend_run: " << e.what() << "\n";
    return 2;
  }

  // --only narrows the manifest before anything consumes it, so --list and
  // --print-manifest show the filtered view and a typo'd id always errors.
  if (flags.has("only")) {
    const auto wanted = split_csv_list(flags.get("only", ""));
    if (wanted.empty()) {
      // Running zero experiments "successfully" would truncate the output
      // files — a mis-expanded $IDS in CI must fail loudly instead.
      std::cerr << "eend_run: --only selected no experiments\n";
      return 2;
    }
    for (std::size_t i = 0; i < wanted.size(); ++i)
      for (std::size_t j = i + 1; j < wanted.size(); ++j)
        if (wanted[i] == wanted[j]) {
          std::cerr << "eend_run: --only names \"" << wanted[i]
                    << "\" twice\n";
          return 2;
        }
    for (const auto& id : wanted) {
      bool found = false;
      for (const auto& e : manifest.experiments) found |= e.id == id;
      if (!found) {
        std::cerr << "eend_run: --only names unknown experiment \"" << id
                  << "\" (manifest has:";
        for (const auto& e : manifest.experiments)
          std::cerr << " " << e.id;
        std::cerr << ")\n";
        return 2;
      }
    }
    // Keep the selected experiments in manifest order (as documented), so a
    // filtered run's rows are a subsequence of the unfiltered run's.
    core::Manifest filtered = manifest;
    filtered.experiments.clear();
    for (const auto& e : manifest.experiments) {
      bool keep = false;
      for (const auto& id : wanted) keep |= e.id == id;
      if (keep) filtered.experiments.push_back(e);
    }
    manifest = std::move(filtered);
  }

  if (flags.get_bool("list", false)) {
    for (const auto& line : manifest.experiment_summaries())
      std::cout << line << "\n";
    return 0;
  }
  if (flags.get_bool("print-manifest", false)) {
    std::cout << manifest.serialize() << "\n";
    return 0;
  }

  const bool quiet = flags.get_bool("quiet", false);
  core::EngineOptions opts;
  opts.quick = flags.get_bool("quick", false);
  if (flags.has("jobs")) {
    std::int64_t jobs = 0;
    if (!parse_int_flag(flags, "jobs", jobs) || jobs < 0) {
      std::cerr << "eend_run: --jobs must be an integer >= 0 (0 = auto), "
                   "got \"" << flags.get("jobs", "") << "\"\n";
      return 2;
    }
    opts.jobs = static_cast<std::size_t>(jobs);
  }
  if (flags.has("runs")) {
    std::int64_t runs = 0;
    if (!parse_int_flag(flags, "runs", runs) || runs < 1) {
      std::cerr << "eend_run: --runs must be an integer >= 1, got \""
                << flags.get("runs", "") << "\"\n";
      return 2;
    }
    // Replication counts only exist for sweep/density kinds; accepting the
    // flag for a grid/mopt-only manifest would silently change nothing.
    bool applies = false;
    for (const auto& e : manifest.experiments)
      applies |= e.kind == core::ExperimentKind::Sweep ||
                 e.kind == core::ExperimentKind::Density ||
                 e.kind == core::ExperimentKind::Design ||
                 e.kind == core::ExperimentKind::Replay ||
                 e.kind == core::ExperimentKind::Churn;
    if (!applies) {
      std::cerr << "eend_run: --runs has no effect — none of the selected "
                   "experiments are sweep, density, design, replay or "
                   "churn kind\n";
      return 2;
    }
    opts.runs_override = static_cast<std::size_t>(runs);
  }
  if (flags.has("seed")) {
    std::int64_t seed = 0;
    // Same cap the manifest format enforces: seeds must survive the JSON
    // number (double) round-trip so CSV and JSON-lines stay in agreement.
    if (!parse_int_flag(flags, "seed", seed) || seed < 0 ||
        seed > (std::int64_t{1} << 53)) {
      std::cerr << "eend_run: --seed must be an integer in [0, 2^53], got \""
                << flags.get("seed", "") << "\"\n";
      return 2;
    }
    // Only mopt (a closed-form model) has no seed; reject the flag when it
    // cannot change anything, like --runs above.
    bool applies = false;
    for (const auto& e : manifest.experiments)
      applies |= e.kind != core::ExperimentKind::Mopt;
    if (!applies) {
      std::cerr << "eend_run: --seed has no effect — all selected "
                   "experiments are the analytic mopt kind\n";
      return 2;
    }
    opts.seed_override = static_cast<std::uint64_t>(seed);
  }
  opts.progress = quiet ? nullptr : &std::cerr;

  // Sink wiring. Files are written to "<dest>.tmp" and renamed into place
  // only after every sink finished cleanly, so a failed run (bad second
  // destination, engine exception, ENOSPC) never destroys the previous
  // results — including goldens regenerated per the README recipe.
  struct OwnedFile {
    std::unique_ptr<std::ofstream> stream;
    std::string tmp_path;
    std::string final_path;
  };
  std::vector<OwnedFile> files;
  std::vector<std::unique_ptr<core::ResultSink>> sinks;

  struct TmpCleanup {
    std::vector<OwnedFile>* files;
    bool committed = false;
    ~TmpCleanup() {
      if (committed) return;
      for (OwnedFile& f : *files) {
        f.stream->close();
        std::remove(f.tmp_path.c_str());
      }
    }
  } cleanup{&files};

  /// Staged opener shared by sinks and telemetry outputs: writes to
  /// "<dest>.tmp", renamed on commit. Returns nullptr on failure.
  const auto open_staged = [&](const std::string& flag_name,
                               const std::string& dest) -> std::ostream* {
    const std::string tmp = dest + ".tmp";
    auto f = std::make_unique<std::ofstream>(tmp, std::ios::binary);
    if (!*f) {
      std::cerr << "eend_run: cannot open --" << flag_name
                << " destination \"" << tmp << "\" for writing\n";
      return nullptr;
    }
    std::ostream* os = f.get();
    files.push_back({std::move(f), tmp, dest});
    return os;
  };

  // Two outputs writing the same destination — stdout or a file — would
  // interleave and corrupt both streams. Compare lexically-normalized
  // absolute paths (so "./out" == "out"), and also guard the ".tmp"
  // staging names each file output renames from.
  {
    const std::string csv_dest = flags.get("csv", manifest.name + ".csv");
    const std::string jsonl_dest =
        flags.get("jsonl", manifest.name + ".jsonl");
    if (csv_dest == "-" && jsonl_dest == "-") {
      std::cerr << "eend_run: --csv=- and --jsonl=- cannot share stdout\n";
      return 2;
    }
    std::vector<std::pair<std::string, std::string>> outs;  // flag, dest
    if (csv_dest != "none" && csv_dest != "-")
      outs.emplace_back("csv", csv_dest);
    if (jsonl_dest != "none" && jsonl_dest != "-")
      outs.emplace_back("jsonl", jsonl_dest);
    if (flags.has("counters"))
      outs.emplace_back("counters", flags.get("counters", ""));
    if (flags.has("trace")) outs.emplace_back("trace", flags.get("trace", ""));
    const auto norm = [](const std::string& p) {
      return std::filesystem::absolute(std::filesystem::path(p))
          .lexically_normal();
    };
    for (std::size_t i = 0; i < outs.size(); ++i)
      for (std::size_t j = i + 1; j < outs.size(); ++j)
        if (norm(outs[i].second) == norm(outs[j].second) ||
            norm(outs[i].second) == norm(outs[j].second + ".tmp") ||
            norm(outs[j].second) == norm(outs[i].second + ".tmp")) {
          std::cerr << "eend_run: --" << outs[i].first << " \""
                    << outs[i].second << "\" and --" << outs[j].first
                    << " \"" << outs[j].second
                    << "\" collide (same file or its .tmp staging name)\n";
          return 2;
        }
  }

  // Telemetry outputs: counters stream JSONL after each experiment; trace
  // spans collect in memory and serialize once after the run. Both stay
  // outside the sink stream, so golden-pinned CSV/JSONL bytes are
  // untouched. With EEND_OBS=OFF the files are still produced, just empty
  // of counters/spans.
  std::ostream* counters_os = nullptr;
  std::optional<obs::TraceCollector> trace;
  std::ostream* trace_os = nullptr;
  for (const char* f : {"counters", "trace"}) {
    if (!flags.has(f)) continue;
    const std::string dest = flags.get(f, "");
    if (dest == "-" || dest == "none") {
      std::cerr << "eend_run: --" << f << " needs a file path\n";
      return 2;
    }
    std::ostream* os = open_staged(f, dest);
    if (!os) return 2;
    if (std::string(f) == "counters") counters_os = os;
    else trace_os = os;
  }
  opts.counters = counters_os;
  if (trace_os) trace.emplace();

  core::ExperimentEngine engine(opts);

  const auto open_sink = [&](const std::string& flag_name,
                             const std::string& default_path,
                             auto make_sink) -> bool {
    const std::string dest = flags.get(flag_name, default_path);
    if (dest == "none") return true;
    std::ostream* os = nullptr;
    if (dest == "-") {
      os = &std::cout;
    } else {
      os = open_staged(flag_name, dest);
      if (!os) return false;
    }
    sinks.push_back(make_sink(*os));
    engine.add_sink(*sinks.back());
    return true;
  };
  const bool stdout_is_machine = flags.get("csv", "") == "-" ||
                                 flags.get("jsonl", "") == "-";
  if (!flags.get_bool("no-table", false) && !stdout_is_machine) {
    sinks.push_back(std::make_unique<core::TableSink>(std::cout));
    engine.add_sink(*sinks.back());
  } else if (stdout_is_machine && !flags.get_bool("no-table", false) &&
             !quiet) {
    std::cerr << "eend_run: tables suppressed (stdout carries "
              << (flags.get("csv", "") == "-" ? "CSV" : "JSON-lines")
              << ")\n";
  }
  if (!open_sink("csv", manifest.name + ".csv", [](std::ostream& os) {
        return std::make_unique<core::CsvSink>(os);
      }))
    return 2;
  if (!open_sink("jsonl", manifest.name + ".jsonl", [](std::ostream& os) {
        return std::make_unique<core::JsonlSink>(os);
      }))
    return 2;

  if (trace) obs::set_trace(&*trace);
  try {
    engine.run(manifest);
  } catch (const std::exception& e) {
    obs::set_trace(nullptr);
    std::cerr << "eend_run: " << e.what() << "\n";
    return 1;
  }
  obs::set_trace(nullptr);
  if (trace_os) trace->write_json(*trace_os);

  // A full disk (ENOSPC) sets the stream's error state without throwing;
  // exiting 0 would bless a truncated CSV/JSONL — including regenerated
  // golden files — as complete. '-' sinks share std::cout, so check it too.
  for (OwnedFile& f : files) {
    f.stream->flush();
    if (!f.stream->good()) {
      std::cerr << "eend_run: write error on \"" << f.tmp_path
                << "\" — output is incomplete\n";
      return 1;
    }
  }
  std::cout.flush();
  if (!std::cout.good()) {
    std::cerr << "eend_run: write error on stdout — output is incomplete\n";
    return 1;
  }

  // Commit: everything flushed cleanly, move the temp files into place.
  for (OwnedFile& f : files) {
    f.stream->close();
    if (std::rename(f.tmp_path.c_str(), f.final_path.c_str()) != 0) {
      std::cerr << "eend_run: cannot rename \"" << f.tmp_path << "\" to \""
                << f.final_path << "\"\n";
      return 1;
    }
  }
  cleanup.committed = true;

  if (!quiet)
    for (const OwnedFile& f : files)
      std::cerr << "wrote " << f.final_path << "\n";
  return 0;
}
